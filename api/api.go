// Package api is the versioned wire schema of the admission-control
// service: every request, response and error envelope that crosses
// the admitd HTTP surface, as plain structs with fixed JSON tags and
// no dependency outside the standard library. It is the one contract
// shared by the server (internal/admitd), the typed Go client SDK
// (package client), the CLI load generator, the examples, and any
// external embedder — if a field is not in this package, it is not
// on the wire.
//
// # Versioning
//
// Version names the schema generation and prefixes every route
// ("/v1/..."). Within a version the schema only grows: new optional
// fields may appear, existing fields never change name, type, or
// meaning. Decoders on both sides must therefore ignore unknown
// fields (the encoding/json default) — an older client against a
// newer server, or the reverse, keeps working on the fields it
// knows. Removing or redefining a field requires a new version
// prefix. Servers stamp every response with the VersionHeader so
// clients can detect what they are talking to.
//
// # Errors
//
// Every non-2xx response carries the Error envelope — a stable
// machine-readable Code plus a human-readable Message. Code, not the
// HTTP status, is the contract: statuses are derived from codes (see
// Code.HTTPStatus) and exist for plain HTTP tooling.
package api

import "net/url"

// Version is the wire-schema generation. It prefixes every route.
const Version = "v1"

// VersionHeader is the response header the server stamps with
// Version on every reply.
const VersionHeader = "Admitd-Api-Version"

// Route roots. Session-scoped operations live under
// PathSessions/{name}/{op} — see SessionPath and SessionOpPath.
const (
	PathSessions = "/" + Version + "/sessions"
	PathSweep    = "/" + Version + "/sweep"
	PathStats    = "/" + Version + "/stats"
	PathHealth   = "/healthz"
	// PathMetrics is the Prometheus text-format exposition endpoint.
	// Unversioned by convention: scrapers expect the bare path, and
	// the exposition format carries its own compatibility contract.
	PathMetrics = "/metrics"
)

// TraceHeader carries the per-request trace ID: clients may supply
// one (echoed on the response and threaded into the server's event
// log); servers running with tracing enabled generate one otherwise.
const TraceHeader = "Admitd-Trace-Id"

// Session-scoped operation names (the {op} path segment).
const (
	OpAdmit    = "admit"
	OpTry      = "try"
	OpSplit    = "split"
	OpCommit   = "commit"
	OpRollback = "rollback"
	OpRemove   = "remove"
	OpStats    = "stats"
	OpBatch    = "batch"
	// OpFeed is the SSE change feed: GET, text/event-stream, one
	// sequence-numbered event per committed mutation. With durability
	// on, the from_seq query parameter replays the commit log's tail
	// (from_seq exclusive) before splicing onto the live stream.
	OpFeed = "feed"
	// OpAudit replays the commit log: GET with a seq query parameter
	// rebuilds the session at seq-1 and re-runs the logged mutation's
	// probe with the collector on. Requires durability (-data-dir).
	OpAudit = "audit"
)

// FeedFromSeqParam is OpFeed's resume query parameter: the last
// sequence number the subscriber has already seen.
const FeedFromSeqParam = "from_seq"

// AuditSeqParam is OpAudit's query parameter: the sequence number of
// the logged mutation to audit.
const AuditSeqParam = "seq"

// SessionPath is the route of one named session (path-escaped, so
// any name is safe on the wire).
func SessionPath(name string) string {
	return PathSessions + "/" + url.PathEscape(name)
}

// SessionOpPath is the route of one session-scoped operation.
func SessionOpPath(name, op string) string {
	return SessionPath(name) + "/" + op
}
