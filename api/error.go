package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Code is a machine-readable error code — the stable part of the
// error contract. New codes may be added within a version; existing
// codes never change meaning.
type Code string

const (
	// CodeBadRequest rejects a malformed or semantically invalid
	// request (bad JSON, invalid task parameters, out-of-range core).
	CodeBadRequest Code = "bad_request"
	// CodeSessionNotFound: no live or snapshotted session by that name.
	CodeSessionNotFound Code = "session_not_found"
	// CodeSessionExists rejects creating a name that is already taken.
	CodeSessionExists Code = "session_exists"
	// CodeSessionClosed: the session's actor has exited (deleted or
	// evicted concurrently); retry resolves it when snapshots are on.
	CodeSessionClosed Code = "session_closed"
	// CodeProbePending rejects a mutation while a held probe awaits
	// commit/rollback.
	CodeProbePending Code = "probe_pending"
	// CodeNoProbePending rejects commit/rollback with nothing held.
	CodeNoProbePending Code = "no_probe_pending"
	// CodeProbeRejected refuses committing a held probe whose verdict
	// was negative.
	CodeProbeRejected Code = "probe_rejected"
	// CodeDuplicateTask rejects admitting an ID the session already
	// hosts.
	CodeDuplicateTask Code = "duplicate_task"
	// CodeUnknownTask: remove named an ID the session does not host.
	CodeUnknownTask Code = "unknown_task"
	// CodeSeqTruncated: the requested sequence range predates the
	// commit log's retained window (checkpoint compaction removed
	// it), or the session has no commit log at all. Feed resumers
	// re-sync via a fresh subscription plus a state read.
	CodeSeqTruncated Code = "seq_truncated"
	// CodeInternal is an unexpected server-side failure.
	CodeInternal Code = "internal"
)

// HTTPStatus derives the transport status from the code. Unknown
// codes (a newer peer) map to 400 — still an error, still decodable.
func (c Code) HTTPStatus() int {
	switch c {
	case CodeSessionNotFound, CodeUnknownTask:
		return http.StatusNotFound
	case CodeSessionExists, CodeProbePending, CodeNoProbePending,
		CodeProbeRejected, CodeDuplicateTask:
		return http.StatusConflict
	case CodeSessionClosed, CodeSeqTruncated:
		return http.StatusGone
	case CodeInternal:
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// Error is the uniform error envelope: every non-2xx response body
// is exactly this object. It implements the error interface, so the
// client SDK returns it as-is.
type Error struct {
	Code    Code   `json:"code"`
	Message string `json:"message"`
}

// Error renders "code: message".
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// HTTPStatus is the transport status derived from the code.
func (e *Error) HTTPStatus() int { return e.Code.HTTPStatus() }

// IsCode reports whether err is (or wraps) an *Error with the given
// code.
func IsCode(err error, code Code) bool {
	var ae *Error
	return errors.As(err, &ae) && ae.Code == code
}

// DecodeError parses an error-envelope body. A body that is not a
// valid envelope (a proxy's HTML error page, say) degrades to
// CodeInternal with the raw body as the message, so callers always
// get a typed *Error back.
func DecodeError(status int, body []byte) *Error {
	e := &Error{}
	if err := json.Unmarshal(body, e); err == nil && e.Code != "" {
		return e
	}
	code := CodeInternal
	if status < http.StatusInternalServerError {
		code = CodeBadRequest
	}
	return &Error{Code: code, Message: fmt.Sprintf("HTTP %d: %s", status, body)}
}
