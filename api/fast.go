package api

import (
	"math"
	"strconv"
	"strings"
)

// Fast wire codecs for the hot request/response shapes — admission
// verdicts and the requests that produce them. The service's edge
// cost is dominated by encoding/json's reflective round trips, so the
// shapes on the admission hot path get hand-rolled append-style
// encoders and a minimal scanner, both byte-compatible with
// encoding/json for every value they accept:
//
//   - Encoders produce exactly the bytes json.Marshal would (field
//     order, omitempty, no HTML-escapable characters) or report !ok,
//     in which case the caller falls back to encoding/json. They
//     append into a caller-owned buffer, so steady state allocates
//     nothing.
//   - Parsers accept a strict subset of JSON — no escape sequences in
//     strings they keep, no floats where the schema says integer, no
//     leading zeros — and report !ok on anything outside it, again
//     falling back to encoding/json. On success the result is exactly
//     what json.Unmarshal would produce (unknown fields skipped, last
//     duplicate wins, null pointer fields absent). On !ok the
//     destination is untouched.
//
// The golden and differential tests in fast_test.go pin both
// directions against encoding/json.

// --- encoders --------------------------------------------------------

// fastSafeString reports whether s encodes as itself under
// encoding/json (no escapes, no HTML escaping, ASCII only).
func fastSafeString(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x7f || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return false
		}
	}
	return true
}

// appendTaskJSON appends t; !ok when the name needs escaping.
func appendTaskJSON(b []byte, t *Task) ([]byte, bool) {
	b = append(b, `{"id":`...)
	b = strconv.AppendInt(b, t.ID, 10)
	if t.Name != "" {
		if !fastSafeString(t.Name) {
			return b, false
		}
		b = append(b, `,"name":"`...)
		b = append(b, t.Name...)
		b = append(b, '"')
	}
	b = append(b, `,"wcet_ns":`...)
	b = strconv.AppendInt(b, t.WCETNs, 10)
	b = append(b, `,"period_ns":`...)
	b = strconv.AppendInt(b, t.PeriodNs, 10)
	if t.DeadlineNs != 0 {
		b = append(b, `,"deadline_ns":`...)
		b = strconv.AppendInt(b, t.DeadlineNs, 10)
	}
	if t.Priority != 0 {
		b = append(b, `,"priority":`...)
		b = strconv.AppendInt(b, int64(t.Priority), 10)
	}
	if t.WSS != 0 {
		b = append(b, `,"wss":`...)
		b = strconv.AppendInt(b, t.WSS, 10)
	}
	if t.Core != 0 {
		b = append(b, `,"core":`...)
		b = strconv.AppendInt(b, int64(t.Core), 10)
	}
	return append(b, '}'), true
}

// AppendAdmitRequest appends r's JSON encoding; !ok (task name needs
// escaping) means fall back to json.Marshal — the buffer then holds
// partial output and must be discarded.
func AppendAdmitRequest(b []byte, r *AdmitRequest) ([]byte, bool) {
	b = append(b, `{"task":`...)
	b, ok := appendTaskJSON(b, &r.Task)
	if !ok {
		return b, false
	}
	if r.Core != nil {
		b = append(b, `,"core":`...)
		b = strconv.AppendInt(b, int64(*r.Core), 10)
	}
	if r.Hold {
		b = append(b, `,"hold":true`...)
	}
	return append(b, '}'), true
}

// AppendVerdict appends v's JSON encoding (never fails: a Verdict has
// no strings).
func AppendVerdict(b []byte, v *Verdict) []byte {
	b = append(b, `{"task_id":`...)
	b = strconv.AppendInt(b, v.TaskID, 10)
	b = append(b, `,"admitted":`...)
	b = strconv.AppendBool(b, v.Admitted)
	b = append(b, `,"core":`...)
	b = strconv.AppendInt(b, int64(v.Core), 10)
	if v.Pending {
		b = append(b, `,"pending":true`...)
	}
	b = append(b, `,"probes":`...)
	b = strconv.AppendInt(b, int64(v.Probes), 10)
	return append(b, '}')
}

// AppendRemoveRequest appends r's JSON encoding.
func AppendRemoveRequest(b []byte, r *RemoveRequest) []byte {
	b = append(b, `{"id":`...)
	b = strconv.AppendInt(b, r.ID, 10)
	return append(b, '}')
}

// AppendRemoved appends r's JSON encoding.
func AppendRemoved(b []byte, r *Removed) []byte {
	b = append(b, `{"removed":`...)
	b = strconv.AppendBool(b, r.Removed)
	b = append(b, `,"id":`...)
	b = strconv.AppendInt(b, r.ID, 10)
	return append(b, '}')
}

// --- scanner ---------------------------------------------------------

// fastScan walks one JSON document. Every method reports failure by
// returning false; the caller then abandons the fast path entirely,
// so a half-advanced scanner is never resumed.
type fastScan struct {
	b []byte
	i int
}

func (s *fastScan) ws() {
	for s.i < len(s.b) {
		switch s.b[s.i] {
		case ' ', '\t', '\n', '\r':
			s.i++
		default:
			return
		}
	}
}

// delim consumes c (after whitespace).
func (s *fastScan) delim(c byte) bool {
	s.ws()
	if s.i < len(s.b) && s.b[s.i] == c {
		s.i++
		return true
	}
	return false
}

// str parses a string with no escapes and no control characters,
// returning the raw bytes between the quotes. Escaped strings fail —
// the fallback handles them.
func (s *fastScan) str() ([]byte, bool) {
	s.ws()
	if s.i >= len(s.b) || s.b[s.i] != '"' {
		return nil, false
	}
	s.i++
	start := s.i
	for s.i < len(s.b) {
		c := s.b[s.i]
		if c == '"' {
			out := s.b[start:s.i]
			s.i++
			return out, true
		}
		if c == '\\' || c < 0x20 {
			return nil, false
		}
		s.i++
	}
	return nil, false
}

// integer parses a JSON integer (no fraction, no exponent, no leading
// zeros, no overflow — anything else falls back).
func (s *fastScan) integer() (int64, bool) {
	s.ws()
	neg := false
	if s.i < len(s.b) && s.b[s.i] == '-' {
		neg = true
		s.i++
	}
	start := s.i
	var v uint64
	for s.i < len(s.b) && s.b[s.i] >= '0' && s.b[s.i] <= '9' {
		v = v*10 + uint64(s.b[s.i]-'0')
		s.i++
	}
	n := s.i - start
	// ≤18 digits cannot exceed MaxInt64; 19 digits cannot wrap uint64,
	// so one range check suffices (20+ digits and MinInt64 decline to
	// the stdlib fallback, as before).
	if n == 0 || (n > 1 && s.b[start] == '0') || n > 19 || (n == 19 && v > math.MaxInt64) {
		return 0, false
	}
	if s.i < len(s.b) {
		switch s.b[s.i] {
		case '.', 'e', 'E':
			return 0, false
		}
	}
	if neg {
		return -int64(v), true
	}
	return int64(v), true
}

// boolean parses true/false.
func (s *fastScan) boolean() (bool, bool) {
	s.ws()
	if s.lit("true") {
		return true, true
	}
	if s.lit("false") {
		return false, true
	}
	return false, false
}

// lit consumes the literal word (no leading whitespace handling).
func (s *fastScan) lit(w string) bool {
	if len(s.b)-s.i < len(w) || string(s.b[s.i:s.i+len(w)]) != w {
		return false
	}
	s.i += len(w)
	return true
}

// isNull consumes a null literal if present.
func (s *fastScan) isNull() bool {
	s.ws()
	return s.lit("null")
}

// skipValue skips one well-formed value of any type; it validates
// strictly enough that nothing json.Unmarshal would reject is
// silently accepted (malformed input fails and falls back, where the
// stdlib produces the canonical error).
func (s *fastScan) skipValue() bool {
	s.ws()
	if s.i >= len(s.b) {
		return false
	}
	switch c := s.b[s.i]; {
	case c == '"':
		return s.skipString()
	case c == '{':
		s.i++
		if s.delim('}') {
			return true
		}
		for {
			if !s.skipStringAfterWS() || !s.delim(':') || !s.skipValue() {
				return false
			}
			if s.delim(',') {
				continue
			}
			return s.delim('}')
		}
	case c == '[':
		s.i++
		if s.delim(']') {
			return true
		}
		for {
			if !s.skipValue() {
				return false
			}
			if s.delim(',') {
				continue
			}
			return s.delim(']')
		}
	case c == 't':
		return s.lit("true")
	case c == 'f':
		return s.lit("false")
	case c == 'n':
		return s.lit("null")
	default:
		return s.skipNumber()
	}
}

func (s *fastScan) skipStringAfterWS() bool {
	s.ws()
	return s.skipString()
}

// skipString validates and skips a string, escapes included.
func (s *fastScan) skipString() bool {
	if s.i >= len(s.b) || s.b[s.i] != '"' {
		return false
	}
	s.i++
	for s.i < len(s.b) {
		switch c := s.b[s.i]; {
		case c == '"':
			s.i++
			return true
		case c == '\\':
			s.i++
			if s.i >= len(s.b) {
				return false
			}
			switch s.b[s.i] {
			case '"', '\\', '/', 'b', 'f', 'n', 'r', 't':
				s.i++
			case 'u':
				s.i++
				for k := 0; k < 4; k++ {
					if s.i >= len(s.b) || !isHex(s.b[s.i]) {
						return false
					}
					s.i++
				}
			default:
				return false
			}
		case c < 0x20:
			return false
		default:
			s.i++
		}
	}
	return false
}

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

// skipNumber validates and skips a full JSON number.
func (s *fastScan) skipNumber() bool {
	if s.i < len(s.b) && s.b[s.i] == '-' {
		s.i++
	}
	start := s.i
	for s.i < len(s.b) && s.b[s.i] >= '0' && s.b[s.i] <= '9' {
		s.i++
	}
	n := s.i - start
	if n == 0 || (n > 1 && s.b[start] == '0') {
		return false
	}
	if s.i < len(s.b) && s.b[s.i] == '.' {
		s.i++
		d := 0
		for s.i < len(s.b) && s.b[s.i] >= '0' && s.b[s.i] <= '9' {
			s.i++
			d++
		}
		if d == 0 {
			return false
		}
	}
	if s.i < len(s.b) && (s.b[s.i] == 'e' || s.b[s.i] == 'E') {
		s.i++
		if s.i < len(s.b) && (s.b[s.i] == '+' || s.b[s.i] == '-') {
			s.i++
		}
		d := 0
		for s.i < len(s.b) && s.b[s.i] >= '0' && s.b[s.i] <= '9' {
			s.i++
			d++
		}
		if d == 0 {
			return false
		}
	}
	return true
}

// eof reports the document ended (only trailing whitespace).
func (s *fastScan) eof() bool {
	s.ws()
	return s.i == len(s.b)
}

// fields iterates an object's key/value pairs: f parses the value for
// a known key and reports success; unknown keys are skipped whole.
func (s *fastScan) fields(f func(key []byte) (handled, ok bool)) bool {
	if !s.delim('{') {
		return false
	}
	if s.delim('}') {
		return true
	}
	for {
		key, ok := s.str()
		if !ok || !s.delim(':') {
			return false
		}
		handled, ok := f(key)
		if !ok {
			return false
		}
		if !handled && !s.skipValue() {
			return false
		}
		if s.delim(',') {
			continue
		}
		return s.delim('}')
	}
}

// --- parsers ---------------------------------------------------------

// keyFolds reports whether an unknown key case-insensitively matches
// one of the shape's field names. encoding/json falls back to
// case-insensitive matching for keys with no exact field, so such
// keys can't be skipped — the parser declines and the stdlib fallback
// applies its matching rules.
func keyFolds(key []byte, names []string) bool {
	for _, n := range names {
		if len(key) == len(n) && strings.EqualFold(string(key), n) {
			return true
		}
	}
	return false
}

var (
	taskFieldNames    = []string{"id", "name", "wcet_ns", "period_ns", "deadline_ns", "priority", "wss", "core"}
	admitFieldNames   = []string{"task", "core", "hold"}
	removeFieldNames  = []string{"id"}
	verdictFieldNames = []string{"task_id", "admitted", "core", "pending", "probes"}
	removedFieldNames = []string{"removed", "id"}
)

// parseTaskInto parses a Task object in place (t starts zeroed by the
// callers).
func (s *fastScan) parseTaskInto(t *Task) bool {
	return s.fields(func(key []byte) (bool, bool) {
		var v int64
		var ok bool
		switch string(key) {
		case "id":
			v, ok = s.integer()
			t.ID = v
		case "name":
			raw, sok := s.str()
			if !sok {
				return true, false
			}
			t.Name = string(raw)
			return true, true
		case "wcet_ns":
			v, ok = s.integer()
			t.WCETNs = v
		case "period_ns":
			v, ok = s.integer()
			t.PeriodNs = v
		case "deadline_ns":
			v, ok = s.integer()
			t.DeadlineNs = v
		case "priority":
			v, ok = s.integer()
			t.Priority = int(v)
		case "wss":
			v, ok = s.integer()
			t.WSS = v
		case "core":
			v, ok = s.integer()
			t.Core = int(v)
		default:
			return false, !keyFolds(key, taskFieldNames)
		}
		return true, ok
	})
}

// ParseAdmitRequest parses data into dst on the fast path. A present
// "core" field is reported by value (core, corePresent) instead of
// being attached to dst: storing a caller-provided pointer into dst
// from inside this function would make escape analysis move both
// arguments to the heap in every caller, defeating the zero-alloc
// contract. On success dst.Core is nil and the caller attaches its
// own backing when corePresent. On !ok dst is untouched and the
// caller must fall back to encoding/json.
func ParseAdmitRequest(data []byte, dst *AdmitRequest) (core int, corePresent, ok bool) {
	s := fastScan{b: data}
	var req AdmitRequest
	var coreVal int64
	fieldsOK := s.fields(func(key []byte) (bool, bool) {
		switch string(key) {
		case "task":
			return true, s.parseTaskInto(&req.Task)
		case "core":
			if s.isNull() {
				corePresent = false // last key wins: null resets the pointer
				return true, true
			}
			v, ok := s.integer()
			if !ok || v != int64(int(v)) {
				return true, false
			}
			coreVal, corePresent = v, true
			return true, true
		case "hold":
			b, ok := s.boolean()
			req.Hold = b
			return true, ok
		}
		return false, !keyFolds(key, admitFieldNames)
	})
	if !fieldsOK || !s.eof() {
		return 0, false, false
	}
	*dst = req
	if corePresent {
		core = int(coreVal)
	}
	return core, corePresent, true
}

// ParseRemoveRequest parses data into dst on the fast path.
func ParseRemoveRequest(data []byte, dst *RemoveRequest) bool {
	s := fastScan{b: data}
	var req RemoveRequest
	ok := s.fields(func(key []byte) (bool, bool) {
		if string(key) == "id" {
			v, ok := s.integer()
			req.ID = v
			return true, ok
		}
		return false, !keyFolds(key, removeFieldNames)
	})
	if !ok || !s.eof() {
		return false
	}
	*dst = req
	return true
}

// ParseVerdict parses data into dst on the fast path.
func ParseVerdict(data []byte, dst *Verdict) bool {
	s := fastScan{b: data}
	var v Verdict
	ok := s.fields(func(key []byte) (bool, bool) {
		var ok bool
		switch string(key) {
		case "task_id":
			v.TaskID, ok = s.integer()
		case "admitted":
			v.Admitted, ok = s.boolean()
		case "core":
			var n int64
			n, ok = s.integer()
			v.Core = int(n)
		case "pending":
			v.Pending, ok = s.boolean()
		case "probes":
			var n int64
			n, ok = s.integer()
			v.Probes = int(n)
		default:
			return false, !keyFolds(key, verdictFieldNames)
		}
		return true, ok
	})
	if !ok || !s.eof() {
		return false
	}
	*dst = v
	return true
}

// ParseRemoved parses data into dst on the fast path.
func ParseRemoved(data []byte, dst *Removed) bool {
	s := fastScan{b: data}
	var r Removed
	ok := s.fields(func(key []byte) (bool, bool) {
		var ok bool
		switch string(key) {
		case "removed":
			r.Removed, ok = s.boolean()
		case "id":
			r.ID, ok = s.integer()
		default:
			return false, !keyFolds(key, removedFieldNames)
		}
		return true, ok
	})
	if !ok || !s.eof() {
		return false
	}
	*dst = r
	return true
}

// --- state & stats ---------------------------------------------------

// appendJSONFloat appends f exactly as encoding/json renders floats
// (shortest round-trip form, 'e' outside [1e-6, 1e21), exponent
// zero-trim); !ok for NaN/Inf, which json.Marshal rejects — the
// fallback then produces the canonical error.
func appendJSONFloat(b []byte, f float64) ([]byte, bool) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return b, false
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b, true
}

// number parses one JSON number via strconv.ParseFloat — identical
// semantics to the stdlib's float64 path.
func (s *fastScan) number() (float64, bool) {
	s.ws()
	start := s.i
	if !s.skipNumber() {
		return 0, false
	}
	f, err := strconv.ParseFloat(string(s.b[start:s.i]), 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

// setString assigns raw to *dst without allocating when the value is
// unchanged (steady-state parses into reused destinations).
func setString(dst *string, raw []byte) {
	if *dst != string(raw) {
		*dst = string(raw)
	}
}

var stateFieldNames = []string{"name", "cores", "policy", "tasks", "splits", "core_utilization", "schedulable", "probe_pending"}

// ParseState parses data into dst on the fast path, reusing dst's
// slice capacity and Schedulable backing (steady-state reads into a
// scratch State allocate only on growth). States carrying splits
// decline — the nested shape is cold and stays on encoding/json. On
// !ok dst may hold partial results; the caller must zero it before
// falling back.
func ParseState(data []byte, dst *State) bool {
	s := fastScan{b: data}
	dst.Tasks = dst.Tasks[:0]
	dst.Splits = nil
	dst.CoreUtilization = dst.CoreUtilization[:0]
	dst.ProbePending = false
	sched, schedSet := false, false
	ok := s.fields(func(key []byte) (bool, bool) {
		switch string(key) {
		case "name":
			raw, ok := s.str()
			if !ok {
				return true, false
			}
			setString(&dst.Name, raw)
			return true, true
		case "cores":
			v, ok := s.integer()
			dst.Cores = int(v)
			return true, ok
		case "policy":
			raw, ok := s.str()
			if !ok {
				return true, false
			}
			setString(&dst.Policy, raw)
			return true, true
		case "tasks":
			if s.isNull() {
				dst.Tasks = dst.Tasks[:0]
				return true, true
			}
			if !s.delim('[') {
				return true, false
			}
			if s.delim(']') {
				return true, true
			}
			for {
				dst.Tasks = append(dst.Tasks, Task{})
				if !s.parseTaskInto(&dst.Tasks[len(dst.Tasks)-1]) {
					return true, false
				}
				if s.delim(',') {
					continue
				}
				return true, s.delim(']')
			}
		case "splits":
			if s.isNull() {
				return true, true
			}
			return true, false // nested split shape: fall back
		case "core_utilization":
			if s.isNull() {
				dst.CoreUtilization = dst.CoreUtilization[:0]
				return true, true
			}
			if !s.delim('[') {
				return true, false
			}
			if s.delim(']') {
				return true, true
			}
			for {
				f, ok := s.number()
				if !ok {
					return true, false
				}
				dst.CoreUtilization = append(dst.CoreUtilization, f)
				if s.delim(',') {
					continue
				}
				return true, s.delim(']')
			}
		case "schedulable":
			if s.isNull() {
				return true, true
			}
			v, ok := s.boolean()
			sched, schedSet = v, true
			return true, ok
		case "probe_pending":
			v, ok := s.boolean()
			dst.ProbePending = v
			return true, ok
		}
		return false, !keyFolds(key, stateFieldNames)
	})
	if !ok || !s.eof() {
		return false
	}
	if !schedSet {
		dst.Schedulable = nil
	} else if dst.Schedulable != nil {
		*dst.Schedulable = sched
	} else {
		v := sched
		dst.Schedulable = &v
	}
	if len(dst.Tasks) == 0 {
		dst.Tasks = nil
	}
	if len(dst.CoreUtilization) == 0 {
		dst.CoreUtilization = nil
	}
	return true
}

// AppendSessionStats appends s's JSON encoding; !ok (name needs
// escaping, NaN/Inf rate) means fall back — the buffer then holds
// partial output and must be discarded.
func AppendSessionStats(b []byte, s *SessionStats) ([]byte, bool) {
	if !fastSafeString(s.Name) {
		return b, false
	}
	b = append(b, `{"name":"`...)
	b = append(b, s.Name...)
	b = append(b, `","tasks":`...)
	b = strconv.AppendInt(b, int64(s.Tasks), 10)
	b = append(b, `,"admitted":`...)
	b = strconv.AppendInt(b, s.Admitted, 10)
	b = append(b, `,"rejected":`...)
	b = strconv.AppendInt(b, s.Rejected, 10)
	b = append(b, `,"removed":`...)
	b = strconv.AppendInt(b, s.Removed, 10)
	b = append(b, `,"state_cache_hits":`...)
	b = strconv.AppendInt(b, s.StateCacheHits, 10)
	b = append(b, `,"state_cache_misses":`...)
	b = strconv.AppendInt(b, s.StateCacheMisses, 10)
	b = append(b, `,"admission":`...)
	b, ok := appendAdmissionStats(b, &s.Admission)
	if !ok {
		return b, false
	}
	return append(b, '}'), true
}

func appendAdmissionStats(b []byte, a *AdmissionStats) ([]byte, bool) {
	b = append(b, `{"probes":`...)
	b = strconv.AppendInt(b, a.Probes, 10)
	b = append(b, `,"full_tests":`...)
	b = strconv.AppendInt(b, a.FullTests, 10)
	b = append(b, `,"core_tests":`...)
	b = strconv.AppendInt(b, a.CoreTests, 10)
	b = append(b, `,"verdict_hits":`...)
	b = strconv.AppendInt(b, a.VerdictHits, 10)
	b = append(b, `,"fp_solves":`...)
	b = strconv.AppendInt(b, a.FPSolves, 10)
	b = append(b, `,"fp_iterations":`...)
	b = strconv.AppendInt(b, a.FPIterations, 10)
	b = append(b, `,"warm_starts":`...)
	b = strconv.AppendInt(b, a.WarmStarts, 10)
	b = append(b, `,"cache_hit_rate":`...)
	b, ok := appendJSONFloat(b, a.CacheHitRate)
	if !ok {
		return b, false
	}
	b = append(b, `,"mean_fp_iterations":`...)
	if b, ok = appendJSONFloat(b, a.MeanFPIterations); !ok {
		return b, false
	}
	b = append(b, `,"warm_start_rate":`...)
	if b, ok = appendJSONFloat(b, a.WarmStartRate); !ok {
		return b, false
	}
	return append(b, '}'), true
}

var sessionStatsFieldNames = []string{"name", "tasks", "admitted", "rejected", "removed", "state_cache_hits", "state_cache_misses", "admission"}
var admissionFieldNames = []string{"probes", "full_tests", "core_tests", "verdict_hits", "fp_solves", "fp_iterations", "warm_starts", "cache_hit_rate", "mean_fp_iterations", "warm_start_rate"}

// ParseSessionStats parses data into dst on the fast path. On !ok dst
// may hold partial results; zero it before falling back.
func ParseSessionStats(data []byte, dst *SessionStats) bool {
	s := fastScan{b: data}
	ok := s.fields(func(key []byte) (bool, bool) {
		var ok bool
		switch string(key) {
		case "name":
			raw, sok := s.str()
			if !sok {
				return true, false
			}
			setString(&dst.Name, raw)
			return true, true
		case "tasks":
			var v int64
			v, ok = s.integer()
			dst.Tasks = int(v)
		case "admitted":
			dst.Admitted, ok = s.integer()
		case "rejected":
			dst.Rejected, ok = s.integer()
		case "removed":
			dst.Removed, ok = s.integer()
		case "state_cache_hits":
			dst.StateCacheHits, ok = s.integer()
		case "state_cache_misses":
			dst.StateCacheMisses, ok = s.integer()
		case "admission":
			return true, s.parseAdmissionInto(&dst.Admission)
		default:
			return false, !keyFolds(key, sessionStatsFieldNames)
		}
		return true, ok
	})
	return ok && s.eof()
}

func (s *fastScan) parseAdmissionInto(a *AdmissionStats) bool {
	return s.fields(func(key []byte) (bool, bool) {
		var ok bool
		switch string(key) {
		case "probes":
			a.Probes, ok = s.integer()
		case "full_tests":
			a.FullTests, ok = s.integer()
		case "core_tests":
			a.CoreTests, ok = s.integer()
		case "verdict_hits":
			a.VerdictHits, ok = s.integer()
		case "fp_solves":
			a.FPSolves, ok = s.integer()
		case "fp_iterations":
			a.FPIterations, ok = s.integer()
		case "warm_starts":
			a.WarmStarts, ok = s.integer()
		case "cache_hit_rate":
			a.CacheHitRate, ok = s.number()
		case "mean_fp_iterations":
			a.MeanFPIterations, ok = s.number()
		case "warm_start_rate":
			a.WarmStartRate, ok = s.number()
		default:
			return false, !keyFolds(key, admissionFieldNames)
		}
		return true, ok
	})
}
