package api

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// randTask draws tasks across the encoding edge cases: zero fields
// (omitempty), negative values, extremes, and names both safe and
// escape-requiring.
func randTask(rng *rand.Rand) Task {
	names := []string{"", "t", "load-0001", "αβ", "a\"b", "x<y>&z", "tab\tname", "plain_name-42"}
	pick := func() int64 {
		switch rng.Intn(5) {
		case 0:
			return 0
		case 1:
			return -int64(rng.Intn(1000))
		case 2:
			return math.MaxInt64
		case 3:
			return math.MinInt64
		default:
			return int64(rng.Intn(1_000_000_000))
		}
	}
	return Task{
		ID:         pick(),
		Name:       names[rng.Intn(len(names))],
		WCETNs:     pick(),
		PeriodNs:   pick(),
		DeadlineNs: pick(),
		Priority:   int(pick() % 100_000),
		WSS:        pick(),
		Core:       int(pick() % 64),
	}
}

func randAdmit(rng *rand.Rand) AdmitRequest {
	r := AdmitRequest{Task: randTask(rng), Hold: rng.Intn(2) == 0}
	if rng.Intn(2) == 0 {
		c := rng.Intn(8) - 2
		r.Core = &c
	}
	return r
}

func randVerdict(rng *rand.Rand) Verdict {
	return Verdict{
		TaskID:   int64(rng.Intn(1 << 30)),
		Admitted: rng.Intn(2) == 0,
		Core:     rng.Intn(10) - 2,
		Pending:  rng.Intn(2) == 0,
		Probes:   rng.Intn(100),
	}
}

// TestFastEncodersMatchStdlib: whenever the fast encoder claims
// success its bytes must equal json.Marshal exactly; whenever a value
// needs escaping it must decline.
func TestFastEncodersMatchStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		ar := randAdmit(rng)
		want, err := json.Marshal(&ar)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := AppendAdmitRequest(nil, &ar)
		if ok {
			if !bytes.Equal(got, want) {
				t.Fatalf("AppendAdmitRequest mismatch\n got %s\nwant %s", got, want)
			}
		} else if fastSafeString(ar.Task.Name) {
			t.Fatalf("AppendAdmitRequest declined safe input %+v", ar)
		}

		v := randVerdict(rng)
		want, _ = json.Marshal(&v)
		if got := AppendVerdict(nil, &v); !bytes.Equal(got, want) {
			t.Fatalf("AppendVerdict mismatch\n got %s\nwant %s", got, want)
		}

		rr := RemoveRequest{ID: ar.Task.ID}
		want, _ = json.Marshal(&rr)
		if got := AppendRemoveRequest(nil, &rr); !bytes.Equal(got, want) {
			t.Fatalf("AppendRemoveRequest mismatch\n got %s\nwant %s", got, want)
		}

		rm := Removed{Removed: v.Admitted, ID: ar.Task.ID}
		want, _ = json.Marshal(&rm)
		if got := AppendRemoved(nil, &rm); !bytes.Equal(got, want) {
			t.Fatalf("AppendRemoved mismatch\n got %s\nwant %s", got, want)
		}
	}
}

// TestFastParsersRoundTrip: stdlib-marshaled values must parse back
// identically on the fast path (or decline, never mis-parse).
func TestFastParsersRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		ar := randAdmit(rng)
		data, _ := json.Marshal(&ar)
		var got AdmitRequest
		if core, corePresent, ok := ParseAdmitRequest(data, &got); ok {
			if got.Core != nil {
				t.Fatalf("fast path attached Core itself on %s", data)
			}
			if corePresent {
				got.Core = &core
			}
			var want AdmitRequest
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatal(err)
			}
			if !admitEqual(got, want) {
				t.Fatalf("ParseAdmitRequest mismatch on %s\n got %+v\nwant %+v", data, got, want)
			}
		} else if fastSafeString(ar.Task.Name) && !bytes.Contains(data, []byte("-9223372036854775808")) {
			// MinInt64 overflows the fast accumulator and legitimately
			// falls back; everything else in this corpus must parse.
			t.Fatalf("ParseAdmitRequest declined %s", data)
		}

		v := randVerdict(rng)
		data, _ = json.Marshal(&v)
		var gv Verdict
		if !ParseVerdict(data, &gv) || gv != v {
			t.Fatalf("ParseVerdict failed on %s: %+v", data, gv)
		}

		rr := RemoveRequest{ID: ar.Task.ID}
		data, _ = json.Marshal(&rr)
		var gr RemoveRequest
		if ok := ParseRemoveRequest(data, &gr); ok && gr != rr {
			t.Fatalf("ParseRemoveRequest mismatch on %s: %+v", data, gr)
		} else if !ok && rr.ID != math.MinInt64 {
			t.Fatalf("ParseRemoveRequest declined %s", data)
		}

		rm := Removed{Removed: v.Pending, ID: v.TaskID}
		data, _ = json.Marshal(&rm)
		var gm Removed
		if !ParseRemoved(data, &gm) || gm != rm {
			t.Fatalf("ParseRemoved failed on %s: %+v", data, gm)
		}
	}
}

func admitEqual(a, b AdmitRequest) bool {
	if a.Task != b.Task || a.Hold != b.Hold {
		return false
	}
	if (a.Core == nil) != (b.Core == nil) {
		return false
	}
	return a.Core == nil || *a.Core == *b.Core
}

// TestFastParseEdgeCases pins hand-picked wire corner cases: unknown
// fields, whitespace, null core, duplicate keys, and inputs that must
// decline to the stdlib fallback.
func TestFastParseEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"minimal", `{"task":{"id":1,"wcet_ns":2,"period_ns":3}}`},
		{"whitespace", " {\n\t\"task\" : { \"id\" : 1 , \"wcet_ns\" : 2 , \"period_ns\" : 3 } , \"hold\" : true }\r\n"},
		{"unknown_fields", `{"v":2,"task":{"id":1,"wcet_ns":2,"period_ns":3,"labels":["a","b"],"meta":{"x":1.5}},"extra":null}`},
		{"core_null", `{"task":{"id":1,"wcet_ns":2,"period_ns":3},"core":null}`},
		{"core_set", `{"task":{"id":1,"wcet_ns":2,"period_ns":3},"core":2}`},
		{"core_then_null", `{"task":{"id":1,"wcet_ns":2,"period_ns":3},"core":2,"core":null}`},
		{"null_then_core", `{"task":{"id":1,"wcet_ns":2,"period_ns":3},"core":null,"core":3}`},
		{"dup_task_merge", `{"task":{"id":1,"wcet_ns":2,"period_ns":3},"task":{"id":9}}`},
		{"negative", `{"task":{"id":-5,"wcet_ns":2,"period_ns":3,"priority":-1}}`},
		{"empty_obj_task", `{"task":{}}`},
	}
	for _, tc := range cases {
		var want AdmitRequest
		wantErr := json.Unmarshal([]byte(tc.in), &want) != nil
		var got AdmitRequest
		core, corePresent, ok := ParseAdmitRequest([]byte(tc.in), &got)
		if !ok {
			t.Fatalf("%s: fast path declined valid input", tc.name)
		}
		if wantErr {
			t.Fatalf("%s: fast path accepted input stdlib rejects", tc.name)
		}
		if got.Core != nil {
			t.Fatalf("%s: fast path attached Core itself", tc.name)
		}
		if corePresent {
			got.Core = &core
		}
		if !admitEqual(got, want) {
			t.Fatalf("%s: mismatch\n got %+v core=%v\nwant %+v", tc.name, got, got.Core, want)
		}
	}

	declined := []string{
		``,
		`{`,
		`[]`,
		`{"task":{"id":1.5,"wcet_ns":2,"period_ns":3}}`,                  // float
		`{"task":{"id":1e3,"wcet_ns":2,"period_ns":3}}`,                  // exponent
		`{"task":{"id":01,"wcet_ns":2,"period_ns":3}}`,                   // leading zero
		`{"task":{"id":1,"wcet_ns":2,"period_ns":3}} tail`,               // trailing data
		`{"task":{"name":"a\"b","id":1,"wcet_ns":2,"period_ns":3}}`,      // escape in kept string
		`{"task":{"id":99999999999999999999,"wcet_ns":2,"period_ns":3}}`, // overflow
		`{"task":{"id":1,"wcet_ns":2,"period_ns":3},"hold":1}`,           // wrong type
		`{"task":{"id":1,"wcet_ns":2,"period_ns":3},`,                    // truncated
	}
	for _, in := range declined {
		var got AdmitRequest
		if _, _, ok := ParseAdmitRequest([]byte(in), &got); ok {
			t.Fatalf("fast path accepted %q (must decline to fallback)", in)
		}
		if got != (AdmitRequest{}) {
			t.Fatalf("declined parse of %q left dst dirty: %+v", in, got)
		}
	}

	// Malformed input the fast path skips over must also decline, so
	// the stdlib fallback owns all error reporting.
	badSkips := []string{
		`{"x":1.2.3,"task":{"id":1,"wcet_ns":2,"period_ns":3}}`,
		`{"x":"\q","task":{"id":1,"wcet_ns":2,"period_ns":3}}`,
		`{"x":[1,],"task":{"id":1,"wcet_ns":2,"period_ns":3}}`,
		`{"x":{"a":},"task":{"id":1,"wcet_ns":2,"period_ns":3}}`,
		`{"x":truth,"task":{"id":1,"wcet_ns":2,"period_ns":3}}`,
	}
	for _, in := range badSkips {
		var got AdmitRequest
		if _, _, ok := ParseAdmitRequest([]byte(in), &got); ok {
			t.Fatalf("fast path accepted malformed skip %q", in)
		}
	}
}

// FuzzFastParseAdmit cross-checks the fast parser against
// encoding/json on arbitrary bytes: whenever the fast path accepts,
// stdlib must accept with the same value.
func FuzzFastParseAdmit(f *testing.F) {
	f.Add([]byte(`{"task":{"id":1,"wcet_ns":2,"period_ns":3},"core":0,"hold":true}`))
	f.Add([]byte(`{"task":{"name":"n","id":1,"wcet_ns":2,"period_ns":3},"core":null}`))
	f.Add([]byte(`{"task":{"id":-1,"wss":65536,"priority":7,"wcet_ns":2,"period_ns":3,"deadline_ns":4,"core":1}}`))
	f.Add([]byte(`{"z":[{"a":1},"s",1.25e-3,null,true],"task":{}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var got AdmitRequest
		core, corePresent, ok := ParseAdmitRequest(data, &got)
		if !ok {
			return
		}
		if corePresent {
			got.Core = &core
		}
		var want AdmitRequest
		if err := json.Unmarshal(data, &want); err != nil {
			t.Fatalf("fast path accepted %q but stdlib rejects: %v", data, err)
		}
		if !admitEqual(got, want) {
			t.Fatalf("divergence on %q\n got %+v\nwant %+v", data, got, want)
		}
	})
}

// FuzzFastParseVerdict does the same for the response side.
func FuzzFastParseVerdict(f *testing.F) {
	f.Add([]byte(`{"task_id":1,"admitted":true,"core":0,"probes":3}`))
	f.Add([]byte(`{"task_id":1,"admitted":false,"core":-1,"pending":true,"probes":0}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var got Verdict
		if !ParseVerdict(data, &got) {
			return
		}
		var want Verdict
		if err := json.Unmarshal(data, &want); err != nil {
			t.Fatalf("fast path accepted %q but stdlib rejects: %v", data, err)
		}
		if got != want {
			t.Fatalf("divergence on %q: got %+v want %+v", data, got, want)
		}
	})
}

// TestAppendJSONFloatMatchesStdlib pins the float encoder to
// encoding/json's exact rendering — shortest round-trip form, 'e'
// notation outside [1e-6, 1e21), exponent zero-trim — over the
// boundary corpus and a large random sweep. NaN/Inf must decline
// (json.Marshal errors there; the fallback produces that error).
func TestAppendJSONFloatMatchesStdlib(t *testing.T) {
	corpus := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, -0.5, 0.1, 1.0 / 3.0,
		1e-6, 9.999999e-7, 1e-7, 2e-6,
		1e21, 9.99999e20, 1.0000001e21, 1e22, 5e-324,
		math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64,
		1e-100, 1e100, 123456789.123456789, 0.30000000000000004,
		42, -42, 1.25e-3, 2.5e308 / 2,
	}
	check := func(f float64) {
		t.Helper()
		got, ok := appendJSONFloat(nil, f)
		want, err := json.Marshal(f)
		if err != nil {
			if ok {
				t.Fatalf("appendJSONFloat(%v) ok, but json.Marshal errors: %v", f, err)
			}
			return
		}
		if !ok {
			t.Fatalf("appendJSONFloat(%v) declined, but json.Marshal renders %s", f, want)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("appendJSONFloat(%v) = %s, json.Marshal = %s", f, got, want)
		}
	}
	for _, f := range corpus {
		check(f)
	}
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, ok := appendJSONFloat(nil, f); ok {
			t.Fatalf("appendJSONFloat(%v) must decline", f)
		}
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		switch rng.Intn(4) {
		case 0:
			check(rng.Float64())
		case 1:
			check((rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(44)-22)))
		case 2:
			check(math.Float64frombits(rng.Uint64())) // covers NaN/Inf bit patterns too
		default:
			check(float64(rng.Int63n(1<<53)) * math.Pow(10, float64(rng.Intn(10)-5)))
		}
	}
}

func randState(rng *rand.Rand) State {
	st := State{
		Name:   []string{"", "rack1", "s-99", "αβ", "a\"b"}[rng.Intn(5)],
		Cores:  rng.Intn(9),
		Policy: []string{"fp", "edf", ""}[rng.Intn(3)],
	}
	for i, n := 0, rng.Intn(5); i < n; i++ {
		st.Tasks = append(st.Tasks, randTask(rng))
	}
	for i, n := 0, rng.Intn(5); i < n; i++ {
		st.CoreUtilization = append(st.CoreUtilization, rng.Float64()*1.5)
	}
	if rng.Intn(2) == 0 {
		v := rng.Intn(2) == 0
		st.Schedulable = &v
	}
	st.ProbePending = rng.Intn(4) == 0
	return st
}

// parseSafe reports whether json.Marshal renders s with no escape
// sequences — the fast scanner's str() declines on '\\', so only
// escape-free strings stay on the fast parse path (non-ASCII is fine:
// stdlib emits raw UTF-8 for it).
func parseSafe(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return false
		}
	}
	return true
}

// stateEqual compares semantically: ParseState normalizes empty
// slices to nil (capacity reuse), so nilness of length-0 slices is
// not significant; Schedulable compares by presence + value.
func stateEqual(a, b State) bool {
	if a.Name != b.Name || a.Cores != b.Cores || a.Policy != b.Policy || a.ProbePending != b.ProbePending {
		return false
	}
	if len(a.Tasks) != len(b.Tasks) || len(a.Splits) != len(b.Splits) || len(a.CoreUtilization) != len(b.CoreUtilization) {
		return false
	}
	for i := range a.Tasks {
		if a.Tasks[i] != b.Tasks[i] {
			return false
		}
	}
	for i := range a.CoreUtilization {
		if a.CoreUtilization[i] != b.CoreUtilization[i] {
			return false
		}
	}
	if (a.Schedulable == nil) != (b.Schedulable == nil) {
		return false
	}
	return a.Schedulable == nil || *a.Schedulable == *b.Schedulable
}

// TestStateFastParseDifferential round-trips random States through
// json.Marshal and the fast parser, comparing against json.Unmarshal.
// The same dst is reused across iterations to exercise the
// capacity-reuse path (stale Tasks/Schedulable backing must not leak
// into the next parse). States carrying splits must decline.
func TestStateFastParseDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var got State // reused on purpose: capacity-reuse path
	for i := 0; i < 500; i++ {
		st := randState(rng)
		data, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		// The fast path may decline on escape-carrying strings and on
		// MinInt64 fields (integer() declines it to avoid the uint64
		// wrap check) — both fall back to stdlib, neither is a bug.
		mayDecline := !parseSafe(st.Name) || !parseSafe(st.Policy)
		for _, tk := range st.Tasks {
			mayDecline = mayDecline || !parseSafe(tk.Name) ||
				tk.ID == math.MinInt64 || tk.WCETNs == math.MinInt64 ||
				tk.PeriodNs == math.MinInt64 || tk.DeadlineNs == math.MinInt64 ||
				tk.WSS == math.MinInt64
		}
		if !ParseState(data, &got) {
			if !mayDecline {
				t.Fatalf("fast path declined parsable stdlib output %s", data)
			}
			got = State{} // contract: zero dst before falling back
			continue
		}
		var want State
		if err := json.Unmarshal(data, &want); err != nil {
			t.Fatal(err)
		}
		if !stateEqual(got, want) {
			t.Fatalf("divergence on %s\n got %+v\nwant %+v", data, got, want)
		}
	}

	// Splits are the cold nested shape: always fall back.
	withSplits := State{Name: "s", Cores: 2, Splits: []Split{{Task: Task{ID: 1}, Parts: nil}}}
	data, err := json.Marshal(withSplits)
	if err != nil {
		t.Fatal(err)
	}
	var dst State
	if ParseState(data, &dst) {
		t.Fatalf("fast path must decline states carrying splits: %s", data)
	}
	// But an explicit null splits key is fine.
	if !ParseState([]byte(`{"name":"s","cores":1,"policy":"fp","tasks":null,"splits":null,"core_utilization":null}`), &dst) {
		t.Fatal("fast path declined null splits")
	}
}

// FuzzFastParseState cross-checks ParseState against encoding/json on
// arbitrary bytes: whenever the fast path accepts, stdlib must accept
// with the same value.
func FuzzFastParseState(f *testing.F) {
	f.Add([]byte(`{"name":"r","cores":4,"policy":"fp","tasks":[{"id":1,"wcet_ns":2,"period_ns":3}],"core_utilization":[0.25,0],"schedulable":true}`))
	f.Add([]byte(`{"name":"","cores":0,"policy":"edf","tasks":[],"core_utilization":[1e-7],"probe_pending":true}`))
	f.Add([]byte(`{"name":"r","cores":1,"policy":"fp","tasks":null,"core_utilization":null,"schedulable":null}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var got State
		if !ParseState(data, &got) {
			return
		}
		var want State
		if err := json.Unmarshal(data, &want); err != nil {
			t.Fatalf("fast path accepted %q but stdlib rejects: %v", data, err)
		}
		if !stateEqual(got, want) {
			t.Fatalf("divergence on %q\n got %+v\nwant %+v", data, got, want)
		}
	})
}

func randSessionStats(rng *rand.Rand) SessionStats {
	i64 := func() int64 { return int64(rng.Intn(1 << 20)) }
	rate := func() float64 {
		switch rng.Intn(4) {
		case 0:
			return 0
		case 1:
			return rng.Float64()
		case 2:
			return rng.Float64() * 1e-7 // forces 'e' notation
		default:
			return float64(rng.Intn(100)) / 7.0
		}
	}
	return SessionStats{
		Name:     []string{"rack1", "s", "", "a\"b", "αβ"}[rng.Intn(5)],
		Tasks:    rng.Intn(100),
		Admitted: i64(), Rejected: i64(), Removed: i64(),
		StateCacheHits: i64(), StateCacheMisses: i64(),
		Admission: AdmissionStats{
			Probes: i64(), FullTests: i64(), CoreTests: i64(),
			VerdictHits: i64(), FPSolves: i64(), FPIterations: i64(),
			WarmStarts: i64(), CacheHitRate: rate(),
			MeanFPIterations: rate(), WarmStartRate: rate(),
		},
	}
}

// TestSessionStatsCodecDifferential pins both directions of the stats
// codec: AppendSessionStats must be byte-identical to json.Marshal
// whenever it accepts (declining exactly the escape-requiring names),
// and ParseSessionStats must agree with json.Unmarshal, including
// reused-destination parses.
func TestSessionStatsCodecDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var got SessionStats // reused on purpose
	for i := 0; i < 500; i++ {
		s := randSessionStats(rng)
		want, err := json.Marshal(&s)
		if err != nil {
			t.Fatal(err)
		}
		enc, ok := AppendSessionStats(nil, &s)
		if safe := fastSafeString(s.Name); ok != safe {
			t.Fatalf("AppendSessionStats ok=%v for name %q (fastSafeString=%v)", ok, s.Name, safe)
		}
		if ok && !bytes.Equal(enc, want) {
			t.Fatalf("encoder divergence\n got %s\nwant %s", enc, want)
		}
		if !ParseSessionStats(want, &got) {
			if parseSafe(s.Name) {
				t.Fatalf("fast path declined escape-free stdlib output %s", want)
			}
			got = SessionStats{} // contract: zero dst before falling back
			continue
		}
		if got != s {
			t.Fatalf("parse divergence on %s\n got %+v\nwant %+v", want, got, s)
		}
	}
	// NaN rate: encoder declines (json.Marshal would error).
	bad := SessionStats{Name: "s", Admission: AdmissionStats{CacheHitRate: math.NaN()}}
	if _, ok := AppendSessionStats(nil, &bad); ok {
		t.Fatal("AppendSessionStats must decline NaN rates")
	}
}
