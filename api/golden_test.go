package api

import (
	"bytes"
	"encoding/json"
	"net/http"
	"reflect"
	"testing"
)

func intp(v int) *int       { return &v }
func boolp(v bool) *bool    { return &v }
func int64p(v int64) *int64 { return &v }

// goldenCases pins the v1 wire schema: one populated value and its
// exact JSON for every type that crosses the wire. A failure here
// means the schema changed — which within a version is only legal as
// a pure addition (extend the golden, never edit existing fields).
var goldenCases = []struct {
	name   string
	value  any
	golden string
}{
	{
		"Task",
		Task{ID: 7, Name: "cam", WCETNs: 2e6, PeriodNs: 1e7, DeadlineNs: 8e6, Priority: 3, WSS: 65536, Core: 2},
		`{"id":7,"name":"cam","wcet_ns":2000000,"period_ns":10000000,"deadline_ns":8000000,"priority":3,"wss":65536,"core":2}`,
	},
	{
		"Task-minimal",
		Task{ID: 1, WCETNs: 1e6, PeriodNs: 1e7},
		`{"id":1,"wcet_ns":1000000,"period_ns":10000000}`,
	},
	{
		"Part",
		Part{Core: 1, BudgetNs: 3e6},
		`{"core":1,"budget_ns":3000000}`,
	},
	{
		"Split",
		Split{
			Task:      Task{ID: 2, WCETNs: 6e6, PeriodNs: 1e7},
			Parts:     []Part{{Core: 0, BudgetNs: 3e6}, {Core: 1, BudgetNs: 3e6}},
			WindowsNs: []int64{5e6, 5e6},
		},
		`{"task":{"id":2,"wcet_ns":6000000,"period_ns":10000000},"parts":[{"core":0,"budget_ns":3000000},{"core":1,"budget_ns":3000000}],"windows_ns":[5000000,5000000]}`,
	},
	{
		"CreateSessionRequest",
		CreateSessionRequest{Name: "rack1", Cores: 4, Policy: "fp", Model: json.RawMessage(`"paper"`)},
		`{"name":"rack1","cores":4,"policy":"fp","model":"paper"}`,
	},
	{
		"SessionCreated",
		SessionCreated{Name: "rack1", Cores: 4, Policy: "fp", Version: "v1"},
		`{"name":"rack1","cores":4,"policy":"fp","version":"v1"}`,
	},
	{
		"SessionList",
		SessionList{Sessions: []string{"a", "b"}, Count: 2},
		`{"sessions":["a","b"],"count":2}`,
	},
	{
		"SessionDeleted",
		SessionDeleted{Deleted: true},
		`{"deleted":true}`,
	},
	{
		"AdmitRequest",
		AdmitRequest{Task: Task{ID: 1, WCETNs: 1e6, PeriodNs: 1e7, Priority: 1}, Core: intp(0), Hold: true},
		`{"task":{"id":1,"wcet_ns":1000000,"period_ns":10000000,"priority":1},"core":0,"hold":true}`,
	},
	{
		"SplitRequest",
		SplitRequest{Split: Split{Task: Task{ID: 2, WCETNs: 2e6, PeriodNs: 1e7}, Parts: []Part{{Core: 0, BudgetNs: 2e6}}}, Hold: true},
		`{"split":{"task":{"id":2,"wcet_ns":2000000,"period_ns":10000000},"parts":[{"core":0,"budget_ns":2000000}]},"hold":true}`,
	},
	{
		"RemoveRequest",
		RemoveRequest{ID: 9},
		`{"id":9}`,
	},
	{
		"Removed",
		Removed{Removed: true, ID: 9},
		`{"removed":true,"id":9}`,
	},
	{
		"Verdict",
		Verdict{TaskID: 7, Admitted: true, Core: 2, Pending: true, Probes: 3},
		`{"task_id":7,"admitted":true,"core":2,"pending":true,"probes":3}`,
	},
	{
		"Verdict-rejected",
		Verdict{TaskID: 7, Admitted: false, Core: -1, Probes: 4},
		`{"task_id":7,"admitted":false,"core":-1,"probes":4}`,
	},
	{
		"State",
		State{
			Name: "rack1", Cores: 2, Policy: "edf",
			Tasks:           []Task{{ID: 1, WCETNs: 1e6, PeriodNs: 1e7}},
			Splits:          []Split{{Task: Task{ID: 2, WCETNs: 2e6, PeriodNs: 1e7}, Parts: []Part{{Core: 0, BudgetNs: 2e6}}}},
			CoreUtilization: []float64{0.5, 0.25},
			Schedulable:     boolp(true),
		},
		`{"name":"rack1","cores":2,"policy":"edf","tasks":[{"id":1,"wcet_ns":1000000,"period_ns":10000000}],"splits":[{"task":{"id":2,"wcet_ns":2000000,"period_ns":10000000},"parts":[{"core":0,"budget_ns":2000000}]}],"core_utilization":[0.5,0.25],"schedulable":true}`,
	},
	{
		"State-pending",
		State{Name: "r", Cores: 1, Policy: "fp", Tasks: nil, CoreUtilization: []float64{0}, ProbePending: true},
		`{"name":"r","cores":1,"policy":"fp","tasks":null,"core_utilization":[0],"probe_pending":true}`,
	},
	{
		"SessionStats",
		SessionStats{Name: "rack1", Tasks: 3, Admitted: 5, Rejected: 2, Removed: 1,
			StateCacheHits: 8, StateCacheMisses: 2,
			Admission: AdmissionStats{Probes: 10, FullTests: 1, CoreTests: 9, VerdictHits: 4, FPSolves: 6, FPIterations: 18, WarmStarts: 3, CacheHitRate: 0.4, MeanFPIterations: 3, WarmStartRate: 0.5}},
		`{"name":"rack1","tasks":3,"admitted":5,"rejected":2,"removed":1,"state_cache_hits":8,"state_cache_misses":2,"admission":{"probes":10,"full_tests":1,"core_tests":9,"verdict_hits":4,"fp_solves":6,"fp_iterations":18,"warm_starts":3,"cache_hit_rate":0.4,"mean_fp_iterations":3,"warm_start_rate":0.5}}`,
	},
	{
		"ServerStats",
		ServerStats{Requests: 100, SessionsLive: 2, SessionsCreated: 3, SessionsEvicted: 1, SessionsRestored: 1, SessionsDeleted: 1,
			AdmissionFlushed: AdmissionStats{Probes: 7}},
		`{"requests":100,"sessions_live":2,"sessions_created":3,"sessions_evicted":1,"sessions_restored":1,"sessions_deleted":1,"admission_flushed":{"probes":7,"full_tests":0,"core_tests":0,"verdict_hits":0,"fp_solves":0,"fp_iterations":0,"warm_starts":0,"cache_hit_rate":0,"mean_fp_iterations":0,"warm_start_rate":0}}`,
	},
	{
		"Health",
		Health{Status: "ok"},
		`{"status":"ok"}`,
	},
	{
		"TaskGen",
		TaskGen{N: 12, TotalUtilization: 2.5, MaxTaskUtilization: 0.8, PeriodMinNs: 1e7, PeriodMaxNs: 1e9, Periods: "harmonic", WSSMin: 4096, WSSMax: 262144, Seed: 7},
		`{"n":12,"total_utilization":2.5,"max_task_utilization":0.8,"period_min_ns":10000000,"period_max_ns":1000000000,"periods":"harmonic","wss_min":4096,"wss_max":262144,"seed":7}`,
	},
	{
		"BatchRequest",
		BatchRequest{Generate: &TaskGen{N: 16, TotalUtilization: 2.5, Seed: 7}, Order: "util-desc"},
		`{"generate":{"n":16,"total_utilization":2.5,"seed":7},"order":"util-desc"}`,
	},
	{
		"BatchRequest-try-only",
		BatchRequest{Tasks: []Task{{ID: 1, WCETNs: 1e6, PeriodNs: 1e7}}, TryOnly: true},
		`{"tasks":[{"id":1,"wcet_ns":1000000,"period_ns":10000000}],"try_only":true}`,
	},
	{
		"BatchSummary",
		BatchSummary{Done: true, Admitted: 10, Rejected: 2, Schedulable: true, TaskCount: 10, Canceled: true},
		`{"done":true,"admitted":10,"rejected":2,"schedulable":true,"task_count":10,"canceled":true}`,
	},
	{
		"BatchSummary-try-only",
		BatchSummary{Done: true, Admitted: 3, Rejected: 1, Schedulable: true, TaskCount: 5, TryOnly: true},
		`{"done":true,"admitted":3,"rejected":1,"schedulable":true,"task_count":5,"try_only":true}`,
	},
	{
		"SweepRequest",
		SweepRequest{Cores: 4, Tasks: 12, SetsPerPoint: 50, Algorithms: []string{"fpts", "ffd"}, Model: json.RawMessage(`"zero"`), Seed: 3, Utilizations: []float64{1.2, 1.6}, Stream: true},
		`{"cores":4,"tasks":12,"sets_per_point":50,"algorithms":["fpts","ffd"],"model":"zero","seed":3,"utilizations":[1.2,1.6],"stream":true}`,
	},
	{
		"SweepResult",
		SweepResult{Cores: 2, Tasks: 6, SetsPerPoint: 4, Seed: 3, Canceled: true,
			Series:    []SweepSeries{{Algorithm: "FFD", Points: []SweepPoint{{TotalUtilization: 1.2, PerCoreUtilization: 0.6, Accepted: 3, Total: 4, Ratio: 0.75, WilsonLo: 0.3, WilsonHi: 0.95, MeanSplits: 0.5, SimViolations: 0}}}},
			Admission: AdmissionStats{Probes: 42}},
		`{"cores":2,"tasks":6,"sets_per_point":4,"seed":3,"canceled":true,"series":[{"algorithm":"FFD","points":[{"total_utilization":1.2,"per_core_utilization":0.6,"accepted":3,"total":4,"ratio":0.75,"wilson_lo":0.3,"wilson_hi":0.95,"mean_splits":0.5,"sim_violations":0}]}],"admission":{"probes":42,"full_tests":0,"core_tests":0,"verdict_hits":0,"fp_solves":0,"fp_iterations":0,"warm_starts":0,"cache_hit_rate":0,"mean_fp_iterations":0,"warm_start_rate":0}}`,
	},
	{
		"SweepProgress",
		SweepProgress{Algorithm: "FFD", TotalUtilization: 1.2, Accepted: 3, Total: 4, Ratio: 0.75, WilsonLo: 0.3, WilsonHi: 0.95, DoneShards: 2, TotalShards: 8, Admission: AdmissionStats{Probes: 5}},
		`{"algorithm":"FFD","total_utilization":1.2,"accepted":3,"total":4,"ratio":0.75,"wilson_lo":0.3,"wilson_hi":0.95,"done_shards":2,"total_shards":8,"admission":{"probes":5,"full_tests":0,"core_tests":0,"verdict_hits":0,"fp_solves":0,"fp_iterations":0,"warm_starts":0,"cache_hit_rate":0,"mean_fp_iterations":0,"warm_start_rate":0}}`,
	},
	{
		"FeedHello",
		FeedHello{Name: "rack1", Seq: 42, Tasks: 7},
		`{"name":"rack1","seq":42,"tasks":7}`,
	},
	{
		"FeedHello-resume",
		FeedHello{Name: "rack1", Seq: 42, Tasks: 7, ResumeFrom: int64p(17)},
		`{"name":"rack1","seq":42,"tasks":7,"resume_from":17}`,
	},
	{
		"FeedEvent",
		FeedEvent{Seq: 43, Op: "admit", Task: 9, Core: 2, Tasks: 8},
		`{"seq":43,"op":"admit","task":9,"core":2,"tasks":8}`,
	},
	{
		"FeedEvent-remove",
		FeedEvent{Seq: 44, Op: "remove", Task: 9, Core: -1, Tasks: 7},
		`{"seq":44,"op":"remove","task":9,"core":-1,"tasks":7}`,
	},
	{
		"AuditReport",
		AuditReport{Name: "rack1", Seq: 5, Op: "admit", TaskID: 9, Core: 1, Tasks: 4, Admitted: true, Schedulable: true,
			Task:      &Task{ID: 9, WCETNs: 1e6, PeriodNs: 1e7, Priority: 2},
			Admission: AdmissionStats{Probes: 1, FullTests: 1, FPSolves: 2, FPIterations: 6, MeanFPIterations: 3}},
		`{"name":"rack1","seq":5,"op":"admit","task_id":9,"core":1,"tasks":4,"admitted":true,"schedulable":true,"task":{"id":9,"wcet_ns":1000000,"period_ns":10000000,"priority":2},"admission":{"probes":1,"full_tests":1,"core_tests":0,"verdict_hits":0,"fp_solves":2,"fp_iterations":6,"warm_starts":0,"cache_hit_rate":0,"mean_fp_iterations":3,"warm_start_rate":0}}`,
	},
	{
		"AuditReport-remove",
		AuditReport{Name: "rack1", Seq: 6, Op: "remove", TaskID: 9, Core: -1, Tasks: 4, Admitted: true, Schedulable: true,
			Admission: AdmissionStats{}},
		`{"name":"rack1","seq":6,"op":"remove","task_id":9,"core":-1,"tasks":4,"admitted":true,"schedulable":true,"admission":{"probes":0,"full_tests":0,"core_tests":0,"verdict_hits":0,"fp_solves":0,"fp_iterations":0,"warm_starts":0,"cache_hit_rate":0,"mean_fp_iterations":0,"warm_start_rate":0}}`,
	},
	{
		"Error-seq-truncated",
		Error{Code: CodeSeqTruncated, Message: "admitd: seq 3 predates the retained commit log"},
		`{"code":"seq_truncated","message":"admitd: seq 3 predates the retained commit log"}`,
	},
	{
		"Error",
		Error{Code: CodeDuplicateTask, Message: "admitd: task id already admitted: 7"},
		`{"code":"duplicate_task","message":"admitd: task id already admitted: 7"}`,
	},
	{
		// The two held-probe conflict envelopes, pinned byte for byte
		// (both map to 409; admitd's readpath_test pins them end to
		// end over HTTP).
		"Error-probe-pending",
		Error{Code: CodeProbePending, Message: "admitd: a held probe is pending (commit or rollback first)"},
		`{"code":"probe_pending","message":"admitd: a held probe is pending (commit or rollback first)"}`,
	},
	{
		"Error-no-probe-pending",
		Error{Code: CodeNoProbePending, Message: "admitd: no probe pending"},
		`{"code":"no_probe_pending","message":"admitd: no probe pending"}`,
	},
}

// TestGoldenRoundTrip marshals every value against its golden JSON
// and unmarshals the golden back into an equal value — both
// directions of the schema pinned byte for byte.
func TestGoldenRoundTrip(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := json.Marshal(tc.value)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != tc.golden {
				t.Fatalf("marshal drift:\n got  %s\n want %s", got, tc.golden)
			}
			fresh := reflect.New(reflect.TypeOf(tc.value))
			if err := json.Unmarshal([]byte(tc.golden), fresh.Interface()); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fresh.Elem().Interface(), tc.value) {
				t.Fatalf("unmarshal drift:\n got  %#v\n want %#v", fresh.Elem().Interface(), tc.value)
			}
			// Second marshal of the decoded value must be stable.
			again, err := json.Marshal(fresh.Elem().Interface())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, again) {
				t.Fatalf("re-marshal drift:\n got  %s\n want %s", again, got)
			}
		})
	}
}

// TestForwardCompatibleDecoding: decoding must ignore unknown fields
// — a newer server may add fields at any time within a version.
func TestForwardCompatibleDecoding(t *testing.T) {
	var v Verdict
	in := `{"task_id":7,"admitted":true,"core":2,"probes":1,"added_in_v1_9":"x","nested":{"deep":1}}`
	if err := json.Unmarshal([]byte(in), &v); err != nil {
		t.Fatalf("unknown fields must not fail decoding: %v", err)
	}
	if v.TaskID != 7 || !v.Admitted || v.Core != 2 {
		t.Fatalf("known fields lost: %+v", v)
	}
}

// TestErrorCodeStatuses pins the code → HTTP status derivation,
// including the 404-vs-409 split between missing and conflicting
// resources.
func TestErrorCodeStatuses(t *testing.T) {
	want := map[Code]int{
		CodeBadRequest:          http.StatusBadRequest,
		CodeSessionNotFound:     http.StatusNotFound,
		CodeUnknownTask:         http.StatusNotFound,
		CodeSessionExists:       http.StatusConflict,
		CodeProbePending:        http.StatusConflict,
		CodeNoProbePending:      http.StatusConflict,
		CodeProbeRejected:       http.StatusConflict,
		CodeDuplicateTask:       http.StatusConflict,
		CodeSessionClosed:       http.StatusGone,
		CodeSeqTruncated:        http.StatusGone,
		CodeInternal:            http.StatusInternalServerError,
		Code("from_the_future"): http.StatusBadRequest,
	}
	for code, status := range want {
		if got := code.HTTPStatus(); got != status {
			t.Errorf("%s: HTTP %d, want %d", code, got, status)
		}
	}
}

// TestDecodeError covers both the envelope path and the degraded
// (non-envelope body) path.
func TestDecodeError(t *testing.T) {
	e := DecodeError(409, []byte(`{"code":"duplicate_task","message":"nope"}`))
	if e.Code != CodeDuplicateTask || e.Message != "nope" {
		t.Fatalf("envelope decode: %+v", e)
	}
	if !IsCode(e, CodeDuplicateTask) || IsCode(e, CodeUnknownTask) {
		t.Fatal("IsCode mismatch")
	}
	if e.HTTPStatus() != http.StatusConflict {
		t.Fatalf("status: %d", e.HTTPStatus())
	}
	deg := DecodeError(502, []byte(`<html>bad gateway</html>`))
	if deg.Code != CodeInternal || deg.Message == "" {
		t.Fatalf("degraded decode: %+v", deg)
	}
	deg400 := DecodeError(400, []byte(`not json`))
	if deg400.Code != CodeBadRequest {
		t.Fatalf("degraded 4xx decode: %+v", deg400)
	}
}

// TestPaths pins the route construction (escaping included).
func TestPaths(t *testing.T) {
	if SessionPath("rack1") != "/v1/sessions/rack1" {
		t.Fatal(SessionPath("rack1"))
	}
	if SessionOpPath("a b/c", OpAdmit) != "/v1/sessions/a%20b%2Fc/admit" {
		t.Fatal(SessionOpPath("a b/c", OpAdmit))
	}
	if PathSweep != "/v1/sweep" || PathStats != "/v1/stats" || PathSessions != "/v1/sessions" {
		t.Fatal("route roots drifted")
	}
}
