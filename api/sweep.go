package api

import (
	"encoding/json"
	"io"
)

// SweepRequest runs a whole acceptance-ratio sweep server-side —
// the batch experiment driver as a service, sharing its result
// schema with the spexp CLI. Stream adds NDJSON SweepProgress lines
// before the final SweepResult object.
type SweepRequest struct {
	Cores        int             `json:"cores"`
	Tasks        int             `json:"tasks"`
	SetsPerPoint int             `json:"sets_per_point"`
	Algorithms   []string        `json:"algorithms,omitempty"`
	Model        json.RawMessage `json:"model,omitempty"`
	Seed         int64           `json:"seed,omitempty"`
	Utilizations []float64       `json:"utilizations,omitempty"`
	Stream       bool            `json:"stream,omitempty"`
}

// AdmissionStats is the wire form of the admission-work counters,
// with the derived rates precomputed so consumers need no formulas.
type AdmissionStats struct {
	Probes           int64   `json:"probes"`
	FullTests        int64   `json:"full_tests"`
	CoreTests        int64   `json:"core_tests"`
	VerdictHits      int64   `json:"verdict_hits"`
	FPSolves         int64   `json:"fp_solves"`
	FPIterations     int64   `json:"fp_iterations"`
	WarmStarts       int64   `json:"warm_starts"`
	CacheHitRate     float64 `json:"cache_hit_rate"`
	MeanFPIterations float64 `json:"mean_fp_iterations"`
	WarmStartRate    float64 `json:"warm_start_rate"`
}

// SweepPoint is one (algorithm × utilization) cell.
type SweepPoint struct {
	TotalUtilization   float64 `json:"total_utilization"`
	PerCoreUtilization float64 `json:"per_core_utilization"`
	Accepted           int     `json:"accepted"`
	Total              int     `json:"total"`
	Ratio              float64 `json:"ratio"`
	WilsonLo           float64 `json:"wilson_lo"`
	WilsonHi           float64 `json:"wilson_hi"`
	MeanSplits         float64 `json:"mean_splits"`
	SimViolations      int     `json:"sim_violations"`
}

// SweepSeries is one algorithm's acceptance curve.
type SweepSeries struct {
	Algorithm string       `json:"algorithm"`
	Points    []SweepPoint `json:"points"`
}

// SweepResult is the wire form of a whole acceptance-ratio sweep —
// the same schema whether produced by spexp -json or the sweep
// route.
type SweepResult struct {
	Cores        int            `json:"cores"`
	Tasks        int            `json:"tasks"`
	SetsPerPoint int            `json:"sets_per_point"`
	Seed         int64          `json:"seed"`
	Canceled     bool           `json:"canceled,omitempty"`
	Series       []SweepSeries  `json:"series"`
	Admission    AdmissionStats `json:"admission"`
}

// Encode writes the sweep as indented JSON.
func (s *SweepResult) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// SweepProgress is one streaming partial-result line (NDJSON),
// emitted while a streamed sweep runs.
type SweepProgress struct {
	Algorithm        string         `json:"algorithm"`
	TotalUtilization float64        `json:"total_utilization"`
	Accepted         int            `json:"accepted"`
	Total            int            `json:"total"`
	Ratio            float64        `json:"ratio"`
	WilsonLo         float64        `json:"wilson_lo"`
	WilsonHi         float64        `json:"wilson_hi"`
	DoneShards       int            `json:"done_shards"`
	TotalShards      int            `json:"total_shards"`
	Admission        AdmissionStats `json:"admission"`
}
