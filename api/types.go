package api

import "encoding/json"

// Task is the wire form of one sporadic task. Durations are
// nanoseconds. Core carries the placement in state/snapshot output
// (and is ignored on input — admission decides the placement).
type Task struct {
	ID         int64  `json:"id"`
	Name       string `json:"name,omitempty"`
	WCETNs     int64  `json:"wcet_ns"`
	PeriodNs   int64  `json:"period_ns"`
	DeadlineNs int64  `json:"deadline_ns,omitempty"`
	Priority   int    `json:"priority,omitempty"`
	WSS        int64  `json:"wss,omitempty"`
	Core       int    `json:"core,omitempty"`
}

// Part is one per-core share of a split task.
type Part struct {
	Core     int   `json:"core"`
	BudgetNs int64 `json:"budget_ns"`
}

// Split is the wire form of a split task: the task, its per-core
// budgets, and (EDF sessions) the EDF-WM deadline windows.
type Split struct {
	Task      Task    `json:"task"`
	Parts     []Part  `json:"parts"`
	WindowsNs []int64 `json:"windows_ns,omitempty"`
}

// CreateSessionRequest opens a named cluster session.
type CreateSessionRequest struct {
	Name  string `json:"name"`
	Cores int    `json:"cores"`
	// Policy is "fp" (default) or "edf".
	Policy string `json:"policy,omitempty"`
	// Model is "paper" (default), "zero", or an inline overhead-model
	// object in the spexp -model JSON schema.
	Model json.RawMessage `json:"model,omitempty"`
}

// SessionCreated acknowledges a created session.
type SessionCreated struct {
	Name    string `json:"name"`
	Cores   int    `json:"cores"`
	Policy  string `json:"policy"`
	Version string `json:"version"`
}

// SessionList names the live sessions.
type SessionList struct {
	Sessions []string `json:"sessions"`
	Count    int      `json:"count"`
}

// SessionDeleted acknowledges a deleted session.
type SessionDeleted struct {
	Deleted bool `json:"deleted"`
}

// AdmitRequest asks whether a task can join the session. A nil Core
// means first-fit over all cores; Hold (try endpoint only) keeps the
// probe pending for an explicit commit/rollback.
type AdmitRequest struct {
	Task Task `json:"task"`
	Core *int `json:"core,omitempty"`
	Hold bool `json:"hold,omitempty"`
}

// SplitRequest probes or admits a split task.
type SplitRequest struct {
	Split Split `json:"split"`
	Hold  bool  `json:"hold,omitempty"`
}

// RemoveRequest removes a previously admitted task by ID.
type RemoveRequest struct {
	ID int64 `json:"id"`
}

// Removed acknowledges a removed task.
type Removed struct {
	Removed bool  `json:"removed"`
	ID      int64 `json:"id"`
}

// Verdict is the outcome of one admission request.
type Verdict struct {
	TaskID   int64 `json:"task_id"`
	Admitted bool  `json:"admitted"`
	// Core is the placement (-1 when rejected or for splits).
	Core int `json:"core"`
	// Pending marks a held probe awaiting commit/rollback.
	Pending bool `json:"pending,omitempty"`
	// Probes counts the cores probed to reach the verdict.
	Probes int `json:"probes"`
}

// State describes a session's committed assignment.
type State struct {
	Name            string    `json:"name"`
	Cores           int       `json:"cores"`
	Policy          string    `json:"policy"`
	Tasks           []Task    `json:"tasks"`
	Splits          []Split   `json:"splits,omitempty"`
	CoreUtilization []float64 `json:"core_utilization"`
	// Schedulable is the full admission test on the committed state;
	// omitted while a held probe is pending.
	Schedulable  *bool `json:"schedulable,omitempty"`
	ProbePending bool  `json:"probe_pending,omitempty"`
}

// SessionStats is one session's request and admission counters.
type SessionStats struct {
	Name     string `json:"name"`
	Tasks    int    `json:"tasks"`
	Admitted int64  `json:"admitted"`
	Rejected int64  `json:"rejected"`
	Removed  int64  `json:"removed"`
	// State-cache counters report the per-snapshot rendered-body
	// memo on the state read path: a hit served bytes cached on the
	// current snapshot, a miss re-rendered (new snapshot sequence).
	StateCacheHits   int64          `json:"state_cache_hits"`
	StateCacheMisses int64          `json:"state_cache_misses"`
	Admission        AdmissionStats `json:"admission"`
}

// ServerStats are the server-wide counters. AdmissionFlushed
// aggregates the admission counters of closed and evicted sessions;
// live-session detail is at the per-session stats route.
type ServerStats struct {
	Requests         int64          `json:"requests"`
	SessionsLive     int64          `json:"sessions_live"`
	SessionsCreated  int64          `json:"sessions_created"`
	SessionsEvicted  int64          `json:"sessions_evicted"`
	SessionsRestored int64          `json:"sessions_restored"`
	SessionsDeleted  int64          `json:"sessions_deleted"`
	AdmissionFlushed AdmissionStats `json:"admission_flushed"`
}

// Health is the liveness reply.
type Health struct {
	Status string `json:"status"`
}

// TaskGen parameterizes server-side task-set generation (the batch
// endpoint's Generate field). It mirrors the generator's JSON schema
// field for field; durations are nanoseconds.
type TaskGen struct {
	N                  int     `json:"n"`
	TotalUtilization   float64 `json:"total_utilization"`
	MaxTaskUtilization float64 `json:"max_task_utilization,omitempty"`
	PeriodMinNs        int64   `json:"period_min_ns,omitempty"`
	PeriodMaxNs        int64   `json:"period_max_ns,omitempty"`
	// Periods picks the period distribution by name: "log-uniform"
	// (default), "uniform", "harmonic", or "automotive".
	Periods string `json:"periods,omitempty"`
	WSSMin  int64  `json:"wss_min,omitempty"`
	WSSMax  int64  `json:"wss_max,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
}

// BatchRequest admits a whole task set task by task, streaming one
// verdict line per task (NDJSON) and a final BatchSummary line.
// Exactly one of Tasks or Generate must be set; Generate draws the
// set server-side. Order "util-desc" offers tasks in decreasing
// utilization (the FFD replay order); default is input order.
//
// TryOnly switches the batch to the server's concurrent read path:
// nothing is committed, and every task is probed independently
// against one immutable snapshot of the committed state (fanned
// across a bounded worker pool). Each verdict then answers "would
// this task fit right now, alone?" — successive tasks do not see
// each other, unlike the sequential admitting batch.
type BatchRequest struct {
	Tasks    []Task   `json:"tasks,omitempty"`
	Generate *TaskGen `json:"generate,omitempty"`
	Order    string   `json:"order,omitempty"`
	TryOnly  bool     `json:"try_only,omitempty"`
}

// FeedHello is the first event of an SSE change-feed subscription
// (event: hello): the sequence number the stream is anchored at —
// every later change event's seq is strictly greater, gaplessly.
// ResumeFrom is present when the subscription resumed with from_seq:
// events in (ResumeFrom, Seq] are replayed from the commit log
// before live events follow.
type FeedHello struct {
	Name       string `json:"name"`
	Seq        int64  `json:"seq"`
	Tasks      int64  `json:"tasks"`
	ResumeFrom *int64 `json:"resume_from,omitempty"`
}

// FeedEvent is one committed mutation on the SSE change feed
// (event: change): op is "admit", "split" or "remove"; Core is the
// placement (-1 for splits and removes); Tasks is the committed task
// count after the mutation. Seq numbers are dense per session — one
// per committed mutation — and survive restarts when durability is
// on.
type FeedEvent struct {
	Seq   int64  `json:"seq"`
	Op    string `json:"op"`
	Task  int64  `json:"task"`
	Core  int64  `json:"core"`
	Tasks int64  `json:"tasks"`
}

// AuditReport answers "why did mutation N commit?": the session is
// rebuilt from checkpoint + commit-log replay to seq N-1, and the
// logged mutation is re-run cold with the stats collector attached.
// Task is the replayed task (splits report the split's task); nil
// for removes. Tasks is the committed task count at N-1. Admission
// carries the re-run's collector counters (probes, fixed-point
// iterations, warm starts).
type AuditReport struct {
	Name        string         `json:"name"`
	Seq         int64          `json:"seq"`
	Op          string         `json:"op"`
	TaskID      int64          `json:"task_id"`
	Core        int            `json:"core"`
	Tasks       int            `json:"tasks"`
	Admitted    bool           `json:"admitted"`
	Schedulable bool           `json:"schedulable"`
	Task        *Task          `json:"task,omitempty"`
	Admission   AdmissionStats `json:"admission"`
}

// BatchSummary is the final NDJSON line of a batch response. TryOnly
// echoes the request's read-path mode: counts are would-admit
// answers and the session was not mutated.
type BatchSummary struct {
	Done        bool `json:"done"`
	Admitted    int  `json:"admitted"`
	Rejected    int  `json:"rejected"`
	Schedulable bool `json:"schedulable"`
	TaskCount   int  `json:"task_count"`
	Canceled    bool `json:"canceled,omitempty"`
	TryOnly     bool `json:"try_only,omitempty"`
}
