// Package repro's root benchmarks regenerate every table and figure
// of the paper (see DESIGN.md §5 for the experiment index):
//
//	BenchmarkFigure1Timeline         — Figure 1, overhead anatomy
//	BenchmarkTable1QueueOps          — Table 1, queue-op durations
//	BenchmarkTable1FunctionCosts     — Section 3 rls/sch/cnt costs
//	BenchmarkSection4AcceptanceRatio — the acceptance-ratio comparison
//	BenchmarkAblationRemotePenalty   — ablation A (remote queue cost)
//	BenchmarkAblationCPMD            — ablation B (migration CPMD)
//	BenchmarkMixedPolicySweep        — FP vs EDF as one paired sweep
//	BenchmarkAdmitdThroughput        — admission daemon requests/sec
//	BenchmarkSimulatorThroughput     — simulator events/sec (engine)
//
// Each benchmark prints the regenerated rows once (on the first
// iteration) and reports a throughput-style metric so `go test
// -bench=.` both reproduces the artifacts and tracks performance.
package repro

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/client"
	"repro/internal/admitd"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/measure"
	"repro/internal/partition"
	"repro/internal/task"
	"repro/internal/timeq"
	"repro/internal/trace"
)

// printOnce guards the one-time artifact dumps so -benchtime loops
// do not repeat them.
var printOnce sync.Map

func once(key string, f func()) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		f()
	}
}

// BenchmarkFigure1Timeline regenerates the paper's Figure 1: the
// anatomy of release, scheduling, context-switch and cache overheads
// around a preemption, on the paper's overhead model.
func BenchmarkFigure1Timeline(b *testing.B) {
	t1 := &task.Task{ID: 1, WCET: 2 * timeq.Millisecond, Period: 10 * timeq.Millisecond, WSS: 256 << 10}
	t2 := &task.Task{ID: 2, WCET: 5 * timeq.Millisecond, Period: 20 * timeq.Millisecond, WSS: 256 << 10}
	mkAssign := func() *task.Assignment {
		s := task.NewSet(t1, t2)
		s.AssignRM()
		a := task.NewAssignment(1)
		a.Place(t1, 0)
		a.Place(t2, 0)
		return a
	}
	a := mkAssign()
	cfg := core.SimConfig{
		Model:   core.PaperOverheads(),
		Horizon: 20 * timeq.Millisecond,
		Offsets: map[task.ID]timeq.Time{1: 2 * timeq.Millisecond},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := &trace.Buffer{}
		c := cfg
		c.Recorder = buf
		res, err := core.Simulate(a, c)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Schedulable() {
			b.Fatal("figure-1 scenario missed a deadline")
		}
		once("figure1", func() {
			fmt.Println("\n=== Figure 1: overhead timeline (paper model) ===")
			fmt.Println(buf.Summary())
		})
	}
}

// BenchmarkTable1QueueOps regenerates Table 1 by measuring this
// machine's binomial-heap and red-black-tree operation durations at
// N = 4 and N = 64, local and remote.
func BenchmarkTable1QueueOps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := measure.Table1(300)
		once("table1", func() {
			fmt.Println("\n=== Table 1: queue operation durations ===")
			fmt.Print(measure.FormatTable1(rows))
		})
	}
}

// BenchmarkTable1FunctionCosts regenerates the Section 3 function
// cost measurements (rls, sch, cnt_swth analogs).
func BenchmarkTable1FunctionCosts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		costs := measure.FunctionCosts(300)
		once("funcosts", func() {
			fmt.Println("\n=== Section 3: function costs ===")
			fmt.Print(measure.FormatFunctionCosts(costs))
		})
	}
}

// section4 runs one Section 4 sweep (shared by the benches below).
func section4(model *core.OverheadModel, sets int, seed int64) *core.SweepResults {
	return core.Sweep(core.SweepConfig{
		Cores:        4,
		Tasks:        12,
		SetsPerPoint: sets,
		Utilizations: []float64{2.8, 3.0, 3.2, 3.4, 3.6, 3.8},
		Model:        model,
		Seed:         seed,
	})
}

// BenchmarkSection4AcceptanceRatio regenerates the paper's Section 4
// comparison: FP-TS vs FFD vs WFD acceptance ratios, with measured
// overheads integrated (and the zero-overhead baseline).
func BenchmarkSection4AcceptanceRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		zero := section4(core.ZeroOverheads(), 60, 42)
		paper := section4(core.PaperOverheads(), 60, 42)
		once("section4", func() {
			fmt.Println("\n=== Section 4: acceptance ratio, zero overheads ===")
			fmt.Print(zero.Table())
			fmt.Println("=== Section 4: acceptance ratio, measured overheads ===")
			fmt.Print(paper.Table())
		})
		if paper.WeightedScore("FP-TS") < paper.WeightedScore("FFD") {
			b.Fatal("FP-TS should dominate FFD with overheads integrated")
		}
	}
}

// BenchmarkAblationRemotePenalty regenerates ablation A: how the
// FP-TS advantage responds to scaling the remote queue-operation
// penalty — the overhead component unique to task splitting.
func BenchmarkAblationRemotePenalty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var out string
		for _, p := range []float64{1, 2, 4, 8} {
			r := section4(core.PaperOverheads().WithRemotePenalty(p), 40, 7)
			out += fmt.Sprintf("  remote×%-3.0f FP-TS %.3f  FFD %.3f\n",
				p, r.WeightedScore("FP-TS"), r.WeightedScore("FFD"))
		}
		once("ablationA", func() {
			fmt.Println("\n=== Ablation A: remote queue penalty ===")
			fmt.Print(out)
		})
	}
}

// BenchmarkAblationCPMD regenerates ablation B: migration CPMD factor
// sweep (the paper measures ≈1× under a shared L3).
func BenchmarkAblationCPMD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var out string
		for _, f := range []float64{1, 2, 5, 10} {
			m := core.PaperOverheads()
			r := section4(m.WithCache(m.Cache.WithMigrationFactor(f)), 40, 7)
			out += fmt.Sprintf("  CPMD×%-4.0f FP-TS %.3f  FFD %.3f\n",
				f, r.WeightedScore("FP-TS"), r.WeightedScore("FFD"))
		}
		once("ablationB", func() {
			fmt.Println("\n=== Ablation B: migration CPMD factor ===")
			fmt.Print(out)
		})
	}
}

// BenchmarkAblationPriorityBoost regenerates the DESIGN.md §6
// design-choice ablation: split parts at boosted top priority (the
// shipped design) versus plain RM priority.
func BenchmarkAblationPriorityBoost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := core.Sweep(core.SweepConfig{
			Cores: 4, Tasks: 12, SetsPerPoint: 40,
			Utilizations: []float64{3.4, 3.6, 3.8, 3.9},
			Algorithms:   []core.Algorithm{partition.TS, partition.TSNoBoost, partition.FFD},
			Model:        core.PaperOverheads(),
			Seed:         7,
		})
		once("boost", func() {
			fmt.Println("\n=== Ablation: split-part priority boosting ===")
			fmt.Print(r.Table())
			fmt.Println("(neither variant dominates universally: boosted parts migrate")
			fmt.Println(" predictably but steal from every local task; plain-RM parts")
			fmt.Println(" interfere less but push jitter downstream — see EXPERIMENTS.md)")
		})
		// Both variants extend FFD by a splitting fallback, so both
		// must dominate FFD; the boost comparison itself is reported,
		// not asserted.
		if r.WeightedScore("FP-TS") < r.WeightedScore("FFD") ||
			r.WeightedScore("FP-TS-noboost") < r.WeightedScore("FFD") {
			b.Fatal("a splitting variant fell below plain FFD")
		}
	}
}

// BenchmarkExtensionEDF regenerates the EDF-extension comparison
// (paper §2: the runtime "can be easily extended to support … EDF
// scheduling"): EDF-WM vs EDF-FFD vs FP-TS acceptance with measured
// overheads.
func BenchmarkExtensionEDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := core.Sweep(core.SweepConfig{
			Cores: 4, Tasks: 12, SetsPerPoint: 40,
			Utilizations: []float64{3.2, 3.4, 3.6, 3.8, 3.9},
			Algorithms:   []core.Algorithm{core.EDFWM, core.EDFFFD, core.FPTS},
			Model:        core.PaperOverheads(),
			Seed:         17,
		})
		once("edf", func() {
			fmt.Println("\n=== Extension: EDF semi-partitioned scheduling ===")
			fmt.Print(r.Table())
		})
		if r.WeightedScore("EDF-WM") < r.WeightedScore("EDF-FFD") {
			b.Fatal("EDF-WM should dominate EDF-FFD")
		}
	}
}

// BenchmarkMixedPolicySweep runs the FP-vs-EDF acceptance comparison
// as a single mixed-policy paired sweep — one config, every algorithm
// admitted through its policy's analyzer, every accepted assignment
// simulated under its own policy. Before the Analyzer layer this took
// two separate runs.
func BenchmarkMixedPolicySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := core.Sweep(core.SweepConfig{
			Cores: 4, Tasks: 12, SetsPerPoint: 30,
			Utilizations: []float64{3.0, 3.4, 3.8},
			Algorithms:   []core.Algorithm{core.FPTS, core.EDFWM, core.FFD, core.EDFFFD},
			Model:        core.PaperOverheads(),
			Seed:         23,
			SimHorizon:   timeq.Second,
		})
		once("mixed", func() {
			fmt.Println("\n=== Mixed-policy paired sweep: FP-TS vs EDF-WM vs FFD vs EDF-FFD ===")
			fmt.Print(r.Table())
		})
		if v := r.TotalSimViolations(); v != 0 {
			b.Fatalf("%d simulation violations in mixed sweep", v)
		}
		if r.WeightedScore("FP-TS") < r.WeightedScore("FFD") {
			b.Fatal("FP-TS should dominate FFD in the mixed sweep")
		}
	}
}

// BenchmarkBreakdownUtilization regenerates the breakdown-utilization
// comparison: the mean per-core utilization each algorithm sustains
// before rejecting, overheads integrated — a scalar companion to the
// Section 4 curves.
func BenchmarkBreakdownUtilization(b *testing.B) {
	gsets := core.GenerateTaskSets(core.GenConfig{N: 12, TotalUtilization: 2.8, Seed: 3}, 8)
	algs := []core.Algorithm{core.FPTS, core.FFD, core.WFD, core.EDFWM}
	for i := 0; i < b.N; i++ {
		res := experiment.BreakdownComparison(gsets, 4, algs, core.PaperOverheads(), 200)
		once("breakdown", func() {
			fmt.Println("\n=== Breakdown utilization (mean per-core, overheads integrated) ===")
			for _, alg := range algs {
				fmt.Printf("  %-8s %.3f\n", alg.Name(), res[alg.Name()])
			}
		})
		if res["FP-TS"] < res["FFD"] {
			b.Fatal("FP-TS breakdown below FFD")
		}
	}
}

// BenchmarkOverheadCharacterization regenerates the paper's headline
// quantity from simulation data: the extra kernel overhead task
// splitting costs relative to plain partitioning, measured over
// commonly-admitted sets.
func BenchmarkOverheadCharacterization(b *testing.B) {
	sets := core.GenerateTaskSets(core.GenConfig{N: 10, TotalUtilization: 3.7, Seed: 5150}, 25)
	for i := 0; i < b.N; i++ {
		c, err := experiment.CharacterizeSplitting(sets, 4, partition.TS, core.PaperOverheads(), timeq.Second)
		if err != nil {
			b.Fatal(err)
		}
		once("charop", func() {
			fmt.Println("\n=== Overhead characterization: splitting surcharge ===")
			fmt.Print(c.Table())
		})
		if d := c.Surcharge(); d > 0.01 {
			b.Fatalf("splitting surcharge %.4f implausibly high", d)
		}
	}
}

// BenchmarkPartitionProbes measures raw admission speed: placement
// probes per wall second across all nine partitioning algorithms on a
// mixed batch of task sets under the paper overhead model. This is
// the regression guard for the incremental admission-context layer
// (warm-started fixed points, per-core caches); the probe counts come
// from the contexts' flushed statistics, so the metric tracks the
// true probe rate rather than partitions per second.
func BenchmarkPartitionProbes(b *testing.B) {
	algs := []core.Algorithm{
		core.FPTS, core.FFD, core.WFD, core.BFD,
		core.SPA1, core.SPA2,
		core.EDFWM, core.EDFFFD, core.EDFWFD,
	}
	var sets []*core.TaskSet
	for _, u := range []float64{3.0, 3.4, 3.7} {
		sets = append(sets, core.GenerateTaskSets(core.GenConfig{N: 12, TotalUtilization: u, Seed: int64(1000 * u)}, 4)...)
	}
	model := core.PaperOverheads()
	before := core.AdmissionStatsSnapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, set := range sets {
			for _, alg := range algs {
				_, _ = alg.Partition(set.Clone(), 4, model) //nolint:errcheck // rejections are expected at high U
			}
		}
	}
	b.StopTimer()
	delta := core.AdmissionStatsSnapshot().Sub(before)
	once("probes", func() {
		fmt.Printf("\n=== Partition probe statistics (paper model) ===\n  %v\n", delta)
	})
	if delta.Probes == 0 {
		b.Fatal("no admission probes recorded")
	}
	b.ReportMetric(float64(delta.Probes)/b.Elapsed().Seconds(), "probes/s")
	b.ReportMetric(delta.MeanFPIterations(), "fp-iters/solve")
}

// BenchmarkAdmitdThroughput measures the admission-control daemon:
// requests per wall second through the full HTTP handler path, with
// a mixed try/admit/remove/state workload spread over concurrent
// warm sessions (each backed by a live incremental admission
// context). One load-generator iteration is one complete run; the
// metric is the sustained request rate.
func BenchmarkAdmitdThroughput(b *testing.B) {
	requests := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh server per iteration keeps the workload stationary:
		// reusing one would re-seed the same session names into
		// already-loaded sessions and drift the admit/reject mix.
		srv, err := admitd.New(admitd.Config{MaxSessions: 64})
		if err != nil {
			b.Fatal(err)
		}
		stats, err := admitd.RunLoad(context.Background(), client.InProcess(srv), admitd.LoadConfig{
			Sessions: 16, Requests: 20_000, Cores: 4, TasksPerSession: 12, Seed: int64(i + 1),
		})
		srv.Close()
		if err != nil {
			b.Fatal(err)
		}
		if stats.Errors > 0 {
			b.Fatalf("%d load errors", stats.Errors)
		}
		requests += stats.Requests
	}
	b.ReportMetric(float64(requests)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkSimulatorThroughput measures raw engine speed: simulated
// kernel events per wall second on a loaded 4-core assignment.
func BenchmarkSimulatorThroughput(b *testing.B) {
	set := core.GenerateTaskSet(core.GenConfig{N: 16, TotalUtilization: 3.2, Seed: 5})
	a, err := core.Schedule(set, 4, core.FPTS, core.PaperOverheads())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	events := 0
	for i := 0; i < b.N; i++ {
		res, err := core.Simulate(a, core.SimConfig{Model: core.PaperOverheads(), Horizon: timeq.Second})
		if err != nil {
			b.Fatal(err)
		}
		events += res.Stats.Releases + res.Stats.Finishes + res.Stats.Preemptions + res.Stats.Migrations
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}
