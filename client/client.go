// Package client is the typed Go SDK for the admission-control
// service: the api package's versioned wire schema behind a handle
// per session, over either a real HTTP connection (New) or an
// in-process dispatch straight into a server's handler mux
// (InProcess) — the identical API at function-call speed, with zero
// sockets, for tests, examples and embedders.
//
// Errors returned by every call are *api.Error whenever the server
// produced an error envelope, so callers branch on machine-readable
// codes (api.IsCode(err, api.CodeDuplicateTask)) rather than on
// strings or statuses.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"time"

	"repro/api"
)

// Doer issues one HTTP request; *http.Client satisfies it.
type Doer interface {
	Do(*http.Request) (*http.Response, error)
}

// Client speaks the v1 admission-control schema to one server.
type Client struct {
	baseURL string
	doer    Doer
	timeout time.Duration
	retries int
	backoff time.Duration
	headers http.Header
	hook    func(*http.Request)
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (pooling,
// TLS, proxies).
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.doer = h } }

// WithDoer substitutes any transport implementing Doer.
func WithDoer(d Doer) Option { return func(c *Client) { c.doer = d } }

// WithTimeout bounds each request (streaming bodies included): a
// per-call deadline is added whenever the caller's context has none.
func WithTimeout(d time.Duration) Option { return func(c *Client) { c.timeout = d } }

// WithRetry retries idempotent requests (GET, DELETE) up to retries
// extra times on transport errors and 5xx responses, with
// exponential backoff starting at base. Mutating requests are never
// retried — an admit whose response was lost may still have
// committed.
func WithRetry(retries int, base time.Duration) Option {
	return func(c *Client) { c.retries, c.backoff = retries, base }
}

// WithHeader adds a static header to every request.
func WithHeader(key, value string) Option {
	return func(c *Client) { c.headers.Add(key, value) }
}

// WithAuthToken sends "Authorization: Bearer <token>" on every
// request.
func WithAuthToken(token string) Option {
	return WithHeader("Authorization", "Bearer "+token)
}

// WithRequestHook runs f on every outgoing request just before it is
// sent — the escape hatch for per-request auth (signed headers,
// rotating tokens).
func WithRequestHook(f func(*http.Request)) Option { return func(c *Client) { c.hook = f } }

// New builds a client for the server at baseURL
// (e.g. "http://host:7007").
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: bad base URL %q: %w", baseURL, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q needs scheme and host", baseURL)
	}
	c := &Client{
		baseURL: strings.TrimRight(baseURL, "/"),
		doer:    &http.Client{},
		backoff: 100 * time.Millisecond,
		headers: http.Header{},
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// InProcess builds a client that dispatches every request straight
// into h (an *admitd.Server, or any handler serving the schema) with
// no sockets — byte-identical to the HTTP path, at function-call
// speed.
func InProcess(h http.Handler, opts ...Option) *Client {
	c := &Client{
		baseURL: "http://admitd.inprocess",
		doer:    handlerDoer{h: h},
		backoff: 100 * time.Millisecond,
		headers: http.Header{},
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// handlerDoer adapts an http.Handler into a Doer.
type handlerDoer struct{ h http.Handler }

func (d handlerDoer) Do(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	d.h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// --- core request machinery ------------------------------------------

// withDeadline applies the client timeout when the caller set none.
func (c *Client) withDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.timeout <= 0 {
		return ctx, func() {}
	}
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, c.timeout)
}

// newRequest builds one outgoing request with headers and hook
// applied.
func (c *Client) newRequest(ctx context.Context, method, path string, payload []byte) (*http.Request, error) {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, body)
	if err != nil {
		return nil, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, vs := range c.headers {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	if c.hook != nil {
		c.hook(req)
	}
	return req, nil
}

// do issues one request, retrying idempotent methods per WithRetry,
// and decodes the response into out (when non-nil). Error responses
// come back as *api.Error.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	ctx, cancel := c.withDeadline(ctx)
	defer cancel()
	var payload []byte
	if in != nil {
		var err error
		if payload, err = json.Marshal(in); err != nil {
			return err
		}
	}
	os := opPool.Get().(*opScratch)
	defer opPool.Put(os)
	status, body, err := c.doRaw(ctx, os, method, path, payload)
	if err != nil {
		return err
	}
	if status >= http.StatusBadRequest {
		return api.DecodeError(status, body)
	}
	if out != nil {
		return json.Unmarshal(body, out)
	}
	return nil
}

// doRaw is the transport under do: one exchange through the pooled
// scratch, retrying idempotent methods per WithRetry on transport
// errors and 5xx responses. The returned body aliases os.
func (c *Client) doRaw(ctx context.Context, os *opScratch, method, path string, payload []byte) (int, []byte, error) {
	idempotent := method == http.MethodGet || method == http.MethodDelete
	attempts := 1
	if idempotent {
		attempts += c.retries
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return 0, nil, lastErr
			case <-time.After(c.backoff << (attempt - 1)):
			}
		}
		status, body, err := c.roundTrip(ctx, os, method, path, payload)
		if err != nil {
			lastErr = err
			continue
		}
		if status >= http.StatusInternalServerError && attempt+1 < attempts {
			lastErr = api.DecodeError(status, body)
			continue
		}
		return status, body, nil
	}
	return 0, nil, lastErr
}

// stream POSTs a request and hands back the NDJSON response body.
// The returned closer also releases the per-call deadline, so it
// must be called exactly once. Streams are never retried.
func (c *Client) stream(ctx context.Context, path string, in any) (io.ReadCloser, func(), error) {
	ctx, cancel := c.withDeadline(ctx)
	payload, err := json.Marshal(in)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	req, err := c.newRequest(ctx, http.MethodPost, path, payload)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	resp, err := c.doer.Do(req)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	if resp.StatusCode >= http.StatusBadRequest {
		body, _ := io.ReadAll(resp.Body) //nolint:errcheck // best-effort error body
		resp.Body.Close()                //nolint:errcheck // read-side close
		cancel()
		return nil, nil, api.DecodeError(resp.StatusCode, body)
	}
	return resp.Body, cancel, nil
}

// --- server-scoped calls ---------------------------------------------

// CreateSession opens a named cluster session and returns its
// handle.
func (c *Client) CreateSession(ctx context.Context, req api.CreateSessionRequest) (*Session, error) {
	var created api.SessionCreated
	if err := c.do(ctx, http.MethodPost, api.PathSessions, req, &created); err != nil {
		return nil, err
	}
	return newSession(c, req.Name), nil
}

// Session is the handle of an existing session (no request is made;
// a missing name surfaces as api.CodeSessionNotFound on first use).
func (c *Client) Session(name string) *Session {
	return newSession(c, name)
}

// ListSessions names the live sessions.
func (c *Client) ListSessions(ctx context.Context) (api.SessionList, error) {
	var out api.SessionList
	err := c.do(ctx, http.MethodGet, api.PathSessions, nil, &out)
	return out, err
}

// ServerStats reads the server-wide counters.
func (c *Client) ServerStats(ctx context.Context) (api.ServerStats, error) {
	var out api.ServerStats
	err := c.do(ctx, http.MethodGet, api.PathStats, nil, &out)
	return out, err
}

// Metrics fetches the raw Prometheus text exposition from /metrics.
// The returned bytes are an independent copy, safe to keep.
func (c *Client) Metrics(ctx context.Context) ([]byte, error) {
	ctx, cancel := c.withDeadline(ctx)
	defer cancel()
	os := opPool.Get().(*opScratch)
	defer opPool.Put(os)
	status, body, err := c.doRaw(ctx, os, http.MethodGet, api.PathMetrics, nil)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, api.DecodeError(status, body)
	}
	return append([]byte(nil), body...), nil
}

// Health checks liveness.
func (c *Client) Health(ctx context.Context) error {
	var out api.Health
	if err := c.do(ctx, http.MethodGet, api.PathHealth, nil, &out); err != nil {
		return err
	}
	if out.Status != "ok" {
		return fmt.Errorf("client: health status %q", out.Status)
	}
	return nil
}

// Sweep runs a whole acceptance-ratio sweep server-side and returns
// the final result. Canceling ctx cancels the sweep between
// placements (the server aborts on disconnect).
func (c *Client) Sweep(ctx context.Context, req api.SweepRequest) (*api.SweepResult, error) {
	return c.SweepStream(ctx, req, nil)
}

// SweepStream is Sweep with streamed progress: onProgress (when
// non-nil) receives every partial-result line as the sweep runs.
func (c *Client) SweepStream(ctx context.Context, req api.SweepRequest, onProgress func(api.SweepProgress)) (*api.SweepResult, error) {
	if onProgress != nil {
		req.Stream = true
	}
	body, done, err := c.stream(ctx, api.PathSweep, req)
	if err != nil {
		return nil, err
	}
	defer done()
	defer body.Close() //nolint:errcheck // read-side close
	sc := newLineScanner(body)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		// A line is a progress update, the final result, or an error
		// envelope; classify by its discriminating fields.
		var probe struct {
			Code   api.Code        `json:"code"`
			Series json.RawMessage `json:"series"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("client: bad sweep line: %w", err)
		}
		switch {
		case probe.Code != "":
			ae := &api.Error{}
			_ = json.Unmarshal(line, ae) //nolint:errcheck // probe proved it decodes
			return nil, ae
		case probe.Series != nil:
			res := &api.SweepResult{}
			if err := json.Unmarshal(line, res); err != nil {
				return nil, err
			}
			return res, nil
		default:
			if onProgress != nil {
				var p api.SweepProgress
				if err := json.Unmarshal(line, &p); err != nil {
					return nil, err
				}
				onProgress(p)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("client: sweep stream ended without a result")
}
