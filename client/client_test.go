package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/api"
)

// TestNewValidation pins the base-URL checks.
func TestNewValidation(t *testing.T) {
	if _, err := New("http://host:7007"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "host:7007/nope", "://x", "/just/a/path"} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%q) must fail", bad)
		}
	}
}

// TestErrorEnvelope: a non-2xx response decodes to *api.Error with
// its machine-readable code intact.
func TestErrorEnvelope(t *testing.T) {
	c := InProcess(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusConflict)
		json.NewEncoder(w).Encode(api.Error{Code: api.CodeDuplicateTask, Message: "task 7 again"}) //nolint:errcheck
	}))
	_, err := c.Session("s").Admit(context.Background(), api.AdmitRequest{})
	if !api.IsCode(err, api.CodeDuplicateTask) {
		t.Fatalf("want duplicate_task, got %v", err)
	}
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Message != "task 7 again" {
		t.Fatalf("envelope lost: %v", err)
	}
}

// TestRetryIdempotent: GETs retry through 5xx responses; POSTs never
// retry.
func TestRetryIdempotent(t *testing.T) {
	var gets, posts atomic.Int64
	c := InProcess(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			posts.Add(1)
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(api.Error{Code: api.CodeInternal, Message: "boom"}) //nolint:errcheck
			return
		}
		if gets.Add(1) < 3 {
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(api.Error{Code: api.CodeInternal, Message: "flaky"}) //nolint:errcheck
			return
		}
		json.NewEncoder(w).Encode(api.SessionList{Sessions: []string{"a"}, Count: 1}) //nolint:errcheck
	}), WithRetry(3, time.Millisecond))

	list, err := c.ListSessions(context.Background())
	if err != nil || list.Count != 1 {
		t.Fatalf("retried GET: %+v, %v", list, err)
	}
	if gets.Load() != 3 {
		t.Fatalf("GET attempts: %d, want 3", gets.Load())
	}
	_, err = c.Session("s").Admit(context.Background(), api.AdmitRequest{})
	if !api.IsCode(err, api.CodeInternal) {
		t.Fatalf("POST error: %v", err)
	}
	if posts.Load() != 1 {
		t.Fatalf("POST attempts: %d, want 1 (no mutation retries)", posts.Load())
	}
}

// flakyDoer fails transport-level a fixed number of times.
type flakyDoer struct {
	fails atomic.Int64
	next  Doer
}

func (d *flakyDoer) Do(req *http.Request) (*http.Response, error) {
	if d.fails.Add(-1) >= 0 {
		return nil, fmt.Errorf("connection refused")
	}
	return d.next.Do(req)
}

// TestRetryTransportError: transport errors (no response at all)
// retry for idempotent requests too.
func TestRetryTransportError(t *testing.T) {
	ok := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.Health{Status: "ok"}) //nolint:errcheck
	})
	d := &flakyDoer{next: handlerDoer{h: ok}}
	d.fails.Store(2)
	c := InProcess(ok, WithDoer(d), WithRetry(2, time.Millisecond))
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Exhausted retries surface the last transport error.
	d.fails.Store(10)
	if err := c.Health(context.Background()); err == nil || !strings.Contains(err.Error(), "connection refused") {
		t.Fatalf("want transport error, got %v", err)
	}
}

// TestHeadersAndHook: static headers, the bearer-token convenience,
// and the per-request hook all reach the wire.
func TestHeadersAndHook(t *testing.T) {
	var got http.Header
	c := InProcess(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Clone()
		json.NewEncoder(w).Encode(api.Health{Status: "ok"}) //nolint:errcheck
	}),
		WithHeader("X-Tenant", "rack1"),
		WithAuthToken("sesame"),
		WithRequestHook(func(r *http.Request) { r.Header.Set("X-Hooked", r.Method) }),
	)
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got.Get("X-Tenant") != "rack1" || got.Get("Authorization") != "Bearer sesame" || got.Get("X-Hooked") != "GET" {
		t.Fatalf("headers: %v", got)
	}
}

// TestTimeout: the per-call deadline cuts off a stalled server.
func TestTimeout(t *testing.T) {
	stall := make(chan struct{})
	defer close(stall)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-stall:
		case <-r.Context().Done():
		}
	}))
	defer ts.Close()
	c, err := New(ts.URL, WithTimeout(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := c.Health(context.Background()); err == nil {
		t.Fatal("stalled server must time out")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout did not bound the call")
	}
}

// TestBatchStreamParsing: verdict lines, the summary line, and a
// mid-stream error envelope.
func TestBatchStreamParsing(t *testing.T) {
	c := InProcess(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"task_id":1,"admitted":true,"core":0,"probes":1}`)
		fmt.Fprintln(w, `{"task_id":2,"admitted":false,"core":-1,"probes":2}`)
		fmt.Fprintln(w, `{"done":true,"admitted":1,"rejected":1,"schedulable":true,"task_count":1}`)
	}))
	stream, err := c.Session("s").Batch(context.Background(), api.BatchRequest{})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	var got []api.Verdict
	for stream.Next() {
		got = append(got, stream.Verdict())
	}
	sum, err := stream.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got[0].Admitted || got[1].Admitted || sum.Admitted != 1 || !sum.Done {
		t.Fatalf("stream: %+v, %+v", got, sum)
	}

	c = InProcess(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"task_id":1,"admitted":true,"core":0,"probes":1}`)
		fmt.Fprintln(w, `{"code":"probe_pending","message":"held"}`)
	}))
	stream, err = c.Session("s").Batch(context.Background(), api.BatchRequest{})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	n := 0
	for stream.Next() {
		n++
	}
	if _, err := stream.Summary(); !api.IsCode(err, api.CodeProbePending) || n != 1 {
		t.Fatalf("mid-stream error: n=%d, %v", n, err)
	}

	// A truncated stream (no summary line) is an error, not a silent
	// success.
	c = InProcess(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"task_id":1,"admitted":true,"core":0,"probes":1}`)
	}))
	stream, err = c.Session("s").Batch(context.Background(), api.BatchRequest{})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	for stream.Next() {
	}
	if _, err := stream.Summary(); err == nil {
		t.Fatal("truncated stream must error")
	}
}

// TestSweepStreamParsing: progress lines reach the callback, the
// final line becomes the result, and an error envelope surfaces
// typed.
func TestSweepStreamParsing(t *testing.T) {
	c := InProcess(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"algorithm":"FFD","total_utilization":1.2,"accepted":1,"total":2,"ratio":0.5,"wilson_lo":0,"wilson_hi":1,"done_shards":1,"total_shards":2,"admission":{"probes":3,"full_tests":0,"core_tests":0,"verdict_hits":0,"fp_solves":0,"fp_iterations":0,"warm_starts":0,"cache_hit_rate":0,"mean_fp_iterations":0,"warm_start_rate":0}}`)
		fmt.Fprintln(w, `{"cores":2,"tasks":6,"sets_per_point":2,"seed":3,"series":[{"algorithm":"FFD","points":[]}],"admission":{"probes":6,"full_tests":0,"core_tests":0,"verdict_hits":0,"fp_solves":0,"fp_iterations":0,"warm_starts":0,"cache_hit_rate":0,"mean_fp_iterations":0,"warm_start_rate":0}}`)
	}))
	var progress []api.SweepProgress
	res, err := c.SweepStream(context.Background(), api.SweepRequest{}, func(p api.SweepProgress) { progress = append(progress, p) })
	if err != nil {
		t.Fatal(err)
	}
	if len(progress) != 1 || progress[0].DoneShards != 1 || res.Series[0].Algorithm != "FFD" || res.Admission.Probes != 6 {
		t.Fatalf("sweep stream: %+v, %+v", progress, res)
	}

	c = InProcess(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(api.Error{Code: api.CodeBadRequest, Message: "unknown algorithm"}) //nolint:errcheck
	}))
	if _, err := c.Sweep(context.Background(), api.SweepRequest{}); !api.IsCode(err, api.CodeBadRequest) {
		t.Fatalf("sweep error: %v", err)
	}
}
