package client

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"

	"repro/api"
)

// The client half of the zero-alloc wire layer. Every unary call runs
// on one pooled opScratch: the request payload is appended by the api
// package's fast encoders, the round trip reuses a pooled
// http.Request + in-memory ResponseWriter (no httptest recorder, no
// Response allocation), and the response parses on the fast path with
// encoding/json as the fallback. The in-process shortcut only engages
// for a plain InProcess client — request hooks, custom headers, or
// paths needing escape handling take the generic transport, which
// still reuses the pooled read buffer.

const inprocHost = "admitd.inprocess"

// bodyReader is a pooled request body: a bytes.Reader that satisfies
// io.ReadCloser.
type bodyReader struct{ bytes.Reader }

func (*bodyReader) Close() error { return nil }

// memResponse is a reusable in-memory http.ResponseWriter.
type memResponse struct {
	hdr    http.Header
	buf    []byte
	status int
}

func (m *memResponse) Header() http.Header { return m.hdr }

func (m *memResponse) Write(p []byte) (int, error) {
	if m.status == 0 {
		m.status = http.StatusOK
	}
	m.buf = append(m.buf, p...)
	return len(p), nil
}

func (m *memResponse) WriteHeader(code int) {
	if m.status == 0 {
		m.status = code
	}
}

// Flush satisfies http.Flusher so streaming handlers behave as they
// do over a socket; buffering is the flush.
func (m *memResponse) Flush() {}

func (m *memResponse) reset() {
	m.buf = m.buf[:0]
	m.status = 0
	clear(m.hdr)
}

// opScratch is one unary call's reusable state.
type opScratch struct {
	enc  []byte // fast-encoded request payload
	url  url.URL
	req  http.Request
	body bodyReader
	resp memResponse
}

var opPool = sync.Pool{
	New: func() any {
		return &opScratch{
			enc:  make([]byte, 0, 256),
			resp: memResponse{hdr: make(http.Header, 4), buf: make([]byte, 0, 512)},
		}
	},
}

// Shared read-only request headers; handlers never mutate incoming
// headers, so all fast-path requests alias these.
var (
	jsonReqHeader  = http.Header{"Content-Type": []string{"application/json"}}
	emptyReqHeader = http.Header{}
)

// fastHandler returns the in-process handler when the fast transport
// applies (no hook, no custom headers to stamp per request).
func (c *Client) fastHandler() (http.Handler, bool) {
	if c.hook != nil || len(c.headers) > 0 {
		return nil, false
	}
	hd, ok := c.doer.(handlerDoer)
	return hd.h, ok
}

// roundTrip performs one request/response exchange through the pooled
// scratch, returning the status and response body. The body aliases
// os and is valid until os is reused.
func (c *Client) roundTrip(ctx context.Context, os *opScratch, method, path string, payload []byte) (int, []byte, error) {
	if h, ok := c.fastHandler(); ok && !strings.ContainsAny(path, "%?#") {
		os.url = url.URL{Scheme: "http", Host: inprocHost, Path: path}
		hdr := emptyReqHeader
		var rc io.ReadCloser
		if payload != nil {
			os.body.Reset(payload)
			hdr, rc = jsonReqHeader, &os.body
		}
		os.req = http.Request{
			Method:        method,
			URL:           &os.url,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        hdr,
			Body:          rc,
			ContentLength: int64(len(payload)),
			Host:          inprocHost,
			RemoteAddr:    "inprocess",
			RequestURI:    path,
		}
		req := &os.req
		if ctx != nil && ctx != context.Background() {
			req = req.WithContext(ctx)
		}
		os.resp.reset()
		h.ServeHTTP(&os.resp, req)
		status := os.resp.status
		if status == 0 {
			status = http.StatusOK
		}
		return status, os.resp.buf, nil
	}
	req, err := c.newRequest(ctx, method, path, payload)
	if err != nil {
		return 0, nil, err
	}
	resp, err := c.doer.Do(req)
	if err != nil {
		return 0, nil, err
	}
	body, err := readAllInto(os.resp.buf[:0], resp.Body)
	os.resp.buf = body
	resp.Body.Close() //nolint:errcheck // read-side close
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, body, nil
}

// readAllInto is io.ReadAll into a reused buffer.
func readAllInto(b []byte, r io.Reader) ([]byte, error) {
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := r.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if err == io.EOF {
			return b, nil
		}
		if err != nil {
			return b, err
		}
	}
}

// postVerdict is the hot-path POST returning a Verdict (admit, try,
// commit, rollback): fast-encoded request, pooled transport,
// fast-parsed response. req == nil posts an empty body.
func (c *Client) postVerdict(ctx context.Context, path string, req *api.AdmitRequest) (api.Verdict, error) {
	ctx, cancel := c.withDeadline(ctx)
	defer cancel()
	os := opPool.Get().(*opScratch)
	defer opPool.Put(os)
	var payload []byte
	if req != nil {
		var ok bool
		if payload, ok = api.AppendAdmitRequest(os.enc[:0], req); ok {
			os.enc = payload
		} else {
			var err error
			if payload, err = json.Marshal(req); err != nil {
				return api.Verdict{}, err
			}
		}
	}
	status, body, err := c.roundTrip(ctx, os, http.MethodPost, path, payload)
	if err != nil {
		return api.Verdict{}, err
	}
	if status >= http.StatusBadRequest {
		return api.Verdict{}, api.DecodeError(status, body)
	}
	var v api.Verdict
	if !api.ParseVerdict(body, &v) {
		// Unmarshal into a separate local: handing v itself to the
		// reflection path would make it escape and cost a heap
		// allocation on every fast-path call too.
		var cold api.Verdict
		if err := json.Unmarshal(body, &cold); err != nil {
			return api.Verdict{}, err
		}
		v = cold
	}
	return v, nil
}

// postRemove is postVerdict for the remove op.
func (c *Client) postRemove(ctx context.Context, path string, id int64) (api.Removed, error) {
	ctx, cancel := c.withDeadline(ctx)
	defer cancel()
	os := opPool.Get().(*opScratch)
	defer opPool.Put(os)
	os.enc = api.AppendRemoveRequest(os.enc[:0], &api.RemoveRequest{ID: id})
	status, body, err := c.roundTrip(ctx, os, http.MethodPost, path, os.enc)
	if err != nil {
		return api.Removed{}, err
	}
	if status >= http.StatusBadRequest {
		return api.Removed{}, api.DecodeError(status, body)
	}
	var rm api.Removed
	if !api.ParseRemoved(body, &rm) {
		var cold api.Removed // see postVerdict on the indirection
		if err := json.Unmarshal(body, &cold); err != nil {
			return api.Removed{}, err
		}
		rm = cold
	}
	return rm, nil
}
