package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/api"
)

// Audit replays the commit log: the server rebuilds the session's
// state as of just before durable sequence seq, re-runs that
// mutation's probe with the stats collector attached, and reports
// what the analysis concluded. Requires a server started with
// durability on (api.CodeSeqTruncated otherwise, also returned when
// seq predates the retained log).
func (s *Session) Audit(ctx context.Context, seq int64) (api.AuditReport, error) {
	var out api.AuditReport
	path := api.SessionOpPath(s.name, api.OpAudit) + "?" + api.AuditSeqParam + "=" + strconv.FormatInt(seq, 10)
	err := s.c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// Feed subscribes to the session's SSE change feed from its current
// state: the hello frame anchors the stream at the session's durable
// sequence, and every later committed mutation follows as one event,
// gaplessly. Cancel ctx or Close the stream to unsubscribe.
func (s *Session) Feed(ctx context.Context) (*FeedStream, error) {
	return s.feed(ctx, -1)
}

// FeedFrom is Feed resuming after durable sequence fromSeq: events in
// (fromSeq, now] are replayed from the commit log before live events
// follow, so a reader that remembers its last seen seq misses
// nothing across its own restarts — or the server's. Requires
// durability on the server (api.CodeSeqTruncated when the range
// predates the retained log).
func (s *Session) FeedFrom(ctx context.Context, fromSeq int64) (*FeedStream, error) {
	if fromSeq < 0 {
		return nil, fmt.Errorf("client: feed resume needs from_seq >= 0, got %d", fromSeq)
	}
	return s.feed(ctx, fromSeq)
}

func (s *Session) feed(ctx context.Context, fromSeq int64) (*FeedStream, error) {
	ctx, cancel := s.c.withDeadline(ctx)
	path := api.SessionOpPath(s.name, api.OpFeed)
	if fromSeq >= 0 {
		path += "?" + api.FeedFromSeqParam + "=" + strconv.FormatInt(fromSeq, 10)
	}
	req, err := s.c.newRequest(ctx, http.MethodGet, path, nil)
	if err != nil {
		cancel()
		return nil, err
	}
	resp, err := s.c.doer.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	if resp.StatusCode >= http.StatusBadRequest {
		body, _ := io.ReadAll(resp.Body) //nolint:errcheck // best-effort error body
		resp.Body.Close()                //nolint:errcheck // read-side close
		cancel()
		return nil, api.DecodeError(resp.StatusCode, body)
	}
	f := &FeedStream{body: resp.Body, done: cancel, sc: newLineScanner(resp.Body)}
	// The hello frame is the subscription handshake: read it eagerly
	// so Hello is valid on return and a refused subscription errors
	// here, not on the first Next.
	event, data, err := f.frame()
	if err != nil {
		f.Close() //nolint:errcheck,gosec // surfacing the read error
		return nil, err
	}
	if event != "hello" {
		f.Close() //nolint:errcheck,gosec // surfacing the protocol error
		return nil, fmt.Errorf("client: feed opened with %q, want hello", event)
	}
	if err := json.Unmarshal(data, &f.hello); err != nil {
		f.Close() //nolint:errcheck,gosec // surfacing the decode error
		return nil, fmt.Errorf("client: bad feed hello: %w", err)
	}
	return f, nil
}

// FeedStream iterates an SSE change-feed subscription.
//
//	feed, err := sess.Feed(ctx)
//	...
//	defer feed.Close()
//	last := feed.Hello().Seq
//	for feed.Next() {
//		ev := feed.Event()
//		last = ev.Seq
//		...
//	}
//	err = feed.Err() // nil on session close / context cancel
type FeedStream struct {
	body  io.ReadCloser
	done  func()
	sc    *bufio.Scanner
	hello api.FeedHello
	ev    api.FeedEvent
	err   error
	ended bool
}

// ErrFeedDropped reports a subscription the server disconnected under
// its slow-consumer drop policy: the reader fell too far behind the
// session's commit rate. Resume with FeedFrom(last seen seq).
var ErrFeedDropped = fmt.Errorf("client: feed subscription dropped (slow consumer)")

// Hello is the subscription handshake: the sequence the stream is
// anchored at (and, on FeedFrom, the resume point).
func (f *FeedStream) Hello() api.FeedHello { return f.hello }

// frame reads one SSE frame, returning its event name and data line.
func (f *FeedStream) frame() (string, []byte, error) {
	var event string
	var data []byte
	for f.sc.Scan() {
		line := f.sc.Bytes()
		switch {
		case len(bytes.TrimSpace(line)) == 0:
			if event != "" || data != nil {
				return event, data, nil
			}
		case bytes.HasPrefix(line, []byte("event: ")):
			event = string(line[len("event: "):])
		case bytes.HasPrefix(line, []byte("data: ")):
			data = line[len("data: "):]
		}
		// id: and comment lines carry no information the data line
		// does not repeat; skip them.
	}
	if err := f.sc.Err(); err != nil {
		return "", nil, err
	}
	return "", nil, io.EOF
}

// Next advances to the next change event, reporting false when the
// stream ends: cleanly (session closed, context canceled — Err is
// nil) or not (ErrFeedDropped, transport errors).
func (f *FeedStream) Next() bool {
	if f.err != nil || f.ended {
		return false
	}
	for {
		event, data, err := f.frame()
		if err != nil {
			f.ended = true
			// EOF and a canceled context are clean ends: the server
			// closed the session or the reader hung up.
			if err != io.EOF && !errorsIsContextDone(err) {
				f.err = err
			}
			return false
		}
		switch event {
		case "change":
			if err := json.Unmarshal(data, &f.ev); err != nil {
				f.ended = true
				f.err = fmt.Errorf("client: bad feed event: %w", err)
				return false
			}
			return true
		case "closed":
			f.ended = true
			return false
		case "dropped":
			f.ended = true
			f.err = ErrFeedDropped
			return false
		default:
			// Unknown event types are the schema's forward-compat
			// rule: skip them.
		}
	}
}

// errorsIsContextDone reports a context cancellation/deadline error,
// including ones wrapped by the transport.
func errorsIsContextDone(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Event is the change event Next advanced to.
func (f *FeedStream) Event() api.FeedEvent { return f.ev }

// Err is the stream's terminal error; nil after a clean end.
func (f *FeedStream) Err() error { return f.err }

// Close unsubscribes; safe to call at any point.
func (f *FeedStream) Close() error {
	err := f.body.Close()
	if f.done != nil {
		f.done()
		f.done = nil
	}
	return err
}
