package client

import (
	"context"
	"net/http"

	"repro/api"
)

// Session is the typed handle of one named cluster session. Methods
// mirror the session-scoped routes one to one, taking and returning
// api-package types; the handle itself is stateless (safe for
// concurrent use — the server serializes per-session operations).
type Session struct {
	c    *Client
	name string
}

// Name is the session's wire name.
func (s *Session) Name() string { return s.name }

func (s *Session) post(ctx context.Context, op string, in, out any) error {
	return s.c.do(ctx, http.MethodPost, api.SessionOpPath(s.name, op), in, out)
}

// Admit probes and, on a fitting verdict, commits the task —
// first-fit over all cores when req.Core is nil. req.Hold is invalid
// here (admit commits immediately).
func (s *Session) Admit(ctx context.Context, req api.AdmitRequest) (api.Verdict, error) {
	var v api.Verdict
	err := s.post(ctx, api.OpAdmit, req, &v)
	return v, err
}

// Try answers the admission question without changing committed
// state — unless req.Hold keeps the probe pending for an explicit
// Commit or Rollback (the two-phase protocol).
func (s *Session) Try(ctx context.Context, req api.AdmitRequest) (api.Verdict, error) {
	var v api.Verdict
	err := s.post(ctx, api.OpTry, req, &v)
	return v, err
}

// Split probes (req.Hold) or admits a split task across its parts'
// cores.
func (s *Session) Split(ctx context.Context, req api.SplitRequest) (api.Verdict, error) {
	var v api.Verdict
	err := s.post(ctx, api.OpSplit, req, &v)
	return v, err
}

// Commit keeps the held probe's mutation. Only an admitted probe may
// be committed (api.CodeProbeRejected otherwise).
func (s *Session) Commit(ctx context.Context) (api.Verdict, error) {
	var v api.Verdict
	err := s.post(ctx, api.OpCommit, nil, &v)
	return v, err
}

// Rollback undoes the held probe's mutation.
func (s *Session) Rollback(ctx context.Context) (api.Verdict, error) {
	var v api.Verdict
	err := s.post(ctx, api.OpRollback, nil, &v)
	return v, err
}

// Remove deletes an admitted task by ID — the analysis layer's
// removal-invalidation path.
func (s *Session) Remove(ctx context.Context, id int64) (api.Removed, error) {
	var out api.Removed
	err := s.post(ctx, api.OpRemove, api.RemoveRequest{ID: id}, &out)
	return out, err
}

// State reads the committed assignment and its schedulability.
func (s *Session) State(ctx context.Context) (api.State, error) {
	var out api.State
	err := s.c.do(ctx, http.MethodGet, api.SessionPath(s.name), nil, &out)
	return out, err
}

// Stats reads the session's request and admission counters.
func (s *Session) Stats(ctx context.Context) (api.SessionStats, error) {
	var out api.SessionStats
	err := s.c.do(ctx, http.MethodGet, api.SessionOpPath(s.name, api.OpStats), nil, &out)
	return out, err
}

// Delete closes and forgets the session (snapshot included).
func (s *Session) Delete(ctx context.Context) error {
	var out api.SessionDeleted
	return s.c.do(ctx, http.MethodDelete, api.SessionPath(s.name), nil, &out)
}

// Batch admits a whole task set task by task, returning the NDJSON
// verdict stream as an iterator. Canceling ctx aborts the remainder
// server-side.
func (s *Session) Batch(ctx context.Context, req api.BatchRequest) (*BatchStream, error) {
	body, done, err := s.c.stream(ctx, api.SessionOpPath(s.name, api.OpBatch), req)
	if err != nil {
		return nil, err
	}
	return newBatchStream(body, done), nil
}
