package client

import (
	"context"
	"encoding/json"
	"net/http"

	"repro/api"
)

// Session is the typed handle of one named cluster session. Methods
// mirror the session-scoped routes one to one, taking and returning
// api-package types; the handle itself is stateless (safe for
// concurrent use — the server serializes per-session operations).
// Hot-path op routes are precomputed at construction so steady-state
// calls never rebuild (or re-escape) path strings.
type Session struct {
	c    *Client
	name string

	pathSelf     string // GET state / DELETE
	pathAdmit    string
	pathTry      string
	pathCommit   string
	pathRollback string
	pathRemove   string
	pathStats    string
}

func newSession(c *Client, name string) *Session {
	return &Session{
		c:            c,
		name:         name,
		pathSelf:     api.SessionPath(name),
		pathAdmit:    api.SessionOpPath(name, api.OpAdmit),
		pathTry:      api.SessionOpPath(name, api.OpTry),
		pathCommit:   api.SessionOpPath(name, api.OpCommit),
		pathRollback: api.SessionOpPath(name, api.OpRollback),
		pathRemove:   api.SessionOpPath(name, api.OpRemove),
		pathStats:    api.SessionOpPath(name, api.OpStats),
	}
}

// Name is the session's wire name.
func (s *Session) Name() string { return s.name }

func (s *Session) post(ctx context.Context, op string, in, out any) error {
	return s.c.do(ctx, http.MethodPost, api.SessionOpPath(s.name, op), in, out)
}

// Admit probes and, on a fitting verdict, commits the task —
// first-fit over all cores when req.Core is nil. req.Hold is invalid
// here (admit commits immediately).
func (s *Session) Admit(ctx context.Context, req api.AdmitRequest) (api.Verdict, error) {
	return s.c.postVerdict(ctx, s.pathAdmit, &req)
}

// Try answers the admission question without changing committed
// state — unless req.Hold keeps the probe pending for an explicit
// Commit or Rollback (the two-phase protocol).
func (s *Session) Try(ctx context.Context, req api.AdmitRequest) (api.Verdict, error) {
	return s.c.postVerdict(ctx, s.pathTry, &req)
}

// Split probes (req.Hold) or admits a split task across its parts'
// cores.
func (s *Session) Split(ctx context.Context, req api.SplitRequest) (api.Verdict, error) {
	var v api.Verdict
	err := s.post(ctx, api.OpSplit, req, &v)
	return v, err
}

// Commit keeps the held probe's mutation. Only an admitted probe may
// be committed (api.CodeProbeRejected otherwise).
func (s *Session) Commit(ctx context.Context) (api.Verdict, error) {
	return s.c.postVerdict(ctx, s.pathCommit, nil)
}

// Rollback undoes the held probe's mutation.
func (s *Session) Rollback(ctx context.Context) (api.Verdict, error) {
	return s.c.postVerdict(ctx, s.pathRollback, nil)
}

// Remove deletes an admitted task by ID — the analysis layer's
// removal-invalidation path.
func (s *Session) Remove(ctx context.Context, id int64) (api.Removed, error) {
	return s.c.postRemove(ctx, s.pathRemove, id)
}

// State reads the committed assignment and its schedulability.
func (s *Session) State(ctx context.Context) (api.State, error) {
	var out api.State
	err := s.StateInto(ctx, &out)
	return out, err
}

// StateInto is State decoding into caller-owned storage: slices and
// the Schedulable backing are reused across calls, so a polling
// reader holding one scratch State allocates only on growth.
func (s *Session) StateInto(ctx context.Context, out *api.State) error {
	ctx, cancel := s.c.withDeadline(ctx)
	defer cancel()
	os := opPool.Get().(*opScratch)
	defer opPool.Put(os)
	status, body, err := s.c.doRaw(ctx, os, http.MethodGet, s.pathSelf, nil)
	if err != nil {
		return err
	}
	if status >= http.StatusBadRequest {
		return api.DecodeError(status, body)
	}
	if api.ParseState(body, out) {
		return nil
	}
	// The fast parser may leave partial results behind; reset before
	// handing the body to encoding/json.
	*out = api.State{}
	return json.Unmarshal(body, out)
}

// Stats reads the session's request and admission counters.
func (s *Session) Stats(ctx context.Context) (api.SessionStats, error) {
	ctx, cancel := s.c.withDeadline(ctx)
	defer cancel()
	os := opPool.Get().(*opScratch)
	defer opPool.Put(os)
	var out api.SessionStats
	status, body, err := s.c.doRaw(ctx, os, http.MethodGet, s.pathStats, nil)
	if err != nil {
		return out, err
	}
	if status >= http.StatusBadRequest {
		return out, api.DecodeError(status, body)
	}
	if api.ParseSessionStats(body, &out) {
		return out, nil
	}
	out = api.SessionStats{}
	return out, json.Unmarshal(body, &out)
}

// Delete closes and forgets the session (snapshot included).
func (s *Session) Delete(ctx context.Context) error {
	var out api.SessionDeleted
	return s.c.do(ctx, http.MethodDelete, s.pathSelf, nil, &out)
}

// Batch admits a whole task set task by task, returning the NDJSON
// verdict stream as an iterator. Canceling ctx aborts the remainder
// server-side.
func (s *Session) Batch(ctx context.Context, req api.BatchRequest) (*BatchStream, error) {
	body, done, err := s.c.stream(ctx, api.SessionOpPath(s.name, api.OpBatch), req)
	if err != nil {
		return nil, err
	}
	return newBatchStream(body, done), nil
}
