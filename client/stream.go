package client

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/api"
)

// maxLine bounds one NDJSON line (a full sweep result rides on a
// single line).
const maxLine = 16 << 20

// newLineScanner builds a bufio.Scanner sized for NDJSON payloads.
func newLineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), maxLine)
	return sc
}

// BatchStream iterates a batch response: one verdict per admitted
// task, then the summary.
//
//	stream, err := sess.Batch(ctx, req)
//	...
//	defer stream.Close()
//	for stream.Next() {
//		v := stream.Verdict()
//		...
//	}
//	sum, err := stream.Summary()
type BatchStream struct {
	body    io.ReadCloser
	done    func()
	sc      *bufio.Scanner
	v       api.Verdict
	sum     api.BatchSummary
	haveSum bool
	err     error
}

func newBatchStream(body io.ReadCloser, done func()) *BatchStream {
	return &BatchStream{body: body, done: done, sc: newLineScanner(body)}
}

// Next advances to the next verdict, reporting false at the summary
// line, on a mid-stream error envelope, or at end of stream.
func (b *BatchStream) Next() bool {
	if b.err != nil || b.haveSum {
		return false
	}
	for b.sc.Scan() {
		line := b.sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		// A line is a verdict, the final summary, or an error
		// envelope; classify by its discriminating fields.
		var probe struct {
			Code api.Code `json:"code"`
			Done *bool    `json:"done"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			b.err = fmt.Errorf("client: bad batch line: %w", err)
			return false
		}
		switch {
		case probe.Code != "":
			ae := &api.Error{}
			_ = json.Unmarshal(line, ae) //nolint:errcheck // probe proved it decodes
			b.err = ae
			return false
		case probe.Done != nil:
			if err := json.Unmarshal(line, &b.sum); err != nil {
				b.err = err
				return false
			}
			b.haveSum = true
			return false
		default:
			if err := json.Unmarshal(line, &b.v); err != nil {
				b.err = err
				return false
			}
			return true
		}
	}
	if err := b.sc.Err(); err != nil {
		b.err = err
	}
	return false
}

// Verdict is the verdict Next advanced to.
func (b *BatchStream) Verdict() api.Verdict { return b.v }

// Summary returns the final summary line; call after Next returns
// false. A stream that errored (or ended without a summary — a
// truncated connection) returns the error instead.
func (b *BatchStream) Summary() (api.BatchSummary, error) {
	if b.err != nil {
		return api.BatchSummary{}, b.err
	}
	if !b.haveSum {
		return api.BatchSummary{}, fmt.Errorf("client: batch stream ended without a summary")
	}
	return b.sum, nil
}

// Close releases the stream; safe to call at any point (an early
// close aborts the server-side remainder via the body).
func (b *BatchStream) Close() error {
	err := b.body.Close()
	if b.done != nil {
		b.done()
		b.done = nil
	}
	return err
}
