// Command spadmitd is the online admission-control daemon: the
// paper's overhead-aware schedulability test served over HTTP against
// live cluster sessions, each backed by an incremental admission
// context (warm probes, not cold re-analysis).
//
// Usage:
//
//	spadmitd serve [-addr :7007] [-snapshots dir] [-max-sessions 1024]
//	spadmitd load  [-addr http://host:7007] [-sessions 64] [-requests 100000]
//
// The wire contract is the public api package (the v1 versioned
// schema); package client is the typed Go SDK over it. See DESIGN.md
// §3 for the architecture (session actors, sharded store, LRU
// eviction + snapshot/restore, removal invalidation) and README.md
// for curl and Go-client quickstarts.
package main

import (
	"fmt"
	"os"

	"repro/internal/cli"
)

func main() {
	if err := cli.Admitd(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "spadmitd:", err)
		os.Exit(1)
	}
}
