// Command spbench is the multi-core performance rig: it drives the
// admission-control hot paths — the parallel session read mix, full
// loadgen throughput, the batched try-only verdict path, the
// Section-4 sweep and the raw partition-probe rate — across a ladder
// of GOMAXPROCS settings, and records the results in BENCH_admitd.json
// under a stable schema with a per-PR trend history.
//
// Usage:
//
//	spbench [-out BENCH_admitd.json] [-procs 1,2,4,8] [-pr N]
//	        [-requests 20000] [-quick] [-check] [-tolerance 0.10]
//
// Default mode runs the rig, appends this run's summary to the file's
// "history" array (creating it from a legacy file's summary when
// upgrading), and rewrites the file. With -check the rig instead
// compares against the committed file and exits nonzero if any
// benchmark present in both regressed by more than -tolerance — the
// CI perf gate — leaving the file untouched.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/admitd"
	"repro/internal/core"
)

type hostInfo struct {
	CPU        string `json:"cpu"`
	CPUs       int    `json:"cpus"`
	Go         string `json:"go"`
	Note       string `json:"note,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs,omitempty"` // legacy field, read-only
}

// historyEntry is one PR's summary in the trend history.
type historyEntry struct {
	PR                  int     `json:"pr"`
	Recorded            string  `json:"recorded"`
	ReadPathSpeedup     float64 `json:"read_path_speedup,omitempty"`
	ThroughputReqPerSec float64 `json:"throughput_req_per_sec,omitempty"`
	ReadScaling1ToMax   float64 `json:"read_scaling_1_to_max,omitempty"`
	BatchTryAllocsPerOp float64 `json:"batch_try_allocs_per_op"`
	Note                string  `json:"note,omitempty"`
}

// benchDoc is the BENCH_admitd.json schema (version 2): flat results
// across GOMAXPROCS, derived headline ratios, and the per-PR history.
type benchDoc struct {
	Schema     int                `json:"schema"`
	Recorded   string             `json:"recorded"`
	PR         int                `json:"pr"`
	Host       hostInfo           `json:"host"`
	Results    []admitd.RigResult `json:"results"`
	Derived    map[string]float64 `json:"derived"`
	Acceptance string             `json:"acceptance"`
	History    []historyEntry     `json:"history"`

	// Legacy (schema < 2) fields, read for the history upgrade only.
	Benchmarks map[string]json.RawMessage `json:"benchmarks,omitempty"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "spbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("spbench", flag.ContinueOnError)
	var (
		out       = fs.String("out", "BENCH_admitd.json", "results file (read for history/baseline, rewritten unless -check)")
		procsFlag = fs.String("procs", "1,2,4,8", "comma-separated GOMAXPROCS ladder")
		pr        = fs.Int("pr", 10, "PR number recorded in the history entry")
		requests  = fs.Int("requests", 20000, "loadgen requests per throughput run")
		quick     = fs.Bool("quick", false, "smaller iteration counts (CI smoke: ~10x faster, noisier)")
		check     = fs.Bool("check", false, "gate mode: compare against -out, exit 1 on regression, write nothing")
		tol       = fs.Float64("tolerance", 0.10, "allowed fractional ns/op regression in -check mode")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	procs, err := parseProcs(*procsFlag)
	if err != nil {
		return err
	}
	reqs := *requests
	sweepSets := 60
	if *quick {
		if reqs > 4000 {
			reqs = 4000
		}
		sweepSets = 20
	}
	// Throughput run sizes: the primary size plus, on full runs, the
	// -quick size, so a CI `spbench -quick -check` always finds
	// baseline entries with matching names to gate against.
	sizes := []int{reqs}
	if !*quick && reqs != 4000 {
		sizes = append(sizes, 4000)
	}
	// Rungs above the host's CPU count measure scheduler overhead, not
	// parallel capacity: skip them rather than record numbers that gate
	// runs on bigger hosts would misread as regressions.
	if ncpu := runtime.NumCPU(); procs[len(procs)-1] > ncpu {
		kept := procs[:0:0]
		for _, p := range procs {
			if p <= ncpu {
				kept = append(kept, p)
			} else {
				fmt.Printf("== GOMAXPROCS=%d skipped: host has %d CPU(s); an oversubscribed rung measures scheduling overhead, not capacity\n", p, ncpu)
			}
		}
		if len(kept) == 0 {
			kept = procs[:1]
		}
		procs = kept
	}

	prev, prevErr := readDoc(*out)
	if prevErr != nil && !os.IsNotExist(prevErr) {
		return fmt.Errorf("reading %s: %w", *out, prevErr)
	}

	doc := &benchDoc{
		Schema:   2,
		Recorded: time.Now().UTC().Format("2006-01-02"),
		PR:       *pr,
		Host: hostInfo{
			CPU:  cpuModel(),
			CPUs: runtime.NumCPU(),
			Go:   runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		},
		Derived:    map[string]float64{},
		Acceptance: "read_mix readpath/actor speedup >= 3.0 at every GOMAXPROCS; read-path probes and wire codecs 0 allocs/op; full handler path <= 8 allocs/op (CI AllocFree guards); with more CPUs than GOMAXPROCS points, readpath ops/s scales >= 3x from 1 to max procs",
	}
	if maxP := procs[len(procs)-1]; doc.Host.CPUs < maxP {
		doc.Host.Note = fmt.Sprintf("host has %d CPU(s): GOMAXPROCS ladder beyond that measures scheduling overhead, not parallel speedup — scaling ratios are only meaningful up to the CPU count", doc.Host.CPUs)
	}

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0)) // restore on exit
	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		fmt.Printf("== GOMAXPROCS=%d\n", p)
		var rs []admitd.RigResult
		for _, variant := range []string{"readpath", "actor"} {
			r, err := admitd.RigReadMix(variant)
			if err != nil {
				return err
			}
			rs = append(rs, r)
		}
		for _, sz := range sizes {
			thr, err := admitd.RigThroughput(sz)
			if err != nil {
				return err
			}
			// The 30/70 write-heavy mix exercises the group-commit
			// write path: most requests funnel through session actors
			// and the drain loop's coalesced COW applies.
			wm, err := admitd.RigThroughputMix(sz, "30/70")
			if err != nil {
				return err
			}
			// The durable run measures the commit log's tax on the same
			// load: acceptance is within 15% of the plain run above.
			dur, err := admitd.RigThroughputDurable(sz)
			if err != nil {
				return err
			}
			rs = append(rs, thr, wm, dur)
		}
		wire, err := admitd.RigWire()
		if err != nil {
			return err
		}
		rs = append(rs, wire...)
		walRs, err := admitd.RigWal()
		if err != nil {
			return err
		}
		rs = append(rs, walRs...)
		bt, err := admitd.RigBatchTry(64)
		if err != nil {
			return err
		}
		ms, err := admitd.RigMetricsScrape()
		if err != nil {
			return err
		}
		rs = append(rs, bt, ms, section4Result(sweepSets), probesResult())
		for i := range rs {
			rs[i].GOMAXPROCS = p
			fmt.Printf("  %-22s %12.0f ns/op %14.0f ops/s %8.2f allocs/op\n",
				rs[i].Name, rs[i].NsPerOp, rs[i].OpsPerSec, rs[i].AllocsPerOp)
		}
		doc.Results = append(doc.Results, rs...)
		doc.Derived[fmt.Sprintf("read_path_speedup_p%d", p)] =
			round2(find(rs, "read_mix/actor").NsPerOp / find(rs, "read_mix/readpath").NsPerOp)
	}
	p1 := findAt(doc.Results, "read_mix/readpath", procs[0])
	pMax := findAt(doc.Results, "read_mix/readpath", procs[len(procs)-1])
	if p1.OpsPerSec > 0 {
		doc.Derived[fmt.Sprintf("read_scaling_%d_to_%d", procs[0], procs[len(procs)-1])] =
			round2(pMax.OpsPerSec / p1.OpsPerSec)
	}

	if *check {
		return gate(prev, doc, *tol)
	}

	// Re-running within the same PR replaces that PR's entry: history
	// is one line per PR, not one per invocation.
	for _, e := range upgradeHistory(prev) {
		if e.PR != *pr {
			doc.History = append(doc.History, e)
		}
	}
	// The history line records the best throughput across the ladder:
	// on hosts with fewer CPUs than the top GOMAXPROCS setting, the
	// oversubscribed points measure scheduling overhead, not capacity.
	best := 0.0
	for _, p := range procs {
		if r := findAt(doc.Results, fmt.Sprintf("admitd_throughput/n=%d", reqs), p); r.OpsPerSec > best {
			best = r.OpsPerSec
		}
	}
	doc.History = append(doc.History, historyEntry{
		PR:                  *pr,
		Recorded:            doc.Recorded,
		ReadPathSpeedup:     doc.Derived[fmt.Sprintf("read_path_speedup_p%d", procs[0])],
		ThroughputReqPerSec: round2(best),
		ReadScaling1ToMax:   doc.Derived[fmt.Sprintf("read_scaling_%d_to_%d", procs[0], procs[len(procs)-1])],
		BatchTryAllocsPerOp: round2(findAt(doc.Results, "batch_try/k=64", procs[0]).AllocsPerOp),
	})
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d results, history of %d PRs)\n", *out, len(doc.Results), len(doc.History))
	return nil
}

// gate compares the fresh run against the committed baseline: any
// benchmark present in both (same name and GOMAXPROCS) failing ns/op
// by more than tol fails the gate. A baseline without comparable
// results (legacy schema, different ladder) passes with a notice.
func gate(prev, cur *benchDoc, tol float64) error {
	if prev == nil || len(prev.Results) == 0 {
		fmt.Println("check: no comparable baseline results (legacy or missing file); gate passes vacuously")
		return nil
	}
	base := map[string]admitd.RigResult{}
	for _, r := range prev.Results {
		base[fmt.Sprintf("%s@%d", r.Name, r.GOMAXPROCS)] = r
	}
	var failed int
	for _, r := range cur.Results {
		b, ok := base[fmt.Sprintf("%s@%d", r.Name, r.GOMAXPROCS)]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		ratio := r.NsPerOp / b.NsPerOp
		status := "ok"
		if ratio > 1+tol {
			status = "REGRESSION"
			failed++
		}
		// Allocations gate near-absolutely: allocs/op is a property of
		// the code path, not host speed, so growth beyond rounding
		// slack is a regression even when ns/op passes — this is what
		// holds the zero-alloc wire layer and read path in place on
		// hardware that can't reproduce the recorded timings.
		if r.AllocsPerOp > b.AllocsPerOp+0.5 {
			status = "ALLOC REGRESSION"
			failed++
		}
		fmt.Printf("check: %-36s @%d  %.0f -> %.0f ns/op (%+.1f%%)  %.2f -> %.2f allocs/op  %s\n",
			r.Name, r.GOMAXPROCS, b.NsPerOp, r.NsPerOp, 100*(ratio-1), b.AllocsPerOp, r.AllocsPerOp, status)
	}
	if failed > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%% vs baseline", failed, 100*tol)
	}
	return nil
}

// upgradeHistory carries the baseline file's history forward,
// synthesizing the first entry from a legacy (schema < 2) file's
// headline numbers.
func upgradeHistory(prev *benchDoc) []historyEntry {
	if prev == nil {
		return nil
	}
	if len(prev.History) > 0 {
		return prev.History
	}
	if prev.PR == 0 {
		return nil
	}
	e := historyEntry{PR: prev.PR, Recorded: prev.Recorded,
		Note: "synthesized from the legacy single-GOMAXPROCS harness; throughput not comparable to spbench runs"}
	if raw, ok := prev.Benchmarks["read_path_speedup"]; ok {
		json.Unmarshal(raw, &e.ReadPathSpeedup) //nolint:errcheck // best-effort legacy upgrade
	}
	if raw, ok := prev.Benchmarks["BenchmarkAdmitdThroughput"]; ok {
		var t struct {
			ReqPerSec float64 `json:"req_per_sec"`
		}
		json.Unmarshal(raw, &t) //nolint:errcheck // best-effort legacy upgrade
		e.ThroughputReqPerSec = t.ReqPerSec
	}
	return []historyEntry{e}
}

// section4Result times the paper's Section-4 acceptance-ratio sweep
// (zero + measured overheads), the fork-free analysis hot path.
func section4Result(sets int) admitd.RigResult {
	sweep := func(m *core.OverheadModel, sc *core.SweepSetCache) {
		core.Sweep(core.SweepConfig{
			Cores: 4, Tasks: 12, SetsPerPoint: sets,
			Utilizations: []float64{2.8, 3.0, 3.2, 3.4, 3.6, 3.8},
			Model:        m, Seed: 42, SetCache: sc,
		})
	}
	best := time.Duration(1<<63 - 1)
	before := core.AdmissionStatsSnapshot()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < 3; i++ {
		// The set cache is scoped to one iteration: the pair's second
		// sweep reuses the first's generated sets (as the spexp CLI
		// does for paired runs), while iterations stay independent.
		sc := core.NewSweepSetCache()
		t0 := time.Now()
		sweep(core.ZeroOverheads(), sc)
		sweep(core.PaperOverheads(), sc)
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	runtime.ReadMemStats(&m1)
	// Allocation regression guard for the arena-recycled inner loop:
	// heap allocations per admission probe, a deterministic count, so
	// the gate's +0.5 slack is meaningful at any sweep size.
	allocsPerProbe := 0.0
	if probes := core.AdmissionStatsSnapshot().Sub(before).Probes; probes > 0 {
		allocsPerProbe = float64(m1.Mallocs-m0.Mallocs) / float64(probes)
	}
	// The set count is part of the name: a -quick run must never be
	// compared against a full-size baseline in gate mode.
	return admitd.RigResult{
		Name:        fmt.Sprintf("section4_sweep/sets=%d", sets),
		NsPerOp:     float64(best.Nanoseconds()),
		OpsPerSec:   1e9 / float64(best.Nanoseconds()),
		AllocsPerOp: allocsPerProbe,
		Desc:        fmt.Sprintf("one full Section-4 sweep pair (zero + paper overheads, %d sets/point; arena-recycled contexts, cross-algorithm verdict sharing, paired set generation; allocs counted per admission probe)", sets),
	}
}

// probesResult measures the raw admission probe rate across all nine
// partitioning algorithms (the incremental-context regression guard).
func probesResult() admitd.RigResult {
	algs := []core.Algorithm{
		core.FPTS, core.FFD, core.WFD, core.BFD,
		core.SPA1, core.SPA2,
		core.EDFWM, core.EDFFFD, core.EDFWFD,
	}
	var sets []*core.TaskSet
	for _, u := range []float64{3.0, 3.4, 3.7} {
		sets = append(sets, core.GenerateTaskSets(core.GenConfig{N: 12, TotalUtilization: u, Seed: int64(1000 * u)}, 4)...)
	}
	model := core.PaperOverheads()
	before := core.AdmissionStatsSnapshot()
	t0 := time.Now()
	// Loop for at least a second: a single pass is short enough that
	// scheduler noise dominates on small hosts.
	for elapsed := time.Duration(0); elapsed < time.Second; elapsed = time.Since(t0) {
		for _, set := range sets {
			for _, alg := range algs {
				_, _ = alg.Partition(set.Clone(), 4, model) //nolint:errcheck // rejections expected at high U
			}
		}
	}
	elapsed := time.Since(t0)
	probes := core.AdmissionStatsSnapshot().Sub(before).Probes
	perProbe := float64(elapsed.Nanoseconds()) / float64(probes)
	return admitd.RigResult{
		Name:      "partition_probes",
		NsPerOp:   perProbe,
		OpsPerSec: 1e9 / perProbe,
		Desc:      "one placement probe across the nine partitioning algorithms (fork-free packing loop)",
	}
}

func parseProcs(s string) ([]int, error) {
	var ps []int
	for _, f := range strings.Split(s, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || p < 1 {
			return nil, fmt.Errorf("bad -procs %q", s)
		}
		ps = append(ps, p)
	}
	if len(ps) == 0 {
		return nil, fmt.Errorf("empty -procs")
	}
	return ps, nil
}

func readDoc(path string) (*benchDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

func find(rs []admitd.RigResult, name string) admitd.RigResult {
	for _, r := range rs {
		if r.Name == name {
			return r
		}
	}
	return admitd.RigResult{}
}

func findAt(rs []admitd.RigResult, name string, procs int) admitd.RigResult {
	for _, r := range rs {
		if r.Name == name && r.GOMAXPROCS == procs {
			return r
		}
	}
	return admitd.RigResult{}
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}

func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return runtime.GOARCH
}
