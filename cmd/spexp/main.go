// Command spexp runs the paper's Section 4 evaluation: acceptance
// ratio of FP-TS versus FFD and WFD over randomly generated task
// sets, with the measured overheads integrated into admission.
//
// Usage:
//
//	spexp [-cores 4] [-tasks 16] [-sets 200] [-seed 1]
//	      [-overheads both|zero|paper] [-model file.json]
//	      [-csv] [-plot] [-edf] [-validate 2s]
//	      [-umin 0.6] [-umax 0.975] [-ustep 0.025]
//
// With -overheads both (the default) the sweep runs twice so the
// overhead effect is visible side by side; -edf compares the EDF
// algorithms (EDF-WM vs EDF-FFD vs FP-TS); -csv emits machine-readable
// rows; -validate additionally simulates every accepted assignment.
package main

import (
	"fmt"
	"os"

	"repro/internal/cli"
)

func main() {
	if err := cli.Exp(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "spexp:", err)
		os.Exit(1)
	}
}
