// Command spmeasure reproduces the paper's Section 3 measurements on
// the host machine: Table 1 (queue-operation durations at N=4 and
// N=64, local and remote) and the rls/sch/cnt function-cost analogs.
//
// Usage:
//
//	spmeasure [-samples 2000] [-raw]
//
// The paper's kernel-mode values are printed alongside for
// comparison; see EXPERIMENTS.md for the interpretation.
package main

import (
	"fmt"
	"os"

	"repro/internal/cli"
)

func main() {
	if err := cli.Measure(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "spmeasure:", err)
		os.Exit(1)
	}
}
