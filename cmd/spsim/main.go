// Command spsim runs one task set through the semi-partitioned kernel
// simulator and reports the schedule, statistics, and (optionally)
// the event timeline.
//
// Usage:
//
//	spsim [-tasks 12] [-util 3.4] [-cores 4]
//	      [-alg fpts|ffd|wfd|bfd|spa1|spa2|edfwm|edfffd|edfwfd]
//	      [-overheads zero|paper] [-model file.json] [-scale 1]
//	      [-horizon 2s] [-jitter 0] [-seed 1]
//	      [-timeline] [-log] [-report]
//	spsim -demo figure1
//
// The figure1 demo reproduces the paper's Figure 1: a two-task
// preemption on one core with every overhead segment (rls, sch, cnt1,
// cnt2, cache) visible in the timeline.
package main

import (
	"fmt"
	"os"

	"repro/internal/cli"
)

func main() {
	if err := cli.Sim(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "spsim:", err)
		os.Exit(1)
	}
}
