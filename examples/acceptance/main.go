// Acceptance: a compact version of the paper's Section 4 experiment —
// acceptance ratio of FP-TS vs FFD vs WFD across a utilization sweep,
// with and without the measured overheads, plus a simulation
// validation pass over every accepted assignment.
package main

import (
	"fmt"

	"repro/internal/core"
)

func main() {
	grid := []float64{2.8, 3.0, 3.2, 3.4, 3.6, 3.8}

	base := core.SweepConfig{
		Cores:        4,
		Tasks:        12,
		SetsPerPoint: 100,
		Utilizations: grid,
		Seed:         42,
	}

	fmt.Println("Section 4 — acceptance ratio, zero overheads (theory)")
	zero := core.Sweep(base)
	fmt.Print(zero.Table())

	withOv := base
	withOv.Model = core.PaperOverheads()
	withOv.SimHorizon = 2 * core.Second
	fmt.Println("\nSection 4 — acceptance ratio, measured overheads integrated")
	paper := core.Sweep(withOv)
	fmt.Print(paper.Table())
	fmt.Printf("\nsimulation validation of every accepted assignment: %d violations (expect 0)\n",
		paper.TotalSimViolations())

	fmt.Println("\nconclusions reproduced:")
	fmt.Printf("  mean acceptance  FP-TS %.3f | FFD %.3f | WFD %.3f   (overheads integrated)\n",
		paper.WeightedScore("FP-TS"), paper.WeightedScore("FFD"), paper.WeightedScore("WFD"))
	fmt.Printf("  overhead cost to FP-TS acceptance: %.3f (zero) → %.3f (measured)\n",
		zero.WeightedScore("FP-TS"), paper.WeightedScore("FP-TS"))
	fmt.Println("  → task splitting's extra overhead is small, and semi-partitioned")
	fmt.Println("    scheduling outperforms partitioned scheduling in realistic systems.")
}
