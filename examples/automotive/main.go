// Automotive: the paper's pipeline on a realistic engine-management
// workload — task periods drawn from the WATERS 2015 automotive
// benchmark histogram ({1..1000} ms with production weights) instead
// of the synthetic log-uniform distribution, scheduled with FP-TS
// under measured overheads, and cross-validated with the per-task
// bound-vs-observed report.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/taskgen"
)

func main() {
	set := core.GenerateTaskSet(core.GenConfig{
		N:                20,
		TotalUtilization: 3.3,
		Periods:          taskgen.Automotive,
		Seed:             2015,
	})
	fmt.Printf("automotive workload: %d tasks, ΣU = %.3f\n", set.Len(), set.TotalUtilization())
	hist := map[core.Time]int{}
	for _, t := range set.Tasks {
		hist[t.Period]++
	}
	fmt.Print("period histogram:")
	for _, p := range []int64{1, 2, 5, 10, 20, 50, 100, 200, 1000} {
		if n := hist[core.Time(p)*core.Millisecond]; n > 0 {
			fmt.Printf(" %dms×%d", p, n)
		}
	}
	fmt.Println()

	model := core.PaperOverheads()
	a, err := core.Schedule(set, 4, core.FPTS, model)
	if err != nil {
		log.Fatalf("FP-TS could not schedule: %v", err)
	}
	fmt.Printf("\n%s\n", a)

	res, err := core.Simulate(a, core.SimConfig{
		Model:   model,
		Horizon: 2 * core.Second,
		// Real automotive tasks are sporadic: angle-synchronous tasks
		// arrive with jitter. 200µs of arrival jitter exercises the
		// sporadic path without changing the worst case.
		ArrivalJitter: 200 * core.Microsecond,
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := report.New(a, model, res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-task analysis bound vs simulated response (sporadic arrivals):")
	fmt.Print(rep.ResponseTable())
	fmt.Println()
	fmt.Print(rep.OverheadTable())
	if v := rep.Violations(); len(v) > 0 {
		log.Fatalf("bound violations: %v", v)
	}
	fmt.Println("\nno bound violations — the paper's overhead-aware admission holds")
	fmt.Println("on a production-shaped workload with sporadic arrivals.")
}
