// Remote admission end-to-end through the typed client SDK: this
// example boots a real admitd server on a loopback TCP listener,
// connects the client package to it over HTTP — exactly what an
// external embedder on another machine would do — and walks the v1
// surface: create a session, admit tasks first-fit, probe without
// committing, run the two-phase hold/commit protocol, stream a
// generated batch, remove a task, and read state and stats. Swap
// client.New for client.InProcess(srv) and the same code runs with
// zero sockets.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/api"
	"repro/client"
	"repro/internal/admitd"
)

func main() {
	// Boot the daemon on an ephemeral loopback port — stand-in for a
	// long-running `spadmitd serve` somewhere on the network.
	srv, err := admitd.New(admitd.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln) //nolint:errcheck // closed on exit
	defer httpSrv.Close()

	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("admitd listening on %s\n", baseURL)

	// The client an embedder writes: retries for flaky networks, a
	// request timeout, and a typed handle per session.
	c, err := client.New(baseURL,
		client.WithTimeout(10*time.Second),
		client.WithRetry(2, 50*time.Millisecond),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		log.Fatal(err)
	}

	sess, err := c.CreateSession(ctx, api.CreateSessionRequest{
		Name: "rack1", Cores: 4, Policy: "fp", // paper overhead model by default
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("created session rack1: 4 cores, fixed-priority, paper overheads")

	// Admit a few tasks first-fit; the verdict names the core.
	for i := 1; i <= 4; i++ {
		v, err := sess.Admit(ctx, api.AdmitRequest{Task: api.Task{
			ID: int64(i), WCETNs: int64(i) * 1e6, PeriodNs: 2e7, Priority: i,
		}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("admit task %d: admitted=%v core=%d (%d probes)\n", i, v.Admitted, v.Core, v.Probes)
	}

	// Probe only: can a heavy task join? Nothing is committed.
	v, err := sess.Try(ctx, api.AdmitRequest{Task: api.Task{ID: 99, WCETNs: 15e6, PeriodNs: 2e7, Priority: 99}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("try heavy task 99: admitted=%v (state unchanged)\n", v.Admitted)

	// Two-phase protocol: hold the probe, decide, then commit.
	v, err = sess.Try(ctx, api.AdmitRequest{Task: api.Task{ID: 5, WCETNs: 2e6, PeriodNs: 2e7, Priority: 5}, Hold: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("held probe for task 5: admitted=%v pending=%v\n", v.Admitted, v.Pending)
	if v.Admitted {
		if _, err := sess.Commit(ctx); err != nil {
			log.Fatal(err)
		}
		fmt.Println("committed task 5")
	} else if _, err := sess.Rollback(ctx); err != nil {
		log.Fatal(err)
	}

	// Typed error handling: duplicate IDs come back as a stable code,
	// not a string to parse.
	if _, err := sess.Admit(ctx, api.AdmitRequest{Task: api.Task{ID: 5, WCETNs: 1e6, PeriodNs: 2e7, Priority: 5}}); api.IsCode(err, api.CodeDuplicateTask) {
		fmt.Println("re-admitting task 5 correctly rejected:", err)
	}

	// Stream a server-side generated batch, one verdict per task.
	stream, err := sess.Batch(ctx, api.BatchRequest{
		Generate: &api.TaskGen{N: 12, TotalUtilization: 1.5, Seed: 7},
		Order:    "util-desc",
	})
	if err != nil {
		log.Fatal(err)
	}
	for stream.Next() {
		bv := stream.Verdict()
		fmt.Printf("  batch verdict: task %d admitted=%v core=%d\n", bv.TaskID, bv.Admitted, bv.Core)
	}
	sum, err := stream.Summary()
	stream.Close() //nolint:errcheck // read-side close
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch done: %d admitted, %d rejected, schedulable=%v\n", sum.Admitted, sum.Rejected, sum.Schedulable)

	// Churn: remove a task, then inspect committed state and the
	// admission-work counters of the warm incremental context.
	if _, err := sess.Remove(ctx, 1); err != nil {
		log.Fatal(err)
	}
	state, err := sess.State(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("state: %d tasks over %d cores, schedulable=%v, utilization=%v\n",
		len(state.Tasks), state.Cores, *state.Schedulable, state.CoreUtilization)
	stats, err := sess.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stats: %d probes, cache hit rate %.2f, %.1f FP iterations/solve\n",
		stats.Admission.Probes, stats.Admission.CacheHitRate, stats.Admission.MeanFPIterations)
}
