// EDF: the paper's Section 2 extension — the same semi-partitioned
// runtime under earliest-deadline-first scheduling.
//
// The example shows three things:
//  1. EDF packs cores to 100% where RM tops out at the Liu & Layland
//     bound (a set RM rejects, EDF accepts, the simulator confirms);
//  2. EDF-WM window splitting rescues sets partitioned EDF cannot
//     place (the bin-packing pathology again);
//  3. the acceptance-ratio comparison, EDF edition: EDF-WM vs EDF-FFD
//     vs the fixed-priority FP-TS, overheads integrated.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/task"
)

func main() {
	fmt.Println("1) EDF schedules what RM cannot (C=(2,4), T=(5,7); U = 0.971)")
	mk := func() *core.TaskSet {
		s := task.NewSet(
			&core.Task{ID: 1, WCET: 2 * core.Millisecond, Period: 5 * core.Millisecond},
			&core.Task{ID: 2, WCET: 4 * core.Millisecond, Period: 7 * core.Millisecond},
		)
		s.AssignRM()
		return s
	}
	if _, err := core.Schedule(mk(), 1, core.FFD, nil); err == nil {
		log.Fatal("RM unexpectedly accepted")
	}
	fmt.Println("   RM/FFD rejects the pair on one core")
	a, err := core.Schedule(mk(), 1, core.EDFFFD, nil)
	if err != nil {
		log.Fatal("EDF-FFD rejected a feasible set: ", err)
	}
	res, err := core.Simulate(a, core.SimConfig{Horizon: 350 * core.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   EDF-FFD accepts; simulated 350ms under EDF: misses = %d\n\n", len(res.Misses))

	fmt.Println("2) EDF-WM window splitting (3 × U=0.65 on 2 cores)")
	s2 := task.NewSet(
		&core.Task{ID: 1, WCET: 13 * core.Millisecond, Period: 20 * core.Millisecond},
		&core.Task{ID: 2, WCET: 13 * core.Millisecond, Period: 20 * core.Millisecond},
		&core.Task{ID: 3, WCET: 13 * core.Millisecond, Period: 20 * core.Millisecond},
	)
	s2.AssignRM()
	model := core.PaperOverheads()
	if _, err := core.Schedule(s2.Clone(), 2, core.EDFFFD, model); err == nil {
		log.Fatal("partitioned EDF unexpectedly accepted")
	}
	fmt.Println("   partitioned EDF-FFD rejects (no pair fits a core)")
	a2, err := core.Schedule(s2.Clone(), 2, core.EDFWM, model)
	if err != nil {
		log.Fatal("EDF-WM failed: ", err)
	}
	fmt.Printf("   EDF-WM splits with deadline windows:\n%s", a2)
	for _, sp := range a2.Splits {
		fmt.Printf("   windows: %v\n", sp.Windows)
	}
	res2, err := core.Simulate(a2, core.SimConfig{Model: model, Horizon: 2 * core.Second})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   simulated 2s with paper overheads: %d migrations, misses = %d\n\n",
		res2.Stats.Migrations, len(res2.Misses))

	fmt.Println("3) acceptance ratio, EDF edition (overheads integrated)")
	r := core.Sweep(core.SweepConfig{
		Cores: 4, Tasks: 12, SetsPerPoint: 60,
		Utilizations: []float64{3.2, 3.4, 3.6, 3.8, 3.9},
		Algorithms:   []core.Algorithm{core.EDFWM, core.EDFFFD, core.FPTS},
		Model:        model,
		Seed:         17,
	})
	fmt.Print(r.Table())
	fmt.Println("\nEDF-WM extends the semi-partitioned advantage beyond FP-TS,")
	fmt.Println("exactly as the paper's Section 2 anticipates for EDF-based splitting.")
}
