// Overheadsweep: sensitivity ablations over the overhead model —
// what would it take for run-time overheads to erase semi-partitioned
// scheduling's advantage?
//
//  1. Remote-penalty ablation: scale the extra cost of cross-core
//     queue operations (the part of the overhead unique to task
//     splitting) by 1×..8×.
//  2. CPMD ablation: scale migration cache penalties relative to
//     local preemption (the paper argues ≈1× under a shared L3;
//     private-LLC machines would be worse).
//  3. Global overhead scale: every overhead 1×..50× (how slow would
//     the kernel paths have to get before schedulability collapses?).
//
// Also re-measures Table 1 on this machine for reference.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/measure"
)

func main() {
	grid := []float64{3.2, 3.4, 3.6, 3.8}
	base := core.SweepConfig{
		Cores:        4,
		Tasks:        12,
		SetsPerPoint: 80,
		Utilizations: grid,
		Seed:         7,
	}
	score := func(m *core.OverheadModel) (fpts, ffd float64) {
		cfg := base
		cfg.Model = m
		r := core.Sweep(cfg)
		return r.WeightedScore("FP-TS"), r.WeightedScore("FFD")
	}

	fmt.Println("Ablation A — remote queue-operation penalty (splitting's own cost)")
	fmt.Printf("%-10s %-8s %-8s %-8s\n", "penalty", "FP-TS", "FFD", "gap")
	for _, p := range []float64{1, 2, 4, 8} {
		f, d := score(core.PaperOverheads().WithRemotePenalty(p))
		fmt.Printf("%-10.0fx %-8.3f %-8.3f %+.3f\n", p, f, d, f-d)
	}

	fmt.Println("\nAblation B — migration CPMD factor (paper: ≈1 under shared L3)")
	fmt.Printf("%-10s %-8s %-8s %-8s\n", "factor", "FP-TS", "FFD", "gap")
	for _, f := range []float64{1, 2, 5, 10} {
		m := core.PaperOverheads()
		fp, ffd := score(m.WithCache(m.Cache.WithMigrationFactor(f)))
		fmt.Printf("%-10.0fx %-8.3f %-8.3f %+.3f\n", f, fp, ffd, fp-ffd)
	}

	fmt.Println("\nAblation C — global overhead scale (all Section 3 costs ×k)")
	fmt.Printf("%-10s %-8s %-8s\n", "scale", "FP-TS", "FFD")
	for _, k := range []float64{1, 10, 25, 50} {
		fp, ffd := score(core.PaperOverheads().Scale(k))
		fmt.Printf("%-10.0fx %-8.3f %-8.3f\n", k, fp, ffd)
	}

	fmt.Println("\nTable 1 re-measured on this machine (see EXPERIMENTS.md):")
	fmt.Print(measure.FormatTable1(measure.Table1(500)))
}
