// Quickstart: generate a task set, schedule it with the
// semi-partitioned FP-TS algorithm under the paper's measured
// overheads, and verify the schedule in the kernel simulator.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// A 12-task set at 85% utilization of a 4-core machine — too
	// heavy for naive partitioning to be comfortable, easy for FP-TS.
	set := core.GenerateTaskSet(core.GenConfig{
		N:                12,
		TotalUtilization: 3.4,
		Seed:             2011,
	})
	fmt.Printf("generated %d tasks, ΣU = %.3f\n", set.Len(), set.TotalUtilization())

	model := core.PaperOverheads()
	a, err := core.Schedule(set, 4, core.FPTS, model)
	if err != nil {
		log.Fatalf("FP-TS could not schedule the set: %v", err)
	}
	fmt.Printf("\nFP-TS assignment (admitted with measured overheads):\n%s\n", a)

	res, err := core.Simulate(a, core.SimConfig{Model: model, Horizon: 2 * core.Second})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated 2s: %d jobs, %d preemptions, %d migrations\n",
		res.Stats.Finishes, res.Stats.Preemptions, res.Stats.Migrations)
	fmt.Printf("kernel overhead: %v (%.4f%% of core time)\n",
		res.Stats.TotalOverhead(), 100*res.Stats.OverheadRatio(4))
	if res.Schedulable() {
		fmt.Println("all deadlines met — analysis and simulation agree")
	} else {
		log.Fatalf("deadline misses: %v", res.Misses)
	}
}
