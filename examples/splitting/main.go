// Splitting: the bin-packing pathology that motivates semi-partitioned
// scheduling (paper, Section 1), worked end to end.
//
// Three tasks of utilization 0.6 cannot be partitioned onto two cores
// — every pair overloads a core — even though total utilization is
// only 1.8 of 2.0. FP-TS splits one task across the cores and the set
// becomes schedulable; the simulator shows the job migrating every
// period, and the trace shows what a migration costs.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/task"
)

func main() {
	model := core.PaperOverheads()
	mk := func(id task.ID) *core.Task {
		// U = 0.575 each: any two overload a core, so partitioning
		// fails, while total utilization is only 1.725 of 2.0. (The
		// 25ms of slack per hyperperiod absorbs the µs overheads.)
		return &core.Task{ID: id, WCET: 11500 * core.Microsecond, Period: 20 * core.Millisecond, WSS: 512 << 10}
	}
	set := task.NewSet(mk(1), mk(2), mk(3))
	set.AssignRM()
	fmt.Printf("3 tasks × U=0.575 on 2 cores (ΣU = %.3f)\n\n", set.TotalUtilization())

	for _, alg := range []core.Algorithm{core.FFD, core.WFD} {
		if _, err := core.Schedule(set.Clone(), 2, alg, model); err != nil {
			fmt.Printf("%-5s cannot schedule the set (bin-packing waste)\n", alg.Name())
		} else {
			fmt.Printf("%-5s unexpectedly schedulable?!\n", alg.Name())
		}
	}

	a, err := core.Schedule(set.Clone(), 2, core.FPTS, model)
	if err != nil {
		log.Fatalf("FP-TS failed: %v", err)
	}
	fmt.Printf("FP-TS schedules it by splitting:\n%s\n", a)

	buf := &core.TraceBuffer{}
	res, err := core.Simulate(a, core.SimConfig{
		Model:    model,
		Horizon:  200 * core.Millisecond,
		Recorder: buf,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated 200ms with paper overheads: %d migrations, %d preemptions\n",
		res.Stats.Migrations, res.Stats.Preemptions)
	fmt.Printf("overhead total %v (%.4f%% of core time); all deadlines met: %v\n\n",
		res.Stats.TotalOverhead(), 100*res.Stats.OverheadRatio(2), res.Schedulable())

	fmt.Println("first 25ms of the timeline (watch the split task hop cores):")
	if err := buf.Timeline(os.Stdout, 0, 25*core.Millisecond); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nand as a gantt chart (τ3 is the split task — see it on both cores):")
	if err := buf.Gantt(os.Stdout, 0, 40*core.Millisecond, 80); err != nil {
		log.Fatal(err)
	}
}
