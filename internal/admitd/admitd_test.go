package admitd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"repro/api"
	"repro/internal/analysis"
	"repro/internal/overhead"
	"repro/internal/partition"
	"repro/internal/task"
	"repro/internal/taskgen"
)

// newTestServer builds a server for tests.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// doReq issues one in-process request and returns (status, body).
func doReq(t *testing.T, h http.Handler, method, path string, payload any) (int, []byte) {
	t.Helper()
	var body *bytes.Reader
	if payload != nil {
		data, err := json.Marshal(payload)
		if err != nil {
			t.Fatal(err)
		}
		body = bytes.NewReader(data)
	} else {
		body = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, body)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

// mustStatus fails unless the request returns want.
func mustStatus(t *testing.T, h http.Handler, method, path string, payload any, want int) []byte {
	t.Helper()
	status, body := doReq(t, h, method, path, payload)
	if status != want {
		t.Fatalf("%s %s: HTTP %d (want %d): %s", method, path, status, want, body)
	}
	return body
}

// testSet draws a deterministic task set with RM priorities.
func testSet(n int, util float64, seed int64) *task.Set {
	return taskgen.New(taskgen.Config{N: n, TotalUtilization: util, Seed: seed}).Next()
}

// firstFitReplay computes the expected verdict of a first-fit
// admission with the *stateless* analyzer on a mirror assignment —
// the ground truth every server verdict must equal bit for bit.
func firstFitReplay(an analysis.Analyzer, mirror *task.Assignment, m *overhead.Model, tk *task.Task) (bool, int) {
	for c := 0; c < mirror.NumCores; c++ {
		mirror.Place(tk, c)
		ok := an.CoreSchedulable(mirror, c, m)
		if ok {
			return true, c
		}
		mirror.Normal[c] = mirror.Normal[c][:len(mirror.Normal[c])-1]
	}
	return false, -1
}

// removeFromMirror deletes a task from the mirror assignment.
func removeFromMirror(mirror *task.Assignment, id task.ID) {
	for c := range mirror.Normal {
		for i, t := range mirror.Normal[c] {
			if t.ID == id {
				mirror.Normal[c] = append(mirror.Normal[c][:i], mirror.Normal[c][i+1:]...)
				return
			}
		}
	}
}

// TestEndToEndFFDIdentity drives the acceptance criterion: create a
// session, admit a whole set incrementally in FFD order, and require
// the verdict sequence and the final assignment to be bit-identical
// to (a) a stateless core-by-core replay and (b) the offline FFD
// partitioner on the same set.
func TestEndToEndFFDIdentity(t *testing.T) {
	srv := newTestServer(t, Config{})
	model := overhead.Normalize(overhead.PaperModel())
	an := analysis.FixedPriorityRTA
	set := testSet(16, 0.55*4, 42)

	mustStatus(t, srv, "POST", "/v1/sessions", api.CreateSessionRequest{Name: "e2e", Cores: 4, Policy: "fp", Model: json.RawMessage(`"paper"`)}, http.StatusCreated)

	mirror := task.NewAssignment(4)
	order := set.SortedByUtilizationDesc()
	for _, tk := range order {
		wantOK, wantCore := firstFitReplay(an, mirror, model, tk)
		body := mustStatus(t, srv, "POST", "/v1/sessions/e2e/admit",
			api.AdmitRequest{Task: fromTask(tk, -1)}, http.StatusOK)
		var v api.Verdict
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.Admitted != wantOK || v.Core != wantCore {
			t.Fatalf("task %d: server (%v, core %d) != stateless replay (%v, core %d)",
				tk.ID, v.Admitted, v.Core, wantOK, wantCore)
		}
		if !wantOK {
			removeFromMirror(mirror, tk.ID) // replay already popped; no-op guard
		}
	}

	// Offline FFD on the same set must produce the identical final
	// assignment (same order, same first-fit probes).
	offline, err := partition.FFD.Partition(set.Clone(), 4, model)
	if err != nil {
		t.Fatalf("offline FFD rejected the set the server accepted: %v", err)
	}
	var state api.State
	body := mustStatus(t, srv, "GET", "/v1/sessions/e2e", nil, http.StatusOK)
	if err := json.Unmarshal(body, &state); err != nil {
		t.Fatal(err)
	}
	if state.Schedulable == nil || !*state.Schedulable {
		t.Fatal("session must report schedulable")
	}
	got := placementsByCore(t, state)
	want := make([][]int64, 4)
	for c := 0; c < 4; c++ {
		for _, tk := range offline.Normal[c] {
			want[c] = append(want[c], int64(tk.ID))
		}
	}
	for c := 0; c < 4; c++ {
		if fmt.Sprint(got[c]) != fmt.Sprint(want[c]) {
			t.Fatalf("core %d: server %v != offline FFD %v", c, got[c], want[c])
		}
	}
	// And the mirror must agree with the offline result too (sanity of
	// the replay itself).
	if !analysis.Schedulable(mirror, model) {
		t.Fatal("mirror assignment must be schedulable")
	}
}

func placementsByCore(t *testing.T, state api.State) [][]int64 {
	t.Helper()
	out := make([][]int64, state.Cores)
	for _, j := range state.Tasks {
		if j.Core < 0 || j.Core >= state.Cores {
			t.Fatalf("state task %d on core %d", j.ID, j.Core)
		}
		out[j.Core] = append(out[j.Core], j.ID)
	}
	return out
}

// TestTryHoldCommitRollback exercises the two-phase protocol and its
// conflict handling.
func TestTryHoldCommitRollback(t *testing.T) {
	srv := newTestServer(t, Config{})
	mustStatus(t, srv, "POST", "/v1/sessions", api.CreateSessionRequest{Name: "s", Cores: 2}, http.StatusCreated)
	tk := api.Task{ID: 1, WCETNs: 1e6, PeriodNs: 1e7, Priority: 1}

	// Held probe, then a second mutation must 409.
	body := mustStatus(t, srv, "POST", "/v1/sessions/s/try", api.AdmitRequest{Task: tk, Hold: true}, http.StatusOK)
	var v api.Verdict
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if !v.Admitted || !v.Pending {
		t.Fatalf("held try: %+v", v)
	}
	mustStatus(t, srv, "POST", "/v1/sessions/s/admit", api.AdmitRequest{Task: api.Task{ID: 2, WCETNs: 1e6, PeriodNs: 1e7, Priority: 2}}, http.StatusConflict)
	mustStatus(t, srv, "POST", "/v1/sessions/s/rollback", nil, http.StatusOK)
	mustStatus(t, srv, "POST", "/v1/sessions/s/rollback", nil, http.StatusConflict)

	// Rolled back: the task is not in the session; admit it for real.
	mustStatus(t, srv, "POST", "/v1/sessions/s/try", api.AdmitRequest{Task: tk, Hold: true}, http.StatusOK)
	mustStatus(t, srv, "POST", "/v1/sessions/s/commit", nil, http.StatusOK)
	mustStatus(t, srv, "POST", "/v1/sessions/s/admit", api.AdmitRequest{Task: tk}, http.StatusConflict) // duplicate ID

	// Probe-only try leaves no state.
	mustStatus(t, srv, "POST", "/v1/sessions/s/try", api.AdmitRequest{Task: api.Task{ID: 3, WCETNs: 1e6, PeriodNs: 1e7, Priority: 3}}, http.StatusOK)
	var state api.State
	if err := json.Unmarshal(mustStatus(t, srv, "GET", "/v1/sessions/s", nil, http.StatusOK), &state); err != nil {
		t.Fatal(err)
	}
	if len(state.Tasks) != 1 || state.Tasks[0].ID != 1 {
		t.Fatalf("state after try: %+v", state.Tasks)
	}

	// Hold is try-only: admit with hold is rejected outright.
	mustStatus(t, srv, "POST", "/v1/sessions/s/admit", api.AdmitRequest{Task: api.Task{ID: 4, WCETNs: 1e6, PeriodNs: 1e7, Priority: 4}, Hold: true}, http.StatusBadRequest)

	// A held probe's tentative task never leaks into state, and a
	// held REJECTED probe cannot be committed (only rolled back).
	mustStatus(t, srv, "POST", "/v1/sessions/s/try", api.AdmitRequest{Task: api.Task{ID: 5, WCETNs: 1e6, PeriodNs: 1e7, Priority: 5}, Hold: true}, http.StatusOK)
	var held api.State
	if err := json.Unmarshal(mustStatus(t, srv, "GET", "/v1/sessions/s", nil, http.StatusOK), &held); err != nil {
		t.Fatal(err)
	}
	if !held.ProbePending || len(held.Tasks) != 1 || held.Schedulable != nil {
		t.Fatalf("state with held probe: %+v", held)
	}
	mustStatus(t, srv, "POST", "/v1/sessions/s/rollback", nil, http.StatusOK)
	hog := 0
	mustStatus(t, srv, "POST", "/v1/sessions/s/try", api.AdmitRequest{Task: api.Task{ID: 6, WCETNs: 95e5, PeriodNs: 1e7, Priority: 6}, Core: &hog, Hold: true}, http.StatusOK)
	mustStatus(t, srv, "POST", "/v1/sessions/s/commit", nil, http.StatusConflict) // rejected probe: commit refused
	mustStatus(t, srv, "POST", "/v1/sessions/s/rollback", nil, http.StatusOK)
}

// TestRemoveEndpoint admits to saturation, removes, and re-admits —
// the online churn the removal invalidation path exists for.
func TestRemoveEndpoint(t *testing.T) {
	srv := newTestServer(t, Config{})
	model := overhead.Normalize(overhead.PaperModel())
	an := analysis.FixedPriorityRTA
	mustStatus(t, srv, "POST", "/v1/sessions", api.CreateSessionRequest{Name: "rm", Cores: 2}, http.StatusCreated)

	mirror := task.NewAssignment(2)
	set := testSet(14, 0.9*2, 7)
	admitted := []*task.Task{}
	for _, tk := range set.SortedByUtilizationDesc() {
		wantOK, wantCore := firstFitReplay(an, mirror, model, tk)
		var v api.Verdict
		body := mustStatus(t, srv, "POST", "/v1/sessions/rm/admit", api.AdmitRequest{Task: fromTask(tk, -1)}, http.StatusOK)
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.Admitted != wantOK || v.Core != wantCore {
			t.Fatalf("task %d: (%v,%d) != replay (%v,%d)", tk.ID, v.Admitted, v.Core, wantOK, wantCore)
		}
		if v.Admitted {
			admitted = append(admitted, tk)
		}
	}
	if len(admitted) < 3 {
		t.Fatalf("workload degenerate: only %d admitted", len(admitted))
	}
	// Remove every other admitted task, replaying each removal on the
	// mirror, then re-admit fresh twins and compare verdicts again.
	for i, tk := range admitted {
		if i%2 == 1 {
			continue
		}
		mustStatus(t, srv, "POST", "/v1/sessions/rm/remove", api.RemoveRequest{ID: int64(tk.ID)}, http.StatusOK)
		removeFromMirror(mirror, tk.ID)
	}
	mustStatus(t, srv, "POST", "/v1/sessions/rm/remove", api.RemoveRequest{ID: 99999}, http.StatusNotFound)
	for i, tk := range admitted {
		if i%2 == 1 {
			continue
		}
		twin := *tk
		twin.ID = tk.ID + 1000
		wantOK, wantCore := firstFitReplay(an, mirror, model, &twin)
		var v api.Verdict
		body := mustStatus(t, srv, "POST", "/v1/sessions/rm/admit", api.AdmitRequest{Task: fromTask(&twin, -1)}, http.StatusOK)
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.Admitted != wantOK || v.Core != wantCore {
			t.Fatalf("re-admit %d: (%v,%d) != replay (%v,%d)", twin.ID, v.Admitted, v.Core, wantOK, wantCore)
		}
	}
}

// TestBatchGenerateAndStats checks the server-side generated batch,
// the NDJSON stream shape, and the stats endpoints.
func TestBatchGenerateAndStats(t *testing.T) {
	srv := newTestServer(t, Config{})
	mustStatus(t, srv, "POST", "/v1/sessions", api.CreateSessionRequest{Name: "b", Cores: 4}, http.StatusCreated)
	body := mustStatus(t, srv, "POST", "/v1/sessions/b/batch", api.BatchRequest{
		Generate: &api.TaskGen{N: 12, TotalUtilization: 2.0, Seed: 5},
		Order:    "util-desc",
	}, http.StatusOK)
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 13 {
		t.Fatalf("batch stream: %d lines (want 12 verdicts + summary)", len(lines))
	}
	var sum api.BatchSummary
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sum); err != nil {
		t.Fatal(err)
	}
	if !sum.Done || sum.Admitted+sum.Rejected != 12 {
		t.Fatalf("batch summary: %+v", sum)
	}
	if sum.Admitted == 0 || !sum.Schedulable {
		t.Fatalf("2.0 util over 4 cores must mostly admit: %+v", sum)
	}

	var stats map[string]any
	if err := json.Unmarshal(mustStatus(t, srv, "GET", "/v1/sessions/b/stats", nil, http.StatusOK), &stats); err != nil {
		t.Fatal(err)
	}
	adm := stats["admission"].(map[string]any)
	if adm["probes"].(float64) == 0 {
		t.Fatalf("session stats show no probes: %v", stats)
	}
	if err := json.Unmarshal(mustStatus(t, srv, "GET", "/v1/stats", nil, http.StatusOK), &stats); err != nil {
		t.Fatal(err)
	}
	if stats["sessions_live"].(float64) != 1 {
		t.Fatalf("server stats: %v", stats)
	}
}

// TestSnapshotRestoreIdentity checks eviction + restore: a session
// evicted to disk and restored must answer future admissions exactly
// as the uninterrupted session would.
func TestSnapshotRestoreIdentity(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, Config{MaxSessions: 2, SnapshotDir: dir})
	model := overhead.Normalize(overhead.PaperModel())
	an := analysis.FixedPriorityRTA

	mustStatus(t, srv, "POST", "/v1/sessions", api.CreateSessionRequest{Name: "a", Cores: 2}, http.StatusCreated)
	mirror := task.NewAssignment(2)
	set := testSet(8, 0.8*2, 11)
	half := set.SortedByUtilizationDesc()
	for _, tk := range half[:4] {
		wantOK, wantCore := firstFitReplay(an, mirror, model, tk)
		var v api.Verdict
		if err := json.Unmarshal(mustStatus(t, srv, "POST", "/v1/sessions/a/admit", api.AdmitRequest{Task: fromTask(tk, -1)}, http.StatusOK), &v); err != nil {
			t.Fatal(err)
		}
		if v.Admitted != wantOK || v.Core != wantCore {
			t.Fatalf("pre-evict %d: (%v,%d) != (%v,%d)", tk.ID, v.Admitted, v.Core, wantOK, wantCore)
		}
	}
	// Two more sessions push "a" (the LRU) out.
	mustStatus(t, srv, "POST", "/v1/sessions", api.CreateSessionRequest{Name: "b", Cores: 2}, http.StatusCreated)
	mustStatus(t, srv, "POST", "/v1/sessions", api.CreateSessionRequest{Name: "c", Cores: 2}, http.StatusCreated)
	if srv.Store().evicted.Load() == 0 {
		t.Fatal("creating past the cap must evict")
	}
	// Touching "a" restores it from disk; the remaining admissions
	// must still match the uninterrupted stateless replay.
	for _, tk := range half[4:] {
		wantOK, wantCore := firstFitReplay(an, mirror, model, tk)
		var v api.Verdict
		if err := json.Unmarshal(mustStatus(t, srv, "POST", "/v1/sessions/a/admit", api.AdmitRequest{Task: fromTask(tk, -1)}, http.StatusOK), &v); err != nil {
			t.Fatal(err)
		}
		if v.Admitted != wantOK || v.Core != wantCore {
			t.Fatalf("post-restore %d: (%v,%d) != (%v,%d)", tk.ID, v.Admitted, v.Core, wantOK, wantCore)
		}
	}
	if srv.Store().restored.Load() == 0 {
		t.Fatal("touching the evicted session must restore it")
	}
	// Graceful shutdown snapshots everything; a fresh server over the
	// same directory sees identical state.
	var before api.State
	if err := json.Unmarshal(mustStatus(t, srv, "GET", "/v1/sessions/a", nil, http.StatusOK), &before); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv2 := newTestServer(t, Config{MaxSessions: 8, SnapshotDir: dir})
	var after api.State
	if err := json.Unmarshal(mustStatus(t, srv2, "GET", "/v1/sessions/a", nil, http.StatusOK), &after); err != nil {
		t.Fatal(err)
	}
	bj, _ := json.Marshal(before)
	aj, _ := json.Marshal(after)
	if !bytes.Equal(bj, aj) {
		t.Fatalf("state across shutdown/restart:\n before %s\n after  %s", bj, aj)
	}
}

// TestSnapshotDiscardsHeldProbe: eviction/shutdown must never
// persist a held probe's tentative mutation as committed state.
func TestSnapshotDiscardsHeldProbe(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, Config{SnapshotDir: dir})
	mustStatus(t, srv, "POST", "/v1/sessions", api.CreateSessionRequest{Name: "h", Cores: 2}, http.StatusCreated)
	mustStatus(t, srv, "POST", "/v1/sessions/h/admit", api.AdmitRequest{Task: api.Task{ID: 1, WCETNs: 1e6, PeriodNs: 1e7, Priority: 1}}, http.StatusOK)
	mustStatus(t, srv, "POST", "/v1/sessions/h/try", api.AdmitRequest{Task: api.Task{ID: 2, WCETNs: 1e6, PeriodNs: 1e7, Priority: 2}, Hold: true}, http.StatusOK)
	srv.Close() // snapshots with the probe still held
	srv2 := newTestServer(t, Config{SnapshotDir: dir})
	var state api.State
	if err := json.Unmarshal(mustStatus(t, srv2, "GET", "/v1/sessions/h", nil, http.StatusOK), &state); err != nil {
		t.Fatal(err)
	}
	if len(state.Tasks) != 1 || state.Tasks[0].ID != 1 || state.ProbePending {
		t.Fatalf("restored state must hold only the committed task: %+v", state)
	}
}

// TestEDFSessionAndSplit covers the EDF policy path and the split
// endpoint.
func TestEDFSessionAndSplit(t *testing.T) {
	srv := newTestServer(t, Config{})
	mustStatus(t, srv, "POST", "/v1/sessions", api.CreateSessionRequest{Name: "e", Cores: 2, Policy: "edf", Model: json.RawMessage(`"zero"`)}, http.StatusCreated)
	mustStatus(t, srv, "POST", "/v1/sessions/e/admit", api.AdmitRequest{Task: api.Task{ID: 1, WCETNs: 4e6, PeriodNs: 1e7}}, http.StatusOK)
	// A split with windows: 6ms budget over two cores, 5ms windows.
	var v api.Verdict
	body := mustStatus(t, srv, "POST", "/v1/sessions/e/split", api.SplitRequest{Split: api.Split{
		Task:      api.Task{ID: 2, WCETNs: 6e6, PeriodNs: 1e7},
		Parts:     []api.Part{{Core: 0, BudgetNs: 3e6}, {Core: 1, BudgetNs: 3e6}},
		WindowsNs: []int64{5e6, 5e6},
	}}, http.StatusOK)
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if !v.Admitted {
		t.Fatalf("EDF split must admit under zero overheads: %+v", v)
	}
	// Windowless split must be rejected up front.
	mustStatus(t, srv, "POST", "/v1/sessions/e/split", api.SplitRequest{Split: api.Split{
		Task:  api.Task{ID: 3, WCETNs: 6e6, PeriodNs: 1e7},
		Parts: []api.Part{{Core: 0, BudgetNs: 3e6}, {Core: 1, BudgetNs: 3e6}},
	}}, http.StatusBadRequest)
	var state api.State
	if err := json.Unmarshal(mustStatus(t, srv, "GET", "/v1/sessions/e", nil, http.StatusOK), &state); err != nil {
		t.Fatal(err)
	}
	if len(state.Splits) != 1 || state.Policy != "edf" {
		t.Fatalf("EDF state: %+v", state)
	}
	// Remove the split; the session shrinks back to one task.
	mustStatus(t, srv, "POST", "/v1/sessions/e/remove", api.RemoveRequest{ID: 2}, http.StatusOK)
	var after api.State
	if err := json.Unmarshal(mustStatus(t, srv, "GET", "/v1/sessions/e", nil, http.StatusOK), &after); err != nil {
		t.Fatal(err)
	}
	if len(after.Splits) != 0 || len(after.Tasks) != 1 {
		t.Fatalf("state after split removal: %+v", after)
	}
}

// TestSweepEndpoint runs a small server-side sweep and checks the
// shared report JSON schema comes back.
func TestSweepEndpoint(t *testing.T) {
	srv := newTestServer(t, Config{})
	body := mustStatus(t, srv, "POST", "/v1/sweep", api.SweepRequest{
		Cores: 2, Tasks: 6, SetsPerPoint: 4,
		Algorithms:   []string{"fpts", "ffd"},
		Model:        json.RawMessage(`"zero"`),
		Utilizations: []float64{1.2, 1.6},
		Seed:         3,
	}, http.StatusOK)
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	var sweep struct {
		Series []struct {
			Algorithm string `json:"algorithm"`
			Points    []struct {
				Total int `json:"total"`
			} `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sweep); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, s := range sweep.Series {
		names = append(names, s.Algorithm)
		for _, p := range s.Points {
			if p.Total != 4 {
				t.Fatalf("cell incomplete: %+v", sweep)
			}
		}
	}
	sort.Strings(names)
	if fmt.Sprint(names) != "[FFD FP-TS]" {
		t.Fatalf("series: %v", names)
	}
}

// TestSessionLifecycleErrors covers the error surface.
func TestSessionLifecycleErrors(t *testing.T) {
	srv := newTestServer(t, Config{})
	mustStatus(t, srv, "GET", "/v1/sessions/nope", nil, http.StatusNotFound)
	mustStatus(t, srv, "POST", "/v1/sessions", api.CreateSessionRequest{Name: "", Cores: 4}, http.StatusBadRequest)
	mustStatus(t, srv, "POST", "/v1/sessions", api.CreateSessionRequest{Name: "x", Cores: 0}, http.StatusBadRequest)
	mustStatus(t, srv, "POST", "/v1/sessions", api.CreateSessionRequest{Name: "x", Cores: 2, Policy: "weird"}, http.StatusBadRequest)
	mustStatus(t, srv, "POST", "/v1/sessions", api.CreateSessionRequest{Name: "x", Cores: 2}, http.StatusCreated)
	mustStatus(t, srv, "POST", "/v1/sessions", api.CreateSessionRequest{Name: "x", Cores: 2}, http.StatusConflict)
	// FP tasks need a priority; zero-WCET tasks are invalid.
	mustStatus(t, srv, "POST", "/v1/sessions/x/admit", api.AdmitRequest{Task: api.Task{ID: 1, WCETNs: 1e6, PeriodNs: 1e7}}, http.StatusBadRequest)
	mustStatus(t, srv, "POST", "/v1/sessions/x/admit", api.AdmitRequest{Task: api.Task{ID: 1, PeriodNs: 1e7, Priority: 1}}, http.StatusBadRequest)
	core := 7
	mustStatus(t, srv, "POST", "/v1/sessions/x/admit", api.AdmitRequest{Task: api.Task{ID: 1, WCETNs: 1e6, PeriodNs: 1e7, Priority: 1}, Core: &core}, http.StatusBadRequest)
	mustStatus(t, srv, "DELETE", "/v1/sessions/x", nil, http.StatusOK)
	mustStatus(t, srv, "DELETE", "/v1/sessions/x", nil, http.StatusNotFound)
	mustStatus(t, srv, "GET", "/healthz", nil, http.StatusOK)
}
