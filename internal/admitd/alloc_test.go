package admitd

import (
	"context"
	"testing"

	"repro/api"
	"repro/internal/overhead"
	"repro/internal/task"
)

// Allocation-regression guards for the service read path, the admitd
// half of the analysis-layer guards in internal/analysis/alloc_test.go:
// a non-holding try, a cache-hit state render, and a try-only batch
// must not allocate in steady state. These are the endpoints loadgen
// hammers; a single alloc per request shows up directly as GC time on
// the multi-core rig.
//
// testing.AllocsPerRun pins GOMAXPROCS to 1 during measurement, so
// the batch guard exercises the inline single-worker path — the
// worker fan-out itself (goroutines, WaitGroup) allocates by nature
// and is covered by the race suite instead.

// allocSession seeds a 4-core fixed-priority session with a dozen
// resident tasks, mirroring benchSession's steady-state shape.
func allocSession(tb testing.TB) *Session {
	tb.Helper()
	s := newSession("alloc", task.FixedPriority, overhead.PaperModel(), task.NewAssignment(4), nil, nil)
	id := int64(1)
	admit := func(core int) {
		req := api.AdmitRequest{Task: benchTask(id), Core: &core}
		var v api.Verdict
		var err error
		s.call(func() { v, err = s.admitLocked(req) }) //nolint:errcheck // checked below
		if err != nil || !v.Admitted {
			tb.Fatalf("seed %d on core %d: %+v %v", id, core, v, err)
		}
		id++
	}
	for i := 0; i < 6; i++ {
		admit(3)
	}
	for c := 0; c < 3; c++ {
		admit(c)
		admit(c)
	}
	return s
}

func sessAssertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("alloc guards are meaningless under -race: sync.Pool drops Puts to randomize reuse")
	}
	for i := 0; i < 5; i++ {
		f() // warm pools, caches and verdict memos
	}
	if n := testing.AllocsPerRun(100, f); n != 0 {
		t.Errorf("%s: %.1f allocs/op, want 0", name, n)
	}
}

// TestTryReadAllocFree guards the non-holding admission query: wire
// conversion into pooled scratch, the COW duplicate check, and a
// first-fit probe through one pinned prober.
func TestTryReadAllocFree(t *testing.T) {
	s := allocSession(t)
	defer s.close()
	req := api.AdmitRequest{Task: benchTask(1 << 40)}
	sessAssertZeroAllocs(t, "tryRead/first-fit", func() {
		if _, err := s.tryRead(req); err != nil {
			t.Fatal(err)
		}
	})
	core := 2
	reqCore := api.AdmitRequest{Task: benchTask(1<<40 + 1), Core: &core}
	sessAssertZeroAllocs(t, "tryRead/explicit-core", func() {
		if _, err := s.tryRead(reqCore); err != nil {
			t.Fatal(err)
		}
	})
}

// TestStateReadAllocFree guards the memoized state render: between
// commits, repeat reads are a cache hit plus the shared schedulable
// pointer — no render, no allocation.
func TestStateReadAllocFree(t *testing.T) {
	s := allocSession(t)
	defer s.close()
	sessAssertZeroAllocs(t, "stateRead/cache-hit", func() {
		if _, err := s.stateRead(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestStatsReadAllocFree guards the stats read: three atomic loads
// and struct arithmetic.
func TestStatsReadAllocFree(t *testing.T) {
	s := allocSession(t)
	defer s.close()
	sessAssertZeroAllocs(t, "statsRead", func() {
		if _, err := s.statsRead(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestBatchTryReadAllocFree guards the try-only batch: K wire tasks
// convert into the pooled slab and probe first-fit against one
// snapshot through one prober, with verdicts written into the pooled
// slab. Under AllocsPerRun's GOMAXPROCS=1 this is the inline
// single-worker path.
func TestBatchTryReadAllocFree(t *testing.T) {
	s := allocSession(t)
	defer s.close()
	tasks := make([]api.Task, 8)
	for i := range tasks {
		tasks[i] = benchTask(1<<41 + int64(i))
	}
	req := api.BatchRequest{Tasks: tasks, TryOnly: true}
	ctx := context.Background()
	sessAssertZeroAllocs(t, "batchTryRead", func() {
		sum, err := s.batchTryRead(ctx, req, nil)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Admitted+sum.Rejected != len(tasks) {
			t.Fatalf("batch summary %+v, want %d verdicts", sum, len(tasks))
		}
	})
}
