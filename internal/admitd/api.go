// Package admitd is the online admission-control service: the
// paper's overhead-aware schedulability test served as a long-running
// HTTP/JSON daemon over live cluster sessions.
//
// A client creates a named session (a core count, a scheduling policy
// and an overhead model) and then asks, request by request, "can this
// task join this core set right now?". Each session owns one live
// analysis.Context — the incremental admission machinery the batch
// sweeps use — so consecutive admissions are warm incremental probes
// against the session's committed state, not cold re-analyses of the
// whole assignment. Sessions are serialized by a per-session actor
// goroutine, stored in a striped shard map, evicted LRU under a
// session cap (snapshotted to disk first, restored transparently on
// next touch), and snapshotted on graceful shutdown. See DESIGN.md §3.
package admitd

import (
	"encoding/json"
	"fmt"

	"repro/internal/task"
	"repro/internal/taskgen"
	"repro/internal/timeq"
)

// TaskJSON is the wire form of one sporadic task. Durations are
// nanoseconds. Core carries the placement in state/snapshot output
// (and is ignored on input — admission decides the placement).
type TaskJSON struct {
	ID         int64  `json:"id"`
	Name       string `json:"name,omitempty"`
	WCETNs     int64  `json:"wcet_ns"`
	PeriodNs   int64  `json:"period_ns"`
	DeadlineNs int64  `json:"deadline_ns,omitempty"`
	Priority   int    `json:"priority,omitempty"`
	WSS        int64  `json:"wss,omitempty"`
	Core       int    `json:"core,omitempty"`
}

// toTask validates and converts the wire task. Fixed-priority
// sessions require an explicit priority: admission is online, so
// there is no whole set to run rate-monotonic assignment over.
func (j TaskJSON) toTask(p task.Policy) (*task.Task, error) {
	t := &task.Task{
		ID:       task.ID(j.ID),
		Name:     j.Name,
		WCET:     timeq.Time(j.WCETNs),
		Period:   timeq.Time(j.PeriodNs),
		Deadline: timeq.Time(j.DeadlineNs),
		Priority: j.Priority,
		WSS:      j.WSS,
	}
	if j.ID == 0 {
		return nil, fmt.Errorf("task needs a nonzero id")
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if p == task.FixedPriority && t.Priority == 0 {
		return nil, fmt.Errorf("task %d: fixed-priority sessions need an explicit priority (smaller = higher)", j.ID)
	}
	return t, nil
}

// fromTask converts a task back to the wire form.
func fromTask(t *task.Task, core int) TaskJSON {
	return TaskJSON{
		ID:         int64(t.ID),
		Name:       t.Name,
		WCETNs:     int64(t.WCET),
		PeriodNs:   int64(t.Period),
		DeadlineNs: int64(t.Deadline),
		Priority:   t.Priority,
		WSS:        t.WSS,
		Core:       core,
	}
}

// PartJSON is one per-core share of a split task.
type PartJSON struct {
	Core     int   `json:"core"`
	BudgetNs int64 `json:"budget_ns"`
}

// SplitJSON is the wire form of a split task: the task, its per-core
// budgets, and (EDF sessions) the deadline windows.
type SplitJSON struct {
	Task      TaskJSON   `json:"task"`
	Parts     []PartJSON `json:"parts"`
	WindowsNs []int64    `json:"windows_ns,omitempty"`
}

// toSplit validates and converts the wire split.
func (j SplitJSON) toSplit(p task.Policy) (*task.Split, error) {
	t, err := j.Task.toTask(p)
	if err != nil {
		return nil, err
	}
	sp := &task.Split{Task: t}
	for _, pt := range j.Parts {
		sp.Parts = append(sp.Parts, task.Part{Core: pt.Core, Budget: timeq.Time(pt.BudgetNs)})
	}
	for _, w := range j.WindowsNs {
		sp.Windows = append(sp.Windows, timeq.Time(w))
	}
	if p == task.EDF && !sp.HasWindows() {
		return nil, fmt.Errorf("split %d: EDF sessions need windows_ns (EDF-WM deadline windows)", j.Task.ID)
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return sp, nil
}

// fromSplit converts a split back to the wire form.
func fromSplit(sp *task.Split) SplitJSON {
	j := SplitJSON{Task: fromTask(sp.Task, sp.Parts[0].Core)}
	for _, p := range sp.Parts {
		j.Parts = append(j.Parts, PartJSON{Core: p.Core, BudgetNs: int64(p.Budget)})
	}
	for _, w := range sp.Windows {
		j.WindowsNs = append(j.WindowsNs, int64(w))
	}
	return j
}

// CreateSessionRequest opens a named cluster session.
type CreateSessionRequest struct {
	Name  string `json:"name"`
	Cores int    `json:"cores"`
	// Policy is "fp" (default) or "edf".
	Policy string `json:"policy,omitempty"`
	// Model is "paper" (default), "zero", or an inline overhead-model
	// object in the spexp -model JSON schema.
	Model json.RawMessage `json:"model,omitempty"`
}

// AdmitRequest asks whether a task can join the session. A nil Core
// means first-fit over all cores; Hold (try endpoint only) keeps the
// probe pending for an explicit commit/rollback.
type AdmitRequest struct {
	Task TaskJSON `json:"task"`
	Core *int     `json:"core,omitempty"`
	Hold bool     `json:"hold,omitempty"`
}

// SplitRequest probes or admits a split task.
type SplitRequest struct {
	Split SplitJSON `json:"split"`
	Hold  bool      `json:"hold,omitempty"`
}

// RemoveRequest removes a previously admitted task by ID.
type RemoveRequest struct {
	ID int64 `json:"id"`
}

// VerdictResponse is the outcome of one admission request.
type VerdictResponse struct {
	TaskID   int64 `json:"task_id"`
	Admitted bool  `json:"admitted"`
	// Core is the placement (-1 when rejected or for splits).
	Core int `json:"core"`
	// Pending marks a held probe awaiting commit/rollback.
	Pending bool `json:"pending,omitempty"`
	// Probes counts the cores probed to reach the verdict.
	Probes int `json:"probes"`
}

// StateResponse describes a session's committed assignment.
type StateResponse struct {
	Name            string      `json:"name"`
	Cores           int         `json:"cores"`
	Policy          string      `json:"policy"`
	Tasks           []TaskJSON  `json:"tasks"`
	Splits          []SplitJSON `json:"splits,omitempty"`
	CoreUtilization []float64   `json:"core_utilization"`
	// Schedulable is the full admission test on the committed state;
	// omitted while a held probe is pending.
	Schedulable  *bool `json:"schedulable,omitempty"`
	ProbePending bool  `json:"probe_pending,omitempty"`
}

// BatchRequest admits a whole task set task by task, streaming one
// verdict line per task (NDJSON). Exactly one of Tasks or Generate
// must be set; Generate draws the set server-side with taskgen (the
// load-test path). Order "util-desc" offers tasks in decreasing
// utilization (the FFD replay order); default is input order.
type BatchRequest struct {
	Tasks    []TaskJSON      `json:"tasks,omitempty"`
	Generate *taskgen.Config `json:"generate,omitempty"`
	Order    string          `json:"order,omitempty"`
}

// BatchSummary is the final NDJSON line of a batch response.
type BatchSummary struct {
	Done        bool `json:"done"`
	Admitted    int  `json:"admitted"`
	Rejected    int  `json:"rejected"`
	Schedulable bool `json:"schedulable"`
	TaskCount   int  `json:"task_count"`
	Canceled    bool `json:"canceled,omitempty"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

// parsePolicy maps the wire policy names.
func parsePolicy(s string) (task.Policy, error) {
	switch s {
	case "", "fp", "fixed-priority":
		return task.FixedPriority, nil
	case "edf", "EDF":
		return task.EDF, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (fp|edf)", s)
	}
}

// policyName is the canonical wire name.
func policyName(p task.Policy) string {
	if p == task.EDF {
		return "edf"
	}
	return "fp"
}
