package admitd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/api"
	"repro/client"
)

// transportStep is one scripted request of the differential drive.
type transportStep struct {
	method, path string
	payload      any
}

// differentialScript is a deterministic request sequence covering
// every endpoint, happy paths and error envelopes alike.
func differentialScript() []transportStep {
	core0 := 0
	steps := []transportStep{
		{"POST", "/v1/sessions", api.CreateSessionRequest{Name: "d", Cores: 2, Policy: "fp"}},
		{"POST", "/v1/sessions", api.CreateSessionRequest{Name: "d", Cores: 2}}, // 409 session_exists
		{"POST", "/v1/sessions", api.CreateSessionRequest{Name: "e", Cores: 2, Policy: "edf", Model: json.RawMessage(`"zero"`)}},
		{"GET", "/v1/sessions", nil},
		{"GET", "/v1/sessions/nope", nil}, // 404 session_not_found
	}
	// A deterministic admission mix on "d": growing tasks until
	// rejections appear, plus explicit-core, try, hold/commit,
	// hold/rollback, duplicate and remove errors.
	for i := 1; i <= 12; i++ {
		steps = append(steps, transportStep{"POST", "/v1/sessions/d/admit", api.AdmitRequest{
			Task: api.Task{ID: int64(i), WCETNs: int64(i) * 7e5, PeriodNs: 1e7, Priority: i},
		}})
	}
	steps = append(steps,
		transportStep{"POST", "/v1/sessions/d/admit", api.AdmitRequest{Task: api.Task{ID: 1, WCETNs: 1e6, PeriodNs: 1e7, Priority: 1}}}, // 409 duplicate_task
		transportStep{"POST", "/v1/sessions/d/try", api.AdmitRequest{Task: api.Task{ID: 50, WCETNs: 1e6, PeriodNs: 1e7, Priority: 50}}},
		transportStep{"POST", "/v1/sessions/d/try", api.AdmitRequest{Task: api.Task{ID: 51, WCETNs: 1e6, PeriodNs: 1e7, Priority: 51}, Core: &core0}},
		transportStep{"POST", "/v1/sessions/d/try", api.AdmitRequest{Task: api.Task{ID: 52, WCETNs: 1e6, PeriodNs: 1e7, Priority: 52}, Hold: true}},
		transportStep{"POST", "/v1/sessions/d/commit", nil},
		transportStep{"POST", "/v1/sessions/d/commit", nil}, // 409 no_probe_pending
		transportStep{"POST", "/v1/sessions/d/try", api.AdmitRequest{Task: api.Task{ID: 53, WCETNs: 1e6, PeriodNs: 1e7, Priority: 53}, Hold: true}},
		transportStep{"POST", "/v1/sessions/d/rollback", nil},
		transportStep{"POST", "/v1/sessions/d/remove", api.RemoveRequest{ID: 3}},
		transportStep{"POST", "/v1/sessions/d/remove", api.RemoveRequest{ID: 9999}}, // 404 unknown_task
		transportStep{"GET", "/v1/sessions/d", nil},
		transportStep{"GET", "/v1/sessions/d/stats", nil},
		// EDF split protocol on "e".
		transportStep{"POST", "/v1/sessions/e/admit", api.AdmitRequest{Task: api.Task{ID: 1, WCETNs: 4e6, PeriodNs: 1e7}}},
		transportStep{"POST", "/v1/sessions/e/split", api.SplitRequest{Split: api.Split{
			Task:      api.Task{ID: 2, WCETNs: 6e6, PeriodNs: 1e7},
			Parts:     []api.Part{{Core: 0, BudgetNs: 3e6}, {Core: 1, BudgetNs: 3e6}},
			WindowsNs: []int64{5e6, 5e6},
		}}},
		transportStep{"GET", "/v1/sessions/e", nil},
		// Batch (server-side generation, FFD order) on a fresh session.
		transportStep{"POST", "/v1/sessions", api.CreateSessionRequest{Name: "b", Cores: 4}},
		transportStep{"POST", "/v1/sessions/b/batch", api.BatchRequest{Generate: &api.TaskGen{N: 10, TotalUtilization: 2.0, Seed: 5}, Order: "util-desc"}},
		// Sweep (deterministic seed), server stats, lifecycle tail.
		transportStep{"POST", "/v1/sweep", api.SweepRequest{Cores: 2, Tasks: 6, SetsPerPoint: 2, Algorithms: []string{"ffd"}, Model: json.RawMessage(`"zero"`), Utilizations: []float64{1.2}, Seed: 3}},
		transportStep{"GET", "/v1/stats", nil},
		transportStep{"DELETE", "/v1/sessions/b", nil},
		transportStep{"DELETE", "/v1/sessions/b", nil}, // 404 session_not_found
		transportStep{"GET", "/healthz", nil},
	)
	return steps
}

// runScript drives the script through one transport, returning every
// response as "status\nbody".
func runScript(t *testing.T, issue func(method, path string, payload []byte) (int, []byte)) []string {
	t.Helper()
	var out []string
	for i, st := range differentialScript() {
		var data []byte
		if st.payload != nil {
			var err error
			if data, err = json.Marshal(st.payload); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
		status, body := issue(st.method, st.path, data)
		out = append(out, fmt.Sprintf("%d\n%s", status, body))
	}
	return out
}

// TestTransportDifferential proves the two transports are the same
// API: the identical request script against two identically
// configured servers — one in-process, one over a real TCP listener
// — must return byte-identical responses at every step (verdicts,
// state, stats, streams, and error envelopes alike).
func TestTransportDifferential(t *testing.T) {
	inSrv := newTestServer(t, Config{})
	inProc := runScript(t, func(method, path string, payload []byte) (int, []byte) {
		req := httptest.NewRequest(method, path, bytes.NewReader(payload))
		rec := httptest.NewRecorder()
		inSrv.ServeHTTP(rec, req)
		return rec.Code, rec.Body.Bytes()
	})

	tcpSrv := newTestServer(t, Config{})
	ts := httptest.NewServer(tcpSrv)
	defer ts.Close()
	httpc := ts.Client()
	overTCP := runScript(t, func(method, path string, payload []byte) (int, []byte) {
		req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := httpc.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	})

	script := differentialScript()
	for i := range script {
		if inProc[i] != overTCP[i] {
			t.Errorf("step %d (%s %s) diverges:\n in-process: %s\n over TCP:   %s",
				i, script[i].method, script[i].path, strings.TrimSpace(inProc[i]), strings.TrimSpace(overTCP[i]))
		}
	}
}

// TestClientE2E drives the full typed-client surface against both
// transports — the in-process dispatch and a real TCP listener (the
// CI race job runs this) — asserting identical behavior by
// construction: same SDK, same assertions, only the transport
// differs.
func TestClientE2E(t *testing.T) {
	transports := []struct {
		name  string
		build func(t *testing.T) *client.Client
	}{
		{"inprocess", func(t *testing.T) *client.Client {
			return client.InProcess(newTestServer(t, Config{}))
		}},
		{"tcp", func(t *testing.T) *client.Client {
			ts := httptest.NewServer(newTestServer(t, Config{}))
			t.Cleanup(ts.Close)
			c, err := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
			if err != nil {
				t.Fatal(err)
			}
			return c
		}},
	}
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			driveClientE2E(t, tr.build(t))
		})
	}
}

func driveClientE2E(t *testing.T, c *client.Client) {
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	sess, err := c.CreateSession(ctx, api.CreateSessionRequest{Name: "s", Cores: 2, Policy: "fp"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSession(ctx, api.CreateSessionRequest{Name: "s", Cores: 2}); !api.IsCode(err, api.CodeSessionExists) {
		t.Fatalf("duplicate create: %v", err)
	}

	tk := api.Task{ID: 1, WCETNs: 1e6, PeriodNs: 1e7, Priority: 1}
	v, err := sess.Admit(ctx, api.AdmitRequest{Task: tk})
	if err != nil || !v.Admitted || v.Core != 0 {
		t.Fatalf("admit: %+v, %v", v, err)
	}
	if _, err := sess.Admit(ctx, api.AdmitRequest{Task: tk}); !api.IsCode(err, api.CodeDuplicateTask) {
		t.Fatalf("duplicate admit: %v", err)
	}

	// Probe-only try leaves no state; hold/commit and hold/rollback
	// drive the two-phase protocol.
	if v, err = sess.Try(ctx, api.AdmitRequest{Task: api.Task{ID: 2, WCETNs: 1e6, PeriodNs: 1e7, Priority: 2}}); err != nil || !v.Admitted || v.Pending {
		t.Fatalf("try: %+v, %v", v, err)
	}
	if v, err = sess.Try(ctx, api.AdmitRequest{Task: api.Task{ID: 2, WCETNs: 1e6, PeriodNs: 1e7, Priority: 2}, Hold: true}); err != nil || !v.Pending {
		t.Fatalf("hold try: %+v, %v", v, err)
	}
	if _, err := sess.Admit(ctx, api.AdmitRequest{Task: api.Task{ID: 3, WCETNs: 1e6, PeriodNs: 1e7, Priority: 3}}); !api.IsCode(err, api.CodeProbePending) {
		t.Fatalf("mutation under held probe: %v", err)
	}
	if v, err = sess.Commit(ctx); err != nil || !v.Admitted || v.TaskID != 2 {
		t.Fatalf("commit: %+v, %v", v, err)
	}
	if _, err := sess.Commit(ctx); !api.IsCode(err, api.CodeNoProbePending) {
		t.Fatalf("commit without probe: %v", err)
	}
	if _, err = sess.Try(ctx, api.AdmitRequest{Task: api.Task{ID: 4, WCETNs: 1e6, PeriodNs: 1e7, Priority: 4}, Hold: true}); err != nil {
		t.Fatal(err)
	}
	if v, err = sess.Rollback(ctx); err != nil || v.Admitted {
		t.Fatalf("rollback: %+v, %v", v, err)
	}

	rm, err := sess.Remove(ctx, 2)
	if err != nil || !rm.Removed || rm.ID != 2 {
		t.Fatalf("remove: %+v, %v", rm, err)
	}
	if _, err := sess.Remove(ctx, 2); !api.IsCode(err, api.CodeUnknownTask) {
		t.Fatalf("remove missing: %v", err)
	}

	state, err := sess.State(ctx)
	if err != nil || state.Cores != 2 || len(state.Tasks) != 1 || state.Tasks[0].ID != 1 {
		t.Fatalf("state: %+v, %v", state, err)
	}
	if state.Schedulable == nil || !*state.Schedulable {
		t.Fatalf("state schedulability: %+v", state)
	}
	stats, err := sess.Stats(ctx)
	if err != nil || stats.Name != "s" || stats.Tasks != 1 || stats.Admission.Probes == 0 {
		t.Fatalf("stats: %+v, %v", stats, err)
	}

	// Batch: stream verdicts, then the summary.
	stream, err := sess.Batch(ctx, api.BatchRequest{Generate: &api.TaskGen{N: 8, TotalUtilization: 1.0, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	verdicts := 0
	for stream.Next() {
		verdicts++
	}
	sum, err := stream.Summary()
	stream.Close()
	if err != nil || verdicts != 8 || !sum.Done || sum.Admitted+sum.Rejected != 8 {
		t.Fatalf("batch: %d verdicts, %+v, %v", verdicts, sum, err)
	}

	// Try-only batch: the concurrent read path — nothing committed,
	// summary stamped try_only, task count unchanged.
	before := sum.TaskCount
	stream, err = sess.Batch(ctx, api.BatchRequest{
		Generate: &api.TaskGen{N: 6, TotalUtilization: 0.8, Seed: 9}, TryOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	verdicts = 0
	for stream.Next() {
		verdicts++
	}
	trySum, err := stream.Summary()
	stream.Close()
	if err != nil || verdicts != 6 || !trySum.TryOnly || trySum.TaskCount != before {
		t.Fatalf("try-only batch: %d verdicts, %+v, %v", verdicts, trySum, err)
	}

	// A held probe rejects a committing batch with the branchable 409
	// code through the SDK — but not a try-only (read) batch. The
	// explicit core holds the probe regardless of its verdict.
	core0 := 0
	hv, err := sess.Try(ctx, api.AdmitRequest{Task: api.Task{ID: 40, WCETNs: 1e6, PeriodNs: 1e7, Priority: 40}, Core: &core0, Hold: true})
	if err != nil || !hv.Pending {
		t.Fatalf("hold try: %+v, %v", hv, err)
	}
	if _, err := sess.Batch(ctx, api.BatchRequest{Generate: &api.TaskGen{N: 2, TotalUtilization: 0.2, Seed: 4}}); !api.IsCode(err, api.CodeProbePending) {
		t.Fatalf("batch under held probe: %v", err)
	}
	stream, err = sess.Batch(ctx, api.BatchRequest{Generate: &api.TaskGen{N: 2, TotalUtilization: 0.2, Seed: 4}, TryOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	for stream.Next() {
	}
	if _, err := stream.Summary(); err != nil {
		t.Fatalf("try-only batch under held probe must serve: %v", err)
	}
	stream.Close()
	if _, err := sess.Rollback(ctx); err != nil {
		t.Fatal(err)
	}

	// EDF split through the SDK.
	esess, err := c.CreateSession(ctx, api.CreateSessionRequest{Name: "e", Cores: 2, Policy: "edf", Model: json.RawMessage(`"zero"`)})
	if err != nil {
		t.Fatal(err)
	}
	if v, err = esess.Split(ctx, api.SplitRequest{Split: api.Split{
		Task:      api.Task{ID: 1, WCETNs: 6e6, PeriodNs: 1e7},
		Parts:     []api.Part{{Core: 0, BudgetNs: 3e6}, {Core: 1, BudgetNs: 3e6}},
		WindowsNs: []int64{5e6, 5e6},
	}}); err != nil || !v.Admitted {
		t.Fatalf("split: %+v, %v", v, err)
	}

	// Server-scoped surface: list, stats, sweep (plain + streamed).
	list, err := c.ListSessions(ctx)
	if err != nil || list.Count != 2 {
		t.Fatalf("list: %+v, %v", list, err)
	}
	sstats, err := c.ServerStats(ctx)
	if err != nil || sstats.SessionsLive != 2 || sstats.Requests == 0 {
		t.Fatalf("server stats: %+v, %v", sstats, err)
	}
	sweepReq := api.SweepRequest{Cores: 2, Tasks: 6, SetsPerPoint: 2, Algorithms: []string{"ffd"}, Model: json.RawMessage(`"zero"`), Utilizations: []float64{1.2}, Seed: 3}
	res, err := c.Sweep(ctx, sweepReq)
	if err != nil || len(res.Series) != 1 || res.Series[0].Algorithm != "FFD" {
		t.Fatalf("sweep: %+v, %v", res, err)
	}
	progress := 0
	res2, err := c.SweepStream(ctx, sweepReq, func(api.SweepProgress) { progress++ })
	if err != nil || progress == 0 {
		t.Fatalf("streamed sweep: %d progress lines, %v", progress, err)
	}
	a, _ := json.Marshal(res)
	b, _ := json.Marshal(res2)
	if !bytes.Equal(a, b) {
		t.Fatalf("streamed and plain sweep disagree:\n %s\n %s", a, b)
	}

	// Lifecycle tail: delete, then every handle call 404s.
	if err := esess.Delete(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := esess.State(ctx); !api.IsCode(err, api.CodeSessionNotFound) {
		t.Fatalf("state after delete: %v", err)
	}
	if _, err := c.Session("ghost").Stats(ctx); !api.IsCode(err, api.CodeSessionNotFound) {
		t.Fatalf("ghost session: %v", err)
	}
}
