package admitd

import (
	"errors"
	"fmt"
	"hash/fnv"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/api"
	"repro/internal/analysis"
	"repro/internal/report"
	"repro/internal/task"
	"repro/internal/wal"
)

// The durability plane: a per-store-shard write-ahead commit log
// (internal/wal) recording every committed session mutation, plus
// periodic checkpoints (the existing sessionSnapshot, stamped with
// the durable sequence number it covers) that bound replay work and
// let the log compact. Recovery loads the newest gen-matched
// checkpoint and replays the stream tail — the restored context is
// cold, so decisions are bit-identical to the stateless analyzer,
// exactly the existing snapshot-restore contract.
//
// Stream naming: one WAL stream per session *generation* —
// url.PathEscape(name) + "/" + gen — so deleting a session and
// recreating the name never splices two histories. A delete appends
// a tombstone record and retires the generation; the next create
// opens gen+1. Sequence numbers are dense per generation: the create
// record is seq 0 and every committed mutation is seqBase+CommitSeq,
// so a feed resume can verify gaplessness by counting.
//
// What is NOT replayed: rejected-probe counters and state-cache
// counters reset to their checkpoint values after a crash (rejections
// do not mutate committed state, so they are not logged).

// ErrSeqTruncated: a replay request (feed from_seq, audit seq)
// reaches before the commit log's retained window — checkpoint
// compaction removed it — or the session has no commit log at all.
var ErrSeqTruncated = errors.New("admitd: sequence range predates the retained commit log")

// errWalStop aborts a replay early once the caller has what it needs.
var errWalStop = errors.New("admitd: wal replay stop")

// streamState tracks one session name's durable stream. gen and
// deleted are guarded by walPlane.mu; the sequence watermarks are
// atomics so the session actor and the compaction coverage check
// never contend on the plane lock.
type streamState struct {
	gen     uint64
	deleted bool
	ckptSeq atomic.Int64 // highest seq the on-disk checkpoint covers; -1 none
	lastSeq atomic.Int64 // highest seq appended for the live generation
}

// walShards stripes sessions over physical commit-log files. It is
// deliberately decoupled from the session map's numShards and
// deliberately 1: the cost that dominates a durable ack is the
// fsync, whose CPU burn is per *file* — with one log, every drain
// committing in a sync window shares a single fsync, while sixteen
// logs would pay sixteen. Append-path mutex contention on the single
// log is microseconds per record and nowhere near the bottleneck;
// hosts with parallel-flush storage can raise this.
const walShards = 1

// walPlane owns the store's commit logs (walShards segmented logs,
// fnv-striped by session name), the per-name stream registry, and
// the checkpoint directory.
type walPlane struct {
	dir     string // DataDir
	ckptDir string
	policy  wal.SyncPolicy
	logs    [walShards]*wal.Log

	// syncOnDrain: acks wait for the covering fsync (always policy).
	// The session actor hands each drain's completion tokens to an
	// async commit pipeline so it never blocks on the device itself.
	syncOnDrain bool

	// group batches ack-path fsyncs across actors (always policy
	// only): concurrent drains committing at the same time share one
	// fsync instead of each paying its own device sync.
	group *wal.GroupSync

	// The group policy's background committer: fsyncs dirty logs once
	// per interval, so an acked write is on the device within ~one
	// interval of the ack (the bounded-loss contract).
	syncStop chan struct{}
	syncDone chan struct{}

	// met is installed by Server.New after the store (and plane)
	// exist; the fsync-latency hook loads it atomically.
	met atomic.Pointer[serverMetrics]

	mu      sync.Mutex
	streams map[string]*streamState

	// encMu guards encBuf, the recycled create/tombstone record
	// scratch (wal.Log.Append copies the payload into its group
	// buffer synchronously, so the scratch is free again on return).
	encMu  sync.Mutex
	encBuf []byte

	// Recovery summary across all shards (surfaced as metrics).
	recoveredRecords  uint64
	truncatedSegments int
	droppedBytes      int64

	appendedBytes atomic.Int64
	checkpoints   atomic.Int64
	walErrors     atomic.Int64
}

func shardIndex(name string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(name))
	return h.Sum32() % walShards
}

// streamKey names one session generation's WAL stream.
func streamKey(name string, gen uint64) string {
	return url.PathEscape(name) + "/" + strconv.FormatUint(gen, 10)
}

// parseStreamKey inverts streamKey.
func parseStreamKey(key string) (name string, gen uint64, ok bool) {
	i := len(key) - 1
	for i >= 0 && key[i] != '/' {
		i--
	}
	if i < 0 {
		return "", 0, false
	}
	gen, err := strconv.ParseUint(key[i+1:], 10, 64)
	if err != nil {
		return "", 0, false
	}
	name, err = url.PathUnescape(key[:i])
	if err != nil {
		return "", 0, false
	}
	return name, gen, true
}

// openWalPlane opens (or creates) the data directory: walShards
// segmented logs under wal/shard-NN, checkpoints under checkpoints/.
// Recovery runs per log — each truncates at its last valid record
// independently — and the stream registry is rebuilt by scanning
// every surviving record, then reconciled against the checkpoint
// files.
//
// The plane maps the admission policies onto the log:
//
//   - always: appends buffer; every commit boundary (drain, create,
//     delete) fsyncs — batched across actors by a GroupSync — before
//     the ack releases. Durable-on-ack.
//   - group: appends buffer; a background committer fsyncs dirty logs
//     once per window. Acks release at apply time; a crash loses at
//     most ~one window of acked writes, never consistency (the CRC
//     framing truncates any torn tail). The synchronous_commit=off /
//     appendfsync-everysec tier.
//   - off: appends buffer; flushes ride segment rolls and Close. The
//     OS decides when bytes reach the device.
func openWalPlane(dataDir string, policy wal.SyncPolicy, window time.Duration) (*walPlane, error) {
	p := &walPlane{
		dir:     dataDir,
		ckptDir: filepath.Join(dataDir, "checkpoints"),
		policy:  policy,
		streams: make(map[string]*streamState),
	}
	// The log's own per-append fsync mode is never used: the plane
	// owns the commit boundary. always/group both open buffered logs
	// (SyncGroup) and differ in who calls Sync and whether acks wait.
	logPolicy := wal.SyncGroup
	if policy == wal.SyncOff {
		logPolicy = wal.SyncOff
	}
	if policy == wal.SyncAlways {
		p.syncOnDrain = true
		p.group = wal.NewGroupSync(0)
	}
	if err := os.MkdirAll(p.ckptDir, 0o755); err != nil {
		return nil, err
	}
	onFsync := func(d time.Duration) {
		if m := p.met.Load(); m != nil {
			m.walFsyncLat.Observe(d)
		}
	}
	for i := range p.logs {
		dir := filepath.Join(dataDir, "wal", fmt.Sprintf("shard-%02d", i))
		l, rec, err := wal.Open(wal.Options{Dir: dir, Policy: logPolicy, OnFsync: onFsync})
		if err != nil {
			for j := 0; j < i; j++ {
				p.logs[j].Close()
			}
			return nil, fmt.Errorf("admitd: wal shard %d: %w", i, err)
		}
		p.logs[i] = l
		p.recoveredRecords += rec.Records
		if rec.Truncated {
			p.truncatedSegments++
			p.droppedBytes += rec.DroppedBytes + int64(rec.DroppedSegments)
		}
	}
	if err := p.scanStreams(); err != nil {
		p.closeLogs()
		return nil, err
	}
	if err := p.reconcileCheckpoints(); err != nil {
		p.closeLogs()
		return nil, err
	}
	if policy == wal.SyncGroup {
		p.syncStop = make(chan struct{})
		p.syncDone = make(chan struct{})
		go p.syncLoop(window)
	}
	return p, nil
}

// syncLoop is the group policy's background committer: once per
// window, flush and fsync every log with unsynced bytes (a clean log
// costs a mutex check). Cadence rides the runtime timer, so the
// effective floor is its resolution (~1ms on small virtualized
// hosts); the loss window is "about one interval", not an exact one.
func (p *walPlane) syncLoop(window time.Duration) {
	defer close(p.syncDone)
	tick := time.NewTicker(window)
	defer tick.Stop()
	for {
		select {
		case <-p.syncStop:
			return
		case <-tick.C:
			for _, l := range p.logs {
				if err := l.Sync(); err != nil {
					p.noteError()
				}
			}
		}
	}
}

// scanStreams rebuilds the stream registry from the surviving log
// records: per name, the highest generation wins; within it the
// highest sequence and the tombstone flag.
func (p *walPlane) scanStreams() error {
	for _, l := range p.logs {
		err := l.Replay(func(r wal.Record) error {
			name, gen, ok := parseStreamKey(r.Stream)
			if !ok {
				return fmt.Errorf("admitd: wal: malformed stream key %q", r.Stream)
			}
			e := p.streams[name]
			if e == nil || gen > e.gen {
				e = &streamState{gen: gen}
				e.ckptSeq.Store(-1)
				e.lastSeq.Store(r.Seq)
				p.streams[name] = e
			} else if gen < e.gen {
				return nil // retired generation, awaiting compaction
			}
			if r.Seq > e.lastSeq.Load() {
				e.lastSeq.Store(r.Seq)
			}
			if len(r.Payload) > 0 && r.Payload[0] == walKindDelete {
				e.deleted = true
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// reconcileCheckpoints folds the checkpoint files into the registry.
// A checkpoint newer than every surviving record (the whole stream
// was compacted away) re-establishes the stream; a stale one (older
// generation — delete raced a crash before the file was removed) is
// ignored, the generation check on the restore path guards it too.
func (p *walPlane) reconcileCheckpoints() error {
	ents, err := os.ReadDir(p.ckptDir)
	if err != nil {
		return err
	}
	for _, de := range ents {
		if de.IsDir() || filepath.Ext(de.Name()) != ".json" {
			continue
		}
		name, err := url.PathUnescape(de.Name()[:len(de.Name())-len(".json")])
		if err != nil {
			continue
		}
		snap, err := readSnapshot(p.ckptDir, name)
		if err != nil || snap == nil || snap.Gen == 0 {
			continue // unreadable or pre-durability snapshot: not WAL-tracked
		}
		e := p.streams[name]
		if e == nil || snap.Gen > e.gen {
			e = &streamState{gen: snap.Gen}
			e.ckptSeq.Store(snap.Seq)
			e.lastSeq.Store(snap.Seq)
			p.streams[name] = e
			continue
		}
		if snap.Gen == e.gen {
			e.ckptSeq.Store(snap.Seq)
			if snap.Seq > e.lastSeq.Load() {
				e.lastSeq.Store(snap.Seq)
			}
		}
	}
	return nil
}

func (p *walPlane) logFor(name string) *wal.Log {
	return p.logs[shardIndex(name)]
}

// commitLog closes one commit boundary on a shard log, as durably as
// the policy promises: always routes through the cross-actor fsync
// batcher (the caller's ack waits on it), group and off just flush to
// the OS — the background committer (group) or the OS (off) takes it
// from there.
func (p *walPlane) commitLog(l *wal.Log) error {
	if p.group != nil {
		return p.group.Commit(l)
	}
	return l.Flush()
}

// lookup returns the live stream entry for a name (nil if the name
// was never created, or only a retired generation remains).
func (p *walPlane) lookup(name string) *streamState {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.streams[name]
	if e == nil || e.deleted {
		return nil
	}
	return e
}

// exists reports whether a live (non-deleted) stream holds the name.
func (p *walPlane) exists(name string) bool {
	return p.lookup(name) != nil
}

// create opens the next generation for a name: the create record
// (seq 0) is appended and committed per the plane's policy (always:
// fsynced before the caller acks; group: flushed, on the device
// within a sync window). Returns the stream key, the registry entry,
// and the shard log the session will append to.
func (p *walPlane) create(name string, cores int, policy string, modelJSON []byte) (string, *streamState, *wal.Log, error) {
	p.mu.Lock()
	e := p.streams[name]
	if e != nil && !e.deleted {
		p.mu.Unlock()
		return "", nil, nil, fmt.Errorf("%w: %q", ErrSessionExists, name)
	}
	gen := uint64(1)
	if e != nil {
		gen = e.gen + 1
	}
	ne := &streamState{gen: gen}
	ne.ckptSeq.Store(-1)
	p.streams[name] = ne
	p.mu.Unlock()

	key := streamKey(name, gen)
	l := p.logFor(name)
	p.encMu.Lock()
	payload := walEncodeCreate(p.encBuf[:0], cores, policy, modelJSON)
	_, err := l.Append(key, 0, payload)
	n := len(payload)
	p.encBuf = payload
	p.encMu.Unlock()
	if err != nil {
		p.noteError()
		return "", nil, nil, err
	}
	p.appendedBytes.Add(int64(n))
	if err := p.commitLog(l); err != nil {
		p.noteError()
		return "", nil, nil, err
	}
	return key, ne, l, nil
}

// delete retires a name's live generation: tombstone record
// (committed per the plane's policy, like create), checkpoint file
// removed, registry entry marked deleted so coverage lets the whole
// stream compact away. Reports whether a live generation existed.
func (p *walPlane) delete(name string) bool {
	p.mu.Lock()
	e := p.streams[name]
	if e == nil || e.deleted {
		p.mu.Unlock()
		return false
	}
	gen := e.gen
	seq := e.lastSeq.Load() + 1
	e.deleted = true
	e.lastSeq.Store(seq)
	p.mu.Unlock()

	l := p.logFor(name)
	p.encMu.Lock()
	payload := walEncodeDelete(p.encBuf[:0])
	_, err := l.Append(streamKey(name, gen), seq, payload)
	p.encBuf = payload
	p.encMu.Unlock()
	if err != nil {
		p.noteError()
	} else if err := p.commitLog(l); err != nil {
		p.noteError()
	}
	p.appendedBytes.Add(1)
	_ = os.Remove(snapshotPath(p.ckptDir, name))
	return true
}

// setCkpt advances a stream's checkpoint watermark after its
// snapshot file landed (fsynced) on disk.
func (p *walPlane) setCkpt(name string, gen uint64, seq int64) {
	p.mu.Lock()
	e := p.streams[name]
	p.mu.Unlock()
	if e == nil || e.gen != gen {
		return
	}
	e.ckptSeq.Store(seq)
	p.checkpoints.Add(1)
}

// covered is the compaction coverage predicate: every record of a
// retired generation is disposable, a live generation's records are
// disposable up to its checkpoint watermark. Unknown streams are
// conservatively retained.
func (p *walPlane) covered(stream string, maxSeq int64) bool {
	name, gen, ok := parseStreamKey(stream)
	if !ok {
		return false
	}
	p.mu.Lock()
	e := p.streams[name]
	p.mu.Unlock()
	if e == nil {
		return false
	}
	if gen < e.gen || e.deleted {
		return true
	}
	if gen > e.gen {
		return false
	}
	return e.ckptSeq.Load() >= maxSeq
}

// compact rotates and prefix-compacts every shard log.
func (p *walPlane) compact() {
	for _, l := range p.logs {
		if err := l.Rotate(); err != nil {
			p.noteError()
			continue
		}
		if _, err := l.Compact(p.covered); err != nil {
			p.noteError()
		}
	}
}

// stats sums the shard logs' counters (scrape path).
func (p *walPlane) stats() wal.Stats {
	var sum wal.Stats
	for _, l := range p.logs {
		s := l.Stats()
		sum.Segments += s.Segments
		sum.Bytes += s.Bytes
		sum.Appends += s.Appends
		sum.Fsyncs += s.Fsyncs
	}
	return sum
}

// streamCounts samples the registry (scrape path): live streams and
// how many of them have a checkpoint on disk.
func (p *walPlane) streamCounts() (live, checkpointed int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range p.streams {
		if e.deleted {
			continue
		}
		live++
		if e.ckptSeq.Load() >= 0 {
			checkpointed++
		}
	}
	return live, checkpointed
}

func (p *walPlane) noteError() {
	p.walErrors.Add(1)
	if m := p.met.Load(); m != nil {
		m.walErrors.Inc()
	}
}

func (p *walPlane) closeLogs() {
	if p.syncStop != nil {
		close(p.syncStop)
		<-p.syncDone
		p.syncStop = nil
	}
	for _, l := range p.logs {
		if l != nil {
			l.Close()
		}
	}
}

// --- replay ----------------------------------------------------------

// applyWalRecord folds one decoded mutation into a session snapshot
// under construction. base starts nil when replay begins before the
// create record; a mutation arriving with no base means the prefix
// (create record included) was compacted past the requested point.
func applyWalRecord(name string, base **sessionSnapshot, rec *walRec) error {
	if rec.kind == walKindCreate {
		*base = &sessionSnapshot{
			Name:   name,
			Cores:  int(rec.cores),
			Policy: rec.policy,
			Model:  rec.model,
		}
		return nil
	}
	s := *base
	if s == nil {
		return fmt.Errorf("%w: replay reached a mutation before any base state", ErrSeqTruncated)
	}
	switch rec.kind {
	case walKindAdmit:
		t := rec.task
		t.Core = int(rec.core)
		s.Tasks = append(s.Tasks, t)
		s.Admitted++
	case walKindSplit:
		s.Splits = append(s.Splits, rec.split)
		s.Admitted++
	case walKindRemove:
		if !snapshotRemove(s, rec.id) {
			return fmt.Errorf("admitd: wal replay: remove of unknown task %d", rec.id)
		}
		s.Removed++
	case walKindDelete:
		return fmt.Errorf("admitd: wal replay: tombstone in a live stream")
	default:
		return fmt.Errorf("admitd: wal replay: unknown record kind %d", rec.kind)
	}
	return nil
}

// snapshotRemove deletes a task (or split) by ID from the snapshot,
// preserving order (placement order is the restore contract).
func snapshotRemove(s *sessionSnapshot, id int64) bool {
	for i := range s.Tasks {
		if s.Tasks[i].ID == id {
			s.Tasks = append(s.Tasks[:i], s.Tasks[i+1:]...)
			return true
		}
	}
	for i := range s.Splits {
		if s.Splits[i].Task.ID == id {
			s.Splits = append(s.Splits[:i], s.Splits[i+1:]...)
			return true
		}
	}
	return false
}

// restoreDurable rebuilds a session from the durability plane:
// newest gen-matched checkpoint (if any) plus the stream tail.
func (st *Store) restoreDurable(name string) (*Session, error) {
	e := st.plane.lookup(name)
	if e == nil {
		return nil, fmt.Errorf("%w: %q", ErrSessionNotFound, name)
	}
	base, lastSeq, err := st.replayToSeq(name, e, 1<<62)
	if err != nil {
		return nil, err
	}
	if base == nil {
		return nil, fmt.Errorf("admitd: session %q: no checkpoint and no create record (log truncated?)", name)
	}
	s, err := restoreSession(base, st.coll, st.met)
	if err != nil {
		return nil, err
	}
	if reg := e.lastSeq.Load(); reg > lastSeq {
		lastSeq = reg
	}
	s.attachWal(st.plane, st.plane.logFor(name), streamKey(name, e.gen), e.gen, e, lastSeq)
	return s, nil
}

// replayToSeq reconstructs a session snapshot at sequence limit-1 ...
// well, at the last mutation with seq < limit: checkpoint base (only
// if it does not overshoot the limit) plus stream replay. Returns the
// snapshot and the highest sequence folded in.
func (st *Store) replayToSeq(name string, e *streamState, limit int64) (*sessionSnapshot, int64, error) {
	var base *sessionSnapshot
	baseSeq := int64(-1)
	if snap, err := readSnapshot(st.dir, name); err == nil && snap != nil &&
		snap.Gen == e.gen && snap.Seq < limit {
		base, baseSeq = snap, snap.Seq
	}
	lastSeq := baseSeq
	err := st.plane.logFor(name).ReplayStream(streamKey(name, e.gen), baseSeq, func(r wal.Record) error {
		if r.Seq >= limit {
			return errWalStop
		}
		rec, derr := walDecode(r.Payload)
		if derr != nil {
			return derr
		}
		if aerr := applyWalRecord(name, &base, &rec); aerr != nil {
			return aerr
		}
		lastSeq = r.Seq
		return nil
	})
	if err != nil && !errors.Is(err, errWalStop) {
		return nil, 0, err
	}
	return base, lastSeq, nil
}

// --- checkpointing ---------------------------------------------------

// Checkpoint snapshots every live session to the checkpoint
// directory (fsynced, rename-atomic), advances the coverage
// watermarks, then rotates and prefix-compacts the shard logs.
// Sessions holding a two-phase probe are skipped this round — their
// committed state is checkpointed next time — and evicted or closed
// sessions are checkpointed on their own exit path anyway.
func (st *Store) Checkpoint() error {
	if st.plane == nil {
		return nil
	}
	var firstErr error
	st.Range(func(s *Session) {
		var snap *sessionSnapshot
		var serr error
		err := s.call(func() {
			if s.pendKind != pendNone || s.wlog == nil {
				return
			}
			snap, serr = s.snapshotLocked()
		})
		if err != nil || serr != nil || snap == nil {
			if firstErr == nil && serr != nil {
				firstErr = serr
			}
			return
		}
		if werr := writeSnapshot(st.dir, snap); werr != nil {
			st.plane.noteError()
			if firstErr == nil {
				firstErr = werr
			}
			return
		}
		st.plane.setCkpt(snap.Name, snap.Gen, snap.Seq)
		if m := st.met; m != nil {
			m.walCheckpoints.Inc()
		}
	})
	st.plane.compact()
	return firstErr
}

// checkpointLoop drives periodic checkpoint + compaction until the
// store closes.
func (st *Store) checkpointLoop() {
	defer close(st.ckptDone)
	for {
		select {
		case <-st.ckptTick.C:
			_ = st.Checkpoint() //nolint:errcheck // surfaced via wal error metrics
		case <-st.ckptStop:
			return
		}
	}
}

// --- audit -----------------------------------------------------------

// Audit answers "why did mutation seq commit?": the session is
// rebuilt at seq-1 (checkpoint + replay), the logged mutation is
// re-run cold — fresh context, fresh counters — and the probe's
// verdict and admission counters are reported. Works against live,
// evicted, and crashed-and-recovered sessions alike: only the log
// and the checkpoint are consulted.
func (st *Store) Audit(name string, seq int64) (*api.AuditReport, error) {
	if st.plane == nil {
		return nil, &api.Error{Code: api.CodeSeqTruncated,
			Message: "admitd: audit needs durability (start with -data-dir)"}
	}
	if seq < 1 {
		return nil, fmt.Errorf("admitd: audit seq must be >= 1")
	}
	e := st.plane.lookup(name)
	if e == nil {
		return nil, fmt.Errorf("%w: %q", ErrSessionNotFound, name)
	}
	base, lastSeq, err := st.replayToSeq(name, e, seq)
	if err != nil {
		return nil, err
	}
	if base == nil {
		return nil, fmt.Errorf("%w: seq %d (base state compacted)", ErrSeqTruncated, seq)
	}
	if lastSeq != seq-1 {
		if seq <= e.ckptSeq.Load() {
			return nil, fmt.Errorf("%w: seq %d (checkpoint is at %d)", ErrSeqTruncated, seq, e.ckptSeq.Load())
		}
		return nil, fmt.Errorf("admitd: audit: records (%d, %d) missing from the log", lastSeq, seq)
	}
	// Fetch the target record itself.
	var target *walRec
	err = st.plane.logFor(name).ReplayStream(streamKey(name, e.gen), seq-1, func(r wal.Record) error {
		if r.Seq != seq {
			return errWalStop
		}
		rec, derr := walDecode(r.Payload)
		if derr != nil {
			return derr
		}
		target = &rec
		return errWalStop
	})
	if err != nil && !errors.Is(err, errWalStop) {
		return nil, err
	}
	if target == nil {
		return nil, fmt.Errorf("admitd: audit: no record at seq %d (session is at %d)", seq, e.lastSeq.Load())
	}
	return auditReplay(name, seq, base, target)
}

// auditReplay re-runs one logged mutation against the rebuilt base
// state on a cold analysis context.
func auditReplay(name string, seq int64, base *sessionSnapshot, rec *walRec) (*api.AuditReport, error) {
	p, model, a, err := buildAssignment(base)
	if err != nil {
		return nil, err
	}
	ctx := analysis.ForPolicy(p).NewContext(a, model)
	rep := &api.AuditReport{
		Name:  name,
		Seq:   seq,
		Op:    walOpName(rec.kind),
		Tasks: len(base.Tasks) + len(base.Splits),
		Core:  -1,
	}
	switch rec.kind {
	case walKindAdmit:
		t, terr := toTask(rec.task, p)
		if terr != nil {
			return nil, terr
		}
		rep.TaskID = rec.task.ID
		tcopy := rec.task
		tcopy.Core = int(rec.core)
		rep.Task = &tcopy
		rep.Admitted = ctx.TryPlace(t, int(rec.core))
		if rep.Admitted {
			rep.Core = int(rec.core)
			ctx.Commit()
		} else {
			ctx.Rollback()
		}
	case walKindSplit:
		sp, serr := toSplit(rec.split, p)
		if serr != nil {
			return nil, serr
		}
		rep.TaskID = rec.split.Task.ID
		tcopy := rec.split.Task
		rep.Task = &tcopy
		rep.Admitted = ctx.TrySplit(sp, sp.Parts[0].Core)
		if rep.Admitted {
			ctx.Commit()
		} else {
			ctx.Rollback()
		}
	case walKindRemove:
		rep.TaskID = rec.id
		rep.Admitted = ctx.Remove(task.ID(rec.id))
	default:
		return nil, fmt.Errorf("admitd: audit: record kind %d is not auditable", rec.kind)
	}
	rep.Schedulable = ctx.Schedulable()
	rep.Admission = report.AdmissionJSON(ctx.Stats())
	return rep, nil
}
