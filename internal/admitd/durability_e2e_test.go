package admitd

import (
	"context"
	"errors"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/api"
	"repro/client"
)

// TestCrashRecoveryE2E is the durability plane's acceptance test
// against the real daemon: build cmd/spadmitd, serve over TCP with
// -data-dir and -fsync always (the durable-on-ack policy; group
// trades a bounded loss window for throughput and cannot promise
// (a)), kill -9 mid-load, restart on the same directory, and require
// (a) every acked admission present after recovery, (b) the change
// feed gapless across the crash when resumed from seq 0, and (c) the
// audit surface answering for pre-crash records.
func TestCrashRecoveryE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real daemon; skipped in -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "spadmitd")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/spadmitd")
	build.Dir = moduleRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building spadmitd: %v\n%s", err, out)
	}
	dataDir := filepath.Join(dir, "data")

	// A free loopback port, reused across both daemon runs.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() //nolint:errcheck // freeing the port for the daemon

	start := func() *exec.Cmd {
		t.Helper()
		cmd := exec.Command(bin, "serve", "-addr", addr, "-data-dir", dataDir, "-fsync", "always", "-trace=false")
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting spadmitd: %v", err)
		}
		probe, err := client.New("http://"+addr, client.WithTimeout(time.Second))
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if probe.Health(context.Background()) == nil {
				return cmd
			}
			time.Sleep(20 * time.Millisecond)
		}
		_ = cmd.Process.Kill() //nolint:errcheck // giving up on this daemon
		t.Fatal("spadmitd did not become healthy in 10s")
		return nil
	}

	cmd := start()
	c, err := client.New("http://"+addr, client.WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sess, err := c.CreateSession(ctx, api.CreateSessionRequest{Name: "e2e", Cores: 8, Policy: "fp"})
	if err != nil {
		t.Fatal(err)
	}

	// Drive admissions until the daemon dies under us: each verdict
	// received is an acked, fsynced write. The kill lands mid-load, so
	// the last in-flight request may be lost unacked — that is the
	// contract; only acked writes must survive.
	killed := make(chan struct{})
	go func() {
		time.Sleep(300 * time.Millisecond)
		_ = cmd.Process.Kill() //nolint:errcheck // the crash under test (SIGKILL)
		close(killed)
	}()
	var acked []int64
	for id := int64(1); ; id++ {
		v, aerr := sess.Admit(ctx, api.AdmitRequest{Task: api.Task{
			ID: id, WCETNs: 100_000, PeriodNs: 1_000_000_000,
			DeadlineNs: 1_000_000_000, Priority: int(id),
		}})
		if aerr != nil {
			var apiErr *api.Error
			if errors.As(aerr, &apiErr) {
				t.Fatalf("admit %d: unexpected api error before the kill: %v", id, apiErr)
			}
			break // transport error: the daemon is dead
		}
		if !v.Admitted {
			t.Fatalf("admit %d rejected (utilization too high for the test rig)", id)
		}
		acked = append(acked, id)
	}
	<-killed
	_ = cmd.Wait() //nolint:errcheck // killed; exit status is the signal
	if len(acked) == 0 {
		t.Fatal("the daemon died before a single acked write; cannot exercise recovery")
	}
	t.Logf("killed spadmitd with %d acked admissions", len(acked))

	// Restart on the same data directory: recovery must hold every
	// acked write.
	cmd2 := start()
	defer func() {
		_ = cmd2.Process.Kill() //nolint:errcheck // test teardown
		_ = cmd2.Wait()         //nolint:errcheck // test teardown
	}()
	state, err := sess.State(ctx)
	if err != nil {
		t.Fatalf("reading recovered state: %v", err)
	}
	have := map[int64]bool{}
	for _, tk := range state.Tasks {
		have[tk.ID] = true
	}
	for _, id := range acked {
		if !have[id] {
			t.Fatalf("acked admission %d lost across the crash (%d acked, %d recovered)", id, len(acked), len(state.Tasks))
		}
	}
	// The unacked in-flight request may legitimately have committed
	// (response lost) — at most one extra task.
	if len(state.Tasks) > len(acked)+1 {
		t.Fatalf("recovered %d tasks, acked only %d", len(state.Tasks), len(acked))
	}

	// Gapless feed across the crash: resume from 0 and require dense
	// seqs covering every acked admission.
	feedCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	feed, err := c.Session("e2e").FeedFrom(feedCtx, 0)
	if err != nil {
		t.Fatalf("feed resume across the crash: %v", err)
	}
	defer feed.Close() //nolint:errcheck // test teardown
	if feed.Hello().Seq < int64(len(acked)) {
		t.Fatalf("feed anchored at %d, want >= %d", feed.Hello().Seq, len(acked))
	}
	for want := int64(1); want <= feed.Hello().Seq; want++ {
		if !feed.Next() {
			t.Fatalf("feed replay ended at seq %d (err %v), want %d", want-1, feed.Err(), feed.Hello().Seq)
		}
		if ev := feed.Event(); ev.Seq != want {
			t.Fatalf("feed gap across the crash: got seq %d, want %d", ev.Seq, want)
		}
	}

	// The audit surface reaches pre-crash history.
	rep, err := c.Session("e2e").Audit(ctx, 1)
	if err != nil {
		t.Fatalf("audit of the first pre-crash record: %v", err)
	}
	if rep.Seq != 1 || rep.Op != "admit" || rep.TaskID != acked[0] || !rep.Admitted {
		t.Fatalf("audit seq 1: %+v", rep)
	}
}

// moduleRoot locates the repo root (where go.mod lives) so the e2e
// build runs from anywhere in the package tree.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, serr := os.Stat(filepath.Join(dir, "go.mod")); serr == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above the test directory")
		}
		dir = parent
	}
}
