package admitd

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/api"
	"repro/client"
)

// durableConfig is the in-process durability-test configuration: the
// periodic checkpoint driver is off, so tests control exactly what
// reaches the disk and when.
func durableConfig(dir string) Config {
	return Config{DataDir: dir, CheckpointEvery: -1}
}

// crashServer simulates kill -9 for in-process durability tests: the
// checkpoint driver halts, every actor stops WITHOUT snapshotting,
// and the shard logs close. Nothing but what the commit log already
// holds survives — exactly a crash's disk state. The server's later
// Close (the test cleanup) finds an empty store and is a no-op.
func crashServer(srv *Server) {
	st := srv.store
	st.stopCheckpoints()
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		live := make([]*Session, 0, len(sh.m))
		for name, s := range sh.m {
			live = append(live, s)
			delete(sh.m, name)
			st.count.Add(-1)
		}
		sh.mu.Unlock()
		for _, s := range live {
			s.close()
		}
	}
	if st.plane != nil {
		st.plane.closeLogs()
	}
}

// admitAcked admits n deterministic low-utilization tasks (ids
// idBase..idBase+n-1) and returns how many were acked admitted —
// each acked admission is one durable commit-log record.
func admitAcked(t *testing.T, srv *Server, name string, idBase int64, n int) int {
	t.Helper()
	acked := 0
	for i := 0; i < n; i++ {
		body := mustStatus(t, srv, "POST", "/v1/sessions/"+name+"/admit",
			api.AdmitRequest{Task: api.Task{
				ID: idBase + int64(i), WCETNs: 1_000_000, PeriodNs: 100_000_000,
				DeadlineNs: 100_000_000, Priority: int(idBase) + i + 1,
			}}, http.StatusOK)
		var v api.Verdict
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.Admitted {
			acked++
		}
	}
	return acked
}

// sessionState reads a session's committed state bytes (the read
// path's rendered body — the bit-identity witness).
func sessionState(t *testing.T, srv *Server, name string) []byte {
	t.Helper()
	return mustStatus(t, srv, "GET", "/v1/sessions/"+name, nil, http.StatusOK)
}

// TestDurableCrashRecoveryBitIdentical drives the plane's core
// invariant: after a crash (no checkpoints at all), replaying the
// commit log rebuilds every session bit-identically to the state the
// clients saw acked.
func TestDurableCrashRecoveryBitIdentical(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, durableConfig(dir))

	names := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"}
	want := map[string][]byte{}
	for i, name := range names {
		policy := "fp"
		if i%2 == 1 {
			policy = "edf"
		}
		mustStatus(t, srv, "POST", "/v1/sessions",
			api.CreateSessionRequest{Name: name, Cores: 4, Policy: policy}, http.StatusCreated)
		admitAcked(t, srv, name, 1, 5+i)
		// Exercise removal records too.
		mustStatus(t, srv, "POST", "/v1/sessions/"+name+"/remove",
			api.RemoveRequest{ID: 2}, http.StatusOK)
		want[name] = sessionState(t, srv, name)
	}
	crashServer(srv)

	srv2 := newTestServer(t, durableConfig(dir))
	if srv2.store.plane.recoveredRecords == 0 {
		t.Fatal("recovery replayed no records")
	}
	for _, name := range names {
		got := sessionState(t, srv2, name)
		if string(got) != string(want[name]) {
			t.Fatalf("session %q state diverged after crash recovery:\n pre: %s\npost: %s", name, want[name], got)
		}
	}
}

// TestDurableCountersSurviveCrash checks the counters recovery can
// reconstruct: admitted/removed replay from the log; rejected resets
// to the last checkpoint (rejections never mutate committed state,
// so they are deliberately not logged).
func TestDurableCountersSurviveCrash(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, durableConfig(dir))
	mustStatus(t, srv, "POST", "/v1/sessions",
		api.CreateSessionRequest{Name: "c", Cores: 2, Policy: "fp"}, http.StatusCreated)
	acked := admitAcked(t, srv, "c", 1, 6)
	mustStatus(t, srv, "POST", "/v1/sessions/c/remove", api.RemoveRequest{ID: 1}, http.StatusOK)
	crashServer(srv)

	srv2 := newTestServer(t, durableConfig(dir))
	body := mustStatus(t, srv2, "GET", "/v1/sessions/c/stats", nil, http.StatusOK)
	var stats api.SessionStats
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Admitted != int64(acked) || stats.Removed != 1 {
		t.Fatalf("recovered counters admitted=%d removed=%d, want %d and 1", stats.Admitted, stats.Removed, acked)
	}
	if stats.Tasks != acked-1 {
		t.Fatalf("recovered task count %d, want %d", stats.Tasks, acked-1)
	}
}

// TestDurableCheckpointBoundsReplay: a checkpoint plus compaction
// truncates the replayed prefix; recovery = checkpoint + tail, still
// bit-identical.
func TestDurableCheckpointBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, durableConfig(dir))
	mustStatus(t, srv, "POST", "/v1/sessions",
		api.CreateSessionRequest{Name: "ck", Cores: 4, Policy: "fp"}, http.StatusCreated)
	admitAcked(t, srv, "ck", 1, 8)
	if err := srv.store.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ent := srv.store.plane.lookup("ck")
	if ent == nil || ent.ckptSeq.Load() <= 0 {
		t.Fatalf("checkpoint did not advance the compaction watermark: %+v", ent)
	}
	// Tail after the checkpoint.
	admitAcked(t, srv, "ck", 100, 4)
	want := sessionState(t, srv, "ck")
	crashServer(srv)

	srv2 := newTestServer(t, durableConfig(dir))
	if got := sessionState(t, srv2, "ck"); string(got) != string(want) {
		t.Fatalf("checkpoint+tail recovery diverged:\n pre: %s\npost: %s", want, got)
	}
}

// TestDurableDeleteRecreate: delete retires the generation (tombstone
// + checkpoint removal), recreate opens a fresh one, and both
// transitions survive a crash.
func TestDurableDeleteRecreate(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, durableConfig(dir))
	mustStatus(t, srv, "POST", "/v1/sessions",
		api.CreateSessionRequest{Name: "gen", Cores: 2, Policy: "fp"}, http.StatusCreated)
	admitAcked(t, srv, "gen", 1, 3)
	mustStatus(t, srv, "DELETE", "/v1/sessions/gen", nil, http.StatusOK)
	// Recreate under the same name: a fresh generation with different
	// content.
	mustStatus(t, srv, "POST", "/v1/sessions",
		api.CreateSessionRequest{Name: "gen", Cores: 3, Policy: "edf"}, http.StatusCreated)
	admitAcked(t, srv, "gen", 50, 2)
	if g := srv.store.plane.lookup("gen").gen; g != 2 {
		t.Fatalf("recreated session generation %d, want 2", g)
	}
	want := sessionState(t, srv, "gen")
	crashServer(srv)

	srv2 := newTestServer(t, durableConfig(dir))
	if got := sessionState(t, srv2, "gen"); string(got) != string(want) {
		t.Fatalf("recreated-generation recovery diverged:\n pre: %s\npost: %s", want, got)
	}
}

// TestDurableDeleteSurvivesCrash: an acked delete must not resurrect.
func TestDurableDeleteSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, durableConfig(dir))
	mustStatus(t, srv, "POST", "/v1/sessions",
		api.CreateSessionRequest{Name: "gone", Cores: 2, Policy: "fp"}, http.StatusCreated)
	admitAcked(t, srv, "gone", 1, 2)
	mustStatus(t, srv, "DELETE", "/v1/sessions/gone", nil, http.StatusOK)
	crashServer(srv)

	srv2 := newTestServer(t, durableConfig(dir))
	mustStatus(t, srv2, "GET", "/v1/sessions/gone", nil, http.StatusNotFound)
}

// TestDurableCreateAckSurvivesCrash: a bare acked create (no
// mutations yet) is already durable.
func TestDurableCreateAckSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, durableConfig(dir))
	mustStatus(t, srv, "POST", "/v1/sessions",
		api.CreateSessionRequest{Name: "bare", Cores: 3, Policy: "edf"}, http.StatusCreated)
	crashServer(srv)

	srv2 := newTestServer(t, durableConfig(dir))
	body := sessionState(t, srv2, "bare")
	var state api.State
	if err := json.Unmarshal(body, &state); err != nil {
		t.Fatal(err)
	}
	if state.Cores != 3 || len(state.Tasks) != 0 {
		t.Fatalf("bare create recovered as %s", body)
	}
	// And the name stays reserved: recreating it must conflict.
	mustStatus(t, srv2, "POST", "/v1/sessions",
		api.CreateSessionRequest{Name: "bare", Cores: 1, Policy: "fp"}, http.StatusConflict)
}

// TestDurableGracefulRestart: Close checkpoints everything and
// compacts; reopening restores bit-identically from checkpoints.
func TestDurableGracefulRestart(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	mustStatus(t, srv, "POST", "/v1/sessions",
		api.CreateSessionRequest{Name: "g", Cores: 4, Policy: "fp"}, http.StatusCreated)
	admitAcked(t, srv, "g", 1, 6)
	want := sessionState(t, srv, "g")
	srv.Close()

	srv2 := newTestServer(t, durableConfig(dir))
	if got := sessionState(t, srv2, "g"); string(got) != string(want) {
		t.Fatalf("graceful restart diverged:\n pre: %s\npost: %s", want, got)
	}
}

// TestDurableEvictionRestore: LRU eviction checkpoints the victim;
// the next touch restores it through checkpoint + tail replay.
func TestDurableEvictionRestore(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, Config{DataDir: dir, CheckpointEvery: -1, MaxSessions: 2})
	mustStatus(t, srv, "POST", "/v1/sessions",
		api.CreateSessionRequest{Name: "old", Cores: 2, Policy: "fp"}, http.StatusCreated)
	admitAcked(t, srv, "old", 1, 4)
	want := sessionState(t, srv, "old")
	// Two more creates push "old" out.
	mustStatus(t, srv, "POST", "/v1/sessions",
		api.CreateSessionRequest{Name: "new1", Cores: 2, Policy: "fp"}, http.StatusCreated)
	mustStatus(t, srv, "POST", "/v1/sessions",
		api.CreateSessionRequest{Name: "new2", Cores: 2, Policy: "fp"}, http.StatusCreated)
	if srv.store.evicted.Load() == 0 {
		t.Fatal("expected an eviction")
	}
	if got := sessionState(t, srv, "old"); string(got) != string(want) {
		t.Fatalf("evicted session restored differently:\n pre: %s\npost: %s", want, got)
	}
	if srv.store.restored.Load() == 0 {
		t.Fatal("restore did not count")
	}
}

// TestFeedResumeAcrossRestart: a reader that remembers its last seen
// durable seq resumes across a server crash with zero gaps — the
// commit log splices the missed events into the live feed.
func TestFeedResumeAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, durableConfig(dir))
	mustStatus(t, srv, "POST", "/v1/sessions",
		api.CreateSessionRequest{Name: "feed", Cores: 4, Policy: "fp"}, http.StatusCreated)
	acked := admitAcked(t, srv, "feed", 1, 5)
	crashServer(srv)

	srv2 := newTestServer(t, durableConfig(dir))
	ts := httptest.NewServer(srv2)
	defer ts.Close()
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	feed, err := c.Session("feed").FeedFrom(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer feed.Close() //nolint:errcheck // test teardown
	hello := feed.Hello()
	if hello.ResumeFrom == nil || *hello.ResumeFrom != 0 {
		t.Fatalf("hello.ResumeFrom = %v, want 0", hello.ResumeFrom)
	}
	if hello.Seq != int64(acked) {
		t.Fatalf("hello.Seq = %d, want %d (acked mutations)", hello.Seq, acked)
	}
	// The replayed prefix: seqs 1..acked, dense, all admits.
	for want := int64(1); want <= int64(acked); want++ {
		if !feed.Next() {
			t.Fatalf("feed ended at seq %d (err %v), want %d replayed events", want-1, feed.Err(), acked)
		}
		ev := feed.Event()
		if ev.Seq != want || ev.Op != "admit" {
			t.Fatalf("replayed event %+v, want seq %d op admit", ev, want)
		}
	}
	// Live continuation: the next committed mutation arrives with the
	// next dense seq.
	go func() {
		_, _ = c.Session("feed").Admit(context.Background(), //nolint:errcheck // verified via the feed
			api.AdmitRequest{Task: api.Task{ID: 99, WCETNs: 1_000_000, PeriodNs: 100_000_000, DeadlineNs: 100_000_000, Priority: 99}})
	}()
	if !feed.Next() {
		t.Fatalf("no live event after replay: %v", feed.Err())
	}
	if ev := feed.Event(); ev.Seq != int64(acked)+1 || ev.Task != 99 {
		t.Fatalf("live event %+v, want seq %d task 99", ev, acked+1)
	}
}

// TestFeedResumeTruncated: resuming from below the compaction
// low-water is a 410 — the log no longer holds those records.
func TestFeedResumeTruncated(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, durableConfig(dir))
	mustStatus(t, srv, "POST", "/v1/sessions",
		api.CreateSessionRequest{Name: "tr", Cores: 4, Policy: "fp"}, http.StatusCreated)
	admitAcked(t, srv, "tr", 1, 5)
	if err := srv.store.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Session("tr").FeedFrom(context.Background(), 0)
	if !api.IsCode(err, api.CodeSeqTruncated) {
		t.Fatalf("feed resume below the low-water: err = %v, want %s", err, api.CodeSeqTruncated)
	}
}

// TestAuditReplay: the audit endpoint rebuilds state as of seq-1 and
// re-runs the logged mutation with the collector on.
func TestAuditReplay(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, durableConfig(dir))
	mustStatus(t, srv, "POST", "/v1/sessions",
		api.CreateSessionRequest{Name: "au", Cores: 2, Policy: "fp"}, http.StatusCreated)
	acked := admitAcked(t, srv, "au", 1, 4)
	if acked != 4 {
		t.Fatalf("setup: %d/4 admitted", acked)
	}
	mustStatus(t, srv, "POST", "/v1/sessions/au/remove", api.RemoveRequest{ID: 2}, http.StatusOK)

	var rep api.AuditReport
	body := mustStatus(t, srv, "GET", "/v1/sessions/au/audit?seq=3", nil, http.StatusOK)
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Seq != 3 || rep.Op != "admit" || rep.TaskID != 3 || !rep.Admitted || rep.Task == nil {
		t.Fatalf("audit seq 3: %+v", rep)
	}
	if rep.Tasks != 2 {
		t.Fatalf("audit seq 3 base task count %d, want 2", rep.Tasks)
	}
	if rep.Admission.Probes == 0 || rep.Admission.FPSolves == 0 {
		t.Fatalf("audit re-run collected no admission stats: %+v", rep.Admission)
	}
	// The remove record audits too.
	body = mustStatus(t, srv, "GET", fmt.Sprintf("/v1/sessions/au/audit?seq=%d", acked+1), nil, http.StatusOK)
	rep = api.AuditReport{}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Op != "remove" || rep.TaskID != 2 || rep.Task != nil {
		t.Fatalf("audit remove: %+v", rep)
	}

	// Error surface: seq 0 and non-numeric are 400s; past the end is
	// 400; audits below a compacted checkpoint are 410.
	mustStatus(t, srv, "GET", "/v1/sessions/au/audit?seq=0", nil, http.StatusBadRequest)
	mustStatus(t, srv, "GET", "/v1/sessions/au/audit?seq=x", nil, http.StatusBadRequest)
	mustStatus(t, srv, "GET", "/v1/sessions/au/audit?seq=99", nil, http.StatusBadRequest)
	if err := srv.store.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustStatus(t, srv, "GET", "/v1/sessions/au/audit?seq=3", nil, http.StatusGone)
}

// TestAuditNeedsDurability: without -data-dir the audit surface
// reports the whole log as truncated.
func TestAuditNeedsDurability(t *testing.T) {
	srv := newTestServer(t, Config{})
	mustStatus(t, srv, "POST", "/v1/sessions",
		api.CreateSessionRequest{Name: "nd", Cores: 2, Policy: "fp"}, http.StatusCreated)
	mustStatus(t, srv, "GET", "/v1/sessions/nd/audit?seq=1", nil, http.StatusGone)
}

// TestDurableWalMetrics: the exposition reflects commit-log activity.
func TestDurableWalMetrics(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, durableConfig(dir))
	mustStatus(t, srv, "POST", "/v1/sessions",
		api.CreateSessionRequest{Name: "m", Cores: 2, Policy: "fp"}, http.StatusCreated)
	admitAcked(t, srv, "m", 1, 3)
	st := srv.store.plane.stats()
	if st.Appends == 0 || st.Segments == 0 || st.Bytes == 0 {
		t.Fatalf("plane stats after activity: %+v", st)
	}
	if live, _ := srv.store.plane.streamCounts(); live != 1 {
		t.Fatalf("stream counts: live=%d, want 1", live)
	}
	if err := srv.store.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, ckpt := srv.store.plane.streamCounts(); ckpt != 1 {
		t.Fatal("checkpointed stream count did not advance")
	}
}

// TestDurableGroupBackgroundSync pins the group policy's bounded-loss
// contract: acks release at apply time and the background committer
// fsyncs dirty logs on its own cadence, so fsync counts grow without
// any explicit commit or checkpoint from the caller.
func TestDurableGroupBackgroundSync(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, durableConfig(dir))
	mustStatus(t, srv, "POST", "/v1/sessions",
		api.CreateSessionRequest{Name: "bg", Cores: 2, Policy: "fp"}, http.StatusCreated)
	if n := admitAcked(t, srv, "bg", 1, 3); n == 0 {
		t.Fatal("no acked admissions")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := srv.store.plane.stats(); st.Fsyncs > 0 {
			return
		}
		if time.Now().After(deadline) {
			st := srv.store.plane.stats()
			t.Fatalf("background committer never fsynced: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
