package admitd

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/api"
	"repro/internal/task"
	"repro/internal/wal"
)

// The SSE change feed is the daemon's first push surface: every
// committed mutation — and only committed ones — becomes one event
// carrying the snapshot sequence number that mutation published, so
// a subscriber can mirror session state with the same linearizable
// contract the read path gives. Events are staged on the actor
// during a drain and flushed after the drain's snapshot publish
// (Session.feedFlush from the actor loop): a subscriber never
// observes a sequence number before the snapshot carrying it is
// readable, and within one subscription sequence numbers are
// strictly increasing with no committed mutation skipped.
//
// Slow-consumer policy: every subscriber owns a bounded buffer
// (feedSubBuffer events). The actor never blocks on a subscriber —
// when a buffer is full the subscription is dropped: removed from
// the hub and its channel closed, which the handler reports to the
// client as a terminal "dropped" event. Reconnecting re-syncs via
// the hello event's sequence number and a state read.

// feedOp tags a change event.
type feedOp uint8

const (
	feedAdmit feedOp = iota
	feedSplit
	feedRemove
)

func (op feedOp) String() string {
	switch op {
	case feedSplit:
		return "split"
	case feedRemove:
		return "remove"
	default:
		return "admit"
	}
}

// feedEvent is one committed mutation, stamped with the sequence
// number its snapshot published.
type feedEvent struct {
	seq   int64
	task  int64
	core  int32 // -1 for splits and removes
	tasks int32 // committed task count after the mutation
	op    feedOp
}

// feedSubBuffer bounds one subscriber's event backlog; a feed that
// falls this far behind is dropped rather than ever back-pressuring
// the actor.
const feedSubBuffer = 256

// feedSub is one subscription: a buffered channel the actor sends
// into and the handler drains. after filters events already covered
// by the subscriber's hello sequence number.
type feedSub struct {
	ch    chan feedEvent
	after int64
}

// feedHub fans events out to a session's subscribers. The mutex
// guards the subscriber set only; it is taken once per drain that
// produced events (by the commit handoff for durable sessions, by the
// actor otherwise), and by subscribe/unsubscribe.
type feedHub struct {
	mu   sync.Mutex
	subs map[*feedSub]struct{}
}

// publish fans one drain's events out, applying the drop policy.
// Runs on the commit-handoff goroutine for durable sessions (in drain
// order — handoffs chain), on the actor otherwise.
func (h *feedHub) publish(events []feedEvent, m *serverMetrics) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for sub := range h.subs {
		if !sub.send(events) {
			// Buffer full: drop the subscription, never the actor's
			// latency. Closing the channel is the terminal signal
			// the handler relays as a "dropped" event.
			delete(h.subs, sub)
			close(sub.ch)
			if m != nil {
				m.feedDropped.Inc()
			}
		}
	}
}

// send enqueues the events newer than the subscription anchor,
// reporting false on overflow.
func (sub *feedSub) send(events []feedEvent) bool {
	for _, ev := range events {
		if ev.seq <= sub.after {
			continue
		}
		select {
		case sub.ch <- ev:
		default:
			return false
		}
	}
	return true
}

// feedNote stages one committed admission (whole task or split) for
// the drain's flush. Actor-only; a single nil check when no
// subscriber ever attached.
func (s *Session) feedNote(t *task.Task, sp *task.Split, core int) {
	if s.feed.Load() == nil {
		return
	}
	ev := feedEvent{seq: s.durableSeq(), tasks: int32(s.nTasks.Load()), core: int32(core)}
	if sp != nil {
		ev.op = feedSplit
		ev.task = int64(sp.Task.ID)
		ev.core = -1
	} else {
		ev.task = int64(t.ID)
	}
	s.feedPend = append(s.feedPend, ev)
}

// feedNoteRemove stages one committed removal. Actor-only.
func (s *Session) feedNoteRemove(id task.ID) {
	if s.feed.Load() == nil {
		return
	}
	s.feedPend = append(s.feedPend, feedEvent{
		seq: s.durableSeq(), op: feedRemove,
		task: int64(id), core: -1, tasks: int32(s.nTasks.Load()),
	})
}

// feedFlush hands the drain's staged events to the hub. Runs on the
// actor, after the drain's snapshot publish.
func (s *Session) feedFlush() {
	if len(s.feedPend) == 0 {
		return
	}
	if h := s.feed.Load(); h != nil {
		h.publish(s.feedPend, s.met)
		if m := s.met; m != nil {
			m.feedEvents.Add(int64(len(s.feedPend)))
		}
	}
	s.feedPend = s.feedPend[:0]
}

// feedSubscribe attaches a subscriber through the actor: the hub
// attach and the sequence-number capture are atomic with respect to
// mutations, so the stream is gapless from the returned sequence on.
func (s *Session) feedSubscribe() (*feedSub, int64, error) {
	sub := &feedSub{ch: make(chan feedEvent, feedSubBuffer)}
	err := s.call(func() {
		h := s.feed.Load()
		if h == nil {
			h = &feedHub{subs: make(map[*feedSub]struct{})}
			s.feed.Store(h)
		}
		// The anchor capture runs on the actor (atomic with respect to
		// mutations); the attach locks the hub because publishes run on
		// commit-handoff goroutines. A handoff still in flight carries
		// only events at or below the anchor — send filters those.
		h.mu.Lock()
		sub.after = s.durableSeq()
		h.subs[sub] = struct{}{}
		h.mu.Unlock()
	})
	if err != nil {
		return nil, 0, err
	}
	return sub, sub.after, nil
}

// feedReplay synthesizes the change events in (from, to] from the
// session's commit-log stream — every record carries the placement
// and the task count after the mutation, so no state rebuild is
// needed. Sequence numbers are dense, so the range is verified by
// counting: a shortfall means compaction already removed part of it
// (or durability is off), reported as seq_truncated.
func (s *Session) feedReplay(from, to int64) ([]feedEvent, error) {
	if from == to {
		return nil, nil
	}
	if s.wlog == nil {
		return nil, fmt.Errorf("%w: feed resume needs durability (start with -data-dir)", ErrSeqTruncated)
	}
	evs := make([]feedEvent, 0, to-from)
	err := s.wlog.ReplayStream(s.wstream, from, func(r wal.Record) error {
		if r.Seq > to {
			return errWalStop
		}
		rec, derr := walDecode(r.Payload)
		if derr != nil {
			return derr
		}
		ev := feedEvent{seq: r.Seq, tasks: rec.tasks, core: -1}
		switch rec.kind {
		case walKindAdmit:
			ev.op, ev.task, ev.core = feedAdmit, rec.task.ID, rec.core
		case walKindSplit:
			ev.op, ev.task = feedSplit, rec.split.Task.ID
		case walKindRemove:
			ev.op, ev.task = feedRemove, rec.id
		default:
			return nil // create/tombstone records are not feed events
		}
		evs = append(evs, ev)
		return nil
	})
	if err != nil && !errors.Is(err, errWalStop) {
		return nil, err
	}
	if int64(len(evs)) != to-from {
		return nil, fmt.Errorf("%w: events (%d, %d] are no longer fully retained", ErrSeqTruncated, from, to)
	}
	return evs, nil
}

// feedUnsubscribe detaches (client disconnect). Safe against a
// concurrent drop: the hub tolerates removing an absent subscriber.
func (s *Session) feedUnsubscribe(sub *feedSub) {
	h := s.feed.Load()
	if h == nil {
		return
	}
	h.mu.Lock()
	delete(h.subs, sub)
	h.mu.Unlock()
}

// --- HTTP ------------------------------------------------------------

// feedHeartbeat keeps intermediaries from timing out an idle stream.
const feedHeartbeat = 15 * time.Second

// errStreamingUnsupported is returned when the transport cannot
// flush incrementally (no http.Flusher).
var errStreamingUnsupported = fmt.Errorf("admitd: transport does not support streaming")

// handleFeed serves GET /v1/sessions/{name}/feed: an SSE stream of
// committed-mutation events. The hello event carries the sequence
// number the subscription is anchored at; every subsequent change
// event's seq is strictly increasing with no committed mutation
// missing.
//
// With durability on, ?from_seq=N resumes a broken subscription
// gaplessly: the subscription is anchored first (so nothing can slip
// between replay and live), then events (N, anchor] are synthesized
// from the commit log and written ahead of the live stream. The
// replayed range is verified dense by counting — a gap means
// compaction outran the resumer, reported as seq_truncated (410) so
// the client re-syncs via a fresh subscription plus a state read.
func (s *Server) handleFeed(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, errStreamingUnsupported)
		return
	}
	fromSeq := int64(-1)
	if v := r.URL.Query().Get(api.FeedFromSeqParam); v != "" {
		n, perr := strconv.ParseInt(v, 10, 64)
		if perr != nil || n < 0 {
			writeError(w, fmt.Errorf("bad %s %q: want a sequence number >= 0", api.FeedFromSeqParam, v))
			return
		}
		fromSeq = n
	}
	sub, seq, err := sess.feedSubscribe()
	if err != nil {
		writeError(w, err)
		return
	}
	defer sess.feedUnsubscribe(sub)
	var replayed []feedEvent
	if fromSeq >= 0 {
		if fromSeq > seq {
			writeError(w, fmt.Errorf("%s %d is ahead of the session (at seq %d)", api.FeedFromSeqParam, fromSeq, seq))
			return
		}
		if replayed, err = sess.feedReplay(fromSeq, seq); err != nil {
			writeError(w, err)
			return
		}
	}
	s.met.feedSubs.Inc()
	defer s.met.feedSubs.Dec()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	buf := make([]byte, 0, 256)
	buf = append(buf, "event: hello\ndata: "...)
	if fromSeq >= 0 {
		buf = appendFeedHelloResume(buf, sess.name, seq, sess.nTasks.Load(), fromSeq)
	} else {
		buf = appendFeedHello(buf, sess.name, seq, sess.nTasks.Load())
	}
	buf = append(buf, "\n\n"...)
	if _, err := w.Write(buf); err != nil {
		return
	}
	for _, ev := range replayed {
		buf = appendFeedFrame(buf[:0], ev)
		if _, err := w.Write(buf); err != nil {
			return
		}
	}
	flusher.Flush()

	hb := time.NewTicker(feedHeartbeat)
	defer hb.Stop()
	for {
		select {
		case ev, open := <-sub.ch:
			if !open {
				// Dropped by the slow-consumer policy.
				_, _ = w.Write([]byte("event: dropped\ndata: {}\n\n"))
				flusher.Flush()
				return
			}
			buf = appendFeedFrame(buf[:0], ev)
			if _, err := w.Write(buf); err != nil {
				return
			}
			flusher.Flush()
		case <-hb.C:
			if _, err := w.Write([]byte(": hb\n\n")); err != nil {
				return
			}
			flusher.Flush()
		case <-sess.done:
			_, _ = w.Write([]byte("event: closed\ndata: {}\n\n"))
			flusher.Flush()
			return
		case <-r.Context().Done():
			return
		}
	}
}

func appendFeedHello(b []byte, name string, seq, tasks int64) []byte {
	b = append(b, `{"name":`...)
	// Session names on the feed path came through the router; quote
	// defensively anyway.
	b = strconv.AppendQuote(b, name)
	b = append(b, `,"seq":`...)
	b = strconv.AppendInt(b, seq, 10)
	b = append(b, `,"tasks":`...)
	b = strconv.AppendInt(b, tasks, 10)
	return append(b, '}')
}

// appendFeedHelloResume is appendFeedHello plus the resume_from
// field: the client's from_seq, echoed so the subscriber knows the
// replayed range (resume_from, seq] precedes the live stream.
func appendFeedHelloResume(b []byte, name string, seq, tasks, from int64) []byte {
	b = appendFeedHello(b, name, seq, tasks)
	b = b[:len(b)-1] // reopen the object
	b = append(b, `,"resume_from":`...)
	b = strconv.AppendInt(b, from, 10)
	return append(b, '}')
}

// appendFeedFrame renders one change event as a full SSE frame (id,
// event type, data).
func appendFeedFrame(b []byte, ev feedEvent) []byte {
	b = append(b, "id: "...)
	b = strconv.AppendInt(b, ev.seq, 10)
	b = append(b, "\nevent: change\ndata: "...)
	b = appendFeedEvent(b, ev)
	return append(b, "\n\n"...)
}

func appendFeedEvent(b []byte, ev feedEvent) []byte {
	b = append(b, `{"seq":`...)
	b = strconv.AppendInt(b, ev.seq, 10)
	b = append(b, `,"op":"`...)
	b = append(b, ev.op.String()...)
	b = append(b, `","task":`...)
	b = strconv.AppendInt(b, ev.task, 10)
	b = append(b, `,"core":`...)
	b = strconv.AppendInt(b, int64(ev.core), 10)
	b = append(b, `,"tasks":`...)
	b = strconv.AppendInt(b, int64(ev.tasks), 10)
	return append(b, '}')
}
