package admitd

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/task"
)

// The SSE change feed is the daemon's first push surface: every
// committed mutation — and only committed ones — becomes one event
// carrying the snapshot sequence number that mutation published, so
// a subscriber can mirror session state with the same linearizable
// contract the read path gives. Events are staged on the actor
// during a drain and flushed after the drain's snapshot publish
// (Session.feedFlush from the actor loop): a subscriber never
// observes a sequence number before the snapshot carrying it is
// readable, and within one subscription sequence numbers are
// strictly increasing with no committed mutation skipped.
//
// Slow-consumer policy: every subscriber owns a bounded buffer
// (feedSubBuffer events). The actor never blocks on a subscriber —
// when a buffer is full the subscription is dropped: removed from
// the hub and its channel closed, which the handler reports to the
// client as a terminal "dropped" event. Reconnecting re-syncs via
// the hello event's sequence number and a state read.

// feedOp tags a change event.
type feedOp uint8

const (
	feedAdmit feedOp = iota
	feedSplit
	feedRemove
)

func (op feedOp) String() string {
	switch op {
	case feedSplit:
		return "split"
	case feedRemove:
		return "remove"
	default:
		return "admit"
	}
}

// feedEvent is one committed mutation, stamped with the sequence
// number its snapshot published.
type feedEvent struct {
	seq   int64
	task  int64
	core  int32 // -1 for splits and removes
	tasks int32 // committed task count after the mutation
	op    feedOp
}

// feedSubBuffer bounds one subscriber's event backlog; a feed that
// falls this far behind is dropped rather than ever back-pressuring
// the actor.
const feedSubBuffer = 256

// feedSub is one subscription: a buffered channel the actor sends
// into and the handler drains. after filters events already covered
// by the subscriber's hello sequence number.
type feedSub struct {
	ch    chan feedEvent
	after int64
}

// feedHub fans events out to a session's subscribers. The mutex
// guards the subscriber set only; it is taken by the actor once per
// drain that produced events, and by subscribe/unsubscribe.
type feedHub struct {
	mu   sync.Mutex
	subs map[*feedSub]struct{}
}

// publish fans one drain's events out, applying the drop policy.
// Runs on the actor.
func (h *feedHub) publish(events []feedEvent, m *serverMetrics) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for sub := range h.subs {
		if !sub.send(events) {
			// Buffer full: drop the subscription, never the actor's
			// latency. Closing the channel is the terminal signal
			// the handler relays as a "dropped" event.
			delete(h.subs, sub)
			close(sub.ch)
			if m != nil {
				m.feedDropped.Inc()
			}
		}
	}
}

// send enqueues the events newer than the subscription anchor,
// reporting false on overflow.
func (sub *feedSub) send(events []feedEvent) bool {
	for _, ev := range events {
		if ev.seq <= sub.after {
			continue
		}
		select {
		case sub.ch <- ev:
		default:
			return false
		}
	}
	return true
}

// feedNote stages one committed admission (whole task or split) for
// the drain's flush. Actor-only; a single nil check when no
// subscriber ever attached.
func (s *Session) feedNote(t *task.Task, sp *task.Split, core int) {
	if s.feed.Load() == nil {
		return
	}
	ev := feedEvent{seq: s.actx.CommitSeq(), tasks: int32(s.nTasks.Load()), core: int32(core)}
	if sp != nil {
		ev.op = feedSplit
		ev.task = int64(sp.Task.ID)
		ev.core = -1
	} else {
		ev.task = int64(t.ID)
	}
	s.feedPend = append(s.feedPend, ev)
}

// feedNoteRemove stages one committed removal. Actor-only.
func (s *Session) feedNoteRemove(id task.ID) {
	if s.feed.Load() == nil {
		return
	}
	s.feedPend = append(s.feedPend, feedEvent{
		seq: s.actx.CommitSeq(), op: feedRemove,
		task: int64(id), core: -1, tasks: int32(s.nTasks.Load()),
	})
}

// feedFlush hands the drain's staged events to the hub. Runs on the
// actor, after the drain's snapshot publish.
func (s *Session) feedFlush() {
	if len(s.feedPend) == 0 {
		return
	}
	if h := s.feed.Load(); h != nil {
		h.publish(s.feedPend, s.met)
		if m := s.met; m != nil {
			m.feedEvents.Add(int64(len(s.feedPend)))
		}
	}
	s.feedPend = s.feedPend[:0]
}

// feedSubscribe attaches a subscriber through the actor: the hub
// attach and the sequence-number capture are atomic with respect to
// mutations, so the stream is gapless from the returned sequence on.
func (s *Session) feedSubscribe() (*feedSub, int64, error) {
	sub := &feedSub{ch: make(chan feedEvent, feedSubBuffer)}
	err := s.call(func() {
		h := s.feed.Load()
		if h == nil {
			h = &feedHub{subs: make(map[*feedSub]struct{})}
			s.feed.Store(h)
		}
		sub.after = s.actx.CommitSeq()
		h.subs[sub] = struct{}{}
	})
	if err != nil {
		return nil, 0, err
	}
	return sub, sub.after, nil
}

// feedUnsubscribe detaches (client disconnect). Safe against a
// concurrent drop: the hub tolerates removing an absent subscriber.
func (s *Session) feedUnsubscribe(sub *feedSub) {
	h := s.feed.Load()
	if h == nil {
		return
	}
	h.mu.Lock()
	delete(h.subs, sub)
	h.mu.Unlock()
}

// --- HTTP ------------------------------------------------------------

// feedHeartbeat keeps intermediaries from timing out an idle stream.
const feedHeartbeat = 15 * time.Second

// errStreamingUnsupported is returned when the transport cannot
// flush incrementally (no http.Flusher).
var errStreamingUnsupported = fmt.Errorf("admitd: transport does not support streaming")

// handleFeed serves GET /v1/sessions/{name}/feed: an SSE stream of
// committed-mutation events. The hello event carries the sequence
// number the subscription is anchored at; every subsequent change
// event's seq is strictly increasing with no committed mutation
// missing.
func (s *Server) handleFeed(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, errStreamingUnsupported)
		return
	}
	sub, seq, err := sess.feedSubscribe()
	if err != nil {
		writeError(w, err)
		return
	}
	defer sess.feedUnsubscribe(sub)
	s.met.feedSubs.Inc()
	defer s.met.feedSubs.Dec()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	buf := make([]byte, 0, 256)
	buf = append(buf, "event: hello\ndata: "...)
	buf = appendFeedHello(buf, sess.name, seq, sess.nTasks.Load())
	buf = append(buf, "\n\n"...)
	if _, err := w.Write(buf); err != nil {
		return
	}
	flusher.Flush()

	hb := time.NewTicker(feedHeartbeat)
	defer hb.Stop()
	for {
		select {
		case ev, open := <-sub.ch:
			if !open {
				// Dropped by the slow-consumer policy.
				_, _ = w.Write([]byte("event: dropped\ndata: {}\n\n"))
				flusher.Flush()
				return
			}
			buf = buf[:0]
			buf = append(buf, "id: "...)
			buf = strconv.AppendInt(buf, ev.seq, 10)
			buf = append(buf, "\nevent: change\ndata: "...)
			buf = appendFeedEvent(buf, ev)
			buf = append(buf, "\n\n"...)
			if _, err := w.Write(buf); err != nil {
				return
			}
			flusher.Flush()
		case <-hb.C:
			if _, err := w.Write([]byte(": hb\n\n")); err != nil {
				return
			}
			flusher.Flush()
		case <-sess.done:
			_, _ = w.Write([]byte("event: closed\ndata: {}\n\n"))
			flusher.Flush()
			return
		case <-r.Context().Done():
			return
		}
	}
}

func appendFeedHello(b []byte, name string, seq, tasks int64) []byte {
	b = append(b, `{"name":`...)
	// Session names on the feed path came through the router; quote
	// defensively anyway.
	b = strconv.AppendQuote(b, name)
	b = append(b, `,"seq":`...)
	b = strconv.AppendInt(b, seq, 10)
	b = append(b, `,"tasks":`...)
	b = strconv.AppendInt(b, tasks, 10)
	return append(b, '}')
}

func appendFeedEvent(b []byte, ev feedEvent) []byte {
	b = append(b, `{"seq":`...)
	b = strconv.AppendInt(b, ev.seq, 10)
	b = append(b, `,"op":"`...)
	b = append(b, ev.op.String()...)
	b = append(b, `","task":`...)
	b = strconv.AppendInt(b, ev.task, 10)
	b = append(b, `,"core":`...)
	b = strconv.AppendInt(b, int64(ev.core), 10)
	b = append(b, `,"tasks":`...)
	b = strconv.AppendInt(b, int64(ev.tasks), 10)
	return append(b, '}')
}
