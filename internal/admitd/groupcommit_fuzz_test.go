package admitd

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/api"
	"repro/internal/analysis"
	"repro/internal/overhead"
	"repro/internal/task"
)

// FuzzGroupCommitCoalescing pins the group-commit contract under real
// contention: N racing writers push randomized op streams through one
// session's mailbox, so drains coalesce many mutations into single
// snapshot publishes. The actor records the linearization it actually
// executed; replaying that exact order on a fresh session one call at
// a time (drain size 1, no coalescing) must reproduce every verdict,
// every error, the final state, and the admission counters bit for
// bit. Run under -race this also exercises the mailbox, the deferred
// unregistration path, and the stats republish concurrently; the
// analysis SelfCheck shadow double-checks every admission decision in
// both phases.

// gcOp is one linearized actor operation and its observed outcome.
type gcOp struct {
	kind byte // 'a' admit, 't' try-hold, 'c' commit, 'r' rollback, 'd' remove
	id   int64
	core int // -1: first-fit
	v    api.Verdict
	err  string
}

// gcApply executes the op against s (must run inside s.call) and
// records the outcome.
func gcApply(s *Session, op *gcOp) {
	req := api.AdmitRequest{Task: benchTask(op.id)}
	if op.core >= 0 {
		core := op.core
		req.Core = &core
	}
	var err error
	switch op.kind {
	case 'a':
		op.v, err = s.admitLocked(req)
	case 't':
		req.Hold = true
		op.v, err = s.tryLocked(req)
	case 'c':
		op.v, err = s.commitLocked()
	case 'r':
		op.v, err = s.rollbackLocked()
	case 'd':
		err = s.removeLocked(task.ID(op.id))
	}
	if err != nil {
		op.err = err.Error()
	} else {
		op.err = ""
	}
}

func FuzzGroupCommitCoalescing(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(40))
	f.Add(int64(7), uint8(8), uint8(25))
	f.Add(int64(42), uint8(2), uint8(60))
	f.Fuzz(func(t *testing.T, seed int64, writers, ops uint8) {
		nw := 2 + int(writers%7) // 2..8 writers: always real contention
		nops := 10 + int(ops%60)
		prevCheck := analysis.SelfCheck
		analysis.SelfCheck = true
		defer func() { analysis.SelfCheck = prevCheck }()

		live := newSession("gc", task.FixedPriority, overhead.PaperModel(), task.NewAssignment(4), nil, nil)
		defer live.close()

		// Phase 1: racing writers. The actor runs closures one at a
		// time, so appending to the shared log inside the closure
		// captures the exact linearization without extra locking.
		var log []*gcOp
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(w)*7919))
				var mine []int64 // ids this writer admitted
				for k := 0; k < nops; k++ {
					op := &gcOp{id: int64(w)<<32 | int64(k), core: rng.Intn(5) - 1}
					switch r := rng.Intn(100); {
					case r < 45:
						op.kind = 'a'
						mine = append(mine, op.id)
					case r < 60:
						op.kind = 't'
					case r < 70:
						op.kind = 'c'
					case r < 78:
						op.kind = 'r'
					default:
						op.kind = 'd'
						if len(mine) > 0 {
							op.id = mine[rng.Intn(len(mine))]
						} // else: remove of a never-admitted id — also a case worth replaying
					}
					if err := live.call(func() {
						gcApply(live, op)
						log = append(log, op)
					}); err != nil {
						t.Errorf("writer %d: %v", w, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		// Resolve any probe still held before comparing: an EndGroup
		// that lands while a probe is pending defers its snapshot
		// publish as a debt the probe's Commit/Rollback settles (the
		// documented deferral window in analysis.Context). The final
		// rollback is logged, so the replay resolves identically; with
		// no probe pending it errors — identically on both sides.
		final := &gcOp{kind: 'r', id: -1, core: -1}
		if err := live.call(func() {
			gcApply(live, final)
			log = append(log, final)
		}); err != nil {
			t.Fatal(err)
		}

		// Phase 2: sequential replay of the recorded linearization,
		// one drain per op.
		replay := newSession("gc", task.FixedPriority, overhead.PaperModel(), task.NewAssignment(4), nil, nil)
		defer replay.close()
		for i, op := range log {
			got := &gcOp{kind: op.kind, id: op.id, core: op.core}
			if err := replay.call(func() { gcApply(replay, got) }); err != nil {
				t.Fatalf("replay op %d: %v", i, err)
			}
			if got.v != op.v || got.err != op.err {
				t.Fatalf("op %d (%c id=%d core=%d) diverged:\ncoalesced %+v err=%q\nreplayed  %+v err=%q",
					i, op.kind, op.id, op.core, op.v, op.err, got.v, got.err)
			}
		}

		liveState, err1 := live.stateRead()
		replayState, err2 := replay.stateRead()
		if err1 != nil || err2 != nil {
			t.Fatalf("stateRead: %v / %v", err1, err2)
		}
		lb, _ := json.Marshal(liveState)
		rb, _ := json.Marshal(replayState)
		if string(lb) != string(rb) {
			var seq []string
			for _, op := range log {
				seq = append(seq, fmt.Sprintf("%c id=%d core=%d adm=%v pend=%v err=%q", op.kind, op.id, op.core, op.v.Admitted, op.v.Pending, op.err))
			}
			t.Fatalf("final state diverged:\ncoalesced %s\nreplayed  %s\nops:\n%s", lb, rb, strings.Join(seq, "\n"))
		}
		ls, err1 := live.statsRead()
		rs, err2 := replay.statsRead()
		if err1 != nil || err2 != nil {
			t.Fatalf("statsRead: %v / %v", err1, err2)
		}
		if ls != rs {
			t.Fatalf("admission counters diverged:\ncoalesced %+v\nreplayed  %+v", ls, rs)
		}
	})
}
