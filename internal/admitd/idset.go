package admitd

import (
	"sync/atomic"

	"repro/internal/task"
)

// idSet is the committed task-ID set: a lock-free open-addressing
// hash set with one writer (the session actor; construction before
// the session is reachable also counts) and any number of concurrent
// readers. The read path's duplicate check is an atomic table load
// plus a linear probe — no lock, no allocation, unlike sync.Map
// (whose Load boxes the int64-backed key on every call) or a
// clone-per-write COW map (O(n) writes were measurable in the session
// mix).
//
// Deletions are tombstones (idGone): readers probe straight past
// them, so chains stay intact without ever moving a key. Tombstones
// are purged wholesale when the table rebuilds. Writers publish a
// slot by storing the key first and the slot state last (release);
// readers load the state first (acquire) — a reader either sees a
// fully-written slot or treats it as missing, which linearizes the
// lookup before the insert.
type idSet struct {
	tab atomic.Pointer[idTable]
}

type idTable struct {
	slots []idSlot
	live  int // idReady slots (writer-owned bookkeeping)
	used  int // idReady + idGone slots (writer-owned)
}

type idSlot struct {
	state atomic.Uint32
	key   task.ID
}

const (
	idEmpty uint32 = iota // never written; terminates probe chains
	idReady               // holds a live key
	idGone                // tombstone: key deleted, chain continues
)

const idTableInit = 64 // power of two

func newIDSet() *idSet {
	s := &idSet{}
	s.tab.Store(&idTable{slots: make([]idSlot, idTableInit)})
	return s
}

func idHash(id task.ID) uint64 {
	h := uint64(id) * 0x9e3779b97f4a7c15
	return h ^ (h >> 32)
}

// has reports membership. Lock-free, allocation-free, callable from
// any goroutine.
func (s *idSet) has(id task.ID) bool {
	t := s.tab.Load()
	mask := uint64(len(t.slots) - 1)
	for i := idHash(id) & mask; ; i = (i + 1) & mask {
		sl := &t.slots[i]
		switch sl.state.Load() {
		case idEmpty:
			return false
		case idReady:
			if sl.key == id {
				return true
			}
		}
		// idGone or a different key: keep probing.
	}
}

// add inserts id. Writer-only. No-op if already present.
func (s *idSet) add(id task.ID) {
	t := s.tab.Load()
	// Rebuild at 3/4 load (ready + tombstones): the table doubles
	// while live keys dominate, or just purges tombstones after churn.
	if 4*(t.used+1) >= 3*len(t.slots) {
		t = s.rebuild(t)
	}
	mask := uint64(len(t.slots) - 1)
	reuse := -1
	for i := idHash(id) & mask; ; i = (i + 1) & mask {
		sl := &t.slots[i]
		switch sl.state.Load() {
		case idReady:
			if sl.key == id {
				return
			}
		case idGone:
			if reuse < 0 {
				reuse = int(i)
			}
		case idEmpty:
			if reuse < 0 {
				reuse = int(i)
				t.used++
			}
			sl = &t.slots[reuse]
			sl.key = id
			sl.state.Store(idReady) // release: key visible before state
			t.live++
			return
		}
	}
}

// remove deletes id by tombstoning its slot. Writer-only.
func (s *idSet) remove(id task.ID) {
	t := s.tab.Load()
	mask := uint64(len(t.slots) - 1)
	for i := idHash(id) & mask; ; i = (i + 1) & mask {
		sl := &t.slots[i]
		switch sl.state.Load() {
		case idEmpty:
			return
		case idReady:
			if sl.key == id {
				sl.state.Store(idGone)
				t.live--
				return
			}
		}
	}
}

// each calls f for every live key (writer-side uses only: ID scans).
func (s *idSet) each(f func(task.ID)) {
	t := s.tab.Load()
	for i := range t.slots {
		if t.slots[i].state.Load() == idReady {
			f(t.slots[i].key)
		}
	}
}

// rebuild republishes the set without tombstones, doubling while live
// keys (not churn) fill the table. Readers caught on the old table
// finish their probe there — a lookup racing the swap linearizes just
// before whatever write triggered it.
func (s *idSet) rebuild(old *idTable) *idTable {
	size := len(old.slots)
	if 2*old.live >= size {
		size *= 2
	}
	t := &idTable{slots: make([]idSlot, size), live: old.live, used: old.live}
	mask := uint64(size - 1)
	for i := range old.slots {
		if old.slots[i].state.Load() != idReady {
			continue
		}
		id := old.slots[i].key
		for j := idHash(id) & mask; ; j = (j + 1) & mask {
			sl := &t.slots[j]
			if sl.state.Load() == idEmpty {
				sl.key = id
				sl.state.Store(idReady)
				break
			}
		}
	}
	s.tab.Store(t)
	return t
}
