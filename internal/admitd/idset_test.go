package admitd

import (
	"math/rand"
	"testing"

	"repro/internal/task"
)

// Edge-case coverage for the lock-free committed-ID set: tombstone
// reuse, rebuild threshold crossings, growth decisions, and probe
// chains that span tombstones. The tests live in-package on purpose —
// the interesting invariants (used/live bookkeeping, table size) are
// writer-side internals that the public surface only reveals as
// performance.

// idSetKeys collects the live keys via each.
func idSetKeys(s *idSet) map[task.ID]bool {
	got := map[task.ID]bool{}
	s.each(func(id task.ID) { got[id] = true })
	return got
}

// chainIDs returns n distinct ids that all hash to the same initial
// slot of a table with the given mask, forcing one linear probe chain.
func chainIDs(tb testing.TB, mask uint64, n int) []task.ID {
	tb.Helper()
	want := idHash(1) & mask
	ids := []task.ID{1}
	for id := task.ID(2); len(ids) < n; id++ {
		if idHash(id)&mask == want {
			ids = append(ids, id)
		}
		if id > 1<<20 {
			tb.Fatalf("no %d-way collision found for mask %d", n, mask)
		}
	}
	return ids
}

func TestIDSetTombstoneReuse(t *testing.T) {
	s := newIDSet()
	s.add(42)
	t0 := s.tab.Load()
	if t0.live != 1 || t0.used != 1 {
		t.Fatalf("after add: live=%d used=%d, want 1/1", t0.live, t0.used)
	}
	s.remove(42)
	if t0.live != 0 || t0.used != 1 {
		t.Fatalf("after remove: live=%d used=%d, want 0/1 (tombstone keeps the slot used)", t0.live, t0.used)
	}
	if s.has(42) {
		t.Fatal("has(42) after remove")
	}
	// Re-adding the same key must land on the tombstone, not burn a
	// fresh slot: used stays flat across arbitrary churn of one key.
	for i := 0; i < 100; i++ {
		s.add(42)
		s.remove(42)
	}
	s.add(42)
	t1 := s.tab.Load()
	if t1 != t0 {
		t.Fatal("single-key churn rebuilt the table; tombstone reuse failed")
	}
	if t1.live != 1 || t1.used != 1 {
		t.Fatalf("after churn: live=%d used=%d, want 1/1", t1.live, t1.used)
	}
	if !s.has(42) {
		t.Fatal("has(42) after re-add")
	}
}

func TestIDSetProbeChainPastTombstones(t *testing.T) {
	s := newIDSet()
	mask := uint64(len(s.tab.Load().slots) - 1)
	ids := chainIDs(t, mask, 5)
	for _, id := range ids {
		s.add(id)
	}
	// Tombstone the head and middle of the chain: lookups for the tail
	// must probe straight past both.
	s.remove(ids[0])
	s.remove(ids[2])
	for i, id := range ids {
		want := i != 0 && i != 2
		if s.has(id) != want {
			t.Fatalf("has(%d) = %v, want %v", id, !want, want)
		}
	}
	// Re-add the head: it reuses its own tombstone (first reusable slot
	// in the chain) and the tail stays reachable.
	s.add(ids[0])
	for i, id := range ids {
		want := i != 2
		if s.has(id) != want {
			t.Fatalf("after re-add: has(%d) = %v, want %v", id, !want, want)
		}
	}
}

func TestIDSetRebuildThreshold(t *testing.T) {
	cases := []struct {
		name     string
		live     int // distinct keys added and kept
		churn    int // extra keys added then removed (tombstones)
		wantSize int
	}{
		// 64-slot table rebuilds when used+1 reaches 3/4 of 64 = 48.
		{"under_threshold", 46, 0, idTableInit},
		// 47 live + the 48th add crosses; live dominates → double.
		{"grow_on_live", 48, 0, 2 * idTableInit},
		// Few live keys, tombstones push used over the threshold: the
		// rebuild purges churn and keeps the size.
		{"purge_keeps_size", 10, 37, idTableInit},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := newIDSet()
			next := task.ID(1)
			for i := 0; i < tc.churn; i++ {
				s.add(next)
				s.remove(next)
				next++
			}
			for i := 0; i < tc.live; i++ {
				s.add(next)
				next++
			}
			tab := s.tab.Load()
			if len(tab.slots) != tc.wantSize {
				t.Fatalf("table size %d, want %d (live=%d used=%d)",
					len(tab.slots), tc.wantSize, tab.live, tab.used)
			}
			if tab.live != tc.live {
				t.Fatalf("live=%d, want %d", tab.live, tc.live)
			}
			// Every kept key is present, every churned key absent.
			for id := task.ID(1); id < next; id++ {
				want := int(id) > tc.churn
				if s.has(id) != want {
					t.Fatalf("has(%d) = %v, want %v", id, !want, want)
				}
			}
		})
	}
}

// TestIDSetRebuildSizeDecision pins rebuild's growth rule at the
// boundary: a table doubles exactly when live keys fill half of it
// (2*live >= size), so a republished table is never denser than half.
// Driven through rebuild directly — reaching the boundary through
// add() would depend on which tombstones the hash chains happen to
// reuse.
func TestIDSetRebuildSizeDecision(t *testing.T) {
	build := func(live int) *idSet {
		s := newIDSet()
		for i := 0; i < live; i++ {
			s.add(task.ID(i + 1))
		}
		return s
	}
	under := build(idTableInit/2 - 1)
	if got := under.rebuild(under.tab.Load()); len(got.slots) != idTableInit {
		t.Fatalf("rebuild at live=%d grew to %d, want %d", idTableInit/2-1, len(got.slots), idTableInit)
	}
	at := build(idTableInit / 2)
	if got := at.rebuild(at.tab.Load()); len(got.slots) != 2*idTableInit {
		t.Fatalf("rebuild at live=%d kept %d, want %d", idTableInit/2, len(got.slots), 2*idTableInit)
	}
	// The rebuilt tables are fully usable: every key survives.
	for _, s := range []*idSet{under, at} {
		tab := s.tab.Load()
		if tab.used != tab.live {
			t.Fatalf("rebuilt table kept tombstones: used=%d live=%d", tab.used, tab.live)
		}
		for i := 0; i < tab.live; i++ {
			if !s.has(task.ID(i + 1)) {
				t.Fatalf("key %d lost in rebuild", i+1)
			}
		}
	}
}

func TestIDSetGrowthDuringRebuild(t *testing.T) {
	// Interleave adds and removes so rebuilds happen while tombstones
	// and live keys are mixed; the set must keep growing cleanly and
	// never lose a live key across consecutive rebuilds.
	s := newIDSet()
	live := map[task.ID]bool{}
	for id := task.ID(1); id <= 4096; id++ {
		s.add(id)
		live[id] = true
		if id%3 == 0 {
			s.remove(id / 3)
			delete(live, id/3)
		}
	}
	tab := s.tab.Load()
	if tab.live != len(live) {
		t.Fatalf("live=%d, want %d", tab.live, len(live))
	}
	if 4*tab.used >= 3*len(tab.slots) {
		t.Fatalf("table over load factor after growth: used=%d size=%d", tab.used, len(tab.slots))
	}
	got := idSetKeys(s)
	if len(got) != len(live) {
		t.Fatalf("each() saw %d keys, want %d", len(got), len(live))
	}
	for id := range live {
		if !s.has(id) {
			t.Fatalf("lost key %d across rebuilds", id)
		}
	}
	for id := task.ID(1); id <= 4096; id++ {
		if s.has(id) != live[id] {
			t.Fatalf("has(%d) = %v, want %v", id, !live[id], live[id])
		}
	}
}

// FuzzIDSet drives a random op sequence against a map model: after
// every op, membership, live count, and each() agree exactly.
func FuzzIDSet(f *testing.F) {
	f.Add(int64(1), uint(256))
	f.Add(int64(7), uint(2000))
	f.Fuzz(func(t *testing.T, seed int64, n uint) {
		if n > 20000 {
			n = 20000
		}
		rng := rand.New(rand.NewSource(seed))
		s := newIDSet()
		model := map[task.ID]bool{}
		for i := uint(0); i < n; i++ {
			id := task.ID(rng.Intn(512)) // small key space forces churn
			switch rng.Intn(3) {
			case 0, 1:
				s.add(id)
				model[id] = true
			case 2:
				s.remove(id)
				delete(model, id)
			}
			if s.has(id) != model[id] {
				t.Fatalf("op %d: has(%d) = %v, model %v", i, id, !model[id], model[id])
			}
		}
		tab := s.tab.Load()
		if tab.live != len(model) {
			t.Fatalf("live=%d, model has %d", tab.live, len(model))
		}
		got := idSetKeys(s)
		if len(got) != len(model) {
			t.Fatalf("each() saw %d keys, model has %d", len(got), len(model))
		}
		for id := range model {
			if !got[id] {
				t.Fatalf("each() missed %d", id)
			}
		}
	})
}
