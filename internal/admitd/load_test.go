package admitd

import (
	"context"
	"testing"

	"repro/client"
)

// TestAdmitdLoad is the load-generator smoke/acceptance run: ≥100k
// admission requests across ≥64 concurrent sessions through the full
// HTTP handler path, with zero unexpected errors. Short mode (the CI
// race job) scales the request count down but keeps the session
// fan-out.
func TestAdmitdLoad(t *testing.T) {
	cfg := LoadConfig{Sessions: 64, Requests: 100_000, Cores: 4, TasksPerSession: 12, Seed: 1}
	if testing.Short() {
		cfg.Requests = 10_000
	}
	srv, err := New(Config{MaxSessions: 2 * cfg.Sessions})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	stats, err := RunLoad(context.Background(), client.InProcess(srv), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(stats)
	if stats.Requests < int64(cfg.Requests) {
		t.Fatalf("issued %d/%d requests", stats.Requests, cfg.Requests)
	}
	if stats.Errors != 0 {
		t.Fatalf("%d unexpected errors", stats.Errors)
	}
	if stats.Admitted == 0 || stats.Tries == 0 || stats.Removes == 0 {
		t.Fatalf("degenerate mix: %v", stats)
	}
}
