package admitd

import (
	"context"
	"testing"

	"repro/client"
)

// TestAdmitdLoad is the load-generator smoke/acceptance run: ≥100k
// admission requests across ≥64 concurrent sessions through the full
// HTTP handler path, with zero unexpected errors. Short mode (the CI
// race job) scales the request count down but keeps the session
// fan-out.
func TestAdmitdLoad(t *testing.T) {
	cfg := LoadConfig{Sessions: 64, Requests: 100_000, Cores: 4, TasksPerSession: 12, Seed: 1}
	if testing.Short() {
		cfg.Requests = 10_000
	}
	srv, err := New(Config{MaxSessions: 2 * cfg.Sessions})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	stats, err := RunLoad(context.Background(), client.InProcess(srv), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(stats)
	if stats.Requests < int64(cfg.Requests) {
		t.Fatalf("issued %d/%d requests", stats.Requests, cfg.Requests)
	}
	if stats.Errors != 0 {
		t.Fatalf("%d unexpected errors", stats.Errors)
	}
	if stats.Admitted == 0 || stats.Tries == 0 || stats.Removes == 0 {
		t.Fatalf("degenerate mix: %v", stats)
	}
	if stats.ReadLatency.N == 0 || stats.WriteLatency.N == 0 || stats.ReadLatency.P99 < stats.ReadLatency.P50 {
		t.Fatalf("degenerate latency report: %v", stats)
	}
}

// TestAdmitdLoadReadHeavy drives the 90/10 read-heavy mix — the
// workload shape the lock-free read path exists for — and checks the
// mix parser's error paths.
func TestAdmitdLoadReadHeavy(t *testing.T) {
	for _, bad := range []string{"90", "90/20", "-1/101", "x/y", "90/10/50", "90/10x", " 90/10"} {
		if _, err := parseMix(bad); err == nil {
			t.Fatalf("mix %q must be rejected", bad)
		}
	}
	cfg := LoadConfig{Sessions: 8, Requests: 4_000, Cores: 4, TasksPerSession: 12, Seed: 2, Mix: "90/10"}
	if testing.Short() {
		cfg.Requests = 1_500
	}
	srv, err := New(Config{MaxSessions: 2 * cfg.Sessions})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	stats, err := RunLoad(context.Background(), client.InProcess(srv), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log(stats)
	if stats.Errors != 0 {
		t.Fatalf("%d unexpected errors", stats.Errors)
	}
	reads := int64(stats.ReadLatency.N)
	writes := int64(stats.WriteLatency.N)
	if reads+writes != stats.Requests || reads < 8*writes {
		t.Fatalf("mix drifted: %d reads, %d writes of %d", reads, writes, stats.Requests)
	}
}
