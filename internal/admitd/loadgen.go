package admitd

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/api"
	"repro/client"
)

// The load generator drives the server exclusively through the
// typed client SDK — it declares no wire types of its own, so a
// schema change breaks it at compile time, not at run time. The
// client's two transports (HTTP and in-process) make the same code
// serve as a remote load tool and a zero-socket smoke test.

// LoadConfig parameterizes a load run.
type LoadConfig struct {
	// Sessions is the number of concurrent cluster sessions.
	Sessions int
	// Requests is the total number of admission requests to issue
	// (seeding requests not counted).
	Requests int
	// Workers bounds client concurrency; 0 means 2×Sessions capped
	// at 64.
	Workers int
	// Cores per session (default 4); TasksPerSession seeds each
	// session's resident set via the server-side generator (default
	// 12).
	Cores           int
	TasksPerSession int
	// Policy is "fp" (default) or "edf".
	Policy string
	// Seed makes the generated workload deterministic.
	Seed int64
}

// LoadStats summarizes a load run (a local report, not a wire type —
// nothing in this file defines schema).
type LoadStats struct {
	Requests int64
	Errors   int64
	Admitted int64
	Rejected int64
	Tries    int64
	Removes  int64
	Elapsed  time.Duration
}

// Throughput is requests per second.
func (ls *LoadStats) Throughput() float64 {
	if ls.Elapsed <= 0 {
		return 0
	}
	return float64(ls.Requests) / ls.Elapsed.Seconds()
}

// String renders the run for CLI output.
func (ls *LoadStats) String() string {
	return fmt.Sprintf("%d requests in %v (%.0f req/s): %d admitted, %d rejected, %d tries, %d removes, %d errors",
		ls.Requests, ls.Elapsed.Round(time.Millisecond), ls.Throughput(),
		ls.Admitted, ls.Rejected, ls.Tries, ls.Removes, ls.Errors)
}

// RunLoad drives a mixed admission workload — admit, try, remove,
// state, stats — across many sessions concurrently, through the
// typed client (remote or in-process). Sessions are created and
// seeded first (server-side generated batches), then Workers
// goroutines issue the request mix; several workers share each
// session, so the server's cross-goroutine session access is
// exercised, not just its throughput.
func RunLoad(ctx context.Context, c *client.Client, cfg LoadConfig) (*LoadStats, error) {
	if cfg.Sessions <= 0 {
		cfg.Sessions = 8
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 1000
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2 * cfg.Sessions
		if cfg.Workers > 64 {
			cfg.Workers = 64
		}
	}
	if cfg.Cores <= 0 {
		cfg.Cores = 4
	}
	if cfg.TasksPerSession <= 0 {
		cfg.TasksPerSession = 12
	}
	lg := &loadGen{cfg: cfg, c: c}
	if err := lg.seed(ctx); err != nil {
		return nil, err
	}
	start := time.Now()
	var wg sync.WaitGroup
	per := cfg.Requests / cfg.Workers
	extra := cfg.Requests % cfg.Workers
	for wi := 0; wi < cfg.Workers; wi++ {
		n := per
		if wi < extra {
			n++
		}
		wg.Add(1)
		go func(wi, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(wi)*7919))
			for i := 0; i < n && ctx.Err() == nil; i++ {
				lg.one(ctx, rng)
			}
		}(wi, n)
	}
	wg.Wait()
	lg.stats.Elapsed = time.Since(start)
	lg.stats.Requests = lg.requests.Load()
	lg.stats.Errors = lg.errors.Load()
	lg.stats.Admitted = lg.admitted.Load()
	lg.stats.Rejected = lg.rejected.Load()
	lg.stats.Tries = lg.tries.Load()
	lg.stats.Removes = lg.removes.Load()
	if err := ctx.Err(); err != nil {
		return &lg.stats, err
	}
	return &lg.stats, nil
}

type loadGen struct {
	cfg LoadConfig
	c   *client.Client

	// sessions holds one shared handle per seeded session; nextID[s]
	// hands out unique task IDs, and a rolling window of recent IDs
	// feeds the remove mix.
	sessions []*client.Session
	nextID   []atomic.Int64

	requests, errors                   atomic.Int64
	admitted, rejected, tries, removes atomic.Int64
	stats                              LoadStats
}

// seed creates and populates the sessions.
func (lg *loadGen) seed(ctx context.Context) error {
	lg.sessions = make([]*client.Session, lg.cfg.Sessions)
	lg.nextID = make([]atomic.Int64, lg.cfg.Sessions)
	for i := 0; i < lg.cfg.Sessions; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		name := fmt.Sprintf("load-%04d", i)
		sess, err := lg.c.CreateSession(ctx, api.CreateSessionRequest{
			Name: name, Cores: lg.cfg.Cores, Policy: lg.cfg.Policy,
		})
		if api.IsCode(err, api.CodeSessionExists) {
			sess = lg.c.Session(name)
		} else if err != nil {
			return fmt.Errorf("loadgen: creating %s: %w", name, err)
		}
		// Seed the resident set with a server-side generated batch at
		// modest utilization so later probes mostly succeed.
		stream, err := sess.Batch(ctx, api.BatchRequest{Generate: &api.TaskGen{
			N:                lg.cfg.TasksPerSession,
			TotalUtilization: 0.5 * float64(lg.cfg.Cores),
			Seed:             lg.cfg.Seed + int64(i),
		}})
		if err != nil {
			return fmt.Errorf("loadgen: seeding %s: %w", name, err)
		}
		for stream.Next() {
		}
		_, err = stream.Summary()
		stream.Close() //nolint:errcheck // read-side close
		if err != nil {
			return fmt.Errorf("loadgen: seeding %s: %w", name, err)
		}
		lg.sessions[i] = sess
		// Generated IDs start above the resident set; leave headroom.
		lg.nextID[i].Store(int64(lg.cfg.TasksPerSession) + 1000)
	}
	return nil
}

// one issues a single request from the mix.
func (lg *loadGen) one(ctx context.Context, rng *rand.Rand) {
	si := rng.Intn(lg.cfg.Sessions)
	sess := lg.sessions[si]
	var err error
	switch kind := rng.Intn(10); {
	case kind < 2: // admit (first-fit) a small task, then forget about it later
		id := lg.nextID[si].Add(1)
		var v api.Verdict
		v, err = sess.Admit(ctx, api.AdmitRequest{Task: lg.smallTask(id, rng)})
		if err == nil {
			if v.Admitted {
				lg.admitted.Add(1)
			} else {
				lg.rejected.Add(1)
			}
		}
	case kind < 4: // remove one of the recently admitted tasks
		lo := int64(lg.cfg.TasksPerSession) + 1000
		hi := lg.nextID[si].Load()
		if hi <= lo {
			_, err = sess.State(ctx)
			break
		}
		id := lo + 1 + rng.Int63n(hi-lo)
		_, err = sess.Remove(ctx, id)
		if api.IsCode(err, api.CodeUnknownTask) {
			err = nil // already removed / never admitted: an expected miss
		}
		lg.removes.Add(1)
	case kind < 8: // try (probe-only): the warm-path hot loop
		id := int64(1 << 40) // never admitted, so never a duplicate
		_, err = sess.Try(ctx, api.AdmitRequest{Task: lg.smallTask(id, rng)})
		lg.tries.Add(1)
	case kind < 9: // state
		_, err = sess.State(ctx)
	default: // stats
		_, err = sess.Stats(ctx)
	}
	lg.requests.Add(1)
	if err != nil {
		lg.errors.Add(1)
	}
}

// smallTask draws a light task (≤2% core utilization) so sessions
// stay schedulable while the mix churns.
func (lg *loadGen) smallTask(id int64, rng *rand.Rand) api.Task {
	periodMs := int64(20 + rng.Intn(200))
	period := periodMs * int64(time.Millisecond)
	wcet := period / int64(50+rng.Intn(50))
	if wcet < 1000 {
		wcet = 1000
	}
	return api.Task{
		ID: id, WCETNs: wcet, PeriodNs: period,
		Priority: int(1000 + id%1000), WSS: 64 << 10,
	}
}
