package admitd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"
)

// Doer issues one HTTP request — http.Client satisfies it for a
// remote server, InProcess adapts a handler for zero-network load
// runs (tests, benchmarks, the self-contained `spadmitd load` mode).
type Doer interface {
	Do(*http.Request) (*http.Response, error)
}

// InProcess adapts an http.Handler into a Doer.
type InProcess struct {
	H http.Handler
}

// Do serves the request directly through the handler.
func (p InProcess) Do(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	p.H.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// LoadConfig parameterizes a load run.
type LoadConfig struct {
	// BaseURL prefixes every request path ("" for in-process).
	BaseURL string
	// Sessions is the number of concurrent cluster sessions.
	Sessions int
	// Requests is the total number of admission requests to issue
	// (seeding requests not counted).
	Requests int
	// Workers bounds client concurrency; 0 means 2×Sessions capped
	// at 64.
	Workers int
	// Cores per session (default 4); TasksPerSession seeds each
	// session's resident set via the server-side generator (default
	// 12).
	Cores           int
	TasksPerSession int
	// Policy is "fp" (default) or "edf".
	Policy string
	// Seed makes the generated workload deterministic.
	Seed int64
}

// LoadStats summarizes a load run.
type LoadStats struct {
	Requests int64         `json:"requests"`
	Errors   int64         `json:"errors"`
	Admitted int64         `json:"admitted"`
	Rejected int64         `json:"rejected"`
	Tries    int64         `json:"tries"`
	Removes  int64         `json:"removes"`
	Elapsed  time.Duration `json:"elapsed_ns"`
}

// Throughput is requests per second.
func (ls *LoadStats) Throughput() float64 {
	if ls.Elapsed <= 0 {
		return 0
	}
	return float64(ls.Requests) / ls.Elapsed.Seconds()
}

// String renders the run for CLI output.
func (ls *LoadStats) String() string {
	return fmt.Sprintf("%d requests in %v (%.0f req/s): %d admitted, %d rejected, %d tries, %d removes, %d errors",
		ls.Requests, ls.Elapsed.Round(time.Millisecond), ls.Throughput(),
		ls.Admitted, ls.Rejected, ls.Tries, ls.Removes, ls.Errors)
}

// RunLoad drives a mixed admission workload — admit, try, remove,
// state, stats — across many sessions concurrently. Sessions are
// created and seeded first (server-side taskgen batches), then
// Workers goroutines issue the request mix; several workers share
// each session, so the server's cross-goroutine session access is
// exercised, not just its throughput.
func RunLoad(ctx context.Context, d Doer, cfg LoadConfig) (*LoadStats, error) {
	if cfg.Sessions <= 0 {
		cfg.Sessions = 8
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 1000
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2 * cfg.Sessions
		if cfg.Workers > 64 {
			cfg.Workers = 64
		}
	}
	if cfg.Cores <= 0 {
		cfg.Cores = 4
	}
	if cfg.TasksPerSession <= 0 {
		cfg.TasksPerSession = 12
	}
	lg := &loadGen{cfg: cfg, d: d}
	if err := lg.seed(ctx); err != nil {
		return nil, err
	}
	start := time.Now()
	var wg sync.WaitGroup
	per := cfg.Requests / cfg.Workers
	extra := cfg.Requests % cfg.Workers
	for wi := 0; wi < cfg.Workers; wi++ {
		n := per
		if wi < extra {
			n++
		}
		wg.Add(1)
		go func(wi, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(wi)*7919))
			for i := 0; i < n && ctx.Err() == nil; i++ {
				lg.one(ctx, rng)
			}
		}(wi, n)
	}
	wg.Wait()
	lg.stats.Elapsed = time.Since(start)
	lg.stats.Requests = lg.requests.Load()
	lg.stats.Errors = lg.errors.Load()
	lg.stats.Admitted = lg.admitted.Load()
	lg.stats.Rejected = lg.rejected.Load()
	lg.stats.Tries = lg.tries.Load()
	lg.stats.Removes = lg.removes.Load()
	if err := ctx.Err(); err != nil {
		return &lg.stats, err
	}
	return &lg.stats, nil
}

type loadGen struct {
	cfg LoadConfig
	d   Doer

	// nextID[s] hands out unique task IDs per session; a rolling
	// window of recent IDs feeds the remove mix.
	nextID []atomic.Int64

	requests, errors                   atomic.Int64
	admitted, rejected, tries, removes atomic.Int64
	stats                              LoadStats
}

func (lg *loadGen) sessionName(i int) string { return fmt.Sprintf("load-%04d", i) }

// seed creates and populates the sessions.
func (lg *loadGen) seed(ctx context.Context) error {
	lg.nextID = make([]atomic.Int64, lg.cfg.Sessions)
	for i := 0; i < lg.cfg.Sessions; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		name := lg.sessionName(i)
		status, body, err := lg.do(ctx, "POST", "/v1/sessions", CreateSessionRequest{
			Name: name, Cores: lg.cfg.Cores, Policy: lg.cfg.Policy,
		})
		if err != nil {
			return err
		}
		if status != http.StatusCreated && status != http.StatusConflict {
			return fmt.Errorf("loadgen: creating %s: HTTP %d: %s", name, status, body)
		}
		// Seed the resident set with a server-side generated batch at
		// modest utilization so later probes mostly succeed.
		status, body, err = lg.do(ctx, "POST", "/v1/sessions/"+name+"/batch", map[string]any{
			"generate": map[string]any{
				"n":                 lg.cfg.TasksPerSession,
				"total_utilization": 0.5 * float64(lg.cfg.Cores),
				"seed":              lg.cfg.Seed + int64(i),
			},
		})
		if err != nil {
			return err
		}
		if status != http.StatusOK {
			return fmt.Errorf("loadgen: seeding %s: HTTP %d: %s", name, status, body)
		}
		// Generated IDs start above the resident set; leave headroom.
		lg.nextID[i].Store(int64(lg.cfg.TasksPerSession) + 1000)
	}
	return nil
}

// one issues a single request from the mix.
func (lg *loadGen) one(ctx context.Context, rng *rand.Rand) {
	si := rng.Intn(lg.cfg.Sessions)
	name := lg.sessionName(si)
	kind := rng.Intn(10)
	var status int
	var body []byte
	var err error
	switch {
	case kind < 2: // admit (first-fit) a small task, then forget about it later
		id := lg.nextID[si].Add(1)
		status, body, err = lg.do(ctx, "POST", "/v1/sessions/"+name+"/admit",
			AdmitRequest{Task: lg.smallTask(id, rng)})
		if err == nil && status == http.StatusOK {
			var v VerdictResponse
			if json.Unmarshal(body, &v) == nil && v.Admitted {
				lg.admitted.Add(1)
			} else {
				lg.rejected.Add(1)
			}
		}
	case kind < 4: // remove one of the recently admitted tasks
		lo := int64(lg.cfg.TasksPerSession) + 1000
		hi := lg.nextID[si].Load()
		if hi <= lo {
			status, body, err = lg.do(ctx, "GET", "/v1/sessions/"+name, nil)
			break
		}
		id := lo + 1 + rng.Int63n(hi-lo)
		status, body, err = lg.do(ctx, "POST", "/v1/sessions/"+name+"/remove", RemoveRequest{ID: id})
		if status == http.StatusNotFound {
			status = http.StatusOK // already removed / never admitted: an expected miss
		}
		lg.removes.Add(1)
	case kind < 8: // try (probe-only): the warm-path hot loop
		id := int64(1 << 40) // never admitted, so never a duplicate
		status, body, err = lg.do(ctx, "POST", "/v1/sessions/"+name+"/try",
			AdmitRequest{Task: lg.smallTask(id, rng)})
		lg.tries.Add(1)
	case kind < 9: // state
		status, body, err = lg.do(ctx, "GET", "/v1/sessions/"+name, nil)
	default: // stats
		status, body, err = lg.do(ctx, "GET", "/v1/sessions/"+name+"/stats", nil)
	}
	lg.requests.Add(1)
	if err != nil || status >= 500 || (status >= 400 && status != http.StatusConflict) {
		lg.errors.Add(1)
	}
	_ = body
}

// smallTask draws a light task (≤2% core utilization) so sessions
// stay schedulable while the mix churns.
func (lg *loadGen) smallTask(id int64, rng *rand.Rand) TaskJSON {
	periodMs := int64(20 + rng.Intn(200))
	period := periodMs * int64(time.Millisecond)
	wcet := period / int64(50+rng.Intn(50))
	if wcet < 1000 {
		wcet = 1000
	}
	return TaskJSON{
		ID: id, WCETNs: wcet, PeriodNs: period,
		Priority: int(1000 + id%1000), WSS: 64 << 10,
	}
}

// do issues one request and returns (status, body).
func (lg *loadGen) do(ctx context.Context, method, path string, payload any) (int, []byte, error) {
	var body io.Reader
	if payload != nil {
		data, err := json.Marshal(payload)
		if err != nil {
			return 0, nil, err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, lg.cfg.BaseURL+path, body)
	if err != nil {
		return 0, nil, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := lg.d.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close() //nolint:errcheck // read-side close
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, data, nil
}
