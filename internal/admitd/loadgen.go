package admitd

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/api"
	"repro/client"
	"repro/internal/telemetry"
)

// The load generator drives the server exclusively through the
// typed client SDK — it declares no wire types of its own, so a
// schema change breaks it at compile time, not at run time. The
// client's two transports (HTTP and in-process) make the same code
// serve as a remote load tool and a zero-socket smoke test.

// LoadConfig parameterizes a load run.
type LoadConfig struct {
	// Sessions is the number of concurrent cluster sessions.
	Sessions int
	// Requests is the total number of admission requests to issue
	// (seeding requests not counted).
	Requests int
	// Workers bounds client concurrency; 0 means 2×Sessions capped
	// at 64.
	Workers int
	// Cores per session (default 4); TasksPerSession seeds each
	// session's resident set via the server-side generator (default
	// 12).
	Cores           int
	TasksPerSession int
	// Policy is "fp" (default) or "edf".
	Policy string
	// Seed makes the generated workload deterministic.
	Seed int64
	// Mix is the read/write split as "R/W" percentages, e.g. "90/10":
	// R percent of requests are reads (try/state/stats — the server's
	// lock-free snapshot path), W percent writes (admit/remove — the
	// serialized actor path). Empty means "60/40", matching the
	// historical mix. Within reads: 70% try, 20% state, 10% stats;
	// within writes: admit and remove alternate by availability.
	Mix string
}

// parseMix validates "R/W" (strictly — no trailing input) and
// returns the read percentage.
func parseMix(mix string) (int, error) {
	if mix == "" {
		return 60, nil
	}
	rs, ws, ok := strings.Cut(mix, "/")
	if !ok {
		return 0, fmt.Errorf("loadgen: bad mix %q (want \"R/W\", e.g. 90/10)", mix)
	}
	r, err1 := strconv.Atoi(rs)
	w, err2 := strconv.Atoi(ws)
	if err1 != nil || err2 != nil {
		return 0, fmt.Errorf("loadgen: bad mix %q (want \"R/W\", e.g. 90/10)", mix)
	}
	if r < 0 || w < 0 || r+w != 100 {
		return 0, fmt.Errorf("loadgen: mix %q must be nonnegative and sum to 100", mix)
	}
	return r, nil
}

// LatencySummary is one op class's latency distribution.
type LatencySummary struct {
	N             int
	P50, P95, P99 time.Duration
}

// String renders "n=… p50=… p95=… p99=…".
func (l LatencySummary) String() string {
	if l.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d p50=%v p95=%v p99=%v",
		l.N, l.P50.Round(time.Microsecond), l.P95.Round(time.Microsecond), l.P99.Round(time.Microsecond))
}

// summarize computes percentiles over a latency sample (sorts in
// place).
func summarize(lat []time.Duration) LatencySummary {
	if len(lat) == 0 {
		return LatencySummary{}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pick := func(p float64) time.Duration {
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	return LatencySummary{N: len(lat), P50: pick(0.50), P95: pick(0.95), P99: pick(0.99)}
}

// LoadStats summarizes a load run (a local report, not a wire type —
// nothing in this file defines schema).
type LoadStats struct {
	Requests int64
	Errors   int64
	Admitted int64
	Rejected int64
	Tries    int64
	Removes  int64
	Elapsed  time.Duration
	// AllocsPerOp is the process-wide heap allocations per request
	// over the timed window (runtime mallocs delta / requests). With
	// the in-process transport it covers client and server both — the
	// number the allocation-free read path is accountable to; over
	// HTTP it only sees the client side.
	AllocsPerOp float64
	// Per-op-class latency percentiles: reads ride the lock-free
	// snapshot path, writes the session actor.
	ReadLatency  LatencySummary
	WriteLatency LatencySummary
}

// Throughput is requests per second.
func (ls *LoadStats) Throughput() float64 {
	if ls.Elapsed <= 0 {
		return 0
	}
	return float64(ls.Requests) / ls.Elapsed.Seconds()
}

// String renders the run for CLI output.
func (ls *LoadStats) String() string {
	return fmt.Sprintf("%d requests in %v (%.0f req/s, %.1f allocs/op): %d admitted, %d rejected, %d tries, %d removes, %d errors\n  reads  (snapshot path): %v\n  writes (actor path):    %v",
		ls.Requests, ls.Elapsed.Round(time.Millisecond), ls.Throughput(), ls.AllocsPerOp,
		ls.Admitted, ls.Rejected, ls.Tries, ls.Removes, ls.Errors,
		ls.ReadLatency, ls.WriteLatency)
}

// CrossCheckMetrics compares the client-observed latency
// percentiles of a finished load run against the server's scraped
// histograms (admitd_http_request_duration_seconds, path="read" and
// "actor"). The two views measure different spans — the client adds
// transport, the server buckets at powers of two — so agreement is
// asserted only to bucket resolution: the client percentile must lie
// within [bound/4, bound*4] of the server's bucketed quantile.
// Divergence is a warning (one message per failed percentile), not
// an error: it flags a broken instrument or a pathological
// transport, both worth a human look and neither worth failing a
// load run over.
func CrossCheckMetrics(expo []byte, st *LoadStats) []string {
	var warns []string
	check := func(path string, sum LatencySummary) {
		if sum.N == 0 {
			return
		}
		h := telemetry.ExtractHistogram(expo, "admitd_http_request_duration_seconds", `path="`+path+`"`)
		if h == nil {
			warns = append(warns, fmt.Sprintf("metrics cross-check: no %s-path histogram in scrape", path))
			return
		}
		if h.Count == 0 {
			warns = append(warns, fmt.Sprintf("metrics cross-check: %s-path histogram empty (client saw %d ops)", path, sum.N))
			return
		}
		for _, pc := range []struct {
			q      float64
			name   string
			client time.Duration
		}{{0.50, "p50", sum.P50}, {0.95, "p95", sum.P95}, {0.99, "p99", sum.P99}} {
			bound := h.Quantile(pc.q) // seconds, bucket upper bound
			cs := pc.client.Seconds()
			if cs > bound*4 || cs < bound/16 {
				warns = append(warns, fmt.Sprintf(
					"metrics cross-check: %s-path %s diverges: client %v vs server bucket ≤%.3gs",
					path, pc.name, pc.client, bound))
			}
		}
	}
	check("read", st.ReadLatency)
	check("actor", st.WriteLatency)
	return warns
}

// RunLoad drives a mixed admission workload — admit, try, remove,
// state, stats — across many sessions concurrently, through the
// typed client (remote or in-process). Sessions are created and
// seeded first (server-side generated batches), then Workers
// goroutines issue the request mix; several workers share each
// session, so the server's cross-goroutine session access is
// exercised, not just its throughput.
func RunLoad(ctx context.Context, c *client.Client, cfg LoadConfig) (*LoadStats, error) {
	if cfg.Sessions <= 0 {
		cfg.Sessions = 8
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 1000
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2 * cfg.Sessions
		if cfg.Workers > 64 {
			cfg.Workers = 64
		}
	}
	if cfg.Cores <= 0 {
		cfg.Cores = 4
	}
	if cfg.TasksPerSession <= 0 {
		cfg.TasksPerSession = 12
	}
	readPct, err := parseMix(cfg.Mix)
	if err != nil {
		return nil, err
	}
	lg := &loadGen{cfg: cfg, c: c, readPct: readPct}
	if err := lg.seed(ctx); err != nil {
		return nil, err
	}
	var wg sync.WaitGroup
	per := cfg.Requests / cfg.Workers
	extra := cfg.Requests % cfg.Workers
	// Per-worker latency samples (contention-free; merged at the end).
	// Every buffer is sized up front — a worker issues at most n
	// requests — so the timed window never grows a sample slice: the
	// reported allocs/op charges the admission paths, not the
	// measurement harness.
	readLat := make([][]time.Duration, cfg.Workers)
	writeLat := make([][]time.Duration, cfg.Workers)
	for wi := 0; wi < cfg.Workers; wi++ {
		n := per
		if wi < extra {
			n++
		}
		readLat[wi] = make([]time.Duration, 0, n)
		writeLat[wi] = make([]time.Duration, 0, n)
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for wi := 0; wi < cfg.Workers; wi++ {
		n := per
		if wi < extra {
			n++
		}
		wg.Add(1)
		go func(wi, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(wi)*7919))
			// Worker-owned state scratch: StateInto reuses its slices
			// across polls, keeping the read mix allocation-free.
			var st api.State
			for i := 0; i < n && ctx.Err() == nil; i++ {
				t0 := time.Now()
				isRead := lg.one(ctx, rng, &st)
				d := time.Since(t0)
				if isRead {
					readLat[wi] = append(readLat[wi], d)
				} else {
					writeLat[wi] = append(writeLat[wi], d)
				}
			}
		}(wi, n)
	}
	wg.Wait()
	lg.stats.Elapsed = time.Since(start)
	runtime.ReadMemStats(&m1)
	allR := make([]time.Duration, 0, cfg.Requests)
	allW := make([]time.Duration, 0, cfg.Requests)
	for wi := range readLat {
		allR = append(allR, readLat[wi]...)
		allW = append(allW, writeLat[wi]...)
	}
	lg.stats.ReadLatency = summarize(allR)
	lg.stats.WriteLatency = summarize(allW)
	lg.stats.Requests = lg.requests.Load()
	if lg.stats.Requests > 0 {
		lg.stats.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(lg.stats.Requests)
	}
	lg.stats.Errors = lg.errors.Load()
	lg.stats.Admitted = lg.admitted.Load()
	lg.stats.Rejected = lg.rejected.Load()
	lg.stats.Tries = lg.tries.Load()
	lg.stats.Removes = lg.removes.Load()
	if err := ctx.Err(); err != nil {
		return &lg.stats, err
	}
	return &lg.stats, nil
}

type loadGen struct {
	cfg     LoadConfig
	c       *client.Client
	readPct int // percentage of requests that are reads

	// sessions holds one shared handle per seeded session; nextID[s]
	// hands out unique task IDs, and a rolling window of recent IDs
	// feeds the remove mix.
	sessions []*client.Session
	nextID   []atomic.Int64

	requests, errors                   atomic.Int64
	admitted, rejected, tries, removes atomic.Int64
	stats                              LoadStats
}

// seed creates and populates the sessions.
func (lg *loadGen) seed(ctx context.Context) error {
	lg.sessions = make([]*client.Session, lg.cfg.Sessions)
	lg.nextID = make([]atomic.Int64, lg.cfg.Sessions)
	for i := 0; i < lg.cfg.Sessions; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		name := fmt.Sprintf("load-%04d", i)
		sess, err := lg.c.CreateSession(ctx, api.CreateSessionRequest{
			Name: name, Cores: lg.cfg.Cores, Policy: lg.cfg.Policy,
		})
		if api.IsCode(err, api.CodeSessionExists) {
			sess = lg.c.Session(name)
		} else if err != nil {
			return fmt.Errorf("loadgen: creating %s: %w", name, err)
		}
		// Seed the resident set with a server-side generated batch at
		// modest utilization so later probes mostly succeed.
		stream, err := sess.Batch(ctx, api.BatchRequest{Generate: &api.TaskGen{
			N:                lg.cfg.TasksPerSession,
			TotalUtilization: 0.5 * float64(lg.cfg.Cores),
			Seed:             lg.cfg.Seed + int64(i),
		}})
		if err != nil {
			return fmt.Errorf("loadgen: seeding %s: %w", name, err)
		}
		for stream.Next() {
		}
		_, err = stream.Summary()
		stream.Close() //nolint:errcheck // read-side close
		if err != nil {
			return fmt.Errorf("loadgen: seeding %s: %w", name, err)
		}
		lg.sessions[i] = sess
		// Generated IDs start above the resident set; leave headroom.
		lg.nextID[i].Store(int64(lg.cfg.TasksPerSession) + 1000)
	}
	return nil
}

// one issues a single request from the mix; reports whether it was a
// read (snapshot path) or a write (actor path).
func (lg *loadGen) one(ctx context.Context, rng *rand.Rand, st *api.State) bool {
	si := rng.Intn(lg.cfg.Sessions)
	sess := lg.sessions[si]
	var err error
	isRead := rng.Intn(100) < lg.readPct
	if isRead {
		switch kind := rng.Intn(10); {
		case kind < 7: // try (probe-only): the snapshot-path hot loop
			id := int64(1 << 40) // never admitted, so never a duplicate
			_, err = sess.Try(ctx, api.AdmitRequest{Task: lg.smallTask(id, rng)})
			lg.tries.Add(1)
		case kind < 9: // state
			err = sess.StateInto(ctx, st)
		default: // stats
			_, err = sess.Stats(ctx)
		}
	} else {
		// Writes alternate: admit a fresh small task, or remove one of
		// the recently admitted (an expected miss is not an error).
		lo := int64(lg.cfg.TasksPerSession) + 1000
		hi := lg.nextID[si].Load()
		if rng.Intn(2) == 0 || hi <= lo {
			id := lg.nextID[si].Add(1)
			var v api.Verdict
			v, err = sess.Admit(ctx, api.AdmitRequest{Task: lg.smallTask(id, rng)})
			if err == nil {
				if v.Admitted {
					lg.admitted.Add(1)
				} else {
					lg.rejected.Add(1)
				}
			}
		} else {
			id := lo + 1 + rng.Int63n(hi-lo)
			_, err = sess.Remove(ctx, id)
			if api.IsCode(err, api.CodeUnknownTask) {
				err = nil // already removed / never admitted: an expected miss
			}
			lg.removes.Add(1)
		}
	}
	lg.requests.Add(1)
	if err != nil {
		lg.errors.Add(1)
	}
	return isRead
}

// smallTask draws a light task (≤2% core utilization) from a finite
// catalog of task classes — discrete periods, budgets and priority
// bands, the shape of real admission traffic (task *types*, not
// unique tasks). Sessions stay schedulable while the mix churns, and
// repeated try probes of the same class hit the server's snapshot
// probe memo the way production traffic would.
func (lg *loadGen) smallTask(id int64, rng *rand.Rand) api.Task {
	periodMs := int64(20 * (1 + rng.Intn(10))) // 20ms..200ms in 20ms steps
	period := periodMs * int64(time.Millisecond)
	wcet := period / int64(50+10*rng.Intn(5))
	if wcet < 1000 {
		wcet = 1000
	}
	return api.Task{
		ID: id, WCETNs: wcet, PeriodNs: period,
		Priority: int(1000 + id%16), WSS: 64 << 10,
	}
}
