package admitd

import (
	"repro/internal/analysis"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

// serverMetrics is the daemon's telemetry plane: every instrument
// the transport, the session actors, the read path, the store and
// the analysis collectors report into, owned by one per-server
// registry (GET /metrics). Hot-path instruments are sharded
// counters/histograms — pure atomic adds, no allocation — so the
// lock-free read path stays 0 allocs/op with telemetry enabled;
// occupancy-style values are computed at scrape time from the same
// atomics the handlers already maintain.
type serverMetrics struct {
	reg *telemetry.Registry

	// Transport: per-route request counters (created per route at
	// registration), one latency histogram per path class, and the
	// in-flight gauge.
	inflight *telemetry.Gauge
	latRead  *telemetry.Histogram
	latActor *telemetry.Histogram

	// Actor plane: group-commit drain sizes and snapshot activity.
	drainSize *telemetry.Histogram
	publishes *telemetry.Counter
	forks     *telemetry.Counter

	// stateRead's per-snapshot rendered-body memo (server-wide
	// totals; the per-session split rides the session stats
	// response).
	stateHits   *telemetry.Counter
	stateMisses *telemetry.Counter

	// Fixed-point iteration distribution, observed per read-path
	// probe via the analysis Collector hook (group grain: exact
	// sum/count, buckets at the per-probe mean).
	fpIters *telemetry.Histogram

	// SSE feed plane.
	feedSubs    *telemetry.Gauge
	feedEvents  *telemetry.Counter
	feedDropped *telemetry.Counter

	// Durability plane: commit-log activity. The counters/histograms
	// are registered unconditionally (zero without -data-dir) so the
	// exposition schema does not depend on configuration; the rates
	// and occupancy series read the wal plane at scrape time.
	walFsyncLat     *telemetry.Histogram
	walRecsPerDrain *telemetry.Histogram
	walPayloadBytes *telemetry.Counter
	walErrors       *telemetry.Counter
	walCheckpoints  *telemetry.Counter

	// Scrape-time aggregate of admission stats: collector totals
	// flushed by closed sessions plus every live session's view.
	agg analysis.AdmissionStats
}

// Histogram shapes. Latencies span 256ns–2.1s in powers of two;
// drain sizes 1–32 (maxDrain); fixed-point iterations 1–4096.
const (
	latMinShift  = 8
	latMaxShift  = 31
	drainMaxLog2 = 5
	fpMaxLog2    = 12
	// Commit-log records staged per drain: a single batch call can
	// append far more than maxDrain records.
	walRecsMaxLog2 = 12
)

func newServerMetrics(store *Store) *serverMetrics {
	reg := telemetry.NewRegistry()
	m := &serverMetrics{reg: reg}

	m.inflight = reg.NewGauge("admitd_http_inflight",
		"Requests currently being served.")
	m.latRead = reg.NewHistogram("admitd_http_request_duration_seconds",
		"Request latency by path class: read is the lock-free snapshot path (try/state/stats/batch try-only), actor the serialized write path.",
		telemetry.UnitSeconds, latMinShift, latMaxShift, telemetry.Label{Key: "path", Value: "read"})
	m.latActor = reg.NewHistogram("admitd_http_request_duration_seconds",
		"Request latency by path class: read is the lock-free snapshot path (try/state/stats/batch try-only), actor the serialized write path.",
		telemetry.UnitSeconds, latMinShift, latMaxShift, telemetry.Label{Key: "path", Value: "actor"})

	m.drainSize = reg.NewHistogram("admitd_group_commit_drain_size",
		"Mailbox calls coalesced per actor drain (one snapshot publish each).",
		telemetry.UnitCount, 0, drainMaxLog2)
	m.publishes = reg.NewCounter("admitd_snapshot_publishes_total",
		"Snapshot publications (drains that committed at least one mutation).")
	m.forks = reg.NewCounter("admitd_snapshot_forks_total",
		"Snapshot forks taken by the lock-free read path.")

	m.stateHits = reg.NewCounter("admitd_state_cache_hits_total",
		"State reads served from the per-snapshot rendered-body memo.")
	m.stateMisses = reg.NewCounter("admitd_state_cache_misses_total",
		"State reads that re-rendered the committed assignment (fresh snapshot sequence).")

	m.fpIters = reg.NewHistogram("admitd_fp_iterations",
		"Fixed-point iterations per solve on the read path (bucketed at per-probe mean; sum and count exact).",
		telemetry.UnitCount, 0, fpMaxLog2)

	// Admission-stats aggregate: refreshed once per scrape so the
	// series below are mutually consistent.
	reg.OnScrape(func() {
		agg := store.coll.Snapshot()
		store.Range(func(sess *Session) {
			if st, err := sess.statsRead(); err == nil {
				agg = agg.Add(st)
			}
		})
		m.agg = agg
	})
	admission := func(name, help string, f func() float64) {
		reg.NewCounterFunc(name, help, f)
	}
	admission("admitd_admission_probes_total",
		"TryPlace/TrySplit probes across all sessions (live and flushed).",
		func() float64 { return float64(m.agg.Probes) })
	admission("admitd_admission_full_tests_total",
		"Full schedulability tests across all sessions.",
		func() float64 { return float64(m.agg.FullTests) })
	admission("admitd_admission_core_tests_total",
		"Single-core admission evaluations requested.",
		func() float64 { return float64(m.agg.CoreTests) })
	admission("admitd_admission_verdict_hits_total",
		"Core tests served from the per-core verdict memo.",
		func() float64 { return float64(m.agg.VerdictHits) })
	admission("admitd_admission_fp_solves_total",
		"Response-time fixed points solved.",
		func() float64 { return float64(m.agg.FPSolves) })
	admission("admitd_admission_fp_iterations_total",
		"Iterations those solves took.",
		func() float64 { return float64(m.agg.FPIterations) })
	admission("admitd_admission_warm_starts_total",
		"Solves that began from a previously converged value.",
		func() float64 { return float64(m.agg.WarmStarts) })

	m.feedSubs = reg.NewGauge("admitd_feed_subscribers",
		"Live SSE change-feed subscriptions.")
	m.feedEvents = reg.NewCounter("admitd_feed_events_total",
		"Change events published to SSE subscribers.")
	m.feedDropped = reg.NewCounter("admitd_feed_dropped_subscribers_total",
		"SSE subscriptions disconnected by the slow-consumer drop policy.")

	// Durability plane (zero-valued without -data-dir).
	m.walFsyncLat = reg.NewHistogram("admitd_wal_fsync_duration_seconds",
		"Commit-log fsync latency (background committer under the group policy, ack-path batches under always).",
		telemetry.UnitSeconds, latMinShift, latMaxShift)
	m.walRecsPerDrain = reg.NewHistogram("admitd_wal_records_per_drain",
		"Commit-log records staged by one actor drain (one commit boundary).",
		telemetry.UnitCount, 0, walRecsMaxLog2)
	m.walPayloadBytes = reg.NewCounter("admitd_wal_payload_bytes_total",
		"Commit-log record payload bytes appended by session mutations.")
	m.walErrors = reg.NewCounter("admitd_wal_errors_total",
		"Commit-log append/fsync/compaction failures (durability degraded, admission unaffected).")
	m.walCheckpoints = reg.NewCounter("admitd_wal_checkpoints_total",
		"Session checkpoints written by the periodic snapshot-compaction driver.")
	plane := store.plane
	walStat := func(f func(wal.Stats) float64) func() float64 {
		return func() float64 {
			if plane == nil {
				return 0
			}
			return f(plane.stats())
		}
	}
	reg.NewCounterFunc("admitd_wal_appends_total",
		"Records appended to the commit logs since open (create/admit/split/remove/delete).",
		walStat(func(s wal.Stats) float64 { return float64(s.Appends) }))
	reg.NewCounterFunc("admitd_wal_fsyncs_total",
		"Commit-log fsyncs since open.",
		walStat(func(s wal.Stats) float64 { return float64(s.Fsyncs) }))
	reg.NewGaugeFunc("admitd_wal_segments",
		"Live commit-log segments across all shards (shrinks as compaction truncates).",
		walStat(func(s wal.Stats) float64 { return float64(s.Segments) }))
	reg.NewGaugeFunc("admitd_wal_bytes",
		"Bytes held by the commit-log segments across all shards.",
		walStat(func(s wal.Stats) float64 { return float64(s.Bytes) }))
	reg.NewGaugeFunc("admitd_wal_streams",
		"Live (non-deleted) durable session streams.",
		func() float64 {
			if plane == nil {
				return 0
			}
			live, _ := plane.streamCounts()
			return float64(live)
		})
	reg.NewGaugeFunc("admitd_wal_checkpointed_sessions",
		"Durable session streams with an on-disk checkpoint bounding their replay.",
		func() float64 {
			if plane == nil {
				return 0
			}
			_, ckpt := plane.streamCounts()
			return float64(ckpt)
		})

	// Store occupancy: live counts from the registry's atomics, plus
	// per-shard map sizes sampled once per scrape.
	reg.NewGaugeFunc("admitd_sessions_live",
		"Live sessions in the store.",
		func() float64 { return float64(store.count.Load()) })
	reg.NewCounterFunc("admitd_sessions_created_total",
		"Sessions ever created.",
		func() float64 { return float64(store.created.Load()) })
	reg.NewCounterFunc("admitd_sessions_evicted_total",
		"Sessions evicted by the LRU cap.",
		func() float64 { return float64(store.evicted.Load()) })
	reg.NewCounterFunc("admitd_sessions_restored_total",
		"Sessions restored from snapshots.",
		func() float64 { return float64(store.restored.Load()) })
	reg.NewCounterFunc("admitd_sessions_deleted_total",
		"Sessions explicitly deleted.",
		func() float64 { return float64(store.deleted.Load()) })
	reg.NewGaugeFunc("admitd_session_tasks",
		"Committed tasks across live sessions (ID-set occupancy).",
		func() float64 {
			var n int64
			store.Range(func(sess *Session) { n += sess.nTasks.Load() })
			return float64(n)
		})
	reg.NewGaugeFunc("admitd_state_memo_sessions",
		"Live sessions holding a rendered state memo.",
		func() float64 {
			var n int64
			store.Range(func(sess *Session) {
				if sess.stateCache.Load() != nil {
					n++
				}
			})
			return float64(n)
		})
	var shardSizes [numShards]int
	reg.OnScrape(func() { store.shardSizes(&shardSizes) })
	for i := range shardSizes {
		i := i
		reg.NewGaugeFunc("admitd_store_shard_sessions",
			"Sessions per store shard (map striping balance).",
			func() float64 { return float64(shardSizes[i]) },
			telemetry.Label{Key: "shard", Value: shardLabel(i)})
	}

	telemetry.RegisterRuntime(reg)
	if plane != nil {
		plane.met.Store(m)
	}
	return m
}

// routeCounter registers one per-route series of the request-count
// family (called once per route at server construction).
func (m *serverMetrics) routeCounter(route string) *telemetry.Counter {
	return m.reg.NewCounter("admitd_http_requests_total",
		"Requests served, by route.",
		telemetry.Label{Key: "route", Value: route})
}

// fpObserver is the Collector hook attached to every session's
// read-stats collector (allocation-free: one closure per server).
func (m *serverMetrics) fpObserver() func(iterations, solves int64) {
	h := m.fpIters
	return func(iterations, solves int64) { h.ObserveGroup(iterations, solves) }
}

func shardLabel(i int) string {
	// Two digits keep lexical and numeric order identical in scrape
	// output (00..15).
	return string([]byte{'0' + byte(i/10), '0' + byte(i%10)})
}
