package admitd

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync/atomic"
	"testing"

	"repro/api"
	"repro/client"
	"repro/internal/overhead"
	"repro/internal/task"
	"repro/internal/wal"
)

// The perf rig: the session read-mix benchmark and the loadgen
// throughput run packaged as plain functions, so cmd/spbench can
// drive them across GOMAXPROCS settings and emit BENCH_admitd.json
// without going through `go test`. The in-tree benchmarks
// (readpath_bench_test.go) call the same drivers — one workload
// definition, two harnesses.

// RigResult is one measured configuration in the rig's stable output
// schema (BENCH_admitd.json "results" entries).
type RigResult struct {
	// Name identifies the benchmark and variant, e.g.
	// "read_mix/readpath" or "admitd_throughput".
	Name string `json:"name"`
	// GOMAXPROCS the measurement ran under.
	GOMAXPROCS int `json:"gomaxprocs"`
	// NsPerOp is wall time per operation (mix request, load request,
	// sweep, or probe, per the benchmark).
	NsPerOp float64 `json:"ns_per_op"`
	// OpsPerSec is the matching rate (1e9/NsPerOp).
	OpsPerSec float64 `json:"ops_per_sec"`
	// AllocsPerOp is heap allocations per operation.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Desc says what one op is.
	Desc string `json:"desc,omitempty"`
}

// benchTask is a deterministic light task (≤1.5% core utilization)
// drawn from a finite catalog of classes, so repeated probes hit the
// snapshot verdict memo the way real admission traffic would.
func benchTask(id int64) api.Task {
	period := int64(20+id%180) * 1_000_000
	wcet := period / 80
	return api.Task{ID: id, WCETNs: wcet, PeriodNs: period, Priority: int(100 + id%4000), WSS: 64 << 10}
}

// rigSession seeds one 4-core session with 14 resident tasks: 8 on
// core 3 — a loaded core that pins the global queue bound N, the
// steady-state shape of a cluster under sustained load — and 2 on
// each churn core, so the 10%-write churn (cores 0–2, ±1 task) never
// moves N and the per-core caches behave as they would in production.
func rigSession() (*Session, error) {
	s := newSession("bench", task.FixedPriority, overhead.PaperModel(), task.NewAssignment(4), nil, nil)
	admit := func(id int64, core int) error {
		req := api.AdmitRequest{Task: benchTask(id), Core: &core}
		var v api.Verdict
		var err error
		if cerr := s.call(func() { v, err = s.admitLocked(req) }); cerr != nil {
			return cerr
		}
		if err != nil || !v.Admitted {
			return fmt.Errorf("seed %d on core %d: %+v %v", id, core, v, err)
		}
		return nil
	}
	id := int64(1)
	for i := 0; i < 8; i++ {
		if err := admit(id, 3); err != nil {
			s.close()
			return nil, err
		}
		id++
	}
	for c := 0; c < 3; c++ {
		for j := 0; j < 2; j++ {
			if err := admit(id, c); err != nil {
				s.close()
				return nil, err
			}
			id++
		}
	}
	return s, nil
}

// readMixLoop drives the 90/10 read/write session mix (40% try over
// 16 task classes, 40% state, 10% stats; writes admit/remove through
// the actor). variant "readpath" serves reads from the lock-free
// snapshot path; "actor" serializes every read through the session
// actor, recomputed per call (the pre-fork behavior). Errors are
// counted, not fataled, so the same loop runs under testing.Benchmark.
func readMixLoop(b *testing.B, s *Session, variant string, errs *atomic.Int64) {
	var ids atomic.Int64
	ids.Store(1 << 20)
	b.SetParallelism(8) // goroutines per GOMAXPROCS
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		g := ids.Add(1)
		var outstanding int64 // ≤1 churn task per goroutine
		// Request core slots live outside the op loop: their addresses
		// go into AdmitRequest.Core, so declaring them per iteration
		// escapes one heap allocation per op onto the read path.
		var tc, wc int
		i := int(g % 100)
		for pb.Next() {
			i++
			op := i % 100
			switch {
			case op < 10:
				// 10% writes through the actor in both variants: admit a
				// churn task on a rotating core, remove it on the next
				// write — the session stays in steady state instead of
				// ballooning with b.N.
				if outstanding != 0 {
					rm := outstanding
					outstanding = 0
					if err := s.call(func() { s.removeLocked(task.ID(rm)) }); err != nil { //nolint:errcheck // churn
						errs.Add(1)
						return
					}
				} else {
					id := ids.Add(1)
					wc = int(id % 3) // churn cores 0..2; core 3 pins N
					req := api.AdmitRequest{Task: benchTask(id), Core: &wc}
					var v api.Verdict
					if err := s.call(func() { v, _ = s.admitLocked(req) }); err != nil {
						errs.Add(1)
						return
					}
					if v.Admitted {
						outstanding = id
					}
				}
			case op < 50:
				// 40% try, drawn from 16 task classes against a rotating
				// explicit core (placement probing).
				tc = i % 4
				req := api.AdmitRequest{Task: benchTask(1<<40 + (g+int64(i))%16), Core: &tc}
				if variant == "readpath" {
					if _, err := s.tryRead(req); err != nil {
						errs.Add(1)
						return
					}
				} else {
					var err error
					if cerr := s.call(func() { _, err = s.tryLocked(req) }); cerr != nil || err != nil {
						errs.Add(1)
						return
					}
				}
			case op < 90: // 40% state
				if variant == "readpath" {
					s.stateRead() //nolint:errcheck // bench
				} else {
					s.call(func() { stateOnActor(s) }) //nolint:errcheck // bench
				}
			default: // 10% stats
				if variant == "readpath" {
					s.statsRead() //nolint:errcheck // bench
				} else {
					s.call(func() { s.statsLocked() }) //nolint:errcheck // bench
				}
			}
		}
	})
}

// stateOnActor recomputes the committed state on the actor the way
// the pre-fork server did: full render plus the context's cached full
// test per call, no snapshot memoization. Bench baseline only.
func stateOnActor(s *Session) api.State {
	resp := api.State{
		Name:   s.name,
		Cores:  s.a.NumCores,
		Policy: policyName(s.policy),
	}
	for c := 0; c < s.a.NumCores; c++ {
		u := 0.0
		for _, t := range s.a.Normal[c] {
			resp.Tasks = append(resp.Tasks, fromTask(t, c))
			u += t.Utilization()
		}
		for _, sp := range s.a.Splits {
			for _, p := range sp.Parts {
				if p.Core == c {
					u += float64(p.Budget) / float64(sp.Task.Period)
				}
			}
		}
		resp.CoreUtilization = append(resp.CoreUtilization, u)
	}
	for _, sp := range s.a.Splits {
		resp.Splits = append(resp.Splits, fromSplit(sp))
	}
	ok := s.actx.Schedulable()
	resp.Schedulable = &ok
	return resp
}

// RigReadMix measures the session read mix for one variant at the
// current GOMAXPROCS. Best of three 1-second runs: the minimum is the
// standard low-noise estimator for a regression gate — a single run
// on a shared box swings well past the gate's 10% tolerance.
func RigReadMix(variant string) (RigResult, error) {
	s, err := rigSession()
	if err != nil {
		return RigResult{}, err
	}
	defer s.close()
	res := RigResult{
		Name: "read_mix/" + variant,
		Desc: "one request of the 90/10 read/write session mix (8 goroutines per GOMAXPROCS, one session; best of 3 runs)",
	}
	for i := 0; i < 3; i++ {
		var errs atomic.Int64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			readMixLoop(b, s, variant, &errs)
		})
		if n := errs.Load(); n > 0 {
			return RigResult{}, fmt.Errorf("read mix %s: %d request errors", variant, n)
		}
		if ns := float64(r.NsPerOp()); res.NsPerOp == 0 || ns < res.NsPerOp {
			res.NsPerOp = ns
			res.AllocsPerOp = float64(r.AllocsPerOp())
		}
	}
	if res.NsPerOp > 0 {
		res.OpsPerSec = 1e9 / res.NsPerOp
	}
	return res, nil
}

// RigThroughput measures the full service: requests per second
// through the HTTP handler path via the in-process client, default
// 60/40 mix over 16 warm sessions.
func RigThroughput(requests int) (RigResult, error) {
	return RigThroughputMix(requests, "")
}

// RigThroughputMix is RigThroughput at an explicit read/write mix
// ("R/W", e.g. "30/70" for the write-heavy group-commit workload).
// The mix becomes part of the result name, so differently shaped runs
// never gate against each other; the empty mix keeps the historical
// 60/40 name unsuffixed.
func RigThroughputMix(requests int, mix string) (RigResult, error) {
	// Best of three passes, like the read-mix rig: one loadgen pass is
	// under a second, and run-to-run scheduler noise on shared hosts
	// dwarfs the deltas the gate watches for.
	var best *LoadStats
	for i := 0; i < 3; i++ {
		srv, err := New(Config{MaxSessions: 64})
		if err != nil {
			return RigResult{}, err
		}
		stats, err := RunLoad(context.Background(), client.InProcess(srv), LoadConfig{
			Sessions: 16, Requests: requests, Cores: 4, TasksPerSession: 12, Seed: 1, Mix: mix,
		})
		srv.Close()
		if err != nil {
			return RigResult{}, err
		}
		if stats.Errors > 0 {
			return RigResult{}, fmt.Errorf("throughput run: %d load errors", stats.Errors)
		}
		if best == nil || stats.Throughput() > best.Throughput() {
			best = stats
		}
	}
	// The request count is part of the name: runs of different sizes
	// warm differently and must not gate against each other.
	name := fmt.Sprintf("admitd_throughput/n=%d", requests)
	mixDesc := "60/40"
	if mix != "" {
		name += "/mix=" + strings.ReplaceAll(mix, "/", "-")
		mixDesc = mix
	}
	res := RigResult{
		Name:        name,
		OpsPerSec:   best.Throughput(),
		AllocsPerOp: best.AllocsPerOp,
		Desc:        fmt.Sprintf("one load request (full HTTP handler path, in-process transport, 16 sessions x %d requests, %s mix; best of 3 passes)", requests, mixDesc),
	}
	if res.OpsPerSec > 0 {
		res.NsPerOp = 1e9 / res.OpsPerSec
	}
	return res, nil
}

// RigThroughputDurable is the throughput run with the durability
// plane on (fsync=group): the same 16-session default-mix load, every
// committed mutation appended to the commit log, dirty logs fsynced
// by the background committer once per interval (the bounded-loss
// group policy). The /fsync=group name suffix keeps durable runs from
// ever gating against non-durable baselines; the acceptance bar
// (within 15% of the plain run at the same size) is checked by eye
// against the matching admitd_throughput/n=N entry.
func RigThroughputDurable(requests int) (RigResult, error) {
	var best *LoadStats
	for i := 0; i < 3; i++ {
		dir, err := os.MkdirTemp("", "spbench-durable-*")
		if err != nil {
			return RigResult{}, err
		}
		srv, err := New(Config{MaxSessions: 64, DataDir: dir, Fsync: "group"})
		if err != nil {
			os.RemoveAll(dir) //nolint:errcheck,gosec // bench scratch
			return RigResult{}, err
		}
		stats, err := RunLoad(context.Background(), client.InProcess(srv), LoadConfig{
			Sessions: 16, Requests: requests, Cores: 4, TasksPerSession: 12, Seed: 1,
		})
		srv.Close()
		os.RemoveAll(dir) //nolint:errcheck,gosec // bench scratch
		if err != nil {
			return RigResult{}, err
		}
		if stats.Errors > 0 {
			return RigResult{}, fmt.Errorf("durable throughput run: %d load errors", stats.Errors)
		}
		if best == nil || stats.Throughput() > best.Throughput() {
			best = stats
		}
	}
	res := RigResult{
		Name:        fmt.Sprintf("admitd_throughput/n=%d/fsync=group", requests),
		OpsPerSec:   best.Throughput(),
		AllocsPerOp: best.AllocsPerOp,
		Desc:        fmt.Sprintf("one load request with the durability plane on (commit log, background fsync each 5ms interval; 16 sessions x %d requests, 60/40 mix; best of 3 passes)", requests),
	}
	if res.OpsPerSec > 0 {
		res.NsPerOp = 1e9 / res.OpsPerSec
	}
	return res, nil
}

// RigWal measures the commit log in isolation: one record append per
// op under each fsync policy (group commits once per 32 appends —
// the actor-drain boundary; always fsyncs per record; off never
// syncs), plus recovery replay cost over a written log.
func RigWal() ([]RigResult, error) {
	payload := make([]byte, 96) // a realistic admit-record payload size
	for i := range payload {
		payload[i] = byte(i)
	}
	var out []RigResult
	for _, pc := range []struct {
		pol  wal.SyncPolicy
		name string
	}{{wal.SyncOff, "off"}, {wal.SyncGroup, "group"}, {wal.SyncAlways, "always"}} {
		dir, err := os.MkdirTemp("", "spbench-wal-*")
		if err != nil {
			return nil, err
		}
		l, _, err := wal.Open(wal.Options{Dir: dir, Policy: pc.pol})
		if err != nil {
			os.RemoveAll(dir) //nolint:errcheck,gosec // bench scratch
			return nil, err
		}
		var seq int64
		var aerr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				seq++
				if _, err := l.Append("bench/1", seq, payload); err != nil {
					aerr = err
					return
				}
				if pc.pol == wal.SyncAlways || seq%32 == 0 {
					if err := l.Commit(); err != nil {
						aerr = err
						return
					}
				}
			}
		})
		l.Close()         //nolint:errcheck,gosec // bench scratch
		os.RemoveAll(dir) //nolint:errcheck,gosec // bench scratch
		if aerr != nil {
			return nil, aerr
		}
		res := RigResult{
			Name:        "wal_append/fsync=" + pc.name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: float64(r.AllocsPerOp()),
			Desc:        fmt.Sprintf("one %d-byte commit-log record append under fsync=%s (group syncs once per 32 appends — the actor-drain boundary)", len(payload), pc.name),
		}
		if res.NsPerOp > 0 {
			res.OpsPerSec = 1e9 / res.NsPerOp
		}
		out = append(out, res)
	}
	replay, err := rigWalReplay(payload)
	if err != nil {
		return nil, err
	}
	return append(out, replay), nil
}

// rigWalReplay writes a fixed-size log once, then measures full
// recovery passes (open + CRC-checked scan of every record) over it.
func rigWalReplay(payload []byte) (RigResult, error) {
	const records = 50_000
	dir, err := os.MkdirTemp("", "spbench-walreplay-*")
	if err != nil {
		return RigResult{}, err
	}
	defer os.RemoveAll(dir) //nolint:errcheck // bench scratch
	l, _, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncOff})
	if err != nil {
		return RigResult{}, err
	}
	for seq := int64(1); seq <= records; seq++ {
		if _, err := l.Append("bench/1", seq, payload); err != nil {
			l.Close() //nolint:errcheck,gosec // already failing
			return RigResult{}, err
		}
	}
	logBytes := l.Stats().Bytes
	if err := l.Close(); err != nil {
		return RigResult{}, err
	}
	var rerr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l2, _, oerr := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncOff})
			if oerr != nil {
				rerr = oerr
				return
			}
			n := 0
			if err := l2.Replay(func(wal.Record) error { n++; return nil }); err != nil {
				rerr = err
				l2.Close() //nolint:errcheck,gosec // already failing
				return
			}
			l2.Close() //nolint:errcheck,gosec // bench scratch
			if n != records {
				rerr = fmt.Errorf("replay saw %d records, want %d", n, records)
				return
			}
		}
	})
	if rerr != nil {
		return RigResult{}, rerr
	}
	perRecord := float64(r.NsPerOp()) / float64(records)
	res := RigResult{
		Name:        "wal_replay",
		NsPerOp:     perRecord,
		AllocsPerOp: float64(r.AllocsPerOp()) / float64(records),
		Desc:        fmt.Sprintf("one record replayed during recovery (full open + CRC-checked scan of a %d-record, %d-byte log per pass)", records, logBytes),
	}
	if perRecord > 0 {
		res.OpsPerSec = 1e9 / perRecord
	}
	return res, nil
}

// RigWire measures the wire codecs in isolation: one admit-request
// decode through the pooled fast path and one verdict encode into a
// reused buffer — the per-request codec cost the zero-alloc wire
// layer puts on every hot handler.
func RigWire() ([]RigResult, error) {
	reqCore := 2
	wireReq := api.AdmitRequest{Task: benchTask(7), Core: &reqCore, Hold: true}
	body, err := json.Marshal(wireReq)
	if err != nil {
		return nil, err
	}
	var derr error
	dec := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var dst api.AdmitRequest
		for i := 0; i < b.N; i++ {
			if _, _, err := decodeAdmit(body, &dst); err != nil {
				derr = err
				return
			}
		}
	})
	if derr != nil {
		return nil, fmt.Errorf("wire decode: %w", derr)
	}
	v := api.Verdict{TaskID: 7, Admitted: true, Core: 2, Probes: 3}
	buf := make([]byte, 0, 256)
	enc := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = api.AppendVerdict(buf[:0], &v)
		}
	})
	mk := func(name, desc string, r testing.BenchmarkResult) RigResult {
		res := RigResult{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: float64(r.AllocsPerOp()),
			Desc:        desc,
		}
		if res.NsPerOp > 0 {
			res.OpsPerSec = 1e9 / res.NsPerOp
		}
		return res
	}
	return []RigResult{
		mk("wire_decode/admit", "one AdmitRequest decode (fast scanner into caller scratch; encoding/json only on decline)", dec),
		mk("wire_encode/verdict", "one Verdict encode (append-style fast encoder, byte-identical to encoding/json)", enc),
	}, nil
}

// RigBatchTry measures the batched verdict path: one try-only batch
// of k tasks against a warm session, per op.
// RigMetricsScrape measures one full /metrics render — every
// registered family merged from its shards and written in Prometheus
// text format into a reused buffer — against a server populated with
// live sessions, so scrape-time costs (shard merges, store Range
// walks, MemStats refresh) are the production ones. The scrape is
// off the hot path; this pins its cost so a 1 Hz scraper is visibly
// harmless.
func RigMetricsScrape() (RigResult, error) {
	srv, err := New(Config{})
	if err != nil {
		return RigResult{}, err
	}
	defer srv.Close()
	id := int64(1)
	for i := 0; i < 8; i++ {
		sess, err := srv.store.Create(fmt.Sprintf("scrape-%d", i), 4, task.FixedPriority, overhead.PaperModel())
		if err != nil {
			return RigResult{}, err
		}
		for c := 0; c < 4; c++ {
			core := c
			req := api.AdmitRequest{Task: benchTask(id), Core: &core}
			id++
			var v api.Verdict
			var aerr error
			if cerr := sess.call(func() { v, aerr = sess.admitLocked(req) }); cerr != nil {
				return RigResult{}, cerr
			}
			if aerr != nil || !v.Admitted {
				return RigResult{}, fmt.Errorf("scrape seed: %+v %v", v, aerr)
			}
		}
	}
	reg := srv.met.reg
	buf := make([]byte, 0, 32<<10)
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = reg.WritePrometheus(buf[:0])
		}
	})
	res := RigResult{
		Name:        "metrics_scrape",
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: float64(r.AllocsPerOp()),
		Desc:        "one /metrics exposition render (all families, shard merge + store walk + MemStats) into a reused buffer, 8 live sessions",
	}
	if res.NsPerOp > 0 {
		res.OpsPerSec = 1e9 / res.NsPerOp
	}
	return res, nil
}

func RigBatchTry(k int) (RigResult, error) {
	s, err := rigSession()
	if err != nil {
		return RigResult{}, err
	}
	defer s.close()
	tasks := make([]api.Task, k)
	for i := range tasks {
		tasks[i] = benchTask(1<<41 + int64(i))
	}
	req := api.BatchRequest{Tasks: tasks, TryOnly: true}
	ctx := context.Background()
	var errs atomic.Int64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.batchTryRead(ctx, req, nil); err != nil {
				errs.Add(1)
				return
			}
		}
	})
	if n := errs.Load(); n > 0 {
		return RigResult{}, fmt.Errorf("batch try: %d errors", n)
	}
	perProbe := float64(r.NsPerOp()) / float64(k)
	res := RigResult{
		Name:        fmt.Sprintf("batch_try/k=%d", k),
		NsPerOp:     perProbe,
		AllocsPerOp: float64(r.AllocsPerOp()) / float64(k),
		Desc:        fmt.Sprintf("one task verdict inside a %d-task try-only batch (one snapshot, shared prober scratch per worker)", k),
	}
	if perProbe > 0 {
		res.OpsPerSec = 1e9 / perProbe
	}
	return res, nil
}
