//go:build !race

package admitd

const raceEnabled = false
