//go:build race

package admitd

// raceEnabled gates the allocation guards: under the race detector
// sync.Pool intentionally drops a fraction of Puts (to randomize
// reuse), so pooled scratch allocates and AllocsPerRun counts are
// meaningless.
const raceEnabled = true
