package admitd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/api"
	"repro/internal/analysis"
	"repro/internal/overhead"
	"repro/internal/task"
)

// TestConcurrentSessionsDeterministic is the concurrency soundness
// test: many goroutines drive many sessions at once — one writer per
// session issuing a deterministic mixed try/admit/commit/rollback/
// remove sequence, plus reader goroutines hammering state and stats
// across all sessions — and every verdict must still be bit-identical
// to a stateless analyzer replay of that session's own op sequence.
// Cross-session interference of any kind (shared caches, stats,
// store state) would show up as a verdict divergence; memory races
// show up under -race (the CI race job runs this).
func TestConcurrentSessionsDeterministic(t *testing.T) {
	sessions, ops := 24, 120
	if testing.Short() {
		sessions, ops = 12, 60
	}
	srv := newTestServer(t, Config{MaxSessions: sessions * 2})
	model := overhead.Normalize(overhead.PaperModel())

	for i := 0; i < sessions; i++ {
		name := fmt.Sprintf("c-%02d", i)
		policy := "fp"
		if i%3 == 2 {
			policy = "edf"
		}
		mustStatus(t, srv, "POST", "/v1/sessions", api.CreateSessionRequest{Name: name, Cores: 2 + i%3, Policy: policy}, http.StatusCreated)
	}

	// Readers overlap the writers with a bounded number of state and
	// stats reads across random sessions (bounded, not run-to-stop:
	// unbounded readers serialize against the session actors and can
	// starve the writers into minutes of wall clock).
	stopReaders := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < sessions/2+1; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(1000 + r)))
			for n := 0; n < 2*ops; n++ {
				select {
				case <-stopReaders:
					return
				default:
				}
				name := fmt.Sprintf("c-%02d", rng.Intn(sessions))
				if rng.Intn(2) == 0 {
					doRaw(srv, "GET", "/v1/sessions/"+name, nil)
				} else {
					doRaw(srv, "GET", "/v1/sessions/"+name+"/stats", nil)
				}
			}
		}(r)
	}

	var writers sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		writers.Add(1)
		go func(i int) {
			defer writers.Done()
			if err := driveSession(srv, i, ops, model); err != nil {
				errs <- err
			}
		}(i)
	}
	writers.Wait()
	close(stopReaders)
	readers.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// driveSession runs one session's deterministic op sequence and
// checks every verdict against the stateless replay.
func driveSession(srv *Server, i, ops int, model *overhead.Model) error {
	name := fmt.Sprintf("c-%02d", i)
	cores := 2 + i%3
	policy := task.FixedPriority
	if i%3 == 2 {
		policy = task.EDF
	}
	an := analysis.ForPolicy(policy)
	mirror := task.NewAssignment(cores)
	mirror.Policy = policy
	rng := rand.New(rand.NewSource(int64(31 + i)))
	var admitted []*task.Task
	nextID := int64(1)

	verdict := func(method, path string, payload any) (api.Verdict, int, error) {
		status, body := doRaw(srv, method, path, payload)
		var v api.Verdict
		if status == http.StatusOK {
			if err := json.Unmarshal(body, &v); err != nil {
				return v, status, fmt.Errorf("%s: %s: %w", name, path, err)
			}
		}
		return v, status, nil
	}
	check := func(op string, v api.Verdict, wantOK bool, wantCore int) error {
		if v.Admitted != wantOK || (wantOK && v.Core != wantCore) {
			return fmt.Errorf("%s %s task %d: server (%v, core %d) != replay (%v, core %d)",
				name, op, v.TaskID, v.Admitted, v.Core, wantOK, wantCore)
		}
		return nil
	}
	pop := func(core int) {
		mirror.Normal[core] = mirror.Normal[core][:len(mirror.Normal[core])-1]
	}

	for n := 0; n < ops; n++ {
		switch op := rng.Intn(10); {
		case op < 4: // try: probe-only, no state change
			tk := randomLoadTask(rng, nextID, policy)
			nextID++
			wantOK, wantCore := firstFitReplay(an, mirror, model, wireTask(tk))
			if wantOK {
				pop(wantCore) // try never keeps the placement
			}
			v, status, err := verdict("POST", "/v1/sessions/"+name+"/try", api.AdmitRequest{Task: tk})
			if err != nil {
				return err
			}
			if status != http.StatusOK {
				return fmt.Errorf("%s try: HTTP %d", name, status)
			}
			if err := check("try", v, wantOK, wantCore); err != nil {
				return err
			}
		case op < 7: // admit: committed on success
			tk := randomLoadTask(rng, nextID, policy)
			nextID++
			goTask := wireTask(tk)
			wantOK, wantCore := firstFitReplay(an, mirror, model, goTask)
			v, status, err := verdict("POST", "/v1/sessions/"+name+"/admit", api.AdmitRequest{Task: tk})
			if err != nil {
				return err
			}
			if status != http.StatusOK {
				return fmt.Errorf("%s admit: HTTP %d", name, status)
			}
			if err := check("admit", v, wantOK, wantCore); err != nil {
				return err
			}
			if wantOK {
				admitted = append(admitted, goTask)
			}
		case op < 9: // hold-try then commit or rollback
			tk := randomLoadTask(rng, nextID, policy)
			nextID++
			goTask := wireTask(tk)
			wantOK, wantCore := firstFitReplay(an, mirror, model, goTask)
			v, status, err := verdict("POST", "/v1/sessions/"+name+"/try", api.AdmitRequest{Task: tk, Hold: true})
			if err != nil {
				return err
			}
			if status != http.StatusOK {
				return fmt.Errorf("%s hold-try: HTTP %d", name, status)
			}
			if err := check("hold-try", v, wantOK, wantCore); err != nil {
				return err
			}
			if !wantOK {
				// Nothing held on a full-miss first-fit.
				continue
			}
			if rng.Intn(2) == 0 {
				if _, status, err = verdict("POST", "/v1/sessions/"+name+"/commit", nil); err != nil || status != http.StatusOK {
					return fmt.Errorf("%s commit: HTTP %d %v", name, status, err)
				}
				admitted = append(admitted, goTask)
			} else {
				if _, status, err = verdict("POST", "/v1/sessions/"+name+"/rollback", nil); err != nil || status != http.StatusOK {
					return fmt.Errorf("%s rollback: HTTP %d %v", name, status, err)
				}
				pop(wantCore)
			}
		default: // remove a random admitted task
			if len(admitted) == 0 {
				continue
			}
			k := rng.Intn(len(admitted))
			tk := admitted[k]
			admitted = append(admitted[:k], admitted[k+1:]...)
			_, status, err := verdict("POST", "/v1/sessions/"+name+"/remove", api.RemoveRequest{ID: int64(tk.ID)})
			if err != nil || status != http.StatusOK {
				return fmt.Errorf("%s remove %d: HTTP %d %v", name, tk.ID, status, err)
			}
			removeFromMirror(mirror, tk.ID)
		}
	}
	// Final identity: the session's committed placements must equal
	// the mirror exactly.
	status, body := doRaw(srv, "GET", "/v1/sessions/"+name, nil)
	if status != http.StatusOK {
		return fmt.Errorf("%s state: HTTP %d", name, status)
	}
	var state api.State
	if err := json.Unmarshal(body, &state); err != nil {
		return err
	}
	for c := 0; c < cores; c++ {
		var got []int64
		for _, j := range state.Tasks {
			if j.Core == c {
				got = append(got, j.ID)
			}
		}
		var want []int64
		for _, tk := range mirror.Normal[c] {
			want = append(want, int64(tk.ID))
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			return fmt.Errorf("%s core %d: server %v != mirror %v", name, c, got, want)
		}
	}
	return nil
}

// doRaw is doReq without the testing.T (usable from goroutines that
// report through a channel).
func doRaw(h http.Handler, method, path string, payload any) (int, []byte) {
	var data []byte
	if payload != nil {
		data, _ = json.Marshal(payload)
	}
	req := httptest.NewRequest(method, path, bytes.NewReader(data))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

// randomLoadTask draws a small task in wire form; FP tasks get a
// deterministic unique-ish priority.
func randomLoadTask(rng *rand.Rand, id int64, p task.Policy) api.Task {
	period := int64(10+rng.Intn(90)) * 1e6
	wcet := period / int64(8+rng.Intn(24))
	j := api.Task{ID: id, WCETNs: wcet, PeriodNs: period, WSS: 32 << 10}
	if p == task.FixedPriority {
		j.Priority = int(id)
	}
	return j
}

// wireTask converts the wire task for mirror replay (policy-agnostic
// fields only; priority is already set for FP).
func wireTask(j api.Task) *task.Task {
	t, err := toTask(j, task.EDF) // skip the FP priority check; set above
	if err != nil {
		panic(err)
	}
	return t
}
