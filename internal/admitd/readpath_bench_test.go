package admitd

import (
	"sync/atomic"
	"testing"
)

// BenchmarkSessionParallelReads is the read-path regression guard: N
// goroutines drive a 90/10 read/write mix against ONE session —
// reads are 70% try, 20% state, 10% stats; writes are admit/remove
// pairs through the actor in both variants. The two sub-benchmarks
// differ only in how reads are served:
//
//	readpath — the lock-free snapshot path
//	actor    — every read serialized through the session actor,
//	           recomputed per call (the pre-fork behavior)
//
// The workload itself lives in perfrig.go (readMixLoop), shared with
// cmd/spbench — the multi-core rig that runs this same mix across
// GOMAXPROCS settings and records BENCH_admitd.json.
//
// The acceptance bar is readpath ≥ 3x actor throughput on this mix
// (see BENCH_admitd.json for the recorded trajectory). The win has
// three parts: reads stop queueing behind the single actor goroutine
// (the part that scales with cores), repeated state/stats reads
// between commits collapse to atomic loads against the published
// snapshot, and repeated try shapes hit the snapshot's memoized
// verdicts — a cache that is only trivially correct because the
// snapshot is immutable and unaffected cores carry it across
// commits.
func BenchmarkSessionParallelReads(b *testing.B) {
	for _, variant := range []string{"readpath", "actor"} {
		b.Run(variant, func(b *testing.B) {
			s, err := rigSession()
			if err != nil {
				b.Fatal(err)
			}
			defer s.close()
			b.ReportAllocs()
			var errs atomic.Int64
			readMixLoop(b, s, variant, &errs)
			if n := errs.Load(); n > 0 {
				b.Fatalf("%d request errors in %s mix", n, variant)
			}
		})
	}
}
