package admitd

import (
	"sync/atomic"
	"testing"

	"repro/api"
	"repro/internal/overhead"
	"repro/internal/task"
)

// BenchmarkSessionParallelReads is the read-path regression guard: N
// goroutines drive a 90/10 read/write mix against ONE session —
// reads are 70% try, 20% state, 10% stats; writes are admit/remove
// pairs through the actor in both variants. The two sub-benchmarks
// differ only in how reads are served:
//
//	readpath — the lock-free snapshot path (this PR)
//	actor    — every read serialized through the session actor,
//	           recomputed per call (the pre-fork behavior)
//
// Try requests draw from 16 task classes — admission traffic is
// task *types*, not unique shapes — so the snapshot's per-core probe
// memo gets the hit rate a real front end would see.
//
// The acceptance bar is readpath ≥ 3x actor throughput on this mix
// (see BENCH_admitd.json for the recorded trajectory). The win has
// three parts: reads stop queueing behind the single actor goroutine
// (the part that scales with cores), repeated state/stats reads
// between commits collapse to atomic loads against the published
// snapshot, and repeated try shapes hit the snapshot's memoized
// verdicts — a cache that is only trivially correct because the
// snapshot is immutable and unaffected cores carry it across
// commits.
func BenchmarkSessionParallelReads(b *testing.B) {
	for _, variant := range []string{"readpath", "actor"} {
		b.Run(variant, func(b *testing.B) {
			s := benchSession(b)
			defer s.close()
			var ids atomic.Int64
			ids.Store(1 << 20)
			b.SetParallelism(8) // goroutines per GOMAXPROCS
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				g := ids.Add(1)
				var outstanding int64 // ≤1 churn task per goroutine
				i := int(g % 100)
				for pb.Next() {
					i++
					op := i % 100
					switch {
					case op < 10:
						// 10% writes through the actor in both variants:
						// admit a churn task on a rotating core, remove it
						// on the next write — the session stays in steady
						// state instead of ballooning with b.N.
						if outstanding != 0 {
							rm := outstanding
							outstanding = 0
							if err := s.call(func() { s.removeLocked(task.ID(rm)) }); err != nil { //nolint:errcheck // churn
								b.Error(err)
								return
							}
						} else {
							id := ids.Add(1)
							wc := int(id % 3) // churn cores 0..2; core 3 pins N
							req := api.AdmitRequest{Task: benchTask(id), Core: &wc}
							var v api.Verdict
							if err := s.call(func() { v, _ = s.admitLocked(req) }); err != nil {
								b.Error(err)
								return
							}
							if v.Admitted {
								outstanding = id
							}
						}
					case op < 50:
						// 40% try, drawn from 16 task classes against a
						// rotating explicit core (placement probing).
						tc := i % 4
						req := api.AdmitRequest{Task: benchTask(1<<40 + (g+int64(i))%16), Core: &tc}
						if variant == "readpath" {
							if _, err := s.tryRead(req); err != nil {
								b.Error(err)
								return
							}
						} else {
							var err error
							if cerr := s.call(func() { _, err = s.tryLocked(req) }); cerr != nil || err != nil {
								b.Error(cerr, err)
								return
							}
						}
					case op < 90: // 40% state
						if variant == "readpath" {
							s.stateRead()
						} else {
							s.call(func() { stateOnActor(s) }) //nolint:errcheck // bench
						}
					default: // 10% stats
						if variant == "readpath" {
							s.statsRead()
						} else {
							s.call(func() { s.statsLocked() }) //nolint:errcheck // bench
						}
					}
				}
			})
		})
	}
}

// benchSession seeds one 4-core session with 14 resident tasks: 8 on
// core 3 — a loaded core that pins the global queue bound N, the
// steady-state shape of a cluster under sustained load — and 2 on
// each churn core, so the 10%-write churn (cores 0–2, ±1 task) never
// moves N and the per-core caches behave as they would in
// production.
func benchSession(b *testing.B) *Session {
	b.Helper()
	s := newSession("bench", task.FixedPriority, overhead.PaperModel(), task.NewAssignment(4), nil)
	admit := func(id int64, core int) {
		req := api.AdmitRequest{Task: benchTask(id), Core: &core}
		var v api.Verdict
		var err error
		s.call(func() { v, err = s.admitLocked(req) }) //nolint:errcheck // checked below
		if err != nil || !v.Admitted {
			b.Fatalf("seed %d on core %d: %+v %v", id, core, v, err)
		}
	}
	id := int64(1)
	for i := 0; i < 8; i++ {
		admit(id, 3)
		id++
	}
	for c := 0; c < 3; c++ {
		admit(id, c)
		id++
		admit(id, c)
		id++
	}
	return s
}

// benchTask is a deterministic light task (≤1.5% core utilization).
func benchTask(id int64) api.Task {
	period := int64(20+id%180) * 1_000_000
	wcet := period / 80
	return api.Task{ID: id, WCETNs: wcet, PeriodNs: period, Priority: int(100 + id%4000), WSS: 64 << 10}
}

// stateOnActor recomputes the committed state on the actor the way
// the pre-fork server did: full render plus the context's cached full
// test per call, no snapshot memoization. Bench baseline only.
func stateOnActor(s *Session) api.State {
	resp := api.State{
		Name:   s.name,
		Cores:  s.a.NumCores,
		Policy: policyName(s.policy),
	}
	for c := 0; c < s.a.NumCores; c++ {
		u := 0.0
		for _, t := range s.a.Normal[c] {
			resp.Tasks = append(resp.Tasks, fromTask(t, c))
			u += t.Utilization()
		}
		for _, sp := range s.a.Splits {
			for _, p := range sp.Parts {
				if p.Core == c {
					u += float64(p.Budget) / float64(sp.Task.Period)
				}
			}
		}
		resp.CoreUtilization = append(resp.CoreUtilization, u)
	}
	for _, sp := range s.a.Splits {
		resp.Splits = append(resp.Splits, fromSplit(sp))
	}
	ok := s.actx.Schedulable()
	resp.Schedulable = &ok
	return resp
}
