package admitd

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/api"
)

// readTask builds a light wire task for read-path probes.
func readTask(id int64, rng *rand.Rand) api.Task {
	periodMs := int64(20 + rng.Intn(100))
	period := periodMs * 1_000_000
	wcet := period / int64(40+rng.Intn(40))
	return api.Task{ID: id, WCETNs: wcet, PeriodNs: period, Priority: int(1000 + id%1000), WSS: 32 << 10}
}

// TestReadPathMatchesAdmit pins the read path's verdicts end to end:
// on a quiescent session, a non-holding try (served from the
// snapshot, off-actor) must predict exactly what admit (the actor
// path) then does.
func TestReadPathMatchesAdmit(t *testing.T) {
	srv := newTestServer(t, Config{})
	mustStatus(t, srv, "POST", "/v1/sessions", api.CreateSessionRequest{Name: "rp", Cores: 3}, http.StatusCreated)
	rng := rand.New(rand.NewSource(42))
	agree := 0
	for i := int64(1); i <= 60; i++ {
		tk := readTask(i, rng)
		var try, admit api.Verdict
		if err := json.Unmarshal(mustStatus(t, srv, "POST", "/v1/sessions/rp/try", api.AdmitRequest{Task: tk}, http.StatusOK), &try); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(mustStatus(t, srv, "POST", "/v1/sessions/rp/admit", api.AdmitRequest{Task: tk}, http.StatusOK), &admit); err != nil {
			t.Fatal(err)
		}
		if try.Admitted != admit.Admitted || try.Core != admit.Core {
			t.Fatalf("task %d: read-path try %+v disagrees with admit %+v", i, try, admit)
		}
		if try.Admitted {
			agree++
		}
	}
	if agree == 0 {
		t.Fatal("no admissions; the comparison degenerated")
	}
}

// TestReadsServedWhileProbeHeld pins the read path's held-probe
// semantics: a held probe blocks mutations (409 probe_pending) but
// not reads — non-holding try, state and stats keep answering from
// the committed snapshot.
func TestReadsServedWhileProbeHeld(t *testing.T) {
	srv := newTestServer(t, Config{})
	mustStatus(t, srv, "POST", "/v1/sessions", api.CreateSessionRequest{Name: "h", Cores: 2}, http.StatusCreated)
	base := api.Task{ID: 1, WCETNs: 1e6, PeriodNs: 1e7, Priority: 1}
	mustStatus(t, srv, "POST", "/v1/sessions/h/admit", api.AdmitRequest{Task: base}, http.StatusOK)

	mustStatus(t, srv, "POST", "/v1/sessions/h/try",
		api.AdmitRequest{Task: api.Task{ID: 2, WCETNs: 1e6, PeriodNs: 1e7, Priority: 2}, Hold: true}, http.StatusOK)

	// Mutations conflict …
	mustStatus(t, srv, "POST", "/v1/sessions/h/admit",
		api.AdmitRequest{Task: api.Task{ID: 3, WCETNs: 1e6, PeriodNs: 1e7, Priority: 3}}, http.StatusConflict)
	// … reads do not: try answers from the committed state (the held
	// task 2 is uncommitted and invisible).
	var v api.Verdict
	body := mustStatus(t, srv, "POST", "/v1/sessions/h/try",
		api.AdmitRequest{Task: api.Task{ID: 4, WCETNs: 1e6, PeriodNs: 1e7, Priority: 4}}, http.StatusOK)
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if !v.Admitted {
		t.Fatalf("read-path try while held: %+v", v)
	}
	var st api.State
	if err := json.Unmarshal(mustStatus(t, srv, "GET", "/v1/sessions/h", nil, http.StatusOK), &st); err != nil {
		t.Fatal(err)
	}
	if !st.ProbePending || st.Schedulable != nil || len(st.Tasks) != 1 {
		t.Fatalf("state while held: %+v", st)
	}
	mustStatus(t, srv, "GET", "/v1/sessions/h/stats", nil, http.StatusOK)
	mustStatus(t, srv, "POST", "/v1/sessions/h/rollback", nil, http.StatusOK)
}

// TestHeldProbeErrorEnvelopes is the end-to-end golden for the
// held-probe conflict contract: the exact {code,message} envelope and
// the 409 status, for both the pending and the not-pending side, plus
// the SDK's IsCode branch on both.
func TestHeldProbeErrorEnvelopes(t *testing.T) {
	srv := newTestServer(t, Config{})
	mustStatus(t, srv, "POST", "/v1/sessions", api.CreateSessionRequest{Name: "g", Cores: 1}, http.StatusCreated)

	// No probe held: commit and rollback must 409 with the exact
	// no_probe_pending envelope.
	wantNoProbe := `{"code":"no_probe_pending","message":"admitd: no probe pending"}`
	for _, op := range []string{"commit", "rollback"} {
		status, body := doReq(t, srv, "POST", "/v1/sessions/g/"+op, nil)
		if status != http.StatusConflict {
			t.Fatalf("%s with nothing held: HTTP %d", op, status)
		}
		if got := strings.TrimSpace(string(body)); got != wantNoProbe {
			t.Fatalf("%s envelope:\n got %s\nwant %s", op, got, wantNoProbe)
		}
	}

	// Hold a probe; every mutation must 409 with the exact
	// probe_pending envelope.
	mustStatus(t, srv, "POST", "/v1/sessions/g/try",
		api.AdmitRequest{Task: api.Task{ID: 1, WCETNs: 1e6, PeriodNs: 1e7, Priority: 1}, Hold: true}, http.StatusOK)
	wantPending := `{"code":"probe_pending","message":"admitd: a held probe is pending (commit or rollback first)"}`
	for _, step := range []struct {
		method, path string
		payload      any
	}{
		{"POST", "/v1/sessions/g/admit", api.AdmitRequest{Task: api.Task{ID: 9, WCETNs: 1e6, PeriodNs: 1e7, Priority: 9}}},
		{"POST", "/v1/sessions/g/try", api.AdmitRequest{Task: api.Task{ID: 9, WCETNs: 1e6, PeriodNs: 1e7, Priority: 9}, Hold: true}},
		{"POST", "/v1/sessions/g/split", api.SplitRequest{Split: api.Split{
			Task:  api.Task{ID: 9, WCETNs: 2e6, PeriodNs: 1e7, Priority: 9},
			Parts: []api.Part{{Core: 0, BudgetNs: 1e6}, {Core: 0, BudgetNs: 1e6}},
		}}},
		{"POST", "/v1/sessions/g/remove", api.RemoveRequest{ID: 1}},
		{"POST", "/v1/sessions/g/batch", api.BatchRequest{Tasks: []api.Task{{ID: 9, WCETNs: 1e6, PeriodNs: 1e7, Priority: 9}}}},
	} {
		status, body := doReq(t, srv, step.method, step.path, step.payload)
		if status != http.StatusConflict {
			t.Fatalf("%s while held: HTTP %d: %s", step.path, status, body)
		}
		if got := strings.TrimSpace(string(body)); got != wantPending {
			t.Fatalf("%s envelope:\n got %s\nwant %s", step.path, got, wantPending)
		}
	}
	mustStatus(t, srv, "POST", "/v1/sessions/g/rollback", nil, http.StatusOK)
}

// TestBatchTryOnly checks the fan-out read batch: verdicts match the
// individual read-path tries, the summary is stamped try_only, and
// the session is not mutated.
func TestBatchTryOnly(t *testing.T) {
	srv := newTestServer(t, Config{})
	mustStatus(t, srv, "POST", "/v1/sessions", api.CreateSessionRequest{Name: "b", Cores: 2}, http.StatusCreated)
	rng := rand.New(rand.NewSource(7))
	for i := int64(1); i <= 6; i++ {
		mustStatus(t, srv, "POST", "/v1/sessions/b/admit", api.AdmitRequest{Task: readTask(i, rng)}, http.StatusOK)
	}
	var before api.State
	if err := json.Unmarshal(mustStatus(t, srv, "GET", "/v1/sessions/b", nil, http.StatusOK), &before); err != nil {
		t.Fatal(err)
	}

	var batch []api.Task
	for i := int64(100); i < 112; i++ {
		batch = append(batch, readTask(i, rng))
	}
	batch = append(batch, api.Task{ID: 1, WCETNs: 1e6, PeriodNs: 1e7, Priority: 1}) // duplicate of an admitted ID
	body := mustStatus(t, srv, "POST", "/v1/sessions/b/batch", api.BatchRequest{Tasks: batch, TryOnly: true}, http.StatusOK)

	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != len(batch)+1 {
		t.Fatalf("try-only batch: %d lines, want %d verdicts + summary", len(lines), len(batch)+1)
	}
	var sum api.BatchSummary
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sum); err != nil {
		t.Fatal(err)
	}
	if !sum.TryOnly || !sum.Done || sum.Canceled {
		t.Fatalf("summary: %+v", sum)
	}
	admitted := 0
	for i, ln := range lines[:len(lines)-1] {
		var v api.Verdict
		if err := json.Unmarshal([]byte(ln), &v); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if v.TaskID != batch[i].ID {
			t.Fatalf("line %d: verdicts out of input order: got task %d want %d", i, v.TaskID, batch[i].ID)
		}
		// Each verdict must equal the individual read-path try.
		if batch[i].ID == 1 {
			if v.Admitted {
				t.Fatalf("duplicate ID probed admissible: %+v", v)
			}
			continue
		}
		var single api.Verdict
		if err := json.Unmarshal(mustStatus(t, srv, "POST", "/v1/sessions/b/try", api.AdmitRequest{Task: batch[i]}, http.StatusOK), &single); err != nil {
			t.Fatal(err)
		}
		if v.Admitted != single.Admitted || v.Core != single.Core {
			t.Fatalf("task %d: batch verdict %+v != individual try %+v", batch[i].ID, v, single)
		}
		if v.Admitted {
			admitted++
		}
	}
	if admitted != sum.Admitted {
		t.Fatalf("summary admitted %d, counted %d", sum.Admitted, admitted)
	}

	var after api.State
	if err := json.Unmarshal(mustStatus(t, srv, "GET", "/v1/sessions/b", nil, http.StatusOK), &after); err != nil {
		t.Fatal(err)
	}
	if len(after.Tasks) != len(before.Tasks) {
		t.Fatalf("try-only batch mutated the session: %d tasks, was %d", len(after.Tasks), len(before.Tasks))
	}
}

// TestReadPathConcurrentChurn races many read goroutines (try, state,
// stats, try-only batches) against a writer churning admits and
// removes through the actor — the admitd-level companion of the
// analysis fork race fuzz. Run under -race in CI.
func TestReadPathConcurrentChurn(t *testing.T) {
	srv := newTestServer(t, Config{})
	mustStatus(t, srv, "POST", "/v1/sessions", api.CreateSessionRequest{Name: "c", Cores: 4}, http.StatusCreated)
	rng := rand.New(rand.NewSource(13))
	for i := int64(1); i <= 10; i++ {
		mustStatus(t, srv, "POST", "/v1/sessions/c/admit", api.AdmitRequest{Task: readTask(i, rng)}, http.StatusOK)
	}

	readers := 6
	iters := 60
	if testing.Short() {
		iters = 25
	}
	var stop atomic.Bool
	var reads atomic.Int64
	var errs atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rrng := rand.New(rand.NewSource(1000 + int64(r)))
			for !stop.Load() {
				var status int
				switch rrng.Intn(4) {
				case 0:
					status, _ = doReq(t, srv, "POST", "/v1/sessions/c/try",
						api.AdmitRequest{Task: readTask(1<<40+rrng.Int63n(1<<20), rrng)})
				case 1:
					status, _ = doReq(t, srv, "GET", "/v1/sessions/c", nil)
				case 2:
					status, _ = doReq(t, srv, "GET", "/v1/sessions/c/stats", nil)
				default:
					status, _ = doReq(t, srv, "POST", "/v1/sessions/c/batch", api.BatchRequest{
						Generate: &api.TaskGen{N: 4, TotalUtilization: 0.5, Seed: rrng.Int63()},
						TryOnly:  true,
					})
				}
				if status != http.StatusOK {
					errs.Add(1)
				}
				reads.Add(1)
				runtime.Gosched()
			}
		}(r)
	}
	next := int64(1000)
	var admitted []int64
	for i := 0; i < iters; i++ {
		next++
		status, body := doReq(t, srv, "POST", "/v1/sessions/c/admit", api.AdmitRequest{Task: readTask(next, rng)})
		if status != http.StatusOK {
			t.Errorf("admit %d: HTTP %d: %s", next, status, body)
			break
		}
		var v api.Verdict
		if json.Unmarshal(body, &v) == nil && v.Admitted {
			admitted = append(admitted, next)
		}
		if len(admitted) > 4 {
			id := admitted[0]
			admitted = admitted[1:]
			doReq(t, srv, "POST", "/v1/sessions/c/remove", api.RemoveRequest{ID: id})
		}
		runtime.Gosched()
	}
	for reads.Load() < int64(readers) {
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()
	if errs.Load() > 0 {
		t.Fatalf("%d read requests failed during churn (%d total)", errs.Load(), reads.Load())
	}
	if reads.Load() == 0 {
		t.Fatal("no concurrent reads ran")
	}

	// Quiesced: the session must still answer and be schedulable.
	var st api.State
	if err := json.Unmarshal(mustStatus(t, srv, "GET", "/v1/sessions/c", nil, http.StatusOK), &st); err != nil {
		t.Fatal(err)
	}
	if st.Schedulable == nil || !*st.Schedulable {
		t.Fatalf("post-churn state not schedulable: %+v", st)
	}
	t.Logf("raced %d reads against %d writer ops, 0 errors", reads.Load(), iters)
}
