package admitd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"repro/api"
	"repro/internal/experiment"
	"repro/internal/overhead"
	"repro/internal/partition"
	"repro/internal/report"
	"repro/internal/task"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

// Config parameterizes a Server.
type Config struct {
	// MaxSessions caps live sessions (LRU eviction beyond it); 0
	// means 1024.
	MaxSessions int
	// SnapshotDir, when set, persists evicted sessions and snapshots
	// everything live on Close.
	SnapshotDir string
	// DataDir, when set, turns on the durability plane: every
	// committed session mutation is appended to a per-shard commit
	// log under DataDir/wal, checkpoints land in DataDir/ckpt, and
	// restart replays acked writes back. Supersedes SnapshotDir.
	DataDir string
	// Fsync picks the commit-log sync policy: "group" (default: ack
	// at apply, background fsync each interval), "always" (fsync
	// covers every ack), or "off" (OS-cached).
	Fsync string
	// FsyncInterval is the group policy's background commit cadence
	// and therefore its crash loss window (0 or negative means 5ms).
	FsyncInterval time.Duration
	// CheckpointEvery is the snapshot-compaction period (0 means 30s,
	// negative disables the driver; Store.Checkpoint still works).
	CheckpointEvery time.Duration
	// Trace, when set, mints a trace ID for every request that did
	// not supply one via the Admitd-Trace-Id header. IDs supplied by
	// clients are always echoed on the response; generation is
	// opt-in because it costs two allocations per request, which the
	// default configuration keeps off the measured handler path.
	Trace bool
	// EventLog, when non-nil, receives one structured NDJSON event
	// per request (and server lifecycle events), trace-ID stamped.
	// Nil disables logging at the cost of one branch per request.
	EventLog *telemetry.EventLog
}

// Server is the admission-control transport: a thin HTTP layer that
// decodes api-package requests, runs them against the session Store,
// and encodes api-package responses. All wire types and error codes
// live in the api package; nothing here defines schema.
//
//	POST   /v1/sessions                    create a session
//	GET    /v1/sessions                    list live sessions
//	GET    /v1/sessions/{name}             committed state + schedulability
//	DELETE /v1/sessions/{name}             close and forget
//	POST   /v1/sessions/{name}/admit       probe + commit (first-fit or explicit core)
//	POST   /v1/sessions/{name}/try         probe only; "hold":true keeps it pending
//	POST   /v1/sessions/{name}/split       probe/admit a split task
//	POST   /v1/sessions/{name}/commit      keep the held probe
//	POST   /v1/sessions/{name}/rollback    undo the held probe
//	POST   /v1/sessions/{name}/remove      remove an admitted task
//	GET    /v1/sessions/{name}/stats       per-session admission stats
//	POST   /v1/sessions/{name}/batch       admit a whole set, streaming NDJSON verdicts
//	POST   /v1/sweep                       run an acceptance-ratio sweep (cancelable)
//	GET    /v1/stats                       server-wide counters
//	GET    /healthz                        liveness
type Server struct {
	store *Store
	mux   *http.ServeMux

	met   *serverMetrics
	elog  *telemetry.EventLog
	trace bool

	requests atomic.Int64
}

// New builds a Server (and its snapshot directory, when configured).
func New(cfg Config) (*Server, error) {
	policy, err := wal.ParseSyncPolicy(cfg.Fsync)
	if err != nil {
		return nil, err
	}
	store, err := NewStore(StoreConfig{
		MaxSessions:     cfg.MaxSessions,
		SnapshotDir:     cfg.SnapshotDir,
		DataDir:         cfg.DataDir,
		Fsync:           policy,
		FsyncInterval:   cfg.FsyncInterval,
		CheckpointEvery: cfg.CheckpointEvery,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{store: store, mux: http.NewServeMux(), elog: cfg.EventLog, trace: cfg.Trace}
	s.met = newServerMetrics(store)
	store.met = s.met
	s.handle("POST "+api.PathSessions, "create", classActor, s.handleCreate)
	s.handle("GET "+api.PathSessions, "list", classRead, s.handleList)
	s.handle("GET "+api.PathSessions+"/{name}", "state", classRead, s.handleState)
	s.handle("DELETE "+api.PathSessions+"/{name}", "delete", classActor, s.handleDelete)
	op := func(name string) string { return "POST " + api.PathSessions + "/{name}/" + name }
	s.handle(op(api.OpAdmit), api.OpAdmit, classActor, s.sessionVerdict(func(sess *Session, req api.AdmitRequest) (api.Verdict, error) {
		if req.Hold {
			return api.Verdict{}, fmt.Errorf("hold is only valid on try (admit commits immediately)")
		}
		return sess.admitLocked(req)
	}))
	s.handle(op(api.OpTry), api.OpTry, classRead, s.handleTry)
	s.handle(op(api.OpSplit), api.OpSplit, classActor, s.handleSplit)
	s.handle(op(api.OpCommit), api.OpCommit, classActor, s.handleResolve((*Session).commitLocked))
	s.handle(op(api.OpRollback), api.OpRollback, classActor, s.handleResolve((*Session).rollbackLocked))
	s.handle(op(api.OpRemove), api.OpRemove, classActor, s.handleRemove)
	s.handle("GET "+api.PathSessions+"/{name}/"+api.OpStats, "session_stats", classRead, s.handleSessionStats)
	s.handle(op(api.OpBatch), api.OpBatch, classActor, s.handleBatch)
	s.handle("GET "+api.PathSessions+"/{name}/"+api.OpFeed, api.OpFeed, classStream, s.handleFeed)
	s.handle("GET "+api.PathSessions+"/{name}/"+api.OpAudit, api.OpAudit, classRead, s.handleAudit)
	s.handle("POST "+api.PathSweep, "sweep", classStream, s.handleSweep)
	s.handle("GET "+api.PathStats, "stats", classRead, s.handleStats)
	s.handle("GET "+api.PathHealth, "health", classRead, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, api.Health{Status: "ok"})
	})
	s.handle("GET "+api.PathMetrics, "metrics", classStream, s.met.reg.ServeHTTP)
	return s, nil
}

// Path classes split the request latency histogram the way the
// architecture splits request handling: classRead is the lock-free
// snapshot path, classActor the serialized write path. classStream
// routes (feed, sweep, metrics) are counted but excluded from the
// latency histograms — a subscription's lifetime is not a latency.
const (
	classRead = iota
	classActor
	classStream
)

// handle registers one instrumented route: per-route request
// counter, path-class latency histogram, in-flight gauge, and the
// optional per-request NDJSON event. The instruments are sharded
// atomics — the wrapper adds no allocation to the handler path.
func (s *Server) handle(pattern, route string, class int, h http.HandlerFunc) {
	count := s.met.routeCounter(route)
	var lat *telemetry.Histogram
	switch class {
	case classRead:
		lat = s.met.latRead
	case classActor:
		lat = s.met.latActor
	}
	m := s.met
	elog := s.elog
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		m.inflight.Inc()
		start := time.Now()
		h(w, r)
		d := time.Since(start)
		if lat != nil {
			lat.Observe(d)
		}
		count.Inc()
		m.inflight.Dec()
		if elog.Enabled(telemetry.LevelInfo) {
			elog.Event(telemetry.LevelInfo, "request").
				Str("route", route).
				Str("trace", r.Header.Get(api.TraceHeader)).
				Dur("latency_us", d).
				Send()
		}
	})
}

// Metrics exposes the server's telemetry registry so embedders can
// mount the exposition elsewhere (the -pprof side listener does).
func (s *Server) Metrics() *telemetry.Registry { return s.met.reg }

// ServeHTTP implements http.Handler. Every response is stamped with
// the schema version so clients can detect what they talk to.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	w.Header().Set(api.VersionHeader, api.Version)
	// Trace correlation: a valid client-supplied ID is echoed (and
	// visible to the event log downstream); with Config.Trace set,
	// requests without one get a generated ID. The no-ID, no-Trace
	// path touches nothing — zero allocations.
	if id := r.Header.Get(api.TraceHeader); id != "" {
		if telemetry.ValidTraceID(id) {
			w.Header().Set(api.TraceHeader, id)
		} else {
			r.Header.Del(api.TraceHeader) // never log or echo garbage
		}
	} else if s.trace {
		id = telemetry.NewTraceID()
		r.Header.Set(api.TraceHeader, id)
		w.Header().Set(api.TraceHeader, id)
	}
	s.mux.ServeHTTP(w, r)
}

// Close snapshots every live session and stops the actors (graceful
// shutdown; call after the HTTP listener has drained).
func (s *Server) Close() {
	s.store.Close()
}

// Store exposes the session registry (tests, embedders).
func (s *Server) Store() *Store { return s.store }

// --- helpers ---------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

// writeError renders the uniform error envelope with the status
// derived from its code.
func writeError(w http.ResponseWriter, err error) {
	ae := toAPIError(err)
	writeJSON(w, ae.HTTPStatus(), ae)
}

// decodeBody decodes a request body. Unknown fields are ignored —
// the schema's forward-compatibility rule: a newer client may send
// fields this server does not know yet.
func decodeBody(r *http.Request, v any) error {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// parseModel resolves the wire model: absent → paper, "paper"/"zero"
// by name, anything else an inline model object.
func parseModel(raw json.RawMessage) (*overhead.Model, error) {
	if len(raw) == 0 {
		return overhead.PaperModel(), nil
	}
	var name string
	if err := json.Unmarshal(raw, &name); err == nil {
		switch name {
		case "", "paper":
			return overhead.PaperModel(), nil
		case "zero":
			return overhead.Zero(), nil
		default:
			return nil, fmt.Errorf("unknown model %q (paper|zero|inline object)", name)
		}
	}
	m := &overhead.Model{}
	if err := json.Unmarshal(raw, m); err != nil {
		return nil, fmt.Errorf("bad inline model: %w", err)
	}
	return m, nil
}

// session resolves the path's session and stamps its LRU position.
func (s *Server) session(w http.ResponseWriter, r *http.Request) *Session {
	sess, err := s.store.Get(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return nil
	}
	return sess
}

// callSession runs f on the session's actor, mapping a closed session
// to its status code.
func callSession(w http.ResponseWriter, sess *Session, f func()) bool {
	if err := sess.call(f); err != nil {
		writeError(w, err)
		return false
	}
	return true
}

// --- session lifecycle -----------------------------------------------

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req api.CreateSessionRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	p, err := parsePolicy(req.Policy)
	if err != nil {
		writeError(w, err)
		return
	}
	model, err := parseModel(req.Model)
	if err != nil {
		writeError(w, err)
		return
	}
	if _, err := s.store.Create(req.Name, req.Cores, p, model); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, api.SessionCreated{
		Name: req.Name, Cores: req.Cores, Policy: policyName(p), Version: api.Version,
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	var names []string
	s.store.Range(func(sess *Session) { names = append(names, sess.name) })
	sort.Strings(names)
	writeJSON(w, http.StatusOK, api.SessionList{Sessions: names, Count: len(names)})
}

// handleState serves committed state from the published snapshot —
// the lock-free read path; it never enters the session actor.
func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	body, err := sess.stateReadBytes()
	if err != nil {
		writeError(w, err)
		return
	}
	writeRaw(w, body)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.store.Delete(r.PathValue("name")); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.SessionDeleted{Deleted: true})
}

// --- admission -------------------------------------------------------

// sessionVerdict adapts a session operation taking an AdmitRequest.
// The wire round trip runs on pooled scratch: fast decode into a
// stack request (core backing included), fast verdict encode out.
func (s *Server) sessionVerdict(op func(*Session, api.AdmitRequest) (api.Verdict, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sess := s.session(w, r)
		if sess == nil {
			return
		}
		ws := wirePool.Get().(*wireScratch)
		defer wirePool.Put(ws)
		body, err := ws.readBody(r)
		if err != nil {
			writeError(w, err)
			return
		}
		var req api.AdmitRequest
		core, corePresent, err := decodeAdmit(body, &req)
		if err != nil {
			writeError(w, err)
			return
		}
		if corePresent {
			req.Core = &core
		}
		var resp api.Verdict
		var opErr error
		if !callSession(w, sess, func() { resp, opErr = op(sess, req) }) {
			return
		}
		if opErr != nil {
			writeError(w, opErr)
			return
		}
		ws.writeVerdict(w, &resp)
	}
}

// handleTry routes admission queries: a non-holding try is a pure
// read, served concurrently from the published snapshot without
// entering the actor (a held probe elsewhere does not block it); a
// holding try mutates held-probe state and stays on the actor.
func (s *Server) handleTry(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	ws := wirePool.Get().(*wireScratch)
	defer wirePool.Put(ws)
	body, err := ws.readBody(r)
	if err != nil {
		writeError(w, err)
		return
	}
	var req api.AdmitRequest
	core, corePresent, err := decodeAdmit(body, &req)
	if err != nil {
		writeError(w, err)
		return
	}
	if req.Hold {
		// The actor closure captures its arguments; keeping the hold
		// branch in a separate function (which attaches its own core
		// backing) keeps this frame's request and core off the heap on
		// the lock-free non-holding path.
		s.tryHold(w, ws, sess, req, core, corePresent)
		return
	}
	if corePresent {
		req.Core = &core
	}
	resp, opErr := sess.tryRead(req)
	if opErr != nil {
		writeError(w, opErr)
		return
	}
	ws.writeVerdict(w, &resp)
}

// tryHold serves the holding try on the session actor.
func (s *Server) tryHold(w http.ResponseWriter, ws *wireScratch, sess *Session, req api.AdmitRequest, core int, corePresent bool) {
	if corePresent {
		req.Core = &core
	}
	var resp api.Verdict
	var opErr error
	if !callSession(w, sess, func() { resp, opErr = sess.tryLocked(req) }) {
		return
	}
	if opErr != nil {
		writeError(w, opErr)
		return
	}
	ws.writeVerdict(w, &resp)
}

func (s *Server) handleSplit(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	var req api.SplitRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	var resp api.Verdict
	var opErr error
	if !callSession(w, sess, func() { resp, opErr = sess.splitLocked(req, req.Hold) }) {
		return
	}
	if opErr != nil {
		writeError(w, opErr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleResolve adapts commit/rollback.
func (s *Server) handleResolve(op func(*Session) (api.Verdict, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sess := s.session(w, r)
		if sess == nil {
			return
		}
		var resp api.Verdict
		var opErr error
		if !callSession(w, sess, func() { resp, opErr = op(sess) }) {
			return
		}
		if opErr != nil {
			writeError(w, opErr)
			return
		}
		ws := wirePool.Get().(*wireScratch)
		ws.writeVerdict(w, &resp)
		wirePool.Put(ws)
	}
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	ws := wirePool.Get().(*wireScratch)
	defer wirePool.Put(ws)
	body, err := ws.readBody(r)
	if err != nil {
		writeError(w, err)
		return
	}
	var req api.RemoveRequest
	if err := decodeRemove(body, &req); err != nil {
		writeError(w, err)
		return
	}
	var opErr error
	if !callSession(w, sess, func() { opErr = sess.removeLocked(task.ID(req.ID)) }) {
		return
	}
	if opErr != nil {
		writeError(w, opErr)
		return
	}
	ws.writeRemoved(w, &api.Removed{Removed: true, ID: req.ID})
}

// --- stats -----------------------------------------------------------

// handleSessionStats serves session counters lock-free: every field
// is an atomic, the republished writer-side counters, or the read
// path's own collector — no actor round trip.
func (s *Server) handleSessionStats(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	admission, err := sess.statsRead()
	if err != nil {
		writeError(w, err)
		return
	}
	st := api.SessionStats{
		Name:             sess.name,
		Tasks:            int(sess.nTasks.Load()),
		Admitted:         sess.admitted.Load(),
		Rejected:         sess.rejected.Load(),
		Removed:          sess.removed.Load(),
		StateCacheHits:   sess.stateHits.Load(),
		StateCacheMisses: sess.stateMisses.Load(),
		Admission:        report.AdmissionJSON(admission),
	}
	ws := wirePool.Get().(*wireScratch)
	defer wirePool.Put(ws)
	if b, ok := api.AppendSessionStats(ws.out[:0], &st); ok {
		ws.out = append(b, '\n')
		writeRaw(w, ws.out)
		return
	}
	cold := st // keep st off the heap on the fast path; writeJSON boxes
	writeJSON(w, http.StatusOK, cold)
}

// handleAudit replays the commit log: rebuild the session's state as
// of just before durable sequence seq, re-run that mutation's probe
// with the collector on, and report what the analysis concluded.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get(api.AuditSeqParam)
	seq, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		writeError(w, fmt.Errorf("audit: bad %s %q: want a positive integer", api.AuditSeqParam, raw))
		return
	}
	rep, err := s.store.Audit(r.PathValue("name"), seq)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.store
	writeJSON(w, http.StatusOK, api.ServerStats{
		Requests:         s.requests.Load(),
		SessionsLive:     st.count.Load(),
		SessionsCreated:  st.created.Load(),
		SessionsEvicted:  st.evicted.Load(),
		SessionsRestored: st.restored.Load(),
		SessionsDeleted:  st.deleted.Load(),
		// Admission totals flushed by closed/evicted sessions; live
		// session detail is at /v1/sessions/{name}/stats.
		AdmissionFlushed: report.AdmissionJSON(st.coll.Snapshot()),
	})
}

// --- batch & sweep ---------------------------------------------------

// handleBatch admits a whole set through the session's live context,
// streaming one NDJSON verdict per task and a final summary line. The
// request context cancels the remainder (client disconnect).
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	sess := s.session(w, r)
	if sess == nil {
		return
	}
	var req api.BatchRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	streaming := false
	// Verdict lines stream through one reused buffer — the fast
	// encoder never declines a Verdict, so bytes stay identical to
	// enc.Encode while the per-line Encoder round trip disappears.
	ws := wirePool.Get().(*wireScratch)
	defer wirePool.Put(ws)
	emit := func(v api.Verdict) {
		streaming = true
		ws.out = api.AppendVerdict(ws.out[:0], &v)
		ws.out = append(ws.out, '\n')
		_, _ = w.Write(ws.out) //nolint:errcheck // stream best-effort; summary still lands
		if flusher != nil {
			flusher.Flush()
		}
	}
	var sum api.BatchSummary
	var opErr error
	if req.TryOnly {
		// Read path: probes fan out over a worker pool against one
		// snapshot; nothing enters the actor, nothing commits.
		sum, opErr = sess.batchTryRead(r.Context(), req, emit)
	} else if !callSession(w, sess, func() {
		sum, opErr = sess.batchLocked(r.Context(), req, emit)
	}) {
		return
	}
	if opErr != nil {
		if !streaming {
			// Nothing emitted yet (a pre-flight rejection such as
			// probe_pending): the envelope can carry its real status.
			writeError(w, opErr)
			return
		}
		// Mid-stream failure: headers are sent; deliver the error
		// envelope as the final NDJSON line.
		_ = enc.Encode(toAPIError(opErr)) //nolint:errcheck
		return
	}
	_ = enc.Encode(sum) //nolint:errcheck
}

// handleSweep runs the experiment pipeline under the request context:
// a dropped connection cancels the in-flight sweep between
// placements (experiment.RunContext).
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req api.SweepRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	model, err := parseModel(req.Model)
	if err != nil {
		writeError(w, err)
		return
	}
	var algs []partition.Algorithm
	for _, name := range req.Algorithms {
		alg, err := partition.ByName(name)
		if err != nil {
			writeError(w, err)
			return
		}
		algs = append(algs, alg)
	}
	cfg := experiment.Config{
		Cores:        req.Cores,
		Tasks:        req.Tasks,
		SetsPerPoint: req.SetsPerPoint,
		Algorithms:   algs,
		Model:        model,
		Seed:         req.Seed,
		Utilizations: req.Utilizations,
	}
	if r.Header.Get("Accept") == "text/event-stream" {
		// SSE negotiation: the same progress stream (the Progress/
		// Wilson aggregator's cell updates) framed as event-stream
		// for browser EventSource consumers; Stream is implied.
		s.sweepSSE(w, r, cfg)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	if req.Stream {
		flusher, _ := w.(http.Flusher)
		cfg.Progress = func(u experiment.CellUpdate) {
			_ = enc.Encode(report.ProgressJSON(u)) //nolint:errcheck
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
	res := experiment.RunContext(r.Context(), cfg)
	_ = enc.Encode(report.SweepResultJSON(res)) //nolint:errcheck
}

// sweepSSE streams sweep progress as Server-Sent Events: one
// "progress" event per aggregator cell update, a final "result"
// event with the full sweep result.
func (s *Server) sweepSSE(w http.ResponseWriter, r *http.Request, cfg experiment.Config) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, errStreamingUnsupported)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	emit := func(event string, v any) {
		data, err := json.Marshal(v)
		if err != nil {
			return
		}
		_, _ = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		flusher.Flush()
	}
	cfg.Progress = func(u experiment.CellUpdate) { emit("progress", report.ProgressJSON(u)) }
	res := experiment.RunContext(r.Context(), cfg)
	emit("result", report.SweepResultJSON(res))
}
