package admitd

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/api"
	"repro/internal/analysis"
	"repro/internal/overhead"
	"repro/internal/task"
	"repro/internal/taskgen"
)

// Errors surfaced to the HTTP layer with distinct status codes.
var (
	// ErrSessionClosed is returned by calls against a session whose
	// actor has exited (evicted or deleted concurrently).
	ErrSessionClosed = errors.New("admitd: session closed")
	// ErrProbePending rejects a new mutation while a held probe
	// awaits commit/rollback.
	ErrProbePending = errors.New("admitd: a held probe is pending (commit or rollback first)")
	// ErrNoProbePending rejects commit/rollback with nothing held.
	ErrNoProbePending = errors.New("admitd: no probe pending")
	// ErrDuplicateTask rejects admitting an ID the session already
	// hosts.
	ErrDuplicateTask = errors.New("admitd: task id already admitted")
	// ErrUnknownTask is returned by remove for an absent ID.
	ErrUnknownTask = errors.New("admitd: no such task in session")
)

const (
	pendNone = iota
	pendPlace
	pendSplit
)

// Session is one live cluster session: an evolving assignment, the
// incremental admission context bound to it, and the actor goroutine
// that serializes every request against them. All fields below mu are
// owned by the actor; the HTTP layer only ever touches them through
// call.
type Session struct {
	name   string
	policy task.Policy
	model  *overhead.Model

	a     *task.Assignment
	actx  analysis.Context
	tasks map[task.ID]bool

	// Held-probe state (the two-phase try/commit|rollback protocol).
	pendKind  int
	pendFits  bool
	pendTask  *task.Task
	pendSplit *task.Split
	pendCore  int

	// Request counters (atomics: read by /stats without the actor).
	admitted, rejected, removed atomic.Int64
	// baseStats carries admission counters restored from a snapshot,
	// so eviction/restore cycles don't zero the reported totals.
	baseStats analysis.AdmissionStats

	lastUsed atomic.Int64 // store's logical clock at last touch

	mu     sync.Mutex
	closed bool
	reqs   chan *sessionCall
	done   chan struct{}
}

type sessionCall struct {
	f    func()
	done chan struct{}
}

// newSession builds a session over an already-populated assignment
// (empty for fresh sessions, rebuilt for restores) and starts its
// actor.
func newSession(name string, p task.Policy, model *overhead.Model, a *task.Assignment, coll *analysis.Collector) *Session {
	a.Policy = p
	s := &Session{
		name:   name,
		policy: p,
		model:  model,
		a:      a,
		actx:   analysis.ForPolicy(p).NewContext(a, model),
		tasks:  make(map[task.ID]bool),
		reqs:   make(chan *sessionCall, 16),
		done:   make(chan struct{}),
	}
	if coll != nil {
		s.actx.SetCollector(coll)
	}
	for _, ts := range a.Normal {
		for _, t := range ts {
			s.tasks[t.ID] = true
		}
	}
	for _, sp := range a.Splits {
		s.tasks[sp.Task.ID] = true
	}
	go s.loop()
	return s
}

// loop is the actor: it owns the context and runs every request in
// arrival order, so per-session state needs no further locking.
func (s *Session) loop() {
	for c := range s.reqs {
		c.f()
		close(c.done)
	}
	close(s.done)
}

// call runs f on the actor and waits for it.
func (s *Session) call(f func()) error {
	c := &sessionCall{f: f, done: make(chan struct{})}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrSessionClosed
	}
	s.reqs <- c
	s.mu.Unlock()
	<-c.done
	return nil
}

// close stops the actor after draining queued requests; the final
// flush folds the context's counters into the attached collector and
// the process aggregate.
func (s *Session) close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.reqs)
	}
	s.mu.Unlock()
	<-s.done
	s.actx.Flush()
}

// admitLocked runs one admission on the actor: explicit-core or
// first-fit probe, committed when it fits. Two-phase admission goes
// through try with "hold" (or split's Hold) instead.
func (s *Session) admitLocked(req api.AdmitRequest) (api.Verdict, error) {
	if s.pendKind != pendNone {
		return api.Verdict{}, ErrProbePending
	}
	t, err := toTask(req.Task, s.policy)
	if err != nil {
		return api.Verdict{}, err
	}
	if s.tasks[t.ID] {
		return api.Verdict{}, fmt.Errorf("%w: %d", ErrDuplicateTask, t.ID)
	}
	resp := api.Verdict{TaskID: int64(t.ID), Core: -1}
	probe := func(c int) bool {
		resp.Probes++
		return s.actx.TryPlace(t, c)
	}
	if req.Core != nil {
		c := *req.Core
		if c < 0 || c >= s.a.NumCores {
			return api.Verdict{}, fmt.Errorf("core %d out of range (%d cores)", c, s.a.NumCores)
		}
		resp.Admitted = probe(c)
		if resp.Admitted {
			resp.Core = c
		}
		s.resolveProbe(&resp, false, t, nil, c)
		return resp, nil
	}
	// First fit over all cores.
	for c := 0; c < s.a.NumCores; c++ {
		if probe(c) {
			resp.Admitted, resp.Core = true, c
			s.resolveProbe(&resp, false, t, nil, c)
			return resp, nil
		}
		s.actx.Rollback()
	}
	s.rejected.Add(1)
	return resp, nil
}

// tryLocked answers an admission query without changing the
// committed state: the probe is rolled back after the verdict —
// unless req.Hold keeps it pending for an explicit commit/rollback
// (the two-phase protocol).
func (s *Session) tryLocked(req api.AdmitRequest) (api.Verdict, error) {
	if s.pendKind != pendNone {
		return api.Verdict{}, ErrProbePending
	}
	t, err := toTask(req.Task, s.policy)
	if err != nil {
		return api.Verdict{}, err
	}
	if s.tasks[t.ID] {
		return api.Verdict{}, fmt.Errorf("%w: %d", ErrDuplicateTask, t.ID)
	}
	resp := api.Verdict{TaskID: int64(t.ID), Core: -1}
	hold := func(c int) {
		resp.Pending = true
		s.pendKind = pendPlace
		s.pendFits = resp.Admitted
		s.pendTask, s.pendCore = t, c
	}
	if req.Core != nil {
		c := *req.Core
		if c < 0 || c >= s.a.NumCores {
			return api.Verdict{}, fmt.Errorf("core %d out of range (%d cores)", c, s.a.NumCores)
		}
		resp.Probes = 1
		resp.Admitted = s.actx.TryPlace(t, c)
		if resp.Admitted {
			resp.Core = c
		}
		if req.Hold {
			hold(c)
		} else {
			s.actx.Rollback()
		}
		return resp, nil
	}
	for c := 0; c < s.a.NumCores; c++ {
		resp.Probes++
		if s.actx.TryPlace(t, c) {
			resp.Admitted, resp.Core = true, c
			if req.Hold {
				hold(c)
			} else {
				s.actx.Rollback()
			}
			return resp, nil
		}
		s.actx.Rollback()
	}
	return resp, nil
}

// splitLocked probes/admits a split task.
func (s *Session) splitLocked(req api.SplitRequest, hold bool) (api.Verdict, error) {
	if s.pendKind != pendNone {
		return api.Verdict{}, ErrProbePending
	}
	sp, err := toSplit(req.Split, s.policy)
	if err != nil {
		return api.Verdict{}, err
	}
	if s.tasks[sp.Task.ID] {
		return api.Verdict{}, fmt.Errorf("%w: %d", ErrDuplicateTask, sp.Task.ID)
	}
	for _, p := range sp.Parts {
		if p.Core < 0 || p.Core >= s.a.NumCores {
			return api.Verdict{}, fmt.Errorf("split part core %d out of range (%d cores)", p.Core, s.a.NumCores)
		}
	}
	resp := api.Verdict{TaskID: int64(sp.Task.ID), Core: -1, Probes: 1}
	resp.Admitted = s.actx.TrySplit(sp, sp.Parts[0].Core)
	s.resolveProbe(&resp, hold, nil, sp, -1)
	return resp, nil
}

// resolveProbe finishes a resolved TryPlace/TrySplit: commit the
// admitted mutation, roll a rejection back, or hold the probe for the
// explicit two-phase protocol.
func (s *Session) resolveProbe(resp *api.Verdict, hold bool, t *task.Task, sp *task.Split, core int) {
	if hold {
		resp.Pending = true
		s.pendFits = resp.Admitted
		s.pendTask, s.pendSplit, s.pendCore = t, sp, core
		if sp != nil {
			s.pendKind = pendSplit
		} else {
			s.pendKind = pendPlace
		}
		return
	}
	if resp.Admitted {
		s.actx.Commit()
		s.registerAdmitted(t, sp)
	} else {
		s.actx.Rollback()
		s.rejected.Add(1)
	}
}

// registerAdmitted records a committed admission.
func (s *Session) registerAdmitted(t *task.Task, sp *task.Split) {
	if sp != nil {
		s.tasks[sp.Task.ID] = true
	} else {
		s.tasks[t.ID] = true
	}
	s.admitted.Add(1)
}

// ErrProbeRejected refuses committing a held probe whose verdict was
// negative — committing it would install an inadmissible task.
var ErrProbeRejected = errors.New("admitd: held probe was rejected; rollback it")

// commitLocked resolves a held probe by keeping the mutation. Only
// an admitted probe may be committed: a rejected one would put the
// session into a committed-but-unschedulable state.
func (s *Session) commitLocked() (api.Verdict, error) {
	if s.pendKind == pendNone {
		return api.Verdict{}, ErrNoProbePending
	}
	if !s.pendFits {
		return api.Verdict{}, ErrProbeRejected
	}
	resp := api.Verdict{Admitted: true, Core: s.pendCore}
	if s.pendSplit != nil {
		resp.TaskID = int64(s.pendSplit.Task.ID)
	} else {
		resp.TaskID = int64(s.pendTask.ID)
	}
	s.actx.Commit()
	s.registerAdmitted(s.pendTask, s.pendSplit)
	s.clearPending()
	return resp, nil
}

// rollbackLocked resolves a held probe by undoing the mutation.
func (s *Session) rollbackLocked() (api.Verdict, error) {
	if s.pendKind == pendNone {
		return api.Verdict{}, ErrNoProbePending
	}
	resp := api.Verdict{Admitted: false, Core: -1}
	if s.pendSplit != nil {
		resp.TaskID = int64(s.pendSplit.Task.ID)
	} else {
		resp.TaskID = int64(s.pendTask.ID)
	}
	s.actx.Rollback()
	s.rejected.Add(1)
	s.clearPending()
	return resp, nil
}

func (s *Session) clearPending() {
	s.pendKind, s.pendFits = pendNone, false
	s.pendTask, s.pendSplit, s.pendCore = nil, nil, -1
}

// removeLocked deletes an admitted task — the analysis layer's
// removal invalidation path.
func (s *Session) removeLocked(id task.ID) error {
	if s.pendKind != pendNone {
		return ErrProbePending
	}
	if !s.tasks[id] {
		return fmt.Errorf("%w: %d", ErrUnknownTask, id)
	}
	if !s.actx.Remove(id) {
		return fmt.Errorf("%w: %d", ErrUnknownTask, id)
	}
	delete(s.tasks, id)
	s.removed.Add(1)
	return nil
}

// stateLocked renders the committed assignment. A held probe's
// tentative mutation lives provisionally inside the assignment
// (TryPlace/TrySplit mutate in place until Commit/Rollback), so it
// is filtered out here: state always describes committed state only.
func (s *Session) stateLocked() api.State {
	resp := api.State{
		Name:         s.name,
		Cores:        s.a.NumCores,
		Policy:       policyName(s.policy),
		ProbePending: s.pendKind != pendNone,
	}
	tentTask, tentSplit := s.pendTask, s.pendSplit
	for c := 0; c < s.a.NumCores; c++ {
		u := 0.0
		for _, t := range s.a.Normal[c] {
			if t == tentTask {
				continue
			}
			resp.Tasks = append(resp.Tasks, fromTask(t, c))
			u += t.Utilization()
		}
		for _, sp := range s.a.Splits {
			if sp == tentSplit {
				continue
			}
			for _, p := range sp.Parts {
				if p.Core == c {
					u += float64(p.Budget) / float64(sp.Task.Period)
				}
			}
		}
		resp.CoreUtilization = append(resp.CoreUtilization, u)
	}
	for _, sp := range s.a.Splits {
		if sp == tentSplit {
			continue
		}
		resp.Splits = append(resp.Splits, fromSplit(sp))
	}
	if s.pendKind == pendNone {
		ok := s.actx.Schedulable()
		resp.Schedulable = &ok
	}
	return resp
}

// statsLocked returns this session's admission counters: the live
// context counters plus whatever a snapshot restore carried over.
func (s *Session) statsLocked() analysis.AdmissionStats {
	st := s.actx.Stats()
	b := s.baseStats
	return analysis.AdmissionStats{
		Probes:       st.Probes + b.Probes,
		FullTests:    st.FullTests + b.FullTests,
		CoreTests:    st.CoreTests + b.CoreTests,
		VerdictHits:  st.VerdictHits + b.VerdictHits,
		FPSolves:     st.FPSolves + b.FPSolves,
		FPIterations: st.FPIterations + b.FPIterations,
		WarmStarts:   st.WarmStarts + b.WarmStarts,
	}
}

// batchLocked admits a whole set task by task, emitting one verdict
// per task; ctx aborts the remainder (client disconnect).
func (s *Session) batchLocked(ctx context.Context, req api.BatchRequest, emit func(api.Verdict)) (api.BatchSummary, error) {
	if s.pendKind != pendNone {
		return api.BatchSummary{}, ErrProbePending
	}
	var wire []api.Task
	switch {
	case req.Generate != nil && len(req.Tasks) > 0:
		return api.BatchSummary{}, fmt.Errorf("batch: tasks and generate are mutually exclusive")
	case req.Generate != nil:
		cfg, err := toTaskGen(req.Generate)
		if err != nil {
			return api.BatchSummary{}, err
		}
		if err := cfg.Validate(); err != nil {
			return api.BatchSummary{}, err
		}
		set := taskgen.New(cfg).Next()
		base := s.nextFreeID()
		for i, t := range set.Tasks {
			j := fromTask(t, -1)
			j.ID = base + int64(i)
			wire = append(wire, j)
		}
	case len(req.Tasks) > 0:
		wire = req.Tasks
	default:
		return api.BatchSummary{}, fmt.Errorf("batch: need tasks or generate")
	}
	if req.Order == "util-desc" {
		sort.SliceStable(wire, func(i, k int) bool {
			ui := float64(wire[i].WCETNs) / float64(wire[i].PeriodNs)
			uk := float64(wire[k].WCETNs) / float64(wire[k].PeriodNs)
			if ui != uk {
				return ui > uk
			}
			return wire[i].ID < wire[k].ID
		})
	} else if req.Order != "" && req.Order != "input" {
		return api.BatchSummary{}, fmt.Errorf("batch: unknown order %q (input|util-desc)", req.Order)
	}
	sum := api.BatchSummary{Done: true}
	for _, j := range wire {
		if ctx.Err() != nil {
			sum.Canceled = true
			break
		}
		v, err := s.admitLocked(api.AdmitRequest{Task: j})
		if err != nil {
			return sum, err
		}
		if v.Admitted {
			sum.Admitted++
		} else {
			sum.Rejected++
		}
		if emit != nil {
			emit(v)
		}
	}
	sum.Schedulable = s.actx.Schedulable()
	sum.TaskCount = len(s.tasks)
	return sum, nil
}

// nextFreeID picks a base ID above everything the session hosts, so
// generated batches never collide with admitted tasks.
func (s *Session) nextFreeID() int64 {
	max := int64(0)
	for id := range s.tasks {
		if int64(id) > max {
			max = int64(id)
		}
	}
	return max + 1
}
