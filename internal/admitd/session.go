package admitd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/api"
	"repro/internal/analysis"
	"repro/internal/overhead"
	"repro/internal/task"
	"repro/internal/taskgen"
	"repro/internal/wal"
)

// Errors surfaced to the HTTP layer with distinct status codes.
var (
	// ErrSessionClosed is returned by calls against a session whose
	// actor has exited (evicted or deleted concurrently).
	ErrSessionClosed = errors.New("admitd: session closed")
	// ErrProbePending rejects a new mutation while a held probe
	// awaits commit/rollback.
	ErrProbePending = errors.New("admitd: a held probe is pending (commit or rollback first)")
	// ErrNoProbePending rejects commit/rollback with nothing held.
	ErrNoProbePending = errors.New("admitd: no probe pending")
	// ErrDuplicateTask rejects admitting an ID the session already
	// hosts.
	ErrDuplicateTask = errors.New("admitd: task id already admitted")
	// ErrUnknownTask is returned by remove for an absent ID.
	ErrUnknownTask = errors.New("admitd: no such task in session")
)

const (
	pendNone = iota
	pendPlace
	pendSplit
)

// Session is one live cluster session, split into two paths:
//
//   - The write path — admit, split, commit, rollback, remove, and
//     anything touching the held-probe protocol — is serialized by
//     the actor goroutine, exactly as before.
//   - The read path — non-holding try, state, stats, and try-only
//     batches — never enters the actor: it forks the context's
//     latest published snapshot (analysis.Snapshot, an atomic load)
//     and answers from that immutable committed state, so any number
//     of goroutines read concurrently while the actor commits.
//
// Mutable fields the read path needs are mirrored in atomics
// (pendFlag, nTasks, pubStats) or concurrent structures (tasks); the
// actor owns their updates. Everything else below mu is actor-owned.
type Session struct {
	name   string
	policy task.Policy
	model  *overhead.Model

	a    *task.Assignment
	actx analysis.Context

	// tasks is the committed task-ID set (see idSet): actor-written
	// with O(1) lock-free writes, read lock-free and allocation-free
	// by the read path's duplicate checks — sync.Map.Load would box
	// the int64-backed key on every call, and a clone-per-write COW
	// map costs O(n) per admit. nTasks mirrors its size.
	tasks  *idSet
	nTasks atomic.Int64

	// Held-probe state (the two-phase try/commit|rollback protocol);
	// actor-owned, with pendFlag mirroring pendKind for the read path.
	pendKind  int
	pendFlag  atomic.Int32
	pendFits  bool
	pendTask  *task.Task
	pendSplit *task.Split
	pendCore  int

	// Request counters (atomics: read by /stats without the actor).
	admitted, rejected, removed atomic.Int64
	// baseStats carries admission counters restored from a snapshot,
	// so eviction/restore cycles don't zero the reported totals.
	baseStats analysis.AdmissionStats
	// pubStats is the writer-side context counters as of the last
	// actor operation, republished by the actor loop so the stats
	// read path never touches the actor-owned context counters.
	pubStats atomic.Pointer[analysis.AdmissionStats]

	// stateCache memoizes the rendered committed state per snapshot
	// sequence, so repeated state reads between commits are O(1).
	// stateHits/stateMisses count reads served from (vs. rendering
	// into) the memo — surfaced in the session stats response and,
	// via the server-wide counters in met, on /metrics.
	stateCache  atomic.Pointer[stateCacheEntry]
	stateHits   atomic.Int64
	stateMisses atomic.Int64

	// met is the owning server's telemetry plane; nil when the
	// session runs without one (direct construction in tests). Every
	// use is a nil-checked atomic op — never an allocation.
	met *serverMetrics

	// feed is the SSE change-feed hub, created lazily by the first
	// subscriber; nil means no subscribers ever attached and the
	// write path pays one atomic load per committed mutation.
	// feedPend stages events within one actor drain (actor-owned);
	// they flush to the hub after the drain's snapshot publish, so a
	// subscriber never learns a sequence number before the snapshot
	// carrying it is readable.
	feed     atomic.Pointer[feedHub]
	feedPend []feedEvent

	// Durability plane (nil/zero when the store runs without one).
	// Set by attachWal before the session is reachable; the actor
	// owns every use. Each committed mutation appends one record to
	// the store-shard commit log at its durable sequence number
	// (seqBase + CommitSeq — seqBase restores the dense numbering
	// across restarts), and the actor loop commits the log once per
	// drain, before completion tokens: an acked write is a durable
	// write under the group fsync policy.
	wlog      *wal.Log
	wplane    *walPlane // owner of wlog; routes drain commits to the group batcher
	wstream   string
	walGen    uint64
	seqBase   int64
	walEnt    *streamState
	walBuf    []byte // actor-owned record-encode scratch
	walStaged int64  // records appended in the current drain

	// walTail is the previous drain handoff's completion channel
	// (actor-owned; nil before the first durable drain). Handoffs
	// chain on it so acks and feed publishes release in drain order
	// even though each drain's fsync wait runs off the actor.
	walTail <-chan struct{}

	lastUsed atomic.Int64 // store's logical clock at last touch

	// Drain state (actor-owned): inDrain is set while the actor works
	// through one mailbox drain under a context group commit;
	// drainUnreg collects task-ID unregistrations deferred until the
	// drain's one snapshot publish (see removeLocked).
	inDrain    bool
	drainUnreg []task.ID

	mu     sync.Mutex
	closed bool
	// closedFlag mirrors closed for the read path, which never takes
	// mu: reads against an evicted/deleted session get the same
	// session_closed contract as writes.
	closedFlag atomic.Bool
	reqs       chan *sessionCall
	done       chan struct{}
}

// stateCacheEntry is one rendered committed state (body only; the
// probe-pending overlay is stamped per request). enc caches the
// marshaled response body per overlay variant, so a state read that
// hits both caches writes precomputed bytes and never touches
// encoding/json.
type stateCacheEntry struct {
	seq int64
	st  api.State
	enc [3]atomic.Pointer[[]byte] // indexed by stateVariant*
}

// Overlay variants for stateCacheEntry.enc.
const (
	stateVariantSchedTrue = iota
	stateVariantSchedFalse
	stateVariantPending
)

// sessionCall is one queued actor operation. Calls are pooled: done
// is a reusable one-slot channel (the actor sends one token per call,
// the caller receives exactly one), so the steady-state write path
// allocates neither the call nor the channel.
type sessionCall struct {
	f    func()
	done chan struct{}
}

var callPool = sync.Pool{
	New: func() any { return &sessionCall{done: make(chan struct{}, 1)} },
}

// newSession builds a session over an already-populated assignment
// (empty for fresh sessions, rebuilt for restores) and starts its
// actor.
func newSession(name string, p task.Policy, model *overhead.Model, a *task.Assignment, coll *analysis.Collector, met *serverMetrics) *Session {
	a.Policy = p
	s := &Session{
		name:   name,
		policy: p,
		model:  model,
		a:      a,
		actx:   analysis.ForPolicy(p).NewContext(a, model),
		met:    met,
		reqs:   make(chan *sessionCall, 16),
		done:   make(chan struct{}),
	}
	if coll != nil {
		s.actx.SetCollector(coll)
	}
	if met != nil {
		// Live fixed-point iteration histogram: observed per
		// read-path probe as its stats fold into the collector.
		s.actx.ReadCollector().SetFPObserver(met.fpObserver())
	}
	s.tasks = newIDSet()
	for _, ts := range a.Normal {
		for _, t := range ts {
			s.registerTask(t.ID)
		}
	}
	for _, sp := range a.Splits {
		s.registerTask(sp.Task.ID)
	}
	s.pubStats.Store(&analysis.AdmissionStats{})
	// Engage snapshot publication before any reader can reach the
	// session (the first Fork must not race the actor).
	s.actx.Fork()
	go s.loop()
	return s
}

// registerTask maintains the committed task-ID set. Writers are
// serialized already (the actor, or construction before the session
// is reachable); O(1) amortized. The inverse lives in removeLocked,
// where the ID-set removal is ordered against the snapshot publish.
func (s *Session) registerTask(id task.ID) {
	s.tasks.add(id)
	s.nTasks.Add(1)
}

// hasTask is the read-path duplicate check: an atomic table load plus
// a linear probe, no lock, no allocation.
func (s *Session) hasTask(id task.ID) bool {
	return s.tasks.has(id)
}

// maxDrain bounds one mailbox drain: enough to coalesce a deep queue
// into one publish, small enough that the first caller in a drain is
// never held behind an unbounded backlog.
const maxDrain = 32

// loop is the actor: it owns the context and runs requests in arrival
// order, so per-session state needs no further locking. The mailbox
// drains in groups: each blocking receive is topped up with whatever
// else is already queued (up to maxDrain), the whole drain runs under
// one context group commit — every verdict still computed and
// returned per operation, exactly as ungrouped — and the committed
// state publishes ONE snapshot at EndGroup instead of one per
// mutation. Deferred unregistrations and the stats republish follow
// the publish; completion is signaled last, so a caller never
// observes its own mutation missing from the published snapshot.
func (s *Session) loop() {
	var batch [maxDrain]*sessionCall
	var staged [maxDrain]int64 // cumulative walStaged after each op
	for c := range s.reqs {
		batch[0] = c
		n := 1
	drain:
		for n < maxDrain {
			select {
			case c2, ok := <-s.reqs:
				if !ok {
					break drain // closed; finish this drain, then exit
				}
				batch[n] = c2
				n++
			default:
				break drain
			}
		}
		s.inDrain = true
		seqBefore := s.actx.CommitSeq()
		s.actx.BeginGroup()
		for i := 0; i < n; i++ {
			batch[i].f()
			staged[i] = s.walStaged
		}
		s.actx.EndGroup()
		s.inDrain = false
		for _, id := range s.drainUnreg {
			s.tasks.remove(id)
		}
		s.drainUnreg = s.drainUnreg[:0]
		st := s.actx.Stats()
		s.pubStats.Store(&st)
		if m := s.met; m != nil {
			m.drainSize.ObserveInt(int64(n))
			if s.actx.CommitSeq() != seqBefore {
				m.publishes.Inc()
			}
		}
		// Close the drain's commit boundary on the durability plane.
		// Under the always policy the fsync wait is handed off the
		// actor: the completion tokens of the ops that staged records
		// and the drain's staged feed events travel with it and
		// release only after the covering fsync — the actor keeps
		// draining while the cross-actor batcher accumulates. Ops
		// that staged nothing (reads, rejections) release
		// immediately: they make no durability claim. Handoffs chain
		// FIFO per session, so acks and feed publishes still land in
		// drain order, and a sequence number is never acked, and
		// never reaches a subscriber, before it is durable.
		//
		// Under group and off, acks never wait for the device —
		// records were appended (buffered) by the ops themselves and
		// the plane's background committer (group) or the OS (off)
		// carries them down; the drain falls through to the immediate
		// release path like a non-durable session.
		if s.wlog != nil && s.walStaged > 0 {
			if m := s.met; m != nil {
				m.walRecsPerDrain.ObserveInt(s.walStaged)
			}
			s.walStaged = 0
			if s.wplane.syncOnDrain {
				calls := make([]*sessionCall, 0, n)
				var prev int64
				for i := 0; i < n; i++ {
					if staged[i] != prev {
						calls = append(calls, batch[i])
					} else {
						batch[i].done <- struct{}{}
					}
					prev = staged[i]
					batch[i] = nil
				}
				h := &walHandoff{
					calls: calls,
					feed:  s.feedPend,
					prev:  s.walTail,
					done:  make(chan struct{}),
				}
				s.feedPend = nil
				s.walTail = h.done
				go s.commitHandoff(h)
				continue
			}
		}
		// Immediate release: read-only, non-durable, or bounded-loss
		// drains. The feed flush still runs after the drain's publish —
		// every sequence number a subscriber sees is already readable.
		s.feedFlush()
		for i := 0; i < n; i++ {
			batch[i].done <- struct{}{}
			batch[i] = nil
		}
	}
	close(s.done)
}

// walHandoff carries one drain's durability wait off the actor: the
// completion tokens and staged feed events that may release only after
// the covering fsync. prev is the preceding drain's handoff (nil for
// the first), giving per-session FIFO release.
type walHandoff struct {
	calls []*sessionCall
	feed  []feedEvent
	prev  <-chan struct{}
	done  chan struct{}
}

// commitHandoff completes one drain off the actor: wait for the
// covering fsync, then — in drain order — publish the staged feed
// events and release the completion tokens. Commit errors latch the
// session's failure flag but still release the tokens (the callers
// already hold their verdicts; subsequent mutations will refuse).
func (s *Session) commitHandoff(h *walHandoff) {
	if err := s.wplane.commitLog(s.wlog); err != nil {
		s.walFail()
	}
	if h.prev != nil {
		<-h.prev
	}
	if len(h.feed) > 0 {
		if hub := s.feed.Load(); hub != nil {
			hub.publish(h.feed, s.met)
			if m := s.met; m != nil {
				m.feedEvents.Add(int64(len(h.feed)))
			}
		}
	}
	for _, c := range h.calls {
		c.done <- struct{}{}
	}
	close(h.done)
}

// call runs f on the actor and waits for it.
func (s *Session) call(f func()) error {
	c := callPool.Get().(*sessionCall)
	c.f = f
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		c.f = nil
		callPool.Put(c)
		return ErrSessionClosed
	}
	s.reqs <- c
	s.mu.Unlock()
	<-c.done
	c.f = nil
	callPool.Put(c)
	return nil
}

// close stops the actor after draining queued requests; the final
// flush folds the context's counters into the attached collector and
// the process aggregate.
func (s *Session) close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.closedFlag.Store(true)
		close(s.reqs)
	}
	s.mu.Unlock()
	<-s.done
	// The actor has exited (so walTail is stable); wait out the last
	// in-flight commit handoff before the caller snapshots or deletes.
	if s.walTail != nil {
		<-s.walTail
	}
	s.actx.Flush()
}

// admitLocked runs one admission on the actor: explicit-core or
// first-fit probe, committed when it fits. Two-phase admission goes
// through try with "hold" (or split's Hold) instead.
func (s *Session) admitLocked(req api.AdmitRequest) (api.Verdict, error) {
	if s.pendKind != pendNone {
		return api.Verdict{}, ErrProbePending
	}
	t, err := toTask(req.Task, s.policy)
	if err != nil {
		return api.Verdict{}, err
	}
	if s.hasTask(t.ID) {
		return api.Verdict{}, fmt.Errorf("%w: %d", ErrDuplicateTask, t.ID)
	}
	resp := api.Verdict{TaskID: int64(t.ID), Core: -1}
	probe := func(c int) bool {
		resp.Probes++
		return s.actx.TryPlace(t, c)
	}
	if req.Core != nil {
		c := *req.Core
		if c < 0 || c >= s.a.NumCores {
			return api.Verdict{}, fmt.Errorf("core %d out of range (%d cores)", c, s.a.NumCores)
		}
		resp.Admitted = probe(c)
		if resp.Admitted {
			resp.Core = c
		}
		s.resolveProbe(&resp, false, t, nil, c)
		return resp, nil
	}
	// First fit over all cores.
	for c := 0; c < s.a.NumCores; c++ {
		if probe(c) {
			resp.Admitted, resp.Core = true, c
			s.resolveProbe(&resp, false, t, nil, c)
			return resp, nil
		}
		s.actx.Rollback()
	}
	s.rejected.Add(1)
	return resp, nil
}

// tryLocked answers an admission query without changing the
// committed state: the probe is rolled back after the verdict —
// unless req.Hold keeps it pending for an explicit commit/rollback
// (the two-phase protocol).
func (s *Session) tryLocked(req api.AdmitRequest) (api.Verdict, error) {
	if s.pendKind != pendNone {
		return api.Verdict{}, ErrProbePending
	}
	t, err := toTask(req.Task, s.policy)
	if err != nil {
		return api.Verdict{}, err
	}
	if s.hasTask(t.ID) {
		return api.Verdict{}, fmt.Errorf("%w: %d", ErrDuplicateTask, t.ID)
	}
	resp := api.Verdict{TaskID: int64(t.ID), Core: -1}
	hold := func(c int) {
		resp.Pending = true
		s.setPend(pendPlace)
		s.pendFits = resp.Admitted
		s.pendTask, s.pendCore = t, c
	}
	if req.Core != nil {
		c := *req.Core
		if c < 0 || c >= s.a.NumCores {
			return api.Verdict{}, fmt.Errorf("core %d out of range (%d cores)", c, s.a.NumCores)
		}
		resp.Probes = 1
		resp.Admitted = s.actx.TryPlace(t, c)
		if resp.Admitted {
			resp.Core = c
		}
		if req.Hold {
			hold(c)
		} else {
			s.actx.Rollback()
		}
		return resp, nil
	}
	for c := 0; c < s.a.NumCores; c++ {
		resp.Probes++
		if s.actx.TryPlace(t, c) {
			resp.Admitted, resp.Core = true, c
			if req.Hold {
				hold(c)
			} else {
				s.actx.Rollback()
			}
			return resp, nil
		}
		s.actx.Rollback()
	}
	return resp, nil
}

// splitLocked probes/admits a split task.
func (s *Session) splitLocked(req api.SplitRequest, hold bool) (api.Verdict, error) {
	if s.pendKind != pendNone {
		return api.Verdict{}, ErrProbePending
	}
	sp, err := toSplit(req.Split, s.policy)
	if err != nil {
		return api.Verdict{}, err
	}
	if s.hasTask(sp.Task.ID) {
		return api.Verdict{}, fmt.Errorf("%w: %d", ErrDuplicateTask, sp.Task.ID)
	}
	for _, p := range sp.Parts {
		if p.Core < 0 || p.Core >= s.a.NumCores {
			return api.Verdict{}, fmt.Errorf("split part core %d out of range (%d cores)", p.Core, s.a.NumCores)
		}
	}
	resp := api.Verdict{TaskID: int64(sp.Task.ID), Core: -1, Probes: 1}
	resp.Admitted = s.actx.TrySplit(sp, sp.Parts[0].Core)
	s.resolveProbe(&resp, hold, nil, sp, -1)
	return resp, nil
}

// resolveProbe finishes a resolved TryPlace/TrySplit: commit the
// admitted mutation, roll a rejection back, or hold the probe for the
// explicit two-phase protocol.
func (s *Session) resolveProbe(resp *api.Verdict, hold bool, t *task.Task, sp *task.Split, core int) {
	if hold {
		resp.Pending = true
		s.pendFits = resp.Admitted
		s.pendTask, s.pendSplit, s.pendCore = t, sp, core
		if sp != nil {
			s.setPend(pendSplit)
		} else {
			s.setPend(pendPlace)
		}
		return
	}
	if resp.Admitted {
		// Register before Commit publishes the grown snapshot: a
		// concurrent read in the window then sees duplicate_task —
		// linearizable as ordered after the admission — rather than a
		// snapshot containing a task the duplicate check missed.
		s.registerAdmitted(t, sp)
		s.actx.Commit()
		s.walNoteAdmit(t, sp, core)
		s.feedNote(t, sp, core)
	} else {
		s.actx.Rollback()
		s.rejected.Add(1)
	}
}

// registerAdmitted records a committed admission.
func (s *Session) registerAdmitted(t *task.Task, sp *task.Split) {
	if sp != nil {
		s.registerTask(sp.Task.ID)
	} else {
		s.registerTask(t.ID)
	}
	s.admitted.Add(1)
}

// ErrProbeRejected refuses committing a held probe whose verdict was
// negative — committing it would install an inadmissible task.
var ErrProbeRejected = errors.New("admitd: held probe was rejected; rollback it")

// commitLocked resolves a held probe by keeping the mutation. Only
// an admitted probe may be committed: a rejected one would put the
// session into a committed-but-unschedulable state.
func (s *Session) commitLocked() (api.Verdict, error) {
	if s.pendKind == pendNone {
		return api.Verdict{}, ErrNoProbePending
	}
	if !s.pendFits {
		return api.Verdict{}, ErrProbeRejected
	}
	resp := api.Verdict{Admitted: true, Core: s.pendCore}
	if s.pendSplit != nil {
		resp.TaskID = int64(s.pendSplit.Task.ID)
	} else {
		resp.TaskID = int64(s.pendTask.ID)
	}
	// Register before the publishing Commit (see resolveProbe).
	s.registerAdmitted(s.pendTask, s.pendSplit)
	s.actx.Commit()
	s.walNoteAdmit(s.pendTask, s.pendSplit, s.pendCore)
	s.feedNote(s.pendTask, s.pendSplit, s.pendCore)
	s.clearPending()
	return resp, nil
}

// rollbackLocked resolves a held probe by undoing the mutation.
func (s *Session) rollbackLocked() (api.Verdict, error) {
	if s.pendKind == pendNone {
		return api.Verdict{}, ErrNoProbePending
	}
	resp := api.Verdict{Admitted: false, Core: -1}
	if s.pendSplit != nil {
		resp.TaskID = int64(s.pendSplit.Task.ID)
	} else {
		resp.TaskID = int64(s.pendTask.ID)
	}
	s.actx.Rollback()
	s.rejected.Add(1)
	s.clearPending()
	return resp, nil
}

func (s *Session) clearPending() {
	s.setPend(pendNone)
	s.pendFits = false
	s.pendTask, s.pendSplit, s.pendCore = nil, nil, -1
}

// removeLocked deletes an admitted task — the analysis layer's
// removal invalidation path.
func (s *Session) removeLocked(id task.ID) error {
	if s.pendKind != pendNone {
		return ErrProbePending
	}
	if !s.hasTask(id) {
		return fmt.Errorf("%w: %d", ErrUnknownTask, id)
	}
	if !s.actx.Remove(id) {
		return fmt.Errorf("%w: %d", ErrUnknownTask, id)
	}
	// Unregister after Remove published the shrunken snapshot: a
	// concurrent read of the same ID in the window sees
	// duplicate_task, linearizable as ordered before the removal
	// (the inverse of the admit ordering in resolveProbe). Inside a
	// drain the publish itself is deferred to EndGroup, so the ID-set
	// removal defers with it; an admit of the same ID later in the
	// drain then reports duplicate_task — linearizable as ordered
	// before this removal completed. The summary task count updates
	// immediately: it is a counter, not part of the ordering contract.
	s.nTasks.Add(-1)
	if s.inDrain {
		s.drainUnreg = append(s.drainUnreg, id)
	} else {
		s.tasks.remove(id)
	}
	s.removed.Add(1)
	s.walNoteRemove(id)
	s.feedNoteRemove(id)
	return nil
}

// --- durability hooks (actor-only) -----------------------------------

// attachWal wires the session to its commit-log stream. Must run
// before the session is reachable (between newSession/restoreSession
// and the store-map insert): the first actor call's channel send
// publishes the fields to the actor goroutine.
func (s *Session) attachWal(p *walPlane, l *wal.Log, stream string, gen uint64, ent *streamState, seqBase int64) {
	s.wlog = l
	s.wplane = p
	s.wstream = stream
	s.walGen = gen
	s.walEnt = ent
	s.seqBase = seqBase
}

// durableSeq is the session's dense durable sequence number: the
// restart base plus the live context's committed-mutation count.
// Actor-only (CommitSeq is actor state).
func (s *Session) durableSeq() int64 {
	return s.seqBase + s.actx.CommitSeq()
}

// walNoteAdmit appends one committed admission (whole task or split)
// to the commit log at its durable sequence number. Runs right after
// actx.Commit bumped CommitSeq; the append is buffered — the drain
// boundary's log commit makes it (and the whole drain) durable.
func (s *Session) walNoteAdmit(t *task.Task, sp *task.Split, core int) {
	if s.wlog == nil {
		return
	}
	b := s.walBuf[:0]
	if sp != nil {
		wire := fromSplit(sp)
		b = walEncodeSplit(b, s.nTasks.Load(), &wire)
	} else {
		wire := fromTask(t, core)
		b = walEncodeAdmit(b, core, s.nTasks.Load(), &wire)
	}
	s.walBuf = b
	s.walAppend(b)
}

// walNoteRemove appends one committed removal.
func (s *Session) walNoteRemove(id task.ID) {
	if s.wlog == nil {
		return
	}
	b := walEncodeRemove(s.walBuf[:0], s.nTasks.Load(), int64(id))
	s.walBuf = b
	s.walAppend(b)
}

func (s *Session) walAppend(payload []byte) {
	seq := s.durableSeq()
	if _, err := s.wlog.Append(s.wstream, seq, payload); err != nil {
		s.walFail()
		return
	}
	s.walStaged++
	s.walEnt.lastSeq.Store(seq)
	if m := s.met; m != nil {
		m.walPayloadBytes.Add(int64(len(payload)))
	}
}

// walFail records a commit-log append/fsync failure. The session
// keeps serving — durability degrades, admission does not — and the
// failure surfaces on /metrics (admitd_wal_errors_total).
func (s *Session) walFail() {
	if m := s.met; m != nil {
		m.walErrors.Inc()
	}
}

// setPend records the held-probe kind, mirroring it into the atomic
// flag the read path consults. Actor-only.
func (s *Session) setPend(kind int) {
	s.pendKind = kind
	s.pendFlag.Store(int32(kind))
}

// --- the lock-free read path -----------------------------------------
//
// Everything below runs on arbitrary goroutines, concurrently with
// the actor: it only ever touches the context's published snapshot
// (analysis.Snapshot — immutable), the session's atomics and the
// concurrent task-ID set. A held probe never blocks reads — its
// tentative mutation is uncommitted, so the committed snapshot is
// exactly the state reads should describe.

// taskPool recycles the wire-to-internal task conversions on the
// probe-only read paths. A pooled task is only ever handed to
// snapshot probes, which copy what they need (the probe key, the
// tentative entity) and never retain the pointer — commit paths keep
// using heap tasks, because an admitted task lives in the assignment.
var taskPool = sync.Pool{New: func() any { return new(task.Task) }}

// tryRead answers a non-holding admission query from the latest
// published snapshot, without entering the actor. Steady-state it
// does not allocate: the task converts into pooled scratch and the
// first-fit loop pins one pooled prober across all cores.
func (s *Session) tryRead(req api.AdmitRequest) (api.Verdict, error) {
	if s.closedFlag.Load() {
		return api.Verdict{}, ErrSessionClosed
	}
	t := taskPool.Get().(*task.Task)
	defer taskPool.Put(t)
	if err := toTaskInto(t, req.Task, s.policy); err != nil {
		return api.Verdict{}, err
	}
	if s.hasTask(t.ID) {
		return api.Verdict{}, fmt.Errorf("%w: %d", ErrDuplicateTask, t.ID)
	}
	snap := s.actx.Fork()
	if m := s.met; m != nil {
		m.forks.Inc()
	}
	resp := api.Verdict{TaskID: int64(t.ID), Core: -1}
	if req.Core != nil {
		c := *req.Core
		if c < 0 || c >= snap.NumCores() {
			return api.Verdict{}, fmt.Errorf("core %d out of range (%d cores)", c, snap.NumCores())
		}
		resp.Probes = 1
		resp.Admitted = snap.TryPlace(t, c)
		if resp.Admitted {
			resp.Core = c
		}
		return resp, nil
	}
	pr := snap.Prober()
	defer pr.Close()
	for c := 0; c < snap.NumCores(); c++ {
		resp.Probes++
		if pr.TryPlace(t, c) {
			resp.Admitted, resp.Core = true, c
			return resp, nil
		}
	}
	return resp, nil
}

// stateRead renders the committed assignment from the latest
// published snapshot. The body is memoized per snapshot sequence —
// repeated reads between commits are O(1) — with the probe-pending
// overlay stamped per request (the full test is omitted while a
// probe is held, matching the historical actor-path contract).
func (s *Session) stateRead() (api.State, error) {
	if s.closedFlag.Load() {
		return api.State{}, ErrSessionClosed
	}
	snap := s.actx.Fork()
	if m := s.met; m != nil {
		m.forks.Inc()
	}
	e := s.stateCache.Load()
	if e == nil || e.seq != snap.Seq() {
		// Render in a separate frame: the range closures there take
		// the body's address, and hoisting them out of this function
		// keeps the cache-hit path's copy on the stack (zero allocs).
		e = &stateCacheEntry{seq: snap.Seq(), st: s.renderState(snap)}
		s.stateCache.Store(e)
		s.noteStateMemo(false)
	} else {
		s.noteStateMemo(true)
	}
	body := e.st
	if s.pendFlag.Load() == pendNone {
		if snap.Schedulable() {
			body.Schedulable = &schedTrue
		} else {
			body.Schedulable = &schedFalse
		}
	} else {
		body.Schedulable = nil
		body.ProbePending = true
	}
	return body, nil
}

// stateReadBytes is stateRead pre-marshaled: the JSON response body
// (trailing newline included, byte-identical to json.Encoder output)
// cached per (snapshot sequence, overlay variant). Steady-state reads
// between commits return shared bytes without encoding anything. The
// returned slice is immutable and safe to write concurrently.
func (s *Session) stateReadBytes() ([]byte, error) {
	if s.closedFlag.Load() {
		return nil, ErrSessionClosed
	}
	snap := s.actx.Fork()
	if m := s.met; m != nil {
		m.forks.Inc()
	}
	e := s.stateCache.Load()
	if e == nil || e.seq != snap.Seq() {
		e = &stateCacheEntry{seq: snap.Seq(), st: s.renderState(snap)}
		s.stateCache.Store(e)
		s.noteStateMemo(false)
	} else {
		s.noteStateMemo(true)
	}
	variant := stateVariantPending
	if s.pendFlag.Load() == pendNone {
		if snap.Schedulable() {
			variant = stateVariantSchedTrue
		} else {
			variant = stateVariantSchedFalse
		}
	}
	if p := e.enc[variant].Load(); p != nil {
		return *p, nil
	}
	body := e.st
	switch variant {
	case stateVariantSchedTrue:
		body.Schedulable = &schedTrue
	case stateVariantSchedFalse:
		body.Schedulable = &schedFalse
	default:
		body.ProbePending = true
	}
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	buf = append(buf, '\n')
	// Concurrent misses may both store; the bytes are identical.
	e.enc[variant].Store(&buf)
	return buf, nil
}

// renderState builds the committed-state body from a snapshot (the
// stateCache miss path).
func (s *Session) renderState(snap analysis.Snapshot) api.State {
	body := api.State{
		Name:   s.name,
		Cores:  snap.NumCores(),
		Policy: policyName(s.policy),
	}
	snap.RangeTasks(func(t *task.Task, c int) {
		body.Tasks = append(body.Tasks, fromTask(t, c))
	})
	snap.RangeSplits(func(sp *task.Split) {
		body.Splits = append(body.Splits, fromSplit(sp))
	})
	body.CoreUtilization = snap.CoreUtilization()
	return body
}

// noteStateMemo records one state read against the rendered-body
// memo: the per-session atomic feeds the session stats response, the
// server-wide sharded counter feeds /metrics. Pure atomic adds.
func (s *Session) noteStateMemo(hit bool) {
	if hit {
		s.stateHits.Add(1)
	} else {
		s.stateMisses.Add(1)
	}
	if m := s.met; m != nil {
		if hit {
			m.stateHits.Inc()
		} else {
			m.stateMisses.Inc()
		}
	}
}

// Shared pointees for the optional schedulability verdict, so a
// cache-hit state render allocates nothing. Never written through.
var (
	schedTrue  = true
	schedFalse = false
)

// statsRead returns the session's admission counters without the
// actor: the writer-side counters as republished after the last actor
// operation, the read path's own counters, and whatever a snapshot
// restore carried over.
func (s *Session) statsRead() (analysis.AdmissionStats, error) {
	if s.closedFlag.Load() {
		return analysis.AdmissionStats{}, ErrSessionClosed
	}
	return s.pubStats.Load().Add(s.actx.ReadStats()).Add(s.baseStats), nil
}

// statsLocked returns this session's admission counters on the actor
// (snapshotting uses it: it must see the very latest writer counters,
// not the last republished ones).
func (s *Session) statsLocked() analysis.AdmissionStats {
	return s.actx.Stats().Add(s.actx.ReadStats()).Add(s.baseStats)
}

// batchLocked admits a whole set task by task, emitting one verdict
// per task; ctx aborts the remainder (client disconnect).
func (s *Session) batchLocked(ctx context.Context, req api.BatchRequest, emit func(api.Verdict)) (api.BatchSummary, error) {
	if s.pendKind != pendNone {
		return api.BatchSummary{}, ErrProbePending
	}
	wire, err := s.batchWire(req)
	if err != nil {
		return api.BatchSummary{}, err
	}
	sum := api.BatchSummary{Done: true}
	for _, j := range wire {
		if ctx.Err() != nil {
			sum.Canceled = true
			break
		}
		v, err := s.admitLocked(api.AdmitRequest{Task: j})
		if err != nil {
			return sum, err
		}
		if v.Admitted {
			sum.Admitted++
		} else {
			sum.Rejected++
		}
		if emit != nil {
			emit(v)
		}
	}
	sum.Schedulable = s.actx.Schedulable()
	sum.TaskCount = int(s.nTasks.Load())
	return sum, nil
}

// batchWire resolves a batch request to the ordered wire task list:
// explicit tasks or a server-side generated set, optionally reordered
// by decreasing utilization. Safe off the actor (the ID scan reads
// the concurrent task set).
func (s *Session) batchWire(req api.BatchRequest) ([]api.Task, error) {
	var wire []api.Task
	switch {
	case req.Generate != nil && len(req.Tasks) > 0:
		return nil, fmt.Errorf("batch: tasks and generate are mutually exclusive")
	case req.Generate != nil:
		cfg, err := toTaskGen(req.Generate)
		if err != nil {
			return nil, err
		}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		set := taskgen.New(cfg).Next()
		base := s.nextFreeID()
		for i, t := range set.Tasks {
			j := fromTask(t, -1)
			j.ID = base + int64(i)
			wire = append(wire, j)
		}
	case len(req.Tasks) > 0:
		wire = req.Tasks
	default:
		return nil, fmt.Errorf("batch: need tasks or generate")
	}
	if req.Order == "util-desc" {
		sorted := append([]api.Task(nil), wire...)
		sort.SliceStable(sorted, func(i, k int) bool {
			ui := float64(sorted[i].WCETNs) / float64(sorted[i].PeriodNs)
			uk := float64(sorted[k].WCETNs) / float64(sorted[k].PeriodNs)
			if ui != uk {
				return ui > uk
			}
			return sorted[i].ID < sorted[k].ID
		})
		wire = sorted
	} else if req.Order != "" && req.Order != "input" {
		return nil, fmt.Errorf("batch: unknown order %q (input|util-desc)", req.Order)
	}
	return wire, nil
}

// batchScratch recycles a try-only batch's buffers: the converted
// task slab and the verdict slab grow to the largest batch seen and
// are reused across requests. The worker fan-out state is resident
// too — cursor, wait group, and the one closure handed to `go` — so a
// multi-worker batch allocates nothing per call (each of those
// escaped to the heap per batch when they were locals).
type batchScratch struct {
	taskSlab []task.Task
	verdicts []api.Verdict

	next atomic.Int64
	wg   sync.WaitGroup
	work func() // built once per scratch, reads the fields below
	// Per-batch inputs for the resident closure; nil'd after Wait so
	// the pool never pins a snapshot or session.
	s    *Session
	snap analysis.Snapshot
	ctx  context.Context
	n    int
}

// runWorkers fans the current batch across w workers through the
// resident closure.
func (bb *batchScratch) runWorkers(w int) {
	if bb.work == nil {
		bb.work = func() {
			defer bb.wg.Done()
			// One prober per worker: K/workers probes share its
			// scratch, nothing is allocated per probe.
			pr := bb.snap.Prober()
			defer pr.Close()
			for {
				i := int(bb.next.Add(1)) - 1
				if i >= bb.n || bb.ctx.Err() != nil {
					return
				}
				bb.s.probeFirstFit(pr, bb.snap, &bb.taskSlab[i], &bb.verdicts[i])
			}
		}
	}
	bb.next.Store(0)
	bb.wg.Add(w)
	for i := 0; i < w; i++ {
		go bb.work()
	}
	bb.wg.Wait()
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// probeFirstFit probes one task first-fit across the snapshot's cores
// through the shared prober, writing the verdict in place.
func (s *Session) probeFirstFit(pr analysis.Prober, snap analysis.Snapshot, t *task.Task, v *api.Verdict) {
	v.TaskID, v.Core = int64(t.ID), -1
	if s.hasTask(t.ID) {
		// Already admitted: the committed state can't take a
		// duplicate; report it as not admissible.
		return
	}
	for c := 0; c < snap.NumCores(); c++ {
		v.Probes++
		if pr.TryPlace(t, c) {
			v.Admitted, v.Core = true, c
			return
		}
	}
}

// batchTryRead is the read-path batch: every task probed first-fit
// against ONE forked snapshot, fanned across a bounded worker pool,
// with nothing committed. Verdicts are independent "would this task
// fit the committed state right now, alone?" answers — successive
// tasks do not see each other, which is exactly what makes the fan-out
// safe. Verdicts stream in input order; ctx aborts the remainder.
func (s *Session) batchTryRead(ctx context.Context, req api.BatchRequest, emit func(api.Verdict)) (api.BatchSummary, error) {
	if s.closedFlag.Load() {
		return api.BatchSummary{}, ErrSessionClosed
	}
	wire, err := s.batchWire(req)
	if err != nil {
		return api.BatchSummary{}, err
	}
	n := len(wire)
	bb := batchScratchPool.Get().(*batchScratch)
	defer batchScratchPool.Put(bb)
	if cap(bb.taskSlab) < n {
		bb.taskSlab = make([]task.Task, n)
		bb.verdicts = make([]api.Verdict, n)
	}
	slab, verdicts := bb.taskSlab[:n], bb.verdicts[:n]
	// The verdict slab is recycled and TaskID == 0 is the "a worker
	// never reached it" cancellation marker below (wire IDs are
	// validated nonzero), so it must start zeroed.
	clear(verdicts)
	// Validate serially first (cheap), so a malformed task fails the
	// batch the way the actor path would, not mid-stream.
	for i, j := range wire {
		if err := toTaskInto(&slab[i], j, s.policy); err != nil {
			return api.BatchSummary{}, err
		}
	}
	snap := s.actx.Fork()
	if m := s.met; m != nil {
		m.forks.Inc()
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	if workers == 1 {
		// Inline fast path: no goroutine, no closure, one pooled
		// prober's scratch shared across all K probes.
		pr := snap.Prober()
		for i := 0; i < n && ctx.Err() == nil; i++ {
			s.probeFirstFit(pr, snap, &slab[i], &verdicts[i])
		}
		pr.Close()
	} else {
		bb.s, bb.snap, bb.ctx, bb.n = s, snap, ctx, n
		bb.runWorkers(workers)
		bb.s, bb.snap, bb.ctx = nil, nil, nil
	}
	sum := api.BatchSummary{Done: true, TryOnly: true}
	for i := range verdicts {
		if verdicts[i].TaskID == 0 {
			// A worker never reached it: the context was canceled.
			sum.Canceled = true
			break
		}
		if verdicts[i].Admitted {
			sum.Admitted++
		} else {
			sum.Rejected++
		}
		if emit != nil {
			emit(verdicts[i])
		}
	}
	sum.Schedulable = snap.Schedulable()
	sum.TaskCount = int(s.nTasks.Load())
	return sum, nil
}

// nextFreeID picks a base ID above everything the session hosts, so
// generated batches never collide with admitted tasks.
func (s *Session) nextFreeID() int64 {
	max := int64(0)
	s.tasks.each(func(k task.ID) {
		if id := int64(k); id > max {
			max = id
		}
	})
	return max + 1
}
