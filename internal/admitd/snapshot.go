package admitd

import (
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"path/filepath"

	"repro/api"
	"repro/internal/analysis"
	"repro/internal/overhead"
	"repro/internal/task"
	"repro/internal/wal"
)

// sessionSnapshot is the on-disk form of one session: enough to
// rebuild the assignment in its canonical order (tasks listed per
// core in placement order, splits in install order) so a restored
// context answers bit-identically to the evicted one. A held probe
// is never snapshotted: snapshotLocked rolls a pending probe back
// first — the session is being evicted or shut down, so the probe
// could never be resolved anyway, and its tentative mutation must
// not be persisted as committed state.
type sessionSnapshot struct {
	Name   string          `json:"name"`
	Cores  int             `json:"cores"`
	Policy string          `json:"policy"`
	Model  json.RawMessage `json:"model"`
	Tasks  []api.Task      `json:"tasks"`
	Splits []api.Split     `json:"splits,omitempty"`

	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
	Removed  int64 `json:"removed"`
	// State-memo read counters (see Session.stateHits); omitempty
	// keeps pre-telemetry snapshots readable.
	StateCacheHits   int64 `json:"state_cache_hits,omitempty"`
	StateCacheMisses int64 `json:"state_cache_misses,omitempty"`
	// Admission carries the session's cumulative admission counters
	// across eviction/restore cycles.
	Admission analysis.AdmissionStats `json:"admission"`

	// Durability-plane checkpoint stamp: Seq is the highest durable
	// mutation sequence this snapshot covers (commit-log records at or
	// below it are compactable), Gen the session generation whose
	// stream it belongs to. Both zero when durability is off —
	// omitempty keeps plain eviction snapshots byte-stable.
	Seq int64  `json:"seq,omitempty"`
	Gen uint64 `json:"gen,omitempty"`
}

// snapshotLocked captures the session's committed state; it must run
// on the actor. A held probe is discarded (rolled back) first.
func (s *Session) snapshotLocked() (*sessionSnapshot, error) {
	if s.pendKind != pendNone {
		_, _ = s.rollbackLocked() //nolint:errcheck // pending by the check above
	}
	model, err := json.Marshal(s.model)
	if err != nil {
		return nil, err
	}
	snap := &sessionSnapshot{
		Name:             s.name,
		Cores:            s.a.NumCores,
		Policy:           policyName(s.policy),
		Model:            model,
		Admitted:         s.admitted.Load(),
		Rejected:         s.rejected.Load(),
		Removed:          s.removed.Load(),
		StateCacheHits:   s.stateHits.Load(),
		StateCacheMisses: s.stateMisses.Load(),
		Admission:        s.statsLocked(),
	}
	if s.wlog != nil {
		snap.Seq = s.durableSeq()
		snap.Gen = s.walGen
	}
	for c := 0; c < s.a.NumCores; c++ {
		for _, t := range s.a.Normal[c] {
			snap.Tasks = append(snap.Tasks, fromTask(t, c))
		}
	}
	for _, sp := range s.a.Splits {
		snap.Splits = append(snap.Splits, fromSplit(sp))
	}
	return snap, nil
}

// buildAssignment reconstructs a snapshot's assignment in canonical
// order (tasks per core in placement order, splits in install order)
// and resolves its policy and overhead model. Shared by the session
// restore path and the commit-log audit path.
func buildAssignment(snap *sessionSnapshot) (task.Policy, *overhead.Model, *task.Assignment, error) {
	p, err := parsePolicy(snap.Policy)
	if err != nil {
		return 0, nil, nil, err
	}
	if snap.Cores <= 0 {
		return 0, nil, nil, fmt.Errorf("admitd: snapshot %q: %d cores", snap.Name, snap.Cores)
	}
	model := &overhead.Model{}
	if err := json.Unmarshal(snap.Model, model); err != nil {
		return 0, nil, nil, fmt.Errorf("admitd: snapshot %q model: %w", snap.Name, err)
	}
	model = overhead.Normalize(model)
	a := task.NewAssignment(snap.Cores)
	for _, j := range snap.Tasks {
		t, err := toTask(j, p)
		if err != nil {
			return 0, nil, nil, fmt.Errorf("admitd: snapshot %q: %w", snap.Name, err)
		}
		if j.Core < 0 || j.Core >= snap.Cores {
			return 0, nil, nil, fmt.Errorf("admitd: snapshot %q: task %d on core %d", snap.Name, j.ID, j.Core)
		}
		a.Place(t, j.Core)
	}
	for _, j := range snap.Splits {
		sp, err := toSplit(j, p)
		if err != nil {
			return 0, nil, nil, fmt.Errorf("admitd: snapshot %q: %w", snap.Name, err)
		}
		a.Splits = append(a.Splits, sp)
	}
	if err := a.Validate(); err != nil {
		return 0, nil, nil, fmt.Errorf("admitd: snapshot %q: %w", snap.Name, err)
	}
	return p, model, a, nil
}

// restoreSession rebuilds a session from its snapshot: the assignment
// is reconstructed in canonical order and a fresh (cold) context is
// opened over it — decisions are bit-identical to the stateless
// analyzer, hence to the warm context that was evicted.
func restoreSession(snap *sessionSnapshot, coll *analysis.Collector, met *serverMetrics) (*Session, error) {
	p, model, a, err := buildAssignment(snap)
	if err != nil {
		return nil, err
	}
	s := newSession(snap.Name, p, model, a, coll, met)
	s.admitted.Store(snap.Admitted)
	s.rejected.Store(snap.Rejected)
	s.removed.Store(snap.Removed)
	s.stateHits.Store(snap.StateCacheHits)
	s.stateMisses.Store(snap.StateCacheMisses)
	s.baseStats = snap.Admission
	return s, nil
}

// snapshotPath maps a session name to its file (path-escaped, so any
// name is safe on disk).
func snapshotPath(dir, name string) string {
	return filepath.Join(dir, url.PathEscape(name)+".json")
}

// writeSnapshot persists one snapshot atomically AND durably: write
// to a temp file, fsync it, rename into place, fsync the directory.
// The earlier write+rename-only version could lose both file and
// rename to a crash — fatal once the commit log compacts on the
// assumption the checkpoint is on disk.
func writeSnapshot(dir string, snap *sessionSnapshot) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return wal.WriteFileAtomic(snapshotPath(dir, snap.Name), data, 0o644)
}

// readSnapshot loads one snapshot; a missing file returns (nil, nil).
func readSnapshot(dir, name string) (*sessionSnapshot, error) {
	data, err := os.ReadFile(snapshotPath(dir, name))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	snap := &sessionSnapshot{}
	if err := json.Unmarshal(data, snap); err != nil {
		return nil, fmt.Errorf("admitd: parsing snapshot %s: %w", name, err)
	}
	return snap, nil
}
