package admitd

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/overhead"
	"repro/internal/task"
	"repro/internal/wal"
)

// numShards stripes the session map so unrelated sessions never
// contend on one lock; per-session serialization is the actor's job,
// the shards only guard the name → session mapping.
const numShards = 16

// ErrSessionExists rejects creating a name that is already live (or
// snapshotted, when persistence is on).
var ErrSessionExists = errors.New("admitd: session already exists")

// ErrSessionNotFound is the lookup miss.
var ErrSessionNotFound = errors.New("admitd: session not found")

type storeShard struct {
	mu sync.Mutex
	m  map[string]*Session
}

// Store is the sharded session registry: striped maps, a logical
// clock for LRU, an eviction cap, and the snapshot directory evicted
// sessions park in until their next touch.
type Store struct {
	shards      [numShards]storeShard
	maxSessions int
	dir         string // "" disables persistence

	// plane is the durability plane (nil when DataDir is unset): one
	// commit log per shard plus the checkpoint registry. With a plane,
	// dir points at its checkpoint directory.
	plane *walPlane

	// Periodic checkpoint + compaction driver (plane only).
	ckptTick *time.Ticker
	ckptStop chan struct{}
	ckptDone chan struct{}
	ckptOnce sync.Once

	clock atomic.Int64 // logical LRU clock, bumped per touch
	count atomic.Int64

	created, evicted, restored, deleted atomic.Int64

	// coll aggregates admission stats across every session the store
	// ever hosted — the server-wide /stats view.
	coll *analysis.Collector

	// met is the owning server's telemetry plane, stamped on every
	// session the store creates or restores; nil when the store is
	// used without a Server (tests, embedders).
	met *serverMetrics
}

// StoreConfig parameterizes a Store.
type StoreConfig struct {
	// MaxSessions caps live sessions; 0 means 1024. Creation beyond
	// the cap evicts the least-recently-used session (snapshotting it
	// first when SnapshotDir is set).
	MaxSessions int
	// SnapshotDir, when non-empty, persists evicted sessions and
	// everything live at Close; missing sessions are restored from it
	// transparently. Ignored when DataDir is set (checkpoints live
	// under the data directory then).
	SnapshotDir string
	// DataDir, when non-empty, turns the durability plane on: every
	// committed mutation is written to a per-shard commit log under
	// DataDir/wal, checkpoints land under DataDir/checkpoints, and a
	// crashed store recovers to exactly the acknowledged state.
	DataDir string
	// Fsync picks the commit policy (default wal.SyncGroup): always
	// fsyncs every commit boundary before the ack; group acks at
	// apply time and background-syncs once per FsyncInterval (bounded
	// loss window); off leaves flushing to the OS.
	Fsync wal.SyncPolicy
	// FsyncInterval is the group policy's background commit cadence:
	// dirty logs are fsynced once per interval, bounding the loss
	// window of a crash to about one interval of acked writes.
	// 0 or negative means 5ms. Ignored by the always/off policies.
	FsyncInterval time.Duration
	// CheckpointEvery is the snapshot-compaction period: 0 means 30s,
	// negative disables the periodic driver (Checkpoint can still be
	// called directly; eviction and Close checkpoint regardless).
	CheckpointEvery time.Duration
}

// defaultCheckpointEvery is the checkpoint-compaction period when
// the config leaves it zero.
const defaultCheckpointEvery = 30 * time.Second

// defaultFsyncInterval is the group policy's background commit
// cadence when the config leaves it unset: a ~5ms loss window and
// zero added ack latency. The cadence is a direct throughput knob
// on virtualized disks, where every flush costs ~150-200µs of
// device barrier regardless of how little data is dirty — 1ms ticks
// measured ~20% off admitd's single-core write throughput, 5ms ~4%.
// (For scale: PostgreSQL's wal_writer_delay defaults to 200ms,
// Redis appendfsync everysec to 1s.)
const defaultFsyncInterval = 5 * time.Millisecond

// NewStore builds the registry, the snapshot directory (if any), and
// — with DataDir set — opens the durability plane, running crash
// recovery on its commit logs before the store serves anything.
func NewStore(cfg StoreConfig) (*Store, error) {
	max := cfg.MaxSessions
	if max <= 0 {
		max = 1024
	}
	st := &Store{maxSessions: max, dir: cfg.SnapshotDir, coll: &analysis.Collector{}}
	if cfg.DataDir != "" {
		window := cfg.FsyncInterval
		if window <= 0 {
			window = defaultFsyncInterval
		}
		plane, err := openWalPlane(cfg.DataDir, cfg.Fsync, window)
		if err != nil {
			return nil, err
		}
		st.plane = plane
		st.dir = plane.ckptDir
	} else if cfg.SnapshotDir != "" {
		if err := os.MkdirAll(cfg.SnapshotDir, 0o755); err != nil {
			return nil, err
		}
	}
	for i := range st.shards {
		st.shards[i].m = make(map[string]*Session)
	}
	if st.plane != nil && cfg.CheckpointEvery >= 0 {
		every := cfg.CheckpointEvery
		if every == 0 {
			every = defaultCheckpointEvery
		}
		st.ckptTick = time.NewTicker(every)
		st.ckptStop = make(chan struct{})
		st.ckptDone = make(chan struct{})
		go st.checkpointLoop()
	}
	return st, nil
}

func (st *Store) shardFor(name string) *storeShard {
	h := fnv.New32a()
	h.Write([]byte(name))
	return &st.shards[h.Sum32()%numShards]
}

// touch stamps the session's LRU position.
func (st *Store) touch(s *Session) {
	s.lastUsed.Store(st.clock.Add(1))
}

// shardSizes samples every shard's live-session count (scrape-time
// striping-balance gauge; locks each shard briefly, one at a time).
func (st *Store) shardSizes(sizes *[numShards]int) {
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		sizes[i] = len(sh.m)
		sh.mu.Unlock()
	}
}

// Create opens a fresh session. The eviction loop runs before the
// shard lock is taken (evicting scans all shards), so the cap can
// transiently overshoot under concurrent creates — it is a resource
// bound, not an invariant.
func (st *Store) Create(name string, cores int, p task.Policy, model *overhead.Model) (*Session, error) {
	if name == "" {
		return nil, fmt.Errorf("admitd: empty session name")
	}
	if cores <= 0 {
		return nil, fmt.Errorf("admitd: %d cores", cores)
	}
	for st.count.Load() >= int64(st.maxSessions) {
		if !st.evictOne() {
			break
		}
	}
	sh := st.shardFor(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrSessionExists, name)
	}
	if st.plane != nil {
		if st.plane.exists(name) {
			return nil, fmt.Errorf("%w: %q (durable)", ErrSessionExists, name)
		}
	} else if st.dir != "" {
		if snap, _ := readSnapshot(st.dir, name); snap != nil {
			return nil, fmt.Errorf("%w: %q (snapshotted)", ErrSessionExists, name)
		}
	}
	model = overhead.Normalize(model)
	s := newSession(name, p, model, task.NewAssignment(cores), st.coll, st.met)
	if st.plane != nil {
		// The create record is appended and committed before the
		// session becomes reachable: an acked create survives a crash.
		modelJSON, err := json.Marshal(model)
		if err != nil {
			s.close()
			return nil, err
		}
		stream, ent, l, err := st.plane.create(name, cores, policyName(p), modelJSON)
		if err != nil {
			s.close()
			return nil, err
		}
		s.attachWal(st.plane, l, stream, ent.gen, ent, 0)
	}
	st.touch(s)
	sh.m[name] = s
	st.count.Add(1)
	st.created.Add(1)
	return s, nil
}

// Get returns a live session, restoring it from its snapshot when the
// store persists and the name was evicted.
func (st *Store) Get(name string) (*Session, error) {
	sh := st.shardFor(name)
	sh.mu.Lock()
	if s, ok := sh.m[name]; ok {
		st.touch(s)
		sh.mu.Unlock()
		return s, nil
	}
	if st.dir == "" {
		sh.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrSessionNotFound, name)
	}
	var s *Session
	var err error
	if st.plane != nil {
		// Durable restore: newest gen-matched checkpoint + commit-log
		// tail replay (restoreDurable attaches the WAL stream).
		s, err = st.restoreDurable(name)
	} else {
		var snap *sessionSnapshot
		snap, err = readSnapshot(st.dir, name)
		if err == nil && snap == nil {
			err = fmt.Errorf("%w: %q", ErrSessionNotFound, name)
		}
		if err == nil {
			s, err = restoreSession(snap, st.coll, st.met)
		}
	}
	if err != nil {
		sh.mu.Unlock()
		return nil, err
	}
	st.touch(s)
	sh.m[name] = s
	st.count.Add(1)
	st.restored.Add(1)
	sh.mu.Unlock()
	// Restoring may push past the cap: evict someone else.
	for st.count.Load() > int64(st.maxSessions) {
		if !st.evictOne() {
			break
		}
	}
	return s, nil
}

// Delete closes and forgets a session, snapshot included. With the
// durability plane, the actor drains first, then the tombstone
// record retires the generation (committed per the plane's policy)
// and the
// checkpoint file goes away — recovery will never resurrect the
// name, and recreating it opens a fresh generation.
func (st *Store) Delete(name string) error {
	sh := st.shardFor(name)
	sh.mu.Lock()
	s, ok := sh.m[name]
	if ok {
		delete(sh.m, name)
		st.count.Add(-1)
	}
	sh.mu.Unlock()
	found := ok
	if s != nil {
		s.close()
	}
	if st.plane != nil {
		if st.plane.delete(name) {
			found = true
		}
	} else if st.dir != "" {
		if err := os.Remove(snapshotPath(st.dir, name)); err == nil {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("%w: %q", ErrSessionNotFound, name)
	}
	st.deleted.Add(1)
	return nil
}

// evictOne removes the least-recently-used session: snapshot (when
// persisting), close, forget. Reports whether anything was evicted.
func (st *Store) evictOne() bool {
	var victim *Session
	var victimShard *storeShard
	best := int64(1<<62 - 1)
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		for _, s := range sh.m {
			if lu := s.lastUsed.Load(); lu < best {
				best, victim, victimShard = lu, s, sh
			}
		}
		sh.mu.Unlock()
	}
	if victim == nil {
		return false
	}
	victimShard.mu.Lock()
	if cur, ok := victimShard.m[victim.name]; !ok || cur != victim {
		victimShard.mu.Unlock()
		return true // someone else removed it; progress was made
	}
	delete(victimShard.m, victim.name)
	st.count.Add(-1)
	victimShard.mu.Unlock()
	st.snapshotAndClose(victim)
	st.evicted.Add(1)
	return true
}

// snapshotAndClose persists a session (when the store does) and stops
// its actor. The snapshot runs on the actor, so it sees committed
// state only.
func (st *Store) snapshotAndClose(s *Session) {
	if st.dir != "" {
		var snap *sessionSnapshot
		var serr error
		if err := s.call(func() { snap, serr = s.snapshotLocked() }); err == nil && serr == nil && snap != nil {
			serr = writeSnapshot(st.dir, snap)
			if serr == nil && st.plane != nil && snap.Gen != 0 {
				// The checkpoint covers the stream up to Seq: advance
				// the compaction watermark.
				st.plane.setCkpt(snap.Name, snap.Gen, snap.Seq)
			}
		}
		// A failed snapshot does not lose durable state: with the
		// plane on, the commit log still holds every mutation.
		_ = serr
	}
	s.close()
}

// Range calls f on every live session (no particular order).
func (st *Store) Range(f func(*Session)) {
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		live := make([]*Session, 0, len(sh.m))
		for _, s := range sh.m {
			live = append(live, s)
		}
		sh.mu.Unlock()
		for _, s := range live {
			f(s)
		}
	}
}

// Close snapshots every live session and stops all actors — the
// graceful-shutdown path. With the durability plane, the periodic
// checkpoint driver stops first, the final per-session checkpoints
// land, the logs compact down to those checkpoints, and the shard
// logs close (flushing and syncing their tails).
func (st *Store) Close() {
	st.stopCheckpoints()
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		live := make([]*Session, 0, len(sh.m))
		for name, s := range sh.m {
			live = append(live, s)
			delete(sh.m, name)
			st.count.Add(-1)
		}
		sh.mu.Unlock()
		for _, s := range live {
			st.snapshotAndClose(s)
		}
	}
	if st.plane != nil {
		st.plane.compact()
		st.plane.closeLogs()
	}
}

// stopCheckpoints halts the periodic checkpoint driver (idempotent).
func (st *Store) stopCheckpoints() {
	if st.ckptStop == nil {
		return
	}
	st.ckptOnce.Do(func() {
		close(st.ckptStop)
		<-st.ckptDone
		st.ckptTick.Stop()
	})
}
