package admitd

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/api"
	"repro/client"
	"repro/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata goldens")

// scrapeMetrics fetches /metrics through the in-process handler.
func scrapeMetrics(t *testing.T, srv *Server) []byte {
	t.Helper()
	return mustStatus(t, srv, "GET", api.PathMetrics, nil, http.StatusOK)
}

// sampleValue finds the value of the exposition line with the given
// name-plus-labels prefix (e.g. `admitd_sessions_live` or
// `admitd_http_requests_total{route="try"}`).
func sampleValue(t *testing.T, expo []byte, series string) string {
	t.Helper()
	for _, line := range strings.Split(string(expo), "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			return rest
		}
	}
	t.Fatalf("series %s not in scrape:\n%s", series, expo)
	return ""
}

// maskExpo replaces every sample value with V, leaving names, labels
// and comment lines intact — the golden pins the schema of the
// exposition (families, help text, types, series and bucket grids),
// not the measurements.
func maskExpo(expo []byte) string {
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimRight(string(expo), "\n"), "\n") {
		if line == "" || line[0] == '#' {
			b.WriteString(line)
		} else if sp := strings.LastIndexByte(line, ' '); sp >= 0 {
			b.WriteString(line[:sp])
			b.WriteString(" V")
		} else {
			b.WriteString(line)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestMetricsGolden runs a fixed request script and pins the whole
// telemetry surface: the masked exposition schema against a golden
// file, exact values for the scripted counters, Prometheus-syntax
// lint cleanliness, and the session-stats view of the state-memo
// counters agreeing with /metrics.
func TestMetricsGolden(t *testing.T) {
	srv := newTestServer(t, Config{})
	mustStatus(t, srv, "POST", "/v1/sessions", api.CreateSessionRequest{Name: "g", Cores: 2}, http.StatusCreated)
	core0 := 0
	admit := func(id int64, core *int) {
		body := mustStatus(t, srv, "POST", "/v1/sessions/g/admit",
			api.AdmitRequest{Task: benchTask(id), Core: core}, http.StatusOK)
		if !strings.Contains(string(body), `"admitted":true`) {
			t.Fatalf("script admit %d: %s", id, body)
		}
	}
	admit(1, &core0)
	admit(2, nil)
	mustStatus(t, srv, "POST", "/v1/sessions/g/try", api.AdmitRequest{Task: benchTask(3)}, http.StatusOK)
	mustStatus(t, srv, "GET", "/v1/sessions/g", nil, http.StatusOK) // render: memo miss
	mustStatus(t, srv, "GET", "/v1/sessions/g", nil, http.StatusOK) // same snapshot: memo hit
	statsBody := mustStatus(t, srv, "GET", "/v1/sessions/g/stats", nil, http.StatusOK)
	mustStatus(t, srv, "GET", "/v1/stats", nil, http.StatusOK)
	mustStatus(t, srv, "GET", "/healthz", nil, http.StatusOK)
	mustStatus(t, srv, "POST", "/v1/sessions/g/remove", api.RemoveRequest{ID: 1}, http.StatusOK)

	expo := scrapeMetrics(t, srv)
	if issues := telemetry.Lint(expo); len(issues) != 0 {
		t.Fatalf("exposition lint: %v", issues)
	}

	for series, want := range map[string]string{
		`admitd_http_requests_total{route="create"}`:               "1",
		`admitd_http_requests_total{route="admit"}`:                "2",
		`admitd_http_requests_total{route="try"}`:                  "1",
		`admitd_http_requests_total{route="state"}`:                "2",
		`admitd_http_requests_total{route="session_stats"}`:        "1",
		`admitd_http_requests_total{route="stats"}`:                "1",
		`admitd_http_requests_total{route="health"}`:               "1",
		`admitd_http_requests_total{route="remove"}`:               "1",
		`admitd_http_requests_total{route="metrics"}`:              "0", // counted after the handler ran
		`admitd_sessions_live`:                                     "1",
		`admitd_sessions_created_total`:                            "1",
		`admitd_session_tasks`:                                     "1", // 2 admitted - 1 removed
		`admitd_state_cache_hits_total`:                            "1",
		`admitd_state_cache_misses_total`:                          "1",
		`admitd_snapshot_publishes_total`:                          "3", // 2 admits + 1 remove
		`admitd_http_request_duration_seconds_count{path="read"}`:  "6",
		`admitd_http_request_duration_seconds_count{path="actor"}`: "4",
	} {
		if got := sampleValue(t, expo, series); got != want {
			t.Errorf("%s = %s, want %s", series, got, want)
		}
	}
	if v := sampleValue(t, expo, "admitd_admission_probes_total"); v == "0" {
		t.Errorf("admission aggregate empty after scripted probes")
	}

	// Satellite check: the per-session stats response reports the
	// same state-memo traffic the server-wide counters saw.
	var st api.SessionStats
	if !api.ParseSessionStats(statsBody, &st) {
		t.Fatalf("stats response: %s", statsBody)
	}
	// The stats snapshot above preceded the second state read; read
	// again now for the settled counts.
	var final api.SessionStats
	if !api.ParseSessionStats(mustStatus(t, srv, "GET", "/v1/sessions/g/stats", nil, http.StatusOK), &final) {
		t.Fatal("re-read stats")
	}
	if final.StateCacheHits != 1 || final.StateCacheMisses != 1 {
		t.Errorf("session stats memo counters: hits=%d misses=%d, want 1/1", final.StateCacheHits, final.StateCacheMisses)
	}

	golden := "testdata/metrics.golden"
	masked := maskExpo(expo)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(masked), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to record)", err)
	}
	if masked != string(want) {
		t.Errorf("masked exposition drifted from %s (run with -update after intentional changes)\n got:\n%s", golden, masked)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	id, event, data string
}

// readSSE parses events off an SSE stream, sending each on out;
// returns on stream end.
func readSSE(r *bufio.Reader, out chan<- sseEvent) {
	defer close(out)
	var ev sseEvent
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if ev.event != "" || ev.data != "" {
				out <- ev
			}
			ev = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			ev.id = line[4:]
		case strings.HasPrefix(line, "event: "):
			ev.event = line[7:]
		case strings.HasPrefix(line, "data: "):
			ev.data = line[6:]
		}
	}
}

// TestFeedGaplessOrdering subscribes to a session's SSE change feed
// over real HTTP, then commits mutations while reading: the
// subscriber must observe every committed mutation exactly once, in
// order, with contiguous sequence numbers starting right after the
// hello anchor.
func TestFeedGaplessOrdering(t *testing.T) {
	srv := newTestServer(t, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	mustStatus(t, srv, "POST", "/v1/sessions", api.CreateSessionRequest{Name: "f", Cores: 4}, http.StatusCreated)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/sessions/f/feed", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("feed content type %q", ct)
	}
	events := make(chan sseEvent, 1024)
	go readSSE(bufio.NewReader(resp.Body), events)

	hello, ok := <-events
	if !ok || hello.event != "hello" {
		t.Fatalf("first event: %+v", hello)
	}
	var anchor struct {
		Seq int64 `json:"seq"`
	}
	if err := json.Unmarshal([]byte(hello.data), &anchor); err != nil {
		t.Fatal(err)
	}

	// Commit mutations after the subscription is live: admits onto a
	// 4-core session (tiny utilization, all admit) plus removes.
	const admits = 30
	committed := 0
	for i := int64(0); i < admits; i++ {
		body := mustStatus(t, srv, "POST", "/v1/sessions/f/admit",
			api.AdmitRequest{Task: benchTask(100 + i)}, http.StatusOK)
		if strings.Contains(string(body), `"admitted":true`) {
			committed++
		}
	}
	for i := int64(0); i < 5; i++ {
		mustStatus(t, srv, "POST", "/v1/sessions/f/remove",
			api.RemoveRequest{ID: 100 + i}, http.StatusOK)
		committed++
	}

	var got []sseEvent
	deadline := time.After(10 * time.Second)
	for len(got) < committed {
		select {
		case ev, open := <-events:
			if !open {
				t.Fatalf("stream ended after %d/%d events", len(got), committed)
			}
			if ev.event == "change" {
				got = append(got, ev)
			}
		case <-deadline:
			t.Fatalf("timeout: %d/%d events", len(got), committed)
		}
	}

	removes := 0
	for i, ev := range got {
		seq, err := strconv.ParseInt(ev.id, 10, 64)
		if err != nil {
			t.Fatalf("event %d id %q: %v", i, ev.id, err)
		}
		if want := anchor.Seq + int64(i) + 1; seq != want {
			t.Fatalf("event %d: seq %d, want %d (gapless from hello anchor %d)", i, seq, want, anchor.Seq)
		}
		if !strings.Contains(ev.data, fmt.Sprintf(`"seq":%d`, seq)) {
			t.Fatalf("event %d: id/data seq mismatch: %s", i, ev.data)
		}
		if strings.Contains(ev.data, `"op":"remove"`) {
			removes++
		}
	}
	if removes != 5 {
		t.Fatalf("saw %d remove events, want 5", removes)
	}
}

// TestFeedSlowConsumerDropped checks the backpressure policy: a
// subscriber that never drains its buffer is disconnected with a
// terminal dropped event instead of stalling the actor.
func TestFeedSlowConsumerDropped(t *testing.T) {
	srv := newTestServer(t, Config{})
	mustStatus(t, srv, "POST", "/v1/sessions", api.CreateSessionRequest{Name: "slow", Cores: 4}, http.StatusCreated)
	sess, err := srv.store.Get("slow")
	if err != nil {
		t.Fatal(err)
	}
	sub, _, err := sess.feedSubscribe()
	if err != nil {
		t.Fatal(err)
	}
	// Never read sub.ch; overflow the buffer with committed churn
	// (admit+remove pairs so the session never fills up).
	for i := int64(0); i < feedSubBuffer+8; i++ {
		mustStatus(t, srv, "POST", "/v1/sessions/slow/admit",
			api.AdmitRequest{Task: benchTask(1000 + i)}, http.StatusOK)
		mustStatus(t, srv, "POST", "/v1/sessions/slow/remove",
			api.RemoveRequest{ID: 1000 + i}, http.StatusOK)
	}
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, open := <-sub.ch:
			if !open {
				if d := sampleValue(t, scrapeMetrics(t, srv), "admitd_feed_dropped_subscribers_total"); d != "1" {
					t.Fatalf("dropped counter %s, want 1", d)
				}
				return // dropped, as the policy promises
			}
		case <-deadline:
			t.Fatal("slow subscriber never dropped")
		}
	}
}

// TestSweepSSE exercises the Accept-negotiated SSE framing of the
// sweep endpoint: progress events followed by a terminal result.
func TestSweepSSE(t *testing.T) {
	srv := newTestServer(t, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	payload := `{"cores":2,"tasks":6,"sets_per_point":2,"algorithms":["ffd"],"model":"zero","utilizations":[1.2],"seed":3}`
	req, err := http.NewRequest("POST", ts.URL+"/v1/sweep", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("sweep SSE content type %q", ct)
	}
	events := make(chan sseEvent, 256)
	go readSSE(bufio.NewReader(resp.Body), events)
	var progress, results int
	for ev := range events {
		switch ev.event {
		case "progress":
			progress++
		case "result":
			results++
			if !strings.Contains(ev.data, `"series"`) {
				t.Fatalf("result payload: %s", ev.data)
			}
		}
	}
	if progress == 0 || results != 1 {
		t.Fatalf("sweep SSE: %d progress, %d results", progress, results)
	}
}

// TestTraceIDs pins the trace contract: valid client IDs are echoed
// verbatim, garbage is not, and with Config.Trace the server mints
// IDs for bare requests.
func TestTraceIDs(t *testing.T) {
	srv := newTestServer(t, Config{Trace: true})
	hdr := func(traceIn string) string {
		req := httptest.NewRequest("GET", "/healthz", nil)
		if traceIn != "" {
			req.Header.Set(api.TraceHeader, traceIn)
		}
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec.Header().Get(api.TraceHeader)
	}
	if got := hdr("abc123"); got != "abc123" {
		t.Fatalf("client trace id not echoed: %q", got)
	}
	if got := hdr("bad\"id"); got != "" && got != "bad\"id" {
		t.Fatalf("unexpected echo %q", got)
	}
	if got := hdr("bad\"id"); got == "bad\"id" {
		t.Fatal("invalid trace id echoed")
	}
	minted := hdr("")
	if !telemetry.ValidTraceID(minted) || len(minted) != 32 {
		t.Fatalf("minted trace id %q", minted)
	}
	if again := hdr(""); again == minted {
		t.Fatal("trace ids repeat")
	}

	// Untraced server: bare requests stay bare.
	plain := newTestServer(t, Config{})
	req := httptest.NewRequest("GET", "/healthz", nil)
	rec := httptest.NewRecorder()
	plain.ServeHTTP(rec, req)
	if got := rec.Header().Get(api.TraceHeader); got != "" {
		t.Fatalf("untraced server minted %q", got)
	}
}

// TestTelemetrySmoke is the CI smoke: a live TCP server under
// loadgen write/read traffic with a concurrent SSE subscriber and a
// steady /metrics scraper — the whole telemetry plane exercised at
// once (run under -race in CI). It ends with the loadgen cross-check
// of client percentiles against the scraped histograms.
func TestTelemetrySmoke(t *testing.T) {
	srv := newTestServer(t, Config{Trace: true})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c, err := client.New(ts.URL, client.WithTimeout(30*time.Second))
	if err != nil {
		t.Fatal(err)
	}

	cfg := LoadConfig{Sessions: 4, Requests: 4000, Workers: 8, Cores: 4, TasksPerSession: 8, Seed: 7}
	if testing.Short() {
		cfg.Requests = 800
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	var scrapes, feedEvents atomic.Int64

	// Scraper: steady exposition pulls while the load runs; every
	// payload must stay lint-clean under concurrency.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			case <-time.After(50 * time.Millisecond):
			}
			expo, err := c.Metrics(context.Background())
			if err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			if issues := telemetry.Lint(expo); len(issues) != 0 {
				t.Errorf("concurrent scrape lint: %v", issues)
				return
			}
			scrapes.Add(1)
		}
	}()

	// SSE subscriber on one loadgen session (created by RunLoad's
	// seeding phase; retry until it exists).
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go func() { <-done; cancel() }()
		var resp *http.Response
		for {
			req, rerr := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/sessions/load-0000/feed", nil)
			if rerr != nil {
				t.Errorf("feed request: %v", rerr)
				return
			}
			r, derr := http.DefaultClient.Do(req)
			if derr != nil {
				return // load finished before the session appeared
			}
			if r.StatusCode == http.StatusOK {
				resp = r
				break
			}
			r.Body.Close()
			select {
			case <-ctx.Done():
				return
			case <-time.After(10 * time.Millisecond):
			}
		}
		defer resp.Body.Close()
		events := make(chan sseEvent, 1024)
		go readSSE(bufio.NewReader(resp.Body), events)
		var last int64
		for ev := range events {
			if ev.event != "change" {
				continue
			}
			seq, perr := strconv.ParseInt(ev.id, 10, 64)
			if perr != nil {
				t.Errorf("feed id %q: %v", ev.id, perr)
				return
			}
			if seq <= last {
				t.Errorf("feed seq went backwards: %d after %d", seq, last)
				return
			}
			last = seq
			feedEvents.Add(1)
		}
	}()

	stats, err := RunLoad(context.Background(), c, cfg)
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors != 0 {
		t.Fatalf("load errors: %d", stats.Errors)
	}
	t.Logf("load: %v", stats)
	t.Logf("telemetry: %d scrapes, %d feed events observed", scrapes.Load(), feedEvents.Load())

	expo, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, warn := range CrossCheckMetrics(expo, stats) {
		t.Logf("%s", warn)
	}
	if v := sampleValue(t, expo, `admitd_http_request_duration_seconds_count{path="read"}`); v == "0" {
		t.Fatal("read-path latency histogram empty after load")
	}
	if v := sampleValue(t, expo, `admitd_http_request_duration_seconds_count{path="actor"}`); v == "0" {
		t.Fatal("actor-path latency histogram empty after load")
	}
}
