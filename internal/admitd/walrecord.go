package admitd

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"repro/api"
)

// WAL record payloads: the durable form of one committed session
// mutation. Every record is a kind byte followed by fixed-width
// little-endian fields (strings and the model JSON length-prefixed),
// so encoding appends into reused scratch with zero allocations and
// decoding never touches encoding/json except for the create
// record's embedded overhead model.
//
// The payload deliberately carries denormalized context — the
// committed task count after the mutation, the placement core — so
// the feed-resume path can synthesize change events from the log
// alone, without rebuilding session state.
const (
	walKindCreate byte = 1 // cores, policy, model JSON
	walKindAdmit  byte = 2 // core, tasks-after, task
	walKindSplit  byte = 3 // tasks-after, split (task+parts+windows)
	walKindRemove byte = 4 // tasks-after, removed task ID
	walKindDelete byte = 5 // tombstone: the session was deleted
)

// walRec is one decoded record.
type walRec struct {
	kind   byte
	cores  int32
	policy string
	model  json.RawMessage
	core   int32
	tasks  int32 // committed task count after the mutation
	task   api.Task
	split  api.Split
	id     int64 // remove target
}

// --- encoding (append-based, actor-side scratch) ---------------------

func walAppendU16(b []byte, v uint16) []byte {
	return append(b, byte(v), byte(v>>8))
}

func walAppendI32(b []byte, v int32) []byte {
	return binary.LittleEndian.AppendUint32(b, uint32(v))
}

func walAppendI64(b []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(v))
}

func walAppendString(b []byte, s string) []byte {
	b = walAppendU16(b, uint16(len(s)))
	return append(b, s...)
}

func walAppendTask(b []byte, j *api.Task) []byte {
	b = walAppendI64(b, j.ID)
	b = walAppendI64(b, j.WCETNs)
	b = walAppendI64(b, j.PeriodNs)
	b = walAppendI64(b, j.DeadlineNs)
	b = walAppendI64(b, int64(j.Priority))
	b = walAppendI64(b, j.WSS)
	return walAppendString(b, j.Name)
}

func walEncodeCreate(b []byte, cores int, policy string, model []byte) []byte {
	b = append(b, walKindCreate)
	b = walAppendI32(b, int32(cores))
	b = walAppendString(b, policy)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(model)))
	return append(b, model...)
}

func walEncodeAdmit(b []byte, core int, tasks int64, j *api.Task) []byte {
	b = append(b, walKindAdmit)
	b = walAppendI32(b, int32(core))
	b = walAppendI32(b, int32(tasks))
	return walAppendTask(b, j)
}

func walEncodeSplit(b []byte, tasks int64, j *api.Split) []byte {
	b = append(b, walKindSplit)
	b = walAppendI32(b, int32(tasks))
	b = walAppendTask(b, &j.Task)
	b = walAppendU16(b, uint16(len(j.Parts)))
	for _, p := range j.Parts {
		b = walAppendI32(b, int32(p.Core))
		b = walAppendI64(b, p.BudgetNs)
	}
	b = walAppendU16(b, uint16(len(j.WindowsNs)))
	for _, w := range j.WindowsNs {
		b = walAppendI64(b, w)
	}
	return b
}

func walEncodeRemove(b []byte, tasks int64, id int64) []byte {
	b = append(b, walKindRemove)
	b = walAppendI32(b, int32(tasks))
	return walAppendI64(b, id)
}

func walEncodeDelete(b []byte) []byte {
	return append(b, walKindDelete)
}

// --- decoding --------------------------------------------------------

// walReader is a bounds-checked cursor over one record payload. Any
// over-read latches err; the caller checks once at the end.
type walReader struct {
	b   []byte
	off int
	err error
}

func (r *walReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("admitd: truncated wal record payload at byte %d", r.off)
	}
}

func (r *walReader) take(n int) []byte {
	if r.err != nil || r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *walReader) u16() uint16 {
	s := r.take(2)
	if s == nil {
		return 0
	}
	return uint16(s[0]) | uint16(s[1])<<8
}

func (r *walReader) i32() int32 {
	s := r.take(4)
	if s == nil {
		return 0
	}
	return int32(binary.LittleEndian.Uint32(s))
}

func (r *walReader) i64() int64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(s))
}

func (r *walReader) str() string {
	n := int(r.u16())
	s := r.take(n)
	if s == nil {
		return ""
	}
	return string(s)
}

func (r *walReader) bytes32() []byte {
	s := r.take(4)
	if s == nil {
		return nil
	}
	n := int(binary.LittleEndian.Uint32(s))
	p := r.take(n)
	if p == nil {
		return nil
	}
	// Copy: the replay buffer is reused across records.
	return append([]byte(nil), p...)
}

func (r *walReader) task(j *api.Task) {
	j.ID = r.i64()
	j.WCETNs = r.i64()
	j.PeriodNs = r.i64()
	j.DeadlineNs = r.i64()
	j.Priority = int(r.i64())
	j.WSS = r.i64()
	j.Name = r.str()
}

// walDecode parses one record payload. The returned walRec owns its
// memory (strings and the model are copied out of the replay buffer).
func walDecode(payload []byte) (walRec, error) {
	if len(payload) == 0 {
		return walRec{}, fmt.Errorf("admitd: empty wal record payload")
	}
	rec := walRec{kind: payload[0]}
	r := &walReader{b: payload, off: 1}
	switch rec.kind {
	case walKindCreate:
		rec.cores = r.i32()
		rec.policy = r.str()
		rec.model = r.bytes32()
	case walKindAdmit:
		rec.core = r.i32()
		rec.tasks = r.i32()
		r.task(&rec.task)
	case walKindSplit:
		rec.tasks = r.i32()
		r.task(&rec.split.Task)
		for n := int(r.u16()); n > 0 && r.err == nil; n-- {
			rec.split.Parts = append(rec.split.Parts, api.Part{
				Core: int(r.i32()), BudgetNs: r.i64(),
			})
		}
		for n := int(r.u16()); n > 0 && r.err == nil; n-- {
			rec.split.WindowsNs = append(rec.split.WindowsNs, r.i64())
		}
	case walKindRemove:
		rec.tasks = r.i32()
		rec.id = r.i64()
	case walKindDelete:
		// Tombstone: kind byte only.
	default:
		return walRec{}, fmt.Errorf("admitd: unknown wal record kind %d", rec.kind)
	}
	if r.err != nil {
		return walRec{}, r.err
	}
	if r.off != len(payload) {
		return walRec{}, fmt.Errorf("admitd: wal record payload has %d trailing bytes", len(payload)-r.off)
	}
	return rec, nil
}

// walOpName maps a record kind to the feed op name.
func walOpName(kind byte) string {
	switch kind {
	case walKindSplit:
		return "split"
	case walKindRemove:
		return "remove"
	default:
		return "admit"
	}
}
