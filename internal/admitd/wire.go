// Package admitd is the online admission-control service: the
// paper's overhead-aware schedulability test served as a long-running
// HTTP/JSON daemon over live cluster sessions.
//
// A client creates a named session (a core count, a scheduling policy
// and an overhead model) and then asks, request by request, "can this
// task join this core set right now?". Each session owns one live
// analysis.Context — the incremental admission machinery the batch
// sweeps use — so consecutive admissions are warm incremental probes
// against the session's committed state, not cold re-analyses of the
// whole assignment. Sessions are serialized by a per-session actor
// goroutine, stored in a striped shard map, evicted LRU under a
// session cap (snapshotted to disk first, restored transparently on
// next touch), and snapshotted on graceful shutdown.
//
// The wire contract — every request, response and error envelope —
// is the public api package (one versioned schema, shared with the
// client SDK); this package is its server-side transport. This file
// is the seam between the two: converting wire tasks and splits to
// the internal model (with validation) and back, and mapping internal
// errors onto the api error codes. See DESIGN.md §3.
package admitd

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"repro/api"
	"repro/internal/task"
	"repro/internal/taskgen"
	"repro/internal/timeq"
)

// toTask validates and converts the wire task. Fixed-priority
// sessions require an explicit priority: admission is online, so
// there is no whole set to run rate-monotonic assignment over.
func toTask(j api.Task, p task.Policy) (*task.Task, error) {
	t := new(task.Task)
	if err := toTaskInto(t, j, p); err != nil {
		return nil, err
	}
	return t, nil
}

// toTaskInto is toTask into caller-provided storage, so the read path
// can convert into pooled scratch. The filled task must only be
// retained by callers that own t; probe paths that recycle t must not
// hand it to anything that keeps the pointer past the probe.
func toTaskInto(t *task.Task, j api.Task, p task.Policy) error {
	*t = task.Task{
		ID:       task.ID(j.ID),
		Name:     j.Name,
		WCET:     timeq.Time(j.WCETNs),
		Period:   timeq.Time(j.PeriodNs),
		Deadline: timeq.Time(j.DeadlineNs),
		Priority: j.Priority,
		WSS:      j.WSS,
	}
	if j.ID == 0 {
		return fmt.Errorf("task needs a nonzero id")
	}
	if err := t.Validate(); err != nil {
		return err
	}
	if p == task.FixedPriority && t.Priority == 0 {
		return fmt.Errorf("task %d: fixed-priority sessions need an explicit priority (smaller = higher)", j.ID)
	}
	return nil
}

// fromTask converts a task back to the wire form.
func fromTask(t *task.Task, core int) api.Task {
	return api.Task{
		ID:         int64(t.ID),
		Name:       t.Name,
		WCETNs:     int64(t.WCET),
		PeriodNs:   int64(t.Period),
		DeadlineNs: int64(t.Deadline),
		Priority:   t.Priority,
		WSS:        t.WSS,
		Core:       core,
	}
}

// toSplit validates and converts the wire split.
func toSplit(j api.Split, p task.Policy) (*task.Split, error) {
	t, err := toTask(j.Task, p)
	if err != nil {
		return nil, err
	}
	sp := &task.Split{Task: t}
	for _, pt := range j.Parts {
		sp.Parts = append(sp.Parts, task.Part{Core: pt.Core, Budget: timeq.Time(pt.BudgetNs)})
	}
	for _, w := range j.WindowsNs {
		sp.Windows = append(sp.Windows, timeq.Time(w))
	}
	if p == task.EDF && !sp.HasWindows() {
		return nil, fmt.Errorf("split %d: EDF sessions need windows_ns (EDF-WM deadline windows)", j.Task.ID)
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return sp, nil
}

// fromSplit converts a split back to the wire form.
func fromSplit(sp *task.Split) api.Split {
	j := api.Split{Task: fromTask(sp.Task, sp.Parts[0].Core)}
	for _, p := range sp.Parts {
		j.Parts = append(j.Parts, api.Part{Core: p.Core, BudgetNs: int64(p.Budget)})
	}
	for _, w := range sp.Windows {
		j.WindowsNs = append(j.WindowsNs, int64(w))
	}
	return j
}

// toTaskGen converts the wire generator config to the internal one.
// The two share their JSON schema field for field, so the conversion
// goes through JSON — a drift would surface as a decode error here,
// not as a silently dropped field.
func toTaskGen(g *api.TaskGen) (taskgen.Config, error) {
	var cfg taskgen.Config
	data, err := json.Marshal(g)
	if err != nil {
		return cfg, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return cfg, fmt.Errorf("generate: %w", err)
	}
	return cfg, nil
}

// parsePolicy maps the wire policy names.
func parsePolicy(s string) (task.Policy, error) {
	switch s {
	case "", "fp", "fixed-priority":
		return task.FixedPriority, nil
	case "edf", "EDF":
		return task.EDF, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (fp|edf)", s)
	}
}

// policyName is the canonical wire name.
func policyName(p task.Policy) string {
	if p == task.EDF {
		return "edf"
	}
	return "fp"
}

// toAPIError maps an internal error onto the wire envelope: every
// endpoint returns the same {code, message} body, with the status
// derived from the code (404 for missing resources, 409 for
// conflicting state, 410 for a closed session, 400 otherwise).
func toAPIError(err error) *api.Error {
	var ae *api.Error
	if errors.As(err, &ae) {
		return ae
	}
	code := api.CodeBadRequest
	switch {
	case errors.Is(err, ErrSessionNotFound):
		code = api.CodeSessionNotFound
	case errors.Is(err, ErrUnknownTask):
		code = api.CodeUnknownTask
	case errors.Is(err, ErrSessionExists):
		code = api.CodeSessionExists
	case errors.Is(err, ErrProbePending):
		code = api.CodeProbePending
	case errors.Is(err, ErrNoProbePending):
		code = api.CodeNoProbePending
	case errors.Is(err, ErrProbeRejected):
		code = api.CodeProbeRejected
	case errors.Is(err, ErrDuplicateTask):
		code = api.CodeDuplicateTask
	case errors.Is(err, ErrSessionClosed):
		code = api.CodeSessionClosed
	case errors.Is(err, ErrSeqTruncated):
		code = api.CodeSeqTruncated
	}
	return &api.Error{Code: code, Message: err.Error()}
}
