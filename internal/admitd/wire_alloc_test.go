package admitd

import (
	"context"
	"runtime"
	"testing"

	"repro/api"
	"repro/client"
)

// Allocation guards for the zero-alloc wire layer (PR 7): the codecs
// themselves must not allocate, and the full handler path — client
// encode, pooled transport, body slab, fast decode, session op, fast
// encode — must stay within the 8 allocs/op budget from the issue.
// CI runs these in the alloc-guard step (-run 'AllocFree').

// allocsAtMost asserts f stays within budget allocs/op after warmup.
func allocsAtMost(t *testing.T, name string, budget float64, f func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("alloc guards are meaningless under -race: sync.Pool drops Puts to randomize reuse")
	}
	for i := 0; i < 10; i++ {
		f() // warm pools, caches and verdict memos
	}
	if n := testing.AllocsPerRun(200, f); n > budget {
		t.Errorf("%s: %.2f allocs/op, budget %.1f", name, n, budget)
	}
}

// TestWireCodecAllocFree guards the wire codecs in isolation: fast
// request decode and fast response encode are zero-alloc.
func TestWireCodecAllocFree(t *testing.T) {
	// No task name: the body slab is pooled, so a present name must be
	// copied out and costs exactly one string allocation — everything
	// else decodes allocation-free.
	admitBody := []byte(`{"task":{"id":7,"wcet_ns":250000,"period_ns":20000000,"deadline_ns":20000000,"priority":103,"wss":65536},"core":2,"hold":true}`)
	sessAssertZeroAllocs(t, "decodeAdmit", func() {
		var dst api.AdmitRequest
		core, corePresent, err := decodeAdmit(admitBody, &dst)
		if err != nil {
			t.Fatal(err)
		}
		if !corePresent || core != 2 || dst.Task.ID != 7 || !dst.Hold {
			t.Fatalf("decodeAdmit wrong parse: %+v core=%d,%v", dst, core, corePresent)
		}
	})
	removeBody := []byte(`{"id":7}`)
	sessAssertZeroAllocs(t, "decodeRemove", func() {
		var dst api.RemoveRequest
		if err := decodeRemove(removeBody, &dst); err != nil {
			t.Fatal(err)
		}
		if dst.ID != 7 {
			t.Fatalf("decodeRemove wrong parse: %+v", dst)
		}
	})
	v := api.Verdict{TaskID: 7, Admitted: true, Core: 2, Probes: 3}
	buf := make([]byte, 0, 256)
	sessAssertZeroAllocs(t, "AppendVerdict", func() {
		buf = api.AppendVerdict(buf[:0], &v)
		if len(buf) == 0 {
			t.Fatal("empty verdict encoding")
		}
	})
	rm := api.Removed{Removed: true, ID: 7}
	sessAssertZeroAllocs(t, "AppendRemoved", func() {
		buf = api.AppendRemoved(buf[:0], &rm)
		if len(buf) == 0 {
			t.Fatal("empty removed encoding")
		}
	})
}

// TestHandlerPathAllocFree guards the edge-to-kernel budget end to
// end through the in-process client: every hot read endpoint must
// stay within 8 allocs/op (issue acceptance; currently 3-5).
func TestHandlerPathAllocFree(t *testing.T) {
	srv, err := New(Config{MaxSessions: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := client.InProcess(srv)
	ctx := context.Background()
	sess, err := c.CreateSession(ctx, api.CreateSessionRequest{Name: "wirebudget", Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 12; i++ {
		core := int(i % 4)
		if _, err := sess.Admit(ctx, api.AdmitRequest{Task: benchTask(i), Core: &core}); err != nil {
			t.Fatal(err)
		}
	}
	const budget = 8
	tryReq := api.AdmitRequest{Task: benchTask(1 << 40)}
	allocsAtMost(t, "client.Try", budget, func() {
		if _, err := sess.Try(ctx, tryReq); err != nil {
			t.Fatal(err)
		}
	})
	var st api.State
	allocsAtMost(t, "client.StateInto", budget, func() {
		if err := sess.StateInto(ctx, &st); err != nil {
			t.Fatal(err)
		}
	})
	allocsAtMost(t, "client.Stats", budget, func() {
		if _, err := sess.Stats(ctx); err != nil {
			t.Fatal(err)
		}
	})
}

// TestBatchTryP2AllocFree guards the multi-worker batch path at
// GOMAXPROCS=2 — the configuration that regressed to 0.0625 allocs
// per task (4 per 64-task batch) when prober scratch leaked out of
// the pool. AllocsPerRun pins GOMAXPROCS=1, so this measures with a
// MemStats mallocs delta instead; budget is half an allocation per
// whole batch, far under one leak per worker.
func TestBatchTryP2AllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc guards are meaningless under -race: sync.Pool drops Puts to randomize reuse")
	}
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	s := allocSession(t)
	defer s.close()
	tasks := make([]api.Task, 64)
	for i := range tasks {
		tasks[i] = benchTask(1<<41 + int64(i))
	}
	req := api.BatchRequest{Tasks: tasks, TryOnly: true}
	ctx := context.Background()
	run := func() {
		sum, err := s.batchTryRead(ctx, req, nil)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Admitted+sum.Rejected != len(tasks) {
			t.Fatalf("batch summary %+v, want %d verdicts", sum, len(tasks))
		}
	}
	for i := 0; i < 20; i++ {
		run() // warm worker pools on both procs
	}
	var m0, m1 runtime.MemStats
	const iters = 200
	runtime.ReadMemStats(&m0)
	for i := 0; i < iters; i++ {
		run()
	}
	runtime.ReadMemStats(&m1)
	if perBatch := float64(m1.Mallocs-m0.Mallocs) / iters; perBatch > 0.5 {
		t.Errorf("batchTryRead@2: %.3f allocs/batch, budget 0.5", perBatch)
	}
}
