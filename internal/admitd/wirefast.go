package admitd

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/api"
)

// The zero-alloc wire layer: pooled per-request scratch so the hot
// handlers (admit, try, commit, rollback, remove) touch encoding/json
// only as a fallback. Request bodies are read into a pooled slab and
// parsed by the api package's fast codecs; responses are appended into
// a pooled buffer by the fast encoders, byte-identical to what
// json.Encoder would have produced (HTML-safe, trailing newline).
// Anything the fast path declines — escaped strings, floats, overflow,
// exotic whitespace in numbers — falls back to encoding/json, so the
// accepted language and the produced bytes never change.

// wireScratch is one request's wire-layer scratch: the body slab and
// the response append buffer.
type wireScratch struct {
	body []byte
	out  []byte
}

var wirePool = sync.Pool{
	New: func() any {
		return &wireScratch{
			body: make([]byte, 0, 1024),
			out:  make([]byte, 0, 256),
		}
	},
}

// readBody reads the whole request body into the pooled slab,
// pre-sizing from Content-Length when declared.
func (ws *wireScratch) readBody(r *http.Request) ([]byte, error) {
	b := ws.body[:0]
	if c := r.ContentLength; c > int64(cap(b)) && c <= 1<<20 {
		b = make([]byte, 0, c)
	}
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := r.Body.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if err != nil {
			ws.body = b
			if err == io.EOF {
				return b, nil
			}
			return nil, fmt.Errorf("bad request body: %w", err)
		}
	}
}

// decodeAdmit parses an AdmitRequest from raw bytes: fast path first,
// encoding/json on decline. A "core" field is returned by value —
// when corePresent the caller attaches its own stack backing
// (req.Core = &core) so the fast path allocates nothing; the fallback
// leaves req.Core pointing at the unmarshal-allocated int and reports
// corePresent=false so the caller does not overwrite it.
func decodeAdmit(body []byte, req *api.AdmitRequest) (core int, corePresent bool, err error) {
	if c, present, ok := api.ParseAdmitRequest(body, req); ok {
		return c, present, nil
	}
	// The fallback unmarshals into a local that escapes into the
	// reflection machinery, then copies out. Passing req itself to
	// json.Unmarshal would mark the parameter as escaping and force
	// every caller's stack-declared request onto the heap — on the
	// fast path too.
	var cold api.AdmitRequest
	if err := json.Unmarshal(body, &cold); err != nil {
		return 0, false, fmt.Errorf("bad request body: %w", err)
	}
	*req = cold
	return 0, false, nil
}

// decodeRemove is decodeAdmit for RemoveRequest.
func decodeRemove(body []byte, req *api.RemoveRequest) error {
	if api.ParseRemoveRequest(body, req) {
		return nil
	}
	var cold api.RemoveRequest // see decodeAdmit on the indirection
	if err := json.Unmarshal(body, &cold); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	*req = cold
	return nil
}

// writeVerdict writes v through the pooled buffer (status 200).
func (ws *wireScratch) writeVerdict(w http.ResponseWriter, v *api.Verdict) {
	b := api.AppendVerdict(ws.out[:0], v)
	b = append(b, '\n')
	ws.out = b
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b) //nolint:errcheck // client gone; nothing to do
}

// writeRemoved writes r through the pooled buffer (status 200).
func (ws *wireScratch) writeRemoved(w http.ResponseWriter, r *api.Removed) {
	b := api.AppendRemoved(ws.out[:0], r)
	b = append(b, '\n')
	ws.out = b
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b) //nolint:errcheck
}

// writeRaw writes a prebuilt JSON body (status 200). Used by the
// state read path, whose bytes are cached per snapshot.
func writeRaw(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body) //nolint:errcheck
}
