package analysis

import (
	"math/rand"
	"testing"

	"repro/internal/overhead"
	"repro/internal/task"
	"repro/internal/timeq"
)

// Allocation-regression guards for the snapshot read path. The
// admission hot loop is TryPlace/TrySplit on a published snapshot;
// after the SoA kernels and the pooled probe scratch these must not
// allocate at all in steady state — a single alloc per probe caps
// throughput on the multi-core rig long before the arithmetic does.
//
// testing.AllocsPerRun averages over every run and does not warm up,
// so each guard first runs its probe a few times to populate the
// scratch pools and verdict memos.

// allocSnapshot builds a committed context with a few admitted tasks
// (and optionally a split chain), engages publication, and returns
// the snapshot plus a probe task that is NOT in any verdict memo
// core-0 path yet.
func allocSnapshot(t *testing.T, pol task.Policy, withSplit bool) (Snapshot, *task.Task) {
	t.Helper()
	m := overhead.PaperModel()
	a := task.NewAssignment(4)
	a.Policy = pol
	ctx := ForPolicy(pol).NewContext(a, m)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 12; i++ {
		tk := probeTask(rng, int64(i+1))
		if ctx.TryPlace(tk, i%4) {
			ctx.Commit()
		} else {
			ctx.Rollback()
		}
	}
	if withSplit {
		sp := &task.Split{
			Task:  &task.Task{ID: 900, WCET: ms(4), Period: ms(40), Priority: 40000, WSS: 64 << 10},
			Parts: []task.Part{{Core: 0, Budget: ms(2)}, {Core: 1, Budget: ms(2)}},
		}
		if pol == task.EDF {
			sp.Windows = []timeq.Time{ms(20), ms(20)}
		}
		ctx.AddSplit(sp)
	}
	return ctx.Fork(), probeTask(rng, 500)
}

// probeSplit is a fresh two-part split to probe with (never committed).
func probeSplit(pol task.Policy) *task.Split {
	sp := &task.Split{
		Task:  &task.Task{ID: 901, WCET: ms(2), Period: ms(50), Priority: 41000, WSS: 32 << 10},
		Parts: []task.Part{{Core: 1, Budget: ms(1)}, {Core: 2, Budget: ms(1)}},
	}
	if pol == task.EDF {
		sp.Windows = []timeq.Time{ms(25), ms(25)}
	}
	return sp
}

func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("alloc guards are meaningless under -race: sync.Pool drops Puts to randomize reuse")
	}
	for i := 0; i < 5; i++ {
		f() // warm pools, cost caches and verdict memos
	}
	if n := testing.AllocsPerRun(100, f); n != 0 {
		t.Errorf("%s: %.1f allocs/op, want 0", name, n)
	}
}

// TestSnapshotTryPlaceAllocFree guards the memoized whole-task probe:
// after the first miss stores the verdict, repeats are a lock-free
// hash lookup with zero allocations.
func TestSnapshotTryPlaceAllocFree(t *testing.T) {
	for _, pol := range []task.Policy{task.FixedPriority, task.EDF} {
		snap, tk := allocSnapshot(t, pol, false)
		assertZeroAllocs(t, pol.String()+"/TryPlace", func() {
			snap.TryPlace(tk, 0)
		})
	}
}

// TestSnapshotTryPlaceSolveAllocFree guards the full solve path: a
// fixed-priority snapshot with a committed split chain disables the
// verdict memo, so every probe builds per-core views, clones the
// chains and runs the jitter resolution — all from pooled scratch.
func TestSnapshotTryPlaceSolveAllocFree(t *testing.T) {
	snap, tk := allocSnapshot(t, task.FixedPriority, true)
	assertZeroAllocs(t, "FP/TryPlace+chains", func() {
		snap.TryPlace(tk, 2)
	})
}

// TestSnapshotTrySplitAllocFree guards split probes, which never use
// the verdict memo: FP runs the chain path, EDF the demand test, both
// from pooled scratch.
func TestSnapshotTrySplitAllocFree(t *testing.T) {
	for _, pol := range []task.Policy{task.FixedPriority, task.EDF} {
		snap, _ := allocSnapshot(t, pol, pol == task.FixedPriority)
		sp := probeSplit(pol)
		assertZeroAllocs(t, pol.String()+"/TrySplit", func() {
			snap.TrySplit(sp, 1)
		})
	}
}

// TestSnapshotProberBatchAllocFree guards the batched-verdict shape
// admitd uses: one Prober pinned across K probes.
func TestSnapshotProberBatchAllocFree(t *testing.T) {
	snap, tk := allocSnapshot(t, task.FixedPriority, true)
	sp := probeSplit(task.FixedPriority)
	assertZeroAllocs(t, "FP/Prober batch", func() {
		p := snap.Prober()
		for c := 0; c < snap.NumCores(); c++ {
			p.TryPlace(tk, c)
		}
		p.TrySplit(sp, 1)
		p.Close()
	})
}

// TestSnapshotSchedulableAllocFree guards the state-render read: the
// full-test verdict is computed at most once per snapshot, so repeat
// reads are one atomic load.
func TestSnapshotSchedulableAllocFree(t *testing.T) {
	for _, pol := range []task.Policy{task.FixedPriority, task.EDF} {
		snap, _ := allocSnapshot(t, pol, false)
		assertZeroAllocs(t, pol.String()+"/Schedulable", func() {
			snap.Schedulable()
		})
	}
}
