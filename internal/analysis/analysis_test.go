package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/overhead"
	"repro/internal/task"
	"repro/internal/timeq"
)

func ms(x int64) timeq.Time { return timeq.Time(x) * timeq.Millisecond }

// oneCore builds a CoreSet of unsplit tasks with RM priorities.
func oneCore(m *overhead.Model, tasks ...*task.Task) *CoreSet {
	s := task.NewSet(tasks...)
	s.AssignRM()
	var es []*Entity
	for _, t := range s.Tasks {
		es = append(es, &Entity{Task: t, C: t.WCET, T: t.Period, D: t.EffectiveDeadline(), LocalPriority: t.Priority})
	}
	return NewCoreSet(es, len(es), m)
}

// Classic textbook RTA example: C=(1,2,3), T=(4,6,12) → R=(1,3,10).
func TestResponseTimeTextbook(t *testing.T) {
	z := overhead.Zero()
	cs := oneCore(z,
		&task.Task{ID: 1, WCET: ms(1), Period: ms(4)},
		&task.Task{ID: 2, WCET: ms(2), Period: ms(6)},
		&task.Task{ID: 3, WCET: ms(3), Period: ms(12)},
	)
	want := map[task.ID]timeq.Time{1: ms(1), 2: ms(3), 3: ms(10)}
	for _, e := range cs.Entities {
		r, ok := cs.ResponseTime(e, z)
		if !ok {
			t.Fatalf("%v unschedulable", e)
		}
		if r != want[e.Task.ID] {
			t.Errorf("R(τ%d) = %v, want %v", e.Task.ID, r, want[e.Task.ID])
		}
	}
	if !cs.CoreSchedulable(z) {
		t.Error("core should be schedulable")
	}
}

func TestResponseTimeUnschedulable(t *testing.T) {
	z := overhead.Zero()
	// U = 0.5 + 0.6 > 1.
	cs := oneCore(z,
		&task.Task{ID: 1, WCET: ms(2), Period: ms(4)},
		&task.Task{ID: 2, WCET: ms(6), Period: ms(10)},
	)
	if cs.CoreSchedulable(z) {
		t.Fatal("overloaded core accepted")
	}
	// The highest-priority task alone is still fine.
	hi := cs.Entities[0]
	if r, ok := cs.ResponseTime(hi, z); !ok || r != ms(2) {
		t.Fatalf("R(hi) = %v ok=%v", r, ok)
	}
}

func TestDeadlineEqualsWCETBoundary(t *testing.T) {
	z := overhead.Zero()
	// Single task with D = C is exactly schedulable.
	cs := oneCore(z, &task.Task{ID: 1, WCET: ms(5), Period: ms(10), Deadline: ms(5)})
	if !cs.CoreSchedulable(z) {
		t.Fatal("D = C should be schedulable alone")
	}
	// D < C is not.
	cs2 := oneCore(z, &task.Task{ID: 1, WCET: ms(5), Period: ms(10), Deadline: ms(4)})
	_ = cs2.Entities[0] // Validate() would reject; analysis must too.
	if cs2.CoreSchedulable(z) {
		t.Fatal("D < C accepted")
	}
}

func TestOverheadInflationMakesBorderlineFail(t *testing.T) {
	// Two tasks at exactly U=1 are RM-schedulable here without
	// overheads (harmonic periods), but any positive overhead tips
	// them over.
	mk := func() *CoreSet {
		return oneCore(overhead.Zero(),
			&task.Task{ID: 1, WCET: ms(5), Period: ms(10)},
			&task.Task{ID: 2, WCET: ms(10), Period: ms(20)},
		)
	}
	z := overhead.Zero()
	if !mk().CoreSchedulable(z) {
		t.Fatal("harmonic U=1 set should be schedulable with zero overhead")
	}
	if mk().CoreSchedulable(overhead.PaperModel()) {
		t.Fatal("U=1 set cannot absorb nonzero overhead")
	}
}

func TestInflatedCostCharges(t *testing.T) {
	m := overhead.PaperModel()
	tk := &task.Task{ID: 1, WCET: ms(1), Period: ms(10), WSS: 0}
	normal := &Entity{Task: tk, C: ms(1), T: ms(10), D: ms(10), LocalPriority: 1}
	cs := NewCoreSet([]*Entity{normal}, 1, m)
	got := cs.InflatedCost(normal, m)
	// Arrival: rls + θdel + δadd + sch + victim δadd + δdel + cnt1.
	// Departure: sch + cnt2 + θadd + δdel. No cache (WSS 0).
	dAdd := m.QueueOpCost(overhead.ReadyAdd, 1, false)
	dDel := m.QueueOpCost(overhead.ReadyDelete, 1, false)
	want := ms(1) +
		m.Release + m.QueueOpCost(overhead.SleepDelete, 1, false) + dAdd + m.Sched + dAdd + dDel + m.CtxSwitch +
		m.Sched + m.CtxSwitch + m.QueueOpCost(overhead.SleepAdd, 1, false) + dDel
	if got != want {
		t.Fatalf("inflated = %v, want %v", got, want)
	}

	// Migration-in/out entity pays remote ready add on departure and
	// no release path on arrival.
	body := &Entity{Task: tk, C: ms(1), T: ms(10), D: ms(10), LocalPriority: 0, MigrIn: true, MigrOut: true}
	cs2 := NewCoreSet([]*Entity{body}, 1, m)
	got2 := cs2.InflatedCost(body, m)
	want2 := ms(1) +
		m.Sched + dAdd + dDel + m.CtxSwitch + // arrival (no CPMD: WSS 0)
		m.Sched + m.CtxSwitch + m.QueueOpCost(overhead.ReadyAdd, 1, true) + dDel
	if got2 != want2 {
		t.Fatalf("migratory inflated = %v, want %v", got2, want2)
	}
}

func TestBlockingTerm(t *testing.T) {
	m := overhead.PaperModel()
	hi := &Entity{Task: &task.Task{ID: 1, WCET: ms(1), Period: ms(10)}, C: ms(1), T: ms(10), D: ms(10), LocalPriority: 1}
	lo := &Entity{Task: &task.Task{ID: 2, WCET: ms(1), Period: ms(20)}, C: ms(1), T: ms(20), D: ms(20), LocalPriority: 2}
	cs := NewCoreSet([]*Entity{hi, lo}, 2, m)
	bHi := cs.Blocking(hi, m)
	bLo := cs.Blocking(lo, m)
	if bHi == 0 || bLo == 0 {
		t.Fatal("blocking should be positive under the paper model")
	}
	// The higher-priority entity suffers the lp release batch on top.
	if bHi <= bLo {
		t.Errorf("B(hi)=%v should exceed B(lo)=%v", bHi, bLo)
	}
	// Zero model: no blocking.
	zcs := NewCoreSet([]*Entity{hi, lo}, 2, overhead.Zero())
	if zcs.Blocking(hi, overhead.Zero()) != 0 {
		t.Error("zero model should have zero blocking")
	}
}

func TestLiuLaylandBound(t *testing.T) {
	if LiuLaylandBound(1) != 1.0 || LiuLaylandBound(0) != 1.0 {
		t.Error("n≤1 bound should be 1")
	}
	if math.Abs(LiuLaylandBound(2)-0.8284) > 1e-4 {
		t.Errorf("Θ(2) = %v", LiuLaylandBound(2))
	}
	// Monotonically decreasing towards ln 2.
	prev := 1.0
	for n := 1; n <= 100; n++ {
		b := LiuLaylandBound(n)
		if b > prev+1e-12 {
			t.Fatalf("bound not decreasing at n=%d", n)
		}
		prev = b
	}
	if math.Abs(prev-math.Ln2) > 0.01 {
		t.Errorf("Θ(100) = %v, should approach ln2", prev)
	}
}

func TestCoreUtilizationSchedulable(t *testing.T) {
	z := overhead.Zero()
	cs := oneCore(z,
		&task.Task{ID: 1, WCET: ms(1), Period: ms(4)},  // 0.25
		&task.Task{ID: 2, WCET: ms(2), Period: ms(10)}, // 0.2
	)
	if !cs.CoreUtilizationSchedulable() {
		t.Error("U=0.45 under Θ(2)=0.828 rejected")
	}
	cs2 := oneCore(z,
		&task.Task{ID: 1, WCET: ms(2), Period: ms(4)},
		&task.Task{ID: 2, WCET: ms(5), Period: ms(10)},
	)
	if cs2.CoreUtilizationSchedulable() {
		t.Error("U=1.0 over Θ(2) accepted")
	}
}

// A split assignment: τ3 split across both cores; the chain must be
// schedulable and the tail's jitter must reflect the body's response.
func TestSplitChainSchedulable(t *testing.T) {
	t1 := &task.Task{ID: 1, WCET: ms(4), Period: ms(10)}
	t2 := &task.Task{ID: 2, WCET: ms(4), Period: ms(10)}
	t3 := &task.Task{ID: 3, WCET: ms(8), Period: ms(20)}
	s := task.NewSet(t1, t2, t3)
	s.AssignRM()

	a := task.NewAssignment(2)
	a.Place(t1, 0)
	a.Place(t2, 1)
	a.Splits = append(a.Splits, &task.Split{Task: t3, Parts: []task.Part{
		{Core: 0, Budget: ms(5)},
		{Core: 1, Budget: ms(3)},
	}})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	z := overhead.Zero()
	if !AssignmentSchedulable(a, z) {
		t.Fatal("split assignment should be schedulable with zero overhead")
	}
	rts, ok := ResponseTimes(a, z)
	if !ok {
		t.Fatal("ResponseTimes disagrees with AssignmentSchedulable")
	}
	// Parts run at highest local priority: body R = 5ms, so the tail
	// entity must carry J = 5ms.
	cores := BuildCores(a, z)
	if !cores.Schedulable(z) {
		t.Fatal("rebuild not schedulable")
	}
	var tail *Entity
	for _, ch := range cores.Chains {
		tail = ch.Entities[len(ch.Entities)-1]
	}
	if tail.Jitter != ms(5) {
		t.Errorf("tail jitter = %v, want 5ms", tail.Jitter)
	}
	_ = rts
}

func TestSplitChainUnschedulableTightDeadline(t *testing.T) {
	// Body consumes nearly the whole deadline; the tail cannot fit.
	t1 := &task.Task{ID: 1, WCET: ms(9), Period: ms(10)}
	t3 := &task.Task{ID: 3, WCET: ms(12), Period: ms(20), Deadline: ms(12)}
	s := task.NewSet(t1, t3)
	s.AssignRM()
	a := task.NewAssignment(2)
	a.Place(t1, 0)
	a.Splits = append(a.Splits, &task.Split{Task: t3, Parts: []task.Part{
		{Core: 0, Budget: ms(11)},
		{Core: 1, Budget: ms(1)},
	}})
	z := overhead.Zero()
	// Part 0 at highest priority on core 0 takes 11ms; τ1 then cannot
	// meet its own 10ms deadline, and the chain leaves the tail 1ms
	// for 1ms of work with J=11ms > D−C. Either way: unschedulable.
	if AssignmentSchedulable(a, z) {
		t.Fatal("infeasible chain accepted")
	}
}

// Property: adding a task to a core never decreases anyone's response
// time (interference monotonicity).
func TestQuickRTAMonotonicity(t *testing.T) {
	z := overhead.Zero()
	f := func(c1Raw, c2Raw, cXRaw uint8) bool {
		c1 := timeq.Time(c1Raw%9+1) * timeq.Millisecond
		c2 := timeq.Time(c2Raw%9+1) * timeq.Millisecond
		cx := timeq.Time(cXRaw%5+1) * timeq.Millisecond
		base := oneCore(z,
			&task.Task{ID: 1, WCET: c1, Period: ms(20)},
			&task.Task{ID: 2, WCET: c2, Period: ms(40)},
		)
		more := oneCore(z,
			&task.Task{ID: 1, WCET: c1, Period: ms(20)},
			&task.Task{ID: 2, WCET: c2, Period: ms(40)},
			&task.Task{ID: 3, WCET: cx, Period: ms(10)}, // highest priority
		)
		// Find τ2 in both and compare response times.
		var rBase, rMore timeq.Time
		var okBase, okMore bool
		for _, e := range base.Entities {
			if e.Task.ID == 2 {
				rBase, okBase = base.ResponseTime(e, z)
			}
		}
		for _, e := range more.Entities {
			if e.Task.ID == 2 {
				rMore, okMore = more.ResponseTime(e, z)
			}
		}
		if !okBase {
			return true // base already unschedulable; nothing to compare
		}
		return !okMore || rMore >= rBase
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: zero-overhead schedulability is implied by paper-overhead
// schedulability (overheads only hurt).
func TestQuickOverheadOnlyHurts(t *testing.T) {
	p := overhead.PaperModel()
	z := overhead.Zero()
	f := func(c1Raw, c2Raw, c3Raw uint8) bool {
		tasks := []*task.Task{
			{ID: 1, WCET: timeq.Time(c1Raw%40+1) * timeq.Millisecond / 4, Period: ms(10)},
			{ID: 2, WCET: timeq.Time(c2Raw%40+1) * timeq.Millisecond / 4, Period: ms(20)},
			{ID: 3, WCET: timeq.Time(c3Raw%40+1) * timeq.Millisecond / 4, Period: ms(40)},
		}
		withOv := oneCore(p, tasks...)
		if !withOv.CoreSchedulable(p) {
			return true
		}
		noOv := oneCore(z,
			&task.Task{ID: 1, WCET: tasks[0].WCET, Period: ms(10)},
			&task.Task{ID: 2, WCET: tasks[1].WCET, Period: ms(20)},
			&task.Task{ID: 3, WCET: tasks[2].WCET, Period: ms(40)},
		)
		return noOv.CoreSchedulable(z)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHyperbolicBound(t *testing.T) {
	z := overhead.Zero()
	// Π(U+1): two tasks at U=0.41 each → 1.41² = 1.988 ≤ 2 passes
	// where L&L (ΣU = 0.82 ≤ 0.828) barely passes too.
	ok := oneCore(z,
		&task.Task{ID: 1, WCET: ms(41), Period: ms(100)},
		&task.Task{ID: 2, WCET: ms(41), Period: ms(100)},
	)
	if !ok.CoreHyperbolicSchedulable() {
		t.Fatal("hyperbolic bound rejected 1.41²")
	}
	// U = (0.5, 0.4): L&L fails (0.9 > 0.828) but hyperbolic passes
	// (1.5·1.4 = 2.1 > 2 → no). Pick (0.5, 0.33): 1.5·1.33 = 1.995 ≤ 2
	// while ΣU = 0.83 > Θ(2): hyperbolic dominates L&L.
	better := oneCore(z,
		&task.Task{ID: 1, WCET: ms(50), Period: ms(100)},
		&task.Task{ID: 2, WCET: ms(33), Period: ms(100)},
	)
	if better.CoreUtilizationSchedulable() {
		t.Fatal("L&L should reject ΣU=0.83 for n=2")
	}
	if !better.CoreHyperbolicSchedulable() {
		t.Fatal("hyperbolic should accept Π=1.995")
	}
	// Constrained deadlines opt out.
	con := oneCore(z, &task.Task{ID: 1, WCET: ms(10), Period: ms(100), Deadline: ms(50)})
	if con.CoreHyperbolicSchedulable() {
		t.Fatal("hyperbolic bound must refuse constrained deadlines")
	}
}

// Hyperbolic-accepted cores are always RTA-schedulable (the bound is
// sufficient).
func TestQuickHyperbolicImpliesRTA(t *testing.T) {
	z := overhead.Zero()
	f := func(c1Raw, c2Raw, c3Raw uint8) bool {
		cs := oneCore(z,
			&task.Task{ID: 1, WCET: timeq.Time(c1Raw%30+1) * timeq.Millisecond, Period: ms(100)},
			&task.Task{ID: 2, WCET: timeq.Time(c2Raw%30+1) * timeq.Millisecond, Period: ms(150)},
			&task.Task{ID: 3, WCET: timeq.Time(c3Raw%60+1) * timeq.Millisecond, Period: ms(350)},
		)
		if !cs.CoreHyperbolicSchedulable() {
			return true
		}
		return cs.CoreSchedulable(z)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
