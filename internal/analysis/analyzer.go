package analysis

import (
	"repro/internal/overhead"
	"repro/internal/task"
)

// Analyzer is the policy-generic admission interface: one
// schedulability test an assignment (or a single provisional core of
// one) can be admitted through, independent of whether the underlying
// mathematics is fixed-priority response-time analysis or EDF
// processor demand. Partitioning algorithms declare their policy and
// admit every placement through the Analyzer for it, so the whole
// pipeline — bin-packers, splitters, experiment driver — shares one
// admission surface (the paper's "shared overhead-aware admission
// test").
type Analyzer interface {
	// Policy identifies the dispatching discipline the test models.
	Policy() task.Policy
	// Schedulable runs the full admission test on a complete
	// assignment under the overhead model (nil means zero overheads).
	Schedulable(a *task.Assignment, m *overhead.Model) bool
	// CoreSchedulable is the stateless incremental admission test: it
	// probes only core c of a possibly provisional assignment, with
	// any cross-core coupling (split chains' release jitters) resolved
	// across the whole assignment but failures elsewhere not vetoing
	// the probe. Packing loops that issue many probes against one
	// evolving assignment should use NewContext instead, which gives
	// the same decisions at a fraction of the cost.
	CoreSchedulable(a *task.Assignment, c int, m *overhead.Model) bool
	// NewContext opens a stateful admission context over the
	// assignment: the incremental counterpart of CoreSchedulable that
	// caches per-core entity sets, warm-starts fixed points from
	// previously converged values, and memoizes per-core verdicts,
	// invalidating only the cores a mutation touches. Decisions are
	// bit-identical to the stateless path. The context owns all
	// mutations of a for its lifetime.
	NewContext(a *task.Assignment, m *overhead.Model) Context
}

// The two concrete analyzers the paper's evaluation needs.
var (
	// FixedPriorityRTA is the overhead-aware exact response-time
	// analysis with split-chain jitter resolution (Sections 3–4).
	FixedPriorityRTA Analyzer = fpAnalyzer{}
	// EDFDemand is the overhead-aware processor-demand criterion with
	// EDF-WM deadline windows (the paper's Section 2 EDF extension).
	EDFDemand Analyzer = edfAnalyzer{}
)

// ForPolicy returns the Analyzer for a scheduling policy.
func ForPolicy(p task.Policy) Analyzer {
	if p == task.EDF {
		return EDFDemand
	}
	return FixedPriorityRTA
}

// Schedulable dispatches the full admission test on the assignment's
// own policy — the single entry point replacing the historical
// AssignmentSchedulable / EDFAssignmentSchedulable pair.
func Schedulable(a *task.Assignment, m *overhead.Model) bool {
	return ForPolicy(a.Policy).Schedulable(a, overhead.Normalize(m))
}

type fpAnalyzer struct{}

func (fpAnalyzer) Policy() task.Policy { return task.FixedPriority }

func (fpAnalyzer) Schedulable(a *task.Assignment, m *overhead.Model) bool {
	m = overhead.Normalize(m)
	return BuildCores(a, m).Schedulable(m)
}

func (fpAnalyzer) CoreSchedulable(a *task.Assignment, c int, m *overhead.Model) bool {
	m = overhead.Normalize(m)
	if len(a.Splits) == 0 {
		// No chains, no cross-core coupling: probe core c alone.
		return BuildCore(a, c, m).CoreSchedulable(m)
	}
	return BuildCores(a, m).SchedulableCore(c, m)
}

func (an fpAnalyzer) NewContext(a *task.Assignment, m *overhead.Model) Context {
	m = overhead.Normalize(m)
	return wrapChecked(newFPContext(an, a, m), m)
}

type edfAnalyzer struct{}

func (edfAnalyzer) Policy() task.Policy { return task.EDF }

func (edfAnalyzer) Schedulable(a *task.Assignment, m *overhead.Model) bool {
	m = overhead.Normalize(m)
	for _, sp := range a.Splits {
		if !sp.HasWindows() {
			return false // EDF requires window-split tasks
		}
	}
	for _, cs := range EDFBuildCores(a, m) {
		if !cs.EDFCoreSchedulable(m) {
			return false
		}
	}
	return true
}

func (edfAnalyzer) CoreSchedulable(a *task.Assignment, c int, m *overhead.Model) bool {
	m = overhead.Normalize(m)
	// Windows decouple the cores: build only the probed one.
	return EDFBuildCore(a, c, m).EDFCoreSchedulable(m)
}

func (an edfAnalyzer) NewContext(a *task.Assignment, m *overhead.Model) Context {
	m = overhead.Normalize(m)
	return wrapChecked(newEDFContext(an, a, m), m)
}
