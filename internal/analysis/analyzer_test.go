package analysis

import (
	"testing"

	"repro/internal/overhead"
	"repro/internal/task"
	"repro/internal/timeq"
)

func TestForPolicy(t *testing.T) {
	if ForPolicy(task.FixedPriority) != FixedPriorityRTA {
		t.Fatal("FixedPriority must map to FixedPriorityRTA")
	}
	if ForPolicy(task.EDF) != EDFDemand {
		t.Fatal("EDF must map to EDFDemand")
	}
	if FixedPriorityRTA.Policy() != task.FixedPriority || EDFDemand.Policy() != task.EDF {
		t.Fatal("analyzer policy declarations wrong")
	}
}

// twoTaskAssignment builds a trivially schedulable one-core assignment.
func twoTaskAssignment() *task.Assignment {
	t1 := &task.Task{ID: 1, WCET: 1 * timeq.Millisecond, Period: 10 * timeq.Millisecond, Priority: 1}
	t2 := &task.Task{ID: 2, WCET: 2 * timeq.Millisecond, Period: 20 * timeq.Millisecond, Priority: 2}
	a := task.NewAssignment(1)
	a.Place(t1, 0)
	a.Place(t2, 0)
	return a
}

// The analyzers agree with the historical entry points, and the
// policy-generic Schedulable dispatches on the assignment's stamp.
func TestAnalyzerMatchesLegacyEntryPoints(t *testing.T) {
	a := twoTaskAssignment()
	for _, m := range []*overhead.Model{nil, overhead.Zero(), overhead.PaperModel()} {
		norm := overhead.Normalize(m)
		if FixedPriorityRTA.Schedulable(a, m) != AssignmentSchedulable(a, norm) {
			t.Fatal("FP analyzer disagrees with AssignmentSchedulable")
		}
		if EDFDemand.Schedulable(a, m) != EDFAssignmentSchedulable(a, norm) {
			t.Fatal("EDF analyzer disagrees with EDFAssignmentSchedulable")
		}
	}
	a.Policy = task.FixedPriority
	if !Schedulable(a, nil) {
		t.Fatal("trivial set must be FP-schedulable")
	}
	a.Policy = task.EDF
	if !Schedulable(a, nil) {
		t.Fatal("trivial set must be EDF-schedulable (no splits, U ≪ 1)")
	}
}

// CoreSchedulable probes a single core and accepts nil models.
func TestAnalyzerCoreSchedulable(t *testing.T) {
	a := twoTaskAssignment()
	for _, an := range []Analyzer{FixedPriorityRTA, EDFDemand} {
		if !an.CoreSchedulable(a, 0, nil) {
			t.Fatalf("%v: trivial core must fit", an.Policy())
		}
	}
	// Overload the core: a second task with U close to 1.
	heavy := &task.Task{ID: 3, WCET: 9 * timeq.Millisecond, Period: 10 * timeq.Millisecond, Priority: 3}
	a.Place(heavy, 0)
	for _, an := range []Analyzer{FixedPriorityRTA, EDFDemand} {
		if an.CoreSchedulable(a, 0, nil) {
			t.Fatalf("%v: overloaded core (U > 1) must not fit", an.Policy())
		}
	}
}

// An EDF assignment with windowless splits is rejected by the EDF
// analyzer regardless of load.
func TestEDFAnalyzerRequiresWindows(t *testing.T) {
	t1 := &task.Task{ID: 1, WCET: 2 * timeq.Millisecond, Period: 100 * timeq.Millisecond, Priority: 1}
	a := task.NewAssignment(2)
	a.Splits = append(a.Splits, &task.Split{
		Task: t1,
		Parts: []task.Part{
			{Core: 0, Budget: 1 * timeq.Millisecond},
			{Core: 1, Budget: 1 * timeq.Millisecond},
		},
	})
	if EDFDemand.Schedulable(a, nil) {
		t.Fatal("windowless split must fail EDF admission")
	}
}
