package analysis

import (
	"sort"

	"repro/internal/overhead"
	"repro/internal/task"
	"repro/internal/timeq"
)

// Chain is the analysis view of one split task: its entities in part
// order (body parts, then the tail).
type Chain struct {
	Split    *task.Split
	Entities []*Entity
}

// Cores is the per-core analysis view of an assignment.
type Cores struct {
	Sets   []*CoreSet
	Chains []*Chain
}

// BuildCores expands an assignment into per-core entity sets and
// split chains under the given overhead model.
func BuildCores(a *task.Assignment, m *overhead.Model) *Cores {
	perCore := make([][]*Entity, a.NumCores)
	var chains []*Chain
	for c := 0; c < a.NumCores; c++ {
		for _, t := range a.Normal[c] {
			perCore[c] = append(perCore[c], &Entity{
				Task:          t,
				C:             t.WCET,
				T:             t.Period,
				D:             t.EffectiveDeadline(),
				LocalPriority: t.Priority,
			})
		}
	}
	for _, sp := range a.Splits {
		ch := &Chain{Split: sp}
		last := len(sp.Parts) - 1
		for i, p := range sp.Parts {
			e := &Entity{
				Task:           sp.Task,
				C:              p.Budget,
				T:              sp.Task.Period,
				D:              sp.Task.EffectiveDeadline(),
				LocalPriority:  sp.LocalPriority(),
				PartIndex:      i,
				MigrIn:         i > 0,
				MigrOut:        i < last,
				RemoteSleepAdd: i == last,
			}
			perCore[p.Core] = append(perCore[p.Core], e)
			ch.Entities = append(ch.Entities, e)
		}
		chains = append(chains, ch)
	}
	// The queue-size bound N is global: "the maximal number of tasks
	// in the queue" (Section 3). Simulator and analysis share it.
	maxN := 0
	for c := 0; c < a.NumCores; c++ {
		if len(perCore[c]) > maxN {
			maxN = len(perCore[c])
		}
	}
	out := &Cores{Chains: chains}
	for c := 0; c < a.NumCores; c++ {
		out.Sets = append(out.Sets, NewCoreSet(perCore[c], maxN, m))
	}
	return out
}

// BuildCore expands only core c of a split-free assignment. Without
// chains there is no cross-core coupling, so single-core admission
// probes (the inner loop of every bin-packing partitioner) need not
// materialize the other cores. The queue bound N stays the global
// maximum, shared with the simulator.
func BuildCore(a *task.Assignment, c int, m *overhead.Model) *CoreSet {
	entities := make([]*Entity, 0, len(a.Normal[c]))
	for _, t := range a.Normal[c] {
		entities = append(entities, &Entity{
			Task:          t,
			C:             t.WCET,
			T:             t.Period,
			D:             t.EffectiveDeadline(),
			LocalPriority: t.Priority,
		})
	}
	return NewCoreSet(entities, a.MaxTasksPerCore(), m)
}

// owner maps each entity to its hosting CoreSet.
func (cs *Cores) owner() map[*Entity]*CoreSet {
	out := make(map[*Entity]*CoreSet)
	for _, s := range cs.Sets {
		for _, e := range s.Entities {
			out[e] = s
		}
	}
	return out
}

// resolveJitters runs the split-chain fixed-point iteration: a part's
// jitter is the cumulative worst-case response time of its
// predecessors, so jitters start at zero and only grow; iteration
// stops when a pass leaves every jitter unchanged. Monotonicity
// guarantees termination: each pass either grows some jitter by ≥ 1
// tick or is the last, and jitters are bounded by the deadlines.
//
// Entities whose response-time test fails are collected and their
// response time capped at their deadline so that resolution can
// continue (a failed entity makes the whole assignment unschedulable
// anyway, but partial-assignment callers — the partitioners probing a
// single core — need the other chains' jitters to settle). The cap
// never understates a *passing* entity's jitter contribution because
// a passing response time is ≤ D − J ≤ D.
func (cs *Cores) resolveJitters(m *overhead.Model) map[*Entity]bool {
	const maxPasses = 1000
	failed := make(map[*Entity]bool)
	owner := cs.owner()
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for _, ch := range cs.Chains {
			cum := timeq.Time(0)
			for _, e := range ch.Entities {
				if e.Jitter != cum {
					e.Jitter = cum
					changed = true
				}
				r, ok := owner[e].ResponseTime(e, m)
				if !ok {
					failed[e] = true
					r = e.D
				} else {
					delete(failed, e)
				}
				cum = timeq.AddSat(cum, r)
			}
		}
		if !changed || len(cs.Chains) == 0 {
			break
		}
	}
	return failed
}

// Schedulable runs the full admission test: per-core RTA with the
// split chains' release jitters resolved by fixed-point iteration.
func (cs *Cores) Schedulable(m *overhead.Model) bool {
	if len(cs.resolveJitters(m)) > 0 {
		return false
	}
	for _, s := range cs.Sets {
		if !s.CoreSchedulable(m) {
			return false
		}
	}
	return true
}

// SchedulableCore resolves chain jitters across the whole assignment
// and then tests only core c. The partitioners use this while probing
// placements: entities elsewhere may be provisional (e.g. the
// remainder of a split still being sized), so their failures must not
// veto the probe, but the jitter a settled chain imposes on core c
// must be included.
func (cs *Cores) SchedulableCore(c int, m *overhead.Model) bool {
	failed := cs.resolveJitters(m)
	set := cs.Sets[c]
	for _, e := range set.Entities {
		if failed[e] {
			return false
		}
		if _, ok := set.ResponseTime(e, m); !ok {
			return false
		}
	}
	return true
}

// AssignmentSchedulable reports whether the assignment meets all
// deadlines under fixed-priority dispatching and the overhead model.
//
// Deprecated: use FixedPriorityRTA.Schedulable, or the policy-generic
// Schedulable which dispatches on the assignment's own Policy.
func AssignmentSchedulable(a *task.Assignment, m *overhead.Model) bool {
	return FixedPriorityRTA.Schedulable(a, m)
}

// ResponseTimes returns the final per-entity response times of a
// schedulable assignment for reporting; the boolean mirrors
// AssignmentSchedulable.
func ResponseTimes(a *task.Assignment, m *overhead.Model) (map[*Entity]timeq.Time, bool) {
	cores := BuildCores(a, m)
	if !cores.Schedulable(m) {
		return nil, false
	}
	out := make(map[*Entity]timeq.Time)
	for _, s := range cores.Sets {
		for _, e := range s.Entities {
			r, ok := s.ResponseTime(e, m)
			if !ok {
				return nil, false
			}
			out[e] = r
		}
	}
	return out, true
}

// SortEntitiesByPriority orders entities from highest to lowest local
// priority (helper shared with the simulator and reports).
func SortEntitiesByPriority(es []*Entity) {
	sort.SliceStable(es, func(i, j int) bool {
		return es[i].LocalPriority < es[j].LocalPriority
	})
}
