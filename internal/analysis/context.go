// Incremental admission contexts.
//
// The Section 4 evaluation is dominated by admission probes: every
// placement a packing loop tries is one CoreSchedulable call, and the
// stateless path rebuilds all per-core entity sets and re-runs every
// fixed point from a cold start per probe, even though consecutive
// probes differ by exactly one task placement. A Context makes the
// probe sequence stateful: it is created once per (assignment,
// overhead model), tracks which cores each mutation dirties (a split
// chain dirties every core in the chain), keeps the per-core entity
// sets built incrementally, warm-starts response-time and busy-period
// fixed points from the previously converged values, memoizes EDF
// demand-bound test points, and caches per-core verdicts keyed by
// (content revision, queue bound, jitter generation).
//
// # Decision identity
//
// A Context must answer every probe exactly as the stateless
// Analyzer.CoreSchedulable / Analyzer.Schedulable would on the same
// assignment state. Two mechanisms guarantee it:
//
//   - Warm starts only ever begin a fixed-point iteration at a value
//     that is provably at or below the least fixed point being
//     sought: converged values of the committed system, which probes
//     only ever extend (entities are added, never removed, and every
//     overhead term is nondecreasing in the additions). A monotone
//     iteration started at or below its least fixed point converges
//     to exactly that fixed point.
//   - The monotonicity argument needs queue-operation costs that do
//     not shrink as the queue bound N grows. Models are checked once
//     at context creation; a pathological (inverted) model simply
//     disables warm starts and memos, falling back to cold
//     iterations everywhere.
//
// The test suite enforces identity with randomized differential runs
// (see context_diff_test.go) and with SelfCheck, which shadows every
// context decision with the stateless computation.
package analysis

import (
	"fmt"
	"sync/atomic"

	"repro/internal/overhead"
	"repro/internal/task"
)

// Context is a stateful admission session over one evolving
// assignment under one overhead model. It owns all mutations of the
// assignment for its lifetime: partitioning loops place tasks and
// install splits through it, never on the assignment directly, so the
// context's caches stay coherent with the assignment.
//
// Probes follow a two-phase protocol: TryPlace/TrySplit mutate the
// assignment provisionally and return the admission verdict for the
// probed core; exactly one probe may be pending at a time and must be
// resolved with Commit (keep the mutation) or Rollback (undo it)
// before the next call. Place and AddSplit commit a mutation without
// probing, for placements the caller already knows are admissible
// (or that the final full test is meant to judge).
type Context interface {
	// Analyzer returns the analyzer whose test this context runs.
	Analyzer() Analyzer
	// Assignment returns the assignment the context is bound to.
	Assignment() *task.Assignment
	// TryPlace provisionally places t whole on core c and reports
	// whether the core still admits under the model.
	TryPlace(t *task.Task, c int) bool
	// TrySplit provisionally installs the split and reports whether
	// core c (which must host one of its parts, or be coupled to them)
	// still admits.
	TrySplit(sp *task.Split, c int) bool
	// Commit keeps the pending provisional mutation.
	Commit()
	// Rollback undoes the pending provisional mutation.
	Rollback()
	// Place commits t onto core c without probing.
	Place(t *task.Task, c int)
	// AddSplit commits the split without probing.
	AddSplit(sp *task.Split)
	// Remove deletes the task with the given ID — whole placement or
	// split — from the assignment and the context's incremental
	// state, reporting whether it was present. Removal is the one
	// mutation that shrinks the system, so warm-started values and
	// cached verdicts that could overshoot the smaller system's least
	// fixed points are invalidated: the removed task's core always,
	// and the whole context whenever split chains or the shared queue
	// bound N are involved (see DESIGN.md §3, "removal
	// invalidation"). Decisions after a removal remain bit-identical
	// to the stateless analyzer on the shrunken assignment. No probe
	// may be pending.
	Remove(id task.ID) bool
	// Schedulable runs the full admission test on the committed
	// assignment — the finalize check — reusing every per-core verdict
	// that no mutation invalidated.
	Schedulable() bool
	// Reset rebinds the context to a new assignment (and model),
	// recycling every slab the context owns — entity pools, per-core
	// sets with their warm vectors and SoA mirrors, verdict memos,
	// probe scratch — instead of reallocating, so one long-lived
	// context serves an entire sweep of task sets. It leaves the
	// context exactly as Analyzer().NewContext(a, m) would, minus the
	// allocations; decision identity is untouched because every cached
	// value is invalidated or re-tagged. Owner-only; no probe may be
	// pending. Snapshots forked before the Reset stay valid (they are
	// self-contained); publication is disengaged until the next Fork.
	Reset(a *task.Assignment, m *overhead.Model)
	// SetSweepCache attaches a cross-context probe-verdict memo (nil
	// detaches): whole-task probe verdicts become shareable with other
	// contexts probing identically built cores — the sweep's nine
	// partitioners probing the same task set. See SweepCache.
	SetSweepCache(*SweepCache)
	// Fork returns the latest published Snapshot of the committed
	// state: an immutable view any number of goroutines may probe
	// concurrently, lock-free. Publication is engaged by the first
	// Fork — which must therefore run on the owning goroutine (or
	// before any concurrent use, as admitd does at session creation);
	// contexts that never fork pay nothing. Once engaged, every
	// committed mutation (Commit, Place, AddSplit, Remove) publishes a
	// fresh snapshot — a fork taken between commits is the same
	// pointer — at O(cores), not O(tasks), thanks to the contexts'
	// copy-on-write state discipline. After the first call, Fork is a
	// single atomic load, safe from any goroutine at any time,
	// including while the owner probes or commits.
	Fork() Snapshot
	// BeginGroup opens a group commit: committed mutations between
	// BeginGroup and EndGroup apply to the context immediately (every
	// verdict is returned exactly as ungrouped) but publish no
	// snapshots; EndGroup publishes once, with the group's coalesced
	// derivation hint. Owner-only, like every mutation; groups do not
	// nest. Readers forked during the group simply keep the pre-group
	// snapshot — the same view they would race into between any two
	// ungrouped commits.
	BeginGroup()
	// EndGroup closes the group and publishes the committed state
	// once, if any mutation committed since BeginGroup. If a held
	// probe is pending (its tentative mutation must not be captured),
	// the publish is deferred once more and settled by the probe's
	// Commit or Rollback.
	EndGroup()
	// ReadStats returns the admission counters accumulated by the
	// read path — probes served from forked snapshots — since
	// creation (or the last Flush). Safe to call concurrently.
	ReadStats() AdmissionStats
	// ReadCollector exposes the collector behind ReadStats — the sink
	// every snapshot probe folds its per-probe counters into — so an
	// observability layer can attach per-contribution observers
	// (Collector.SetFPObserver) without the context knowing about it.
	ReadCollector() *Collector
	// CommitSeq returns the number of mutations committed since
	// creation — the sequence number the next published snapshot
	// carries (Snapshot.Seq). Owner-only, like Stats.
	CommitSeq() int64
	// Stats returns the counters accumulated by this context since
	// creation (or the last Flush).
	Stats() AdmissionStats
	// SetCollector attaches a per-context stats sink: Flush then
	// folds the counters into it in addition to the process-wide
	// aggregate. A nil collector detaches.
	SetCollector(*Collector)
	// Flush folds the context's counters into the attached Collector
	// (if any) and the process-wide admission totals (see
	// StatsSnapshot), then zeroes them locally.
	Flush()
}

// AdmissionStats counts admission work. Contexts accumulate them
// locally (uncontended) and Flush folds them into process-wide totals
// so sweeps can report probe counts, cache hit rates and fixed-point
// effort without threading a collector through every layer.
type AdmissionStats struct {
	// Probes counts TryPlace + TrySplit calls; FullTests counts
	// Schedulable calls.
	Probes, FullTests int64
	// CoreTests counts single-core admission evaluations requested;
	// VerdictHits the subset served from the per-core verdict cache.
	CoreTests, VerdictHits int64
	// FPSolves counts response-time fixed points solved, FPIterations
	// the iterations they took, WarmStarts the solves that began from
	// a previously converged value.
	FPSolves, FPIterations, WarmStarts int64
}

// Add returns s + o, for folding read-path counters into a view.
func (s AdmissionStats) Add(o AdmissionStats) AdmissionStats {
	return AdmissionStats{
		Probes:       s.Probes + o.Probes,
		FullTests:    s.FullTests + o.FullTests,
		CoreTests:    s.CoreTests + o.CoreTests,
		VerdictHits:  s.VerdictHits + o.VerdictHits,
		FPSolves:     s.FPSolves + o.FPSolves,
		FPIterations: s.FPIterations + o.FPIterations,
		WarmStarts:   s.WarmStarts + o.WarmStarts,
	}
}

// Sub returns s − o, for before/after snapshots around a sweep.
func (s AdmissionStats) Sub(o AdmissionStats) AdmissionStats {
	return AdmissionStats{
		Probes:       s.Probes - o.Probes,
		FullTests:    s.FullTests - o.FullTests,
		CoreTests:    s.CoreTests - o.CoreTests,
		VerdictHits:  s.VerdictHits - o.VerdictHits,
		FPSolves:     s.FPSolves - o.FPSolves,
		FPIterations: s.FPIterations - o.FPIterations,
		WarmStarts:   s.WarmStarts - o.WarmStarts,
	}
}

// CacheHitRate is the fraction of core evaluations served from the
// verdict cache.
func (s AdmissionStats) CacheHitRate() float64 {
	if s.CoreTests == 0 {
		return 0
	}
	return float64(s.VerdictHits) / float64(s.CoreTests)
}

// MeanFPIterations is the mean fixed-point iteration count per
// response-time solve.
func (s AdmissionStats) MeanFPIterations() float64 {
	if s.FPSolves == 0 {
		return 0
	}
	return float64(s.FPIterations) / float64(s.FPSolves)
}

// WarmStartRate is the fraction of solves that began warm.
func (s AdmissionStats) WarmStartRate() float64 {
	if s.FPSolves == 0 {
		return 0
	}
	return float64(s.WarmStarts) / float64(s.FPSolves)
}

// String renders the counters compactly for CLI/bench reporting.
func (s AdmissionStats) String() string {
	return fmt.Sprintf("probes=%d full=%d core-tests=%d cache-hits=%.1f%% fp-iters/solve=%.2f warm=%.1f%%",
		s.Probes, s.FullTests, s.CoreTests, 100*s.CacheHitRate(), s.MeanFPIterations(), 100*s.WarmStartRate())
}

// Collector accumulates AdmissionStats from many contexts atomically.
// Each consumer of admission statistics owns its own Collector — a
// sweep, an admission-control session, a benchmark — and attaches it
// to the contexts whose work it wants scoped (Context.SetCollector),
// so concurrent consumers in one process no longer contaminate each
// other the way diffing the process-global totals did.
type Collector struct {
	probes, fullTests, coreTests, verdictHits, fpSolves, fpIterations, warmStarts atomic.Int64

	// fpObs, when set, observes every folded contribution that
	// carried fixed-point solves — the telemetry plane's hook for a
	// live iteration histogram, at per-Add grain (per probe on the
	// read path). Atomic pointer: SetFPObserver may race Adds.
	fpObs atomic.Pointer[func(iterations, solves int64)]
}

// SetFPObserver attaches fn to every subsequent Add that carries
// fixed-point solves (nil detaches). fn must be lock-free and
// allocation-free: it runs inline on the read path's stat fold.
func (c *Collector) SetFPObserver(fn func(iterations, solves int64)) {
	if fn == nil {
		c.fpObs.Store(nil)
		return
	}
	c.fpObs.Store(&fn)
}

// Add folds s into the collector.
func (c *Collector) Add(s AdmissionStats) {
	c.probes.Add(s.Probes)
	c.fullTests.Add(s.FullTests)
	c.coreTests.Add(s.CoreTests)
	c.verdictHits.Add(s.VerdictHits)
	c.fpSolves.Add(s.FPSolves)
	c.fpIterations.Add(s.FPIterations)
	c.warmStarts.Add(s.WarmStarts)
	if s.FPSolves > 0 {
		if f := c.fpObs.Load(); f != nil {
			(*f)(s.FPIterations, s.FPSolves)
		}
	}
}

// Snapshot returns the totals folded in so far.
func (c *Collector) Snapshot() AdmissionStats {
	return AdmissionStats{
		Probes:       c.probes.Load(),
		FullTests:    c.fullTests.Load(),
		CoreTests:    c.coreTests.Load(),
		VerdictHits:  c.verdictHits.Load(),
		FPSolves:     c.fpSolves.Load(),
		FPIterations: c.fpIterations.Load(),
		WarmStarts:   c.warmStarts.Load(),
	}
}

// Drain atomically moves the totals out of the collector, returning
// them and leaving it zeroed. Concurrent Adds are never lost — they
// land either in the returned stats or in the zeroed collector.
func (c *Collector) Drain() AdmissionStats {
	return AdmissionStats{
		Probes:       c.probes.Swap(0),
		FullTests:    c.fullTests.Swap(0),
		CoreTests:    c.coreTests.Swap(0),
		VerdictHits:  c.verdictHits.Swap(0),
		FPSolves:     c.fpSolves.Swap(0),
		FPIterations: c.fpIterations.Swap(0),
		WarmStarts:   c.warmStarts.Swap(0),
	}
}

// totals is the process-wide aggregate, updated by every Flush
// regardless of attached collectors, so StatsSnapshot remains a
// whole-process view.
var totals Collector

// StatsSnapshot returns the process-wide admission totals flushed so
// far — the aggregate over every context in the process. Scoped
// accounting (one sweep, one session) should attach a Collector
// instead; diffing two snapshots only isolates a workload when
// nothing else in the process flushes concurrently.
func StatsSnapshot() AdmissionStats { return totals.Snapshot() }

// modelMonotone reports whether every effective queue-operation cost
// (remote penalty applied) is nondecreasing in the queue bound N.
// This is the property the warm-start and memoization machinery
// relies on: entity additions then only ever grow every overhead
// term, so previously converged fixed points are valid lower bounds.
//
// Local and remote anchor costs are piecewise linear in log2(N), so
// anchor order (N64 ≥ N4) makes each nondecreasing. A scaling remote
// penalty (p ∉ {0, 1}) amplifies the remote−local gap, whose
// *rounded* per-N values are not monotone even when the anchor gaps
// are (each interpolant rounds to integer nanoseconds independently,
// so the gap can dip by a tick as N grows) — any scaled penalty is
// therefore treated as non-monotone outright. The remote-penalty
// ablations (p = 2, 4, 8) thus run cold, which is correct, just
// slower. The shipped models at p = 1 (Zero, PaperModel, and
// anything measured on a real log-time queue) are monotone; any
// model failing the check disables the fast paths but keeps
// decisions bit-identical.
func modelMonotone(m *overhead.Model) bool {
	p := m.RemotePenalty
	if p != 0 && p != 1 {
		return false
	}
	for op := range m.Queues.LocalN4 {
		if m.Queues.LocalN64[op] < m.Queues.LocalN4[op] {
			return false
		}
		if m.Queues.RemoteN64[op] < m.Queues.RemoteN4[op] {
			return false
		}
	}
	return true
}

// ctxBase carries the state and plumbing shared by both concrete
// contexts; its fields and methods are promoted by embedding.
type ctxBase struct {
	an    Analyzer
	a     *task.Assignment
	m     *overhead.Model
	mono  bool
	stats AdmissionStats
	coll  *Collector // optional per-context sink (SetCollector)

	// readStats accumulates the read path's counters: probes served
	// from forked snapshots fold their work here atomically. Flush
	// drains it alongside the writer-side stats.
	readStats Collector

	// publishing is engaged by the first Fork: until then committed
	// mutations skip snapshot publication entirely, so fork-free
	// consumers (the partitioners' packing loops, the sweep pipeline)
	// pay nothing for the read path.
	publishing atomic.Bool

	// Group-commit state (owner-only): between BeginGroup and
	// EndGroup, pubHold defers snapshot publication; pubAny records
	// whether any mutation committed, and groupHint/groupFits carry
	// the coalesced derivation hint EndGroup publishes with. pubOwed
	// marks a publish EndGroup had to defer past a held probe (the
	// tentative mutation must not be captured); the probe's Commit or
	// Rollback settles the debt.
	pubHold   bool
	pubAny    bool
	pubOwed   bool
	groupHint pubHint
	groupFits bool

	maxN      int   // committed MaxTasksPerCore
	commitSeq int64 // bumped on every committed mutation
}

func (b *ctxBase) Analyzer() Analyzer           { return b.an }
func (b *ctxBase) Assignment() *task.Assignment { return b.a }
func (b *ctxBase) Stats() AdmissionStats        { return b.stats }
func (b *ctxBase) ReadStats() AdmissionStats    { return b.readStats.Snapshot() }
func (b *ctxBase) ReadCollector() *Collector    { return &b.readStats }
func (b *ctxBase) CommitSeq() int64             { return b.commitSeq }
func (b *ctxBase) SetCollector(c *Collector)    { b.coll = c }

func (b *ctxBase) Flush() {
	s := b.stats.Add(b.readStats.Drain())
	totals.Add(s)
	if b.coll != nil {
		b.coll.Add(s)
	}
	b.stats = AdmissionStats{}
}

// checkNoPending panics when a probe is pending: contexts allow
// exactly one provisional mutation at a time.
func (b *ctxBase) checkNoPending(kind int, op string) {
	if kind != pendNone {
		panic(fmt.Sprintf("analysis: %s with an unresolved probe pending (Commit or Rollback first)", op))
	}
}

// BeginGroup opens a group commit (see the interface contract). The
// hold is pure owner-side bookkeeping, so it lives here; the matching
// EndGroup is on the concrete contexts, which own publish.
func (b *ctxBase) BeginGroup() {
	if b.pubHold {
		panic("analysis: BeginGroup inside an open group (groups do not nest)")
	}
	b.pubHold = true
	// An unsettled debt from a previous group folds into this one: its
	// hint is already in groupHint/groupFits, so seeding pubAny makes
	// new mutations coalesce onto it and EndGroup publish both.
	b.pubAny = b.pubOwed
	b.pubOwed = false
}

// coalesce folds one more committed mutation's hint into the group
// hint. Two shapes chain (see commitPub); anything else degrades to
// pubUnknown, which is always sound.
func (b *ctxBase) coalesce(hint pubHint, fits bool) {
	switch {
	case b.groupHint == pubAdmitted && b.groupFits && hint == pubAdmitted && fits:
		// still all-admitted, all-fitting
	case b.groupHint == pubRemoved && hint == pubRemoved:
		// still all-removals
	default:
		b.groupHint, b.groupFits = pubUnknown, false
	}
}

// commitPub is called by the concrete contexts after every committed
// mutation with that mutation's derivation hint. It reports whether a
// snapshot should be published right now, and with what hint: outside
// a group that is every committed mutation once publication is
// engaged; inside a group the hint is coalesced and publication
// deferred to EndGroup.
func (b *ctxBase) commitPub(hint pubHint, fits bool) (pubHint, bool, bool) {
	if !b.publishing.Load() {
		return pubUnknown, false, false
	}
	if !b.pubHold {
		if b.pubOwed {
			// Settle the deferred-past-a-probe publish along with this
			// mutation: one publish covering both, hint coalesced.
			b.pubOwed = false
			b.coalesce(hint, fits)
			return b.groupHint, b.groupFits, true
		}
		return hint, fits, true
	}
	// Coalesce: the one publish at EndGroup must derive only what a
	// chain of per-mutation derivations could. Two shapes chain:
	// admitted whole-task placements that all fit (the committed
	// queue bound is nondecreasing across them, so deriveSched's
	// end-vs-start maxN comparison subsumes every per-step one), and
	// pure removals (each preserves schedulability under a monotone
	// model). Any mix, a failed fit, or a hint deriveSched ignores
	// falls back to pubUnknown — always sound: the full-test verdict
	// is simply recomputed lazily by the first reader that asks.
	if !b.pubAny {
		b.pubAny = true
		b.groupHint, b.groupFits = hint, fits
		return pubUnknown, false, false
	}
	b.coalesce(hint, fits)
	return pubUnknown, false, false
}

// endGroup closes the hold and reports whether (and with what hint)
// the caller should publish now. pendPending says a held probe's
// tentative mutation is in the assignment: publishing would capture
// uncommitted state, so the publish becomes a debt (pubOwed) that the
// probe's Commit (via commitPub) or Rollback (rollbackPub) settles.
func (b *ctxBase) endGroup(pendPending bool) (pubHint, bool, bool) {
	if !b.pubHold {
		panic("analysis: EndGroup without BeginGroup")
	}
	b.pubHold = false
	pub := b.pubAny && b.publishing.Load()
	b.pubAny = false
	if pub && pendPending {
		b.pubOwed = true
		return pubUnknown, false, false
	}
	return b.groupHint, b.groupFits, pub
}

// rollbackPub is called by the concrete contexts after a Rollback
// restored committed state: a rollback publishes nothing of its own,
// but it must settle a deferred-past-this-probe publish debt.
func (b *ctxBase) rollbackPub() (pubHint, bool, bool) {
	if b.pubOwed && !b.pubHold && b.publishing.Load() {
		b.pubOwed = false
		return b.groupHint, b.groupFits, true
	}
	return pubUnknown, false, false
}

// SelfCheck, when true, wraps every new Context so each decision is
// shadowed by the stateless Analyzer computation on the same
// assignment state; a divergence panics with both verdicts. It exists
// for the differential test suite and costs a full stateless
// evaluation per probe — never enable it outside tests.
var SelfCheck bool

// wrapChecked applies the SelfCheck shadow when enabled; m is the
// normalized model the context was bound to.
func wrapChecked(ctx Context, m *overhead.Model) Context {
	if SelfCheck {
		return &checkedContext{ctx: ctx, m: m}
	}
	return ctx
}

// checkedContext shadows a real context with the stateless path.
type checkedContext struct {
	ctx Context
	m   *overhead.Model
}

func (cc *checkedContext) Analyzer() Analyzer           { return cc.ctx.Analyzer() }
func (cc *checkedContext) Assignment() *task.Assignment { return cc.ctx.Assignment() }
func (cc *checkedContext) ReadStats() AdmissionStats    { return cc.ctx.ReadStats() }
func (cc *checkedContext) ReadCollector() *Collector    { return cc.ctx.ReadCollector() }
func (cc *checkedContext) CommitSeq() int64             { return cc.ctx.CommitSeq() }

// Fork wraps the inner snapshot so forked decisions are shadowed by
// the stateless analyzer too.
func (cc *checkedContext) Fork() Snapshot {
	return &checkedSnapshot{Snapshot: cc.ctx.Fork(), m: cc.m}
}
func (cc *checkedContext) BeginGroup()               { cc.ctx.BeginGroup() }
func (cc *checkedContext) EndGroup()                 { cc.ctx.EndGroup() }
func (cc *checkedContext) Place(t *task.Task, c int) { cc.ctx.Place(t, c) }
func (cc *checkedContext) AddSplit(sp *task.Split)   { cc.ctx.AddSplit(sp) }
func (cc *checkedContext) Commit()                   { cc.ctx.Commit() }
func (cc *checkedContext) Rollback()                 { cc.ctx.Rollback() }
func (cc *checkedContext) Remove(id task.ID) bool    { return cc.ctx.Remove(id) }
func (cc *checkedContext) Stats() AdmissionStats     { return cc.ctx.Stats() }
func (cc *checkedContext) SetCollector(c *Collector) { cc.ctx.SetCollector(c) }
func (cc *checkedContext) Flush()                    { cc.ctx.Flush() }

func (cc *checkedContext) Reset(a *task.Assignment, m *overhead.Model) {
	cc.ctx.Reset(a, m)
	cc.m = overhead.Normalize(m) // mirror the concrete Reset's normalization
}
func (cc *checkedContext) SetSweepCache(sc *SweepCache) { cc.ctx.SetSweepCache(sc) }

func (cc *checkedContext) TryPlace(t *task.Task, c int) bool {
	got := cc.ctx.TryPlace(t, c)
	// The inner context has applied the provisional mutation, so the
	// stateless probe sees the identical assignment state.
	want := cc.ctx.Analyzer().CoreSchedulable(cc.ctx.Assignment(), c, cc.model())
	if got != want {
		panic(fmt.Sprintf("analysis: context TryPlace(%v, core %d) = %v, stateless CoreSchedulable = %v", t, c, got, want))
	}
	return got
}

func (cc *checkedContext) TrySplit(sp *task.Split, c int) bool {
	got := cc.ctx.TrySplit(sp, c)
	want := cc.ctx.Analyzer().CoreSchedulable(cc.ctx.Assignment(), c, cc.model())
	if got != want {
		panic(fmt.Sprintf("analysis: context TrySplit(%v, core %d) = %v, stateless CoreSchedulable = %v", sp.Task, c, got, want))
	}
	return got
}

func (cc *checkedContext) Schedulable() bool {
	got := cc.ctx.Schedulable()
	want := cc.ctx.Analyzer().Schedulable(cc.ctx.Assignment(), cc.model())
	if got != want {
		panic(fmt.Sprintf("analysis: context Schedulable = %v, stateless Schedulable = %v", got, want))
	}
	return got
}

// model returns the overhead model the shadowed context is bound to.
func (cc *checkedContext) model() *overhead.Model { return cc.m }
