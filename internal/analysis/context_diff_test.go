package analysis

import (
	"math/rand"
	"testing"

	"repro/internal/overhead"
	"repro/internal/task"
	"repro/internal/taskgen"
	"repro/internal/timeq"
)

// The differential fuzz suite: for randomized task sets and
// randomized placement/split/commit/rollback sequences, every context
// decision must match the stateless Schedulable / CoreSchedulable
// path exactly, for both analyzers and both the zero and the paper
// overhead model. SelfCheck wraps each context so the comparison runs
// on the identical assignment state at the moment of each probe; any
// divergence panics inside the wrapped call.

// withSelfCheck runs f with the stateless shadow enabled.
func withSelfCheck(t *testing.T, f func()) {
	t.Helper()
	old := SelfCheck
	SelfCheck = true
	defer func() { SelfCheck = old }()
	f()
}

// randomSet draws a small random task set with RM priorities.
func randomSet(rng *rand.Rand, n int, util float64) *task.Set {
	s := taskgen.New(taskgen.Config{
		N:                n,
		TotalUtilization: util,
		Seed:             rng.Int63(),
	}).Next()
	return s
}

// randomSplit carves t into 2..maxParts parts over distinct random
// cores; for EDF it attaches equal deadline windows.
func randomSplit(rng *rand.Rand, t *task.Task, cores int, edf bool) *task.Split {
	k := 2 + rng.Intn(2)
	if k > cores {
		k = cores
	}
	if k < 2 {
		return nil
	}
	perm := rng.Perm(cores)[:k]
	budgets := make([]timeq.Time, k)
	remaining := t.WCET
	for i := 0; i < k-1; i++ {
		share := remaining / timeq.Time(k-i+1)
		if share < timeq.Microsecond {
			share = timeq.Microsecond
		}
		if share >= remaining {
			return nil
		}
		budgets[i] = share
		remaining -= share
	}
	budgets[k-1] = remaining
	if remaining <= 0 {
		return nil
	}
	sp := &task.Split{Task: t}
	for i := 0; i < k; i++ {
		sp.Parts = append(sp.Parts, task.Part{Core: perm[i], Budget: budgets[i]})
	}
	if edf {
		d := t.EffectiveDeadline()
		w := d / timeq.Time(k)
		for i := 0; i < k; i++ {
			if w < budgets[i] {
				return nil // window must cover the budget
			}
			sp.Windows = append(sp.Windows, w)
		}
	}
	return sp
}

// driveRandomOps replays a random probe/commit/rollback sequence
// against a self-checked context. Returns the number of probes run.
func driveRandomOps(rng *rand.Rand, an Analyzer, m *overhead.Model, cores int, set *task.Set) int {
	a := task.NewAssignment(cores)
	ctx := an.NewContext(a, m)
	probes := 0
	for _, t := range set.SortedByUtilizationDesc() {
		switch op := rng.Intn(10); {
		case op < 6: // probe a few cores, maybe keep one
			placed := false
			for c := 0; c < cores; c++ {
				probes++
				fits := ctx.TryPlace(t, c)
				if fits && !placed && rng.Intn(2) == 0 {
					ctx.Commit()
					placed = true
					break
				}
				ctx.Rollback()
			}
			if !placed && rng.Intn(2) == 0 {
				// Unprobed placement of the last probed core.
				ctx.Place(t, rng.Intn(cores))
			}
		case op < 8: // try a split
			sp := randomSplit(rng, t, cores, an.Policy() == task.EDF)
			if sp == nil {
				continue
			}
			c := sp.Parts[rng.Intn(len(sp.Parts))].Core
			probes++
			fits := ctx.TrySplit(sp, c)
			if fits && rng.Intn(2) == 0 {
				ctx.Commit()
			} else {
				ctx.Rollback()
			}
		case op < 9: // unprobed split install
			sp := randomSplit(rng, t, cores, an.Policy() == task.EDF)
			if sp == nil {
				continue
			}
			ctx.AddSplit(sp)
		default: // unprobed placement
			ctx.Place(t, rng.Intn(cores))
		}
		if rng.Intn(3) == 0 {
			ctx.Schedulable()
		}
	}
	ctx.Schedulable()
	ctx.Flush()
	return probes
}

// TestContextMatchesStatelessFuzz drives randomized probe sequences
// for both analyzers under both overhead models; the SelfCheck shadow
// panics on the first divergence from the stateless path.
func TestContextMatchesStatelessFuzz(t *testing.T) {
	withSelfCheck(t, func() {
		rng := rand.New(rand.NewSource(20260729))
		// Zero and PaperModel are monotone (warm paths); the scaled
		// remote penalty shrinks the remote-local gap with N, and the
		// inverted model shrinks a local anchor — both must force the
		// cold fallback and still match the stateless path exactly.
		inverted := overhead.PaperModel()
		inverted.Queues.LocalN64[overhead.ReadyAdd] = inverted.Queues.LocalN4[overhead.ReadyAdd] / 2
		models := []*overhead.Model{
			overhead.Zero(),
			overhead.PaperModel(),
			overhead.PaperModel().WithRemotePenalty(8),
			inverted,
		}
		probes := 0
		for round := 0; round < 30; round++ {
			cores := 2 + rng.Intn(3)
			n := 4 + rng.Intn(8)
			util := 0.5*float64(cores) + rng.Float64()*0.5*float64(cores)
			set := randomSet(rng, n, util)
			for _, an := range []Analyzer{FixedPriorityRTA, EDFDemand} {
				for _, m := range models {
					probes += driveRandomOps(rng, an, m, cores, set.Clone())
				}
			}
		}
		if probes < 500 {
			t.Fatalf("fuzz drove only %d probes; sequences degenerate", probes)
		}
	})
}

// TestModelMonotoneGate pins the warm-start gate: the shipped models
// at penalty 1 are monotone, scaled penalties over PaperModel's
// shrinking remote-local gaps are not, and neither are inverted
// anchor tables.
func TestModelMonotoneGate(t *testing.T) {
	if !modelMonotone(overhead.Zero()) || !modelMonotone(overhead.PaperModel()) {
		t.Fatal("shipped models must be monotone")
	}
	for _, p := range []float64{2, 4, 8} {
		if modelMonotone(overhead.PaperModel().WithRemotePenalty(p)) {
			t.Fatalf("penalty %v scales PaperModel's shrinking remote gaps; must not be monotone", p)
		}
	}
	inv := overhead.PaperModel()
	inv.Queues.LocalN64[overhead.SleepAdd] = 1
	if modelMonotone(inv) {
		t.Fatal("inverted local anchors must not be monotone")
	}
}

// TestContextWarmRepeatedFullTests checks that repeated Schedulable
// calls (served increasingly from the verdict cache) keep answering
// like the stateless path while mutations interleave.
func TestContextWarmRepeatedFullTests(t *testing.T) {
	withSelfCheck(t, func() {
		rng := rand.New(rand.NewSource(7))
		set := randomSet(rng, 10, 3.0)
		for _, an := range []Analyzer{FixedPriorityRTA, EDFDemand} {
			a := task.NewAssignment(4)
			ctx := an.NewContext(a, overhead.PaperModel())
			for _, tk := range set.Clone().SortedByUtilizationDesc() {
				for c := 0; c < 4; c++ {
					if ctx.TryPlace(tk, c) {
						ctx.Commit()
						break
					}
					ctx.Rollback()
				}
				ctx.Schedulable()
				ctx.Schedulable() // immediate repeat must hit the cache
			}
		}
	})
}

// TestContextStatsAccumulate sanity-checks the stats plumbing: totals
// grow by what the context flushed.
func TestContextStatsAccumulate(t *testing.T) {
	before := StatsSnapshot()
	rng := rand.New(rand.NewSource(99))
	set := randomSet(rng, 8, 2.5)
	a := task.NewAssignment(4)
	ctx := FixedPriorityRTA.NewContext(a, overhead.PaperModel())
	for _, tk := range set.SortedByUtilizationDesc() {
		for c := 0; c < 4; c++ {
			if ctx.TryPlace(tk, c) {
				ctx.Commit()
				break
			}
			ctx.Rollback()
		}
	}
	ctx.Schedulable()
	local := ctx.Stats()
	if local.Probes == 0 || local.FPSolves == 0 {
		t.Fatalf("context recorded no work: %+v", local)
	}
	ctx.Flush()
	if got := ctx.Stats(); got != (AdmissionStats{}) {
		t.Fatalf("Flush must zero local stats, got %+v", got)
	}
	delta := StatsSnapshot().Sub(before)
	if delta.Probes < local.Probes {
		t.Fatalf("flushed totals %+v missing local %+v", delta, local)
	}
}
