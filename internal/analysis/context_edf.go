package analysis

import (
	"sync/atomic"

	"repro/internal/overhead"
	"repro/internal/task"
	"repro/internal/timeq"
)

// edfContext is the incremental EDF admission context. Deadline
// windows decouple the cores, so there is no cross-core fixed point:
// each core keeps its entity list in the canonical build order (the
// processor-demand test accumulates a floating-point utilization sum,
// so the order must match the stateless build exactly), a memo of the
// demand-bound test points already enumerated, a warm busy-period
// start, and a cached verdict keyed by (content revision, queue
// bound). A probe dirties only the probed core; a split install
// dirties every core hosting one of its parts.
type edfContext struct {
	ctxBase

	cores []edfCoreState

	lastProbe []edfProbeRecord
	pend      edfPending

	// pub holds the latest published snapshot (the lock-free read
	// path), swapped atomically on every committed mutation. EDF
	// per-core records are O(1) slice headers and memo pointers, so a
	// publish is O(cores) with no dirty tracking.
	pub atomic.Pointer[edfSnapshot]

	// scratch
	probeBuf [][]*Entity
	probeCS  []CoreSet

	// Probe scratch: the tentative whole-task entity lives in a reused
	// slot (Commit clones it), split probes draw pooled entities into
	// reusable slices.
	scratchEnt Entity
	placeEnts  [1]*Entity
	placeCores [1]int
	splitEnts  []*Entity
	splitCores []int

	// Slab recycling (Reset) and cross-context verdict sharing; see the
	// fpContext counterparts. EDF deadline windows decouple the cores,
	// so sharing stays on even with committed split parts — only
	// Remove disables it until the next Reset.
	entFree    []*Entity
	sweep      *SweepCache
	sweepNodes []*sweepNode
	sweepRevs  []int64 // core rev the cached node reflects; -1 = stale
	sweepOff   bool
}

// edfCoreState is one core's committed entity list (normals in
// Normal[c] order, then split parts in a.Splits order — the canonical
// stateless build order) plus its caches.
type edfCoreState struct {
	ents     []*Entity
	nNormals int
	cacheMax timeq.Time
	rev      int64
	verdict  fpVerdict
	memo     *edfDemandMemo
}

// edfProbeRecord remembers the latest rolled-back probe so an
// unprobed Place of the identical task can promote its verdict and
// memo (the heuristics' probe-all-then-place pattern). tent is the
// probe's tentative entity: the memo's covered set references it, and
// promotion must swap it for the newly adopted entity.
type edfProbeRecord struct {
	seq  int64
	key  fpWarmKey
	ok   bool
	memo *edfDemandMemo
	tent *Entity
}

// edfPending is the one in-flight provisional mutation.
type edfPending struct {
	kind      int
	probeCore int
	fits      bool
	probeN    int
	addEnts   []*Entity
	addCores  []int
	memo      *edfDemandMemo
}

func newEDFContext(an Analyzer, a *task.Assignment, m *overhead.Model) *edfContext {
	nc := a.NumCores
	x := &edfContext{
		ctxBase:   ctxBase{an: an, a: a, m: m, mono: modelMonotone(m)},
		cores:     make([]edfCoreState, nc),
		lastProbe: make([]edfProbeRecord, nc),
		probeBuf:  make([][]*Entity, nc),
		probeCS:   make([]CoreSet, nc),
	}
	for c := 0; c < nc; c++ {
		for _, t := range a.Normal[c] {
			x.adoptNormal(newEDFEntity(t), c)
		}
	}
	for _, sp := range a.Splits {
		ents, cores := edfSplitEntities(sp)
		for i, e := range ents {
			x.adoptPart(e, cores[i])
		}
	}
	return x
}

// Fork returns the latest published snapshot; the first call engages
// publication and must run on the owning goroutine (see the
// interface contract). Fork-free contexts never publish.
func (x *edfContext) Fork() Snapshot {
	if !x.publishing.Load() {
		x.publish(pubUnknown, false)
		x.publishing.Store(true)
	}
	return x.pub.Load()
}

// publish builds and atomically installs a fresh snapshot of the
// committed state. Runs on the owner after every committed mutation.
// EDF entities are immutable once adopted (no jitters, no warm slots
// — acceleration lives in the per-core memos, which are never
// mutated after publication), so every published record shares the
// committed slices and memo pointers directly.
func (x *edfContext) publish(hint pubHint, fits bool) {
	nc := len(x.cores)
	s := &edfSnapshot{cores: make([]edfSnapCore, nc)}
	s.captureView(&x.ctxBase, x.commitSeq)
	s.maxN = x.maxN
	prev := x.pub.Load()
	for c := 0; c < nc; c++ {
		st := &x.cores[c]
		var memo *edfDemandMemo
		if x.mono {
			memo = st.memo
		}
		rec := edfSnapCore{ents: st.ents, nNormals: st.nNormals, cacheMax: st.cacheMax, memo: memo, rev: st.rev}
		// Carry the probe memo over while the core's content and the
		// global queue bound are unchanged; fresh otherwise.
		if prev != nil && prev.cores[c].rev == st.rev && prev.maxN == s.maxN && prev.cores[c].probes != nil {
			rec.probes = prev.cores[c].probes
		} else {
			rec.probes = &probeCache{}
		}
		s.cores[c] = rec
	}
	if prev != nil {
		s.deriveSched(&prev.snapView, hint, fits, false)
	} else {
		s.deriveSched(nil, hint, fits, false)
	}
	x.pub.Store(s)
}

// newEDFEntity mirrors the whole-task entity of edfEntities.
func newEDFEntity(t *task.Task) *Entity {
	return newEDFEntityInto(new(Entity), t)
}

// newEDFEntityInto fills e in place (scratch reuse on the probe path).
func newEDFEntityInto(e *Entity, t *task.Task) *Entity {
	*e = Entity{Task: t, C: t.WCET, T: t.Period, D: t.EffectiveDeadline()}
	return e
}

// edfSplitEntities mirrors the split-part entities of edfEntities.
func edfSplitEntities(sp *task.Split) ([]*Entity, []int) {
	last := len(sp.Parts) - 1
	var ents []*Entity
	var cores []int
	for i, p := range sp.Parts {
		d := sp.Task.EffectiveDeadline()
		if sp.HasWindows() {
			d = sp.Windows[i]
		}
		ents = append(ents, &Entity{
			Task:           sp.Task,
			C:              p.Budget,
			T:              sp.Task.Period,
			D:              d,
			PartIndex:      i,
			MigrIn:         i > 0,
			MigrOut:        i < last,
			RemoteSleepAdd: i == last,
		})
		cores = append(cores, p.Core)
	}
	return ents, cores
}

// adoptNormal commits a whole-task entity onto core c, before the
// split parts (canonical order). Once publication is engaged the
// insert is copy-on-write — the committed slice may be shared with
// published snapshots, so it is never shifted in place. Before the
// first Fork no snapshot exists, so the fork-free sweep hot loop
// inserts in place and reuses slice capacity.
func (x *edfContext) adoptNormal(e *Entity, c int) {
	s := &x.cores[c]
	if x.publishing.Load() {
		out := make([]*Entity, len(s.ents)+1)
		copy(out, s.ents[:s.nNormals])
		out[s.nNormals] = e
		copy(out[s.nNormals+1:], s.ents[s.nNormals:])
		s.ents = out
	} else {
		s.ents = append(s.ents, nil)
		copy(s.ents[s.nNormals+1:], s.ents[s.nNormals:])
		s.ents[s.nNormals] = e
	}
	s.nNormals++
	x.adopted(e, s)
}

// adoptPart commits a split-part entity onto core c, after everything
// else (canonical order: the split is the newest in a.Splits).
func (x *edfContext) adoptPart(e *Entity, c int) {
	s := &x.cores[c]
	s.ents = append(s.ents, e)
	x.adopted(e, s)
}

// newEntity returns an entity from the recycle pool; callers
// overwrite every field.
func (x *edfContext) newEntity() *Entity {
	if n := len(x.entFree); n > 0 {
		e := x.entFree[n-1]
		x.entFree = x.entFree[:n-1]
		return e
	}
	return new(Entity)
}

// splitEntitiesInto is edfSplitEntities drawing pooled entities into
// the context's reusable probe slices.
func (x *edfContext) splitEntitiesInto(sp *task.Split) ([]*Entity, []int) {
	ents := x.splitEnts[:0]
	cores := x.splitCores[:0]
	last := len(sp.Parts) - 1
	for i, p := range sp.Parts {
		d := sp.Task.EffectiveDeadline()
		if sp.HasWindows() {
			d = sp.Windows[i]
		}
		e := x.newEntity()
		*e = Entity{
			Task:           sp.Task,
			C:              p.Budget,
			T:              sp.Task.Period,
			D:              d,
			PartIndex:      i,
			MigrIn:         i > 0,
			MigrOut:        i < last,
			RemoteSleepAdd: i == last,
		}
		ents = append(ents, e)
		cores = append(cores, p.Core)
	}
	x.splitEnts, x.splitCores = ents, cores
	return ents, cores
}

// sweepNode returns core c's interned committed state, or nil when
// sharing is unavailable. The fold runs lazily, once per committed
// revision. EDF cores fold in the canonical slice order — the
// processor-demand test's floating-point utilization sum is
// order-sensitive, and every context builds the same
// normals-then-parts order, so identical contents reach the same
// node. Split parts carry nonzero migration flags while normals carry
// none, so the fold also pins the position a tentative normal would
// be inserted at (after the leading zero-flag run), making probe keys
// unambiguous.
func (x *edfContext) sweepNode(c int) *sweepNode {
	if x.sweep == nil || x.sweepOff {
		return nil
	}
	s := &x.cores[c]
	if x.sweepRevs[c] != s.rev {
		x.sweepNodes[c] = x.sweep.fold(s.ents)
		x.sweepRevs[c] = s.rev
	}
	return x.sweepNodes[c]
}

// sweepDisable turns off cross-context sharing until the next Reset.
func (x *edfContext) sweepDisable() {
	if x.sweep == nil || x.sweepOff {
		return
	}
	x.sweepOff = true
	for i := range x.sweepNodes {
		x.sweepNodes[i] = nil
	}
}

// sweepInvalidate drops every cached fold; the next sweepNode call
// per core refolds against the (possibly rebuilt) cache tries.
func (x *edfContext) sweepInvalidate() {
	for i := range x.sweepRevs {
		x.sweepRevs[i] = -1
	}
}

func (x *edfContext) adopted(e *Entity, s *edfCoreState) {
	if d := x.m.Cache.MaxDelay(e.Task.WSS); d > s.cacheMax {
		s.cacheMax = d
	}
	if n := len(s.ents); n > x.maxN {
		x.maxN = n
	}
	s.rev++
	s.memo = nil
	s.verdict = fpVerdict{}
}

func (x *edfContext) ensureNoPending(op string) { x.checkNoPending(x.pend.kind, op) }

// probeN returns the queue bound of the probe state.
func (x *edfContext) probeN(addCores []int) int {
	n := x.maxN
	for c := range x.cores {
		grow := 0
		for _, d := range addCores {
			if d == c {
				grow++
			}
		}
		if k := len(x.cores[c].ents) + grow; k > n {
			n = k
		}
	}
	return n
}

// evalProbe runs the demand test on core c with the pending tentative
// entities inserted canonically, reusing the committed memo.
func (x *edfContext) evalProbe(c int) bool {
	s := &x.cores[c]
	buf := x.probeBuf[c][:0]
	cm := s.cacheMax
	if x.pend.kind == pendPlace {
		// The tentative normal sits after the committed normals,
		// before any split parts (a.Normal[c] append order).
		buf = append(buf, s.ents[:s.nNormals]...)
		buf = append(buf, x.pend.addEnts[0])
		buf = append(buf, s.ents[s.nNormals:]...)
		if d := x.m.Cache.MaxDelay(x.pend.addEnts[0].Task.WSS); d > cm {
			cm = d
		}
	} else {
		// Tentative split parts go last (the split is newest in
		// a.Splits).
		buf = append(buf, s.ents...)
		for i, e := range x.pend.addEnts {
			if x.pend.addCores[i] != c {
				continue
			}
			buf = append(buf, e)
			if d := x.m.Cache.MaxDelay(e.Task.WSS); d > cm {
				cm = d
			}
		}
	}
	x.probeBuf[c] = buf
	cs := &x.probeCS[c]
	cs.Entities = buf
	cs.N = x.pend.probeN
	cs.CacheMax = cm
	cs.invalidateCosts()
	var memo *edfDemandMemo
	if x.mono {
		memo = s.memo
	}
	x.stats.CoreTests++
	ok, out := cs.edfSchedulable(x.m, memo, x.mono)
	x.pend.memo = out
	return ok
}

func (x *edfContext) TryPlace(t *task.Task, c int) bool {
	x.ensureNoPending("TryPlace")
	x.stats.Probes++
	x.a.Place(t, c)
	// The tentative entity lives in a reused scratch slot; Commit
	// clones it onto the heap before adopting it.
	e := newEDFEntityInto(&x.scratchEnt, t)
	x.placeEnts[0], x.placeCores[0] = e, c
	x.pend = edfPending{kind: pendPlace, probeCore: c, addEnts: x.placeEnts[:], addCores: x.placeCores[:]}
	x.pend.probeN = x.probeN(x.pend.addCores)
	// The per-core demand verdict is a pure function of (core state,
	// probed shape, queue bound): the shared sweep memo can answer
	// before any demand-bound enumeration runs.
	node := x.sweepNode(c)
	var shape sweepShape
	if node != nil {
		shape = sweepShapeOf(e)
		if v, hit := x.sweep.lookup(node, x.pend.probeN, shape); hit {
			x.stats.CoreTests++
			x.stats.VerdictHits++
			x.pend.fits = v
			return v
		}
	}
	x.pend.fits = x.evalProbe(c)
	if node != nil {
		x.sweep.store(node, x.pend.probeN, shape, x.pend.fits)
	}
	return x.pend.fits
}

func (x *edfContext) TrySplit(sp *task.Split, c int) bool {
	x.ensureNoPending("TrySplit")
	x.stats.Probes++
	x.a.Splits = append(x.a.Splits, sp)
	ents, cores := x.splitEntitiesInto(sp)
	x.pend = edfPending{kind: pendSplit, probeCore: c, addEnts: ents, addCores: cores}
	x.pend.probeN = x.probeN(cores)
	x.pend.fits = x.evalProbe(c)
	return x.pend.fits
}

func (x *edfContext) Commit() {
	if x.pend.kind == pendNone {
		panic("analysis: Commit with no pending probe")
	}
	pc := x.pend.probeCore
	if x.pend.kind == pendPlace {
		// The tentative entity is the reused scratch slot: clone it
		// onto a pooled entity, and move the probe memo's covered
		// identity along with it (the memo was built by this probe and
		// never published, so the in-place swap is safe — mirrors the
		// promotion in Place).
		e := x.newEntity()
		*e = *x.pend.addEnts[0]
		if x.pend.memo != nil {
			delete(x.pend.memo.covered, x.pend.addEnts[0])
			x.pend.memo.covered[e] = true
		}
		x.adoptNormal(e, pc)
	} else {
		for i, e := range x.pend.addEnts {
			x.adoptPart(e, x.pend.addCores[i])
		}
	}
	x.commitSeq++
	s := &x.cores[pc]
	s.verdict = fpVerdict{valid: true, ok: x.pend.fits, rev: s.rev, n: x.maxN}
	if x.mono && x.pend.memo != nil {
		// The probe's entity set is now the committed one.
		s.memo = x.pend.memo
	}
	hint, fits := pubUnknown, false
	if x.pend.kind == pendPlace {
		hint, fits = pubAdmitted, x.pend.fits
	}
	x.pend = edfPending{}
	if h, f, now := x.commitPub(hint, fits); now {
		x.publish(h, f)
	}
}

func (x *edfContext) Rollback() {
	switch x.pend.kind {
	case pendNone:
		panic("analysis: Rollback with no pending probe")
	case pendPlace:
		c := x.pend.probeCore
		x.a.Normal[c] = x.a.Normal[c][:len(x.a.Normal[c])-1]
		x.lastProbe[c] = edfProbeRecord{
			seq:  x.commitSeq,
			key:  fpKey(x.pend.addEnts[0]),
			ok:   x.pend.fits,
			memo: x.pend.memo,
			tent: x.pend.addEnts[0],
		}
	case pendSplit:
		x.a.Splits = x.a.Splits[:len(x.a.Splits)-1]
		// The tentative part entities were never published: recycle
		// them (the discarded probe memo is the only other referent).
		x.entFree = append(x.entFree, x.pend.addEnts...)
	}
	x.pend = edfPending{}
	if h, f, now := x.rollbackPub(); now {
		x.publish(h, f)
	}
}

func (x *edfContext) Place(t *task.Task, c int) {
	x.ensureNoPending("Place")
	x.a.Place(t, c)
	e := newEDFEntityInto(x.newEntity(), t)
	rec := x.lastProbe[c]
	promote := x.mono && rec.ok && rec.seq == x.commitSeq && rec.key == fpKey(e)
	x.adoptNormal(e, c)
	x.commitSeq++
	if promote {
		s := &x.cores[c]
		s.verdict = fpVerdict{valid: true, ok: true, rev: s.rev, n: x.maxN}
		if rec.memo != nil {
			// The memo covered the probe's tentative entity; the
			// adopted entity has identical (D, T), so its enumerated
			// points and raw count carry over — only the identity in
			// the covered set must be swapped.
			// rec.memo was built by the probe and never published, so
			// the identity swap may mutate it in place.
			delete(rec.memo.covered, rec.tent)
			rec.memo.covered[e] = true
			s.memo = rec.memo
		}
	}
	hint, fits := pubUnknown, false
	if promote {
		hint, fits = pubAdmitted, true
	}
	if h, f, now := x.commitPub(hint, fits); now {
		x.publish(h, f)
	}
}

func (x *edfContext) AddSplit(sp *task.Split) {
	x.ensureNoPending("AddSplit")
	x.a.Splits = append(x.a.Splits, sp)
	ents, cores := x.splitEntitiesInto(sp)
	for i, e := range ents {
		x.adoptPart(e, cores[i])
	}
	x.commitSeq++
	if h, f, now := x.commitPub(pubUnknown, false); now {
		x.publish(h, f)
	}
}

// dropped records the removal of an entity from core c: CacheMax may
// shrink, the demand memo's covered set references the removed entity
// (its test points must not survive), and the verdict is stale.
func (x *edfContext) dropped(c int) {
	s := &x.cores[c]
	s.cacheMax = 0
	for _, e := range s.ents {
		if d := x.m.Cache.MaxDelay(e.Task.WSS); d > s.cacheMax {
			s.cacheMax = d
		}
	}
	s.rev++
	s.memo = nil
	s.verdict = fpVerdict{}
}

// Remove deletes the task (whole or window-split) from the
// assignment and the per-core state. Deadline windows decouple the
// cores, so invalidation is local to the touched cores — except the
// shared queue bound N: when the removal lowers MaxTasksPerCore,
// every core's inflated costs shrink, so all memos (whose warm busy
// periods could overshoot) are dropped; verdicts are keyed by N and
// invalidate themselves. The canonical entity order (normals in
// placement order, then split parts in split order) is preserved, so
// decisions — including the order-sensitive floating-point
// utilization sum — stay bit-identical to the stateless build.
func (x *edfContext) Remove(id task.ID) bool {
	x.ensureNoPending("Remove")
	x.sweepDisable()
	oldMaxN := x.maxN
	found := false
search:
	for c := range x.a.Normal {
		for i, t := range x.a.Normal[c] {
			if t.ID != id {
				continue
			}
			x.a.Normal[c] = removeAtCOW(x.a.Normal[c], i)
			s := &x.cores[c]
			for j := 0; j < s.nNormals; j++ {
				if s.ents[j].Task.ID == id {
					s.ents = removeAtCOW(s.ents, j)
					s.nNormals--
					break
				}
			}
			x.dropped(c)
			found = true
			break search
		}
	}
	if !found {
		for si, sp := range x.a.Splits {
			if sp.Task.ID != id {
				continue
			}
			x.a.Splits = removeAtCOW(x.a.Splits, si)
			for _, p := range sp.Parts {
				s := &x.cores[p.Core]
				for j := s.nNormals; j < len(s.ents); j++ {
					if s.ents[j].Task.ID == id {
						s.ents = removeAtCOW(s.ents, j)
						break
					}
				}
				x.dropped(p.Core)
			}
			found = true
			break
		}
	}
	if !found {
		return false
	}
	x.maxN = 0
	for c := range x.cores {
		if n := len(x.cores[c].ents); n > x.maxN {
			x.maxN = n
		}
	}
	if x.maxN != oldMaxN {
		// Smaller N shrinks every inflated cost: warm busy periods in
		// the memos may overshoot. Verdicts are keyed by N and go
		// stale on their own.
		for c := range x.cores {
			x.cores[c].memo = nil
		}
	}
	x.commitSeq++
	if h, f, now := x.commitPub(pubRemoved, false); now {
		x.publish(h, f)
	}
	return true
}

// EndGroup closes a group commit and publishes the committed state
// once — unless a held probe's tentative mutation is in the
// assignment, in which case the publish is deferred as a debt the
// probe's Commit or Rollback settles.
func (x *edfContext) EndGroup() {
	if h, f, now := x.endGroup(x.pend.kind != pendNone); now {
		x.publish(h, f)
	}
}

func (x *edfContext) Schedulable() bool {
	x.ensureNoPending("Schedulable")
	x.stats.FullTests++
	for _, sp := range x.a.Splits {
		if !sp.HasWindows() {
			return false // EDF requires window-split tasks
		}
	}
	for c := range x.cores {
		s := &x.cores[c]
		if s.verdict.valid && s.verdict.rev == s.rev && s.verdict.n == x.maxN {
			x.stats.CoreTests++
			x.stats.VerdictHits++
			if !s.verdict.ok {
				return false
			}
			continue
		}
		// The committed full-core test is also a pure function of
		// (state, N): share it across contexts via the sweep memo.
		node := x.sweepNode(c)
		if node != nil {
			if sv, hit := x.sweep.lookup(node, x.maxN, sweepShape{flags: sweepCoreTest}); hit {
				x.stats.CoreTests++
				x.stats.VerdictHits++
				s.verdict = fpVerdict{valid: true, ok: sv, rev: s.rev, n: x.maxN}
				if !sv {
					return false
				}
				continue
			}
		}
		cs := &x.probeCS[c]
		cs.Entities = s.ents
		cs.N = x.maxN
		cs.CacheMax = s.cacheMax
		cs.invalidateCosts()
		var memo *edfDemandMemo
		if x.mono {
			memo = s.memo
		}
		x.stats.CoreTests++
		ok, out := cs.edfSchedulable(x.m, memo, x.mono)
		if x.mono && out != nil {
			s.memo = out
		}
		if node != nil {
			x.sweep.store(node, x.maxN, sweepShape{flags: sweepCoreTest}, ok)
		}
		s.verdict = fpVerdict{valid: true, ok: ok, rev: s.rev, n: x.maxN}
		if !ok {
			return false
		}
	}
	return true
}

// Reset rebinds the context to a new assignment and model, recycling
// every owned slab (see the Context interface contract). commitSeq
// keeps running so stale lastProbe records can never match.
func (x *edfContext) Reset(a *task.Assignment, m *overhead.Model) {
	x.ensureNoPending("Reset")
	m = overhead.Normalize(m)
	nc := a.NumCores
	if x.publishing.Load() || nc != len(x.cores) {
		// Committed slices and entities are shared with published
		// snapshots (or the core count changed): drop every slab and
		// start fresh. Old snapshots stay valid — they are
		// self-contained — and publication disengages until the next
		// Fork.
		x.publishing.Store(false)
		x.pub.Store(nil)
		x.cores = make([]edfCoreState, nc)
		x.lastProbe = make([]edfProbeRecord, nc)
		x.probeBuf = make([][]*Entity, nc)
		x.probeCS = make([]CoreSet, nc)
		x.entFree = nil
		x.splitEnts, x.splitCores = nil, nil
	} else {
		// Fork was never called: no snapshot references the committed
		// slabs, so entities (split parts included — they live in the
		// per-core slices) go back to the pool and the cores keep
		// their capacity.
		for c := range x.cores {
			s := &x.cores[c]
			x.entFree = append(x.entFree, s.ents...)
			s.ents = s.ents[:0]
			s.nNormals = 0
			s.cacheMax = 0
			s.rev++ // recycled cores must never match old verdicts
			s.verdict = fpVerdict{}
			s.memo = nil
			x.lastProbe[c] = edfProbeRecord{}
		}
	}
	x.a = a
	x.m = m
	x.mono = modelMonotone(m)
	x.maxN = 0
	x.pubHold, x.pubAny, x.pubOwed = false, false, false
	x.groupHint, x.groupFits = pubUnknown, false
	x.sweepOff = false
	if x.sweep != nil {
		if len(x.sweepNodes) != nc {
			x.sweepNodes = make([]*sweepNode, nc)
			x.sweepRevs = make([]int64, nc)
		}
		x.sweepInvalidate()
	}
	// Adopt whatever the new assignment already contains, mirroring
	// newEDFContext over the recycled slabs.
	for c := 0; c < nc; c++ {
		for _, t := range a.Normal[c] {
			x.adoptNormal(newEDFEntityInto(x.newEntity(), t), c)
		}
	}
	for _, sp := range a.Splits {
		ents, cores := x.splitEntitiesInto(sp)
		for i, e := range ents {
			x.adoptPart(e, cores[i])
		}
	}
}

// SetSweepCache attaches (or, with nil, detaches) the cross-context
// probe-verdict memo; committed state is interned lazily at the first
// consultation.
func (x *edfContext) SetSweepCache(sc *SweepCache) {
	x.sweep = sc
	if sc == nil {
		x.sweepNodes = nil
		x.sweepRevs = nil
		x.sweepOff = false
		return
	}
	if len(x.sweepNodes) != len(x.cores) {
		x.sweepNodes = make([]*sweepNode, len(x.cores))
		x.sweepRevs = make([]int64, len(x.cores))
	}
	x.sweepOff = false
	x.sweepInvalidate()
}
