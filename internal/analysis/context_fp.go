package analysis

import (
	"sort"
	"sync/atomic"

	"repro/internal/overhead"
	"repro/internal/task"
	"repro/internal/timeq"
)

// fpContext is the incremental fixed-priority admission context: the
// stateful counterpart of fpAnalyzer.CoreSchedulable. It keeps the
// per-core entity sets built (entities are only ever added, so each
// mutation is a sorted insert, never a rebuild), warm-starts every
// response-time fixed point and the split-chain jitter resolution
// from the committed converged values, and caches per-core verdicts
// keyed by (content revision, queue bound N, jitter generation) so a
// core no mutation dirtied is never re-analyzed.
//
// Dirty tracking: a whole-task placement dirties one core; a split
// dirties every core in its chain (each part's host), and a jitter
// resolution that moves a chain's converged jitters dirties every
// core hosting an entity whose jitter changed.
type fpContext struct {
	ctxBase

	sets   []*CoreSet // committed per-core sets, entities sorted by priority
	revs   []int64    // per-core content revision
	chains []*fpChain // committed chains, in a.Splits order

	// Warm-start values live directly on the (context-owned) entities:
	// Entity.warmR is the committed converged response time, and
	// Entity.warmProbe/warmSeq carry the pending probe's values —
	// rollback is O(1), the sequence simply moves on. probeSeq is the
	// current probe's tag; inProbe routes converged values to the
	// probe slot (probes) or the committed slot (full tests).
	probeSeq int64
	inProbe  bool

	jEpoch   int64   // jitter generation counter
	coreJGen []int64 // last generation a chain jitter on core c changed

	verdicts  []fpVerdict
	lastProbe []fpProbeRecord

	resolveSeq int64 // commitSeq the last committed resolution was valid for
	lastFailed map[*Entity]bool

	pend fpPending

	// Snapshot publication (the lock-free read path): pub holds the
	// latest published snapshot, swapped atomically on every committed
	// mutation; snapDirty marks cores whose published record (entity
	// slice or warm vector) must be rebuilt rather than reused from
	// the previous snapshot. Cores hosting chain entities are always
	// rebuilt (their published entities are clones carrying the
	// committed jitters).
	pub       atomic.Pointer[fpSnapshot]
	snapDirty []bool

	// scratch (reused across probes)
	views       []*CoreSet
	probeBuf    [][]*Entity
	probeCS     []CoreSet
	chainBuf    []*fpChain
	jSnapBuf    []timeq.Time
	builtBuf    []int
	jChangedBuf map[int]bool
	scratchEnt  Entity
	placeEnts   [1]*Entity
	placeCores  [1]int

	// Slab recycling (Reset) and cross-context verdict sharing. entFree
	// and chainFree hold reclaimed objects — only ever objects no
	// published snapshot can reference (rolled-back probe chains, and
	// committed slabs of a context that never engaged publication).
	entFree   []*Entity
	chainFree []*fpChain
	sweep     *SweepCache
	// sweepNodes[c] is core c's interned committed state, folded
	// lazily at the first memo consultation after a mutation:
	// sweepRevs[c] remembers which revs[c] the cached node reflects
	// (-1 = never folded), so adoptions pay nothing and cores that are
	// never probed again are never folded. sweepOff disables sharing
	// until the next Reset once chains or removals make per-core
	// verdicts non-local.
	sweepNodes []*sweepNode
	sweepRevs  []int64
	sweepOff   bool
}

// fpWarmKey identifies one schedulable entity stably across probes: a
// task appears either whole (split=false, part 0) or as split parts.
type fpWarmKey struct {
	id    task.ID
	part  int
	split bool
}

func fpKey(e *Entity) fpWarmKey {
	return fpWarmKey{id: e.Task.ID, part: e.PartIndex, split: e.MigrIn || e.MigrOut}
}

// fpChain is the committed analysis view of one split: its entities
// in part order with their host cores.
type fpChain struct {
	sp    *task.Split
	ents  []*Entity
	cores []int
}

// fpVerdict caches one core's last admission verdict.
type fpVerdict struct {
	valid bool
	ok    bool
	rev   int64
	n     int
	jGen  int64
}

// fpProbeRecord remembers the latest rolled-back probe against a core
// so an unprobed Place of the identical task in the same committed
// epoch promotes the probe's verdict and warm values — the
// probe-every-core-then-place-on-best pattern of the bin-packing
// heuristics. probeSeq identifies the probe's warm tags; tentR is the
// tentative entity's own converged response time (its scratch slot is
// overwritten by later probes).
type fpProbeRecord struct {
	seq      int64
	probeSeq int64
	key      fpWarmKey
	ok       bool
	valid    bool
	tentR    timeq.Time
}

const (
	pendNone = iota
	pendPlace
	pendSplit
)

// fpPending is the state of the one in-flight provisional mutation.
type fpPending struct {
	kind      int
	probeCore int
	fits      bool
	probeN    int
	addEnts   []*Entity // tentative entities
	addCores  []int     // their host cores (parallel)
	chain     *fpChain  // tentative chain (splits only)
	resolved  bool      // a jitter resolution ran
	jChanged  map[int]bool
	failed    map[*Entity]bool
}

func newFPContext(an Analyzer, a *task.Assignment, m *overhead.Model) *fpContext {
	nc := a.NumCores
	x := &fpContext{
		ctxBase:   ctxBase{an: an, a: a, m: m, mono: modelMonotone(m)},
		sets:      make([]*CoreSet, nc),
		revs:      make([]int64, nc),
		coreJGen:  make([]int64, nc),
		verdicts:  make([]fpVerdict, nc),
		lastProbe: make([]fpProbeRecord, nc),
		views:     make([]*CoreSet, nc),
		probeBuf:  make([][]*Entity, nc),
		probeCS:   make([]CoreSet, nc),
		snapDirty: make([]bool, nc),
	}
	x.resolveSeq = -1
	for c := 0; c < nc; c++ {
		x.sets[c] = &CoreSet{}
	}
	// Adopt whatever the assignment already contains (contexts may be
	// opened over hand-built assignments, not just empty ones).
	for c := 0; c < nc; c++ {
		for _, t := range a.Normal[c] {
			x.adoptEntity(newFPEntity(t), c)
		}
	}
	for _, sp := range a.Splits {
		ch := buildFPChain(sp)
		for i, e := range ch.ents {
			x.adoptEntity(e, ch.cores[i])
		}
		x.chains = append(x.chains, ch)
	}
	return x
}

// Fork returns the latest published snapshot. The first call engages
// publication (and must run on the owning goroutine — see the
// interface contract); afterwards it is a lock-free atomic load from
// any goroutine. Contexts that never fork never publish: the
// fork-free packing and sweep hot loops pay nothing.
func (x *fpContext) Fork() Snapshot {
	if !x.publishing.Load() {
		x.publish(pubUnknown, false)
		x.publishing.Store(true)
	}
	return x.pub.Load()
}

// publish builds and atomically installs a fresh snapshot of the
// committed state. Runs on the owner after every committed mutation
// once forking is engaged. Cores neither dirtied nor hosting chain
// entities reuse the previous snapshot's record — copy-on-write, so
// the steady-state cost is O(cores) plus the dirtied cores' warm
// vectors.
func (x *fpContext) publish(hint pubHint, fits bool) {
	prev := x.pub.Load()
	nc := len(x.sets)
	s := &fpSnapshot{cores: make([]fpSnapCore, nc)}
	s.captureView(&x.ctxBase, x.commitSeq)
	s.maxN = x.maxN

	// Clone chain entities once per publish: the owner keeps mutating
	// the originals' jitters and warm slots, so readers get private
	// copies with the committed values baked in.
	var chainCore []bool
	var cloneOf map[*Entity]*Entity
	if len(x.chains) > 0 {
		chainCore = make([]bool, nc)
		for _, ch := range x.chains {
			for _, c := range ch.cores {
				chainCore[c] = true
			}
		}
		cloneOf = make(map[*Entity]*Entity)
		s.chains = make([]fpSnapChain, 0, len(x.chains))
		for _, ch := range x.chains {
			sc := fpSnapChain{sp: ch.sp, cores: ch.cores, ents: make([]*Entity, len(ch.ents))}
			for i, e := range ch.ents {
				ce := new(Entity)
				*ce = *e
				sc.ents[i] = ce
				cloneOf[e] = ce
			}
			s.chains = append(s.chains, sc)
		}
	}
	for c := 0; c < nc; c++ {
		onChain := chainCore != nil && chainCore[c]
		if prev != nil && !x.snapDirty[c] && !onChain && len(prev.cores[c].ents) == len(x.sets[c].Entities) {
			// Unchanged record: reuse it, probe memo included — but a
			// changed global queue bound invalidates every memoized
			// verdict (probeN depends on it).
			s.cores[c] = prev.cores[c]
			if s.maxN != prev.maxN {
				s.cores[c].probes = &probeCache{}
			}
			continue
		}
		ents := x.sets[c].Entities
		if onChain {
			swapped := make([]*Entity, len(ents))
			for i, e := range ents {
				if ce, ok := cloneOf[e]; ok {
					swapped[i] = ce
				} else {
					swapped[i] = e
				}
			}
			ents = swapped
		}
		rec := fpSnapCore{ents: ents, cacheMax: x.sets[c].CacheMax, probes: &probeCache{}}
		if x.mono {
			warm := make([]timeq.Time, len(ents))
			for i, e := range x.sets[c].Entities {
				warm[i] = e.warmR
			}
			rec.warm = warm
		}
		s.cores[c] = rec
		x.snapDirty[c] = false
	}
	s.deriveSched(prevView(prev), hint, fits, len(x.chains) > 0)
	x.pub.Store(s)
}

// prevView unwraps the previous snapshot's shared view (nil-safe).
func prevView(prev *fpSnapshot) *snapView {
	if prev == nil {
		return nil
	}
	return &prev.snapView
}

// markDirty flags core c for rebuild at the next publish.
func (x *fpContext) markDirty(c int) { x.snapDirty[c] = true }

// newFPEntity mirrors the whole-task entity of BuildCores.
func newFPEntity(t *task.Task) *Entity {
	return newFPEntityInto(new(Entity), t)
}

// newFPEntityInto fills e in place (scratch reuse on the probe path).
func newFPEntityInto(e *Entity, t *task.Task) *Entity {
	*e = Entity{
		Task:          t,
		C:             t.WCET,
		T:             t.Period,
		D:             t.EffectiveDeadline(),
		LocalPriority: t.Priority,
	}
	return e
}

// buildFPChain mirrors the split-chain entities of BuildCores.
func buildFPChain(sp *task.Split) *fpChain {
	ch := &fpChain{sp: sp}
	last := len(sp.Parts) - 1
	for i, p := range sp.Parts {
		ch.ents = append(ch.ents, &Entity{
			Task:           sp.Task,
			C:              p.Budget,
			T:              sp.Task.Period,
			D:              sp.Task.EffectiveDeadline(),
			LocalPriority:  sp.LocalPriority(),
			PartIndex:      i,
			MigrIn:         i > 0,
			MigrOut:        i < last,
			RemoteSleepAdd: i == last,
		})
		ch.cores = append(ch.cores, p.Core)
	}
	return ch
}

// adoptEntity commits e onto core c's live set. Once publication is
// engaged the insert is copy-on-write — committed entity slices are
// shared with published snapshots, so they are never shifted in
// place. Before the first Fork no snapshot exists, so the fork-free
// sweep hot loop inserts in place and reuses slice capacity.
func (x *fpContext) adoptEntity(e *Entity, c int) {
	s := x.sets[c]
	if x.publishing.Load() {
		s.Entities = insertByPriorityCOW(s.Entities, e)
	} else {
		s.Entities = insertByPriority(s.Entities, e)
	}
	x.markDirty(c)
	s.invalidateCosts()
	if d := x.m.Cache.MaxDelay(e.Task.WSS); d > s.CacheMax {
		s.CacheMax = d
	}
	if n := len(s.Entities); n > x.maxN {
		x.maxN = n
	}
	x.revs[c]++
}

// newEntity returns an entity from the recycle pool (Reset and
// rolled-back split probes refill it); callers overwrite every field.
func (x *fpContext) newEntity() *Entity {
	if n := len(x.entFree); n > 0 {
		e := x.entFree[n-1]
		x.entFree = x.entFree[:n-1]
		return e
	}
	return new(Entity)
}

// newChain is buildFPChain from the recycle pools: rolled-back split
// probes return their chain and entities, so the packing loops'
// budget searches stop allocating per probe. Every entity field is
// overwritten, erasing stale warm and jitter state.
func (x *fpContext) newChain(sp *task.Split) *fpChain {
	var ch *fpChain
	if n := len(x.chainFree); n > 0 {
		ch, x.chainFree = x.chainFree[n-1], x.chainFree[:n-1]
	} else {
		ch = &fpChain{}
	}
	ch.sp = sp
	ch.ents = ch.ents[:0]
	ch.cores = ch.cores[:0]
	last := len(sp.Parts) - 1
	for i, p := range sp.Parts {
		e := x.newEntity()
		*e = Entity{
			Task:           sp.Task,
			C:              p.Budget,
			T:              sp.Task.Period,
			D:              sp.Task.EffectiveDeadline(),
			LocalPriority:  sp.LocalPriority(),
			PartIndex:      i,
			MigrIn:         i > 0,
			MigrOut:        i < last,
			RemoteSleepAdd: i == last,
		}
		ch.ents = append(ch.ents, e)
		ch.cores = append(ch.cores, p.Core)
	}
	return ch
}

// freeChain returns a rolled-back probe chain and its (never
// published) entities to the pools.
func (x *fpContext) freeChain(ch *fpChain) {
	x.entFree = append(x.entFree, ch.ents...)
	ch.sp = nil
	ch.ents = ch.ents[:0]
	ch.cores = ch.cores[:0]
	x.chainFree = append(x.chainFree, ch)
}

// sweepNode returns core c's interned committed state, or nil when
// sharing is unavailable (no cache attached, or disabled by chains or
// removals). The fold runs lazily, once per committed revision:
// entity slices are priority-sorted with unique priorities within a
// task set, so the fold order — hence the node — is determined by the
// core's contents alone, however a context arrived at them.
func (x *fpContext) sweepNode(c int) *sweepNode {
	if x.sweep == nil || x.sweepOff {
		return nil
	}
	if x.sweepRevs[c] != x.revs[c] {
		x.sweepNodes[c] = x.sweep.fold(x.sets[c].Entities)
		x.sweepRevs[c] = x.revs[c]
	}
	return x.sweepNodes[c]
}

// sweepDisable turns off cross-context sharing until the next Reset.
func (x *fpContext) sweepDisable() {
	if x.sweep == nil || x.sweepOff {
		return
	}
	x.sweepOff = true
	for i := range x.sweepNodes {
		x.sweepNodes[i] = nil
	}
}

// sweepInvalidate drops every cached fold; the next sweepNode call
// per core refolds against the (possibly rebuilt) cache tries.
func (x *fpContext) sweepInvalidate() {
	for i := range x.sweepRevs {
		x.sweepRevs[i] = -1
	}
}

// insertByPriority inserts e into a priority-sorted entity slice,
// after any equal-priority entities (matching the stable sort of
// NewCoreSet over the canonical build order). In place — only for
// probe scratch buffers no snapshot can reference.
func insertByPriority(ents []*Entity, e *Entity) []*Entity {
	i := sort.Search(len(ents), func(k int) bool { return ents[k].LocalPriority > e.LocalPriority })
	ents = append(ents, nil)
	copy(ents[i+1:], ents[i:])
	ents[i] = e
	return ents
}

// insertByPriorityCOW is insertByPriority into a freshly allocated
// slice, leaving the input untouched (it may be shared with published
// snapshots).
func insertByPriorityCOW(ents []*Entity, e *Entity) []*Entity {
	i := sort.Search(len(ents), func(k int) bool { return ents[k].LocalPriority > e.LocalPriority })
	out := make([]*Entity, len(ents)+1)
	copy(out, ents[:i])
	out[i] = e
	copy(out[i+1:], ents[i:])
	return out
}

func (x *fpContext) ensureNoPending(op string) { x.checkNoPending(x.pend.kind, op) }

// solve runs one warm-started response-time fixed point of e on its
// host set, recording the converged value for future warm starts.
func (x *fpContext) solve(host *CoreSet, e *Entity) (timeq.Time, bool) {
	var start timeq.Time
	if x.mono {
		if x.inProbe && e.warmSeq == x.probeSeq {
			start = e.warmProbe
		} else {
			start = e.warmR
		}
	}
	r, ok, iters := host.responseTime(e, x.m, start)
	x.stats.FPSolves++
	x.stats.FPIterations += int64(iters)
	if start > 0 {
		x.stats.WarmStarts++
	}
	if ok && x.mono {
		if x.inProbe {
			e.warmProbe = r
			e.warmSeq = x.probeSeq
		} else {
			e.warmR = r
		}
	}
	return r, ok
}

// evalCore tests every entity of the set, mirroring the per-core part
// of Cores.SchedulableCore (failed veto, then response times).
func (x *fpContext) evalCore(cs *CoreSet, failed map[*Entity]bool) bool {
	x.stats.CoreTests++
	for _, e := range cs.Entities {
		if failed != nil && failed[e] {
			return false
		}
		if _, ok := x.solve(cs, e); !ok {
			return false
		}
	}
	return true
}

// resolve runs the split-chain jitter fixed point, mirroring
// Cores.resolveJitters pass for pass; jitters warm-start from the
// values left in the (committed) entities. jChanged collects the
// cores whose hosted chain jitters moved.
func (x *fpContext) resolve(views []*CoreSet, chains []*fpChain, jChanged map[int]bool) map[*Entity]bool {
	const maxPasses = 1000
	var failed map[*Entity]bool // lazily allocated; nil means no failures
	if len(chains) == 0 {
		return nil
	}
	if !x.mono {
		// Non-monotone model: the committed jitters may overshoot this
		// evaluation's least fixed point, so start cold from zero like
		// the stateless path's freshly built entities.
		for _, ch := range chains {
			for _, e := range ch.ents {
				e.Jitter = 0
			}
		}
	}
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for _, ch := range chains {
			cum := timeq.Time(0)
			for i, e := range ch.ents {
				if e.Jitter != cum {
					e.Jitter = cum
					changed = true
					if jChanged != nil {
						jChanged[ch.cores[i]] = true
					}
				}
				r, ok := x.solve(views[ch.cores[i]], e)
				if !ok {
					if failed == nil {
						failed = make(map[*Entity]bool)
					}
					failed[e] = true
					r = e.D
				} else {
					delete(failed, e)
				}
				cum = timeq.AddSat(cum, r)
			}
		}
		if !changed {
			break
		}
	}
	return failed
}

// probeSet builds the provisional CoreSet for core c with tentative
// entities inserted, reusing the per-core scratch buffers.
func (x *fpContext) probeSet(c int, add []*Entity, addCores []int, probeN int) *CoreSet {
	base := x.sets[c]
	buf := append(x.probeBuf[c][:0], base.Entities...)
	cm := base.CacheMax
	for i, e := range add {
		if addCores[i] != c {
			continue
		}
		buf = insertByPriority(buf, e)
		if d := x.m.Cache.MaxDelay(e.Task.WSS); d > cm {
			cm = d
		}
	}
	x.probeBuf[c] = buf
	cs := &x.probeCS[c]
	cs.Entities = buf
	cs.N = probeN
	cs.CacheMax = cm
	cs.invalidateCosts()
	return cs
}

// probeN returns the queue bound of the probe state: the committed
// bound, raised by any core that tentatively grew past it.
func (x *fpContext) probeN(addCores []int) int {
	n := x.maxN
	for c := range x.sets {
		grow := 0
		for _, d := range addCores {
			if d == c {
				grow++
			}
		}
		if k := len(x.sets[c].Entities) + grow; k > n {
			n = k
		}
	}
	return n
}

func (x *fpContext) TryPlace(t *task.Task, c int) bool {
	x.ensureNoPending("TryPlace")
	x.stats.Probes++
	x.a.Place(t, c)
	// The tentative entity lives in a reused scratch slot; Commit
	// clones it onto the heap before adopting it.
	x.scratchEnt = *newFPEntityInto(&x.scratchEnt, t)
	e := &x.scratchEnt
	x.placeEnts[0], x.placeCores[0] = e, c
	x.pend = fpPending{
		kind:      pendPlace,
		probeCore: c,
		addEnts:   x.placeEnts[:],
		addCores:  x.placeCores[:],
	}
	x.beginProbe()
	x.pend.probeN = x.probeN(x.pend.addCores)
	if len(x.chains) == 0 {
		// No chains, no cross-core coupling: probe core c alone
		// (mirrors the stateless fast path). The verdict is a pure
		// function of (core state, probed shape, queue bound), so the
		// shared sweep memo can answer before any fixed point runs.
		node := x.sweepNode(c)
		var shape sweepShape
		if node != nil {
			shape = sweepShapeOf(e)
			if v, hit := x.sweep.lookup(node, x.pend.probeN, shape); hit {
				x.stats.CoreTests++
				x.stats.VerdictHits++
				x.pend.fits = v
				return v
			}
		}
		ps := x.probeSet(c, x.pend.addEnts, x.pend.addCores, x.pend.probeN)
		x.pend.fits = x.evalCore(ps, nil)
		if node != nil {
			x.sweep.store(node, x.pend.probeN, shape, x.pend.fits)
		}
	} else {
		x.pend.fits = x.probeWithChains()
	}
	return x.pend.fits
}

func (x *fpContext) TrySplit(sp *task.Split, c int) bool {
	x.ensureNoPending("TrySplit")
	x.stats.Probes++
	x.a.Splits = append(x.a.Splits, sp)
	ch := x.newChain(sp)
	x.pend = fpPending{
		kind:      pendSplit,
		probeCore: c,
		addEnts:   ch.ents,
		addCores:  ch.cores,
		chain:     ch,
	}
	x.beginProbe()
	x.pend.probeN = x.probeN(x.pend.addCores)
	x.pend.fits = x.probeWithChains()
	return x.pend.fits
}

// probeWithChains evaluates the pending probe with split chains in
// play: per-core views (committed sets, probe sets for dirtied
// cores), a full warm-started jitter resolution, then the probed
// core's test — mirroring Cores.SchedulableCore on the probe state.
func (x *fpContext) probeWithChains() bool {
	probeN := x.pend.probeN
	for d := range x.sets {
		x.sets[d].N = probeN
		x.views[d] = x.sets[d]
	}
	x.builtBuf = x.builtBuf[:0]
	for _, d := range x.pend.addCores {
		seen := false
		for _, o := range x.builtBuf {
			if o == d {
				seen = true
				break
			}
		}
		if !seen {
			x.builtBuf = append(x.builtBuf, d)
			x.views[d] = x.probeSet(d, x.pend.addEnts, x.pend.addCores, probeN)
		}
	}
	// Snapshot committed chain jitters so Rollback can restore them.
	x.jSnapBuf = x.jSnapBuf[:0]
	for _, ch := range x.chains {
		for _, e := range ch.ents {
			x.jSnapBuf = append(x.jSnapBuf, e.Jitter)
		}
	}
	chains := x.chains
	if x.pend.chain != nil {
		chains = append(append(x.chainBuf[:0], x.chains...), x.pend.chain)
		x.chainBuf = chains[:len(chains)-1]
	}
	if x.jChangedBuf == nil {
		x.jChangedBuf = make(map[int]bool, 4)
	} else {
		clear(x.jChangedBuf)
	}
	x.pend.jChanged = x.jChangedBuf
	x.pend.failed = x.resolve(x.views, chains, x.pend.jChanged)
	x.pend.resolved = true
	return x.evalCore(x.views[x.pend.probeCore], x.pend.failed)
}

func (x *fpContext) Commit() {
	if x.pend.kind == pendNone {
		panic("analysis: Commit with no pending probe")
	}
	if x.mono {
		// Promote the probe's converged values: they are the new
		// committed system's least fixed points.
		x.promoteWarm(x.probeSeq, x.pend.addEnts)
		for _, d := range x.pend.addCores {
			x.promoteWarm(x.probeSeq, x.sets[d].Entities)
		}
		if x.pend.resolved {
			x.promoteWarm(x.probeSeq, x.sets[x.pend.probeCore].Entities)
			for _, ch := range x.chains {
				x.promoteWarm(x.probeSeq, ch.ents)
			}
		}
	}
	if x.pend.kind == pendPlace {
		// The tentative entity is the reused scratch slot: clone it
		// (onto a pooled entity — fully overwritten by the copy).
		e := x.newEntity()
		*e = *x.pend.addEnts[0]
		x.adoptEntity(e, x.pend.addCores[0])
	} else {
		// A committed chain couples its host cores through the jitter
		// resolution: per-core verdicts stop being shareable.
		x.sweepDisable()
		for i, e := range x.pend.addEnts {
			x.adoptEntity(e, x.pend.addCores[i])
		}
		x.chains = append(x.chains, x.pend.chain)
	}
	if x.pend.resolved {
		// The probe's converged jitters are the committed system's:
		// keep them, dirty the cores they moved on, and reuse the
		// resolution outcome for the next full test.
		for d := range x.pend.jChanged {
			x.jEpoch++
			x.coreJGen[d] = x.jEpoch
		}
		x.lastFailed = x.pend.failed
	}
	x.commitSeq++
	if x.pend.resolved {
		x.resolveSeq = x.commitSeq
	}
	pc := x.pend.probeCore
	x.verdicts[pc] = fpVerdict{valid: true, ok: x.pend.fits, rev: x.revs[pc], n: x.maxN, jGen: x.coreJGen[pc]}
	// Warm values were promoted on the probed and mutated cores:
	// their published warm vectors must be recaptured.
	x.markDirty(pc)
	for _, d := range x.pend.addCores {
		x.markDirty(d)
	}
	hint, fits := pubUnknown, false
	if x.pend.kind == pendPlace {
		hint, fits = pubAdmitted, x.pend.fits
	}
	x.inProbe = false
	x.pend = fpPending{}
	if h, f, now := x.commitPub(hint, fits); now {
		x.publish(h, f)
	}
}

func (x *fpContext) Rollback() {
	switch x.pend.kind {
	case pendNone:
		panic("analysis: Rollback with no pending probe")
	case pendPlace:
		c := x.pend.addCores[0]
		x.a.Normal[c] = x.a.Normal[c][:len(x.a.Normal[c])-1]
		// Remember the probe so an unprobed Place of the same task in
		// this committed epoch can promote its verdict and warm values.
		tent := x.pend.addEnts[0]
		rec := &x.lastProbe[c]
		rec.seq = x.commitSeq
		rec.probeSeq = x.probeSeq
		rec.key = fpKey(tent)
		rec.ok = x.pend.fits
		rec.valid = true
		rec.tentR = 0
		if tent.warmSeq == x.probeSeq {
			rec.tentR = tent.warmProbe
		}
	case pendSplit:
		x.a.Splits = x.a.Splits[:len(x.a.Splits)-1]
		// The tentative chain was never published: recycle it.
		x.freeChain(x.pend.chain)
	}
	if x.pend.resolved {
		i := 0
		for _, ch := range x.chains {
			for _, e := range ch.ents {
				e.Jitter = x.jSnapBuf[i]
				i++
			}
		}
	}
	x.inProbe = false
	x.pend = fpPending{}
	if h, f, now := x.rollbackPub(); now {
		x.publish(h, f)
	}
}

// beginProbe opens a fresh warm-tag epoch for the pending probe.
func (x *fpContext) beginProbe() {
	x.probeSeq++
	x.inProbe = true
}

// promoteWarm copies probe-epoch converged values into the committed
// warm slots for every entity the probe solved on the given cores and
// chains (tag-guarded, so values from other probes are never taken).
func (x *fpContext) promoteWarm(seq int64, ents []*Entity) {
	for _, e := range ents {
		if e.warmSeq == seq {
			e.warmR = e.warmProbe
		}
	}
}

func (x *fpContext) Place(t *task.Task, c int) {
	x.ensureNoPending("Place")
	x.a.Place(t, c)
	e := newFPEntityInto(x.newEntity(), t)
	rec := x.lastProbe[c]
	promote := x.mono && rec.valid && rec.ok && rec.seq == x.commitSeq && rec.key == fpKey(e)
	if promote {
		// The probe's converged values are the new committed system's
		// least fixed points; tags guard against later probes having
		// overwritten an entity's probe slot.
		e.warmR = rec.tentR
		x.promoteWarm(rec.probeSeq, x.sets[c].Entities)
		for _, ch := range x.chains {
			x.promoteWarm(rec.probeSeq, ch.ents)
		}
	}
	x.adoptEntity(e, c)
	x.commitSeq++
	if promote {
		x.verdicts[c] = fpVerdict{valid: true, ok: true, rev: x.revs[c], n: x.maxN, jGen: x.coreJGen[c]}
	} else {
		x.verdicts[c] = fpVerdict{}
	}
	hint, fits := pubUnknown, false
	if promote {
		hint, fits = pubAdmitted, true
	}
	if h, f, now := x.commitPub(hint, fits); now {
		x.publish(h, f)
	}
}

func (x *fpContext) AddSplit(sp *task.Split) {
	x.ensureNoPending("AddSplit")
	x.a.Splits = append(x.a.Splits, sp)
	x.sweepDisable()
	ch := x.newChain(sp)
	for i, e := range ch.ents {
		x.adoptEntity(e, ch.cores[i])
		x.verdicts[ch.cores[i]] = fpVerdict{}
	}
	x.chains = append(x.chains, ch)
	x.commitSeq++
	if h, f, now := x.commitPub(pubUnknown, false); now {
		x.publish(h, f)
	}
}

// dropEntity deletes the first entity on core c matching the
// predicate, recomputing the core's CacheMax (removal can lower it)
// and bumping its content revision. Copy-on-write: the committed
// slice may be shared with published snapshots.
func (x *fpContext) dropEntity(c int, match func(*Entity) bool) {
	s := x.sets[c]
	for i, e := range s.Entities {
		if match(e) {
			s.Entities = removeAtCOW(s.Entities, i)
			break
		}
	}
	x.markDirty(c)
	s.CacheMax = 0
	for _, e := range s.Entities {
		if d := x.m.Cache.MaxDelay(e.Task.WSS); d > s.CacheMax {
			s.CacheMax = d
		}
	}
	s.invalidateCosts()
	x.revs[c]++
}

// Remove deletes the task (whole placement or split chain) and
// invalidates whatever the shrink could have left overshooting.
// Removal is the only mutation under which committed warm-start
// values stop being lower bounds of the least fixed points — less
// interference, a smaller queue bound N, or smaller chain jitters
// all shrink response times — so warm state is reset: on the removed
// task's core always, and context-wide when chains exist or N
// dropped (chain jitters and the shared N couple every core).
// Entity order within each core is preserved, so decisions stay
// bit-identical to the stateless build of the shrunken assignment.
func (x *fpContext) Remove(id task.ID) bool {
	x.ensureNoPending("Remove")
	x.sweepDisable()
	oldMaxN := x.maxN
	removedSplit := false
	affected := -1
	found := false
search:
	for c := range x.a.Normal {
		for i, t := range x.a.Normal[c] {
			if t.ID == id {
				x.a.Normal[c] = removeAtCOW(x.a.Normal[c], i)
				x.dropEntity(c, func(e *Entity) bool {
					return e.Task.ID == id && !e.MigrIn && !e.MigrOut
				})
				affected = c
				found = true
				break search
			}
		}
	}
	if !found {
		for si, sp := range x.a.Splits {
			if sp.Task.ID != id {
				continue
			}
			x.a.Splits = removeAtCOW(x.a.Splits, si)
			for ci, ch := range x.chains {
				if ch.sp != sp {
					continue
				}
				for i, e := range ch.ents {
					ent := e
					x.dropEntity(ch.cores[i], func(o *Entity) bool { return o == ent })
				}
				x.chains = append(x.chains[:ci], x.chains[ci+1:]...)
				break
			}
			removedSplit = true
			found = true
			break
		}
	}
	if !found {
		return false
	}
	x.maxN = 0
	for _, s := range x.sets {
		if n := len(s.Entities); n > x.maxN {
			x.maxN = n
		}
	}
	x.commitSeq++
	if removedSplit || len(x.chains) > 0 || x.maxN != oldMaxN {
		// Chain jitters and the shared queue bound couple the cores:
		// reset warm state everywhere and force a fresh resolution.
		for d := range x.sets {
			for _, e := range x.sets[d].Entities {
				e.warmR, e.warmProbe, e.warmSeq = 0, 0, 0
			}
			x.verdicts[d] = fpVerdict{}
			x.markDirty(d) // published warm vectors must drop to the reset values
		}
		for _, ch := range x.chains {
			for _, e := range ch.ents {
				e.Jitter = 0
			}
		}
		x.resolveSeq = -1
		x.lastFailed = nil
	} else {
		// No chains and N unchanged: the removal is local to one core.
		for _, e := range x.sets[affected].Entities {
			e.warmR, e.warmProbe, e.warmSeq = 0, 0, 0
		}
		x.verdicts[affected] = fpVerdict{}
	}
	if h, f, now := x.commitPub(pubRemoved, false); now {
		x.publish(h, f)
	}
	return true
}

// EndGroup closes a group commit and publishes the committed state
// once — unless a held probe's tentative mutation is in the
// assignment, in which case the publish is deferred as a debt the
// probe's Commit or Rollback settles.
func (x *fpContext) EndGroup() {
	if h, f, now := x.endGroup(x.pend.kind != pendNone); now {
		x.publish(h, f)
	}
}

// removeAtCOW splices element i out into a fresh slice, leaving the
// input untouched. Every committed slice (entity sets, the
// assignment's task and split lists) is shared with published
// snapshots, so removal must never shift in place — all removal
// paths go through this one helper to keep that invariant in one
// place.
func removeAtCOW[T any](xs []T, i int) []T {
	out := make([]T, 0, len(xs)-1)
	out = append(out, xs[:i]...)
	return append(out, xs[i+1:]...)
}

func (x *fpContext) Schedulable() bool {
	x.ensureNoPending("Schedulable")
	x.stats.FullTests++
	for d := range x.sets {
		x.sets[d].N = x.maxN
	}
	failed := x.lastFailed
	if x.resolveSeq != x.commitSeq {
		jc := make(map[int]bool, 4)
		failed = x.resolve(x.sets, x.chains, jc)
		for d := range jc {
			x.jEpoch++
			x.coreJGen[d] = x.jEpoch
		}
		x.lastFailed = failed
		x.resolveSeq = x.commitSeq
	}
	if len(failed) > 0 {
		return false
	}
	for c := range x.sets {
		v := x.verdicts[c]
		if v.valid && v.rev == x.revs[c] && v.n == x.maxN && v.jGen == x.coreJGen[c] {
			x.stats.CoreTests++
			x.stats.VerdictHits++
			if !v.ok {
				return false
			}
			continue
		}
		// The committed full-core test is also a pure function of
		// (state, N): share it across contexts via the sweep memo.
		node := x.sweepNode(c)
		if node != nil {
			if sv, hit := x.sweep.lookup(node, x.maxN, sweepShape{flags: sweepCoreTest}); hit {
				x.stats.CoreTests++
				x.stats.VerdictHits++
				x.verdicts[c] = fpVerdict{valid: true, ok: sv, rev: x.revs[c], n: x.maxN, jGen: x.coreJGen[c]}
				if !sv {
					return false
				}
				continue
			}
		}
		ok := x.evalCore(x.sets[c], nil)
		if node != nil {
			x.sweep.store(node, x.maxN, sweepShape{flags: sweepCoreTest}, ok)
		}
		x.verdicts[c] = fpVerdict{valid: true, ok: ok, rev: x.revs[c], n: x.maxN, jGen: x.coreJGen[c]}
		if !ok {
			return false
		}
	}
	return true
}

// Reset rebinds the context to a new assignment and model, recycling
// every owned slab (see the Context interface contract). Sequence
// counters (commitSeq, probeSeq, jEpoch) keep running so stale
// tag-guarded records from before the Reset can never match.
func (x *fpContext) Reset(a *task.Assignment, m *overhead.Model) {
	x.ensureNoPending("Reset")
	m = overhead.Normalize(m)
	nc := a.NumCores
	if x.publishing.Load() || nc != len(x.sets) {
		// Committed slices and entities are shared with published
		// snapshots (or the core count changed): drop every slab and
		// start fresh. Old snapshots stay valid — they are
		// self-contained — and publication disengages until the next
		// Fork.
		x.publishing.Store(false)
		x.pub.Store(nil)
		x.sets = make([]*CoreSet, nc)
		for c := 0; c < nc; c++ {
			x.sets[c] = &CoreSet{}
		}
		x.revs = make([]int64, nc)
		x.coreJGen = make([]int64, nc)
		x.verdicts = make([]fpVerdict, nc)
		x.lastProbe = make([]fpProbeRecord, nc)
		x.views = make([]*CoreSet, nc)
		x.probeBuf = make([][]*Entity, nc)
		x.probeCS = make([]CoreSet, nc)
		x.snapDirty = make([]bool, nc)
		x.chains = nil
		x.entFree = nil
		x.chainFree = nil
	} else {
		// Fork was never called: no snapshot references the committed
		// slabs, so entities go back to the pool and the per-core sets
		// keep their capacity.
		for c := 0; c < nc; c++ {
			s := x.sets[c]
			x.entFree = append(x.entFree, s.Entities...)
			s.Entities = s.Entities[:0]
			s.N = 0
			s.CacheMax = 0
			s.invalidateCosts()
			x.revs[c]++ // recycled cores must never match old verdicts
			x.coreJGen[c] = 0
			x.verdicts[c] = fpVerdict{}
			x.lastProbe[c] = fpProbeRecord{}
			x.snapDirty[c] = false
		}
		// Chain entities were reclaimed with their host sets above;
		// recycle the chain headers alone.
		for _, ch := range x.chains {
			ch.sp = nil
			ch.ents = ch.ents[:0]
			ch.cores = ch.cores[:0]
			x.chainFree = append(x.chainFree, ch)
		}
		x.chains = x.chains[:0]
	}
	x.a = a
	x.m = m
	x.mono = modelMonotone(m)
	x.maxN = 0
	x.inProbe = false
	x.resolveSeq = -1
	x.lastFailed = nil
	x.pubHold, x.pubAny, x.pubOwed = false, false, false
	x.groupHint, x.groupFits = pubUnknown, false
	x.sweepOff = false
	if x.sweep != nil {
		if len(x.sweepNodes) != nc {
			x.sweepNodes = make([]*sweepNode, nc)
			x.sweepRevs = make([]int64, nc)
		}
		x.sweepInvalidate()
	}
	// Adopt whatever the new assignment already contains, mirroring
	// newFPContext over the recycled slabs.
	for c := 0; c < nc; c++ {
		for _, t := range a.Normal[c] {
			x.adoptEntity(newFPEntityInto(x.newEntity(), t), c)
		}
	}
	for _, sp := range a.Splits {
		x.sweepDisable()
		ch := x.newChain(sp)
		for i, e := range ch.ents {
			x.adoptEntity(e, ch.cores[i])
		}
		x.chains = append(x.chains, ch)
	}
}

// SetSweepCache attaches (or, with nil, detaches) the cross-context
// probe-verdict memo; committed state is interned lazily at the first
// consultation.
func (x *fpContext) SetSweepCache(sc *SweepCache) {
	x.sweep = sc
	if sc == nil {
		x.sweepNodes = nil
		x.sweepRevs = nil
		x.sweepOff = false
		return
	}
	if len(x.sweepNodes) != len(x.sets) {
		x.sweepNodes = make([]*sweepNode, len(x.sets))
		x.sweepRevs = make([]int64, len(x.sets))
	}
	x.sweepOff = len(x.chains) > 0
	x.sweepInvalidate()
}
