package analysis

import (
	"math/rand"
	"testing"

	"repro/internal/overhead"
	"repro/internal/task"
	"repro/internal/timeq"
)

// The evaluation-cost cache (ensureCosts) and the EDF max-blocking
// closed form (edfMaxBlocking) are one-pass re-derivations of the
// per-entity methods that the hot paths now use exclusively — and the
// differential context tests compare context against stateless where
// BOTH sides read the cache, so a drift between the cache and the
// reference methods would be invisible to them. These tests pin the
// equivalence directly: for randomized entity sets, models and queue
// bounds, the cached values must equal the per-entity methods
// exactly.

// randomCoreSet builds a CoreSet of k entities with randomized
// parameters and migration flags over a random queue bound.
func randomCoreSet(rng *rand.Rand, k int) *CoreSet {
	var ents []*Entity
	for i := 0; i < k; i++ {
		period := timeq.Time(5+rng.Intn(200)) * timeq.Millisecond
		c := timeq.Time(1+rng.Intn(40)) * 100 * timeq.Microsecond
		e := &Entity{
			Task:          &task.Task{ID: task.ID(i + 1), WCET: c, Period: period, Priority: i + 1, WSS: int64(rng.Intn(1 << 20))},
			C:             c,
			T:             period,
			D:             period,
			LocalPriority: i + 1,
		}
		switch rng.Intn(4) {
		case 1: // body part
			e.MigrOut = true
			e.LocalPriority = task.SplitLocalPriority(i + 1)
		case 2: // middle part
			e.MigrIn, e.MigrOut = true, true
			e.PartIndex = 1
			e.LocalPriority = task.SplitLocalPriority(i + 1)
		case 3: // tail part
			e.MigrIn, e.RemoteSleepAdd = true, true
			e.PartIndex = 2
			e.LocalPriority = task.SplitLocalPriority(i + 1)
		}
		ents = append(ents, e)
	}
	return NewCoreSet(ents, k+rng.Intn(12), overhead.PaperModel())
}

func costModels() []*overhead.Model {
	scaled := overhead.PaperModel().WithRemotePenalty(4)
	return []*overhead.Model{overhead.Zero(), overhead.PaperModel(), scaled}
}

// TestEnsureCostsMatchesMethods pins the cache to the reference
// methods: InflatedCost, Blocking and ReleaseCost.
func TestEnsureCostsMatchesMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 50; round++ {
		cs := randomCoreSet(rng, 1+rng.Intn(10))
		for _, m := range costModels() {
			cs.invalidateCosts()
			cs.ensureCosts(m)
			if got, want := cs.relCost, cs.ReleaseCost(m); got != want {
				t.Fatalf("round %d: relCost %v != ReleaseCost %v", round, got, want)
			}
			for i, e := range cs.Entities {
				if got, want := cs.infl[i], cs.InflatedCost(e, m); got != want {
					t.Fatalf("round %d entity %d: cached infl %v != InflatedCost %v", round, i, got, want)
				}
				if got, want := cs.blocking[i], cs.Blocking(e, m); got != want {
					t.Fatalf("round %d entity %d: cached blocking %v != Blocking %v", round, i, got, want)
				}
			}
		}
	}
}

// TestEDFMaxBlockingMatchesPerEntity pins the closed form to the
// per-entity reference: max over entities of edfBlocking.
func TestEDFMaxBlockingMatchesPerEntity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 50; round++ {
		cs := randomCoreSet(rng, 1+rng.Intn(10))
		for _, m := range costModels() {
			cs.invalidateCosts()
			var want timeq.Time
			for _, e := range cs.Entities {
				want = timeq.Max(want, cs.edfBlocking(e, m))
			}
			if got := cs.edfMaxBlocking(m); got != want {
				t.Fatalf("round %d: edfMaxBlocking %v != max edfBlocking %v (%d entities)", round, got, want, len(cs.Entities))
			}
		}
	}
}
