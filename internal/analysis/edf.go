package analysis

import (
	"sort"

	"repro/internal/overhead"
	"repro/internal/task"
	"repro/internal/timeq"
)

// EDF schedulability: the paper's Section 2 notes the implementation
// "can be easily extended to support a wide range of semi-partitioned
// algorithms based on both fixed-priority and EDF scheduling"; this
// file provides the EDF admission side.
//
// Per-core EDF schedulability uses the processor-demand criterion for
// constrained-deadline sporadic tasks,
//
//	∀t ∈ deadlines ≤ L:  Σᵢ dbfᵢ(t) + rel(t) + B ≤ t
//	dbfᵢ(t) = max(0, ⌊(t − Dᵢ)/Tᵢ⌋ + 1) · C'ᵢ
//
// with the same overhead-inflated budgets C', release-path
// interference rel(t) (every timer release consumes kernel time
// regardless of deadline order) and non-preemptible-segment blocking
// B as the fixed-priority analysis. Split tasks use EDF-WM-style
// deadline windows: part k of a split is an independent sporadic
// task (Budget, Window_k, T) on its core, released at the window
// start — windows decouple the cores, so no cross-core fixpoint is
// needed.

// EDFCoreSchedulable runs the processor-demand test on one core.
func (cs *CoreSet) EDFCoreSchedulable(m *overhead.Model) bool {
	if len(cs.Entities) == 0 {
		return true
	}
	// Inflated utilization must stay below 1 for the busy period to
	// exist.
	infl := make([]timeq.Time, len(cs.Entities))
	rel := cs.ReleaseCost(m)
	uNum := 0.0
	for i, e := range cs.Entities {
		infl[i] = cs.InflatedCost(e, m)
		uNum += float64(infl[i]) / float64(e.T)
		if !e.MigrIn && rel > 0 {
			// Double-charge the release path as unconditional load;
			// conservative (see rta.go for the FP analog).
			uNum += float64(rel) / float64(e.T)
		}
		if e.D < infl[i] {
			return false
		}
	}
	if uNum > 1 {
		return false
	}
	var b timeq.Time
	for _, e := range cs.Entities {
		b = timeq.Max(b, cs.edfBlocking(e, m))
	}
	l := cs.edfBusyPeriod(infl, rel, b)
	if l == timeq.Infinity {
		return false
	}
	// Test every absolute deadline up to L.
	pts, ok := cs.deadlinePoints(l)
	if !ok {
		return false
	}
	for _, t := range pts {
		var demand timeq.Time
		for i, e := range cs.Entities {
			if t < e.D {
				continue
			}
			n := (int64(t)-int64(e.D))/int64(e.T) + 1
			demand = timeq.AddSat(demand, timeq.MulCount(infl[i], n))
		}
		if rel > 0 {
			for _, e := range cs.Entities {
				if e.MigrIn {
					continue
				}
				demand = timeq.AddSat(demand, timeq.MulCount(rel, timeq.CeilDiv(t, e.T)))
			}
		}
		if timeq.AddSat(demand, b) > t {
			return false
		}
	}
	return true
}

// edfBlocking bounds the non-preemptible kernel segments that can
// delay entity e under EDF: one in-progress departure, one spilled
// arrival, and a simultaneous batch of other timer releases (EDF has
// no static priority order, so every other entity's batch counts).
func (cs *CoreSet) edfBlocking(e *Entity, m *overhead.Model) timeq.Time {
	if m.IsZero() {
		return 0
	}
	perRelease := m.Release +
		cs.delta(m, overhead.SleepDelete, false) +
		cs.delta(m, overhead.ReadyAdd, false)
	var batch timeq.Time
	for _, o := range cs.Entities {
		if o != e && !o.MigrIn {
			batch += perRelease
		}
	}
	if batch > 0 {
		batch += m.Sched
	}
	var maxDep, maxArr timeq.Time
	for _, o := range cs.Entities {
		if d := cs.departureCost(o, m); d > maxDep {
			maxDep = d
		}
		if a := cs.arrivalCost(o, m); a > maxArr {
			maxArr = a
		}
	}
	return batch + maxDep + maxArr
}

// edfBusyPeriod computes the synchronous busy period with inflated
// costs — the test horizon L.
func (cs *CoreSet) edfBusyPeriod(infl []timeq.Time, rel, b timeq.Time) timeq.Time {
	w := b
	for _, c := range infl {
		w += c
	}
	if w == 0 {
		return 0
	}
	for iter := 0; iter < 10000; iter++ {
		next := b
		for i, e := range cs.Entities {
			n := timeq.CeilDiv(w, e.T)
			next = timeq.AddSat(next, timeq.MulCount(infl[i], n))
			if rel > 0 && !e.MigrIn {
				next = timeq.AddSat(next, timeq.MulCount(rel, n))
			}
		}
		if next == w {
			// Also cover the largest relative deadline.
			for _, e := range cs.Entities {
				w = timeq.Max(w, e.D)
			}
			return w
		}
		w = next
	}
	return timeq.Infinity
}

// deadlinePointCap bounds the number of absolute deadlines tested per
// core; beyond it the set is treated as unschedulable rather than
// spending unbounded analysis time (only pathological period ratios
// reach it).
const deadlinePointCap = 2_000_000

// deadlinePoints enumerates the absolute deadlines ≤ l, sorted; the
// second result is false when the cap was exceeded.
func (cs *CoreSet) deadlinePoints(l timeq.Time) ([]timeq.Time, bool) {
	var pts []timeq.Time
	for _, e := range cs.Entities {
		for t := e.D; t <= l; t += e.T {
			pts = append(pts, t)
			if len(pts) > deadlinePointCap {
				return nil, false
			}
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })
	// Deduplicate.
	out := pts[:0]
	var prev timeq.Time = -1
	for _, t := range pts {
		if t != prev {
			out = append(out, t)
			prev = t
		}
	}
	return out, true
}

// edfEntities collects core c's entities under EDF semantics: split
// parts become window-deadline sporadic tasks. Splits must carry
// Windows (see partition.EDFWM).
func edfEntities(a *task.Assignment, c int) []*Entity {
	var out []*Entity
	for _, t := range a.Normal[c] {
		out = append(out, &Entity{
			Task: t,
			C:    t.WCET,
			T:    t.Period,
			D:    t.EffectiveDeadline(),
		})
	}
	for _, sp := range a.Splits {
		last := len(sp.Parts) - 1
		for i, p := range sp.Parts {
			if p.Core != c {
				continue
			}
			d := sp.Task.EffectiveDeadline()
			if sp.HasWindows() {
				d = sp.Windows[i]
			}
			out = append(out, &Entity{
				Task:           sp.Task,
				C:              p.Budget,
				T:              sp.Task.Period,
				D:              d,
				PartIndex:      i,
				MigrIn:         i > 0,
				MigrOut:        i < last,
				RemoteSleepAdd: i == last,
			})
		}
	}
	return out
}

// EDFBuildCore expands only core c. Deadline windows decouple the
// cores under EDF, so single-core admission probes — including ones
// on split parts — never need the rest of the assignment.
func EDFBuildCore(a *task.Assignment, c int, m *overhead.Model) *CoreSet {
	return NewCoreSet(edfEntities(a, c), a.MaxTasksPerCore(), m)
}

// EDFBuildCores expands an assignment into per-core entity sets under
// EDF semantics.
func EDFBuildCores(a *task.Assignment, m *overhead.Model) []*CoreSet {
	maxN := a.MaxTasksPerCore()
	var out []*CoreSet
	for c := 0; c < a.NumCores; c++ {
		out = append(out, NewCoreSet(edfEntities(a, c), maxN, m))
	}
	return out
}

// EDFAssignmentSchedulable is the EDF admission test for a whole
// assignment. Windows decouple cores, so it is a conjunction of
// per-core demand tests.
//
// Deprecated: use EDFDemand.Schedulable, or the policy-generic
// Schedulable which dispatches on the assignment's own Policy.
func EDFAssignmentSchedulable(a *task.Assignment, m *overhead.Model) bool {
	return EDFDemand.Schedulable(a, m)
}
