package analysis

import (
	"slices"

	"repro/internal/overhead"
	"repro/internal/task"
	"repro/internal/timeq"
)

// EDF schedulability: the paper's Section 2 notes the implementation
// "can be easily extended to support a wide range of semi-partitioned
// algorithms based on both fixed-priority and EDF scheduling"; this
// file provides the EDF admission side.
//
// Per-core EDF schedulability uses the processor-demand criterion for
// constrained-deadline sporadic tasks,
//
//	∀t ∈ deadlines ≤ L:  Σᵢ dbfᵢ(t) + rel(t) + B ≤ t
//	dbfᵢ(t) = max(0, ⌊(t − Dᵢ)/Tᵢ⌋ + 1) · C'ᵢ
//
// with the same overhead-inflated budgets C', release-path
// interference rel(t) (every timer release consumes kernel time
// regardless of deadline order) and non-preemptible-segment blocking
// B as the fixed-priority analysis. Split tasks use EDF-WM-style
// deadline windows: part k of a split is an independent sporadic
// task (Budget, Window_k, T) on its core, released at the window
// start — windows decouple the cores, so no cross-core fixpoint is
// needed.

// EDFCoreSchedulable runs the processor-demand test on one core.
func (cs *CoreSet) EDFCoreSchedulable(m *overhead.Model) bool {
	ok, _ := cs.edfSchedulable(m, nil, false)
	return ok
}

// edfDemandMemo is the incremental state an admission Context keeps
// per core: the converged (pre-extension) busy period as a warm start
// for the next one, and the sorted deadline test points already
// enumerated for a known entity set up to a known horizon. Both are
// valid accelerators for any evaluation whose entity set is a
// superset and whose overhead terms did not shrink — exactly the
// probe pattern, where entities are only ever added.
type edfDemandMemo struct {
	// busyWarm is the converged busy period before the max-deadline
	// extension: a lower bound on any extension's busy period.
	busyWarm timeq.Time
	// pts are the sorted, deduplicated absolute deadlines ≤ ptsL of
	// the entities in covered; rawPts counts them pre-deduplication
	// (the deadlinePointCap accounting must match the cold path).
	pts     []timeq.Time
	rawPts  int
	ptsL    timeq.Time
	covered map[*Entity]bool
}

// edfSchedulable is the demand test behind EDFCoreSchedulable,
// optionally accelerated by a memo (nil reproduces the cold path bit
// for bit). When keep is true and the test passes, the converged
// artifacts are returned for the caller to cache.
func (cs *CoreSet) edfSchedulable(m *overhead.Model, memo *edfDemandMemo, keep bool) (bool, *edfDemandMemo) {
	if len(cs.Entities) == 0 {
		if keep {
			return true, &edfDemandMemo{covered: map[*Entity]bool{}}
		}
		return true, nil
	}
	// Inflated utilization must stay below 1 for the busy period to
	// exist.
	cs.ensureCosts(m)
	infl := cs.infl
	rel := cs.relCost
	// The inner loops below iterate the flat struct-of-arrays mirrors
	// (periods, deadlines, migration flags) filled by ensureCosts; the
	// summation order matches the entity order exactly, so the
	// order-sensitive floating-point utilization sum is bit-identical
	// to the entity walk.
	k := len(cs.Entities)
	periods, deadlines, migr := cs.soaT[:k], cs.soaD[:k], cs.soaMigr[:k]
	uNum := 0.0
	for i := 0; i < k; i++ {
		uNum += float64(infl[i]) / float64(periods[i])
		if !migr[i] && rel > 0 {
			// Double-charge the release path as unconditional load;
			// conservative (see rta.go for the FP analog).
			uNum += float64(rel) / float64(periods[i])
		}
		if deadlines[i] < infl[i] {
			return false, nil
		}
	}
	if uNum > 1 {
		return false, nil
	}
	b := cs.edfMaxBlocking(m)
	var busyStart timeq.Time
	if memo != nil {
		busyStart = memo.busyWarm
	}
	l, busyConverged := cs.edfBusyPeriod(infl, rel, b, busyStart)
	if l == timeq.Infinity {
		return false, nil
	}
	// Test every absolute deadline up to L.
	pts, raw, ok := cs.deadlinePointsMemo(l, memo)
	if !ok {
		return false, nil
	}
	for _, t := range pts {
		var demand timeq.Time
		ti := int64(t)
		for i := 0; i < k; i++ {
			d := deadlines[i]
			if t < d {
				continue
			}
			n := (ti-int64(d))/int64(periods[i]) + 1
			demand = timeq.AddSat(demand, timeq.MulCount(infl[i], n))
		}
		if rel > 0 {
			for i := 0; i < k; i++ {
				if migr[i] {
					continue
				}
				demand = timeq.AddSat(demand, timeq.MulCount(rel, timeq.CeilDiv(t, periods[i])))
			}
		}
		if timeq.AddSat(demand, b) > t {
			return false, nil
		}
	}
	if !keep {
		return true, nil
	}
	cov := make(map[*Entity]bool, len(cs.Entities))
	for _, e := range cs.Entities {
		cov[e] = true
	}
	// Memos are published and shared across probes, so they must own
	// their point slice — pts may alias the CoreSet's reusable scratch.
	own := append([]timeq.Time(nil), pts...)
	return true, &edfDemandMemo{busyWarm: busyConverged, pts: own, rawPts: raw, ptsL: l, covered: cov}
}

// edfMaxBlocking is max over entities of edfBlocking, computed in one
// pass from the evaluation-cost cache: the departure/arrival maxima
// are shared, so only the release-batch count varies — it is largest
// for a migration-arrival entity (every timer release counts) and
// nonMigr−1 otherwise.
func (cs *CoreSet) edfMaxBlocking(m *overhead.Model) timeq.Time {
	if m.IsZero() || len(cs.Entities) == 0 {
		return 0
	}
	cs.ensureCosts(m)
	cnt := cs.nonMigr
	if cnt == len(cs.Entities) {
		cnt-- // every entity timer-released: the batch excludes e itself
	}
	if cnt < 0 {
		cnt = 0
	}
	batch := cs.perRelease * timeq.Time(cnt)
	if batch > 0 {
		batch += m.Sched
	}
	return batch + cs.maxDep + cs.maxArr
}

// edfBlocking bounds the non-preemptible kernel segments that can
// delay entity e under EDF: one in-progress departure, one spilled
// arrival, and a simultaneous batch of other timer releases (EDF has
// no static priority order, so every other entity's batch counts).
func (cs *CoreSet) edfBlocking(e *Entity, m *overhead.Model) timeq.Time {
	if m.IsZero() {
		return 0
	}
	perRelease := m.Release +
		cs.delta(m, overhead.SleepDelete, false) +
		cs.delta(m, overhead.ReadyAdd, false)
	var batch timeq.Time
	for _, o := range cs.Entities {
		if o != e && !o.MigrIn {
			batch += perRelease
		}
	}
	if batch > 0 {
		batch += m.Sched
	}
	var maxDep, maxArr timeq.Time
	for _, o := range cs.Entities {
		if d := cs.departureCost(o, m); d > maxDep {
			maxDep = d
		}
		if a := cs.arrivalCost(o, m); a > maxArr {
			maxArr = a
		}
	}
	return batch + maxDep + maxArr
}

// edfBusyPeriod computes the synchronous busy period with inflated
// costs — the test horizon L (first result) — plus the converged
// value before the max-deadline extension (second result), which is
// what a Context may pass back as the warm start of a later, larger
// evaluation. start must be at or below the least fixed point (0
// reproduces the cold iteration exactly).
func (cs *CoreSet) edfBusyPeriod(infl []timeq.Time, rel, b, start timeq.Time) (timeq.Time, timeq.Time) {
	w := b
	for _, c := range infl {
		w += c
	}
	if w == 0 {
		return 0, 0
	}
	if start > w {
		w = start
	}
	// Iterate the flat mirrors (the caller ran ensureCosts — infl is
	// its cache, so the mirrors are filled and parallel).
	k := len(cs.Entities)
	periods, migr := cs.soaT[:k], cs.soaMigr[:k]
	for iter := 0; iter < 10000; iter++ {
		next := b
		for i := 0; i < k; i++ {
			n := timeq.CeilDiv(w, periods[i])
			next = timeq.AddSat(next, timeq.MulCount(infl[i], n))
			if rel > 0 && !migr[i] {
				next = timeq.AddSat(next, timeq.MulCount(rel, n))
			}
		}
		if next == w {
			converged := w
			// Also cover the largest relative deadline.
			for i := 0; i < k; i++ {
				w = timeq.Max(w, cs.soaD[i])
			}
			return w, converged
		}
		w = next
	}
	return timeq.Infinity, 0
}

// deadlinePointCap bounds the number of absolute deadlines tested per
// core; beyond it the set is treated as unschedulable rather than
// spending unbounded analysis time (only pathological period ratios
// reach it).
const deadlinePointCap = 2_000_000

// ptsScratchMax bounds the deadline-point scratch retained on a
// CoreSet between evaluations (pooled probe scratch would otherwise
// pin pathological enumerations near deadlinePointCap forever).
const ptsScratchMax = 1 << 16

// deadlinePointsMemo enumerates the absolute deadlines ≤ l, sorted
// and deduplicated, plus the pre-deduplication count (for the cap);
// the final result is false when the cap was exceeded. With a memo
// whose horizon the new one extends, only the points beyond the
// cached horizon (and those of entities the memo does not cover) are
// generated and merged — the resulting point set, raw count and
// verdict are identical to the cold enumeration.
//
// The returned slice may alias the CoreSet's scratch buffers (reused
// across evaluations, so the probe path allocates nothing steady
// state); callers that retain points beyond the evaluation must copy
// them (see the keep path of edfSchedulable — memos always own
// private slices, which is what makes the merge target below safe).
func (cs *CoreSet) deadlinePointsMemo(l timeq.Time, memo *edfDemandMemo) ([]timeq.Time, int, bool) {
	k := len(cs.Entities)
	deadlines, periods := cs.soaD[:k], cs.soaT[:k]
	if memo == nil || memo.covered == nil || l < memo.ptsL {
		pts := cs.ptsBuf[:0]
		raw := 0
		for i := 0; i < k; i++ {
			p := periods[i]
			for t := deadlines[i]; t <= l; t += p {
				pts = append(pts, t)
				raw++
				if raw > deadlinePointCap {
					return nil, raw, false
				}
			}
		}
		if cap(pts) <= ptsScratchMax {
			cs.ptsBuf = pts[:0]
		} else {
			cs.ptsBuf = nil
		}
		slices.Sort(pts)
		// Deduplicate.
		out := pts[:0]
		var prev timeq.Time = -1
		for _, t := range pts {
			if t != prev {
				out = append(out, t)
				prev = t
			}
		}
		return out, raw, true
	}
	raw := memo.rawPts
	extra := cs.extraBuf[:0]
	for i := 0; i < k; i++ {
		d, p := deadlines[i], periods[i]
		t0 := d
		if memo.covered[cs.Entities[i]] && d <= memo.ptsL {
			// Resume just past the cached horizon.
			n := (int64(memo.ptsL)-int64(d))/int64(p) + 1
			t0 = d + timeq.Time(n)*p
		}
		for t := t0; t <= l; t += p {
			extra = append(extra, t)
			raw++
			if raw > deadlinePointCap {
				return nil, raw, false
			}
		}
	}
	if cap(extra) <= ptsScratchMax {
		cs.extraBuf = extra[:0]
	} else {
		cs.extraBuf = nil
	}
	if len(extra) == 0 {
		return memo.pts, raw, true
	}
	slices.Sort(extra)
	// Merge the two sorted runs, deduplicating, into the points
	// scratch (never aliased by memo.pts: memos own private copies).
	out := cs.ptsBuf[:0]
	i, j := 0, 0
	var prev timeq.Time = -1
	for i < len(memo.pts) || j < len(extra) {
		var t timeq.Time
		switch {
		case i == len(memo.pts):
			t = extra[j]
			j++
		case j == len(extra):
			t = memo.pts[i]
			i++
		case memo.pts[i] <= extra[j]:
			t = memo.pts[i]
			i++
		default:
			t = extra[j]
			j++
		}
		if t != prev {
			out = append(out, t)
			prev = t
		}
	}
	if cap(out) <= ptsScratchMax {
		cs.ptsBuf = out[:0]
	} else {
		cs.ptsBuf = nil
	}
	return out, raw, true
}

// edfEntities collects core c's entities under EDF semantics: split
// parts become window-deadline sporadic tasks. Splits must carry
// Windows (see partition.EDFWM).
func edfEntities(a *task.Assignment, c int) []*Entity {
	var out []*Entity
	for _, t := range a.Normal[c] {
		out = append(out, &Entity{
			Task: t,
			C:    t.WCET,
			T:    t.Period,
			D:    t.EffectiveDeadline(),
		})
	}
	for _, sp := range a.Splits {
		last := len(sp.Parts) - 1
		for i, p := range sp.Parts {
			if p.Core != c {
				continue
			}
			d := sp.Task.EffectiveDeadline()
			if sp.HasWindows() {
				d = sp.Windows[i]
			}
			out = append(out, &Entity{
				Task:           sp.Task,
				C:              p.Budget,
				T:              sp.Task.Period,
				D:              d,
				PartIndex:      i,
				MigrIn:         i > 0,
				MigrOut:        i < last,
				RemoteSleepAdd: i == last,
			})
		}
	}
	return out
}

// EDFBuildCore expands only core c. Deadline windows decouple the
// cores under EDF, so single-core admission probes — including ones
// on split parts — never need the rest of the assignment.
func EDFBuildCore(a *task.Assignment, c int, m *overhead.Model) *CoreSet {
	return NewCoreSet(edfEntities(a, c), a.MaxTasksPerCore(), m)
}

// EDFBuildCores expands an assignment into per-core entity sets under
// EDF semantics.
func EDFBuildCores(a *task.Assignment, m *overhead.Model) []*CoreSet {
	maxN := a.MaxTasksPerCore()
	var out []*CoreSet
	for c := 0; c < a.NumCores; c++ {
		out = append(out, NewCoreSet(edfEntities(a, c), maxN, m))
	}
	return out
}

// EDFAssignmentSchedulable is the EDF admission test for a whole
// assignment. Windows decouple cores, so it is a conjunction of
// per-core demand tests.
//
// Deprecated: use EDFDemand.Schedulable, or the policy-generic
// Schedulable which dispatches on the assignment's own Policy.
func EDFAssignmentSchedulable(a *task.Assignment, m *overhead.Model) bool {
	return EDFDemand.Schedulable(a, m)
}
