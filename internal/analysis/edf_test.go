package analysis

import (
	"testing"
	"testing/quick"

	"repro/internal/overhead"
	"repro/internal/task"
	"repro/internal/timeq"
)

// edfCore builds a CoreSet for EDF testing (priorities irrelevant).
func edfCore(m *overhead.Model, tasks ...*task.Task) *CoreSet {
	var es []*Entity
	for _, t := range tasks {
		es = append(es, &Entity{Task: t, C: t.WCET, T: t.Period, D: t.EffectiveDeadline()})
	}
	return NewCoreSet(es, len(es), m)
}

func TestEDFFullUtilizationSchedulable(t *testing.T) {
	z := overhead.Zero()
	// Implicit deadlines at exactly U = 1: EDF-schedulable.
	cs := edfCore(z,
		&task.Task{ID: 1, WCET: ms(2), Period: ms(4)},
		&task.Task{ID: 2, WCET: ms(5), Period: ms(10)},
	)
	if !cs.EDFCoreSchedulable(z) {
		t.Fatal("EDF must schedule U=1 with implicit deadlines")
	}
}

func TestEDFOverloadRejected(t *testing.T) {
	z := overhead.Zero()
	cs := edfCore(z,
		&task.Task{ID: 1, WCET: ms(3), Period: ms(4)},
		&task.Task{ID: 2, WCET: ms(5), Period: ms(10)},
	)
	if cs.EDFCoreSchedulable(z) {
		t.Fatal("U=1.25 accepted")
	}
}

// EDF admits sets RM cannot: C=(2,4), T=(5,7), U≈0.971.
func TestEDFBeatsRM(t *testing.T) {
	z := overhead.Zero()
	t1 := &task.Task{ID: 1, WCET: ms(2), Period: ms(5)}
	t2 := &task.Task{ID: 2, WCET: ms(4), Period: ms(7)}
	if !edfCore(z, t1, t2).EDFCoreSchedulable(z) {
		t.Fatal("EDF should accept U=0.971 implicit-deadline pair")
	}
	// The same set fails RM response-time analysis.
	rm := oneCore(z, t1, t2)
	if rm.CoreSchedulable(z) {
		t.Fatal("RM should reject this set (classic example)")
	}
}

func TestEDFConstrainedDeadlines(t *testing.T) {
	z := overhead.Zero()
	// Demand at t=3 is 2 ≤ 3; at t=4 is 2+2=4 ≤ 4: feasible.
	ok := edfCore(z,
		&task.Task{ID: 1, WCET: ms(2), Period: ms(4), Deadline: ms(3)},
		&task.Task{ID: 2, WCET: ms(2), Period: ms(4), Deadline: ms(4)},
	)
	if !ok.EDFCoreSchedulable(z) {
		t.Fatal("feasible constrained set rejected")
	}
	// Tightening the second deadline to 3 makes t=3 demand 4 > 3.
	bad := edfCore(z,
		&task.Task{ID: 1, WCET: ms(2), Period: ms(4), Deadline: ms(3)},
		&task.Task{ID: 2, WCET: ms(2), Period: ms(4), Deadline: ms(3)},
	)
	if bad.EDFCoreSchedulable(z) {
		t.Fatal("infeasible constrained set accepted")
	}
}

func TestEDFOverheadsOnlyHurt(t *testing.T) {
	p := overhead.PaperModel()
	f := func(c1Raw, c2Raw uint8) bool {
		t1 := &task.Task{ID: 1, WCET: timeq.Time(c1Raw%40+1) * timeq.Millisecond / 4, Period: ms(10)}
		t2 := &task.Task{ID: 2, WCET: timeq.Time(c2Raw%40+1) * timeq.Millisecond / 4, Period: ms(20)}
		withOv := edfCore(p, t1, t2).EDFCoreSchedulable(p)
		if !withOv {
			return true
		}
		return edfCore(overhead.Zero(), t1, t2).EDFCoreSchedulable(overhead.Zero())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEDFEmptyCore(t *testing.T) {
	z := overhead.Zero()
	cs := NewCoreSet(nil, 0, z)
	if !cs.EDFCoreSchedulable(z) {
		t.Fatal("empty core unschedulable?")
	}
}

func TestEDFAssignmentRequiresWindows(t *testing.T) {
	t1 := &task.Task{ID: 1, WCET: ms(6), Period: ms(20)}
	a := task.NewAssignment(2)
	a.Splits = append(a.Splits, &task.Split{Task: t1, Parts: []task.Part{
		{Core: 0, Budget: ms(3)}, {Core: 1, Budget: ms(3)},
	}})
	if EDFAssignmentSchedulable(a, overhead.Zero()) {
		t.Fatal("windowless split accepted under EDF")
	}
}

func TestEDFAssignmentWithWindows(t *testing.T) {
	t1 := &task.Task{ID: 1, WCET: ms(4), Period: ms(10)}
	t2 := &task.Task{ID: 2, WCET: ms(6), Period: ms(20)}
	a := task.NewAssignment(2)
	a.Place(t1, 0)
	a.Splits = append(a.Splits, &task.Split{
		Task:    t2,
		Parts:   []task.Part{{Core: 0, Budget: ms(3)}, {Core: 1, Budget: ms(3)}},
		Windows: []timeq.Time{ms(10), ms(10)},
	})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !EDFAssignmentSchedulable(a, overhead.Zero()) {
		t.Fatal("feasible windowed assignment rejected")
	}
	// Core 0 demand: t1 (4/10) + part (3 in 10, T=20): at t=10,
	// demand 4+3=7 ≤ 10 ✓. Squeezing the window below the budget is
	// caught by Split.Validate, and overload by the demand test:
	over := task.NewAssignment(2)
	over.Place(t1, 0)
	over.Place(&task.Task{ID: 3, WCET: ms(5), Period: ms(10)}, 0)
	over.Splits = append(over.Splits, &task.Split{
		Task:    t2,
		Parts:   []task.Part{{Core: 0, Budget: ms(3)}, {Core: 1, Budget: ms(3)}},
		Windows: []timeq.Time{ms(10), ms(10)},
	})
	if EDFAssignmentSchedulable(over, overhead.Zero()) {
		t.Fatal("overloaded core 0 accepted (U=0.9+0.15)")
	}
}
