// Package analysis implements fixed-priority schedulability analysis
// for partitioned and semi-partitioned assignments, with the paper's
// measured overheads folded in (Section 4: "we integrate the obtained
// overhead into the state-of-the-art partitioned scheduling and
// semi-partitioned scheduling algorithms").
//
// The unit of analysis is the Entity: one schedulable object on one
// core. An unsplit task is one entity; a split task contributes one
// entity per part, linked into a chain whose release jitters are
// resolved by fixed-point iteration across cores.
//
// # Overhead accounting
//
// Every overhead the simulator charges is billed to exactly one
// entity, so the response-time analysis upper-bounds the simulation:
//
//   - timer arrival: rls + θdel + δadd (the release path), then
//     sch + cnt1 plus the victim-requeue δadd and dispatch δdel of the
//     preemption the arrival may cause;
//   - migration arrival: sch + cnt1 + victim δadd + dispatch δdel,
//     plus the migration cache reload (CPMD);
//   - departure: sch + cnt2 + the sleep-queue insert (remote for a
//     migrated tail) or the remote ready-queue insert (body parts),
//     plus the δdel that dispatches the next local job;
//   - one CacheMax charge per job for the cache reload of whichever
//     task it preempted.
//
// Kernel segments are non-preemptible, so each entity also suffers a
// blocking term B (lower-priority release batches, an in-progress
// departure segment, and one spilled arrival segment) and
// lower-priority timer releases are charged as interference — both
// effects the paper's Figure 1 timeline makes visible.
package analysis

import (
	"fmt"
	"sort"

	"repro/internal/overhead"
	"repro/internal/task"
	"repro/internal/timeq"
)

// Entity is one schedulable object hosted on one core: either a whole
// task or one part of a split task.
type Entity struct {
	// Task is the underlying task.
	Task *task.Task
	// C is the execution budget on this core: the WCET for an
	// unsplit task, the part budget for a split part.
	C timeq.Time
	// T is the period (inherited from the task).
	T timeq.Time
	// D is the deadline the chain must meet (inherited; the chain
	// constraint R_tail + J_tail ≤ D is what matters for splits).
	D timeq.Time
	// LocalPriority is the effective priority on this core; smaller
	// is higher. Split parts run at the highest local priorities
	// (task.SplitLocalPriority).
	LocalPriority int
	// Jitter is the release jitter: zero for timer-released
	// entities, and the cumulative response time of the preceding
	// parts for the 2nd..tail parts of a split task.
	Jitter timeq.Time

	// PartIndex is the position in the split chain (0 for unsplit
	// tasks and first parts).
	PartIndex int
	// MigrIn marks an entity that arrives by migration (parts 1..tail).
	MigrIn bool
	// MigrOut marks an entity that departs by migration (body parts).
	MigrOut bool
	// RemoteSleepAdd marks the tail part: on completion the job is
	// inserted into the *home* core's sleep queue, a remote add.
	RemoteSleepAdd bool

	// Warm-start slots owned by the admission context that built the
	// entity (contexts never share entities): warmR is the response
	// time converged for the committed system — a valid lower bound
	// for any probe, since probes only add entities — and warmProbe
	// holds the value converged during probe warmSeq, discarded by
	// the next probe simply by the sequence moving on.
	warmR     timeq.Time
	warmProbe timeq.Time
	warmSeq   int64
}

// String renders the entity for diagnostics.
func (e *Entity) String() string {
	s := fmt.Sprintf("%v part=%d C=%v prio=%d", e.Task, e.PartIndex, e.C, e.LocalPriority)
	if e.Jitter > 0 {
		s += fmt.Sprintf(" J=%v", e.Jitter)
	}
	return s
}

// CoreSet is the set of entities hosted on one core, with the
// parameters the overhead model needs.
type CoreSet struct {
	Entities []*Entity
	// N is the queue-size bound used for δ(N) and θ(N). Following
	// the paper ("N is the maximal number of tasks in the queue"),
	// this is the maximum entity count over all cores of the
	// assignment, shared by analysis and simulator.
	N int
	// CacheMax is the worst CPMD any entity on this core pays on
	// resume; a preempting job is charged this once per release.
	CacheMax timeq.Time

	// Evaluation-cost cache (see ensureCosts): the per-entity
	// inflated budgets and blocking terms, plus the shared release
	// cost and departure/arrival maxima, computed once per
	// (entity set, N, model) instead of once per fixed-point solve.
	// Everything here is a pure function of the fields above, so the
	// cache never changes a decision — it only removes repeated
	// queue-cost interpolation from the solver's hot path.
	costsOK    bool
	costsModel *overhead.Model
	costsN     int
	costsLen   int
	relCost    timeq.Time
	// Queue-op cost memo keyed (model, N) only: it survives
	// invalidateCosts — swapping entities does not move these six
	// interpolations — so the per-probe cache refill skips the log₂
	// interpolation entirely while the queue bound is stable.
	qcOK       bool
	qcModel    *overhead.Model
	qcN        int
	qc         [6]timeq.Time
	infl       []timeq.Time
	blocking   []timeq.Time
	maxDep     timeq.Time
	maxArr     timeq.Time
	perRelease timeq.Time
	nonMigr    int

	// Struct-of-arrays mirrors of the immutable entity parameters,
	// filled by the same ensureCosts pass and parallel to Entities:
	// the response-time and demand-bound inner loops iterate these
	// flat slices instead of chasing *Entity pointers, so the
	// fixed-point hot path touches contiguous memory and performs no
	// per-iteration loads through entity headers. Jitter is NOT
	// mirrored here: the owner's chain resolution mutates it without
	// invalidating this cache, so responseTime refreshes soaJ per
	// solve instead.
	soaT    []timeq.Time
	soaD    []timeq.Time
	soaPrio []int32
	soaMigr []bool
	// prioNarrow reports that every LocalPriority fit int32; the
	// solver falls back to the entity walk otherwise (priorities are
	// small in practice — RM ranks and the split boost — so the
	// fallback is defensive only).
	prioNarrow bool

	// Solver scratch, valid only within one responseTime call: the
	// per-solve jitter refresh and the per-entity interference
	// coefficients classified against the solved entity's priority.
	soaJ    []timeq.Time
	soaCoef []timeq.Time

	// Deadline-point scratch for the EDF demand test (reused across
	// evaluations; see deadlinePointsMemo).
	ptsBuf   []timeq.Time
	extraBuf []timeq.Time
}

// invalidateCosts drops the evaluation-cost cache; callers that
// mutate Entities in place (the admission contexts' scratch sets)
// must call it, since a same-length entity swap is invisible to the
// (model, N, len) key.
func (cs *CoreSet) invalidateCosts() { cs.costsOK = false }

// ensureCosts fills the evaluation-cost cache. The cached values are
// exactly what InflatedCost, Blocking and ReleaseCost return for the
// current (Entities, N, CacheMax, model); they are computed in one
// pass so a k-entity evaluation performs O(k) queue-cost
// interpolations instead of O(k²).
func (cs *CoreSet) ensureCosts(m *overhead.Model) {
	if cs.costsOK && cs.costsModel == m && cs.costsN == cs.N && cs.costsLen == len(cs.Entities) {
		return
	}
	k := len(cs.Entities)
	if cap(cs.infl) < k {
		cs.infl = make([]timeq.Time, k)
		cs.blocking = make([]timeq.Time, k)
		cs.soaT = make([]timeq.Time, k)
		cs.soaD = make([]timeq.Time, k)
		cs.soaPrio = make([]int32, k)
		cs.soaMigr = make([]bool, k)
	}
	cs.infl = cs.infl[:k]
	cs.blocking = cs.blocking[:k]
	cs.soaT = cs.soaT[:k]
	cs.soaD = cs.soaD[:k]
	cs.soaPrio = cs.soaPrio[:k]
	cs.soaMigr = cs.soaMigr[:k]
	cs.prioNarrow = true
	// The six queue-operation costs at this N, interpolated once and
	// reused for every entity (arrivalCost/departureCost/ReleaseCost
	// spelled out with the shared constants).
	if !cs.qcOK || cs.qcModel != m || cs.qcN != cs.N {
		cs.qc[0] = m.QueueOpCost(overhead.ReadyAdd, cs.N, false)
		cs.qc[1] = m.QueueOpCost(overhead.ReadyDelete, cs.N, false)
		cs.qc[2] = m.QueueOpCost(overhead.ReadyAdd, cs.N, true)
		cs.qc[3] = m.QueueOpCost(overhead.SleepAdd, cs.N, false)
		cs.qc[4] = m.QueueOpCost(overhead.SleepAdd, cs.N, true)
		cs.qc[5] = m.QueueOpCost(overhead.SleepDelete, cs.N, false)
		cs.qcOK, cs.qcModel, cs.qcN = true, m, cs.N
	}
	dReadyAddL := cs.qc[0]
	dReadyDelL := cs.qc[1]
	dReadyAddR := cs.qc[2]
	dSleepAddL := cs.qc[3]
	dSleepAddR := cs.qc[4]
	dSleepDelL := cs.qc[5]
	cs.relCost = m.Release + dSleepDelL + dReadyAddL + m.Sched
	cs.maxDep, cs.maxArr = 0, 0
	cs.nonMigr = 0
	sorted := true
	for i, e := range cs.Entities {
		if i > 0 && cs.Entities[i-1].LocalPriority > e.LocalPriority {
			sorted = false
		}
		cs.soaT[i] = e.T
		cs.soaD[i] = e.D
		cs.soaMigr[i] = e.MigrIn
		cs.soaPrio[i] = int32(e.LocalPriority)
		if int(cs.soaPrio[i]) != e.LocalPriority {
			cs.prioNarrow = false
		}
		var arr timeq.Time
		if e.MigrIn {
			arr = m.Sched + m.Cache.Delay(e.Task.WSS, true)
		} else {
			arr = cs.relCost
		}
		arr += dReadyAddL + dReadyDelL + m.CtxSwitch
		dep := m.Sched + m.CtxSwitch
		switch {
		case e.MigrOut:
			dep += dReadyAddR
		case e.RemoteSleepAdd:
			dep += dSleepAddR
		default:
			dep += dSleepAddL
		}
		dep += dReadyDelL
		cs.infl[i] = e.C + arr + dep + cs.CacheMax
		if dep > cs.maxDep {
			cs.maxDep = dep
		}
		if arr > cs.maxArr {
			cs.maxArr = arr
		}
		if !e.MigrIn {
			cs.nonMigr++
		}
	}
	if m.IsZero() {
		cs.perRelease = 0
		for i := range cs.blocking {
			cs.blocking[i] = 0
		}
	} else {
		cs.perRelease = m.Release + dSleepDelL + dReadyAddL
		if sorted {
			// Entities are priority-sorted (NewCoreSet's stable sort,
			// maintained by insertByPriority), so every member of a
			// priority tie group shares one strictly-lower-priority
			// non-migrated count: the non-migrated suffix beyond the
			// group. A right-to-left group scan computes the same
			// counts as the pairwise walks below in O(k).
			suffix := 0
			for i := k - 1; i >= 0; {
				j := i
				groupNM := 0
				for j >= 0 && cs.Entities[j].LocalPriority == cs.Entities[i].LocalPriority {
					if !cs.soaMigr[j] {
						groupNM++
					}
					j--
				}
				batch := cs.perRelease * timeq.Time(suffix)
				if batch > 0 {
					batch += m.Sched
				}
				bval := batch + cs.maxDep + cs.maxArr
				for t := j + 1; t <= i; t++ {
					cs.blocking[t] = bval
				}
				suffix += groupNM
				i = j
			}
		} else if cs.prioNarrow {
			// Count lower-priority timer-released entities over the flat
			// mirrors (index inequality equals pointer inequality:
			// entities are unique within a set).
			for i := 0; i < k; i++ {
				pi := cs.soaPrio[i]
				n := 0
				for j := 0; j < k; j++ {
					if j != i && cs.soaPrio[j] > pi && !cs.soaMigr[j] {
						n++
					}
				}
				batch := cs.perRelease * timeq.Time(n)
				if batch > 0 {
					batch += m.Sched
				}
				cs.blocking[i] = batch + cs.maxDep + cs.maxArr
			}
		} else {
			for i, e := range cs.Entities {
				n := 0
				for _, o := range cs.Entities {
					if o != e && o.LocalPriority > e.LocalPriority && !o.MigrIn {
						n++
					}
				}
				batch := cs.perRelease * timeq.Time(n)
				if batch > 0 {
					batch += m.Sched
				}
				cs.blocking[i] = batch + cs.maxDep + cs.maxArr
			}
		}
	}
	cs.costsOK = true
	cs.costsModel = m
	cs.costsN = cs.N
	cs.costsLen = k
}

// NewCoreSet builds a CoreSet over the given queue-size bound n and
// derives CacheMax from the entity list and the model's cache
// parameters.
func NewCoreSet(entities []*Entity, n int, m *overhead.Model) *CoreSet {
	if n < len(entities) {
		n = len(entities)
	}
	cs := &CoreSet{Entities: entities, N: n}
	for _, e := range entities {
		if d := m.Cache.MaxDelay(e.Task.WSS); d > cs.CacheMax {
			cs.CacheMax = d
		}
	}
	sort.SliceStable(cs.Entities, func(i, j int) bool {
		return cs.Entities[i].LocalPriority < cs.Entities[j].LocalPriority
	})
	return cs
}

// delta is the local ready-queue op cost δ at this core's N.
func (cs *CoreSet) delta(m *overhead.Model, op overhead.Op, remote bool) timeq.Time {
	return m.QueueOpCost(op, cs.N, remote)
}

// ReleaseCost is the kernel time of one timer release excluding any
// context switch: rls + θdel + δadd + sch. Lower-priority releases
// hit a running entity with exactly this much interference.
func (cs *CoreSet) ReleaseCost(m *overhead.Model) timeq.Time {
	return m.Release +
		cs.delta(m, overhead.SleepDelete, false) +
		cs.delta(m, overhead.ReadyAdd, false) +
		m.Sched
}

// arrivalCost is the total arrival charge of e: the release or
// migration-arrival path plus the context switch it may cause
// (victim requeue δadd, dispatch δdel, cnt1) and, for migrated parts,
// the cache reload.
func (cs *CoreSet) arrivalCost(e *Entity, m *overhead.Model) timeq.Time {
	var c timeq.Time
	if e.MigrIn {
		c += m.Sched
		c += m.Cache.Delay(e.Task.WSS, true)
	} else {
		c += cs.ReleaseCost(m) // includes sch
	}
	c += cs.delta(m, overhead.ReadyAdd, false)    // victim requeue
	c += cs.delta(m, overhead.ReadyDelete, false) // own dispatch
	c += m.CtxSwitch                              // cnt1
	return c
}

// departureCost is the total departure charge of e: the finish or
// budget-exhaustion path including the dispatch of the next local job.
func (cs *CoreSet) departureCost(e *Entity, m *overhead.Model) timeq.Time {
	c := m.Sched + m.CtxSwitch // sch + cnt2
	if e.MigrOut {
		c += cs.delta(m, overhead.ReadyAdd, true)
	} else {
		c += cs.delta(m, overhead.SleepAdd, e.RemoteSleepAdd)
	}
	c += cs.delta(m, overhead.ReadyDelete, false) // next job's dispatch
	return c
}

// InflatedCost returns the entity's budget inflated with every
// overhead charge billed to it (see the package comment).
func (cs *CoreSet) InflatedCost(e *Entity, m *overhead.Model) timeq.Time {
	return e.C + cs.arrivalCost(e, m) + cs.departureCost(e, m) + cs.CacheMax
}

// Blocking returns the non-preemptible-segment blocking term B for
// entity e: a simultaneous batch of lower-priority timer releases, an
// in-progress departure segment, and one spilled arrival segment.
// Kernel segments are µs-scale, so B is small against ms deadlines,
// but ignoring it would let the simulator overrun the analysis.
func (cs *CoreSet) Blocking(e *Entity, m *overhead.Model) timeq.Time {
	if m.IsZero() {
		return 0
	}
	var b timeq.Time
	perRelease := m.Release +
		cs.delta(m, overhead.SleepDelete, false) +
		cs.delta(m, overhead.ReadyAdd, false)
	batch := timeq.Time(0)
	for _, o := range cs.Entities {
		if o.LocalPriority > e.LocalPriority && !o.MigrIn {
			batch += perRelease
		}
	}
	if batch > 0 {
		batch += m.Sched
	}
	b += batch
	var maxDep, maxArr timeq.Time
	for _, o := range cs.Entities {
		if d := cs.departureCost(o, m); d > maxDep {
			maxDep = d
		}
		if a := cs.arrivalCost(o, m); a > maxArr {
			maxArr = a
		}
	}
	return b + maxDep + maxArr
}

// Utilization returns the total budget utilization on the core
// (ΣC/T over entities, without overhead inflation).
func (cs *CoreSet) Utilization() float64 {
	u := 0.0
	for _, e := range cs.Entities {
		u += float64(e.C) / float64(e.T)
	}
	return u
}
