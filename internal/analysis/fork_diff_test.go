package analysis

import (
	"math/rand"
	"testing"

	"repro/internal/overhead"
	"repro/internal/task"
	"repro/internal/timeq"
)

// The fork differential suite: a snapshot forked from a context must
// answer every probe exactly as (a) the parent context would on the
// same committed state and (b) a cold stateless analyzer on a fresh
// copy of that state — across both policies and all overhead-model
// classes (zero, paper, scaled remote penalty, inverted anchors; the
// latter two exercise the non-monotone cold fallback).

// forkModels returns the four overhead-model classes the warm/memo
// machinery distinguishes.
func forkModels() []*overhead.Model {
	inverted := overhead.PaperModel()
	inverted.Queues.LocalN64[overhead.ReadyAdd] = inverted.Queues.LocalN4[overhead.ReadyAdd] / 2
	return []*overhead.Model{
		overhead.Zero(),
		overhead.PaperModel(),
		overhead.PaperModel().WithRemotePenalty(8),
		inverted,
	}
}

// probeTask draws a fresh light task to probe with (never committed).
func probeTask(rng *rand.Rand, id int64) *task.Task {
	period := timeq.Time(10+rng.Intn(90)) * timeq.Millisecond
	wcet := period / timeq.Time(20+rng.Intn(60))
	if wcet < timeq.Microsecond {
		wcet = timeq.Microsecond
	}
	return &task.Task{
		ID: task.ID(id), WCET: wcet, Period: period,
		Priority: 10000 + int(id%100), WSS: 64 << 10,
	}
}

// checkFork compares every fork answer against the parent context and
// the cold stateless analyzer on a clone of the snapshot state.
func checkFork(t *testing.T, rng *rand.Rand, ctx Context, m *overhead.Model, probeID *int64) {
	t.Helper()
	an := ctx.Analyzer()
	snap := ctx.Fork()
	cores := snap.NumCores()

	// The fork must be the committed state: its clone and the parent
	// assignment must agree (no probe is pending here).
	clone := snap.CloneAssignment()
	if got, want := clone.String(), ctx.Assignment().String(); got != want {
		t.Fatalf("fork assignment view diverged:\nfork:   %s\nparent: %s", got, want)
	}

	for trial := 0; trial < 3; trial++ {
		*probeID++
		tk := probeTask(rng, *probeID)
		c := rng.Intn(cores)

		snapGot := snap.TryPlace(tk, c)
		if again := snap.TryPlace(tk, c); again != snapGot {
			t.Fatalf("memoized re-probe diverged: %v then %v", snapGot, again)
		}
		ctxGot := ctx.TryPlace(tk, c)
		ctx.Rollback()
		stateless := func() bool {
			a := snap.CloneAssignment()
			a.Place(tk, c)
			return an.CoreSchedulable(a, c, m)
		}()
		if snapGot != ctxGot || snapGot != stateless {
			t.Fatalf("TryPlace(%v, core %d): fork=%v parent=%v stateless=%v (policy %v)",
				tk, c, snapGot, ctxGot, stateless, an.Policy())
		}

		if sp := randomSplit(rng, tk, cores, an.Policy() == task.EDF); sp != nil {
			pc := sp.Parts[0].Core
			snapSp := snap.TrySplit(sp, pc)
			ctxSp := ctx.TrySplit(sp, pc)
			ctx.Rollback()
			statelessSp := func() bool {
				a := snap.CloneAssignment()
				a.Splits = append(a.Splits, sp)
				return an.CoreSchedulable(a, pc, m)
			}()
			if snapSp != ctxSp || snapSp != statelessSp {
				t.Fatalf("TrySplit(%v, core %d): fork=%v parent=%v stateless=%v (policy %v)",
					sp.Task, pc, snapSp, ctxSp, statelessSp, an.Policy())
			}
		}
	}

	snapFull := snap.Schedulable()
	ctxFull := ctx.Schedulable()
	statelessFull := an.Schedulable(snap.CloneAssignment(), m)
	if snapFull != ctxFull || snapFull != statelessFull {
		t.Fatalf("Schedulable: fork=%v parent=%v stateless=%v (policy %v)",
			snapFull, ctxFull, statelessFull, an.Policy())
	}
}

// TestForkMatchesParentAndStateless drives random committed
// histories — placements, splits, removals — forking after every
// committed mutation and differentially checking each fork.
func TestForkMatchesParentAndStateless(t *testing.T) {
	rng := rand.New(rand.NewSource(20260730))
	var probeID int64 = 1 << 32
	for _, an := range []Analyzer{FixedPriorityRTA, EDFDemand} {
		for mi, m := range forkModels() {
			m := overhead.Normalize(m)
			cores := 2 + rng.Intn(3)
			set := randomSet(rng, 6+rng.Intn(6), 0.6*float64(cores))
			a := task.NewAssignment(cores)
			ctx := an.NewContext(a, m)
			var admitted []task.ID
			for _, tk := range set.SortedByUtilizationDesc() {
				switch rng.Intn(4) {
				case 0: // probe + commit
					c := rng.Intn(cores)
					if ctx.TryPlace(tk, c) {
						ctx.Commit()
						admitted = append(admitted, tk.ID)
					} else {
						ctx.Rollback()
					}
				case 1: // split install
					if sp := randomSplit(rng, tk, cores, an.Policy() == task.EDF); sp != nil {
						ctx.AddSplit(sp)
						admitted = append(admitted, tk.ID)
					} else {
						ctx.Place(tk, rng.Intn(cores))
						admitted = append(admitted, tk.ID)
					}
				default: // unprobed placement
					ctx.Place(tk, rng.Intn(cores))
					admitted = append(admitted, tk.ID)
				}
				if len(admitted) > 0 && rng.Intn(5) == 0 {
					i := rng.Intn(len(admitted))
					if !ctx.Remove(admitted[i]) {
						t.Fatalf("Remove(%d) reported absent", admitted[i])
					}
					admitted = append(admitted[:i], admitted[i+1:]...)
				}
				checkFork(t, rng, ctx, m, &probeID)
			}
			// Identical Seq means the identical snapshot object.
			if s1, s2 := ctx.Fork(), ctx.Fork(); s1.Seq() != s2.Seq() {
				t.Fatalf("model %d: forks between commits diverged: %d vs %d", mi, s1.Seq(), s2.Seq())
			}
			ctx.Flush()
		}
	}
}

// TestForkReadStats checks that snapshot probes account their work on
// the context's read-side counters, kept apart from the writer's, and
// that Flush drains both.
func TestForkReadStats(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := task.NewAssignment(2)
	ctx := FixedPriorityRTA.NewContext(a, overhead.PaperModel())
	for i, tk := range randomSet(rng, 6, 1.0).Tasks {
		ctx.Place(tk, i%2)
	}
	writer := ctx.Stats()
	snap := ctx.Fork()
	for i := 0; i < 5; i++ {
		snap.TryPlace(probeTask(rng, int64(1e9+i)), i%2)
	}
	rs := ctx.ReadStats()
	if rs.Probes != 5 || rs.CoreTests == 0 {
		t.Fatalf("read stats missing fork probes: %+v", rs)
	}
	if got := ctx.Stats(); got != writer {
		t.Fatalf("fork probes leaked into writer stats: %+v vs %+v", got, writer)
	}
	var coll Collector
	ctx.SetCollector(&coll)
	ctx.Flush()
	if got := ctx.ReadStats(); got != (AdmissionStats{}) {
		t.Fatalf("Flush must drain read stats, got %+v", got)
	}
	if folded := coll.Snapshot(); folded.Probes < rs.Probes+writer.Probes {
		t.Fatalf("Flush dropped counters: folded %+v, read %+v, writer %+v", folded, rs, writer)
	}
}
