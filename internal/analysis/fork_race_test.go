package analysis

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/overhead"
	"repro/internal/task"
)

// The racing differential fuzz: reader goroutines fork snapshots and
// probe them while the owner goroutine keeps committing, rolling
// back and removing. Every recorded reader answer is replayed — after
// the race is over — against a cold stateless analyzer on the clone
// of the exact snapshot it was probed on. Run under -race this is
// both the memory-safety proof (no reader ever touches state the
// writer mutates) and the linearizability proof (every fork is a
// consistent committed state whose verdicts are bit-identical to the
// stateless path).

// forkProbeRecord is one reader answer to replay.
type forkProbeRecord struct {
	clone *task.Assignment // snapshot state the probe ran against
	t     *task.Task       // probed task (nil for a full test)
	core  int
	got   bool
}

func runForkRace(t *testing.T, an Analyzer, m *overhead.Model, seed int64, writerOps, readers int) {
	m = overhead.Normalize(m)
	const cores = 4
	a := task.NewAssignment(cores)
	ctx := an.NewContext(a, m)

	// Seed a committed base so early forks are non-trivial, then
	// engage publication on the owner before any reader runs (the
	// first Fork must not race the writer).
	rng := rand.New(rand.NewSource(seed))
	for i, tk := range randomSet(rng, 8, 1.5).Tasks {
		ctx.Place(tk, i%cores)
	}
	ctx.Fork()

	var stop atomic.Bool
	var recorded atomic.Int64
	records := make([][]forkProbeRecord, readers)

	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rrng := rand.New(rand.NewSource(seed + int64(r)*7919))
			for !stop.Load() {
				snap := ctx.Fork()
				clone := snap.CloneAssignment()
				for k := 0; k < 3; k++ {
					// Draw from a small shape pool so the snapshot probe
					// memo (and its carryover across publishes) is raced
					// too; IDs repeat, which is harmless for probes.
					shape := rrng.Int63n(48)
					tk := probeTask(rand.New(rand.NewSource(shape)), 1<<41+shape)
					c := rrng.Intn(cores)
					got := snap.TryPlace(tk, c)
					records[r] = append(records[r], forkProbeRecord{clone: clone, t: tk, core: c, got: got})
				}
				if rrng.Intn(4) == 0 {
					records[r] = append(records[r], forkProbeRecord{clone: clone, got: snap.Schedulable()})
				}
				recorded.Add(3)
				runtime.Gosched()
			}
		}(r)
	}

	// The owner: a churn of admissions, rejections, rollbacks and
	// removals, every committed mutation publishing a fresh snapshot.
	var admitted []*task.Task
	next := int64(1 << 20)
	for op := 0; op < writerOps; op++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5:
			next++
			tk := probeTask(rng, next)
			tk.Priority = 100 + int(next%1000)
			c := rng.Intn(cores)
			if ctx.TryPlace(tk, c) {
				ctx.Commit()
				admitted = append(admitted, tk)
			} else {
				ctx.Rollback()
			}
		case 6, 7:
			if len(admitted) > 0 {
				i := rng.Intn(len(admitted))
				ctx.Remove(admitted[i].ID)
				admitted = append(admitted[:i], admitted[i+1:]...)
			}
		case 8:
			next++
			tk := probeTask(rng, next)
			ctx.TryPlace(tk, rng.Intn(cores))
			ctx.Rollback()
		default:
			ctx.Schedulable()
		}
		// Interleave with the readers even on GOMAXPROCS=1 — the
		// interesting schedules are probes spanning a commit.
		runtime.Gosched()
	}
	// Don't stop before every reader had real overlap with the churn.
	for recorded.Load() < int64(3*readers) {
		runtime.Gosched()
	}
	stop.Store(true)
	wg.Wait()

	// Replay every recorded answer against the stateless analyzer.
	replayed := 0
	for _, recs := range records {
		for _, rec := range recs {
			if rec.t == nil {
				want := an.Schedulable(rec.clone, m)
				if rec.got != want {
					t.Fatalf("raced Schedulable=%v, stateless replay=%v (policy %v)", rec.got, want, an.Policy())
				}
			} else {
				// Replay mutates the clone; undo afterwards so later
				// records over the same snapshot replay correctly.
				rec.clone.Place(rec.t, rec.core)
				want := an.CoreSchedulable(rec.clone, rec.core, m)
				n := len(rec.clone.Normal[rec.core])
				rec.clone.Normal[rec.core] = rec.clone.Normal[rec.core][:n-1]
				if rec.got != want {
					t.Fatalf("raced TryPlace(%v, core %d)=%v, stateless replay=%v (policy %v)",
						rec.t, rec.core, rec.got, want, an.Policy())
				}
			}
			replayed++
		}
	}
	if replayed == 0 {
		t.Fatal("no reader answers recorded; the race degenerated")
	}
	ctx.Flush()
	t.Logf("%v/%d-writer-ops: replayed %d raced reader answers", an.Policy(), writerOps, replayed)
}

// TestForkRacingWriterFuzz races forked readers against a committing
// writer for both policies and replays every answer statelessly.
// Run it under -race (the CI race job does).
func TestForkRacingWriterFuzz(t *testing.T) {
	ops := 400
	if testing.Short() {
		ops = 120
	}
	runForkRace(t, FixedPriorityRTA, overhead.PaperModel(), 20260731, ops, 4)
	runForkRace(t, EDFDemand, overhead.PaperModel(), 20260732, ops, 4)
	// Non-monotone model: the cold-fallback read path raced too.
	runForkRace(t, FixedPriorityRTA, overhead.PaperModel().WithRemotePenalty(4), 20260733, ops/2, 2)
}
