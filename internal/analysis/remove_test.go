package analysis

import (
	"math/rand"
	"testing"

	"repro/internal/overhead"
	"repro/internal/task"
	"repro/internal/timeq"
)

// Removal is the one context mutation that shrinks the system, so its
// invalidation path gets its own differential suite: after every
// Remove, the next probes and full tests must still answer exactly
// like the stateless analyzer on the shrunken assignment — warm
// values, chain jitters and verdict caches must never leak state from
// the larger system.

// TestContextRemoveBasics pins the structural semantics.
func TestContextRemoveBasics(t *testing.T) {
	m := overhead.PaperModel()
	t1 := &task.Task{ID: 1, WCET: 2 * timeq.Millisecond, Period: 10 * timeq.Millisecond, Priority: 1}
	t2 := &task.Task{ID: 2, WCET: 3 * timeq.Millisecond, Period: 20 * timeq.Millisecond, Priority: 2}
	t3 := &task.Task{ID: 3, WCET: 4 * timeq.Millisecond, Period: 40 * timeq.Millisecond, Priority: 3}
	for _, an := range []Analyzer{FixedPriorityRTA, EDFDemand} {
		a := task.NewAssignment(2)
		ctx := an.NewContext(a, m)
		ctx.Place(t1, 0)
		ctx.Place(t2, 0)
		ctx.Place(t3, 1)
		if !ctx.Remove(2) {
			t.Fatal("Remove(2) must find the task")
		}
		if ctx.Remove(2) {
			t.Fatal("second Remove(2) must report absence")
		}
		if ctx.Remove(99) {
			t.Fatal("Remove(99) must report absence")
		}
		if len(a.Normal[0]) != 1 || a.Normal[0][0].ID != 1 {
			t.Fatalf("core 0 after removal: %v", a.Normal[0])
		}
		if !ctx.Schedulable() {
			t.Fatal("light set must stay schedulable after removal")
		}
	}
}

// TestContextRemoveSplit removes a split task and checks every chain
// core is cleaned up.
func TestContextRemoveSplit(t *testing.T) {
	m := overhead.PaperModel()
	ts := &task.Task{ID: 1, WCET: 4 * timeq.Millisecond, Period: 10 * timeq.Millisecond, Priority: 1}
	tn := &task.Task{ID: 2, WCET: 1 * timeq.Millisecond, Period: 10 * timeq.Millisecond, Priority: 2}
	for _, edf := range []bool{false, true} {
		an := FixedPriorityRTA
		if edf {
			an = EDFDemand
		}
		a := task.NewAssignment(2)
		ctx := an.NewContext(a, m)
		ctx.Place(tn, 0)
		sp := &task.Split{Task: ts, Parts: []task.Part{
			{Core: 0, Budget: 2 * timeq.Millisecond},
			{Core: 1, Budget: 2 * timeq.Millisecond},
		}}
		if edf {
			sp.Windows = []timeq.Time{5 * timeq.Millisecond, 5 * timeq.Millisecond}
		}
		ctx.AddSplit(sp)
		if !ctx.Remove(1) {
			t.Fatal("Remove of the split must succeed")
		}
		if len(a.Splits) != 0 {
			t.Fatalf("split still present: %v", a.Splits)
		}
		if !ctx.Schedulable() {
			t.Fatal("remaining single task must be schedulable")
		}
		if got := a.MaxTasksPerCore(); got != 1 {
			t.Fatalf("MaxTasksPerCore after split removal = %d", got)
		}
	}
}

// TestContextRemoveMatchesStatelessFuzz interleaves removals with the
// probe/commit/rollback mix under the SelfCheck shadow: every verdict
// after a removal must match the stateless path bit for bit, for both
// analyzers, monotone and non-monotone models.
func TestContextRemoveMatchesStatelessFuzz(t *testing.T) {
	withSelfCheck(t, func() {
		rng := rand.New(rand.NewSource(20260730))
		inverted := overhead.PaperModel()
		inverted.Queues.LocalN64[overhead.ReadyAdd] = inverted.Queues.LocalN4[overhead.ReadyAdd] / 2
		models := []*overhead.Model{
			overhead.Zero(),
			overhead.PaperModel(),
			overhead.PaperModel().WithRemotePenalty(4),
			inverted,
		}
		removals := 0
		for round := 0; round < 20; round++ {
			cores := 2 + rng.Intn(3)
			n := 5 + rng.Intn(6)
			util := 0.4*float64(cores) + rng.Float64()*0.5*float64(cores)
			set := randomSet(rng, n, util)
			for _, an := range []Analyzer{FixedPriorityRTA, EDFDemand} {
				for _, m := range models {
					removals += driveRemoveOps(rng, an, m, cores, set.Clone())
				}
			}
		}
		if removals < 100 {
			t.Fatalf("fuzz drove only %d removals; sequences degenerate", removals)
		}
	})
}

// driveRemoveOps admits tasks (whole and split), removes a random
// subset, re-admits removed ones, and checks Schedulable along the
// way; the SelfCheck shadow validates every decision.
func driveRemoveOps(rng *rand.Rand, an Analyzer, m *overhead.Model, cores int, set *task.Set) int {
	a := task.NewAssignment(cores)
	ctx := an.NewContext(a, m)
	present := map[task.ID]*task.Task{}
	removals := 0
	removeRandom := func() {
		if len(present) == 0 {
			return
		}
		ids := make([]task.ID, 0, len(present))
		for id := range present {
			ids = append(ids, id)
		}
		id := ids[rng.Intn(len(ids))]
		if !ctx.Remove(id) {
			panic("Remove of a present task failed")
		}
		delete(present, id)
		removals++
		if rng.Intn(2) == 0 {
			ctx.Schedulable()
		}
	}
	for _, tk := range set.SortedByUtilizationDesc() {
		if rng.Intn(3) == 0 {
			removeRandom()
		}
		if rng.Intn(4) == 0 {
			if sp := randomSplit(rng, tk, cores, an.Policy() == task.EDF); sp != nil {
				c := sp.Parts[rng.Intn(len(sp.Parts))].Core
				if ctx.TrySplit(sp, c) {
					ctx.Commit()
					present[tk.ID] = tk
				} else {
					ctx.Rollback()
				}
				continue
			}
		}
		for c := 0; c < cores; c++ {
			if ctx.TryPlace(tk, c) {
				ctx.Commit()
				present[tk.ID] = tk
				break
			}
			ctx.Rollback()
		}
	}
	// Drain: remove everything in random order, probing in between —
	// the shrink path all the way down to an empty assignment.
	for len(present) > 0 {
		removeRandom()
		if len(present) > 0 && rng.Intn(3) == 0 {
			for id := range present {
				tk := present[id]
				// Re-probe a present task's twin (fresh ID) to force
				// warm-path evaluations on the shrunken system.
				twin := *tk
				twin.ID = task.ID(10_000 + int(id))
				ctx.TryPlace(&twin, rng.Intn(cores))
				ctx.Rollback()
				break
			}
		}
	}
	ctx.Schedulable()
	ctx.Flush()
	return removals
}

// TestCollectorScoping checks SetCollector: the attached sink sees
// exactly the flushed counters, and the process aggregate still grows
// (the "old function stays an aggregate view" contract).
func TestCollectorScoping(t *testing.T) {
	before := StatsSnapshot()
	coll := &Collector{}
	rng := rand.New(rand.NewSource(41))
	set := randomSet(rng, 8, 2.5)
	a := task.NewAssignment(4)
	ctx := FixedPriorityRTA.NewContext(a, overhead.PaperModel())
	ctx.SetCollector(coll)
	for _, tk := range set.SortedByUtilizationDesc() {
		for c := 0; c < 4; c++ {
			if ctx.TryPlace(tk, c) {
				ctx.Commit()
				break
			}
			ctx.Rollback()
		}
	}
	local := ctx.Stats()
	ctx.Flush()
	got := coll.Snapshot()
	if got != local {
		t.Fatalf("collector %+v != flushed local stats %+v", got, local)
	}
	delta := StatsSnapshot().Sub(before)
	if delta.Probes < local.Probes {
		t.Fatalf("process aggregate %+v missing flushed %+v", delta, local)
	}
	// A second collector-less flush must leave the first untouched.
	ctx.SetCollector(nil)
	if ctx.TryPlace(set.Tasks[0], 0) {
		ctx.Rollback()
	} else {
		ctx.Rollback()
	}
	ctx.Flush()
	if coll.Snapshot() != got {
		t.Fatal("detached collector must stop receiving flushes")
	}
}
