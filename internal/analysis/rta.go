package analysis

import (
	"math"

	"repro/internal/overhead"
	"repro/internal/timeq"
)

// ResponseTime computes the worst-case response time of entity e on
// core cs under preemptive fixed-priority scheduling with release
// jitter and overheads, using the fixed-point iteration
//
//	R = C'ₑ + Bₑ + Σ_{j ∈ hp(e)} ⌈(R + Jⱼ)/Tⱼ⌉ · C'ⱼ
//	             + Σ_{j ∈ lp(e), timer} ⌈(R + Jⱼ)/Tⱼ⌉ · rel(j)
//
// where C' are overhead-inflated budgets, Bₑ is the non-preemptible
// kernel-segment blocking term, and rel(j) is the release-path cost a
// lower-priority timer release charges regardless of priority. The
// second result is false when the iteration exceeds the entity's
// deadline budget (D − Jitter), i.e. the entity is unschedulable.
//
// The returned response time is measured from the entity's own
// release (jitter excluded); the chain constraint is R + Jitter ≤ D.
func (cs *CoreSet) ResponseTime(e *Entity, m *overhead.Model) (timeq.Time, bool) {
	r, ok, _ := cs.responseTime(e, m, 0)
	return r, ok
}

// responseTime is the solver behind ResponseTime, extended with a
// warm-start value and an iteration count (consumed by the incremental
// admission Context). start must be a lower bound on the least fixed
// point — e.g. the converged response time of the same entity in a
// system with strictly fewer entities and no larger overhead terms.
// The iteration R ← f(R) is monotone, so from any point at or below
// the least fixed point it converges to exactly that fixed point: the
// result is identical to a cold start, only fewer iterations are
// spent. A start of 0 reproduces the cold start bit for bit.
func (cs *CoreSet) responseTime(e *Entity, m *overhead.Model, start timeq.Time) (timeq.Time, bool, int) {
	cs.ensureCosts(m)
	self := -1
	for i, o := range cs.Entities {
		if o == e {
			self = i
			break
		}
	}
	limit := e.D - e.Jitter
	var base timeq.Time
	if self >= 0 {
		base = timeq.AddSat(cs.infl[self], cs.blocking[self])
	} else {
		// Entity not hosted here (defensive; callers always solve an
		// entity on its own set).
		base = timeq.AddSat(cs.InflatedCost(e, m), cs.Blocking(e, m))
	}
	if base > limit {
		return base, false, 0
	}
	relCost := cs.relCost
	ep := e.LocalPriority
	// Per-solve struct-of-arrays setup: classify every entity's
	// interference against e once — coef[j] is the inflated budget for
	// higher-priority entities, the release-path cost for
	// lower-priority timer releases, and 0 for everything inert (e
	// itself, equal priorities, migrated lower-priority arrivals) —
	// and refresh the jitter mirror (chain resolution mutates Jitter
	// without invalidating the cost cache, so it cannot live there).
	// The fixed-point loop below then touches only flat slices: a
	// skipped zero coefficient contributes exactly the zero the
	// entity-walk formulation added, so verdicts are bit-identical.
	k := len(cs.Entities)
	if cap(cs.soaJ) < k {
		cs.soaJ = make([]timeq.Time, k)
		cs.soaCoef = make([]timeq.Time, k)
	}
	jit := cs.soaJ[:k]
	coef := cs.soaCoef[:k]
	if cs.prioNarrow {
		ep32 := int32(ep)
		for j, o := range cs.Entities {
			jit[j] = o.Jitter
			p := cs.soaPrio[j]
			switch {
			case j == self:
				coef[j] = 0
			case p < ep32:
				coef[j] = cs.infl[j]
			case relCost > 0 && p > ep32 && !cs.soaMigr[j]:
				coef[j] = relCost
			default:
				coef[j] = 0
			}
		}
	} else {
		for j, o := range cs.Entities {
			jit[j] = o.Jitter
			switch {
			case j == self:
				coef[j] = 0
			case o.LocalPriority < ep:
				coef[j] = cs.infl[j]
			case relCost > 0 && o.LocalPriority > ep && !o.MigrIn:
				coef[j] = relCost
			default:
				coef[j] = 0
			}
		}
	}
	periods := cs.soaT[:k]
	r := base
	if start > r {
		r = start
	}
	for iter := 0; iter < 10000; iter++ {
		total := base
		for j := 0; j < k; j++ {
			c := coef[j]
			if c == 0 {
				continue
			}
			n := timeq.CeilDiv(r+jit[j], periods[j])
			total = timeq.AddSat(total, timeq.MulCount(c, n))
		}
		if total == r {
			// A cold start can only converge at r ≤ limit (larger
			// totals exit below first); a warm start may land on a
			// fixed point beyond a limit that shrank since the start
			// value converged, which must still report unschedulable.
			return r, r <= limit, iter + 1
		}
		if total > limit {
			return total, false, iter + 1
		}
		r = total
	}
	// Non-convergence within the iteration cap means effective
	// utilization ≥ 1 at this priority level; report unschedulable.
	return timeq.Infinity, false, 10000
}

// CoreSchedulable reports whether every entity on the core meets its
// deadline budget under the model.
func (cs *CoreSet) CoreSchedulable(m *overhead.Model) bool {
	for _, e := range cs.Entities {
		if _, ok := cs.ResponseTime(e, m); !ok {
			return false
		}
	}
	return true
}

// LiuLaylandBound returns the classic RM utilization bound
// n(2^{1/n} − 1) for n tasks; 1.0 for n ≤ 1. This is the per-core
// threshold Θ(n) that the SPA algorithms fill each processor to.
func LiuLaylandBound(n int) float64 {
	if n <= 1 {
		return 1.0
	}
	fn := float64(n)
	return fn * (math.Pow(2, 1/fn) - 1)
}

// CoreUtilizationSchedulable is the Liu & Layland sufficient test:
// the core is schedulable if its budget utilization does not exceed
// Θ(n). Only meaningful for the overhead-free setting; the
// overhead-aware path uses exact RTA.
func (cs *CoreSet) CoreUtilizationSchedulable() bool {
	return cs.Utilization() <= LiuLaylandBound(len(cs.Entities))+1e-12
}

// CoreHyperbolicSchedulable is Bini & Buttazzo's hyperbolic bound:
// Π(Uᵢ + 1) ≤ 2 suffices for RM schedulability with implicit
// deadlines. It is strictly less pessimistic than Liu & Layland and
// still O(n), so it serves as a fast sufficient pre-filter before
// exact RTA.
func (cs *CoreSet) CoreHyperbolicSchedulable() bool {
	p := 1.0
	for _, e := range cs.Entities {
		if e.D < e.T || e.Jitter > 0 {
			return false // bound only valid for implicit deadlines
		}
		p *= float64(e.C)/float64(e.T) + 1
	}
	return p <= 2+1e-12
}
