package analysis

import (
	"math"

	"repro/internal/overhead"
	"repro/internal/timeq"
)

// ResponseTime computes the worst-case response time of entity e on
// core cs under preemptive fixed-priority scheduling with release
// jitter and overheads, using the fixed-point iteration
//
//	R = C'ₑ + Bₑ + Σ_{j ∈ hp(e)} ⌈(R + Jⱼ)/Tⱼ⌉ · C'ⱼ
//	             + Σ_{j ∈ lp(e), timer} ⌈(R + Jⱼ)/Tⱼ⌉ · rel(j)
//
// where C' are overhead-inflated budgets, Bₑ is the non-preemptible
// kernel-segment blocking term, and rel(j) is the release-path cost a
// lower-priority timer release charges regardless of priority. The
// second result is false when the iteration exceeds the entity's
// deadline budget (D − Jitter), i.e. the entity is unschedulable.
//
// The returned response time is measured from the entity's own
// release (jitter excluded); the chain constraint is R + Jitter ≤ D.
func (cs *CoreSet) ResponseTime(e *Entity, m *overhead.Model) (timeq.Time, bool) {
	limit := e.D - e.Jitter
	base := timeq.AddSat(cs.InflatedCost(e, m), cs.Blocking(e, m))
	if base > limit {
		return base, false
	}
	hp := cs.hp(e)
	hpCost := make([]timeq.Time, len(hp))
	for i, j := range hp {
		hpCost[i] = cs.InflatedCost(j, m)
	}
	lp := cs.lpTimer(e)
	relCost := cs.ReleaseCost(m)
	r := base
	for iter := 0; iter < 10000; iter++ {
		total := base
		for i, j := range hp {
			n := timeq.CeilDiv(r+j.Jitter, j.T)
			total = timeq.AddSat(total, timeq.MulCount(hpCost[i], n))
		}
		if relCost > 0 {
			for _, j := range lp {
				n := timeq.CeilDiv(r+j.Jitter, j.T)
				total = timeq.AddSat(total, timeq.MulCount(relCost, n))
			}
		}
		if total == r {
			return r, true
		}
		if total > limit {
			return total, false
		}
		r = total
	}
	// Non-convergence within the iteration cap means effective
	// utilization ≥ 1 at this priority level; report unschedulable.
	return timeq.Infinity, false
}

// CoreSchedulable reports whether every entity on the core meets its
// deadline budget under the model.
func (cs *CoreSet) CoreSchedulable(m *overhead.Model) bool {
	for _, e := range cs.Entities {
		if _, ok := cs.ResponseTime(e, m); !ok {
			return false
		}
	}
	return true
}

// LiuLaylandBound returns the classic RM utilization bound
// n(2^{1/n} − 1) for n tasks; 1.0 for n ≤ 1. This is the per-core
// threshold Θ(n) that the SPA algorithms fill each processor to.
func LiuLaylandBound(n int) float64 {
	if n <= 1 {
		return 1.0
	}
	fn := float64(n)
	return fn * (math.Pow(2, 1/fn) - 1)
}

// CoreUtilizationSchedulable is the Liu & Layland sufficient test:
// the core is schedulable if its budget utilization does not exceed
// Θ(n). Only meaningful for the overhead-free setting; the
// overhead-aware path uses exact RTA.
func (cs *CoreSet) CoreUtilizationSchedulable() bool {
	return cs.Utilization() <= LiuLaylandBound(len(cs.Entities))+1e-12
}

// CoreHyperbolicSchedulable is Bini & Buttazzo's hyperbolic bound:
// Π(Uᵢ + 1) ≤ 2 suffices for RM schedulability with implicit
// deadlines. It is strictly less pessimistic than Liu & Layland and
// still O(n), so it serves as a fast sufficient pre-filter before
// exact RTA.
func (cs *CoreSet) CoreHyperbolicSchedulable() bool {
	p := 1.0
	for _, e := range cs.Entities {
		if e.D < e.T || e.Jitter > 0 {
			return false // bound only valid for implicit deadlines
		}
		p *= float64(e.C)/float64(e.T) + 1
	}
	return p <= 2+1e-12
}
