package analysis

import (
	"testing"

	"repro/internal/overhead"
	"repro/internal/task"
	"repro/internal/timeq"
)

func TestSelfCheckWrapperEngaged(t *testing.T) {
	withSelfCheck(t, func() {
		a := task.NewAssignment(2)
		ctx := FixedPriorityRTA.NewContext(a, overhead.Zero())
		if _, ok := ctx.(*checkedContext); !ok {
			t.Fatalf("SelfCheck did not wrap the context: %T", ctx)
		}
		tk := &task.Task{ID: 1, WCET: timeq.Millisecond, Period: 10 * timeq.Millisecond, Priority: 1}
		inner := ctx.(*checkedContext).ctx.(*fpContext)
		if !ctx.TryPlace(tk, 0) {
			t.Fatal("trivial placement must fit")
		}
		ctx.Commit()
		// Sabotage the committed warm slot with an overshooting value;
		// warm starts never lower a converged fixed point below the
		// cold result, and the shadow would panic on any divergence.
		inner.sets[0].Entities[0].warmR = 9 * timeq.Millisecond
		tk2 := &task.Task{ID: 2, WCET: timeq.Millisecond, Period: 20 * timeq.Millisecond, Priority: 2}
		if !ctx.TryPlace(tk2, 0) {
			t.Fatal("second placement must fit")
		}
		ctx.Commit()
		if !ctx.Schedulable() {
			t.Fatal("assignment must stay schedulable")
		}
	})
}
