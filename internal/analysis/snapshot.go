// Copy-on-write admission snapshots: the lock-free concurrent read
// path of the analysis layer.
//
// A Context serializes every mutation behind one owner goroutine, so
// a service front-ending it (admitd) could only ever answer as fast
// as that single goroutine. Admission workloads are overwhelmingly
// read probes — "would this task fit right now?" — punctuated by
// rare commits, which is exactly the shape read-copy-update exploits:
// the owner publishes an immutable Snapshot of the committed state on
// every committed mutation, and any number of goroutines probe the
// latest snapshot concurrently, without locks and without entering
// the owner's serialization.
//
// # Copy-on-write discipline
//
// Publication is cheap because the contexts maintain their committed
// state copy-on-write: committed per-core entity slices, the
// assignment's per-core task lists and the split list are never
// mutated in place once published — an insert or removal builds a
// fresh slice, and tail-appends only ever write beyond every
// published length. A publish therefore copies O(cores) slice
// headers, not O(tasks) entities; only state a mutation dirtied is
// rebuilt (a core's warm-value vector, a chain's entity clones).
//
// # What readers may touch
//
// Shared entities have two classes of fields: the immutable analysis
// parameters (C, T, D, priority, part flags) and the owner's mutable
// accelerator slots (warm fixed-point values, chain jitters). Readers
// never touch the latter on shared entities: warm values are captured
// into the snapshot's own per-core vectors at publish time, and chain
// entities — whose Jitter the owner's resolutions rewrite — are
// cloned at publish time with the committed jitters baked in. A probe
// that needs to run its own jitter resolution clones the chains again
// probe-locally, so concurrent probes on one snapshot never share
// mutable state.
//
// # Decision identity
//
// Snapshot verdicts are bit-identical to the stateless Analyzer on
// the snapshot's assignment, by the same arguments as the owning
// Context: warm starts are converged values of the committed system,
// which a probe only extends (monotone fixed points converge to the
// same least fixed point from any value at or below it), and
// non-monotone overhead models disable warm starts entirely. The
// fork differential and racing fuzz tests enforce this.
package analysis

import (
	"sync"
	"sync/atomic"

	"repro/internal/overhead"
	"repro/internal/task"
	"repro/internal/timeq"
)

// Snapshot is an immutable, concurrently shareable view of a
// Context's committed state. All methods are safe to call from any
// number of goroutines; none of them mutate the owning context or
// the snapshot. Probes answer exactly as the stateless Analyzer
// would on the snapshot's assignment.
type Snapshot interface {
	// Analyzer returns the analyzer whose test this snapshot runs.
	Analyzer() Analyzer
	// Seq is the committed-mutation sequence number the snapshot was
	// published at; two forks with equal Seq are the same snapshot.
	Seq() int64
	// NumCores returns the assignment's core count.
	NumCores() int
	// NumTasks returns the number of committed tasks (whole + split).
	NumTasks() int
	// TryPlace reports whether core c would still admit t, without
	// changing any state.
	TryPlace(t *task.Task, c int) bool
	// TrySplit reports whether core c would still admit with the
	// split installed, without changing any state.
	TrySplit(sp *task.Split, c int) bool
	// Prober returns a probe evaluator bound to this snapshot that
	// answers exactly like TryPlace/TrySplit but pins one set of
	// goroutine-local scratch across calls, so a batch of K probes
	// runs without per-probe pool traffic. A Prober is not safe for
	// concurrent use; Close returns the scratch (the snapshot itself
	// remains valid).
	Prober() Prober
	// Schedulable runs the full admission test on the committed
	// state. It is computed at most once per snapshot and cached.
	Schedulable() bool
	// RangeTasks calls f for every committed whole-task placement.
	RangeTasks(f func(t *task.Task, core int))
	// RangeSplits calls f for every committed split.
	RangeSplits(f func(sp *task.Split))
	// CoreUtilization returns the committed per-core budget
	// utilizations (freshly allocated; the caller owns it).
	CoreUtilization() []float64
	// CloneAssignment materializes a private copy of the committed
	// assignment: fresh per-core and split slices sharing the
	// immutable task/split objects. Safe to mutate and analyze with
	// the stateless Analyzer (the differential tests replay snapshot
	// verdicts through it).
	CloneAssignment() *task.Assignment
	// Stats returns the owning context's writer-side admission
	// counters as of publication. Read-side work is accounted
	// separately (Context.ReadStats).
	Stats() AdmissionStats
}

// snapView is the assignment view and bookkeeping shared by both
// concrete snapshots.
type snapView struct {
	an     Analyzer
	m      *overhead.Model
	mono   bool
	seq    int64
	ncores int
	maxN   int

	normal [][]*task.Task // committed per-core task lists (immutable)
	splits []*task.Split  // committed splits (immutable)

	stats AdmissionStats
	rs    *Collector // read-side counters, shared with the owning context

	// The full-test verdict: derived by the publisher when the
	// mutation allows it (see deriveSched), otherwise computed at most
	// once by the first reader that asks. schedDone is set after
	// schedOK is, so a true load of schedDone makes schedOK safe to
	// read from any goroutine.
	schedOnce sync.Once
	schedOK   bool
	schedDone atomic.Bool
}

// pubHint tells the publisher what the committed mutation was, so the
// new snapshot can inherit the full-test verdict instead of leaving
// it to a reader's lazy recomputation.
type pubHint int

const (
	// pubUnknown derives nothing (splits, unprobed placements,
	// restores).
	pubUnknown pubHint = iota
	// pubAdmitted is a committed whole-task probe with a known
	// verdict.
	pubAdmitted
	// pubRemoved is a committed removal.
	pubRemoved
)

// deriveSched inherits the full-test verdict across one committed
// mutation when that is sound:
//
//   - A whole-task commit with no split chains: the cores are
//     decoupled except through the shared queue bound N, so if N did
//     not change, every other core's test is literally unchanged and
//     the new core's verdict is the probe's. A failing probe makes
//     the whole state unschedulable regardless of N.
//   - A removal under a monotone model: shrinking the system only
//     shrinks every interference, blocking and queue-cost term, so a
//     schedulable state stays schedulable.
//
// Anything else leaves the verdict to the lazy reader-side compute.
func (v *snapView) deriveSched(prev *snapView, hint pubHint, fits, chains bool) {
	know := func(ok bool) {
		v.schedOK = ok
		v.schedDone.Store(true)
	}
	switch hint {
	case pubAdmitted:
		if chains {
			return
		}
		if !fits {
			know(false)
			return
		}
		if prev != nil && prev.schedDone.Load() && v.maxN == prev.maxN {
			know(prev.schedOK)
		}
	case pubRemoved:
		if v.mono && prev != nil && prev.schedDone.Load() && prev.schedOK {
			know(true)
		}
	}
}

func (v *snapView) Analyzer() Analyzer    { return v.an }
func (v *snapView) Seq() int64            { return v.seq }
func (v *snapView) NumCores() int         { return v.ncores }
func (v *snapView) Stats() AdmissionStats { return v.stats }

func (v *snapView) NumTasks() int {
	n := len(v.splits)
	for _, ts := range v.normal {
		n += len(ts)
	}
	return n
}

func (v *snapView) RangeTasks(f func(t *task.Task, core int)) {
	for c, ts := range v.normal {
		for _, t := range ts {
			f(t, c)
		}
	}
}

func (v *snapView) RangeSplits(f func(sp *task.Split)) {
	for _, sp := range v.splits {
		f(sp)
	}
}

func (v *snapView) CoreUtilization() []float64 {
	u := make([]float64, v.ncores)
	for c, ts := range v.normal {
		for _, t := range ts {
			u[c] += t.Utilization()
		}
	}
	for _, sp := range v.splits {
		for _, p := range sp.Parts {
			u[p.Core] += float64(p.Budget) / float64(sp.Task.Period)
		}
	}
	return u
}

func (v *snapView) CloneAssignment() *task.Assignment {
	a := task.NewAssignment(v.ncores)
	a.Policy = v.an.Policy()
	for c, ts := range v.normal {
		a.Normal[c] = append([]*task.Task(nil), ts...)
	}
	a.Splits = append([]*task.Split(nil), v.splits...)
	return a
}

// captureView fills the shared view fields from a context's committed
// state; runs on the owner.
func (v *snapView) captureView(b *ctxBase, seq int64) {
	v.an, v.m, v.mono = b.an, b.m, b.mono
	v.seq = seq
	v.ncores = b.a.NumCores
	if v.normal == nil {
		v.normal = make([][]*task.Task, v.ncores)
	}
	copy(v.normal, b.a.Normal)
	v.splits = b.a.Splits[:len(b.a.Splits):len(b.a.Splits)]
	v.stats = b.stats
	v.rs = &b.readStats
}

// --- probe verdict memoization ---------------------------------------

// probeKey identifies a whole-task probe up to everything its verdict
// depends on besides the (immutable) core state: the task's analysis
// parameters. Two tasks with equal parameters get identical verdicts
// on the same snapshot core — admission is a pure function — so the
// verdict can be memoized. This is an optimization only immutability
// makes trivially correct: the mutable context would need
// invalidation bookkeeping on every commit, the snapshot's cache
// simply dies with (or outlives, see publish) the core record.
type probeKey struct {
	c, t, d timeq.Time
	prio    int
	wss     int64
}

func probeKeyOf(t *task.Task) probeKey {
	return probeKey{c: t.WCET, t: t.Period, d: t.EffectiveDeadline(), prio: t.Priority, wss: t.WSS}
}

// probeCache memoizes per-core whole-task probe verdicts. It is
// shared by every goroutine probing the snapshot, and carried over to
// the next snapshot for cores whose published record (and the global
// queue bound) did not change — repeated admission tries of the same
// task shapes, the bread and butter of admission control traffic,
// then cost a hash lookup. Size-capped as a backstop against
// unbounded task-shape diversity.
//
// The cache is an insert-only open-addressing hash table tuned for
// the read path: a lookup is linear probing over a published slot
// array with one atomic load per slot and zero allocations (a
// sync.Map here would box the struct key on every Load — one heap
// allocation per probe on the hottest path in the system). Writers
// run on the miss path, which just paid a full admission solve, so
// they simply serialize on a mutex; each entry becomes visible
// through a release store of its slot state that reader acquire
// loads observe, and nothing is ever deleted or moved within a
// table, so a reader either finds a fully published entry or stops
// at an empty slot and reports a miss.
type probeCache struct {
	tab atomic.Pointer[probeTable]
	mu  sync.Mutex // serializes store and growth
}

type probeTable struct {
	slots []probeSlot // power-of-two length
	used  int         // completed inserts; guarded by probeCache.mu
}

type probeSlot struct {
	state   atomic.Uint32 // slotEmpty or slotReady
	verdict bool
	key     probeKey
}

const (
	slotEmpty uint32 = iota
	slotReady
)

const (
	probeCacheCap  = 8192 // max memoized verdicts per core record
	probeTableInit = 8    // initial slot count (see store)
)

// hash mixes the key's five words Fibonacci-style; quality only
// affects probe-chain length, not correctness.
func (k probeKey) hash() uint64 {
	const m = 0x9e3779b97f4a7c15
	h := (uint64(k.c) ^ 0x8f1bbcdcbfa53e0b) * m
	h = (h ^ uint64(k.t)) * m
	h = (h ^ uint64(k.d)) * m
	h = (h ^ uint64(k.prio)) * m
	h = (h ^ uint64(k.wss)) * m
	return h ^ (h >> 32)
}

func (pc *probeCache) lookup(k probeKey) (bool, bool) {
	t := pc.tab.Load()
	if t == nil {
		return false, false
	}
	mask := uint64(len(t.slots) - 1)
	h := k.hash()
	for i := 0; i < len(t.slots); i++ {
		s := &t.slots[(h+uint64(i))&mask]
		if s.state.Load() != slotReady {
			// Insert-only: an empty slot ends k's probe chain. (The
			// entry may be mid-publication by a concurrent writer —
			// that is a plain miss; the storer re-checks under the
			// mutex, so no duplicate is inserted.)
			return false, false
		}
		if s.key == k {
			return s.verdict, true
		}
	}
	return false, false
}

// store publishes a solved verdict. The initial table is deliberately
// tiny: a core dirtied by steady commit churn gets a fresh probeCache
// every publish and sees only a handful of distinct probes before the
// next commit discards it, so the common table is a few hundred bytes
// of short-lived garbage, not a kilobytes-scale slab (a 64-slot
// initial table measured ~10% of the session read mix in allocation
// and cold-write cost). Long-lived records grow by doubling as their
// memo fills.
func (pc *probeCache) store(k probeKey, verdict bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	t := pc.tab.Load()
	if t == nil {
		t = &probeTable{slots: make([]probeSlot, probeTableInit)}
		pc.tab.Store(t)
	}
	if t.used >= probeCacheCap {
		return
	}
	// Grow at 3/4 load: readers keep probing the old table until the
	// new one is published; entries are copied, never mutated.
	if t.used >= len(t.slots)*3/4 {
		nt := &probeTable{slots: make([]probeSlot, 2*len(t.slots)), used: 0}
		for i := range t.slots {
			s := &t.slots[i]
			if s.state.Load() == slotReady && nt.insert(s.key, s.verdict) {
				nt.used++
			}
		}
		pc.tab.Store(nt)
		t = nt
	}
	if t.insert(k, verdict) {
		t.used++
	}
}

// insert publishes (k, verdict) in the first free slot of k's probe
// chain; false if the key is already present. Caller holds the mutex
// (or owns the table exclusively, during growth).
func (t *probeTable) insert(k probeKey, verdict bool) bool {
	mask := uint64(len(t.slots) - 1)
	for h := k.hash(); ; h++ {
		s := &t.slots[h&mask]
		if s.state.Load() == slotReady {
			if s.key == k {
				return false
			}
			continue
		}
		s.key = k
		s.verdict = verdict
		s.state.Store(slotReady) // release: payload above is now visible
		return true
	}
}

// --- fixed-priority snapshot -----------------------------------------

// fpSnapCore is one core's published state: the priority-sorted
// committed entities (chain entities replaced by snapshot-owned
// clones), the committed converged response times parallel to ents
// (nil under a non-monotone model; backed by the refcounted wbuf),
// and the core's probe-verdict memo.
type fpSnapCore struct {
	ents     []*Entity
	warm     []timeq.Time
	cacheMax timeq.Time
	probes   *probeCache
}

// fpSnapChain is one published split chain: snapshot-owned entity
// clones (committed jitters baked in) and their host cores.
type fpSnapChain struct {
	sp    *task.Split
	ents  []*Entity
	cores []int
}

type fpSnapshot struct {
	snapView
	cores  []fpSnapCore
	chains []fpSnapChain
}

// Prober is a goroutine-local probe evaluator bound to one snapshot;
// see Snapshot.Prober.
type Prober interface {
	TryPlace(t *task.Task, c int) bool
	TrySplit(sp *task.Split, c int) bool
	Close()
}

// fpProbeScratch is the pooled allocation behind every fixed-priority
// snapshot probe: the tentative entity and its one-element placement
// slices, the single-core probe view of the no-chain fast path, and
// the per-core views, chain-clone slabs and failure map of the chain
// path. Everything a probe touches lives here or in the (immutable)
// snapshot, so steady-state probes allocate nothing.
type fpProbeScratch struct {
	ent      Entity
	addEnts  [1]*Entity
	addCores [1]int
	view     probeView // no-chain single-core path

	// chain-path scratch
	views     []probeView
	chains    []fpSnapChain
	cloneSlab []Entity  // chain-entity clones (jitters mutable)
	clonePtrs []*Entity // pointers into cloneSlab, sliced per chain
	failed    map[*Entity]bool

	// tentative split chain (TrySplit)
	split      fpChain
	splitEnts  []Entity
	splitPtrs  []*Entity
	splitCores []int
}

// buildChain is buildFPChain into the scratch slabs; the entities'
// analysis parameters are filled identically.
func (sc *fpProbeScratch) buildChain(sp *task.Split) *fpChain {
	n := len(sp.Parts)
	if cap(sc.splitEnts) < n {
		sc.splitEnts = make([]Entity, n)
		sc.splitPtrs = make([]*Entity, n)
		sc.splitCores = make([]int, n)
	}
	ents, ptrs, cores := sc.splitEnts[:n], sc.splitPtrs[:n], sc.splitCores[:n]
	last := n - 1
	for i, p := range sp.Parts {
		ents[i] = Entity{
			Task:           sp.Task,
			C:              p.Budget,
			T:              sp.Task.Period,
			D:              sp.Task.EffectiveDeadline(),
			LocalPriority:  sp.LocalPriority(),
			PartIndex:      i,
			MigrIn:         i > 0,
			MigrOut:        i < last,
			RemoteSleepAdd: i == last,
		}
		ptrs[i] = &ents[i]
		cores[i] = p.Core
	}
	sc.split = fpChain{sp: sp, ents: ptrs, cores: cores}
	return &sc.split
}

// fpProber binds pooled scratch to one snapshot across many probes.
type fpProber struct {
	s  *fpSnapshot
	sc *fpProbeScratch
}

var fpProberPool = sync.Pool{New: func() any { return &fpProber{sc: new(fpProbeScratch)} }}

func (s *fpSnapshot) Prober() Prober {
	p := fpProberPool.Get().(*fpProber)
	p.s = s
	return p
}

func (p *fpProber) Close() {
	p.s = nil
	fpProberPool.Put(p)
}

func (p *fpProber) TryPlace(t *task.Task, c int) bool {
	s := p.s
	if c < 0 || c >= s.ncores {
		return false
	}
	// Whole-task probes on chain-free snapshots are pure per-core
	// functions of the task parameters: serve repeats from the memo.
	pc := s.cores[c].probes
	useMemo := pc != nil && len(s.chains) == 0
	var key probeKey
	if useMemo {
		key = probeKeyOf(t)
		if ok, hit := pc.lookup(key); hit {
			s.rs.Add(AdmissionStats{Probes: 1, CoreTests: 1, VerdictHits: 1})
			return ok
		}
	}
	run := fpProbe{s: s, sc: p.sc}
	run.stats.Probes++
	e := newFPEntityInto(&p.sc.ent, t)
	p.sc.addEnts[0], p.sc.addCores[0] = e, c
	ok := run.run(p.sc.addEnts[:], p.sc.addCores[:], nil, c)
	s.rs.Add(run.stats)
	if useMemo {
		pc.store(key, ok)
	}
	return ok
}

func (p *fpProber) TrySplit(sp *task.Split, c int) bool {
	s := p.s
	if c < 0 || c >= s.ncores {
		return false
	}
	run := fpProbe{s: s, sc: p.sc}
	run.stats.Probes++
	ch := p.sc.buildChain(sp)
	ok := run.run(ch.ents, ch.cores, ch, c)
	s.rs.Add(run.stats)
	return ok
}

// fpProbe is the state of one snapshot probe evaluation: a per-core
// view of the probe state (committed entities, chain clones and
// tentative entities merged in) with a probe-local warm vector, all
// backed by the pooled scratch.
type fpProbe struct {
	s      *fpSnapshot
	sc     *fpProbeScratch
	views  []probeView
	chains []fpSnapChain    // probe-local clones (jitters mutable)
	failed map[*Entity]bool // cleared scratch map; grown by resolve
	stats  AdmissionStats   // folded into s.rs at the end
}

type probeView struct {
	cs   CoreSet
	warm []timeq.Time
}

func (s *fpSnapshot) TryPlace(t *task.Task, c int) bool {
	p := s.Prober().(*fpProber)
	ok := p.TryPlace(t, c)
	p.Close()
	return ok
}

func (s *fpSnapshot) TrySplit(sp *task.Split, c int) bool {
	p := s.Prober().(*fpProber)
	ok := p.TrySplit(sp, c)
	p.Close()
	return ok
}

// probeN mirrors fpContext.probeN on the snapshot state: the
// committed bound, raised by any core the probe tentatively grows
// past it.
func (s *fpSnapshot) probeN(addCores []int) int {
	n := s.maxN
	for c := range s.cores {
		grow := 0
		for _, d := range addCores {
			if d == c {
				grow++
			}
		}
		if k := len(s.cores[c].ents) + grow; k > n {
			n = k
		}
	}
	return n
}

// run evaluates one probe: tentative entities add placed on addCores
// (and, for splits, the tentative chain), verdict for probeCore. It
// mirrors fpContext.TryPlace/TrySplit on the probe state, with every
// mutable accelerator probe-local (backed by the pooled scratch, so
// steady-state probes allocate nothing on either path).
func (p *fpProbe) run(add []*Entity, addCores []int, tentChain *fpChain, probeCore int) bool {
	s := p.s
	probeN := s.probeN(addCores)
	if len(s.chains) == 0 && tentChain == nil {
		// No chains, no cross-core coupling: probe core c alone
		// (mirrors the stateless fast path and the context's),
		// in the scratch view (the CoreSet keeps its cost buffers;
		// fillView re-keys them).
		v := &p.sc.view
		p.fillView(v, probeCore, add, addCores, probeN)
		return p.evalCore(v, nil)
	}
	// Build views for every core; clone the chains probe-locally so
	// the resolution below never writes shared state.
	p.buildViews(add, addCores, probeN)
	p.cloneChains(tentChain)
	p.resolve()
	ok := p.evalCore(&p.views[probeCore], p.failed)
	p.sc.failed = p.failed // retain the lazily grown map
	return ok
}

// buildViews assembles every core's probe-state view (committed
// entities plus any tentative entities hosted there, probe-local warm
// vectors initialized from the snapshot's committed values) in the
// scratch view slab.
func (p *fpProbe) buildViews(add []*Entity, addCores []int, probeN int) {
	s, sc := p.s, p.sc
	if cap(sc.views) < s.ncores {
		sc.views = make([]probeView, s.ncores)
	}
	sc.views = sc.views[:s.ncores]
	p.views = sc.views
	for c := range p.views {
		p.fillView(&p.views[c], c, add, addCores, probeN)
	}
}

// cloneChains clones the snapshot's chains into the scratch slabs
// (committed jitters baked in at publish; the resolution mutates the
// clones' jitters), swaps the clones into the views, appends the
// tentative chain if any, and hands the cleared failure map to the
// resolution.
func (p *fpProbe) cloneChains(tentChain *fpChain) {
	s, sc := p.s, p.sc
	nclone := 0
	for _, ch := range s.chains {
		nclone += len(ch.ents)
	}
	if cap(sc.cloneSlab) < nclone {
		sc.cloneSlab = make([]Entity, nclone)
		sc.clonePtrs = make([]*Entity, nclone)
	}
	clones, ptrs := sc.cloneSlab[:nclone], sc.clonePtrs[:nclone]
	p.chains = sc.chains[:0]
	off := 0
	for _, ch := range s.chains {
		n := len(ch.ents)
		cents := ptrs[off : off+n : off+n]
		for i, e := range ch.ents {
			ce := &clones[off+i]
			*ce = *e
			cents[i] = ce
			p.swapEntity(ch.cores[i], e, ce)
		}
		off += n
		p.chains = append(p.chains, fpSnapChain{sp: ch.sp, cores: ch.cores, ents: cents})
	}
	if tentChain != nil {
		p.chains = append(p.chains, fpSnapChain{sp: tentChain.sp, ents: tentChain.ents, cores: tentChain.cores})
	}
	sc.chains = p.chains[:0]
	if sc.failed != nil {
		clear(sc.failed)
	}
	p.failed = sc.failed
}

// fillView is buildView into caller-provided (possibly pooled)
// scratch; the view's cost caches are invalidated, never trusted.
func (p *fpProbe) fillView(v *probeView, c int, add []*Entity, addCores []int, probeN int) {
	s := p.s
	base := &s.cores[c]
	ents := append(v.cs.Entities[:0], base.ents...)
	warm := v.warm[:0]
	if s.mono && base.warm != nil {
		warm = append(warm, base.warm...)
	} else {
		for range base.ents {
			warm = append(warm, 0)
		}
	}
	cm := base.cacheMax
	for i, e := range add {
		if addCores[i] != c {
			continue
		}
		ents, warm = insertByPriorityWarm(ents, warm, e, 0)
		if d := s.m.Cache.MaxDelay(e.Task.WSS); d > cm {
			cm = d
		}
	}
	v.warm = warm
	v.cs.Entities = ents
	v.cs.N = probeN
	v.cs.CacheMax = cm
	v.cs.invalidateCosts()
}

// insertByPriorityWarm is insertByPriority keeping a warm vector
// parallel to the entity slice.
func insertByPriorityWarm(ents []*Entity, warm []timeq.Time, e *Entity, w timeq.Time) ([]*Entity, []timeq.Time) {
	i := 0
	for i < len(ents) && ents[i].LocalPriority <= e.LocalPriority {
		i++
	}
	ents = append(ents, nil)
	copy(ents[i+1:], ents[i:])
	ents[i] = e
	warm = append(warm, 0)
	copy(warm[i+1:], warm[i:])
	warm[i] = w
	return ents, warm
}

// swapEntity replaces a shared chain entity with its probe-local
// clone in core c's view, carrying the warm value over.
func (p *fpProbe) swapEntity(c int, old, clone *Entity) {
	v := &p.views[c]
	for i, e := range v.cs.Entities {
		if e == old {
			v.cs.Entities[i] = clone
			return
		}
	}
}

// solve runs one response-time fixed point warm-started from the
// probe-local vector, recording the converged value back into it.
func (p *fpProbe) solve(v *probeView, idx int) (timeq.Time, bool) {
	var start timeq.Time
	if p.s.mono {
		start = v.warm[idx]
	}
	e := v.cs.Entities[idx]
	r, ok, iters := v.cs.responseTime(e, p.s.m, start)
	p.stats.FPSolves++
	p.stats.FPIterations += int64(iters)
	if start > 0 {
		p.stats.WarmStarts++
	}
	if ok && p.s.mono {
		v.warm[idx] = r
	}
	return r, ok
}

// evalCore mirrors fpContext.evalCore on a probe view.
func (p *fpProbe) evalCore(v *probeView, failed map[*Entity]bool) bool {
	p.stats.CoreTests++
	for i, e := range v.cs.Entities {
		if failed != nil && failed[e] {
			return false
		}
		if _, ok := p.solve(v, i); !ok {
			return false
		}
	}
	return true
}

// resolve runs the split-chain jitter fixed point over the probe
// views, mirroring fpContext.resolve: warm-started from the committed
// jitters under a monotone model, cold from zero otherwise.
func (p *fpProbe) resolve() {
	const maxPasses = 1000
	if len(p.chains) == 0 {
		return
	}
	if !p.s.mono {
		for _, ch := range p.chains {
			for _, e := range ch.ents {
				e.Jitter = 0
			}
		}
	}
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		for _, ch := range p.chains {
			cum := timeq.Time(0)
			for i, e := range ch.ents {
				if e.Jitter != cum {
					e.Jitter = cum
					changed = true
				}
				v := &p.views[ch.cores[i]]
				idx := -1
				for k, o := range v.cs.Entities {
					if o == e {
						idx = k
						break
					}
				}
				r, ok := p.solve(v, idx)
				if !ok {
					if p.failed == nil {
						p.failed = make(map[*Entity]bool)
					}
					p.failed[e] = true
					r = e.D
				} else {
					delete(p.failed, e)
				}
				cum = timeq.AddSat(cum, r)
			}
		}
		if !changed {
			break
		}
	}
}

// Schedulable returns the full-test verdict of the committed state:
// inherited from the previous snapshot when publication could derive
// it, otherwise computed (warm-started, every core) at most once per
// snapshot by the first asker.
func (s *fpSnapshot) Schedulable() bool {
	if s.schedDone.Load() {
		return s.schedOK
	}
	s.schedOnce.Do(func() {
		pr := s.Prober().(*fpProber)
		p := fpProbe{s: s, sc: pr.sc}
		p.stats.FullTests++
		s.schedOK = p.fullTest()
		s.rs.Add(p.stats)
		pr.Close()
		s.schedDone.Store(true)
	})
	return s.schedOK
}

func (p *fpProbe) fullTest() bool {
	s := p.s
	p.buildViews(nil, nil, s.maxN)
	p.cloneChains(nil)
	p.resolve()
	p.sc.failed = p.failed
	if len(p.failed) > 0 {
		return false
	}
	for c := range p.views {
		if !p.evalCore(&p.views[c], nil) {
			return false
		}
	}
	return true
}

// --- EDF snapshot ----------------------------------------------------

// edfSnapCore is one core's published state under EDF: the canonical
// entity order (normals, then split parts), the committed demand memo
// (immutable once published; nil under a non-monotone model) and the
// cache bound.
type edfSnapCore struct {
	ents     []*Entity
	nNormals int
	cacheMax timeq.Time
	memo     *edfDemandMemo
	rev      int64 // committed content revision (cache carryover check)
	probes   *probeCache
}

type edfSnapshot struct {
	snapView
	cores []edfSnapCore
}

func (s *edfSnapshot) probeN(addCores []int) int {
	n := s.maxN
	for c := range s.cores {
		grow := 0
		for _, d := range addCores {
			if d == c {
				grow++
			}
		}
		if k := len(s.cores[c].ents) + grow; k > n {
			n = k
		}
	}
	return n
}

// edfProbeScratch is the pooled allocation behind EDF snapshot
// probes: the tentative entity, the canonical-order entity buffer,
// one CoreSet whose cost and deadline-point buffers persist across
// probes, the one-element placement core slice, and the split-part
// slabs.
type edfProbeScratch struct {
	ent      Entity
	addCores [1]int
	buf      []*Entity
	cs       CoreSet

	splitEnts  []Entity
	splitPtrs  []*Entity
	splitCores []int
}

// splitEntities is edfSplitEntities into the scratch slabs.
func (sc *edfProbeScratch) splitEntities(sp *task.Split) ([]*Entity, []int) {
	n := len(sp.Parts)
	if cap(sc.splitEnts) < n {
		sc.splitEnts = make([]Entity, n)
		sc.splitPtrs = make([]*Entity, n)
		sc.splitCores = make([]int, n)
	}
	ents, ptrs, cores := sc.splitEnts[:n], sc.splitPtrs[:n], sc.splitCores[:n]
	last := n - 1
	for i, p := range sp.Parts {
		d := sp.Task.EffectiveDeadline()
		if sp.HasWindows() {
			d = sp.Windows[i]
		}
		ents[i] = Entity{
			Task:           sp.Task,
			C:              p.Budget,
			T:              sp.Task.Period,
			D:              d,
			PartIndex:      i,
			MigrIn:         i > 0,
			MigrOut:        i < last,
			RemoteSleepAdd: i == last,
		}
		ptrs[i] = &ents[i]
		cores[i] = p.Core
	}
	return ptrs, cores
}

// edfProber binds pooled scratch to one snapshot across many probes.
type edfProber struct {
	s  *edfSnapshot
	sc *edfProbeScratch
}

var edfProberPool = sync.Pool{New: func() any { return &edfProber{sc: new(edfProbeScratch)} }}

func (s *edfSnapshot) Prober() Prober {
	p := edfProberPool.Get().(*edfProber)
	p.s = s
	return p
}

func (p *edfProber) Close() {
	p.s = nil
	edfProberPool.Put(p)
}

func (p *edfProber) TryPlace(t *task.Task, c int) bool {
	s := p.s
	if c < 0 || c >= s.ncores {
		return false
	}
	pc := s.cores[c].probes
	var key probeKey
	if pc != nil {
		key = probeKeyOf(t)
		if ok, hit := pc.lookup(key); hit {
			s.rs.Add(AdmissionStats{Probes: 1, CoreTests: 1, VerdictHits: 1})
			return ok
		}
	}
	sc := p.sc
	e := newEDFEntityInto(&sc.ent, t)
	sc.addCores[0] = c
	ok := s.evalProbe(sc, c, e, nil, nil, s.probeN(sc.addCores[:]))
	if pc != nil {
		pc.store(key, ok)
	}
	return ok
}

func (p *edfProber) TrySplit(sp *task.Split, c int) bool {
	s := p.s
	if c < 0 || c >= s.ncores {
		return false
	}
	ents, cores := p.sc.splitEntities(sp)
	return s.evalProbe(p.sc, c, nil, ents, cores, s.probeN(cores))
}

// evalProbe mirrors edfContext.evalProbe on the snapshot: the probe
// set assembled in the canonical order within the scratch buffers,
// the committed memo reused read-only (concurrent readers may share
// it — nothing writes it, and the scratch CoreSet's point buffers
// never leak into a memo: memos own private slices).
func (s *edfSnapshot) evalProbe(sc *edfProbeScratch, c int, place *Entity, parts []*Entity, partCores []int, probeN int) bool {
	st := &s.cores[c]
	buf := sc.buf[:0]
	cm := st.cacheMax
	if place != nil {
		buf = append(buf, st.ents[:st.nNormals]...)
		buf = append(buf, place)
		buf = append(buf, st.ents[st.nNormals:]...)
		if d := s.m.Cache.MaxDelay(place.Task.WSS); d > cm {
			cm = d
		}
	} else {
		buf = append(buf, st.ents...)
		for i, e := range parts {
			if partCores[i] != c {
				continue
			}
			buf = append(buf, e)
			if d := s.m.Cache.MaxDelay(e.Task.WSS); d > cm {
				cm = d
			}
		}
	}
	sc.buf = buf[:0]
	cs := &sc.cs
	cs.Entities = buf
	cs.N = probeN
	cs.CacheMax = cm
	cs.invalidateCosts()
	var memo *edfDemandMemo
	if s.mono {
		memo = st.memo
	}
	var stats AdmissionStats
	stats.Probes, stats.CoreTests = 1, 1
	ok, _ := cs.edfSchedulable(s.m, memo, false)
	s.rs.Add(stats)
	return ok
}

func (s *edfSnapshot) TryPlace(t *task.Task, c int) bool {
	p := s.Prober().(*edfProber)
	ok := p.TryPlace(t, c)
	p.Close()
	return ok
}

func (s *edfSnapshot) TrySplit(sp *task.Split, c int) bool {
	p := s.Prober().(*edfProber)
	ok := p.TrySplit(sp, c)
	p.Close()
	return ok
}

// Schedulable mirrors edfContext.Schedulable without its verdict
// cache: windows required on every split, then the per-core demand
// test. Inherited from the previous snapshot when publication could
// derive it; computed at most once per snapshot otherwise.
func (s *edfSnapshot) Schedulable() bool {
	if s.schedDone.Load() {
		return s.schedOK
	}
	s.schedOnce.Do(func() {
		var stats AdmissionStats
		stats.FullTests++
		s.schedOK = func() bool {
			for _, sp := range s.splits {
				if !sp.HasWindows() {
					return false // EDF requires window-split tasks
				}
			}
			for c := range s.cores {
				st := &s.cores[c]
				var cs CoreSet
				cs.Entities = st.ents
				cs.N = s.maxN
				cs.CacheMax = st.cacheMax
				var memo *edfDemandMemo
				if s.mono {
					memo = st.memo
				}
				stats.CoreTests++
				if ok, _ := cs.edfSchedulable(s.m, memo, false); !ok {
					return false
				}
			}
			return true
		}()
		s.rs.Add(stats)
		s.schedDone.Store(true)
	})
	return s.schedOK
}

// --- SelfCheck shadow ------------------------------------------------

// checkedSnapshot shadows every snapshot decision with the stateless
// analyzer on a freshly materialized copy of the snapshot state; a
// divergence panics with both verdicts. Enabled by the same SelfCheck
// flag as checkedContext; test-only.
type checkedSnapshot struct {
	Snapshot
	m *overhead.Model
}

func (cs *checkedSnapshot) TryPlace(t *task.Task, c int) bool {
	got := cs.Snapshot.TryPlace(t, c)
	a := cs.CloneAssignment()
	a.Place(t, c)
	want := cs.Analyzer().CoreSchedulable(a, c, cs.m)
	if got != want {
		panic("analysis: snapshot TryPlace diverged from stateless CoreSchedulable")
	}
	return got
}

func (cs *checkedSnapshot) TrySplit(sp *task.Split, c int) bool {
	got := cs.Snapshot.TrySplit(sp, c)
	a := cs.CloneAssignment()
	a.Splits = append(a.Splits, sp)
	want := cs.Analyzer().CoreSchedulable(a, c, cs.m)
	if got != want {
		panic("analysis: snapshot TrySplit diverged from stateless CoreSchedulable")
	}
	return got
}

func (cs *checkedSnapshot) Schedulable() bool {
	got := cs.Snapshot.Schedulable()
	want := cs.Analyzer().Schedulable(cs.CloneAssignment(), cs.m)
	if got != want {
		panic("analysis: snapshot Schedulable diverged from stateless Schedulable")
	}
	return got
}

// Prober routes every probe through the checked snapshot so batched
// probes are shadow-verified too (test-only; allocates freely).
func (cs *checkedSnapshot) Prober() Prober { return &checkedProber{cs: cs} }

type checkedProber struct{ cs *checkedSnapshot }

func (p *checkedProber) TryPlace(t *task.Task, c int) bool   { return p.cs.TryPlace(t, c) }
func (p *checkedProber) TrySplit(sp *task.Split, c int) bool { return p.cs.TrySplit(sp, c) }
func (p *checkedProber) Close()                              {}
