package analysis

import (
	"math/rand"
	"testing"

	"repro/internal/overhead"
	"repro/internal/task"
)

// TestSweepInnerLoopAllocFree guards the Section-4 sweep engine's
// per-algorithm inner loop: one long-lived context rebound to a
// recycled assignment with Reset, then a full probe-all-cores packing
// pass with the cross-algorithm SweepCache attached. After warmup
// every piece — entity slabs, probe scratch, verdict memos, the
// cache's interned states — recycles, so the steady-state loop must
// not allocate at all. (Interning a never-seen core state allocates
// its trie node; that happens once per state per task-set cell, which
// is why the guard keeps the cache warm across runs, like the nine
// algorithms of one cell do.)
func TestSweepInnerLoopAllocFree(t *testing.T) {
	for _, pol := range []task.Policy{task.FixedPriority, task.EDF} {
		m := overhead.PaperModel()
		a := task.NewAssignment(4)
		a.Policy = pol
		ctx := ForPolicy(pol).NewContext(a, m)
		sc := NewSweepCache()
		ctx.SetSweepCache(sc)
		rng := rand.New(rand.NewSource(7))
		tasks := make([]*task.Task, 10)
		for i := range tasks {
			tasks[i] = probeTask(rng, int64(i+1))
		}
		assertZeroAllocs(t, pol.String()+"/sweep inner loop", func() {
			// Recycle the assignment the way partition.Arena does,
			// then rebind the context to it.
			for c := range a.Normal {
				a.Normal[c] = a.Normal[c][:0]
			}
			a.Splits = a.Splits[:0]
			ctx.Reset(a, m)
			for _, tk := range tasks {
				for c := 0; c < 4; c++ {
					if ctx.TryPlace(tk, c) {
						ctx.Commit()
						break
					}
					ctx.Rollback()
				}
			}
		})
	}
}
