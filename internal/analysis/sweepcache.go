package analysis

import (
	"repro/internal/timeq"
)

// SweepCache shares whole-task probe verdicts across admission
// contexts. The sweep pipeline runs nine partitioning algorithms over
// the same task set, and their packing loops probe the same task
// shapes against cores that — especially in the early, pre-divergence
// phase of the packing — hold exactly the same contents. A core's
// admission verdict is a pure function of (entity sequence, queue
// bound N, model), so once one algorithm has paid for a probe, every
// other algorithm reaching the identical core state gets the verdict
// for a map lookup: cross-partitioner hits are free acceptance tests.
//
// Identity, not hashing: core states are hash-consed into a trie of
// interned nodes — child(parent, shape) compares the parent pointer
// and the full entity shape exactly — so two equal state pointers mean
// two byte-identical analysis inputs. Shared verdicts are therefore
// exact, never probabilistic; decision identity with the stateless
// analyzer is preserved unconditionally (and the SelfCheck suite
// shadows it).
//
// Scope: one SweepCache is valid for one (task set, model, policy)
// cell — shapes do not encode the model or the tasks' identities, so
// the owner must Begin() it whenever either changes. Contexts attach
// it with Context.SetSweepCache; it is single-goroutine, like the
// contexts themselves (each sweep worker owns one per policy).
type SweepCache struct {
	nodes    map[sweepEdge]*sweepNode
	verdicts map[sweepProbeKey]bool
	root     sweepNode
}

// sweepShape is the full analytic fingerprint of one entity: every
// field the per-core admission test reads. Two entities with equal
// shapes are interchangeable inputs to the analysis.
type sweepShape struct {
	c, t, d timeq.Time
	wss     int64
	prio    int32
	flags   uint8
}

const (
	sweepMigrIn uint8 = 1 << iota
	sweepMigrOut
	sweepSleepAdd
	// sweepCoreTest keys a committed full-core test (Schedulable's
	// per-core pass) rather than a probe with an added entity. No real
	// entity shape collides with it: tasks have C > 0.
	sweepCoreTest
)

func sweepShapeOf(e *Entity) sweepShape {
	var f uint8
	if e.MigrIn {
		f |= sweepMigrIn
	}
	if e.MigrOut {
		f |= sweepMigrOut
	}
	if e.RemoteSleepAdd {
		f |= sweepSleepAdd
	}
	return sweepShape{c: e.C, t: e.T, d: e.D, wss: e.Task.WSS, prio: int32(e.LocalPriority), flags: f}
}

// sweepNode is an interned core state; pointer equality is state
// equality. The struct must have nonzero size so distinct nodes get
// distinct addresses.
type sweepNode struct {
	depth int32
}

// sweepEdge is the interning key: the exact state the core held
// before, plus the exact shape appended to it.
type sweepEdge struct {
	parent *sweepNode
	shape  sweepShape
}

// sweepProbeKey identifies one memoized verdict: the committed core
// state, the queue bound the evaluation ran under, and the probed
// entity's shape (or sweepCoreTest for the committed full-core test).
type sweepProbeKey struct {
	state *sweepNode
	n     int32
	shape sweepShape
}

// NewSweepCache returns an empty cache; Begin recycles it for the
// next (task set, model, policy) cell without reallocating the maps.
func NewSweepCache() *SweepCache {
	return &SweepCache{
		nodes:    make(map[sweepEdge]*sweepNode, 64),
		verdicts: make(map[sweepProbeKey]bool, 128),
	}
}

// Begin invalidates every interned state and verdict, keeping the map
// storage. Call it before each new task set (or model) the attached
// contexts are Reset to.
func (sc *SweepCache) Begin() {
	clear(sc.nodes)
	clear(sc.verdicts)
}

// child interns the state reached by appending shape to parent.
func (sc *SweepCache) child(parent *sweepNode, shape sweepShape) *sweepNode {
	k := sweepEdge{parent: parent, shape: shape}
	if n := sc.nodes[k]; n != nil {
		return n
	}
	n := &sweepNode{depth: parent.depth + 1}
	sc.nodes[k] = n
	return n
}

// fold interns the state of an entity sequence, in order. Callers
// must fold a canonical order — fixed-priority sets are sorted by
// priority (unique within a task set), EDF cores keep the canonical
// build order — so identical core contents fold to the same node in
// every context.
func (sc *SweepCache) fold(ents []*Entity) *sweepNode {
	n := &sc.root
	for _, e := range ents {
		n = sc.child(n, sweepShapeOf(e))
	}
	return n
}

// lookup returns a memoized verdict for (state, n, shape).
func (sc *SweepCache) lookup(state *sweepNode, n int, shape sweepShape) (verdict, hit bool) {
	v, ok := sc.verdicts[sweepProbeKey{state: state, n: int32(n), shape: shape}]
	return v, ok
}

// store memoizes a computed verdict for (state, n, shape).
func (sc *SweepCache) store(state *sweepNode, n int, shape sweepShape, ok bool) {
	sc.verdicts[sweepProbeKey{state: state, n: int32(n), shape: shape}] = ok
}
