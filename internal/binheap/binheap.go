// Package binheap implements a binomial heap, the data structure the
// paper uses for each core's ready queue (Section 2: "The ready queue
// is implemented by a binomial heap").
//
// The heap is a mergeable min-heap: smaller keys are extracted first,
// so the scheduler stores numeric priorities where a smaller number
// means a higher priority (rate-monotonic: shorter period, smaller
// key). Ties are broken FIFO by insertion order, matching the queueing
// behaviour of a real ready queue.
//
// All operations return or accept *Item handles, which remain valid
// across heap restructuring, so the scheduler can remove a specific
// task from the middle of the queue (e.g. when a job is aborted) in
// O(log n).
package binheap

import "fmt"

// Item is a handle to one entry in the heap. The zero Item is not
// valid; Items are created by Heap.Insert.
type Item[V any] struct {
	// Key is the ordering key. Smaller keys are extracted first.
	// It must not be modified directly; use Heap.DecreaseKey.
	Key int64
	// Value is the payload, owned by the caller.
	Value V

	seq    uint64
	forced bool // set transiently by Delete to win every comparison
	node   *node[V]
}

// node is one node of a binomial tree. The item payload is kept
// separate from the tree node so that bubbling a key towards the root
// can swap payloads without invalidating caller-held *Item handles.
type node[V any] struct {
	item    *Item[V]
	parent  *node[V]
	child   *node[V] // leftmost child
	sibling *node[V] // next tree to the right (root list or child list)
	degree  int
}

// Heap is a binomial min-heap. The zero value is an empty heap ready
// to use.
type Heap[V any] struct {
	head *node[V] // root list, strictly increasing degree
	n    int
	seq  uint64 // insertion counter for FIFO tie-breaking
}

// Len returns the number of items in the heap.
func (h *Heap[V]) Len() int { return h.n }

// less orders items by (Key, seq): FIFO among equal keys. An item
// being deleted is forced ahead of everything else.
func less[V any](a, b *Item[V]) bool {
	if a.forced != b.forced {
		return a.forced
	}
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.seq < b.seq
}

// Insert adds value with the given key and returns its handle.
// O(log n) worst case, O(1) amortized.
func (h *Heap[V]) Insert(key int64, value V) *Item[V] {
	it := &Item[V]{Key: key, Value: value, seq: h.seq}
	h.seq++
	nd := &node[V]{item: it}
	it.node = nd
	h.head = merge(h.head, nd)
	h.n++
	return it
}

// Min returns the item with the smallest key without removing it, or
// nil if the heap is empty. O(log n).
func (h *Heap[V]) Min() *Item[V] {
	if h.head == nil {
		return nil
	}
	best := h.head
	for cur := h.head.sibling; cur != nil; cur = cur.sibling {
		if less(cur.item, best.item) {
			best = cur
		}
	}
	return best.item
}

// ExtractMin removes and returns the item with the smallest key, or
// nil if the heap is empty. O(log n).
func (h *Heap[V]) ExtractMin() *Item[V] {
	if h.head == nil {
		return nil
	}
	// Find the minimum root and its predecessor in the root list.
	var prevBest *node[V]
	best := h.head
	for prev, cur := h.head, h.head.sibling; cur != nil; prev, cur = cur, cur.sibling {
		if less(cur.item, best.item) {
			prevBest, best = prev, cur
		}
	}
	// Unlink best from the root list.
	if prevBest == nil {
		h.head = best.sibling
	} else {
		prevBest.sibling = best.sibling
	}
	// Reverse best's children into a root list of increasing degree.
	var rev *node[V]
	for c := best.child; c != nil; {
		next := c.sibling
		c.sibling = rev
		c.parent = nil
		rev = c
		c = next
	}
	h.head = merge(h.head, rev)
	h.n--
	it := best.item
	it.node = nil
	best.item = nil
	return it
}

// DecreaseKey lowers it's key to key. It panics if key is larger than
// the current key or if it is no longer in the heap. O(log n).
func (h *Heap[V]) DecreaseKey(it *Item[V], key int64) {
	if it.node == nil {
		panic("binheap: DecreaseKey on removed item")
	}
	if key > it.Key {
		panic("binheap: DecreaseKey would increase key")
	}
	it.Key = key
	h.bubbleUp(it.node)
}

// Delete removes it from the heap. It panics if it was already
// removed. O(log n).
func (h *Heap[V]) Delete(it *Item[V]) {
	if it.node == nil {
		panic("binheap: Delete on removed item")
	}
	// Force the item ahead of every other, bubble it to its root,
	// and extract it as the heap minimum.
	it.forced = true
	h.bubbleUp(it.node)
	got := h.ExtractMin()
	if got != it {
		panic("binheap: internal error: Delete extracted wrong item")
	}
	it.forced = false
}

// Meld moves all items of other into h, leaving other empty.
// O(log n). Handles held on items from either heap remain valid.
func (h *Heap[V]) Meld(other *Heap[V]) {
	if other == h || other.head == nil {
		return
	}
	// Re-sequence the incoming items so FIFO tie-breaking stays
	// globally consistent: everything already queued on h keeps its
	// order, melded items follow in their own order.
	reseq(other.head, h)
	h.head = merge(h.head, other.head)
	h.n += other.n
	other.head = nil
	other.n = 0
}

func reseq[V any](nd *node[V], h *Heap[V]) {
	for ; nd != nil; nd = nd.sibling {
		nd.item.seq = h.seq
		h.seq++
		reseq(nd.child, h)
	}
}

// bubbleUp restores the heap order along the path from nd to its root
// after nd's key decreased, by swapping item payloads.
func (h *Heap[V]) bubbleUp(nd *node[V]) {
	for p := nd.parent; p != nil && less(nd.item, p.item); p = nd.parent {
		nd.item, p.item = p.item, nd.item
		nd.item.node = nd
		p.item.node = p
		nd = p
	}
}

// link makes b a child of a. Requires a.degree == b.degree and
// a.item ≤ b.item.
func link[V any](a, b *node[V]) {
	b.parent = a
	b.sibling = a.child
	a.child = b
	a.degree++
}

// merge combines two root lists into one with the binomial-heap
// invariant (at most one tree per degree), linking equal-degree trees.
func merge[V any](a, b *node[V]) *node[V] {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	// Merge by degree into a single list.
	var head, tail *node[V]
	appendNode := func(nd *node[V]) {
		if tail == nil {
			head, tail = nd, nd
		} else {
			tail.sibling = nd
			tail = nd
		}
	}
	for a != nil && b != nil {
		if a.degree <= b.degree {
			next := a.sibling
			a.sibling = nil
			appendNode(a)
			a = next
		} else {
			next := b.sibling
			b.sibling = nil
			appendNode(b)
			b = next
		}
	}
	for a != nil {
		next := a.sibling
		a.sibling = nil
		appendNode(a)
		a = next
	}
	for b != nil {
		next := b.sibling
		b.sibling = nil
		appendNode(b)
		b = next
	}
	// Link trees of equal degree (CLRS binomial-heap-union).
	var prev *node[V]
	cur := head
	next := cur.sibling
	for next != nil {
		if cur.degree != next.degree ||
			(next.sibling != nil && next.sibling.degree == cur.degree) {
			prev = cur
			cur = next
		} else if !less(next.item, cur.item) {
			cur.sibling = next.sibling
			link(cur, next)
		} else {
			if prev == nil {
				head = next
			} else {
				prev.sibling = next
			}
			link(next, cur)
			cur = next
		}
		next = cur.sibling
	}
	return head
}

// Items returns all items in the heap in unspecified order. Intended
// for tests and diagnostics; O(n).
func (h *Heap[V]) Items() []*Item[V] {
	var out []*Item[V]
	var walk func(nd *node[V])
	walk = func(nd *node[V]) {
		for ; nd != nil; nd = nd.sibling {
			out = append(out, nd.item)
			walk(nd.child)
		}
	}
	walk(h.head)
	return out
}

// checkInvariants validates the binomial-heap structural invariants.
// Exposed to the package tests via export_test.go.
func (h *Heap[V]) checkInvariants() error {
	count := 0
	lastDegree := -1
	for root := h.head; root != nil; root = root.sibling {
		if root.parent != nil {
			return errf("root has parent")
		}
		if root.degree <= lastDegree {
			return errf("root degrees not strictly increasing: %d after %d", root.degree, lastDegree)
		}
		lastDegree = root.degree
		n, err := checkTree(root)
		if err != nil {
			return err
		}
		count += n
	}
	if count != h.n {
		return errf("size mismatch: counted %d, recorded %d", count, h.n)
	}
	return nil
}

func checkTree[V any](nd *node[V]) (int, error) {
	// A binomial tree of degree k has k children of degrees
	// k-1, k-2, ..., 0 (in child-list order) and 2^k nodes.
	if nd.item == nil || nd.item.node != nd {
		return 0, errf("item/node backpointer mismatch")
	}
	n := 1
	wantDegree := nd.degree - 1
	for c := nd.child; c != nil; c = c.sibling {
		if c.parent != nd {
			return 0, errf("child parent pointer wrong")
		}
		if c.degree != wantDegree {
			return 0, errf("child degree %d, want %d", c.degree, wantDegree)
		}
		if less(c.item, nd.item) {
			return 0, errf("heap order violated")
		}
		cn, err := checkTree(c)
		if err != nil {
			return 0, err
		}
		n += cn
		wantDegree--
	}
	if wantDegree != -1 {
		return 0, errf("missing children: stopped at degree %d", wantDegree)
	}
	if n != 1<<uint(nd.degree) {
		return 0, errf("tree of degree %d has %d nodes", nd.degree, n)
	}
	return n, nil
}

func errf(format string, args ...any) error {
	return fmt.Errorf("binheap: "+format, args...)
}
