package binheap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func requireInvariants(t *testing.T, h *Heap[int]) {
	t.Helper()
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated: %v", err)
	}
}

func TestEmptyHeap(t *testing.T) {
	var h Heap[int]
	if h.Len() != 0 {
		t.Fatal("empty heap has nonzero length")
	}
	if h.Min() != nil {
		t.Fatal("Min on empty heap should be nil")
	}
	if h.ExtractMin() != nil {
		t.Fatal("ExtractMin on empty heap should be nil")
	}
	requireInvariants(t, &h)
}

func TestInsertExtractSorted(t *testing.T) {
	var h Heap[int]
	keys := []int64{5, 3, 8, 1, 9, 2, 7, 4, 6, 0}
	for _, k := range keys {
		h.Insert(k, int(k))
		requireInvariants(t, &h)
	}
	if h.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", h.Len(), len(keys))
	}
	for want := int64(0); want < 10; want++ {
		it := h.ExtractMin()
		if it == nil || it.Key != want {
			t.Fatalf("extracted %v, want key %d", it, want)
		}
		if int64(it.Value) != want {
			t.Fatalf("value %d, want %d", it.Value, want)
		}
		requireInvariants(t, &h)
	}
	if h.Len() != 0 {
		t.Fatal("heap not empty after draining")
	}
}

func TestFIFOAmongEqualKeys(t *testing.T) {
	var h Heap[int]
	for i := 0; i < 10; i++ {
		h.Insert(7, i)
	}
	for i := 0; i < 10; i++ {
		it := h.ExtractMin()
		if it.Value != i {
			t.Fatalf("equal-key extraction order: got %d, want %d", it.Value, i)
		}
	}
}

func TestMinDoesNotRemove(t *testing.T) {
	var h Heap[int]
	h.Insert(2, 2)
	h.Insert(1, 1)
	if h.Min().Key != 1 || h.Len() != 2 {
		t.Fatal("Min changed the heap")
	}
	if h.Min().Key != 1 {
		t.Fatal("Min not repeatable")
	}
}

func TestDecreaseKey(t *testing.T) {
	var h Heap[int]
	items := make([]*Item[int], 0, 16)
	for i := 0; i < 16; i++ {
		items = append(items, h.Insert(int64(i+100), i))
	}
	h.DecreaseKey(items[15], 1)
	requireInvariants(t, &h)
	if got := h.ExtractMin(); got.Value != 15 {
		t.Fatalf("after DecreaseKey min is %d, want 15", got.Value)
	}
	// Decrease to the same key is a no-op but legal.
	h.DecreaseKey(items[3], items[3].Key)
	requireInvariants(t, &h)
}

func TestDecreaseKeyPanicsOnIncrease(t *testing.T) {
	var h Heap[int]
	it := h.Insert(5, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.DecreaseKey(it, 6)
}

func TestDeleteMiddle(t *testing.T) {
	var h Heap[int]
	items := make([]*Item[int], 0, 32)
	for i := 0; i < 32; i++ {
		items = append(items, h.Insert(int64(i), i))
	}
	h.Delete(items[17])
	requireInvariants(t, &h)
	if h.Len() != 31 {
		t.Fatalf("Len = %d after delete", h.Len())
	}
	// Key restored on the handle after delete.
	if items[17].Key != 17 {
		t.Fatalf("deleted item key = %d, want 17", items[17].Key)
	}
	for i := 0; i < 32; i++ {
		if i == 17 {
			continue
		}
		it := h.ExtractMin()
		if it.Value != i {
			t.Fatalf("got %d, want %d", it.Value, i)
		}
	}
}

func TestDeletePanicsTwice(t *testing.T) {
	var h Heap[int]
	it := h.Insert(1, 1)
	h.Delete(it)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double delete")
		}
	}()
	h.Delete(it)
}

func TestMeld(t *testing.T) {
	var a, b Heap[int]
	for i := 0; i < 10; i += 2 {
		a.Insert(int64(i), i)
	}
	for i := 1; i < 10; i += 2 {
		b.Insert(int64(i), i)
	}
	a.Meld(&b)
	requireInvariants(t, &a)
	if b.Len() != 0 {
		t.Fatal("source heap not emptied by Meld")
	}
	if a.Len() != 10 {
		t.Fatalf("melded Len = %d, want 10", a.Len())
	}
	for i := 0; i < 10; i++ {
		if got := a.ExtractMin().Value; got != i {
			t.Fatalf("got %d, want %d", got, i)
		}
	}
}

func TestMeldSelfAndEmpty(t *testing.T) {
	var a, b Heap[int]
	a.Insert(1, 1)
	a.Meld(&a) // no-op
	a.Meld(&b) // melding empty is a no-op
	if a.Len() != 1 {
		t.Fatalf("Len = %d, want 1", a.Len())
	}
}

func TestItemsEnumeratesAll(t *testing.T) {
	var h Heap[int]
	for i := 0; i < 13; i++ {
		h.Insert(int64(i), i)
	}
	items := h.Items()
	if len(items) != 13 {
		t.Fatalf("Items returned %d, want 13", len(items))
	}
	seen := map[int]bool{}
	for _, it := range items {
		seen[it.Value] = true
	}
	for i := 0; i < 13; i++ {
		if !seen[i] {
			t.Fatalf("value %d missing from Items", i)
		}
	}
}

// TestRandomizedAgainstReference drives the heap with random
// operations and cross-checks every result against a sorted-slice
// reference implementation.
func TestRandomizedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Heap[int]
	type refEntry struct {
		key  int64
		seq  int
		item *Item[int]
	}
	var ref []refEntry
	seq := 0
	refLess := func(i, j int) bool {
		if ref[i].key != ref[j].key {
			return ref[i].key < ref[j].key
		}
		return ref[i].seq < ref[j].seq
	}
	for op := 0; op < 5000; op++ {
		switch r := rng.Intn(10); {
		case r < 5: // insert
			k := int64(rng.Intn(50))
			it := h.Insert(k, int(k))
			ref = append(ref, refEntry{k, seq, it})
			seq++
		case r < 8: // extract min
			sort.SliceStable(ref, refLess)
			got := h.ExtractMin()
			if len(ref) == 0 {
				if got != nil {
					t.Fatal("extracted from empty")
				}
				continue
			}
			want := ref[0]
			ref = ref[1:]
			if got != want.item {
				t.Fatalf("op %d: extracted key %d seq?, want key %d", op, got.Key, want.key)
			}
		case r < 9: // delete random
			if len(ref) == 0 {
				continue
			}
			i := rng.Intn(len(ref))
			h.Delete(ref[i].item)
			ref = append(ref[:i], ref[i+1:]...)
		default: // decrease key of random item
			if len(ref) == 0 {
				continue
			}
			i := rng.Intn(len(ref))
			nk := ref[i].item.Key - int64(rng.Intn(10))
			h.DecreaseKey(ref[i].item, nk)
			ref[i].key = nk
			// Note: DecreaseKey keeps the original insertion
			// sequence, so the reference seq stays unchanged.
		}
		if h.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, ref = %d", op, h.Len(), len(ref))
		}
		if op%97 == 0 {
			if err := h.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
}

// TestQuickHeapSort property: inserting any key slice and draining the
// heap yields the keys in sorted order.
func TestQuickHeapSort(t *testing.T) {
	f := func(keys []int16) bool {
		var h Heap[struct{}]
		for _, k := range keys {
			h.Insert(int64(k), struct{}{})
		}
		prev := int64(-1 << 62)
		for h.Len() > 0 {
			it := h.ExtractMin()
			if it.Key < prev {
				return false
			}
			prev = it.Key
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickMeldPreservesMultiset property: melding two heaps yields
// exactly the multiset union.
func TestQuickMeldPreservesMultiset(t *testing.T) {
	f := func(xs, ys []int8) bool {
		var a, b Heap[struct{}]
		counts := map[int64]int{}
		for _, x := range xs {
			a.Insert(int64(x), struct{}{})
			counts[int64(x)]++
		}
		for _, y := range ys {
			b.Insert(int64(y), struct{}{})
			counts[int64(y)]++
		}
		a.Meld(&b)
		if a.Len() != len(xs)+len(ys) {
			return false
		}
		for a.Len() > 0 {
			counts[a.ExtractMin().Key]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	var h Heap[int]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Insert(int64(i%1024), i)
	}
}

func BenchmarkInsertExtractPair(b *testing.B) {
	var h Heap[int]
	for i := 0; i < 64; i++ {
		h.Insert(int64(i), i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Insert(int64(i%128), i)
		h.ExtractMin()
	}
}
