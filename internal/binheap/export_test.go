package binheap

// CheckInvariants exposes the structural validator to tests.
func (h *Heap[V]) CheckInvariants() error { return h.checkInvariants() }
