package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"repro/api"
	"repro/client"
	"repro/internal/admitd"
	"repro/internal/telemetry"
)

// Admitd is the spadmitd entry point: the admission-control daemon
// and its load generator (driven through the typed client SDK).
//
//	spadmitd serve [-addr :7007] [-data-dir dir] [-fsync group]
//	               [-fsync-interval 5ms] [-checkpoint-every 30s]
//	               [-snapshots dir] [-max-sessions 1024]
//	               [-pprof localhost:6060] [-trace] [-events log.ndjson]
//	               [-events-level info]
//	spadmitd load  [-addr http://host:7007] [-sessions 64] [-requests 100000]
//	               [-workers 0] [-cores 4] [-tasks 12] [-policy fp] [-seed 1]
//	               [-mix 90/10] [-data-dir dir] [-fsync group]
//	               [-cpuprofile cpu.out] [-memprofile mem.out]
//
// `load` without -addr runs against an in-process server — a
// self-contained smoke/throughput run needing no listener.
func Admitd(args []string, w io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: spadmitd <serve|load> [flags]")
	}
	switch args[0] {
	case "serve":
		return admitdServe(args[1:], w)
	case "load":
		return admitdLoad(args[1:], w)
	default:
		return fmt.Errorf("unknown subcommand %q (serve|load)", args[0])
	}
}

// admitdServe runs the HTTP daemon until SIGINT/SIGTERM, then shuts
// down gracefully: the listener drains and every live session is
// snapshotted.
func admitdServe(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("spadmitd serve", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		addr      = fs.String("addr", ":7007", "listen address")
		dataDir   = fs.String("data-dir", "", "durability directory (enables the commit log + crash recovery; supersedes -snapshots)")
		fsync     = fs.String("fsync", "group", "commit policy: group (ack at apply, background fsync each interval) | always (fsync before ack) | off")
		fsyncInt  = fs.Duration("fsync-interval", 0, "group policy: background fsync cadence = crash loss window (<=0: 5ms default)")
		ckptEvery = fs.Duration("checkpoint-every", 0, "snapshot-compaction period (0: 30s default; negative: off)")
		snapshot  = fs.String("snapshots", "", "session snapshot directory (enables persistence)")
		maxSess   = fs.Int("max-sessions", 1024, "live-session cap (LRU eviction beyond it)")
		pprofAddr = fs.String("pprof", "", "serve /debug/pprof and /metrics on this side address (e.g. localhost:6060); empty = off")
		trace     = fs.Bool("trace", true, "generate Admitd-Trace-Id for requests that did not supply one")
		events    = fs.String("events", "", "append structured NDJSON request events to this file (- for stderr); empty = off")
		evLevel   = fs.String("events-level", "info", "minimum event level: debug|info|warn|error")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var elog *telemetry.EventLog
	if *events != "" {
		lv := telemetry.ParseLevel(*evLevel)
		sink := io.Writer(os.Stderr)
		if *events != "-" {
			f, err := os.OpenFile(*events, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return err
			}
			defer f.Close() //nolint:errcheck // event log, best-effort
			sink = f
		}
		elog = telemetry.NewEventLog(sink, lv)
	}
	srv, err := admitd.New(admitd.Config{
		MaxSessions:     *maxSess,
		SnapshotDir:     *snapshot,
		DataDir:         *dataDir,
		Fsync:           *fsync,
		FsyncInterval:   *fsyncInt,
		CheckpointEvery: *ckptEvery,
		Trace:           *trace,
		EventLog:        elog,
	})
	if err != nil {
		return err
	}
	if *pprofAddr != "" {
		// Profiling is opt-in and on a side listener, so the handlers
		// never ride the service port.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		// The exposition rides the side listener too, so scrapers
		// need not touch the service port.
		mux.Handle(api.PathMetrics, srv.Metrics())
		go func() {
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil { //nolint:gosec // debug side listener, opt-in
				fmt.Fprintf(w, "spadmitd: pprof listener: %v\n", err)
			}
		}()
		fmt.Fprintf(w, "spadmitd pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	switch {
	case *dataDir != "":
		fmt.Fprintf(w, "spadmitd listening on %s (max sessions %d, data dir %q, fsync %s)\n", *addr, *maxSess, *dataDir, *fsync)
	default:
		fmt.Fprintf(w, "spadmitd listening on %s (max sessions %d, snapshots %q)\n", *addr, *maxSess, *snapshot)
	}
	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(w, "spadmitd: shutting down (snapshotting live sessions)")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(shutCtx) //nolint:errcheck // drain best-effort before snapshotting
	srv.Close()
	return nil
}

// admitdLoad drives the request mix against a remote server (-addr)
// or an in-process one.
func admitdLoad(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("spadmitd load", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		addr     = fs.String("addr", "", "server base URL (empty: run in-process)")
		sessions = fs.Int("sessions", 64, "concurrent cluster sessions")
		requests = fs.Int("requests", 100000, "total admission requests")
		workers  = fs.Int("workers", 0, "client concurrency (0: 2x sessions, capped at 64)")
		cores    = fs.Int("cores", 4, "cores per session")
		tasks    = fs.Int("tasks", 12, "resident tasks seeded per session")
		policy   = fs.String("policy", "fp", "session policy: fp|edf")
		seed     = fs.Int64("seed", 1, "workload seed")
		mix      = fs.String("mix", "", `read/write mix as "R/W" percentages, e.g. 90/10 (default 60/40); reads ride the lock-free snapshot path`)
		dataDir  = fs.String("data-dir", "", "in-process runs: durability directory for the embedded server")
		fsync    = fs.String("fsync", "group", "in-process runs: commit-log sync policy (group|always|off)")
		cpuprof  = fs.String("cpuprofile", "", "write a CPU profile of the load run to this file")
		memprof  = fs.String("memprofile", "", "write a post-run heap profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return err
		}
		defer f.Close() //nolint:errcheck // profile file
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	cfg := admitd.LoadConfig{
		Sessions:        *sessions,
		Requests:        *requests,
		Workers:         *workers,
		Cores:           *cores,
		TasksPerSession: *tasks,
		Policy:          *policy,
		Seed:            *seed,
		Mix:             *mix,
	}
	var c *client.Client
	if *addr == "" {
		srv, err := admitd.New(admitd.Config{MaxSessions: 2 * *sessions, DataDir: *dataDir, Fsync: *fsync})
		if err != nil {
			return err
		}
		defer srv.Close()
		c = client.InProcess(srv)
	} else {
		var err error
		if c, err = client.New(*addr, client.WithTimeout(30*time.Second)); err != nil {
			return err
		}
	}
	stats, err := admitd.RunLoad(context.Background(), c, cfg)
	if err != nil {
		return err
	}
	// End-of-run cross-check: scrape the server's histograms and
	// verify the client-observed percentiles land in the same
	// buckets. Warnings only — the run's verdict is the error count.
	if expo, merr := c.Metrics(context.Background()); merr == nil {
		for _, warn := range admitd.CrossCheckMetrics(expo, stats) {
			fmt.Fprintln(w, "warning:", warn)
		}
	} else {
		fmt.Fprintf(w, "warning: metrics scrape failed: %v\n", merr)
	}
	if *memprof != "" {
		f, ferr := os.Create(*memprof)
		if ferr != nil {
			return ferr
		}
		runtime.GC() // settle: profile live retained memory, not garbage
		if ferr := pprof.WriteHeapProfile(f); ferr != nil {
			f.Close() //nolint:errcheck // already failing
			return ferr
		}
		if ferr := f.Close(); ferr != nil {
			return ferr
		}
	}
	fmt.Fprintln(w, stats)
	if stats.Errors > 0 {
		return fmt.Errorf("load run finished with %d unexpected errors", stats.Errors)
	}
	return nil
}
