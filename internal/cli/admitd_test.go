package cli

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestAdmitdUsageErrors pins the subcommand surface.
func TestAdmitdUsageErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Admitd(nil, &buf); err == nil {
		t.Fatal("no subcommand must error")
	}
	if err := Admitd([]string{"frobnicate"}, &buf); err == nil {
		t.Fatal("unknown subcommand must error")
	}
	if err := Admitd([]string{"serve", "-bogus"}, &buf); err == nil {
		t.Fatal("bad serve flag must error")
	}
	if err := Admitd([]string{"load", "-bogus"}, &buf); err == nil {
		t.Fatal("bad load flag must error")
	}
}

// TestAdmitdLoadInProcess runs a tiny self-contained load through the
// CLI path (no listener).
func TestAdmitdLoadInProcess(t *testing.T) {
	var buf bytes.Buffer
	err := Admitd([]string{"load", "-sessions", "4", "-requests", "300", "-tasks", "6"}, &buf)
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "req/s") {
		t.Fatalf("load output: %s", buf.String())
	}
}

// TestExpJSON checks the shared sweep serialization behind -json.
func TestExpJSON(t *testing.T) {
	var buf bytes.Buffer
	err := Exp([]string{"-json", "-overheads", "zero", "-tasks", "6", "-sets", "4",
		"-umin", "0.6", "-umax", "0.65", "-ustep", "0.05", "-algs", "ffd"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var sweep struct {
		Series []struct {
			Algorithm string `json:"algorithm"`
		} `json:"series"`
		Admission struct {
			Probes int64 `json:"probes"`
		} `json:"admission"`
	}
	if err := json.Unmarshal(buf.Bytes(), &sweep); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if len(sweep.Series) != 1 || sweep.Series[0].Algorithm != "FFD" || sweep.Admission.Probes == 0 {
		t.Fatalf("sweep JSON: %s", buf.String())
	}
}
