// Package cli implements the three command-line tools (spsim, spexp,
// spmeasure) as testable functions: each takes an argument vector and
// an output writer, parses its own flag set, and returns an error
// instead of exiting, so the whole surface is exercised by unit tests
// and the main packages stay one line long.
package cli

import (
	"flag"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/overhead"
	"repro/internal/partition"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/task"
	"repro/internal/timeq"
	"repro/internal/trace"
)

// AlgorithmByName maps the CLI names to algorithms (the shared
// partition.ByName lookup, also used by the admitd sweep endpoint).
func AlgorithmByName(name string) (core.Algorithm, error) {
	return partition.ByName(name)
}

// IsEDF reports whether the algorithm's assignments need EDF
// dispatching in the simulator.
func IsEDF(alg core.Algorithm) bool {
	return alg.Policy() == core.EDF
}

// modelFromFlags resolves -overheads/-model/-scale.
func modelFromFlags(ovName, modelFile string, scale float64) (*core.OverheadModel, error) {
	var model *core.OverheadModel
	switch {
	case modelFile != "":
		m, err := overhead.LoadModel(modelFile)
		if err != nil {
			return nil, err
		}
		model = m
	case ovName == "paper":
		model = core.PaperOverheads()
	case ovName == "zero":
		model = core.ZeroOverheads()
	default:
		return nil, fmt.Errorf("unknown overhead model %q (zero|paper)", ovName)
	}
	if scale <= 0 {
		return nil, fmt.Errorf("non-positive overhead scale %v", scale)
	}
	if scale != 1 {
		model = model.Scale(scale)
	}
	return model, nil
}

// Sim is the spsim entry point.
func Sim(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("spsim", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		tasks    = fs.Int("tasks", 12, "tasks per set")
		util     = fs.Float64("util", 3.4, "total utilization of the set")
		cores    = fs.Int("cores", 4, "number of cores")
		algName  = fs.String("alg", "fpts", "partitioning algorithm")
		ovName   = fs.String("overheads", "paper", "overhead model: zero|paper")
		modelF   = fs.String("model", "", "custom overhead model JSON file")
		scale    = fs.Float64("scale", 1, "scale every overhead")
		horizon  = fs.Duration("horizon", 2*time.Second, "simulated duration")
		jitter   = fs.Duration("jitter", 0, "sporadic arrival jitter")
		seed     = fs.Int64("seed", 1, "generator seed")
		rq       = fs.String("rq", "binheap", "ready-queue backend: binheap|rbtree")
		timeline = fs.Bool("timeline", false, "print the event timeline (first 5ms)")
		gantt    = fs.Bool("gantt", false, "print a bucketed per-core gantt chart (first 50ms)")
		logAll   = fs.Bool("log", false, "print the raw event log")
		rep      = fs.Bool("report", false, "print the bound-vs-observed report")
		demo     = fs.String("demo", "", "named demo: figure1")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *demo == "figure1" {
		return Figure1(w)
	}
	if *demo != "" {
		return fmt.Errorf("unknown demo %q", *demo)
	}
	alg, err := AlgorithmByName(*algName)
	if err != nil {
		return err
	}
	model, err := modelFromFlags(*ovName, *modelF, *scale)
	if err != nil {
		return err
	}
	var backend sched.QueueBackend
	switch *rq {
	case "binheap":
		backend = sched.BinomialHeap
	case "rbtree":
		backend = sched.RedBlackTree
	default:
		return fmt.Errorf("unknown ready-queue backend %q (binheap|rbtree)", *rq)
	}

	set := core.GenerateTaskSet(core.GenConfig{N: *tasks, TotalUtilization: *util, Seed: *seed})
	fmt.Fprintf(w, "task set: %d tasks, ΣU = %.3f\n", set.Len(), set.TotalUtilization())
	a, err := core.Schedule(set, *cores, alg, model)
	if err != nil {
		return fmt.Errorf("%s: unschedulable: %w", alg.Name(), err)
	}
	fmt.Fprintf(w, "%s admitted the set:\n%s", alg.Name(), a)

	buf := &trace.Buffer{}
	cfg := core.SimConfig{
		Model:         model,
		Horizon:       timeq.FromDuration(*horizon),
		Recorder:      buf,
		ArrivalJitter: timeq.FromDuration(*jitter),
		Seed:          *seed,
		ReadyQueue:    backend,
	}
	// The assignment carries its policy; no need to restate it.
	res, err := core.Simulate(a, cfg)
	if err != nil {
		return err
	}
	writeSimResult(w, res, *cores)
	if *rep && !IsEDF(alg) {
		r, err := report.New(a, model, res)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "\nper-task analysis bound vs simulated response:")
		fmt.Fprint(w, r.ResponseTable())
		if v := r.Violations(); len(v) > 0 {
			return fmt.Errorf("%d bound violations", len(v))
		}
	}
	if *timeline {
		fmt.Fprintln(w, "\ntimeline (first 5ms):")
		if err := buf.Timeline(w, 0, 5*timeq.Millisecond); err != nil {
			return err
		}
	}
	if *gantt {
		fmt.Fprintln(w)
		if err := buf.Gantt(w, 0, 50*timeq.Millisecond, 100); err != nil {
			return err
		}
	}
	if *logAll {
		if err := buf.WriteLog(w); err != nil {
			return err
		}
	}
	if !res.Schedulable() {
		return fmt.Errorf("%d deadline misses; first: %v", len(res.Misses), res.Misses[0])
	}
	return nil
}

func writeSimResult(w io.Writer, res *core.SimResult, cores int) {
	s := res.Stats
	fmt.Fprintf(w, "\nsimulated %v: %d releases, %d finishes, %d preemptions, %d migrations\n",
		s.Horizon, s.Releases, s.Finishes, s.Preemptions, s.Migrations)
	fmt.Fprintf(w, "overhead: %v total (%.4f%% of core time)\n",
		s.TotalOverhead(), 100*s.OverheadRatio(cores))
	var cats []string
	for c := range s.OverheadTime {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for _, c := range cats {
		fmt.Fprintf(w, "  %-7s %v\n", c, s.OverheadTime[c])
	}
	for c, cs := range s.PerCore {
		fmt.Fprintf(w, "  core %d: %.3f busy (exec %v, overhead %v)\n",
			c, cs.Utilization(s.Horizon), cs.Exec, cs.Overhead)
	}
	if res.Schedulable() {
		fmt.Fprintln(w, "all deadlines met")
	} else {
		fmt.Fprintf(w, "%d DEADLINE MISSES; worst tardiness %v\n", len(res.Misses), res.WorstTardiness())
	}
}

// Figure1 reproduces the paper's Figure 1 scenario: τ2 preempted by
// τ1 with every overhead segment visible.
func Figure1(w io.Writer) error {
	t1 := &task.Task{ID: 1, Name: "τ1", WCET: 2 * timeq.Millisecond, Period: 10 * timeq.Millisecond, WSS: 256 << 10}
	t2 := &task.Task{ID: 2, Name: "τ2", WCET: 5 * timeq.Millisecond, Period: 20 * timeq.Millisecond, WSS: 256 << 10}
	set := task.NewSet(t1, t2)
	set.AssignRM()
	a := task.NewAssignment(1)
	a.Place(t1, 0)
	a.Place(t2, 0)

	buf := &trace.Buffer{}
	res, err := core.Simulate(a, core.SimConfig{
		Model:    core.PaperOverheads(),
		Horizon:  20 * timeq.Millisecond,
		Recorder: buf,
		Offsets:  map[task.ID]timeq.Time{1: 2 * timeq.Millisecond},
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 1 — run-time overhead anatomy (paper overhead model)")
	fmt.Fprintln(w, "τ2 executes from time a; τ1 released at b preempts it; the kernel")
	fmt.Fprintln(w, "segments between b..e and f..i are the measured overheads.")
	fmt.Fprintln(w)
	if err := buf.Timeline(w, 0, 12*timeq.Millisecond); err != nil {
		return err
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, buf.Summary())
	fmt.Fprintf(w, "max response: τ1 %v, τ2 %v\n", res.MaxResponse[1], res.MaxResponse[2])
	return nil
}
