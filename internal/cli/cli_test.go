package cli

import (
	"strings"
	"testing"
)

func TestAlgorithmByName(t *testing.T) {
	for _, name := range []string{"fpts", "ffd", "wfd", "bfd", "spa1", "spa2", "edfwm", "edfffd", "edfwfd"} {
		alg, err := AlgorithmByName(name)
		if err != nil || alg == nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := AlgorithmByName("nope"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestIsEDF(t *testing.T) {
	edf, _ := AlgorithmByName("edfwm")
	fp, _ := AlgorithmByName("fpts")
	if !IsEDF(edf) || IsEDF(fp) {
		t.Error("EDF detection wrong")
	}
}

func TestSimHappyPath(t *testing.T) {
	var sb strings.Builder
	err := Sim([]string{"-tasks", "8", "-util", "2.4", "-horizon", "300ms", "-seed", "3"}, &sb)
	if err != nil {
		t.Fatalf("Sim: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"task set: 8 tasks", "FP-TS admitted", "all deadlines met", "core 0:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestSimEDFPath(t *testing.T) {
	var sb strings.Builder
	err := Sim([]string{"-alg", "edfwm", "-tasks", "8", "-util", "3.0", "-horizon", "300ms"}, &sb)
	if err != nil {
		t.Fatalf("Sim EDF: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "EDF-WM admitted") {
		t.Error("EDF algorithm not used")
	}
}

func TestSimReportAndTimeline(t *testing.T) {
	var sb strings.Builder
	err := Sim([]string{"-tasks", "6", "-util", "2.0", "-horizon", "200ms", "-report", "-timeline"}, &sb)
	if err != nil {
		t.Fatalf("Sim: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "bound") || !strings.Contains(out, "timeline") {
		t.Error("report/timeline missing")
	}
}

func TestSimSporadic(t *testing.T) {
	var sb strings.Builder
	err := Sim([]string{"-tasks", "6", "-util", "2.0", "-horizon", "200ms", "-jitter", "2ms"}, &sb)
	if err != nil {
		t.Fatalf("Sim sporadic: %v", err)
	}
}

func TestSimErrors(t *testing.T) {
	var sb strings.Builder
	if err := Sim([]string{"-alg", "bogus"}, &sb); err == nil {
		t.Error("bad algorithm accepted")
	}
	if err := Sim([]string{"-overheads", "bogus"}, &sb); err == nil {
		t.Error("bad overheads accepted")
	}
	if err := Sim([]string{"-demo", "bogus"}, &sb); err == nil {
		t.Error("bad demo accepted")
	}
	if err := Sim([]string{"-scale", "-1"}, &sb); err == nil {
		t.Error("negative scale accepted")
	}
	if err := Sim([]string{"-model", "/nonexistent.json"}, &sb); err == nil {
		t.Error("missing model file accepted")
	}
	// Unschedulable: huge utilization on few cores.
	if err := Sim([]string{"-tasks", "8", "-util", "3.9", "-cores", "2"}, &sb); err == nil {
		t.Error("unschedulable set reported success")
	}
}

func TestFigure1Demo(t *testing.T) {
	var sb strings.Builder
	if err := Sim([]string{"-demo", "figure1"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 1", "rls 3µs", "cnt1 1.5µs", "cache", "max response"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure1 output missing %q", want)
		}
	}
}

func TestExpSmallSweep(t *testing.T) {
	var sb strings.Builder
	err := Exp([]string{"-tasks", "8", "-sets", "10", "-umin", "0.8", "-umax", "0.9", "-ustep", "0.05", "-overheads", "paper"}, &sb)
	if err != nil {
		t.Fatalf("Exp: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "FP-TS") || !strings.Contains(out, "0.800") {
		t.Errorf("sweep output:\n%s", out)
	}
}

func TestExpPlotCSVAndEDF(t *testing.T) {
	var sb strings.Builder
	err := Exp([]string{"-tasks", "6", "-sets", "5", "-umin", "0.8", "-umax", "0.85", "-ustep", "0.05", "-overheads", "zero", "-plot"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "acceptance ratio") {
		t.Error("plot missing")
	}
	sb.Reset()
	err = Exp([]string{"-tasks", "6", "-sets", "5", "-umin", "0.8", "-umax", "0.85", "-ustep", "0.05", "-overheads", "zero", "-csv"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "algorithm,total_utilization") {
		t.Error("csv missing")
	}
	sb.Reset()
	err = Exp([]string{"-tasks", "6", "-sets", "5", "-umin", "0.85", "-umax", "0.9", "-ustep", "0.05", "-overheads", "zero", "-edf"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "EDF-WM") {
		t.Error("EDF comparison missing")
	}
}

func TestExpErrors(t *testing.T) {
	var sb strings.Builder
	if err := Exp([]string{"-umin", "-1"}, &sb); err == nil {
		t.Error("bad grid accepted")
	}
	if err := Exp([]string{"-overheads", "bogus"}, &sb); err == nil {
		t.Error("bad overheads accepted")
	}
	if err := Exp([]string{"-model", "/nonexistent.json"}, &sb); err == nil {
		t.Error("missing model accepted")
	}
}

func TestMeasureSmall(t *testing.T) {
	var sb strings.Builder
	if err := Measure([]string{"-samples", "30", "-raw"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table 1", "sleep queue – add", "Function costs", "paper 5µs"} {
		if !strings.Contains(out, want) {
			t.Errorf("measure output missing %q", want)
		}
	}
	if err := Measure([]string{"-samples", "1"}, &sb); err == nil {
		t.Error("too-few samples accepted")
	}
}

func TestSimGantt(t *testing.T) {
	var sb strings.Builder
	err := Sim([]string{"-tasks", "6", "-util", "2.0", "-horizon", "200ms", "-gantt"}, &sb)
	if err != nil {
		t.Fatalf("Sim gantt: %v", err)
	}
	if !strings.Contains(sb.String(), "gantt 0ns .. 50ms") {
		t.Error("gantt output missing")
	}
}
