package cli

import (
	"flag"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/timeq"
)

// Exp is the spexp entry point: the Section 4 acceptance-ratio sweep.
func Exp(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("spexp", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		cores    = fs.Int("cores", 4, "number of cores")
		tasks    = fs.Int("tasks", 16, "tasks per set")
		sets     = fs.Int("sets", 200, "task sets per grid point")
		seed     = fs.Int64("seed", 1, "generator seed")
		ovName   = fs.String("overheads", "both", "zero|paper|both")
		modelF   = fs.String("model", "", "custom overhead model JSON file (overrides -overheads)")
		csv      = fs.Bool("csv", false, "emit CSV instead of tables")
		plot     = fs.Bool("plot", false, "also draw ASCII acceptance curves")
		edf      = fs.Bool("edf", false, "compare EDF algorithms instead")
		validate = fs.Duration("validate", 0, "also simulate accepted sets for this horizon")
		umin     = fs.Float64("umin", 0.600, "minimum per-core utilization")
		umax     = fs.Float64("umax", 0.975, "maximum per-core utilization")
		ustep    = fs.Float64("ustep", 0.025, "per-core utilization step")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *umin <= 0 || *umax < *umin || *ustep <= 0 {
		return fmt.Errorf("bad utilization grid [%v, %v] step %v", *umin, *umax, *ustep)
	}
	var grid []float64
	for u := *umin; u <= *umax+1e-9; u += *ustep {
		grid = append(grid, u*float64(*cores))
	}
	run := func(model *core.OverheadModel, label string) {
		cfg := core.SweepConfig{
			Cores:        *cores,
			Tasks:        *tasks,
			SetsPerPoint: *sets,
			Utilizations: grid,
			Model:        model,
			Seed:         *seed,
			SimHorizon:   timeq.FromDuration(*validate),
		}
		if *edf {
			cfg.Algorithms = []core.Algorithm{core.EDFWM, core.EDFFFD, core.FPTS}
		}
		start := time.Now()
		r := core.Sweep(cfg)
		if *csv {
			fmt.Fprint(w, r.CSV())
			return
		}
		fmt.Fprintf(w, "acceptance ratio — %s overheads (%d sets/point, %d tasks, %d cores, %v)\n",
			label, *sets, *tasks, *cores, time.Since(start).Round(time.Millisecond))
		fmt.Fprint(w, r.Table())
		if *plot {
			fmt.Fprintln(w)
			fmt.Fprint(w, r.Plot(14))
		}
		if *validate > 0 {
			fmt.Fprintf(w, "simulation validation: %d violations (expected 0)\n", r.TotalSimViolations())
		}
		fmt.Fprintln(w)
	}
	if *modelF != "" {
		m, err := modelFromFlags("", *modelF, 1)
		if err != nil {
			return err
		}
		run(m, "custom")
		return nil
	}
	switch *ovName {
	case "zero":
		run(core.ZeroOverheads(), "zero")
	case "paper":
		run(core.PaperOverheads(), "measured (paper)")
	case "both":
		run(core.ZeroOverheads(), "zero")
		run(core.PaperOverheads(), "measured (paper)")
	default:
		return fmt.Errorf("unknown overhead model %q (zero|paper|both)", *ovName)
	}
	return nil
}

// Measure is the spmeasure entry point: Table 1 plus function costs.
func Measure(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("spmeasure", flag.ContinueOnError)
	fs.SetOutput(w)
	samples := fs.Int("samples", 2000, "timing samples per cell")
	raw := fs.Bool("raw", false, "also print the raw measurement rows")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *samples < 10 {
		return fmt.Errorf("need at least 10 samples, got %d", *samples)
	}
	rows := measureTable1(*samples)
	fmt.Fprint(w, formatTable1(rows))
	if *raw {
		fmt.Fprintln(w)
		for _, r := range rows {
			fmt.Fprintln(w, "  "+r.String())
		}
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, formatFunctionCosts(*samples))
	return nil
}
