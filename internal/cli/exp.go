package cli

import (
	"flag"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/timeq"
)

// Exp is the spexp entry point: the Section 4 acceptance-ratio sweep.
func Exp(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("spexp", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		cores    = fs.Int("cores", 4, "number of cores")
		tasks    = fs.Int("tasks", 16, "tasks per set")
		sets     = fs.Int("sets", 200, "task sets per grid point")
		seed     = fs.Int64("seed", 1, "generator seed")
		ovName   = fs.String("overheads", "both", "zero|paper|both")
		modelF   = fs.String("model", "", "custom overhead model JSON file (overrides -overheads)")
		csv      = fs.Bool("csv", false, "emit CSV instead of tables")
		jsonOut  = fs.Bool("json", false, "emit JSON (the serialization shared with admitd) instead of tables")
		plot     = fs.Bool("plot", false, "also draw ASCII acceptance curves")
		edf      = fs.Bool("edf", false, "compare EDF algorithms instead")
		algsF    = fs.String("algs", "", "comma-separated algorithm list (mixed FP/EDF allowed), e.g. fpts,edfwm,ffd")
		progress = fs.Bool("progress", false, "stream per-cell progress lines as shards complete")
		stats    = fs.Bool("stats", false, "report admission-probe counts, cache hit rate and fixed-point effort per sweep")
		validate = fs.Duration("validate", 0, "also simulate accepted sets for this horizon")
		umin     = fs.Float64("umin", 0.600, "minimum per-core utilization")
		umax     = fs.Float64("umax", 0.975, "maximum per-core utilization")
		ustep    = fs.Float64("ustep", 0.025, "per-core utilization step")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *umin <= 0 || *umax < *umin || *ustep <= 0 {
		return fmt.Errorf("bad utilization grid [%v, %v] step %v", *umin, *umax, *ustep)
	}
	// Generate the grid from an integer step count so the points are
	// exact: a float accumulator (u += step) drifts by ULPs and can
	// drop the last point.
	var grid []float64
	steps := int(math.Floor((*umax - *umin) / *ustep * (1 + 1e-12)))
	for i := 0; i <= steps; i++ {
		grid = append(grid, (*umin+float64(i)**ustep)*float64(*cores))
	}
	var algs []core.Algorithm
	switch {
	case *algsF != "" && *edf:
		return fmt.Errorf("-edf and -algs are mutually exclusive; add EDF algorithms to -algs instead")
	case *algsF != "":
		for _, name := range strings.Split(*algsF, ",") {
			alg, err := AlgorithmByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			algs = append(algs, alg)
		}
	case *edf:
		algs = []core.Algorithm{core.EDFWM, core.EDFFFD, core.FPTS}
	}
	// Paired runs (-overheads both) share one set cache: the second
	// sweep analyzes the same generated sets under the other model
	// instead of re-generating them.
	setCache := core.NewSweepSetCache()
	run := func(model *core.OverheadModel, label string) {
		cfg := core.SweepConfig{
			Cores:        *cores,
			Tasks:        *tasks,
			SetsPerPoint: *sets,
			Utilizations: grid,
			Algorithms:   algs,
			Model:        model,
			Seed:         *seed,
			SimHorizon:   timeq.FromDuration(*validate),
			SetCache:     setCache,
		}
		if *progress {
			cfg.Progress = func(u core.SweepProgress) {
				line := fmt.Sprintf("[%3d/%3d] %-10s U=%.3f %4d/%-4d %.3f [%.3f,%.3f]",
					u.DoneShards, u.TotalShards, u.Algorithm, u.TotalUtilization,
					u.Accepted, u.Total, u.Ratio, u.WilsonLo, u.WilsonHi)
				if *stats {
					// The admission totals ride the same progress
					// stream as the acceptance counts.
					line += fmt.Sprintf("  probes=%d", u.Admission.Probes)
				}
				fmt.Fprintln(w, line)
			}
		}
		start := time.Now()
		r := core.Sweep(cfg)
		if *jsonOut {
			_ = report.SweepResultJSON(r).Encode(w) //nolint:errcheck // writer errors surface downstream
			return
		}
		if *csv {
			fmt.Fprint(w, r.CSV())
			return
		}
		fmt.Fprintf(w, "acceptance ratio — %s overheads (%d sets/point, %d tasks, %d cores, %v)\n",
			label, *sets, *tasks, *cores, time.Since(start).Round(time.Millisecond))
		fmt.Fprint(w, r.Table())
		if *stats {
			fmt.Fprintf(w, "admission: %v\n", r.Admission)
		}
		if *plot {
			fmt.Fprintln(w)
			fmt.Fprint(w, r.Plot(14))
		}
		if *validate > 0 {
			fmt.Fprintf(w, "simulation validation: %d violations (expected 0)\n", r.TotalSimViolations())
		}
		fmt.Fprintln(w)
	}
	if *modelF != "" {
		m, err := modelFromFlags("", *modelF, 1)
		if err != nil {
			return err
		}
		run(m, "custom")
		return nil
	}
	switch *ovName {
	case "zero":
		run(core.ZeroOverheads(), "zero")
	case "paper":
		run(core.PaperOverheads(), "measured (paper)")
	case "both":
		run(core.ZeroOverheads(), "zero")
		run(core.PaperOverheads(), "measured (paper)")
	default:
		return fmt.Errorf("unknown overhead model %q (zero|paper|both)", *ovName)
	}
	return nil
}

// Measure is the spmeasure entry point: Table 1 plus function costs.
func Measure(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("spmeasure", flag.ContinueOnError)
	fs.SetOutput(w)
	samples := fs.Int("samples", 2000, "timing samples per cell")
	raw := fs.Bool("raw", false, "also print the raw measurement rows")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *samples < 10 {
		return fmt.Errorf("need at least 10 samples, got %d", *samples)
	}
	rows := measureTable1(*samples)
	fmt.Fprint(w, formatTable1(rows))
	if *raw {
		fmt.Fprintln(w)
		for _, r := range rows {
			fmt.Fprintln(w, "  "+r.String())
		}
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, formatFunctionCosts(*samples))
	return nil
}
