package cli

import "repro/internal/measure"

// Thin indirection over the measurement harness so exp.go reads as
// flag wiring only.

func measureTable1(samples int) []measure.Row { return measure.Table1(samples) }

func formatTable1(rows []measure.Row) string { return measure.FormatTable1(rows) }

func formatFunctionCosts(samples int) string {
	return measure.FormatFunctionCosts(measure.FunctionCosts(samples))
}
