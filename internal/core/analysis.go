package core

import (
	"repro/internal/analysis"
	"repro/internal/overhead"
	"repro/internal/task"
)

// analysisSchedulable isolates the analysis dependency so core.go
// reads as the API index.
func analysisSchedulable(a *task.Assignment, m *overhead.Model) bool {
	return analysis.AssignmentSchedulable(a, m)
}

func edfSchedulable(a *task.Assignment, m *overhead.Model) bool {
	return analysis.EDFAssignmentSchedulable(a, m)
}
