package core

import (
	"repro/internal/analysis"
	"repro/internal/overhead"
	"repro/internal/task"
)

// analysisSchedulable isolates the analysis dependency so core.go
// reads as the API index. It dispatches on the assignment's policy.
func analysisSchedulable(a *task.Assignment, m *overhead.Model) bool {
	return analysis.Schedulable(a, m)
}

func edfSchedulable(a *task.Assignment, m *overhead.Model) bool {
	return analysis.EDFDemand.Schedulable(a, m)
}
