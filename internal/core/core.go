// Package core is the library's public surface: semi-partitioned
// fixed-priority multi-core scheduling as implemented and evaluated in
// "Towards the Implementation and Evaluation of Semi-Partitioned
// Multi-Core Scheduling" (Zhang, Guan, Yi; PPES 2011).
//
// The pipeline mirrors the paper:
//
//	set := core.GenerateTaskSet(core.GenConfig{N: 16, TotalUtilization: 3.4, Seed: 1})
//	a, err := core.Schedule(set, 4, core.FPTS, core.PaperOverheads())
//	// err == nil ⇒ schedulable including measured overheads
//	res, _ := core.Simulate(a, core.SimConfig{Model: core.PaperOverheads()})
//	// res.Schedulable() — the kernel-simulator ground truth
//
// Subsystems (task model, analysis, partitioners, simulator, overhead
// models, experiment driver) live in sibling packages; this package
// re-exports the types a downstream user touches and provides the
// high-level entry points.
package core

import (
	"context"

	"repro/internal/analysis"
	"repro/internal/experiment"
	"repro/internal/overhead"
	"repro/internal/partition"
	"repro/internal/sched"
	"repro/internal/task"
	"repro/internal/taskgen"
	"repro/internal/timeq"
	"repro/internal/trace"
)

// Re-exported model types.
type (
	// Task is a sporadic task (C, T, D, WSS, RM priority).
	Task = task.Task
	// TaskSet is an ordered collection of tasks.
	TaskSet = task.Set
	// Assignment maps tasks (and split-task parts) to cores.
	Assignment = task.Assignment
	// Split describes one split task and its per-core budgets.
	Split = task.Split
	// Part is one per-core share of a split task.
	Part = task.Part
	// Time is the fixed-point nanosecond time type.
	Time = timeq.Time
	// OverheadModel carries the Section 3 overhead parameters.
	OverheadModel = overhead.Model
	// Algorithm is a partitioning algorithm (FP-TS, FFD, WFD, …).
	Algorithm = partition.Algorithm
	// SimConfig parameterizes a simulation run.
	SimConfig = sched.Config
	// SimResult is a simulation outcome.
	SimResult = sched.Result
	// TraceBuffer retains a simulation event stream.
	TraceBuffer = trace.Buffer
	// GenConfig parameterizes random task-set generation.
	GenConfig = taskgen.Config
	// SweepConfig parameterizes an acceptance-ratio experiment.
	SweepConfig = experiment.Config
	// SweepSetCache shares generated task sets across paired sweeps
	// (SweepConfig.SetCache).
	SweepSetCache = taskgen.SetCache
	// SweepProgress is one streaming partial-result update of a sweep.
	SweepProgress = experiment.CellUpdate
	// SweepResults is the outcome of an acceptance-ratio experiment.
	SweepResults = experiment.Results
	// Policy is a per-core scheduling discipline (FixedPriority, EDF).
	Policy = task.Policy
	// Analyzer is the policy-generic admission test every partitioning
	// algorithm admits through.
	Analyzer = analysis.Analyzer
	// AdmissionContext is the stateful incremental admission session
	// the partitioners thread through their packing loops: per-core
	// caches, warm-started fixed points and memoized verdicts, with
	// decisions bit-identical to the stateless Analyzer path.
	AdmissionContext = analysis.Context
	// AdmissionSnapshot is an immutable copy-on-write fork of an
	// AdmissionContext's committed state (AdmissionContext.Fork): any
	// number of goroutines may probe it concurrently, lock-free, with
	// verdicts bit-identical to the stateless Analyzer. Forks are
	// republished on every committed mutation — the RCU-style read
	// path behind admitd's concurrent try/state/stats serving.
	AdmissionSnapshot = analysis.Snapshot
	// AdmissionStats counts admission work (probes, cache hits,
	// fixed-point iterations); see AdmissionStatsSnapshot.
	AdmissionStats = analysis.AdmissionStats
	// AdmissionCollector is a scoped admission-stats sink: attach one
	// to a context (AdmissionContext.SetCollector) or thread one
	// through a partition call (PartitionOptions.Stats) to account
	// one consumer's admission work without process-global
	// contamination.
	AdmissionCollector = analysis.Collector
	// PartitionOptions carries cancellation and a stats sink through
	// a partitioning call (Algorithm.PartitionOpts).
	PartitionOptions = partition.Options
)

// Time units.
const (
	Microsecond = timeq.Microsecond
	Millisecond = timeq.Millisecond
	Second      = timeq.Second
)

// The algorithms the paper compares, plus the reference SPA
// constructions.
var (
	// FPTS is the evaluated semi-partitioned algorithm.
	FPTS Algorithm = partition.TS
	// FFD is first-fit decreasing-utilization partitioning.
	FFD Algorithm = partition.FFD
	// WFD is worst-fit decreasing-utilization partitioning.
	WFD Algorithm = partition.WFD
	// BFD is best-fit decreasing-utilization partitioning.
	BFD Algorithm = partition.BFD
	// SPA1 and SPA2 are the literal RTAS'10 sequential constructions.
	SPA1 Algorithm = partition.SPA1
	SPA2 Algorithm = partition.SPA2
	// EDFWM is semi-partitioned EDF with deadline-window splitting
	// (the paper's "EDF scheduling" extension); EDFFFD and EDFWFD
	// are its partitioned baselines. Simulate EDF assignments with
	// SimConfig{Policy: core.EDF}.
	EDFWM  Algorithm = partition.WM
	EDFFFD Algorithm = partition.EDFFFD
	EDFWFD Algorithm = partition.EDFWFD
)

// Scheduling policies. Assignments carry their policy; SimConfig
// derives dispatching from it unless explicitly overridden.
const (
	FixedPriority = task.FixedPriority
	EDF           = task.EDF
)

// The admission analyzers behind the two policies; AnalyzerFor maps a
// policy to its analyzer.
var (
	// FixedPriorityAnalyzer is overhead-aware exact response-time
	// analysis with split-chain jitter resolution.
	FixedPriorityAnalyzer = analysis.FixedPriorityRTA
	// EDFAnalyzer is the overhead-aware processor-demand criterion
	// with EDF-WM deadline windows.
	EDFAnalyzer = analysis.EDFDemand
)

// AnalyzerFor returns the admission analyzer for a policy.
func AnalyzerFor(p Policy) Analyzer { return analysis.ForPolicy(p) }

// NewAdmissionContext opens an incremental admission context over the
// assignment for the given policy: the stateful counterpart of
// repeated Schedulable probes. The context owns all mutations of a
// for its lifetime (TryPlace/TrySplit/Commit/Rollback/Place/AddSplit)
// and answers exactly as the stateless analyzer would, doing only
// O(changed-core) work per probe.
func NewAdmissionContext(a *Assignment, p Policy, model *OverheadModel) AdmissionContext {
	return analysis.ForPolicy(p).NewContext(a, model)
}

// AdmissionStatsSnapshot returns the process-wide admission counters
// (probes, cache hits, fixed-point effort) flushed by admission
// contexts so far; diff two snapshots with Sub to scope a sweep.
func AdmissionStatsSnapshot() AdmissionStats { return analysis.StatsSnapshot() }

// ErrUnschedulable is returned by Schedule when the algorithm cannot
// place the set.
var ErrUnschedulable = partition.ErrUnschedulable

// PaperOverheads returns the overhead model measured in the paper
// (Table 1 plus the rls/sch/cnt function costs).
func PaperOverheads() *OverheadModel { return overhead.PaperModel() }

// ZeroOverheads returns the overhead-free "theoretical" model.
func ZeroOverheads() *OverheadModel { return overhead.Zero() }

// GenerateTaskSet draws one random task set (RM priorities assigned).
func GenerateTaskSet(cfg GenConfig) *TaskSet { return taskgen.New(cfg).Next() }

// GenerateTaskSets draws k independent task sets.
func GenerateTaskSets(cfg GenConfig, k int) []*TaskSet { return taskgen.New(cfg).Batch(k) }

// Schedule partitions the set onto cores with the given algorithm,
// admitting via exact response-time analysis under the overhead
// model. A nil model means zero overheads. The returned assignment is
// guaranteed schedulable under that model.
func Schedule(s *TaskSet, cores int, alg Algorithm, model *OverheadModel) (*Assignment, error) {
	return alg.Partition(s, cores, model)
}

// Schedulable reports whether an existing assignment passes the
// overhead-aware admission analysis for its own policy: exact
// fixed-priority RTA (including split-chain jitter resolution) for
// fixed-priority assignments, the processor-demand criterion for EDF
// ones. Hand-built assignments default to fixed priority.
func Schedulable(a *Assignment, model *OverheadModel) bool {
	return analysisSchedulable(a, model)
}

// EDFSchedulable reports whether an assignment passes the EDF
// processor-demand analysis (splits must carry deadline windows).
//
// Deprecated: assignments produced by EDF algorithms carry their
// policy, so Schedulable dispatches correctly; for hand-built EDF
// assignments use AnalyzerFor(EDF).Schedulable.
func EDFSchedulable(a *Assignment, model *OverheadModel) bool {
	return edfSchedulable(a, model)
}

// Simulate runs the assignment through the kernel-scheduler simulator.
func Simulate(a *Assignment, cfg SimConfig) (*SimResult, error) { return sched.Run(a, cfg) }

// Sweep runs an acceptance-ratio experiment (the Section 4 evaluation).
func Sweep(cfg SweepConfig) *SweepResults { return experiment.Run(cfg) }

// NewSweepSetCache returns an empty task-set cache for paired sweeps.
func NewSweepSetCache() *SweepSetCache { return taskgen.NewSetCache() }

// SweepContext is Sweep with cancellation: when ctx is canceled the
// pipeline aborts between placements and returns partial results with
// Canceled set. The admitd server runs client sweeps through this so
// a disconnect tears the work down.
func SweepContext(ctx context.Context, cfg SweepConfig) *SweepResults {
	return experiment.RunContext(ctx, cfg)
}
