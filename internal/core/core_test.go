package core

import (
	"errors"
	"testing"
)

func TestEndToEndPipeline(t *testing.T) {
	set := GenerateTaskSet(GenConfig{N: 12, TotalUtilization: 3.0, Seed: 11})
	a, err := Schedule(set, 4, FPTS, PaperOverheads())
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if !Schedulable(a, PaperOverheads()) {
		t.Fatal("returned assignment fails Schedulable")
	}
	res, err := Simulate(a, SimConfig{Model: PaperOverheads(), Horizon: 2 * Second})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable() {
		t.Fatalf("simulation missed deadlines: %v", res.Misses)
	}
}

func TestScheduleUnschedulable(t *testing.T) {
	// ΣU = 3.9 on 2 cores is impossible.
	set := GenerateTaskSet(GenConfig{N: 8, TotalUtilization: 3.9, Seed: 1})
	_, err := Schedule(set, 2, FFD, nil)
	if !errors.Is(err, ErrUnschedulable) {
		t.Fatalf("got %v", err)
	}
}

func TestAlgorithmsExported(t *testing.T) {
	names := map[string]Algorithm{
		"FP-TS": FPTS, "FFD": FFD, "WFD": WFD, "BFD": BFD, "SPA1": SPA1, "SPA2": SPA2,
	}
	for want, alg := range names {
		if alg.Name() != want {
			t.Errorf("algorithm %q has name %q", want, alg.Name())
		}
	}
}

func TestSchedulableNilModel(t *testing.T) {
	set := GenerateTaskSet(GenConfig{N: 6, TotalUtilization: 1.5, Seed: 3})
	a, err := Schedule(set, 4, WFD, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !Schedulable(a, nil) {
		t.Fatal("nil model should mean zero overheads")
	}
}

func TestSweepSmoke(t *testing.T) {
	r := Sweep(SweepConfig{
		Cores: 4, Tasks: 8, SetsPerPoint: 10,
		Utilizations: []float64{3.0, 3.6},
		Seed:         5,
	})
	if len(r.Series) != 3 {
		t.Fatalf("series %d", len(r.Series))
	}
	if r.Table() == "" || r.CSV() == "" {
		t.Fatal("empty outputs")
	}
}

func TestGenerateTaskSets(t *testing.T) {
	sets := GenerateTaskSets(GenConfig{N: 5, TotalUtilization: 1.0, Seed: 9}, 3)
	if len(sets) != 3 {
		t.Fatalf("got %d sets", len(sets))
	}
}
