package experiment

import (
	"math"

	"repro/internal/overhead"
	"repro/internal/partition"
	"repro/internal/task"
	"repro/internal/timeq"
)

// BreakdownFactor computes the breakdown utilization factor of a task
// set under an algorithm: the largest α (on a 1/grid granularity)
// such that the set with every WCET scaled by α is still admitted.
// α·ΣU is the classic "breakdown utilization" metric — how far the
// algorithm can push this workload before it gives up.
//
// Admission is not perfectly monotone in α for greedy packers, so the
// result is the largest grid point that was admitted during the
// bisection — a lower bound on the true breakdown.
func BreakdownFactor(s *task.Set, cores int, alg partition.Algorithm, model *overhead.Model, grid int) float64 {
	if grid <= 0 {
		grid = 1000
	}
	// The factor can exceed 1 for under-utilized sets; cap where
	// total utilization reaches the core count (beyond is impossible).
	u := s.TotalUtilization()
	hiF := float64(cores) / u
	// Individual tasks cannot exceed U = 1.
	if mu := s.MaxUtilization(); mu > 0 && 1/mu < hiF {
		hiF = 1 / mu
	}
	hi := int(math.Floor(hiF * float64(grid)))
	lo := 0
	admits := func(k int) bool {
		if k <= 0 {
			return true
		}
		scaled := scaleWCET(s, float64(k)/float64(grid))
		_, err := alg.Partition(scaled, cores, model)
		return err == nil
	}
	if admits(hi) {
		return float64(hi) / float64(grid)
	}
	best := 0
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if admits(mid) {
			if mid > best {
				best = mid
			}
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return float64(best) / float64(grid)
}

// scaleWCET clones the set with every WCET multiplied by f (clamped
// to [1ns, period]).
func scaleWCET(s *task.Set, f float64) *task.Set {
	out := s.Clone()
	for _, t := range out.Tasks {
		c := timeq.Time(math.Round(float64(t.WCET) * f))
		if c < 1 {
			c = 1
		}
		if c > t.Period {
			c = t.Period
		}
		t.WCET = c
	}
	out.AssignRM()
	return out
}

// BreakdownComparison runs BreakdownFactor for several algorithms
// over a batch of sets and returns the mean breakdown *utilization*
// (α · ΣU / cores, i.e. per-core) per algorithm name.
func BreakdownComparison(sets []*task.Set, cores int, algs []partition.Algorithm, model *overhead.Model, grid int) map[string]float64 {
	out := map[string]float64{}
	for _, alg := range algs {
		sum := 0.0
		for _, s := range sets {
			f := BreakdownFactor(s, cores, alg, model, grid)
			sum += f * s.TotalUtilization() / float64(cores)
		}
		out[alg.Name()] = sum / float64(len(sets))
	}
	return out
}
