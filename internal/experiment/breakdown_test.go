package experiment

import (
	"testing"

	"repro/internal/overhead"
	"repro/internal/partition"
	"repro/internal/taskgen"
)

func TestBreakdownFactorBasics(t *testing.T) {
	g := taskgen.New(taskgen.Config{N: 8, TotalUtilization: 2.0, Seed: 10})
	s := g.Next()
	f := BreakdownFactor(s, 4, partition.TS, overhead.Zero(), 200)
	if f <= 1.0 {
		t.Fatalf("under-utilized set (ΣU=2 on 4 cores) should scale past 1, got %v", f)
	}
	// Scaling by the returned factor must still be admitted.
	scaled := scaleWCET(s, f)
	if _, err := partition.TS.Partition(scaled, 4, overhead.Zero()); err != nil {
		t.Fatalf("breakdown factor %v not actually admitted: %v", f, err)
	}
}

func TestBreakdownOrdering(t *testing.T) {
	// FP-TS must reach at least FFD's breakdown on every set, and EDF
	// at least RM's (on average).
	g := taskgen.New(taskgen.Config{N: 8, TotalUtilization: 2.4, Seed: 11})
	sets := g.Batch(5)
	res := BreakdownComparison(sets, 4, []partition.Algorithm{
		partition.TS, partition.FFD, partition.EDFFFD,
	}, overhead.Zero(), 100)
	if res["FP-TS"] < res["FFD"] {
		t.Fatalf("FP-TS breakdown %.3f below FFD %.3f", res["FP-TS"], res["FFD"])
	}
	if res["EDF-FFD"] < res["FFD"]-0.01 {
		t.Fatalf("EDF breakdown %.3f below RM %.3f", res["EDF-FFD"], res["FFD"])
	}
	// Per-core breakdown utilizations land in (0.5, 1].
	for name, v := range res {
		if v <= 0.5 || v > 1.0001 {
			t.Fatalf("%s breakdown %.3f implausible", name, v)
		}
	}
}

func TestScaleWCETClamps(t *testing.T) {
	g := taskgen.New(taskgen.Config{N: 4, TotalUtilization: 1.0, Seed: 12})
	s := g.Next()
	big := scaleWCET(s, 1e9)
	for _, tk := range big.Tasks {
		if tk.WCET > tk.Period {
			t.Fatal("WCET exceeded period after scaling")
		}
	}
	tiny := scaleWCET(s, 1e-15)
	for _, tk := range tiny.Tasks {
		if tk.WCET < 1 {
			t.Fatal("WCET below one tick")
		}
	}
}
