package experiment

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/overhead"
	"repro/internal/partition"
)

// TestRunContextCancel checks cancellation: a sweep canceled from its
// own progress stream returns promptly, marks the results canceled,
// and reports only the shards that finished.
func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{
		Cores: 4, Tasks: 12, SetsPerPoint: 64, Seed: 3,
		Model:     overhead.PaperModel(),
		Workers:   2,
		ShardSize: 4,
		Progress: func(u CellUpdate) {
			if u.DoneShards >= 2 {
				cancel()
			}
		},
	}
	start := time.Now()
	res := RunContext(ctx, cfg)
	if !res.Canceled {
		t.Fatal("results must be marked canceled")
	}
	total := 0
	for _, s := range res.Series {
		for _, p := range s.Points {
			total += p.Total
		}
	}
	full := res.Config.SetsPerPoint * len(res.Config.Utilizations) * len(res.Config.Algorithms)
	if total >= full {
		t.Fatalf("canceled sweep still completed all %d set-offers", total)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestRunStatsScopedPerRun checks the per-run collector: two
// identical sweeps running concurrently must each report exactly the
// admission work a solo run reports — the process-global
// contamination the collector replaced would double the totals.
func TestRunStatsScopedPerRun(t *testing.T) {
	cfg := Config{
		Cores: 4, Tasks: 10, SetsPerPoint: 10, Seed: 7,
		Utilizations: []float64{2.4, 2.8},
		Algorithms:   []partition.Algorithm{partition.FFD, partition.TS},
		Model:        overhead.PaperModel(),
	}
	solo := Run(cfg)
	if solo.Admission.Probes == 0 {
		t.Fatal("solo sweep recorded no probes")
	}
	var wg sync.WaitGroup
	results := make([]*Results, 2)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = Run(cfg)
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r.Admission != solo.Admission {
			t.Fatalf("concurrent run %d admission %+v != solo %+v (cross-run contamination)", i, r.Admission, solo.Admission)
		}
	}
}
