package experiment

import (
	"fmt"
	"strings"

	"repro/internal/overhead"
	"repro/internal/partition"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/timeq"
)

// SplittingCharacterization quantifies the paper's headline sentence —
// "the extra overhead caused by task splitting in semi-partitioned
// scheduling is very low" — with simulation data.
//
// FP-TS splits only when whole placement fails, so a paired
// comparison against FFD on common sets is vacuous (the assignments
// coincide). Instead, admitted FP-TS assignments are grouped by
// whether they contain split tasks, each group is simulated, and the
// kernel-overhead share of core time is compared: the difference is
// the splitting surcharge, with migration rates reported alongside to
// show what drives it.
type SplittingCharacterization struct {
	Algorithm string
	// SplitSets and UnsplitSets count the group sizes.
	SplitSets, UnsplitSets int
	// OverheadShareSplit/Unsplit summarize the per-run overhead
	// share of core time (fractions) in each group.
	OverheadShareSplit, OverheadShareUnsplit stats.Summary
	// MigrationsPerSec summarizes migration rates in the split group
	// (zero by construction in the unsplit group).
	MigrationsPerSec stats.Summary
	// PreemptionsPerSecSplit/Unsplit summarize preemption rates.
	PreemptionsPerSecSplit, PreemptionsPerSecUnsplit stats.Summary
}

// CharacterizeSplitting runs the grouped comparison over the given
// sets (use a utilization high enough that some admitted sets need
// splits and some do not).
func CharacterizeSplitting(sets []*task.Set, cores int, alg partition.Algorithm, model *overhead.Model, horizon timeq.Time) (*SplittingCharacterization, error) {
	if model == nil {
		model = overhead.Zero()
	}
	if horizon <= 0 {
		horizon = 2 * timeq.Second
	}
	out := &SplittingCharacterization{Algorithm: alg.Name()}
	var shareS, shareU, mig, preS, preU []float64
	secs := horizon.Seconds()
	for _, s := range sets {
		a, err := alg.Partition(s.Clone(), cores, model)
		if err != nil {
			continue
		}
		r, err := sched.Run(a, sched.Config{Model: model, Horizon: horizon})
		if err != nil {
			return nil, err
		}
		if a.NumSplit() > 0 {
			out.SplitSets++
			shareS = append(shareS, r.Stats.OverheadRatio(cores))
			mig = append(mig, float64(r.Stats.Migrations)/secs)
			preS = append(preS, float64(r.Stats.Preemptions)/secs)
		} else {
			out.UnsplitSets++
			shareU = append(shareU, r.Stats.OverheadRatio(cores))
			preU = append(preU, float64(r.Stats.Preemptions)/secs)
		}
	}
	out.OverheadShareSplit = stats.Summarize(shareS)
	out.OverheadShareUnsplit = stats.Summarize(shareU)
	out.MigrationsPerSec = stats.Summarize(mig)
	out.PreemptionsPerSecSplit = stats.Summarize(preS)
	out.PreemptionsPerSecUnsplit = stats.Summarize(preU)
	return out, nil
}

// Surcharge returns the mean extra overhead share of core time that
// split assignments pay over unsplit ones.
func (c *SplittingCharacterization) Surcharge() float64 {
	return c.OverheadShareSplit.Mean - c.OverheadShareUnsplit.Mean
}

// Table renders the comparison.
func (c *SplittingCharacterization) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s overhead characterization: %d split vs %d unsplit admitted sets\n",
		c.Algorithm, c.SplitSets, c.UnsplitSets)
	fmt.Fprintf(&sb, "%-26s %12s %12s\n", "", "with splits", "no splits")
	fmt.Fprintf(&sb, "%-26s %11.4f%% %11.4f%%\n", "overhead share (mean)", 100*c.OverheadShareSplit.Mean, 100*c.OverheadShareUnsplit.Mean)
	fmt.Fprintf(&sb, "%-26s %11.4f%% %11.4f%%\n", "overhead share (max)", 100*c.OverheadShareSplit.Max, 100*c.OverheadShareUnsplit.Max)
	fmt.Fprintf(&sb, "%-26s %12.1f %12.1f\n", "preemptions / s (mean)", c.PreemptionsPerSecSplit.Mean, c.PreemptionsPerSecUnsplit.Mean)
	fmt.Fprintf(&sb, "%-26s %12.1f %12s\n", "migrations / s (mean)", c.MigrationsPerSec.Mean, "0")
	fmt.Fprintf(&sb, "splitting surcharge: %+.4f%% of core time\n", 100*c.Surcharge())
	return sb.String()
}
