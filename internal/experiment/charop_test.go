package experiment

import (
	"strings"
	"testing"

	"repro/internal/overhead"
	"repro/internal/partition"
	"repro/internal/taskgen"
	"repro/internal/timeq"
)

func TestCharacterizeSplitting(t *testing.T) {
	// ΣU = 3.7 on 4 cores: FP-TS admits a mix of split and unsplit
	// assignments.
	g := taskgen.New(taskgen.Config{N: 10, TotalUtilization: 3.7, Seed: 5150})
	sets := g.Batch(25)
	c, err := CharacterizeSplitting(sets, 4, partition.TS, overhead.PaperModel(), timeq.Second)
	if err != nil {
		t.Fatal(err)
	}
	if c.SplitSets == 0 || c.UnsplitSets == 0 {
		t.Fatalf("need both groups: split=%d unsplit=%d", c.SplitSets, c.UnsplitSets)
	}
	// µs overheads against ms periods: both groups stay tiny (the
	// paper's conclusion) …
	if c.OverheadShareSplit.Mean > 0.02 || c.OverheadShareUnsplit.Mean > 0.02 {
		t.Fatalf("overhead shares implausibly high: %v vs %v",
			c.OverheadShareSplit.Mean, c.OverheadShareUnsplit.Mean)
	}
	// … and the surcharge is well under 1% of core time.
	if d := c.Surcharge(); d > 0.01 || d < -0.01 {
		t.Fatalf("splitting surcharge %v out of band", d)
	}
	// Split assignments actually migrate.
	if c.MigrationsPerSec.Mean <= 0 {
		t.Fatal("split group reports no migrations")
	}
	tab := c.Table()
	for _, want := range []string{"FP-TS", "with splits", "no splits", "migrations / s", "surcharge"} {
		if !strings.Contains(tab, want) {
			t.Errorf("table missing %q:\n%s", want, tab)
		}
	}
}

func TestCharacterizeEmptyGroups(t *testing.T) {
	// Low utilization: no splits at all; the summary stays usable.
	g := taskgen.New(taskgen.Config{N: 8, TotalUtilization: 2.0, Seed: 1})
	c, err := CharacterizeSplitting(g.Batch(3), 4, partition.TS, nil, timeq.Second)
	if err != nil {
		t.Fatal(err)
	}
	if c.SplitSets != 0 || c.UnsplitSets != 3 {
		t.Fatalf("groups: %d/%d", c.SplitSets, c.UnsplitSets)
	}
	if c.Table() == "" {
		t.Fatal("empty table")
	}
}
