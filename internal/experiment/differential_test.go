package experiment

import (
	"testing"

	"repro/internal/overhead"
	"repro/internal/partition"
	"repro/internal/taskgen"
)

// The sweep engine's whole performance apparatus — per-worker
// contexts recycled with Context.Reset, assignments and entity slabs
// from the arena, probe verdicts shared across all nine algorithms
// through the SweepCache, sets generated into recycled slabs (and
// optionally memoized in a SetCache) — must be invisible in the
// numbers. Every cell of a Run is pinned here against a reference
// that partitions freshly generated sets with no arena, no cache and
// no recycling at all, one call per (set, algorithm).
func TestSweepMatchesArenaFreeReference(t *testing.T) {
	algs := []partition.Algorithm{
		partition.TS, partition.FFD, partition.WFD, partition.BFD,
		partition.SPA1, partition.SPA2,
		partition.WM, partition.EDFFFD, partition.EDFWFD,
	}
	cfg := Config{
		Cores:        4,
		Tasks:        10,
		SetsPerPoint: 12,
		Utilizations: []float64{2.8, 3.2, 3.6},
		Model:        overhead.PaperModel(),
		Seed:         7,
		Algorithms:   algs,
		Workers:      3,
	}
	r := Run(cfg)

	// A cached-generation run is the same sweep: generation is
	// deterministic per (Seed, grid point, set index), the cache only
	// dedupes it.
	cached := cfg
	cached.SetCache = taskgen.NewSetCache()
	if got, want := Run(cached).Table(), r.Table(); got != want {
		t.Fatalf("SetCache changed the table:\n%s\nvs\n%s", got, want)
	}

	for ui, u := range cfg.Utilizations {
		for ai, alg := range algs {
			accepted, splits := 0, 0
			for si := 0; si < cfg.SetsPerPoint; si++ {
				gcfg := taskgen.Config{
					N:                cfg.Tasks,
					TotalUtilization: u,
					Seed:             setSeed(cfg.Seed, ui, si),
				}
				set := taskgen.New(gcfg).Next()
				a, err := alg.Partition(set, cfg.Cores, cfg.Model)
				if err != nil {
					continue
				}
				accepted++
				splits += a.NumSplit()
			}
			p := r.Series[ai].Points[ui]
			if p.TotalUtilization != u {
				t.Fatalf("%s: point %d has U=%v, want %v", alg.Name(), ui, p.TotalUtilization, u)
			}
			meanSplits := 0.0
			if accepted > 0 {
				meanSplits = float64(splits) / float64(accepted)
			}
			if p.Accepted != accepted || p.Total != cfg.SetsPerPoint || p.Splits != meanSplits {
				t.Fatalf("%s U=%v: sweep accepted=%d splits=%v total=%d, reference accepted=%d splits=%v",
					alg.Name(), u, p.Accepted, p.Splits, p.Total, accepted, meanSplits)
			}
		}
	}
}
