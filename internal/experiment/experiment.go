// Package experiment drives the paper's Section 4 evaluation: the
// acceptance ratio of FP-TS versus the partitioned FFD and WFD
// heuristics over randomly generated task sets, with the measured
// overheads integrated into the admission analysis.
//
// One Run sweeps a grid of total utilizations; at each grid point it
// generates SetsPerPoint task sets (shared across algorithms, so the
// comparison is paired) and counts how many each algorithm schedules.
// Optionally each accepted assignment is also simulated and checked
// for deadline misses, tying the whole pipeline together.
package experiment

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/overhead"
	"repro/internal/partition"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/taskgen"
	"repro/internal/timeq"
)

// Config parameterizes a sweep.
type Config struct {
	// Cores is the platform size (the paper: 4).
	Cores int
	// Tasks is the number of tasks per generated set.
	Tasks int
	// SetsPerPoint is the number of random sets per grid point.
	SetsPerPoint int
	// Utilizations is the ΣU grid. Empty means 0.600·m … 0.975·m in
	// steps of 0.025·m.
	Utilizations []float64
	// Algorithms compared; empty means FP-TS, FFD, WFD.
	Algorithms []partition.Algorithm
	// Model is the overhead model for admission (nil = zero).
	Model *overhead.Model
	// Periods configures the period distribution.
	Periods taskgen.PeriodDist
	// PeriodMin/PeriodMax override the 10ms–1000ms default range.
	PeriodMin, PeriodMax timeq.Time
	// Seed makes the sweep deterministic.
	Seed int64
	// Workers bounds parallelism; 0 means GOMAXPROCS.
	Workers int
	// SimHorizon, when nonzero, also simulates every accepted
	// assignment for that long and records deadline-miss violations
	// (an end-to-end soundness check; expected zero).
	SimHorizon timeq.Time
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Cores == 0 {
		out.Cores = 4
	}
	if out.Tasks == 0 {
		out.Tasks = 16
	}
	if out.SetsPerPoint == 0 {
		out.SetsPerPoint = 200
	}
	if len(out.Utilizations) == 0 {
		m := float64(out.Cores)
		for u := 0.600; u <= 0.9751; u += 0.025 {
			out.Utilizations = append(out.Utilizations, u*m)
		}
	}
	if len(out.Algorithms) == 0 {
		out.Algorithms = []partition.Algorithm{partition.TS, partition.FFD, partition.WFD}
	}
	if out.Model == nil {
		out.Model = overhead.Zero()
	}
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	return out
}

// Point is one (utilization, algorithm) cell.
type Point struct {
	TotalUtilization float64
	Accepted, Total  int
	// Ratio is Accepted/Total; WilsonLo/Hi the 95% interval.
	Ratio, WilsonLo, WilsonHi float64
	// Splits is the mean number of split tasks among accepted
	// assignments (0 for partitioned algorithms).
	Splits float64
	// Migratory is the mean fraction of tasks that are split.
	Migratory float64
	// SimViolations counts accepted assignments that missed a
	// deadline in simulation (expected 0; see Config.SimHorizon).
	SimViolations int
}

// Series is one algorithm's curve.
type Series struct {
	Algorithm string
	Points    []Point
}

// Results is the outcome of a sweep.
type Results struct {
	Config Config
	Series []Series
}

// Run executes the sweep.
func Run(cfg Config) *Results {
	cfg = cfg.withDefaults()
	type cell struct {
		accepted, total int
		splits          int
		splitTasks      int
		violations      int
	}
	grid := make([][]cell, len(cfg.Algorithms))
	for i := range grid {
		grid[i] = make([]cell, len(cfg.Utilizations))
	}

	// EDF algorithms produce assignments that must also be simulated
	// under EDF dispatching.
	policyOf := func(alg partition.Algorithm) sched.Policy {
		if m, ok := alg.(interface{ EDFPolicy() bool }); ok && m.EDFPolicy() {
			return sched.EDF
		}
		return sched.FixedPriority
	}

	type unit struct {
		ui  int
		set *task.Set
	}
	work := make(chan unit)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range work {
				for ai, alg := range cfg.Algorithms {
					a, err := alg.Partition(u.set.Clone(), cfg.Cores, cfg.Model)
					ok := err == nil
					violated := 0
					nSplits := 0
					if ok {
						nSplits = a.NumSplit()
						if cfg.SimHorizon > 0 {
							r, serr := sched.Run(a, sched.Config{Model: cfg.Model, Horizon: cfg.SimHorizon, Policy: policyOf(alg)})
							if serr != nil || !r.Schedulable() {
								violated = 1
							}
						}
					}
					mu.Lock()
					c := &grid[ai][u.ui]
					c.total++
					if ok {
						c.accepted++
						c.splits += nSplits
						c.violations += violated
					}
					mu.Unlock()
				}
			}
		}()
	}

	for ui, u := range cfg.Utilizations {
		gen := taskgen.New(taskgen.Config{
			N:                cfg.Tasks,
			TotalUtilization: u,
			Periods:          cfg.Periods,
			PeriodMin:        cfg.PeriodMin,
			PeriodMax:        cfg.PeriodMax,
			Seed:             cfg.Seed + int64(ui)*1_000_003,
		})
		for _, s := range gen.Batch(cfg.SetsPerPoint) {
			work <- unit{ui: ui, set: s}
		}
	}
	close(work)
	wg.Wait()

	res := &Results{Config: cfg}
	for ai, alg := range cfg.Algorithms {
		series := Series{Algorithm: alg.Name()}
		for ui, u := range cfg.Utilizations {
			c := grid[ai][ui]
			lo, hi := stats.WilsonInterval(c.accepted, c.total)
			p := Point{
				TotalUtilization: u,
				Accepted:         c.accepted,
				Total:            c.total,
				Ratio:            stats.Proportion(c.accepted, c.total),
				WilsonLo:         lo,
				WilsonHi:         hi,
				SimViolations:    c.violations,
			}
			if c.accepted > 0 {
				p.Splits = float64(c.splits) / float64(c.accepted)
				p.Migratory = p.Splits / float64(cfg.Tasks)
			}
			series.Points = append(series.Points, p)
		}
		res.Series = append(res.Series, series)
	}
	return res
}

// TotalSimViolations sums simulation violations across the sweep.
func (r *Results) TotalSimViolations() int {
	n := 0
	for _, s := range r.Series {
		for _, p := range s.Points {
			n += p.SimViolations
		}
	}
	return n
}

// Table renders the acceptance-ratio comparison, one row per
// utilization (normalized per core), one column per algorithm —
// the paper's Section 4 result.
func (r *Results) Table() string {
	var sb strings.Builder
	m := float64(r.Config.Cores)
	width := 10
	for _, s := range r.Series {
		if len(s.Algorithm)+2 > width {
			width = len(s.Algorithm) + 2
		}
	}
	sb.WriteString(fmt.Sprintf("%-8s", "U/m"))
	for _, s := range r.Series {
		sb.WriteString(fmt.Sprintf("%*s", width, s.Algorithm))
	}
	sb.WriteString("\n")
	for pi := range r.Series[0].Points {
		sb.WriteString(fmt.Sprintf("%-8.3f", r.Series[0].Points[pi].TotalUtilization/m))
		for _, s := range r.Series {
			sb.WriteString(fmt.Sprintf("%*.3f", width, s.Points[pi].Ratio))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// CSV renders the full results for plotting: one row per
// (algorithm, utilization).
func (r *Results) CSV() string {
	var sb strings.Builder
	sb.WriteString("algorithm,total_utilization,per_core_utilization,accepted,total,ratio,wilson_lo,wilson_hi,mean_splits,sim_violations\n")
	for _, s := range r.Series {
		for _, p := range s.Points {
			sb.WriteString(fmt.Sprintf("%s,%.4f,%.4f,%d,%d,%.4f,%.4f,%.4f,%.3f,%d\n",
				s.Algorithm, p.TotalUtilization, p.TotalUtilization/float64(r.Config.Cores),
				p.Accepted, p.Total, p.Ratio, p.WilsonLo, p.WilsonHi, p.Splits, p.SimViolations))
		}
	}
	return sb.String()
}

// WeightedScore is the area under the acceptance curve (mean ratio
// over the grid) — a scalar for comparing algorithms in ablations.
func (r *Results) WeightedScore(algorithm string) float64 {
	for _, s := range r.Series {
		if s.Algorithm != algorithm {
			continue
		}
		sum := 0.0
		for _, p := range s.Points {
			sum += p.Ratio
		}
		return sum / float64(len(s.Points))
	}
	return 0
}

// SeriesNames lists the algorithms in order.
func (r *Results) SeriesNames() []string {
	var out []string
	for _, s := range r.Series {
		out = append(out, s.Algorithm)
	}
	sort.Strings(out)
	return out
}
