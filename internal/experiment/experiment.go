// Package experiment drives the paper's Section 4 evaluation: the
// acceptance ratio of FP-TS versus the partitioned FFD and WFD
// heuristics over randomly generated task sets, with the measured
// overheads integrated into the admission analysis.
//
// One Run sweeps a grid of total utilizations; at each grid point it
// generates SetsPerPoint task sets (shared across algorithms, so the
// comparison is paired) and counts how many each algorithm schedules.
// Optionally each accepted assignment is also simulated and checked
// for deadline misses, tying the whole pipeline together.
//
// # Pipeline
//
// Run is a streaming sharded pipeline: the sweep is cut into
// (utilization point × set-index range) shards, a fixed worker pool
// consumes them from a channel, and each completed shard is folded
// into a streaming aggregator that recomputes the affected cells'
// acceptance counts and Wilson intervals and reports them through the
// optional Progress callback. Task sets are seeded per (point, index),
// so results are bit-identical regardless of worker count, shard size
// or which other algorithms share the sweep — a mixed fixed-priority +
// EDF algorithm list is one paired sweep, and each algorithm's curve
// equals the one a single-algorithm run would produce.
package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/overhead"
	"repro/internal/partition"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/taskgen"
	"repro/internal/timeq"
)

// Config parameterizes a sweep.
type Config struct {
	// Cores is the platform size (the paper: 4).
	Cores int
	// Tasks is the number of tasks per generated set.
	Tasks int
	// SetsPerPoint is the number of random sets per grid point.
	SetsPerPoint int
	// Utilizations is the ΣU grid. Empty means 0.600·m … 0.975·m in
	// steps of 0.025·m.
	Utilizations []float64
	// Algorithms compared; empty means FP-TS, FFD, WFD.
	Algorithms []partition.Algorithm
	// Model is the overhead model for admission (nil = zero).
	Model *overhead.Model
	// Periods configures the period distribution.
	Periods taskgen.PeriodDist
	// PeriodMin/PeriodMax override the 10ms–1000ms default range.
	PeriodMin, PeriodMax timeq.Time
	// Seed makes the sweep deterministic. Every task set is derived
	// from (Seed, grid point, set index) alone, so results do not
	// depend on Workers, ShardSize or the algorithm list.
	Seed int64
	// Workers bounds parallelism; 0 means GOMAXPROCS.
	Workers int
	// ShardSize is the number of task sets per work shard; 0 picks a
	// size that keeps every worker busy even at small SetsPerPoint.
	ShardSize int
	// Progress, when non-nil, receives one CellUpdate per algorithm
	// each time a shard completes, carrying that cell's running
	// acceptance count and Wilson interval. Callbacks are serialized
	// by the aggregator and must return quickly.
	Progress func(CellUpdate)
	// SimHorizon, when nonzero, also simulates every accepted
	// assignment for that long (under the assignment's own policy)
	// and records deadline-miss violations (an end-to-end soundness
	// check; expected zero).
	SimHorizon timeq.Time
	// SetCache, when non-nil, memoizes generated task sets across the
	// runs that share it: paired sweeps (the same grid under the zero
	// and measured overhead models) then generate each set once
	// instead of once per model. Results are identical either way —
	// generation is deterministic per (Seed, grid point, set index).
	SetCache *taskgen.SetCache
}

// CellUpdate is one streaming partial result: the state of a single
// (algorithm × utilization) cell after another shard folded in, plus
// overall sweep progress.
type CellUpdate struct {
	Algorithm        string
	TotalUtilization float64
	// Accepted/Total and the Wilson interval are the cell's running
	// values; Total reaches Config.SetsPerPoint when the cell is done.
	Accepted, Total    int
	Ratio              float64
	WilsonLo, WilsonHi float64
	// DoneShards/TotalShards track the whole sweep.
	DoneShards, TotalShards int
	// Admission carries the running admission-layer totals of this
	// sweep (probes, cache hit rate, fixed-point effort), accumulated
	// across every partitioner context the workers flushed so far.
	// The totals come from a per-run analysis.Collector, so
	// concurrent sweeps (or any other admission work in the process)
	// do not contaminate each other.
	Admission analysis.AdmissionStats
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Cores == 0 {
		out.Cores = 4
	}
	if out.Tasks == 0 {
		out.Tasks = 16
	}
	if out.SetsPerPoint == 0 {
		out.SetsPerPoint = 200
	}
	if len(out.Utilizations) == 0 {
		out.Utilizations = DefaultGrid(out.Cores)
	}
	if len(out.Algorithms) == 0 {
		out.Algorithms = []partition.Algorithm{partition.TS, partition.FFD, partition.WFD}
	}
	if out.Model == nil {
		out.Model = overhead.Zero()
	}
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	if out.ShardSize <= 0 {
		// Fine-grained shards: with work stealing the only cost of a
		// small shard is one aggregator fold, and high-utilization
		// shards can run many times longer than low-utilization ones —
		// coarse shards leave workers idle at the tail.
		total := out.SetsPerPoint * len(out.Utilizations)
		out.ShardSize = total / (16 * out.Workers)
		if out.ShardSize < 1 {
			out.ShardSize = 1
		}
	}
	if out.ShardSize > out.SetsPerPoint {
		out.ShardSize = out.SetsPerPoint
	}
	return out
}

// DefaultGrid returns the paper's utilization grid for m cores:
// per-core utilization 0.600 … 0.975 in steps of 0.025, scaled by m.
// The points are generated from integer per-mille steps so the values
// are exact and identical across platforms — a floating-point
// accumulator (u += 0.025) drifts by ULPs and can drop the last point.
func DefaultGrid(cores int) []float64 {
	m := float64(cores)
	var out []float64
	for pm := 600; pm <= 975; pm += 25 {
		out = append(out, float64(pm)/1000*m)
	}
	return out
}

// setSeed derives the generator seed of one task set from the sweep
// seed and the set's grid coordinates, via a splitmix64-style mix, so
// a set's identity is independent of sharding, worker scheduling and
// the algorithm list.
func setSeed(base int64, ui, si int) int64 {
	z := uint64(base) ^ 0x9e3779b97f4a7c15
	z += uint64(ui+1) * 0xbf58476d1ce4e5b9
	z += uint64(si+1) * 0x94d049bb133111eb
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Point is one (utilization, algorithm) cell.
type Point struct {
	TotalUtilization float64
	Accepted, Total  int
	// Ratio is Accepted/Total; WilsonLo/Hi the 95% interval.
	Ratio, WilsonLo, WilsonHi float64
	// Splits is the mean number of split tasks among accepted
	// assignments (0 for partitioned algorithms).
	Splits float64
	// Migratory is the mean fraction of tasks that are split.
	Migratory float64
	// SimViolations counts accepted assignments that missed a
	// deadline in simulation (expected 0; see Config.SimHorizon).
	SimViolations int
}

// Series is one algorithm's curve.
type Series struct {
	Algorithm string
	Points    []Point
}

// Results is the outcome of a sweep.
type Results struct {
	Config Config
	Series []Series
	// Admission is the admission-layer work the sweep performed: one
	// context per (task set × algorithm) cell spans every probe of
	// that cell's packing loop, so these counters expose the
	// incremental layer's cache hit rate and fixed-point effort.
	// The totals are scoped to this run by a per-run
	// analysis.Collector, so concurrent sweeps do not see each
	// other's work.
	Admission analysis.AdmissionStats
	// Canceled reports that the run's context was canceled before the
	// sweep completed; the cells hold whatever shards finished.
	Canceled bool
}

// cell accumulates one (algorithm × utilization) grid cell.
type cell struct {
	accepted, total int
	splits          int
	violations      int
}

// merge folds another partial cell in.
func (c *cell) merge(o cell) {
	c.accepted += o.accepted
	c.total += o.total
	c.splits += o.splits
	c.violations += o.violations
}

// shard is one unit of pool work: set indices [lo, hi) of grid
// point ui.
type shard struct{ ui, lo, hi int }

// aggregator folds completed shards into the result grid and streams
// per-cell partial results (with incrementally recomputed Wilson
// intervals) to the Progress callback.
type aggregator struct {
	mu          sync.Mutex
	cfg         *Config
	grid        [][]cell // [algorithm][utilization]
	doneShards  int
	totalShards int
	coll        *analysis.Collector // this run's admission totals
}

func newAggregator(cfg *Config, totalShards int) *aggregator {
	grid := make([][]cell, len(cfg.Algorithms))
	for i := range grid {
		grid[i] = make([]cell, len(cfg.Utilizations))
	}
	return &aggregator{cfg: cfg, grid: grid, totalShards: totalShards, coll: &analysis.Collector{}}
}

// fold merges one shard's per-algorithm partial cells and emits the
// updated cells. Progress callbacks run under the aggregator lock, so
// updates arrive serialized and each cell's counts are monotone.
func (ag *aggregator) fold(sh shard, partial []cell) {
	ag.mu.Lock()
	defer ag.mu.Unlock()
	ag.doneShards++
	for ai := range partial {
		ag.grid[ai][sh.ui].merge(partial[ai])
	}
	if ag.cfg.Progress == nil {
		return
	}
	adm := ag.coll.Snapshot()
	for ai, alg := range ag.cfg.Algorithms {
		c := ag.grid[ai][sh.ui]
		lo, hi := stats.WilsonInterval(c.accepted, c.total)
		ag.cfg.Progress(CellUpdate{
			Algorithm:        alg.Name(),
			TotalUtilization: ag.cfg.Utilizations[sh.ui],
			Accepted:         c.accepted,
			Total:            c.total,
			Ratio:            stats.Proportion(c.accepted, c.total),
			WilsonLo:         lo,
			WilsonHi:         hi,
			DoneShards:       ag.doneShards,
			TotalShards:      ag.totalShards,
			Admission:        adm,
		})
	}
}

// Run executes the sweep as a streaming sharded pipeline: a fixed
// worker pool consumes (grid point × set range) shards from per-worker
// queues with work stealing; each worker generates its sets on the fly
// into a recycled slab (one generation per set, shared across every
// algorithm and both policies — the comparison is paired), offers
// every set to every algorithm through its long-lived partition.Arena,
// optionally simulates accepted assignments under their own policy,
// and folds the shard into the aggregator.
func Run(cfg Config) *Results {
	return RunContext(context.Background(), cfg)
}

// workerState is one worker's long-lived scratch: a reconfigurable
// generator and task-set slab (taskgen pooling), and a partition
// arena holding one recycled admission context per policy plus the
// cross-algorithm probe-verdict memo.
type workerState struct {
	gen   *taskgen.Generator
	set   *task.Set
	arena *partition.Arena
}

// shardQueue is one worker's share of the sweep with an atomic take
// cursor, so idle workers steal from the tail of busy workers'
// queues. Per-set seeding makes results independent of who runs what.
type shardQueue struct {
	shards []shard
	next   atomic.Int64
}

// take pops the next unclaimed shard, reporting false when drained.
func (q *shardQueue) take() (shard, bool) {
	i := q.next.Add(1) - 1
	if i >= int64(len(q.shards)) {
		return shard{}, false
	}
	return q.shards[i], true
}

// RunContext is Run with cancellation: when ctx is canceled, workers
// stop picking up shards, the in-flight packing loops abort between
// placements, and the call returns promptly with whatever shards
// completed (Results.Canceled set). Servers use this to tear down
// sweeps whose client disconnected.
func RunContext(ctx context.Context, cfg Config) *Results {
	cfg = cfg.withDefaults()

	var shards []shard
	for ui := range cfg.Utilizations {
		for lo := 0; lo < cfg.SetsPerPoint; lo += cfg.ShardSize {
			hi := lo + cfg.ShardSize
			if hi > cfg.SetsPerPoint {
				hi = cfg.SetsPerPoint
			}
			shards = append(shards, shard{ui: ui, lo: lo, hi: hi})
		}
	}
	ag := newAggregator(&cfg, len(shards))

	// Deal the shards round-robin into per-worker queues; workers
	// drain their own queue first, then steal from the others. The
	// atomic take cursor makes stealing lock-free, and per-(point,
	// index) seeding keeps results identical however shards migrate.
	queues := make([]*shardQueue, cfg.Workers)
	for w := range queues {
		queues[w] = &shardQueue{}
	}
	for i, sh := range shards {
		q := queues[i%cfg.Workers]
		q.shards = append(q.shards, sh)
	}
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := &workerState{arena: partition.NewArena()}
			for qi := 0; qi < cfg.Workers; qi++ {
				q := queues[(w+qi)%cfg.Workers]
				for {
					sh, ok := q.take()
					if !ok {
						break
					}
					if ctx.Err() != nil {
						continue // drain without working
					}
					ag.fold(sh, runShard(ctx, &cfg, sh, ag.coll, ws))
				}
			}
		}(w)
	}
	wg.Wait()

	res := &Results{Config: cfg, Admission: ag.coll.Snapshot(), Canceled: ctx.Err() != nil}
	for ai, alg := range cfg.Algorithms {
		series := Series{Algorithm: alg.Name()}
		for ui, u := range cfg.Utilizations {
			c := ag.grid[ai][ui]
			lo, hi := stats.WilsonInterval(c.accepted, c.total)
			p := Point{
				TotalUtilization: u,
				Accepted:         c.accepted,
				Total:            c.total,
				Ratio:            stats.Proportion(c.accepted, c.total),
				WilsonLo:         lo,
				WilsonHi:         hi,
				SimViolations:    c.violations,
			}
			if c.accepted > 0 {
				p.Splits = float64(c.splits) / float64(c.accepted)
				p.Migratory = p.Splits / float64(cfg.Tasks)
			}
			series.Points = append(series.Points, p)
		}
		res.Series = append(res.Series, series)
	}
	return res
}

// runShard generates the shard's task sets and offers each to every
// algorithm, returning one partial cell per algorithm. Each
// (task set × algorithm) cell runs under one admission context that
// every probe of that cell's packing loop reuses (partitioners open
// it and thread it through; see analysis.Context), so a cell does
// O(changed-core) admission work per probe; the contexts flush their
// probe/cache/fixed-point counters into the sweep's Admission totals.
func runShard(ctx context.Context, cfg *Config, sh shard, coll *analysis.Collector, ws *workerState) []cell {
	partial := make([]cell, len(cfg.Algorithms))
	u := cfg.Utilizations[sh.ui]
	opts := partition.Options{Ctx: ctx, Stats: coll, Arena: ws.arena}
	for si := sh.lo; si < sh.hi; si++ {
		if ctx.Err() != nil {
			return partial // partial cells; the run is canceled anyway
		}
		gcfg := taskgen.Config{
			N:                cfg.Tasks,
			TotalUtilization: u,
			Periods:          cfg.Periods,
			PeriodMin:        cfg.PeriodMin,
			PeriodMax:        cfg.PeriodMax,
			Seed:             setSeed(cfg.Seed, sh.ui, si),
		}
		// One generation per set, into the worker's recycled slab; the
		// set is shared by every algorithm and both policies (tasks are
		// immutable once generated, so no defensive clones are needed —
		// partitioners sort into private copies). A caller-scoped
		// SetCache additionally shares the generation itself across
		// paired sweeps.
		if cfg.SetCache != nil {
			ws.set = cfg.SetCache.FirstInto(gcfg, ws.set)
		} else {
			if ws.gen == nil {
				ws.gen = taskgen.New(gcfg)
			} else {
				ws.gen.Reconfigure(gcfg)
			}
			ws.set = ws.gen.NextInto(ws.set)
		}
		set := ws.set
		ws.arena.BeginSet()
		for ai, alg := range cfg.Algorithms {
			c := &partial[ai]
			a, err := alg.PartitionOpts(set, cfg.Cores, cfg.Model, opts)
			if err != nil {
				if ctx.Err() != nil {
					return partial // canceled mid-set: don't count it
				}
				c.total++
				continue
			}
			c.total++
			c.accepted++
			c.splits += a.NumSplit()
			if cfg.SimHorizon > 0 {
				// The assignment carries its policy, so a mixed
				// fixed-priority + EDF sweep needs no per-algorithm
				// dispatch plumbing here.
				r, serr := sched.Run(a, sched.Config{Model: cfg.Model, Horizon: cfg.SimHorizon})
				if serr != nil || !r.Schedulable() {
					c.violations++
				}
			}
		}
	}
	return partial
}

// TotalSimViolations sums simulation violations across the sweep.
func (r *Results) TotalSimViolations() int {
	n := 0
	for _, s := range r.Series {
		for _, p := range s.Points {
			n += p.SimViolations
		}
	}
	return n
}

// Table renders the acceptance-ratio comparison, one row per
// utilization (normalized per core), one column per algorithm —
// the paper's Section 4 result.
func (r *Results) Table() string {
	var sb strings.Builder
	m := float64(r.Config.Cores)
	width := 10
	for _, s := range r.Series {
		if len(s.Algorithm)+2 > width {
			width = len(s.Algorithm) + 2
		}
	}
	sb.WriteString(fmt.Sprintf("%-8s", "U/m"))
	for _, s := range r.Series {
		sb.WriteString(fmt.Sprintf("%*s", width, s.Algorithm))
	}
	sb.WriteString("\n")
	for pi := range r.Series[0].Points {
		sb.WriteString(fmt.Sprintf("%-8.3f", r.Series[0].Points[pi].TotalUtilization/m))
		for _, s := range r.Series {
			sb.WriteString(fmt.Sprintf("%*.3f", width, s.Points[pi].Ratio))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// CSV renders the full results for plotting: one row per
// (algorithm, utilization).
func (r *Results) CSV() string {
	var sb strings.Builder
	sb.WriteString("algorithm,total_utilization,per_core_utilization,accepted,total,ratio,wilson_lo,wilson_hi,mean_splits,sim_violations\n")
	for _, s := range r.Series {
		for _, p := range s.Points {
			sb.WriteString(fmt.Sprintf("%s,%.4f,%.4f,%d,%d,%.4f,%.4f,%.4f,%.3f,%d\n",
				s.Algorithm, p.TotalUtilization, p.TotalUtilization/float64(r.Config.Cores),
				p.Accepted, p.Total, p.Ratio, p.WilsonLo, p.WilsonHi, p.Splits, p.SimViolations))
		}
	}
	return sb.String()
}

// WeightedScore is the area under the acceptance curve (mean ratio
// over the grid) — a scalar for comparing algorithms in ablations.
func (r *Results) WeightedScore(algorithm string) float64 {
	for _, s := range r.Series {
		if s.Algorithm != algorithm {
			continue
		}
		sum := 0.0
		for _, p := range s.Points {
			sum += p.Ratio
		}
		return sum / float64(len(s.Points))
	}
	return 0
}

// SeriesNames lists the algorithms in order.
func (r *Results) SeriesNames() []string {
	var out []string
	for _, s := range r.Series {
		out = append(out, s.Algorithm)
	}
	sort.Strings(out)
	return out
}
