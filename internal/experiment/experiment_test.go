package experiment

import (
	"strings"
	"testing"

	"repro/internal/overhead"
	"repro/internal/partition"
	"repro/internal/timeq"
)

// small returns a quick sweep config for tests.
func small() Config {
	return Config{
		Cores:        4,
		Tasks:        8,
		SetsPerPoint: 20,
		Utilizations: []float64{2.4, 3.2, 3.8},
		Seed:         7,
	}
}

func TestRunProducesFullGrid(t *testing.T) {
	r := Run(small())
	if len(r.Series) != 3 {
		t.Fatalf("series %d, want 3 (FP-TS, FFD, WFD)", len(r.Series))
	}
	for _, s := range r.Series {
		if len(s.Points) != 3 {
			t.Fatalf("%s: %d points", s.Algorithm, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Total != 20 {
				t.Fatalf("%s U=%v: total %d", s.Algorithm, p.TotalUtilization, p.Total)
			}
			if p.Accepted < 0 || p.Accepted > p.Total {
				t.Fatalf("bad accepted count %d", p.Accepted)
			}
			if p.Ratio < p.WilsonLo-1e-9 || p.Ratio > p.WilsonHi+1e-9 {
				t.Fatalf("ratio outside Wilson interval")
			}
		}
	}
}

func TestDeterministicSweep(t *testing.T) {
	a, b := Run(small()), Run(small())
	for i := range a.Series {
		for j := range a.Series[i].Points {
			if a.Series[i].Points[j].Accepted != b.Series[i].Points[j].Accepted {
				t.Fatal("sweep not deterministic")
			}
		}
	}
}

// The headline result: FP-TS acceptance dominates FFD and WFD at
// every grid point (paired sets + splitting fallback make this exact,
// not statistical).
func TestFPTSDominates(t *testing.T) {
	r := Run(small())
	byName := map[string][]Point{}
	for _, s := range r.Series {
		byName[s.Algorithm] = s.Points
	}
	ts, ffd, wfd := byName["FP-TS"], byName["FFD"], byName["WFD"]
	for i := range ts {
		if ts[i].Accepted < ffd[i].Accepted || ts[i].Accepted < wfd[i].Accepted {
			t.Fatalf("point %d: FP-TS %d vs FFD %d / WFD %d", i, ts[i].Accepted, ffd[i].Accepted, wfd[i].Accepted)
		}
	}
	// And strictly better somewhere in the high-utilization range.
	strict := false
	for i := range ts {
		if ts[i].Accepted > ffd[i].Accepted {
			strict = true
		}
	}
	if !strict {
		t.Fatal("FP-TS never strictly better; sweep grid too easy")
	}
}

// Acceptance ratio decreases with utilization for every algorithm.
func TestMonotoneDecreasingInUtilization(t *testing.T) {
	cfg := small()
	cfg.SetsPerPoint = 40
	r := Run(cfg)
	for _, s := range r.Series {
		for i := 1; i < len(s.Points); i++ {
			// Allow small statistical wiggle (2 sets).
			if s.Points[i].Accepted > s.Points[i-1].Accepted+2 {
				t.Errorf("%s: acceptance rose from %d to %d between U=%v and U=%v",
					s.Algorithm, s.Points[i-1].Accepted, s.Points[i].Accepted,
					s.Points[i-1].TotalUtilization, s.Points[i].TotalUtilization)
			}
		}
	}
}

// Overhead integration shifts curves only slightly for ms-scale
// periods (the paper's conclusion): at every grid point the
// acceptance drop from zero-overhead to paper-overhead is small.
func TestOverheadEffectIsSmall(t *testing.T) {
	cfg := small()
	cfg.SetsPerPoint = 40
	zero := Run(cfg)
	cfg.Model = overhead.PaperModel()
	paper := Run(cfg)
	for si := range zero.Series {
		for pi := range zero.Series[si].Points {
			z := zero.Series[si].Points[pi]
			p := paper.Series[si].Points[pi]
			drop := z.Ratio - p.Ratio
			if drop < 0 {
				t.Errorf("%s U=%v: overheads improved acceptance?", zero.Series[si].Algorithm, z.TotalUtilization)
			}
			if drop > 0.15 {
				t.Errorf("%s U=%v: overhead cost %.3f too large for ms periods", zero.Series[si].Algorithm, z.TotalUtilization, drop)
			}
		}
	}
}

// With simulation validation on, no accepted assignment misses.
func TestSimValidationCleanSweep(t *testing.T) {
	cfg := small()
	cfg.SetsPerPoint = 10
	cfg.Model = overhead.PaperModel()
	cfg.SimHorizon = 2 * timeq.Second
	r := Run(cfg)
	if v := r.TotalSimViolations(); v != 0 {
		t.Fatalf("%d accepted assignments missed deadlines in simulation", v)
	}
}

func TestSplitStatistics(t *testing.T) {
	cfg := small()
	cfg.Utilizations = []float64{3.8} // force splitting
	cfg.SetsPerPoint = 30
	r := Run(cfg)
	for _, s := range r.Series {
		for _, p := range s.Points {
			switch s.Algorithm {
			case "FP-TS":
				if p.Accepted > 0 && p.Splits == 0 {
					t.Error("FP-TS accepted at U/m=0.95 without splitting; implausible")
				}
			default:
				if p.Splits != 0 {
					t.Errorf("%s reports splits", s.Algorithm)
				}
			}
		}
	}
}

func TestOutputFormats(t *testing.T) {
	r := Run(small())
	table := r.Table()
	if !strings.Contains(table, "FP-TS") || !strings.Contains(table, "0.600") {
		t.Errorf("table:\n%s", table)
	}
	csv := r.CSV()
	if !strings.Contains(csv, "algorithm,total_utilization") || strings.Count(csv, "\n") != 1+3*3 {
		t.Errorf("csv rows wrong:\n%s", csv)
	}
	if r.WeightedScore("FP-TS") <= 0 {
		t.Error("weighted score")
	}
	if r.WeightedScore("nope") != 0 {
		t.Error("unknown algorithm score should be 0")
	}
	names := r.SeriesNames()
	if len(names) != 3 || names[0] != "FFD" {
		t.Errorf("names %v", names)
	}
}

func TestPlot(t *testing.T) {
	r := Run(small())
	p := r.Plot(10)
	for _, want := range []string{"acceptance ratio", "U/m (%)", "* FP-TS", "o FFD", "+ WFD", " 1.00 |", " 0.00 |"} {
		if !strings.Contains(p, want) {
			t.Errorf("plot missing %q:\n%s", want, p)
		}
	}
	// Degenerate height falls back to a sane default.
	if r.Plot(1) == "" {
		t.Error("tiny height produced nothing")
	}
}

func TestCustomAlgorithms(t *testing.T) {
	cfg := small()
	cfg.Algorithms = []partition.Algorithm{partition.SPA1, partition.SPA2}
	r := Run(cfg)
	if len(r.Series) != 2 || r.Series[0].Algorithm != "SPA1" {
		t.Fatalf("custom algorithms not honored: %v", r.SeriesNames())
	}
}

// EDF algorithms are validated under EDF dispatching: a sweep with
// simulation validation over the EDF algorithms must be clean.
func TestEDFSimValidationCleanSweep(t *testing.T) {
	cfg := small()
	cfg.SetsPerPoint = 8
	cfg.Algorithms = []partition.Algorithm{partition.WM, partition.EDFFFD}
	cfg.Model = overhead.PaperModel()
	cfg.SimHorizon = 2 * timeq.Second
	r := Run(cfg)
	if v := r.TotalSimViolations(); v != 0 {
		t.Fatalf("%d EDF assignments missed in simulation", v)
	}
}
