package experiment

import (
	"sync"
	"testing"

	"repro/internal/overhead"
	"repro/internal/partition"
	"repro/internal/timeq"
)

// seriesEqual compares two series point by point on the paired
// quantities (counts, not floats derived from them).
func seriesEqual(t *testing.T, a, b Series) {
	t.Helper()
	if a.Algorithm != b.Algorithm {
		t.Fatalf("series %q vs %q", a.Algorithm, b.Algorithm)
	}
	if len(a.Points) != len(b.Points) {
		t.Fatalf("%s: %d vs %d points", a.Algorithm, len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		p, q := a.Points[i], b.Points[i]
		if p.TotalUtilization != q.TotalUtilization || p.Accepted != q.Accepted ||
			p.Total != q.Total || p.Splits != q.Splits || p.SimViolations != q.SimViolations {
			t.Fatalf("%s point %d: %+v vs %+v", a.Algorithm, i, p, q)
		}
	}
}

// A mixed fixed-priority + EDF algorithm list is one paired sweep:
// each algorithm's curve is bit-identical to the curve a back-to-back
// single-algorithm run with the same seed produces. (Acceptance
// criterion of the Analyzer refactor.)
func TestMixedPolicyPairedSweepMatchesSingleRuns(t *testing.T) {
	base := Config{
		Cores:        4,
		Tasks:        8,
		SetsPerPoint: 15,
		Utilizations: []float64{2.8, 3.4, 3.8},
		Model:        overhead.PaperModel(),
		Seed:         11,
		SimHorizon:   timeq.Second,
	}
	mixed := base
	mixed.Algorithms = []partition.Algorithm{partition.TS, partition.WM}
	rm := Run(mixed)

	for i, alg := range mixed.Algorithms {
		single := base
		single.Algorithms = []partition.Algorithm{alg}
		rs := Run(single)
		seriesEqual(t, rm.Series[i], rs.Series[0])
	}
	if rm.TotalSimViolations() != 0 {
		t.Fatalf("%d simulation violations in mixed sweep", rm.TotalSimViolations())
	}
}

// Sharding and worker count must not change results: per-set seeding
// makes the sweep bit-deterministic under any decomposition.
func TestShardingInvariance(t *testing.T) {
	base := Config{
		Cores:        4,
		Tasks:        8,
		SetsPerPoint: 17, // deliberately not a multiple of any shard size
		Utilizations: []float64{3.0, 3.6},
		Seed:         5,
	}
	ref := Run(base)
	for _, variant := range []Config{
		{Workers: 1, ShardSize: 1},
		{Workers: 7, ShardSize: 3},
		{Workers: 2, ShardSize: 17},
	} {
		cfg := base
		cfg.Workers = variant.Workers
		cfg.ShardSize = variant.ShardSize
		r := Run(cfg)
		for i := range ref.Series {
			seriesEqual(t, ref.Series[i], r.Series[i])
		}
	}
}

// The default utilization grid is generated from integer steps, so
// every point is exact and the last point (0.975·m) is present.
func TestDefaultGridExact(t *testing.T) {
	grid := DefaultGrid(4)
	if len(grid) != 16 {
		t.Fatalf("grid has %d points, want 16: %v", len(grid), grid)
	}
	for i, u := range grid {
		want := float64(600+25*i) / 1000 * 4
		if u != want {
			t.Fatalf("point %d: %v, want exactly %v", i, u, want)
		}
	}
	if grid[len(grid)-1] != 0.975*4 {
		t.Fatalf("last point %v, want 3.9", grid[len(grid)-1])
	}
	// And the config default uses it.
	cfg := (&Config{Cores: 4}).withDefaults()
	if len(cfg.Utilizations) != 16 || cfg.Utilizations[15] != 3.9 {
		t.Fatalf("withDefaults grid: %v", cfg.Utilizations)
	}
}

// The streaming aggregator reports every shard exactly once, keeps
// per-cell counts monotone, and its final snapshot matches the
// returned results.
func TestProgressStreaming(t *testing.T) {
	var mu sync.Mutex
	type key struct {
		alg string
		u   float64
	}
	last := map[key]CellUpdate{}
	maxDone, total := 0, 0
	cfg := Config{
		Cores:        4,
		Tasks:        8,
		SetsPerPoint: 12,
		Utilizations: []float64{3.0, 3.8},
		Seed:         3,
		ShardSize:    4,
		Progress: func(u CellUpdate) {
			mu.Lock()
			defer mu.Unlock()
			k := key{u.Algorithm, u.TotalUtilization}
			if prev, ok := last[k]; ok {
				if u.Total < prev.Total || u.Accepted < prev.Accepted {
					t.Errorf("cell %v went backwards: %+v after %+v", k, u, prev)
				}
			}
			if u.Ratio < u.WilsonLo-1e-9 || u.Ratio > u.WilsonHi+1e-9 {
				t.Errorf("ratio outside streamed Wilson interval: %+v", u)
			}
			last[k] = u
			if u.DoneShards > maxDone {
				maxDone = u.DoneShards
			}
			total = u.TotalShards
		},
	}
	r := Run(cfg)
	if total != 6 { // 2 points × ceil(12/4) shards
		t.Fatalf("TotalShards %d, want 6", total)
	}
	if maxDone != total {
		t.Fatalf("DoneShards reached %d of %d", maxDone, total)
	}
	for _, s := range r.Series {
		for _, p := range s.Points {
			fin := last[key{s.Algorithm, p.TotalUtilization}]
			if fin.Accepted != p.Accepted || fin.Total != p.Total {
				t.Fatalf("final stream state %+v disagrees with result %+v", fin, p)
			}
		}
	}
}
