package experiment

import (
	"fmt"
	"strings"
)

// Plot renders the acceptance-ratio curves as an ASCII chart
// (utilization on x, acceptance on y), the closest a terminal gets to
// the paper's figures. Each algorithm is drawn with its own marker;
// coinciding points show the first algorithm's marker.
func (r *Results) Plot(height int) string {
	if height < 4 {
		height = 10
	}
	markers := []byte{'*', 'o', '+', 'x', '#', '@'}
	m := float64(r.Config.Cores)
	nCols := len(r.Config.Utilizations)
	grid := make([][]byte, height+1)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", nCols*3))
	}
	for si, s := range r.Series {
		mk := markers[si%len(markers)]
		for pi, p := range s.Points {
			row := height - int(p.Ratio*float64(height)+0.5)
			if row < 0 {
				row = 0
			}
			if row > height {
				row = height
			}
			col := pi*3 + 1
			if grid[row][col] == ' ' {
				grid[row][col] = mk
			}
		}
	}
	var sb strings.Builder
	sb.WriteString("acceptance ratio\n")
	for i, line := range grid {
		y := float64(height-i) / float64(height)
		sb.WriteString(fmt.Sprintf("%5.2f |%s|\n", y, string(line)))
	}
	sb.WriteString("      +" + strings.Repeat("-", nCols*3) + "+\n")
	sb.WriteString("       ")
	for _, u := range r.Config.Utilizations {
		sb.WriteString(fmt.Sprintf("%-3.0f", u/m*100))
	}
	sb.WriteString("  U/m (%)\n")
	for si, s := range r.Series {
		sb.WriteString(fmt.Sprintf("       %c %s\n", markers[si%len(markers)], s.Algorithm))
	}
	return sb.String()
}
