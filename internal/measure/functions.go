package measure

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/stats"
	"repro/internal/timeq"
)

// FunctionCosts measures user-space analogs of the paper's pure
// function execution times — release(), sch() and cnt_swth() minus
// their queue operations (which Table 1 covers separately):
//
//	rls — per-release bookkeeping: instantiate the job's timing
//	      fields (release, deadline, budget) from the task record;
//	sch — the scheduling decision: inspect the highest-priority
//	      ready entry and compare priorities;
//	cnt — the context-switch bookkeeping: swap the running-task
//	      record and generation counter.
//
// The paper reports 3µs / 5µs / 1.5µs inside the kernel (interrupt
// entry, pipeline flushes, cold caches); the user-space analogs are
// nanoseconds. The comparison is reported, not asserted.
func FunctionCosts(samples int) map[string]timeq.Time {
	type rec struct {
		release, deadline, budget int64
		running                   *rec
		gen                       int
	}
	tasks := make([]rec, 64)
	var running *rec

	time1 := func(f func(i int)) timeq.Time {
		durs := make([]float64, 0, samples)
		for s := 0; s < samples; s++ {
			start := time.Now()
			for i := 0; i < batch; i++ {
				f(i)
			}
			durs = append(durs, float64(time.Since(start).Nanoseconds())/batch)
		}
		sort.Float64s(durs)
		return timeq.Time(stats.Percentile(durs, 100))
	}

	out := map[string]timeq.Time{}
	out["rls"] = time1(func(i int) {
		r := &tasks[i%64]
		r.release += 10_000_000
		r.deadline = r.release + 10_000_000
		r.budget = 2_000_000
	})
	out["sch"] = time1(func(i int) {
		a, b := &tasks[i%64], &tasks[(i+1)%64]
		if a.budget < b.budget {
			running = a
		} else {
			running = b
		}
	})
	out["cnt"] = time1(func(i int) {
		prev := running
		running = &tasks[i%64]
		running.gen++
		if prev != nil {
			prev.running = nil
		}
	})
	return out
}

// FormatFunctionCosts renders measured function costs next to the
// paper's kernel measurements.
func FormatFunctionCosts(costs map[string]timeq.Time) string {
	paper := map[string]timeq.Time{
		"rls": 3 * timeq.Microsecond,
		"sch": 5 * timeq.Microsecond,
		"cnt": 1500 * timeq.Nanosecond,
	}
	var sb strings.Builder
	sb.WriteString("Function costs — measured user-space analog vs paper kernel value\n")
	for _, name := range []string{"rls", "sch", "cnt"} {
		sb.WriteString(fmt.Sprintf("  %-4s measured %-10v paper %v\n", name, costs[name], paper[name]))
	}
	return sb.String()
}
