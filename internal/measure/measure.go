// Package measure re-measures the paper's Table 1 on the host
// machine: the worst-case duration of single ready-queue (binomial
// heap) and sleep-queue (red-black tree) operations at N = 4 and
// N = 64 queued tasks, for local and remote (cross-goroutine,
// contended) access, plus analogs of the rls/sch/cnt_swth function
// costs.
//
// The paper measured a patched Linux 2.6.32 kernel on a Core-i7;
// there, queue operations cost microseconds because they include
// lock acquisition across cores and cold-cache traversals. A
// user-space Go microbenchmark on a time-shared machine reproduces
// the *shape* — remote > local, costs growing with N — at nanosecond
// scale; the calibrated paper numbers (overhead.PaperModel) remain
// the canonical inputs to the analysis. See EXPERIMENTS.md.
package measure

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/binheap"
	"repro/internal/overhead"
	"repro/internal/rbtree"
	"repro/internal/stats"
	"repro/internal/timeq"
)

// Row is one measured cell group of Table 1.
type Row struct {
	Op     overhead.Op
	N      int
	Remote bool
	// Median, P90 and Max duration of a single operation.
	Median, P90, Max timeq.Time
	Samples          int
}

// String renders the row.
func (r Row) String() string {
	loc := "local"
	if r.Remote {
		loc = "remote"
	}
	return fmt.Sprintf("%-22s %-6s N=%-3d median=%v p90=%v max=%v", r.Op, loc, r.N, r.Median, r.P90, r.Max)
}

// batch sizes one timing sample: ops per time.Now() pair, amortizing
// clock overhead below the per-op cost.
const batch = 128

// sampleToRow converts per-batch durations into a per-op Row.
func sampleToRow(op overhead.Op, n int, remote bool, perOpNanos []float64) Row {
	sort.Float64s(perOpNanos)
	return Row{
		Op: op, N: n, Remote: remote, Samples: len(perOpNanos),
		Median: timeq.Time(stats.Percentile(perOpNanos, 50)),
		P90:    timeq.Time(stats.Percentile(perOpNanos, 90)),
		Max:    timeq.Time(stats.Percentile(perOpNanos, 100)),
	}
}

// payload approximates a task_struct-sized ready-queue entry.
type payload struct {
	_ [64]byte
}

// MeasureReadyAdd times single inserts into a binomial heap held at
// size n.
func MeasureReadyAdd(n, samples int) Row {
	rng := rand.New(rand.NewSource(1))
	var h binheap.Heap[*payload]
	for i := 0; i < n; i++ {
		h.Insert(int64(rng.Intn(64)), &payload{})
	}
	durs := make([]float64, 0, samples)
	for s := 0; s < samples; s++ {
		keys := make([]int64, batch)
		for i := range keys {
			keys[i] = int64(rng.Intn(64))
		}
		start := time.Now()
		items := make([]*binheap.Item[*payload], batch)
		for i := 0; i < batch; i++ {
			items[i] = h.Insert(keys[i], &payload{})
		}
		el := time.Since(start)
		// Restore size untimed.
		for _, it := range items {
			h.Delete(it)
		}
		durs = append(durs, float64(el.Nanoseconds())/batch)
	}
	return sampleToRow(overhead.ReadyAdd, n, false, durs)
}

// MeasureReadyDelete times single deletions from a binomial heap held
// at size n.
func MeasureReadyDelete(n, samples int) Row {
	rng := rand.New(rand.NewSource(2))
	var h binheap.Heap[*payload]
	items := make([]*binheap.Item[*payload], 0, n+batch)
	add := func() {
		items = append(items, h.Insert(int64(rng.Intn(64)), &payload{}))
	}
	for i := 0; i < n; i++ {
		add()
	}
	durs := make([]float64, 0, samples)
	for s := 0; s < samples; s++ {
		for i := 0; i < batch; i++ {
			add()
		}
		// Delete the batch's items (random positions) timed.
		victims := items[len(items)-batch:]
		start := time.Now()
		for _, it := range victims {
			h.Delete(it)
		}
		el := time.Since(start)
		items = items[:len(items)-batch]
		durs = append(durs, float64(el.Nanoseconds())/batch)
	}
	return sampleToRow(overhead.ReadyDelete, n, false, durs)
}

// MeasureSleepAdd times single inserts into a red-black tree held at
// size n.
func MeasureSleepAdd(n, samples int) Row {
	rng := rand.New(rand.NewSource(3))
	var tr rbtree.Tree[*payload]
	for i := 0; i < n; i++ {
		tr.Insert(rng.Int63n(1_000_000), &payload{})
	}
	durs := make([]float64, 0, samples)
	for s := 0; s < samples; s++ {
		keys := make([]int64, batch)
		for i := range keys {
			keys[i] = rng.Int63n(1_000_000)
		}
		start := time.Now()
		nodes := make([]*rbtree.Node[*payload], batch)
		for i := 0; i < batch; i++ {
			nodes[i] = tr.Insert(keys[i], &payload{})
		}
		el := time.Since(start)
		for _, nd := range nodes {
			tr.Delete(nd)
		}
		durs = append(durs, float64(el.Nanoseconds())/batch)
	}
	return sampleToRow(overhead.SleepAdd, n, false, durs)
}

// MeasureSleepDelete times single deletions from a red-black tree
// held at size n.
func MeasureSleepDelete(n, samples int) Row {
	rng := rand.New(rand.NewSource(4))
	var tr rbtree.Tree[*payload]
	nodes := make([]*rbtree.Node[*payload], 0, n+batch)
	add := func() {
		nodes = append(nodes, tr.Insert(rng.Int63n(1_000_000), &payload{}))
	}
	for i := 0; i < n; i++ {
		add()
	}
	durs := make([]float64, 0, samples)
	for s := 0; s < samples; s++ {
		for i := 0; i < batch; i++ {
			add()
		}
		victims := nodes[len(nodes)-batch:]
		start := time.Now()
		for _, nd := range victims {
			tr.Delete(nd)
		}
		el := time.Since(start)
		nodes = nodes[:len(nodes)-batch]
		durs = append(durs, float64(el.Nanoseconds())/batch)
	}
	return sampleToRow(overhead.SleepDelete, n, false, durs)
}

// MeasureRemoteAdd times inserts into a mutex-guarded queue while
// another goroutine contends for the same lock — the user-space
// analog of a cross-core queue insert (lock transfer + cache-line
// bouncing), the paper's "remote" columns.
func MeasureRemoteAdd(op overhead.Op, n, samples int) Row {
	rng := rand.New(rand.NewSource(5))
	var mu sync.Mutex
	var h binheap.Heap[*payload]
	var tr rbtree.Tree[*payload]
	useHeap := op == overhead.ReadyAdd
	for i := 0; i < n; i++ {
		if useHeap {
			h.Insert(int64(rng.Intn(64)), &payload{})
		} else {
			tr.Insert(rng.Int63n(1_000_000), &payload{})
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// The "owner core": brief critical sections in a tight loop.
		r := rand.New(rand.NewSource(6))
		for {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			if useHeap {
				it := h.Insert(int64(r.Intn(64)), &payload{})
				h.Delete(it)
			} else {
				nd := tr.Insert(r.Int63n(1_000_000), &payload{})
				tr.Delete(nd)
			}
			mu.Unlock()
		}
	}()
	// Time only the locked insert (the remote op); restore the queue
	// size in a separate untimed critical section.
	durs := make([]float64, 0, samples)
	for s := 0; s < samples; s++ {
		var it *binheap.Item[*payload]
		var nd *rbtree.Node[*payload]
		k := rng.Int63n(1_000_000)
		start := time.Now()
		mu.Lock()
		if useHeap {
			it = h.Insert(k%64, &payload{})
		} else {
			nd = tr.Insert(k, &payload{})
		}
		mu.Unlock()
		el := time.Since(start)
		mu.Lock()
		if useHeap {
			h.Delete(it)
		} else {
			tr.Delete(nd)
		}
		mu.Unlock()
		durs = append(durs, float64(el.Nanoseconds()))
	}
	close(stop)
	wg.Wait()
	return sampleToRow(op, n, true, durs)
}

// Table1 reproduces the paper's Table 1 grid on this machine:
// all four operations at N ∈ {4, 64}, local, plus the two remote add
// columns.
func Table1(samples int) []Row {
	var rows []Row
	for _, n := range []int{4, 64} {
		rows = append(rows,
			MeasureSleepAdd(n, samples),
			MeasureSleepDelete(n, samples),
			MeasureReadyAdd(n, samples),
			MeasureReadyDelete(n, samples),
			MeasureRemoteAdd(overhead.SleepAdd, n, samples),
			MeasureRemoteAdd(overhead.ReadyAdd, n, samples),
		)
	}
	return rows
}

// FormatTable1 renders measured rows in the paper's layout with the
// paper's values alongside. Durations print in µs with three
// decimals because the measured values are nanosecond-scale.
func FormatTable1(rows []Row) string {
	paper := overhead.PaperModel()
	// The paper reports the maximal measured duration on a quiesced
	// kernel; in time-shared user space the max catches GC and OS
	// scheduler noise, so the table reports the 90th percentile (the
	// raw rows carry max for completeness).
	cell := func(op overhead.Op, n int, remote bool) string {
		for _, r := range rows {
			if r.Op == op && r.N == n && r.Remote == remote {
				return fmt.Sprintf("%8.3f", r.P90.Micros())
			}
		}
		return "     N/A"
	}
	paperCell := func(op overhead.Op, n int, remote bool) string {
		if remote && (op == overhead.SleepDelete || op == overhead.ReadyDelete) {
			return "  N/A"
		}
		return fmt.Sprintf("%5.1f", paper.QueueOpCost(op, n, remote).Micros())
	}
	var sb strings.Builder
	sb.WriteString("Table 1 — measured queue operation durations (µs); paper values in [brackets]\n")
	sb.WriteString(fmt.Sprintf("%-22s %-17s %-17s %-17s %-17s\n", "Operation",
		"local (N=4)", "remote (N=4)", "local (N=64)", "remote (N=64)"))
	for _, op := range []overhead.Op{overhead.SleepAdd, overhead.SleepDelete, overhead.ReadyAdd, overhead.ReadyDelete} {
		sb.WriteString(fmt.Sprintf("%-22s %s [%s] %s [%s] %s [%s] %s [%s]\n", op,
			cell(op, 4, false), paperCell(op, 4, false),
			cell(op, 4, true), paperCell(op, 4, true),
			cell(op, 64, false), paperCell(op, 64, false),
			cell(op, 64, true), paperCell(op, 64, true)))
	}
	return sb.String()
}
