package measure

import (
	"strings"
	"testing"

	"repro/internal/overhead"
)

const testSamples = 50

func TestLocalRowsWellFormed(t *testing.T) {
	rows := []Row{
		MeasureReadyAdd(4, testSamples),
		MeasureReadyDelete(4, testSamples),
		MeasureSleepAdd(4, testSamples),
		MeasureSleepDelete(4, testSamples),
	}
	for _, r := range rows {
		if r.Samples != testSamples {
			t.Errorf("%v: samples %d", r, r.Samples)
		}
		if r.Median <= 0 || r.Max < r.Median || r.P90 < r.Median {
			t.Errorf("%v: implausible percentiles", r)
		}
		if r.Remote {
			t.Errorf("%v: local row marked remote", r)
		}
		if r.String() == "" {
			t.Error("empty row string")
		}
	}
}

func TestRemoteRowsWellFormed(t *testing.T) {
	for _, op := range []overhead.Op{overhead.ReadyAdd, overhead.SleepAdd} {
		r := MeasureRemoteAdd(op, 4, testSamples)
		if !r.Remote || r.Op != op || r.N != 4 {
			t.Errorf("row mislabeled: %v", r)
		}
		if r.Median <= 0 {
			t.Errorf("%v: non-positive median", r)
		}
	}
}

func TestTable1Coverage(t *testing.T) {
	rows := Table1(testSamples)
	// 6 rows per N (4 local + 2 remote), 2 values of N.
	if len(rows) != 12 {
		t.Fatalf("got %d rows, want 12", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		key := r.Op.String() + ":" + map[bool]string{true: "r", false: "l"}[r.Remote]
		seen[key] = true
		if r.N != 4 && r.N != 64 {
			t.Errorf("unexpected N=%d", r.N)
		}
	}
	if len(seen) != 6 {
		t.Fatalf("op coverage %d, want 6 distinct op/locality combos", len(seen))
	}
}

func TestFormatTable1(t *testing.T) {
	rows := Table1(testSamples)
	out := FormatTable1(rows)
	for _, want := range []string{"sleep queue – add", "ready queue – delete", "N/A", "local (N=4)", "remote (N=64)"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestFunctionCosts(t *testing.T) {
	costs := FunctionCosts(testSamples)
	for _, name := range []string{"rls", "sch", "cnt"} {
		if costs[name] <= 0 {
			t.Errorf("%s cost %v", name, costs[name])
		}
	}
	out := FormatFunctionCosts(costs)
	if !strings.Contains(out, "rls") || !strings.Contains(out, "paper 5µs") {
		t.Errorf("format output:\n%s", out)
	}
}

func BenchmarkReadyAddN4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MeasureReadyAdd(4, 10)
	}
}
