package overhead

import (
	"math"

	"repro/internal/timeq"
)

// CacheModel computes cache-related preemption and migration delay
// (CPMD): the time a resuming job spends re-loading the part of its
// working set that was evicted while it was preempted or migrated.
//
// Section 3 of the paper observes that with a shared last-level cache
// (L3 on the Core-i7), the working set of a preempted task is evicted
// from the *private* levels (L1/L2) either way, and survives in the
// shared L3 both for a local resume and for a resume on another core —
// so migration CPMD and local-preemption CPMD are the same order of
// magnitude. Only when the working set is much smaller than the
// private cache (rare) does a local resume win, because the set may
// survive in L1/L2.
//
// The model captures exactly that mechanism:
//
//	delay(local)    = reload(min(WSS, private)) · survival + reload(WSS − retained)
//	delay(migrated) = reload(WSS) · MigrationFactor
//
// where reload is a per-byte cost from the shared cache.
type CacheModel struct {
	// PrivateBytes is the per-core private cache capacity (L1+L2).
	// Core-i7 (Nehalem): 32KiB L1d + 256KiB L2 per core.
	PrivateBytes int64
	// SharedBytes is the shared last-level cache capacity (L3).
	SharedBytes int64
	// ReloadPerKiB is the time to re-fetch 1 KiB of working set from
	// the shared cache into the private levels.
	ReloadPerKiB timeq.Time
	// MemPerKiB is the time to re-fetch 1 KiB from DRAM, paid for
	// the portion of the working set beyond the shared cache.
	MemPerKiB timeq.Time
	// SmallWSSRetention is the fraction of reload cost still paid on
	// a *local* resume when the working set fits in the private
	// cache (the paper's "better chance to stay in the private
	// cache"). 0 = free local resume for tiny sets, 1 = no benefit.
	SmallWSSRetention float64
	// MigrationFactor scales migration CPMD relative to local CPMD
	// for the ablation bench. The paper measures ≈ 1 (same order of
	// magnitude) on shared-L3 hardware.
	MigrationFactor float64
}

// DefaultCacheModel returns a CacheModel calibrated to the paper's
// platform: Core-i7 private L1+L2 (288 KiB), shared 8 MiB L3, and
// reload costs giving a few-µs CPMD for typical working sets —
// the same order of magnitude as the queue overheads of Table 1.
func DefaultCacheModel() CacheModel {
	return CacheModel{
		PrivateBytes:      288 << 10,
		SharedBytes:       8 << 20,
		ReloadPerKiB:      50 * timeq.Nanosecond,  // ~20 GiB/s from L3
		MemPerKiB:         200 * timeq.Nanosecond, // ~5 GiB/s from DRAM
		SmallWSSRetention: 0.1,
		MigrationFactor:   1.0,
	}
}

// Delay returns the CPMD paid when a job with working-set size wss
// resumes execution after being preempted (migrated = false) or after
// migrating to another core (migrated = true).
func (c CacheModel) Delay(wss int64, migrated bool) timeq.Time {
	if wss <= 0 || (c == CacheModel{}) {
		return 0
	}
	inShared := wss
	if inShared > c.SharedBytes {
		inShared = c.SharedBytes
	}
	fromMem := wss - inShared
	base := perKiB(inShared, c.ReloadPerKiB) + perKiB(fromMem, c.MemPerKiB)
	if migrated {
		f := c.MigrationFactor
		if f == 0 {
			f = 1
		}
		return timeq.Time(math.Round(float64(base) * f))
	}
	if wss <= c.PrivateBytes {
		// Tiny working set, local resume: likely still in L1/L2.
		return timeq.Time(math.Round(float64(base) * c.SmallWSSRetention))
	}
	return base
}

// MaxDelay returns the worst-case CPMD the model can charge for a
// task with working-set size wss regardless of resume kind; the
// analysis uses it to stay conservative.
func (c CacheModel) MaxDelay(wss int64) timeq.Time {
	l := c.Delay(wss, false)
	m := c.Delay(wss, true)
	return timeq.Max(l, m)
}

func perKiB(bytes int64, cost timeq.Time) timeq.Time {
	if bytes <= 0 {
		return 0
	}
	kib := (bytes + 1023) / 1024
	return timeq.MulCount(cost, kib)
}

func (c CacheModel) scale(f float64) CacheModel {
	c.ReloadPerKiB = timeq.Time(math.Round(float64(c.ReloadPerKiB) * f))
	c.MemPerKiB = timeq.Time(math.Round(float64(c.MemPerKiB) * f))
	return c
}

// WithMigrationFactor returns a copy with the migration CPMD factor
// set (ablation knob).
func (c CacheModel) WithMigrationFactor(f float64) CacheModel {
	c.MigrationFactor = f
	return c
}
