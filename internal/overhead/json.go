package overhead

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/timeq"
)

// jsonModel is the serialized form of a Model: all durations in
// nanoseconds, queue costs keyed by the paper's row names.
type jsonModel struct {
	ReleaseNs   int64            `json:"release_ns"`
	SchedNs     int64            `json:"sched_ns"`
	CtxSwitchNs int64            `json:"ctx_switch_ns"`
	Queues      map[string]cells `json:"queues"`
	Cache       jsonCache        `json:"cache"`
	RemotePen   float64          `json:"remote_penalty"`
}

type cells struct {
	LocalN4Ns   int64 `json:"local_n4_ns"`
	LocalN64Ns  int64 `json:"local_n64_ns"`
	RemoteN4Ns  int64 `json:"remote_n4_ns,omitempty"`
	RemoteN64Ns int64 `json:"remote_n64_ns,omitempty"`
}

type jsonCache struct {
	PrivateBytes      int64   `json:"private_bytes"`
	SharedBytes       int64   `json:"shared_bytes"`
	ReloadPerKiBNs    int64   `json:"reload_per_kib_ns"`
	MemPerKiBNs       int64   `json:"mem_per_kib_ns"`
	SmallWSSRetention float64 `json:"small_wss_retention"`
	MigrationFactor   float64 `json:"migration_factor"`
}

var opKeys = map[Op]string{
	SleepAdd:    "sleep_add",
	SleepDelete: "sleep_delete",
	ReadyAdd:    "ready_add",
	ReadyDelete: "ready_delete",
}

// MarshalJSON serializes the model.
func (m *Model) MarshalJSON() ([]byte, error) {
	jm := jsonModel{
		ReleaseNs:   int64(m.Release),
		SchedNs:     int64(m.Sched),
		CtxSwitchNs: int64(m.CtxSwitch),
		Queues:      map[string]cells{},
		Cache: jsonCache{
			PrivateBytes:      m.Cache.PrivateBytes,
			SharedBytes:       m.Cache.SharedBytes,
			ReloadPerKiBNs:    int64(m.Cache.ReloadPerKiB),
			MemPerKiBNs:       int64(m.Cache.MemPerKiB),
			SmallWSSRetention: m.Cache.SmallWSSRetention,
			MigrationFactor:   m.Cache.MigrationFactor,
		},
		RemotePen: m.RemotePenalty,
	}
	for op, key := range opKeys {
		jm.Queues[key] = cells{
			LocalN4Ns:   int64(m.Queues.LocalN4[op]),
			LocalN64Ns:  int64(m.Queues.LocalN64[op]),
			RemoteN4Ns:  int64(m.Queues.RemoteN4[op]),
			RemoteN64Ns: int64(m.Queues.RemoteN64[op]),
		}
	}
	return json.Marshal(jm)
}

// UnmarshalJSON deserializes a model; unknown queue keys are an error.
func (m *Model) UnmarshalJSON(data []byte) error {
	var jm jsonModel
	if err := json.Unmarshal(data, &jm); err != nil {
		return err
	}
	*m = Model{
		Release:       timeq.Time(jm.ReleaseNs),
		Sched:         timeq.Time(jm.SchedNs),
		CtxSwitch:     timeq.Time(jm.CtxSwitchNs),
		RemotePenalty: jm.RemotePen,
		Cache: CacheModel{
			PrivateBytes:      jm.Cache.PrivateBytes,
			SharedBytes:       jm.Cache.SharedBytes,
			ReloadPerKiB:      timeq.Time(jm.Cache.ReloadPerKiBNs),
			MemPerKiB:         timeq.Time(jm.Cache.MemPerKiBNs),
			SmallWSSRetention: jm.Cache.SmallWSSRetention,
			MigrationFactor:   jm.Cache.MigrationFactor,
		},
	}
	if m.RemotePenalty == 0 {
		m.RemotePenalty = 1
	}
	known := map[string]Op{}
	for op, key := range opKeys {
		known[key] = op
	}
	for key, c := range jm.Queues {
		op, ok := known[key]
		if !ok {
			return fmt.Errorf("overhead: unknown queue op %q", key)
		}
		m.Queues.LocalN4[op] = timeq.Time(c.LocalN4Ns)
		m.Queues.LocalN64[op] = timeq.Time(c.LocalN64Ns)
		m.Queues.RemoteN4[op] = timeq.Time(c.RemoteN4Ns)
		m.Queues.RemoteN64[op] = timeq.Time(c.RemoteN64Ns)
	}
	return nil
}

// LoadModel reads a Model from a JSON file (the spsim/spexp
// `-model file.json` input).
func LoadModel(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m := &Model{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("overhead: parsing %s: %w", path, err)
	}
	return m, nil
}

// SaveModel writes the model as indented JSON.
func SaveModel(path string, m *Model) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
