// Package overhead models the run-time overheads the paper measures in
// Section 3 and folds into the schedulability comparison of Section 4:
//
//   - rls: the release function (insert into the ready queue),
//   - sch: the scheduling function (pick highest priority, requeue a
//     preempted task),
//   - cnt1/cnt2: the two context-switch cases of cnt_swth(),
//   - δ(N): the worst-case cost of a single ready-queue operation when
//     the queue holds up to N tasks,
//   - θ(N): the same for the sleep queue,
//   - cache: the cache-related preemption/migration delay (CPMD).
//
// The package ships the paper's measured values (Table 1 plus the
// rls/sch/cnt numbers quoted in the text) as PaperModel, and a Zero
// model for overhead-free "theoretical" analysis.
package overhead

import (
	"fmt"
	"math"

	"repro/internal/timeq"
)

// Op identifies a queue operation kind in Table 1.
type Op int

// Table 1 rows.
const (
	SleepAdd Op = iota
	SleepDelete
	ReadyAdd
	ReadyDelete
	numOps
)

var opNames = [...]string{"sleep queue – add", "sleep queue – delete", "ready queue – add", "ready queue – delete"}

// String returns the paper's row label for the operation.
func (o Op) String() string {
	if o < 0 || int(o) >= len(opNames) {
		return fmt.Sprintf("Op(%d)", int(o))
	}
	return opNames[o]
}

// QueueCosts holds the measured worst-case duration of one queue
// operation at the two calibration points of Table 1 (N = 4 and
// N = 64 tasks in the queue), for local and remote access. Remote
// deletes do not occur in the protocol (a core only removes entries
// from its own queues), matching the N/A cells of Table 1.
type QueueCosts struct {
	// LocalN4[op], LocalN64[op]: local access at the two anchors.
	LocalN4, LocalN64 [numOps]timeq.Time
	// RemoteN4, RemoteN64: cross-core access (only the add
	// operations are meaningful).
	RemoteN4, RemoteN64 [numOps]timeq.Time
}

// Cost interpolates the duration of op on a queue bounded by n tasks.
// Queue operations on a binomial heap or red-black tree cost
// O(log n), so interpolation is linear in log2(n) between the anchors
// and extrapolates with the same slope, clamped below at the N=4
// value (a near-empty queue is not cheaper than the measured floor).
func (q *QueueCosts) Cost(op Op, n int, remote bool) timeq.Time {
	lo, hi := q.LocalN4[op], q.LocalN64[op]
	if remote {
		lo, hi = q.RemoteN4[op], q.RemoteN64[op]
	}
	if n <= 4 {
		return lo
	}
	// slope per doubling between log2(4)=2 and log2(64)=6.
	l := math.Log2(float64(n))
	f := (l - 2) / 4 // 0 at n=4, 1 at n=64
	c := float64(lo) + f*float64(hi-lo)
	if c < float64(lo) {
		c = float64(lo)
	}
	return timeq.Time(math.Round(c))
}

// Model is the complete overhead parameterization used by both the
// analysis (WCET inflation) and the simulator (injected delays).
type Model struct {
	// Release is the pure execution time of release() excluding the
	// queue operation (the paper: 3µs).
	Release timeq.Time
	// Sched is the pure execution time of sch() (the paper: 5µs).
	Sched timeq.Time
	// CtxSwitch is the pure execution time of cnt_swth() (the paper:
	// 1.5µs); both cnt1 and cnt2 pay it.
	CtxSwitch timeq.Time
	// Queues are the Table 1 queue-operation costs.
	Queues QueueCosts
	// Cache is the cache-related preemption/migration delay model.
	Cache CacheModel
	// RemotePenalty scales the *extra* cost of remote queue
	// operations over local ones (1 = as measured). It exists for
	// the ablation bench; the paper's model corresponds to 1.
	RemotePenalty float64
}

// Zero returns a model in which every overhead is zero: the
// "theoretical" schedulability setting.
func Zero() *Model { return &Model{RemotePenalty: 1} }

// Normalize maps a nil model to the zero-overhead model, so every
// admission entry point (analyzers, contexts, partitioners) accepts
// nil. Non-nil models are returned unchanged.
func Normalize(m *Model) *Model {
	if m == nil {
		return Zero()
	}
	return m
}

// IsZero reports whether the model charges no overhead at all.
func (m *Model) IsZero() bool {
	return m.Release == 0 && m.Sched == 0 && m.CtxSwitch == 0 &&
		m.Queues == QueueCosts{} && m.Cache == CacheModel{}
}

const us = timeq.Microsecond

// PaperModel returns the overheads measured in the paper on the
// 4-core Intel Core-i7 (Table 1 and Section 3 text), with the cache
// model calibrated to the paper's qualitative finding that migration
// and local context-switch CPMD are the same order of magnitude under
// a shared L3.
func PaperModel() *Model {
	return &Model{
		Release:   3 * us,
		Sched:     5 * us,
		CtxSwitch: 1500 * timeq.Nanosecond, // 1.5µs
		Queues: QueueCosts{
			LocalN4: [numOps]timeq.Time{
				SleepAdd:    2500,
				SleepDelete: 3300,
				ReadyAdd:    1500,
				ReadyDelete: 2700,
			},
			LocalN64: [numOps]timeq.Time{
				SleepAdd:    4300,
				SleepDelete: 5800,
				ReadyAdd:    4400,
				ReadyDelete: 4600,
			},
			RemoteN4: [numOps]timeq.Time{
				SleepAdd: 2900,
				ReadyAdd: 3300,
			},
			RemoteN64: [numOps]timeq.Time{
				SleepAdd: 4400,
				ReadyAdd: 4600,
			},
		},
		Cache:         DefaultCacheModel(),
		RemotePenalty: 1,
	}
}

// Delta returns δ(N): the worst-case single ready-queue operation
// duration on a core hosting at most n tasks (Section 3 sets δ to the
// worst measured ready-queue op: 3.3µs at N=4, 4.6µs at N=64).
func (m *Model) Delta(n int) timeq.Time {
	d := m.Queues.Cost(ReadyAdd, n, false)
	if c := m.Queues.Cost(ReadyDelete, n, false); c > d {
		d = c
	}
	if c := m.remoteCost(ReadyAdd, n); c > d {
		d = c
	}
	return d
}

// Theta returns θ(N): the worst-case single sleep-queue operation
// duration (3.3µs at N=4 — the sleep delete —, 5.8µs at N=64).
func (m *Model) Theta(n int) timeq.Time {
	d := m.Queues.Cost(SleepAdd, n, false)
	if c := m.Queues.Cost(SleepDelete, n, false); c > d {
		d = c
	}
	if c := m.remoteCost(SleepAdd, n); c > d {
		d = c
	}
	return d
}

// remoteCost applies the RemotePenalty multiplier to the extra cost
// of a remote op over its local counterpart.
func (m *Model) remoteCost(op Op, n int) timeq.Time {
	local := m.Queues.Cost(op, n, false)
	remote := m.Queues.Cost(op, n, true)
	if remote <= local {
		return remote
	}
	p := m.RemotePenalty
	if p == 0 {
		p = 1
	}
	return local + timeq.Time(math.Round(float64(remote-local)*p))
}

// QueueOpCost returns the modeled duration of one queue operation,
// with the remote penalty applied. This is what the simulator charges
// at each queue touch.
func (m *Model) QueueOpCost(op Op, n int, remote bool) timeq.Time {
	if !remote {
		return m.Queues.Cost(op, n, false)
	}
	return m.remoteCost(op, n)
}

// WithRemotePenalty returns a copy of m with the remote-penalty
// multiplier set to p (ablation knob).
func (m *Model) WithRemotePenalty(p float64) *Model {
	cp := *m
	cp.RemotePenalty = p
	return &cp
}

// WithCache returns a copy of m with the cache model replaced.
func (m *Model) WithCache(c CacheModel) *Model {
	cp := *m
	cp.Cache = c
	return &cp
}

// Scale returns a copy of m with every time cost multiplied by f
// (sensitivity ablation: "what if all overheads were f× larger?").
func (m *Model) Scale(f float64) *Model {
	cp := *m
	sc := func(t timeq.Time) timeq.Time { return timeq.Time(math.Round(float64(t) * f)) }
	cp.Release = sc(m.Release)
	cp.Sched = sc(m.Sched)
	cp.CtxSwitch = sc(m.CtxSwitch)
	for op := Op(0); op < numOps; op++ {
		cp.Queues.LocalN4[op] = sc(m.Queues.LocalN4[op])
		cp.Queues.LocalN64[op] = sc(m.Queues.LocalN64[op])
		cp.Queues.RemoteN4[op] = sc(m.Queues.RemoteN4[op])
		cp.Queues.RemoteN64[op] = sc(m.Queues.RemoteN64[op])
	}
	cp.Cache = m.Cache.scale(f)
	return &cp
}
