package overhead

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/timeq"
)

func TestPaperModelTable1Anchors(t *testing.T) {
	m := PaperModel()
	cases := []struct {
		op     Op
		n      int
		remote bool
		want   timeq.Time
	}{
		{SleepAdd, 4, false, 2500},
		{SleepAdd, 4, true, 2900},
		{SleepAdd, 64, false, 4300},
		{SleepAdd, 64, true, 4400},
		{SleepDelete, 4, false, 3300},
		{SleepDelete, 64, false, 5800},
		{ReadyAdd, 4, false, 1500},
		{ReadyAdd, 4, true, 3300},
		{ReadyAdd, 64, false, 4400},
		{ReadyAdd, 64, true, 4600},
		{ReadyDelete, 4, false, 2700},
		{ReadyDelete, 64, false, 4600},
	}
	for _, c := range cases {
		if got := m.QueueOpCost(c.op, c.n, c.remote); got != c.want {
			t.Errorf("%v n=%d remote=%v: got %v, want %v", c.op, c.n, c.remote, got, c.want)
		}
	}
}

func TestPaperModelFunctionCosts(t *testing.T) {
	m := PaperModel()
	if m.Release != 3*timeq.Microsecond {
		t.Errorf("rls = %v, want 3µs", m.Release)
	}
	if m.Sched != 5*timeq.Microsecond {
		t.Errorf("sch = %v, want 5µs", m.Sched)
	}
	if m.CtxSwitch != 1500*timeq.Nanosecond {
		t.Errorf("cnt = %v, want 1.5µs", m.CtxSwitch)
	}
}

// Section 3: "when N = 4, δ = 3.3µs and θ = 3.3µs; when N = 64,
// δ = 4.6µs and θ = 5.8µs".
func TestPaperDeltaTheta(t *testing.T) {
	m := PaperModel()
	if d := m.Delta(4); d != 3300 {
		t.Errorf("δ(4) = %v, want 3.3µs", d)
	}
	if th := m.Theta(4); th != 3300 {
		t.Errorf("θ(4) = %v, want 3.3µs", th)
	}
	if d := m.Delta(64); d != 4600 {
		t.Errorf("δ(64) = %v, want 4.6µs", d)
	}
	if th := m.Theta(64); th != 5800 {
		t.Errorf("θ(64) = %v, want 5.8µs", th)
	}
}

func TestCostInterpolationMonotone(t *testing.T) {
	m := PaperModel()
	prev := timeq.Time(0)
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		c := m.QueueOpCost(ReadyAdd, n, false)
		if c < prev {
			t.Errorf("cost not monotone at n=%d: %v < %v", n, c, prev)
		}
		prev = c
	}
	// Extrapolation beyond 64 keeps growing.
	if m.QueueOpCost(ReadyAdd, 256, false) <= m.QueueOpCost(ReadyAdd, 64, false) {
		t.Error("no extrapolation beyond N=64")
	}
	// Below 4 clamps to the floor.
	if m.QueueOpCost(ReadyAdd, 1, false) != m.QueueOpCost(ReadyAdd, 4, false) {
		t.Error("below N=4 should clamp")
	}
}

func TestQuickInterpolationBounds(t *testing.T) {
	m := PaperModel()
	f := func(nRaw uint8) bool {
		n := int(nRaw%61) + 4 // 4..64
		for op := Op(0); op < numOps; op++ {
			c := m.QueueOpCost(op, n, false)
			if c < m.Queues.LocalN4[op] || c > m.Queues.LocalN64[op] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroModel(t *testing.T) {
	z := Zero()
	if !z.IsZero() {
		t.Fatal("Zero() is not zero")
	}
	if z.Delta(64) != 0 || z.Theta(64) != 0 {
		t.Fatal("zero model charges queue costs")
	}
	if z.Cache.Delay(1<<20, true) != 0 {
		t.Fatal("zero model charges CPMD")
	}
	if PaperModel().IsZero() {
		t.Fatal("paper model reported as zero")
	}
}

func TestRemotePenaltyScalesOnlyExtra(t *testing.T) {
	m := PaperModel().WithRemotePenalty(2)
	local := m.QueueOpCost(ReadyAdd, 4, false) // 1.5µs
	remote := m.QueueOpCost(ReadyAdd, 4, true) // 1.5 + 2·(3.3−1.5) = 5.1µs
	if local != 1500 {
		t.Fatalf("local changed: %v", local)
	}
	if remote != 1500+2*(3300-1500) {
		t.Fatalf("remote = %v, want 5.1µs", remote)
	}
	// Penalty 1 reproduces the measurement.
	if PaperModel().QueueOpCost(ReadyAdd, 4, true) != 3300 {
		t.Fatal("penalty 1 distorted measured value")
	}
}

func TestScale(t *testing.T) {
	m := PaperModel().Scale(2)
	if m.Release != 6*timeq.Microsecond || m.Sched != 10*timeq.Microsecond {
		t.Fatalf("Scale(2): rls=%v sch=%v", m.Release, m.Sched)
	}
	if m.QueueOpCost(SleepAdd, 4, false) != 5000 {
		t.Fatalf("Scale(2) queue cost = %v", m.QueueOpCost(SleepAdd, 4, false))
	}
}

func TestCacheModelRegimes(t *testing.T) {
	c := DefaultCacheModel()
	// Large working set (4 MiB): local ≈ migration (paper's finding).
	big := int64(4 << 20)
	l, mg := c.Delay(big, false), c.Delay(big, true)
	if l != mg {
		t.Errorf("large WSS: local %v vs migration %v, want equal with factor 1", l, mg)
	}
	if l == 0 {
		t.Error("large WSS delay is zero")
	}
	// Tiny working set (8 KiB): local much cheaper than migration.
	small := int64(8 << 10)
	ls, ms := c.Delay(small, false), c.Delay(small, true)
	if ls >= ms {
		t.Errorf("small WSS: local %v should be < migration %v", ls, ms)
	}
	// Beyond shared cache: DRAM portion charged.
	huge := int64(16 << 20)
	if c.Delay(huge, true) <= c.Delay(big, true) {
		t.Error("DRAM overflow not charged")
	}
	// Zero WSS and zero model are free.
	if c.Delay(0, true) != 0 {
		t.Error("zero WSS should be free")
	}
	var z CacheModel
	if z.Delay(1<<20, true) != 0 {
		t.Error("zero model should be free")
	}
}

func TestCacheMaxDelay(t *testing.T) {
	c := DefaultCacheModel().WithMigrationFactor(3)
	wss := int64(1 << 20)
	if c.MaxDelay(wss) != c.Delay(wss, true) {
		t.Error("MaxDelay should pick migration when factor > 1")
	}
}

func TestOpString(t *testing.T) {
	if SleepAdd.String() != "sleep queue – add" {
		t.Errorf("got %q", SleepAdd.String())
	}
	if Op(99).String() == "" {
		t.Error("out-of-range op has empty name")
	}
}

func TestModelJSONRoundTrip(t *testing.T) {
	m := PaperModel().WithRemotePenalty(2.5)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Release != m.Release || back.Sched != m.Sched || back.CtxSwitch != m.CtxSwitch {
		t.Fatal("function costs lost")
	}
	if back.Queues != m.Queues {
		t.Fatalf("queue costs lost:\n%+v\n%+v", back.Queues, m.Queues)
	}
	if back.Cache != m.Cache {
		t.Fatal("cache model lost")
	}
	if back.RemotePenalty != 2.5 {
		t.Fatal("remote penalty lost")
	}
}

func TestModelJSONUnknownOp(t *testing.T) {
	var m Model
	if err := json.Unmarshal([]byte(`{"queues":{"bogus":{}}}`), &m); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestLoadSaveModel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.json")
	if err := SaveModel(path, PaperModel()); err != nil {
		t.Fatal(err)
	}
	m, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Delta(4) != 3300 || m.Theta(64) != 5800 {
		t.Fatal("loaded model miscalibrated")
	}
	if _, err := LoadModel(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := LoadModel(bad); err == nil {
		t.Fatal("corrupt file accepted")
	}
}
