package partition

import (
	"repro/internal/analysis"
	"repro/internal/overhead"
	"repro/internal/task"
)

// Arena is the per-worker scratch a sweep threads through consecutive
// Partition calls via Options.Arena. It holds, per scheduling policy,
// one long-lived admission context (rebound to each call's assignment
// with Context.Reset, so entity slabs, warm vectors and verdict memos
// recycle instead of reallocating), one recycled assignment, and one
// cross-algorithm SweepCache: within a (task set, utilization) cell
// the nine algorithms probe the same task shapes against identical
// early-packing core states, so each other's verdicts are free
// acceptance tests. Sharing is exact (see analysis.SweepCache) —
// decisions stay bit-identical to arena-free calls, which the sweep
// differential test pins.
//
// An Arena is single-goroutine, like the contexts it owns. An
// assignment returned by a PartitionOpts call carrying an arena is
// valid only until the next call with the same arena — the sweep
// consumes each result before moving on. Call BeginSet between task
// sets (or on a model change) to invalidate the shared memos.
type Arena struct {
	slots [2]arenaSlot // indexed by task.Policy
	zero  *overhead.Model
}

type arenaSlot struct {
	ctx   analysis.Context
	a     *task.Assignment
	sweep *analysis.SweepCache
}

// NewArena returns an empty arena; slabs grow on first use.
func NewArena() *Arena { return &Arena{} }

// BeginSet invalidates the cross-algorithm probe-verdict memos. Call
// it whenever the task set or the overhead model changes: the memo
// shapes do not encode either, so stale entries would otherwise leak
// across cells.
func (ar *Arena) BeginSet() {
	for i := range ar.slots {
		if ar.slots[i].sweep != nil {
			ar.slots[i].sweep.Begin()
		}
	}
}

// normalize mirrors overhead.Normalize but reuses one zero model:
// analysis cost caches are keyed by model pointer, so handing every
// Reset a fresh Zero() would run them cold each set.
func (ar *Arena) normalize(model *overhead.Model) *overhead.Model {
	if model != nil {
		return model
	}
	if ar.zero == nil {
		ar.zero = overhead.Zero()
	}
	return ar.zero
}

func (ar *Arena) slot(p task.Policy) *arenaSlot { return &ar.slots[int(p)&1] }

// assignment returns the policy's recycled assignment, emptied.
func (ar *Arena) assignment(p task.Policy, m int) *task.Assignment {
	s := ar.slot(p)
	if s.a == nil || s.a.NumCores != m {
		s.a = task.NewAssignment(m)
		return s.a
	}
	a := s.a
	for c := range a.Normal {
		a.Normal[c] = a.Normal[c][:0]
	}
	a.Splits = a.Splits[:0]
	a.Policy = task.FixedPriority // the zero value; finalize re-stamps
	return a
}

// context returns the policy's long-lived admission context, rebound
// to this call's assignment and model.
func (ar *Arena) context(p task.Policy, a *task.Assignment, model *overhead.Model, stats *analysis.Collector) analysis.Context {
	model = ar.normalize(model)
	s := ar.slot(p)
	if s.ctx == nil {
		s.ctx = analysis.ForPolicy(p).NewContext(a, model)
		s.sweep = analysis.NewSweepCache()
		s.ctx.SetSweepCache(s.sweep)
	} else {
		s.ctx.Reset(a, model)
	}
	s.ctx.SetCollector(stats)
	return s.ctx
}
