package partition

import (
	"errors"
	"testing"

	"repro/internal/analysis"
	"repro/internal/overhead"
	"repro/internal/taskgen"
)

// allNineAlgorithms is the full Section 4 roster: the semi-partitioned
// FP-TS, the three partitioned fixed-priority heuristics, the two SPA
// constructions, and the three EDF algorithms.
func allNineAlgorithms() []Algorithm {
	return []Algorithm{TS, FFD, WFD, BFD, SPA1, SPA2, WM, EDFFFD, EDFWFD}
}

// TestNinePartitionersContextDecisionIdentical proves the context
// path decision-identical to the stateless analyzer path for every
// algorithm under both the zero and the paper overhead model:
// analysis.SelfCheck shadows every TryPlace/TrySplit/Schedulable a
// partitioner issues with the stateless CoreSchedulable/Schedulable
// computation on the identical assignment state and panics on any
// divergence. Randomized sets across the interesting utilization
// range exercise whole placements, split searches and rejections.
func TestNinePartitionersContextDecisionIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is not short")
	}
	old := analysis.SelfCheck
	analysis.SelfCheck = true
	defer func() { analysis.SelfCheck = old }()

	models := map[string]*overhead.Model{
		"zero":  overhead.Zero(),
		"paper": overhead.PaperModel(),
		// Scaled remote penalty defeats the monotonicity gate, so this
		// exercises the cold-fallback context paths end to end.
		"paper-remote8": overhead.PaperModel().WithRemotePenalty(8),
	}
	accepted, rejected := 0, 0
	for seed := int64(1); seed <= 12; seed++ {
		// Sweep the range where acceptance flips: low-U sets accept
		// everywhere, high-U sets force splits and rejections.
		u := 2.6 + 0.1*float64(seed%12)
		set := taskgen.New(taskgen.Config{N: 10, TotalUtilization: u, Seed: seed}).Next()
		for name, m := range models {
			for _, alg := range allNineAlgorithms() {
				a, err := alg.Partition(set.Clone(), 4, m)
				switch {
				case err == nil:
					accepted++
					// The returned assignment must also pass the
					// stateless full test directly.
					if !analysis.ForPolicy(alg.Policy()).Schedulable(a, m) {
						t.Fatalf("%s/%s seed %d: accepted assignment fails stateless analysis", alg.Name(), name, seed)
					}
				case errors.Is(err, ErrUnschedulable):
					rejected++
				default:
					t.Fatalf("%s/%s seed %d: unexpected error %v", alg.Name(), name, seed, err)
				}
			}
		}
	}
	if accepted == 0 || rejected == 0 {
		t.Fatalf("degenerate differential sweep: %d accepted, %d rejected", accepted, rejected)
	}
}
