package partition

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/overhead"
	"repro/internal/task"
	"repro/internal/timeq"
)

// EDF partitioning — the extension the paper's Section 2 sketches
// ("a wide range of semi-partitioned algorithms based on both
// fixed-priority and EDF scheduling").
//
// EDFHeuristic is partitioned EDF with bin-packing placement;
// EDFWM adds EDF-WM-style task splitting: a task that fits nowhere is
// split across k cores, each part confined to a deadline window of
// D/k and sized to the largest budget its core admits. Windows
// decouple the cores, so admission is a per-core processor-demand
// test, reached through the shared analysis.EDFDemand analyzer.

// EDFHeuristic is a partitioned (no-splitting) EDF bin-packer.
type EDFHeuristic struct {
	Fit  Fit
	name string
}

// Partitioned EDF baselines.
var (
	// EDFFFD is first-fit decreasing-utilization partitioned EDF.
	EDFFFD = &EDFHeuristic{Fit: FirstFit, name: "EDF-FFD"}
	// EDFWFD is worst-fit decreasing-utilization partitioned EDF.
	EDFWFD = &EDFHeuristic{Fit: WorstFit, name: "EDF-WFD"}
)

// Policy declares EDF dispatching.
func (h *EDFHeuristic) Policy() task.Policy { return task.EDF }

// EDFPolicy reports EDF dispatching.
//
// Deprecated: use Policy.
func (h *EDFHeuristic) EDFPolicy() bool { return true }

// Name returns the algorithm name.
func (h *EDFHeuristic) Name() string {
	if h.name != "" {
		return h.name
	}
	return fmt.Sprintf("EDF/%v", h.Fit)
}

// Partition assigns every task whole to some core under EDF, or
// fails with ErrUnschedulable. Probes thread one admission context
// across the whole packing loop.
func (h *EDFHeuristic) Partition(s *task.Set, m int, model *overhead.Model) (*task.Assignment, error) {
	return h.PartitionOpts(s, m, model, Options{})
}

// PartitionOpts is Partition with cancellation and a stats sink.
func (h *EDFHeuristic) PartitionOpts(s *task.Set, m int, model *overhead.Model, o Options) (*task.Assignment, error) {
	model = overhead.Normalize(model)
	if err := validateInput(s, m, h.Policy()); err != nil {
		return nil, err
	}
	a := o.newAssignment(h.Policy(), m)
	ctx := newContext(h, a, model, o)
	defer ctx.Flush()
	for _, t := range s.SortedByUtilizationDesc() {
		if err := o.err(); err != nil {
			return nil, err
		}
		if !placeByFit(ctx, a, t, h.Fit, m, o.Speculative) {
			return nil, ErrUnschedulable
		}
	}
	return finalize(ctx, a)
}

// EDFWM is semi-partitioned EDF with window-constrained task
// splitting (after Kato & Yamasaki's EDF-WM).
type EDFWM struct{}

// WM is the ready-to-use EDF-WM instance.
var WM = &EDFWM{}

// Name returns "EDF-WM".
func (*EDFWM) Name() string { return "EDF-WM" }

// Policy declares EDF dispatching.
func (*EDFWM) Policy() task.Policy { return task.EDF }

// EDFPolicy reports EDF dispatching.
//
// Deprecated: use Policy.
func (*EDFWM) EDFPolicy() bool { return true }

// Partition places tasks first-fit in decreasing utilization order
// and splits a task over k equal deadline windows when it fits
// nowhere whole, growing k until the split succeeds or cores run out.
func (w *EDFWM) Partition(s *task.Set, m int, model *overhead.Model) (*task.Assignment, error) {
	return w.PartitionOpts(s, m, model, Options{})
}

// PartitionOpts is Partition with cancellation and a stats sink.
func (w *EDFWM) PartitionOpts(s *task.Set, m int, model *overhead.Model, o Options) (*task.Assignment, error) {
	model = overhead.Normalize(model)
	if err := validateInput(s, m, w.Policy()); err != nil {
		return nil, err
	}
	a := o.newAssignment(w.Policy(), m)
	ctx := newContext(w, a, model, o)
	defer ctx.Flush()
	for _, t := range s.SortedByUtilizationDesc() {
		if err := o.err(); err != nil {
			return nil, err
		}
		if placeWholeFirstFit(ctx, t, m) {
			continue
		}
		if !w.split(ctx, t, m) {
			return nil, ErrUnschedulable
		}
	}
	return finalize(ctx, a)
}

// split tries k = 2..m equal windows of D/k: for each window it finds
// the core admitting the largest budget; if the k budgets cover the
// WCET the split is installed (last window trimmed to the remainder).
func (w *EDFWM) split(ctx analysis.Context, t *task.Task, m int) bool {
	d := t.EffectiveDeadline()
	for k := 2; k <= m; k++ {
		window := d / timeq.Time(k)
		if window < minPartBudget {
			return false
		}
		parts, windows, ok := w.trySplit(ctx, t, k, window, m)
		if ok {
			ctx.AddSplit(&task.Split{Task: t, Parts: parts, Windows: windows})
			return true
		}
	}
	return false
}

// trySplit greedily assigns each of the k windows to the core that
// admits the largest budget for a (budget, window, T) sporadic task,
// one part per core.
func (w *EDFWM) trySplit(ctx analysis.Context, t *task.Task, k int, window timeq.Time, m int) ([]task.Part, []timeq.Time, bool) {
	remaining := t.WCET
	var parts []task.Part
	var windows []timeq.Time
	used := make([]bool, m)
	for i := 0; i < k && remaining > 0; i++ {
		bestCore := -1
		var bestBudget timeq.Time
		for c := 0; c < m; c++ {
			if used[c] {
				continue
			}
			b := w.maxWindowBudget(ctx, parts, windows, t, c, window, remaining, used, m)
			if b > bestBudget {
				bestCore, bestBudget = c, b
			}
		}
		if bestCore == -1 || bestBudget < minPartBudget {
			return nil, nil, false
		}
		used[bestCore] = true
		if bestBudget > remaining {
			bestBudget = remaining
		}
		parts = append(parts, task.Part{Core: bestCore, Budget: bestBudget})
		windows = append(windows, window)
		remaining -= bestBudget
	}
	if remaining > 0 || len(parts) < 2 {
		return nil, nil, false
	}
	return parts, windows, true
}

// maxWindowBudget binary-searches the largest budget b ≤
// min(remaining, window) such that core c admits the tentative part
// with deadline window `window`. With the window fixed, feasibility
// is monotone in the budget. A non-final part (b < remaining) is
// probed with a remainder placeholder on another unused core so the
// migration flags — and hence the departure overhead — are correct.
func (w *EDFWM) maxWindowBudget(ctx analysis.Context, priorParts []task.Part, priorWindows []timeq.Time, t *task.Task, c int, window, remaining timeq.Time, used []bool, m int) timeq.Time {
	placeholder := -1
	for o := 0; o < m; o++ {
		if o != c && !used[o] {
			placeholder = o
			break
		}
	}
	fits := func(b timeq.Time) bool {
		final := b >= remaining
		parts := make([]task.Part, len(priorParts), len(priorParts)+2)
		copy(parts, priorParts)
		parts = append(parts, task.Part{Core: c, Budget: b})
		windows := make([]timeq.Time, len(priorWindows), len(priorWindows)+2)
		copy(windows, priorWindows)
		windows = append(windows, window)
		if !final {
			if placeholder == -1 {
				return false
			}
			parts = append(parts, task.Part{Core: placeholder, Budget: remaining - b})
			windows = append(windows, window)
		}
		ok := ctx.TrySplit(&task.Split{Task: t, Parts: parts, Windows: windows}, c)
		ctx.Rollback()
		return ok
	}
	cap := remaining
	if cap > window {
		cap = window
	}
	if cap < minPartBudget {
		return 0
	}
	if fits(cap) {
		return cap
	}
	loUS, hiUS := int64(1), int64(cap/timeq.Microsecond)
	if hiUS < 1 || !fits(timeq.Time(loUS)*timeq.Microsecond) {
		return 0
	}
	for loUS < hiUS {
		mid := (loUS + hiUS + 1) / 2
		if fits(timeq.Time(mid) * timeq.Microsecond) {
			loUS = mid
		} else {
			hiUS = mid - 1
		}
	}
	return timeq.Time(loUS) * timeq.Microsecond
}
