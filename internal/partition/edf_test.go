package partition

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/overhead"
	"repro/internal/taskgen"
)

func TestEDFNames(t *testing.T) {
	if EDFFFD.Name() != "EDF-FFD" || EDFWFD.Name() != "EDF-WFD" || WM.Name() != "EDF-WM" {
		t.Error("EDF algorithm names")
	}
	anon := &EDFHeuristic{Fit: BestFit}
	if anon.Name() == "" {
		t.Error("anonymous EDF heuristic name")
	}
}

func TestEDFFFDPartitionsFullCores(t *testing.T) {
	// EDF packs each core to U = 1: two pairs of (0.5, 0.5).
	s := newSet(t, [2]int64{10, 20}, [2]int64{10, 20}, [2]int64{10, 20}, [2]int64{10, 20})
	a, err := EDFFFD.Partition(s, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSplit() != 0 {
		t.Fatal("EDF-FFD must not split")
	}
	if u0 := a.CoreUtilization(0); u0 != 1.0 {
		t.Fatalf("EDF first-fit should fill core 0 to 1.0, got %v", u0)
	}
	if !analysis.EDFAssignmentSchedulable(a, overhead.Zero()) {
		t.Fatal("not EDF schedulable")
	}
}

func TestEDFWMSplitsPathology(t *testing.T) {
	// 3 × U=0.7 on 2 cores: no partitioned placement (1.4 > 1), but
	// ΣU = 2.1 > 2 — truly infeasible. Use 0.65: ΣU = 1.95 ≤ 2.
	s := newSet(t, [2]int64{13, 20}, [2]int64{13, 20}, [2]int64{13, 20})
	if _, err := EDFFFD.Partition(s, 2, nil); err != ErrUnschedulable {
		t.Fatalf("EDF-FFD should fail the pathology, got %v", err)
	}
	a, err := WM.Partition(s, 2, nil)
	if err != nil {
		t.Fatalf("EDF-WM failed: %v", err)
	}
	if a.NumSplit() == 0 {
		t.Fatal("EDF-WM should split")
	}
	for _, sp := range a.Splits {
		if !sp.HasWindows() {
			t.Fatal("EDF-WM split lacks windows")
		}
		if err := sp.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if !analysis.EDFAssignmentSchedulable(a, overhead.Zero()) {
		t.Fatal("EDF-WM assignment fails its own admission")
	}
}

func TestEDFWMWithPaperOverheads(t *testing.T) {
	s := newSet(t, [2]int64{13, 20}, [2]int64{13, 20}, [2]int64{13, 20})
	m := overhead.PaperModel()
	a, err := WM.Partition(s, 2, m)
	if err != nil {
		t.Fatalf("EDF-WM with overheads failed: %v", err)
	}
	if !analysis.EDFAssignmentSchedulable(a, m) {
		t.Fatal("not schedulable under admission model")
	}
}

// EDF-WM accepts every EDF-FFD-schedulable set (splitting is a
// fallback), and strictly more at high utilization.
func TestEDFWMDominatesEDFFFD(t *testing.T) {
	g := taskgen.New(taskgen.Config{N: 8, TotalUtilization: 3.8, Seed: 123})
	sets := g.Batch(30)
	wm, ffd := 0, 0
	for _, s := range sets {
		if _, err := EDFFFD.Partition(s.Clone(), 4, nil); err == nil {
			ffd++
			if _, err := WM.Partition(s.Clone(), 4, nil); err != nil {
				t.Fatal("EDF-WM rejected an EDF-FFD-schedulable set")
			}
		}
		if _, err := WM.Partition(s.Clone(), 4, nil); err == nil {
			wm++
		}
	}
	if wm <= ffd {
		t.Fatalf("EDF-WM=%d should strictly beat EDF-FFD=%d at ΣU=3.8", wm, ffd)
	}
}

// EDF partitioning beats RM partitioning on the same sets (U≤1 cores
// vs the RM bound).
func TestEDFBeatsRMPartitioning(t *testing.T) {
	g := taskgen.New(taskgen.Config{N: 8, TotalUtilization: 3.6, Seed: 321})
	edf, rm := 0, 0
	for _, s := range g.Batch(30) {
		if _, err := EDFFFD.Partition(s.Clone(), 4, nil); err == nil {
			edf++
		}
		if _, err := FFD.Partition(s.Clone(), 4, nil); err == nil {
			rm++
		}
	}
	if edf < rm {
		t.Fatalf("EDF-FFD=%d should be ≥ RM FFD=%d", edf, rm)
	}
}

func TestEDFRandomSetsValid(t *testing.T) {
	g := taskgen.New(taskgen.Config{N: 10, TotalUtilization: 3.2, Seed: 55})
	m := overhead.PaperModel()
	for si, s := range g.Batch(10) {
		for _, alg := range []Algorithm{EDFFFD, EDFWFD, WM} {
			a, err := alg.Partition(s.Clone(), 4, m)
			if err == ErrUnschedulable {
				continue
			}
			if err != nil {
				t.Fatalf("%s set %d: %v", alg.Name(), si, err)
			}
			if err := a.Validate(); err != nil {
				t.Fatalf("%s set %d: %v", alg.Name(), si, err)
			}
			if !analysis.EDFAssignmentSchedulable(a, m) {
				t.Fatalf("%s set %d: admission disagreement", alg.Name(), si)
			}
			if got := len(a.AllTasks()); got != s.Len() {
				t.Fatalf("%s set %d: %d tasks, want %d", alg.Name(), si, got, s.Len())
			}
		}
	}
}
