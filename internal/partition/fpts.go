package partition

import (
	"repro/internal/analysis"
	"repro/internal/overhead"
	"repro/internal/task"
	"repro/internal/timeq"
)

// FPTS is the paper's evaluated semi-partitioned algorithm: RM
// partitioning with task splitting, admitted by exact overhead-aware
// response-time analysis.
//
// Placement is first-fit in decreasing utilization order — identical
// to FFD while tasks fit whole, which makes FP-TS dominate FFD by
// construction (any FFD-schedulable set takes the same path and needs
// no splits). When a task fits on no core, it is split: the largest
// admissible budget is carved out of the core that can take the most,
// and the remainder continues on the remaining cores the same way.
// Split parts run at the highest local priorities so each part drains
// its budget promptly, maximizing the slack left for the downstream
// parts (DESIGN.md §6).
//
// The literal SPA1/SPA2 sequential constructions of Guan et al.
// (RTAS 2010), whose worst-case utilization bound FP-TS inherits, are
// provided separately (see SPA); under the bound-based admission they
// were designed for they reproduce the Liu & Layland bound, but under
// the exact RTA admission that the paper's overhead integration
// requires, the practical splitting-fallback variant is the one that
// exhibits the paper's "high acceptance ratio in empirical
// evaluations".
type FPTS struct {
	// NoBoost runs split parts at their plain RM priority instead of
	// the boosted band — the DESIGN.md §6 design-choice ablation.
	// Body parts then suffer local interference, inflating the
	// downstream jitter, so acceptance is expected to drop.
	NoBoost bool
}

// TS is the ready-to-use FP-TS instance compared against FFD and WFD
// in the Section 4 experiments; TSNoBoost is its ablation twin.
var (
	TS        = &FPTS{}
	TSNoBoost = &FPTS{NoBoost: true}
)

// Name returns "FP-TS" (or "FP-TS-noboost" for the ablation variant).
func (f *FPTS) Name() string {
	if f.NoBoost {
		return "FP-TS-noboost"
	}
	return "FP-TS"
}

// Policy declares fixed-priority dispatching.
func (f *FPTS) Policy() task.Policy { return task.FixedPriority }

// Partition assigns the set, splitting tasks when whole placement
// fails, or returns ErrUnschedulable. All probes thread one admission
// context, so each differs from the committed state by exactly the
// tentative placement being tested.
func (f *FPTS) Partition(s *task.Set, m int, model *overhead.Model) (*task.Assignment, error) {
	return f.PartitionOpts(s, m, model, Options{})
}

// PartitionOpts is Partition with cancellation and a stats sink.
func (f *FPTS) PartitionOpts(s *task.Set, m int, model *overhead.Model, o Options) (*task.Assignment, error) {
	model = overhead.Normalize(model)
	if err := validateInput(s, m, f.Policy()); err != nil {
		return nil, err
	}
	a := o.newAssignment(f.Policy(), m)
	ctx := newContext(f, a, model, o)
	defer ctx.Flush()
	for _, t := range s.SortedByUtilizationDesc() {
		if err := o.err(); err != nil {
			return nil, err
		}
		if placeWholeFirstFit(ctx, t, m) {
			continue
		}
		if !f.split(ctx, t, m) {
			return nil, ErrUnschedulable
		}
	}
	return finalize(ctx, a)
}

// placeWholeFirstFit puts t whole on the lowest-indexed core that
// admits it, reporting success.
func placeWholeFirstFit(ctx analysis.Context, t *task.Task, m int) bool {
	for c := 0; c < m; c++ {
		if ctx.TryPlace(t, c) {
			ctx.Commit()
			return true
		}
		ctx.Rollback()
	}
	return false
}

// split carves t across several cores: repeatedly find the core with
// the largest admissible budget for the next part and place it there,
// until the remainder fits. Each core hosts at most one part of t.
func (f *FPTS) split(ctx analysis.Context, t *task.Task, m int) bool {
	remaining := t.WCET
	var parts []task.Part
	used := make([]bool, m)
	for remaining > 0 {
		bestCore := -1
		var bestBudget timeq.Time
		for c := 0; c < m; c++ {
			if used[c] {
				continue
			}
			b := maxBudgetOnCore(ctx, parts, t, remaining, c, used, m, f.NoBoost)
			if b > bestBudget {
				bestCore, bestBudget = c, b
			}
		}
		if bestCore == -1 || bestBudget < minPartBudget {
			return false
		}
		used[bestCore] = true
		if bestBudget >= remaining {
			parts = append(parts, task.Part{Core: bestCore, Budget: remaining})
			remaining = 0
		} else {
			parts = append(parts, task.Part{Core: bestCore, Budget: bestBudget})
			remaining -= bestBudget
		}
	}
	if len(parts) < 2 {
		// Cannot happen: whole placement was attempted first, so the
		// first part never swallows the entire WCET. Guard anyway.
		return false
	}
	ctx.AddSplit(&task.Split{Task: t, Parts: parts, NoBoost: f.NoBoost})
	return true
}

// maxBudgetOnCore returns the largest budget b ≤ remaining such that
// core c admits a tentative part (priorParts…, (c,b)), searching the
// same 1µs grid as the SPA fill. A non-final part needs a remainder
// placeholder on some other unused core for correct migration flags.
func maxBudgetOnCore(ctx analysis.Context, priorParts []task.Part, t *task.Task, remaining timeq.Time, c int, used []bool, m int, noBoost bool) timeq.Time {
	// Pick a placeholder core for the remainder of a non-final part.
	placeholder := -1
	for o := 0; o < m; o++ {
		if o != c && !used[o] {
			placeholder = o
			break
		}
	}
	fits := func(b timeq.Time) bool {
		return tentativePartFits(ctx, priorParts, t, remaining, b, c, placeholder, noBoost)
	}
	if fits(remaining) {
		return remaining
	}
	if placeholder == -1 {
		// No core left for a remainder: only a final part is possible.
		return 0
	}
	loUS, hiUS := int64(1), int64(remaining/timeq.Microsecond)
	if hiUS < 1 || !fits(timeq.Time(loUS)*timeq.Microsecond) {
		return 0
	}
	for loUS < hiUS {
		mid := (loUS + hiUS + 1) / 2
		if fits(timeq.Time(mid) * timeq.Microsecond) {
			loUS = mid
		} else {
			hiUS = mid - 1
		}
	}
	return timeq.Time(loUS) * timeq.Microsecond
}

// tentativePartFits probes core c with the tentative split
// (priorParts…, (c,b)[, remainder on placeholder]) installed.
func tentativePartFits(ctx analysis.Context, priorParts []task.Part, t *task.Task, remaining, b timeq.Time, c, placeholder int, noBoost bool) bool {
	if b <= 0 {
		return true
	}
	final := b >= remaining
	if final && len(priorParts) == 0 {
		// A "split" with a single part is just a priority-boosted
		// whole placement; whole placement already failed, so reject
		// (a real split of ≥ 2 parts will be found on the grid).
		return false
	}
	parts := make([]task.Part, len(priorParts), len(priorParts)+2)
	copy(parts, priorParts)
	parts = append(parts, task.Part{Core: c, Budget: b})
	if !final {
		if placeholder == -1 {
			return false
		}
		parts = append(parts, task.Part{Core: placeholder, Budget: remaining - b})
	}
	ok := ctx.TrySplit(&task.Split{Task: t, Parts: parts, NoBoost: noBoost}, c)
	ctx.Rollback()
	return ok
}
