package partition

import (
	"fmt"

	"repro/internal/overhead"
	"repro/internal/task"
)

// Fit selects the bin-packing placement rule.
type Fit int

const (
	// FirstFit places the task on the lowest-indexed core that
	// admits it.
	FirstFit Fit = iota
	// BestFit places the task on the admitting core with the least
	// remaining utilization (tightest fit).
	BestFit
	// WorstFit places the task on the admitting core with the most
	// remaining utilization (spreads load; the paper's WFD).
	WorstFit
)

// String names the fit rule.
func (f Fit) String() string {
	switch f {
	case FirstFit:
		return "first-fit"
	case BestFit:
		return "best-fit"
	case WorstFit:
		return "worst-fit"
	default:
		return fmt.Sprintf("Fit(%d)", int(f))
	}
}

// Order selects the order in which tasks are offered to the packer.
type Order int

const (
	// DecreasingUtilization is the "D" in FFD/WFD/BFD.
	DecreasingUtilization Order = iota
	// PriorityOrder offers tasks from highest to lowest RM priority.
	PriorityOrder
)

// Heuristic is a partitioned (no-splitting) bin-packing algorithm.
type Heuristic struct {
	Fit   Fit
	Order Order
	name  string
}

// The paper's two partitioned baselines, plus companions.
var (
	// FFD is first-fit decreasing-utilization partitioning.
	FFD = &Heuristic{Fit: FirstFit, Order: DecreasingUtilization, name: "FFD"}
	// WFD is worst-fit decreasing-utilization partitioning.
	WFD = &Heuristic{Fit: WorstFit, Order: DecreasingUtilization, name: "WFD"}
	// BFD is best-fit decreasing-utilization partitioning.
	BFD = &Heuristic{Fit: BestFit, Order: DecreasingUtilization, name: "BFD"}
	// FF is first-fit in priority order.
	FF = &Heuristic{Fit: FirstFit, Order: PriorityOrder, name: "FF"}
)

// Name returns the conventional algorithm name.
func (h *Heuristic) Name() string {
	if h.name != "" {
		return h.name
	}
	return fmt.Sprintf("%v/%v", h.Fit, h.Order)
}

// Policy declares fixed-priority dispatching.
func (h *Heuristic) Policy() task.Policy { return task.FixedPriority }

// Partition assigns every task whole to some core, admitting every
// probe through one admission context threaded across the whole
// packing loop, or fails with ErrUnschedulable.
func (h *Heuristic) Partition(s *task.Set, m int, model *overhead.Model) (*task.Assignment, error) {
	return h.PartitionOpts(s, m, model, Options{})
}

// PartitionOpts is Partition with cancellation and a stats sink.
func (h *Heuristic) PartitionOpts(s *task.Set, m int, model *overhead.Model, o Options) (*task.Assignment, error) {
	model = overhead.Normalize(model)
	if err := validateInput(s, m, h.Policy()); err != nil {
		return nil, err
	}
	var order []*task.Task
	switch h.Order {
	case PriorityOrder:
		order = s.SortedByPriority()
	default:
		order = s.SortedByUtilizationDesc()
	}
	a := o.newAssignment(h.Policy(), m)
	ctx := newContext(h, a, model, o)
	defer ctx.Flush()
	for _, t := range order {
		if err := o.err(); err != nil {
			return nil, err
		}
		if !placeByFit(ctx, a, t, h.Fit, m, o.Speculative) {
			return nil, ErrUnschedulable
		}
	}
	return finalize(ctx, a)
}
