// Package partition implements the task-to-core assignment algorithms
// the paper compares in Section 4:
//
//   - FFD, WFD (and companions FF, BF, BFD): partitioned
//     fixed-priority scheduling with bin-packing heuristics ordered by
//     decreasing utilization;
//   - SPA1 and SPA2: the semi-partitioned task-splitting algorithms of
//     Guan et al. (RTAS 2010) — the "FP-TS" the paper implements —
//     which fill each core up to a threshold and split the overflowing
//     task across core boundaries;
//   - EDF-FFD, EDF-WFD and EDF-WM: the partitioned and
//     window-splitting EDF extensions.
//
// Every algorithm declares its scheduling policy and admits every
// placement through the analysis.Analyzer for that policy — the
// shared overhead-aware admission test of package analysis — so an
// assignment is returned only if it is schedulable *including*
// overheads. Passing overhead.Zero() yields the "theoretical"
// comparison.
//
// Admission is stateful: each Partition call opens one incremental
// analysis.Context over its growing assignment and threads it through
// every probe of the packing loop, so consecutive probes cost only
// the work of the cores they touch (DESIGN.md §2). Decisions are
// bit-identical to the stateless analyzer path.
package partition

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/overhead"
	"repro/internal/task"
)

// ErrUnschedulable is returned when the algorithm cannot produce a
// schedulable assignment on the given number of cores.
var ErrUnschedulable = errors.New("partition: task set not schedulable by this algorithm")

// Options carries the cross-cutting concerns of one Partition call.
// The zero value is the historical behavior: no cancellation, stats
// folded into the process-wide aggregate only.
type Options struct {
	// Ctx, when non-nil, cancels the packing loop between placements;
	// the call then returns the context's error. In-flight single
	// probes are not interrupted (they are microseconds-scale).
	Ctx context.Context
	// Stats, when non-nil, additionally receives the admission
	// counters this call's context flushes, so concurrent callers in
	// one process can each scope their own admission work (the
	// process-wide aggregate behind analysis.StatsSnapshot is always
	// updated too).
	Stats *analysis.Collector
	// Speculative switches the bin-packing heuristics' candidate scan
	// to the context's forked snapshot (analysis.Context.Fork): the
	// per-core probes run read-only against the committed state
	// instead of probe/rollback cycles on the live context, and only
	// the winning core is probed and committed for real. Decisions
	// are identical by construction — snapshot verdicts are
	// bit-identical to context probes — which the speculative
	// differential test pins. The scan could equally fan out across
	// goroutines (the snapshot is concurrency-safe); the sweep
	// pipeline already saturates cores with whole placements, so the
	// serial scan is kept.
	Speculative bool
	// Arena, when non-nil, supplies the call's assignment and
	// admission context from per-worker recycled slabs and shares
	// probe verdicts across the algorithms of one task-set cell; see
	// Arena. Decisions are unchanged. The returned assignment is only
	// valid until the next call with the same arena.
	Arena *Arena
}

// newAssignment returns the assignment the packing loop will grow:
// arena-recycled when an arena is attached, fresh otherwise.
func (o Options) newAssignment(p task.Policy, m int) *task.Assignment {
	if o.Arena != nil {
		return o.Arena.assignment(p, m)
	}
	return task.NewAssignment(m)
}

// err reports the cancellation state.
func (o Options) err() error {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Err()
}

// Algorithm produces an assignment of a task set onto m cores, or
// ErrUnschedulable. Every implementation declares the scheduling
// policy its assignments require; admission goes through the
// analysis.Analyzer for that policy, and returned assignments are
// stamped with it and pass the analyzer's full test under the same
// model.
type Algorithm interface {
	Name() string
	// Policy is the dispatching discipline the algorithm's
	// assignments are built (and admitted) for.
	Policy() task.Policy
	Partition(s *task.Set, m int, model *overhead.Model) (*task.Assignment, error)
	// PartitionOpts is Partition with explicit cross-cutting options:
	// cancellation and a per-call admission-stats sink.
	PartitionOpts(s *task.Set, m int, model *overhead.Model, o Options) (*task.Assignment, error)
}

// ByName maps the conventional CLI/API names to algorithms — the
// single lookup shared by the spexp/spsim flag parsing and the admitd
// sweep endpoint.
func ByName(name string) (Algorithm, error) {
	switch name {
	case "fpts":
		return TS, nil
	case "ffd":
		return FFD, nil
	case "wfd":
		return WFD, nil
	case "bfd":
		return BFD, nil
	case "spa1":
		return SPA1, nil
	case "spa2":
		return SPA2, nil
	case "edfwm":
		return WM, nil
	case "edfffd":
		return EDFFFD, nil
	case "edfwfd":
		return EDFWFD, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q (fpts|ffd|wfd|bfd|spa1|spa2|edfwm|edfffd|edfwfd)", name)
	}
}

// newContext opens the incremental admission context every packing
// loop threads through its probes: one stateful session per
// (assignment, overhead model), bound to the analyzer of the
// algorithm's declared policy. All assignment mutations go through
// the context so its per-core caches, warm-started fixed points and
// verdict memos stay coherent; decisions are bit-identical to the
// stateless analyzer path. The options' stats sink, if any, is
// attached so the call's admission work lands in the caller's
// collector.
func newContext(alg Algorithm, a *task.Assignment, model *overhead.Model, o Options) analysis.Context {
	if o.Arena != nil {
		// Long-lived per-policy context, rebound with Reset: entity
		// slabs, warm vectors and verdict memos recycle across calls.
		return o.Arena.context(alg.Policy(), a, model, o.Stats)
	}
	ctx := analysis.ForPolicy(alg.Policy()).NewContext(a, model)
	if o.Stats != nil {
		ctx.SetCollector(o.Stats)
	}
	return ctx
}

// placeByFit runs one bin-packing placement: scan the cores for
// candidates under the fit rule, then commit t onto the winner.
// Reports false when no core admits t. The scan either probes the
// live context (with rollback after every candidate) or, when
// speculative, a forked snapshot of the committed state — same
// verdicts, no context churn — confirming only the winner on the
// context.
func placeByFit(ctx analysis.Context, a *task.Assignment, t *task.Task, fit Fit, m int, speculative bool) bool {
	best := -1
	var bestU float64
	consider := func(c int) bool {
		u := a.CoreUtilization(c)
		switch fit {
		case FirstFit:
			best = c
		case BestFit:
			if best == -1 || u > bestU {
				best, bestU = c, u
			}
		case WorstFit:
			if best == -1 || u < bestU {
				best, bestU = c, u
			}
		}
		return fit == FirstFit // first fit stops at the first candidate
	}
	if speculative {
		snap := ctx.Fork()
		for c := 0; c < m; c++ {
			if !snap.TryPlace(t, c) {
				continue
			}
			if consider(c) {
				break
			}
		}
		if best == -1 {
			return false
		}
		// Confirm the winner on the live context; snapshot and context
		// verdicts are bit-identical, so this must admit.
		if !ctx.TryPlace(t, best) {
			// Defensive only: fall back to the serial scan rather than
			// committing an unverified placement.
			ctx.Rollback()
			return placeByFit(ctx, a, t, fit, m, false)
		}
		ctx.Commit()
		return true
	}
	for c := 0; c < m; c++ {
		fits := ctx.TryPlace(t, c)
		ctx.Rollback()
		if !fits {
			continue
		}
		if consider(c) {
			break
		}
	}
	if best == -1 {
		return false
	}
	// The winning core was probed in this committed epoch, so the
	// context promotes that probe's verdict and warm values.
	ctx.Place(t, best)
	return true
}

// validateInput performs the shared sanity checks. Fixed-priority
// algorithms additionally require priorities to be assigned.
func validateInput(s *task.Set, m int, p task.Policy) error {
	if m <= 0 {
		return fmt.Errorf("partition: %d cores", m)
	}
	if s.Len() == 0 {
		return errors.New("partition: empty task set")
	}
	if err := s.Validate(); err != nil {
		return err
	}
	if p == task.FixedPriority {
		for _, t := range s.Tasks {
			if t.Priority == 0 {
				return fmt.Errorf("partition: task %v has no priority; call Set.AssignRM first", t)
			}
		}
	}
	return nil
}

// finalize stamps the assignment with the context's policy and
// validates it in full, chains included. The full test runs through
// the context, so per-core verdicts the packing loop already
// established (and no later mutation invalidated) are reused instead
// of re-analyzed.
func finalize(ctx analysis.Context, a *task.Assignment) (*task.Assignment, error) {
	a.Policy = ctx.Analyzer().Policy()
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("partition: produced invalid assignment: %w", err)
	}
	if !ctx.Schedulable() {
		return nil, ErrUnschedulable
	}
	return a, nil
}
