// Package partition implements the task-to-core assignment algorithms
// the paper compares in Section 4:
//
//   - FFD, WFD (and companions FF, BF, BFD): partitioned
//     fixed-priority scheduling with bin-packing heuristics ordered by
//     decreasing utilization;
//   - SPA1 and SPA2: the semi-partitioned task-splitting algorithms of
//     Guan et al. (RTAS 2010) — the "FP-TS" the paper implements —
//     which fill each core up to a threshold and split the overflowing
//     task across core boundaries.
//
// Every algorithm takes an overhead model; admission is the exact
// overhead-aware response-time analysis of package analysis, so an
// assignment is returned only if it is schedulable *including*
// overheads. Passing overhead.Zero() yields the "theoretical"
// comparison.
package partition

import (
	"errors"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/overhead"
	"repro/internal/task"
)

// ErrUnschedulable is returned when the algorithm cannot produce a
// schedulable assignment on the given number of cores.
var ErrUnschedulable = errors.New("partition: task set not schedulable by this algorithm")

// Algorithm produces an assignment of a task set onto m cores, or
// ErrUnschedulable. Implementations must return assignments that pass
// analysis.AssignmentSchedulable under the same model.
type Algorithm interface {
	Name() string
	Partition(s *task.Set, m int, model *overhead.Model) (*task.Assignment, error)
}

// normalizeModel maps nil to the zero model.
func normalizeModel(m *overhead.Model) *overhead.Model {
	if m == nil {
		return overhead.Zero()
	}
	return m
}

// validateInput performs the shared sanity checks.
func validateInput(s *task.Set, m int) error {
	if m <= 0 {
		return fmt.Errorf("partition: %d cores", m)
	}
	if s.Len() == 0 {
		return errors.New("partition: empty task set")
	}
	if err := s.Validate(); err != nil {
		return err
	}
	for _, t := range s.Tasks {
		if t.Priority == 0 {
			return fmt.Errorf("partition: task %v has no priority; call Set.AssignRM first", t)
		}
	}
	return nil
}

// coreFits reports whether core c of the (possibly provisional)
// assignment remains schedulable, with split-chain jitters resolved
// across the whole assignment.
func coreFits(a *task.Assignment, c int, model *overhead.Model) bool {
	cores := analysis.BuildCores(a, model)
	return cores.SchedulableCore(c, model)
}

// finalize validates the complete assignment, chains included.
func finalize(a *task.Assignment, model *overhead.Model) (*task.Assignment, error) {
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("partition: produced invalid assignment: %w", err)
	}
	if !analysis.AssignmentSchedulable(a, model) {
		return nil, ErrUnschedulable
	}
	return a, nil
}
