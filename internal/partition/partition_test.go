package partition

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/overhead"
	"repro/internal/task"
	"repro/internal/taskgen"
	"repro/internal/timeq"
)

func ms(x int64) timeq.Time { return timeq.Time(x) * timeq.Millisecond }

func newSet(t *testing.T, specs ...[2]int64) *task.Set {
	t.Helper()
	tasks := make([]*task.Task, len(specs))
	for i, sp := range specs {
		tasks[i] = &task.Task{ID: task.ID(i + 1), WCET: ms(sp[0]), Period: ms(sp[1])}
	}
	s := task.NewSet(tasks...)
	s.AssignRM()
	return s
}

func TestHeuristicNames(t *testing.T) {
	if FFD.Name() != "FFD" || WFD.Name() != "WFD" || BFD.Name() != "BFD" || FF.Name() != "FF" {
		t.Error("canonical names wrong")
	}
	anon := &Heuristic{Fit: BestFit, Order: PriorityOrder}
	if anon.Name() == "" {
		t.Error("anonymous heuristic has empty name")
	}
}

func TestValidateInputErrors(t *testing.T) {
	s := newSet(t, [2]int64{1, 10})
	if _, err := FFD.Partition(s, 0, nil); err == nil {
		t.Error("0 cores accepted")
	}
	empty := &task.Set{}
	if _, err := FFD.Partition(empty, 2, nil); err == nil {
		t.Error("empty set accepted")
	}
	noPrio := task.NewSet(&task.Task{ID: 1, WCET: ms(1), Period: ms(10)})
	if _, err := FFD.Partition(noPrio, 2, nil); err == nil {
		t.Error("unprioritized set accepted")
	}
}

func TestFFDPartitionsEasySet(t *testing.T) {
	// Four tasks, U=0.25 each: trivially partitionable on 2 cores.
	s := newSet(t, [2]int64{5, 20}, [2]int64{5, 20}, [2]int64{5, 20}, [2]int64{5, 20})
	a, err := FFD.Partition(s, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NumSplit() != 0 {
		t.Fatal("FFD must not split")
	}
	if !analysis.AssignmentSchedulable(a, overhead.Zero()) {
		t.Fatal("returned assignment not schedulable")
	}
}

func TestWFDSpreadsLoad(t *testing.T) {
	// Two big tasks and two small ones on 2 cores: WFD puts the big
	// ones on different cores.
	s := newSet(t, [2]int64{8, 20}, [2]int64{8, 20}, [2]int64{1, 20}, [2]int64{1, 20})
	a, err := WFD.Partition(s, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	u0, u1 := a.CoreUtilization(0), a.CoreUtilization(1)
	if u0 != u1 {
		t.Fatalf("WFD should balance: %v vs %v", u0, u1)
	}
}

func TestFFDPacksTight(t *testing.T) {
	// FFD concentrates on the first core while it fits.
	s := newSet(t, [2]int64{4, 20}, [2]int64{4, 20})
	a, err := FFD.Partition(s, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Normal[0]) != 2 || len(a.Normal[1]) != 0 {
		t.Fatalf("FFD placement: %d/%d", len(a.Normal[0]), len(a.Normal[1]))
	}
}

// The classic partitioning pathology: m+1 tasks of utilization just
// over 1/2 cannot be partitioned on m cores, but semi-partitioning
// schedules them by splitting one task.
func TestSplittingBeatsPartitioningPathology(t *testing.T) {
	// 3 tasks, U ≈ 0.6 each, 2 cores. ΣU = 1.8 < 2.
	s := newSet(t, [2]int64{12, 20}, [2]int64{12, 20}, [2]int64{12, 20})
	for _, h := range []*Heuristic{FFD, WFD, BFD} {
		if _, err := h.Partition(s, 2, nil); err != ErrUnschedulable {
			t.Fatalf("%s should fail on the pathology, got %v", h.Name(), err)
		}
	}
	a, err := SPA2.Partition(s, 2, nil)
	if err != nil {
		t.Fatalf("SPA2 failed: %v", err)
	}
	if a.NumSplit() == 0 {
		t.Fatal("SPA2 should have split a task")
	}
	if !analysis.AssignmentSchedulable(a, overhead.Zero()) {
		t.Fatal("SPA2 assignment not schedulable")
	}
}

func TestSPANames(t *testing.T) {
	if SPA1.Name() != "SPA1" || SPA2.Name() != "SPA2" {
		t.Error("SPA names")
	}
	b := &SPA{Variant: 2, FillByBound: true}
	if b.Name() != "SPA2-bound" {
		t.Errorf("bound name %q", b.Name())
	}
}

func TestSPA1HandlesWholeFits(t *testing.T) {
	// Low utilization: nothing should be split.
	s := newSet(t, [2]int64{2, 20}, [2]int64{2, 20}, [2]int64{2, 20})
	a, err := SPA1.Partition(s, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSplit() != 0 {
		t.Fatal("needless split")
	}
}

func TestSPA2PreassignsHeavy(t *testing.T) {
	// One heavy task (U=0.9) among light ones on 2 cores.
	s := newSet(t, [2]int64{18, 20}, [2]int64{4, 20}, [2]int64{4, 20}, [2]int64{4, 20})
	a, err := SPA2.Partition(s, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The heavy task must not be split.
	for _, sp := range a.Splits {
		if sp.Task.Utilization() > 0.85 {
			t.Fatal("heavy task was split")
		}
	}
	if !analysis.AssignmentSchedulable(a, overhead.Zero()) {
		t.Fatal("not schedulable")
	}
}

func TestSPA2TooManyHeavy(t *testing.T) {
	// Three heavy tasks on 2 cores: impossible.
	s := newSet(t, [2]int64{18, 20}, [2]int64{18, 20}, [2]int64{18, 20})
	if _, err := SPA2.Partition(s, 2, nil); err != ErrUnschedulable {
		t.Fatalf("got %v", err)
	}
}

func TestSPABoundFill(t *testing.T) {
	// Three tasks of U=0.5 on 2 cores: ΣU=1.5 is under the per-core
	// Liu & Layland thresholds, and the middle task gets split when
	// core 0 reaches Θ(2).
	alg := &SPA{Variant: 2, FillByBound: true}
	s := newSet(t, [2]int64{10, 20}, [2]int64{10, 20}, [2]int64{10, 20})
	a, err := alg.Partition(s, 2, overhead.Zero())
	if err != nil {
		t.Fatalf("bound-fill SPA2 failed: %v", err)
	}
	if a.NumSplit() != 1 {
		t.Fatalf("bound fill should split exactly one task, got %d", a.NumSplit())
	}
	if !analysis.AssignmentSchedulable(a, overhead.Zero()) {
		t.Fatal("not schedulable")
	}
}

func TestPartitionWithPaperOverheads(t *testing.T) {
	// The U=0.6 pathology is *exactly* at capacity, so it cannot
	// absorb any overhead; with a little slack (U=0.575 each,
	// ΣU=1.725 on 2 cores) the millisecond-scale periods absorb the
	// µs-scale overheads and SPA2 still admits by splitting.
	tasks := []*task.Task{
		{ID: 1, WCET: 11500 * timeq.Microsecond, Period: ms(20)},
		{ID: 2, WCET: 11500 * timeq.Microsecond, Period: ms(20)},
		{ID: 3, WCET: 11500 * timeq.Microsecond, Period: ms(20)},
	}
	s := task.NewSet(tasks...)
	s.AssignRM()
	m := overhead.PaperModel()
	a, err := SPA2.Partition(s, 2, m)
	if err != nil {
		t.Fatalf("SPA2 with overheads failed: %v", err)
	}
	if a.NumSplit() == 0 {
		t.Fatal("expected a split")
	}
	if !analysis.AssignmentSchedulable(a, m) {
		t.Fatal("not schedulable under the admission model")
	}
	// The same set cannot be FFD-partitioned (two U=0.575 tasks do
	// not share a core).
	if _, err := FFD.Partition(s, 2, m); err != ErrUnschedulable {
		t.Fatalf("FFD: %v", err)
	}
}

func TestOverheadReducesAdmission(t *testing.T) {
	// With µs-scale periods, the paper's µs-scale overheads dominate:
	// a set schedulable without overheads must be rejected with them.
	// Per-job overhead under the paper model is ≈ 23µs; a 10µs job in
	// a 32µs period fits alone without overheads but not with them.
	tasks := []*task.Task{
		{ID: 1, WCET: 10 * timeq.Microsecond, Period: 32 * timeq.Microsecond},
		{ID: 2, WCET: 10 * timeq.Microsecond, Period: 32 * timeq.Microsecond},
	}
	s := task.NewSet(tasks...)
	s.AssignRM()
	if _, err := FFD.Partition(s, 2, nil); err != nil {
		t.Fatalf("zero overhead should admit: %v", err)
	}
	if _, err := FFD.Partition(s, 2, overhead.PaperModel()); err == nil {
		t.Fatal("µs-period set admitted despite overheads larger than periods")
	}
}

// Cross-algorithm property on random sets: every produced assignment
// is valid, schedulable under its own model, and splits only for SPA.
func TestRandomSetsAllAlgorithms(t *testing.T) {
	algs := []Algorithm{FFD, WFD, BFD, FF, SPA1, SPA2, TS}
	models := map[string]*overhead.Model{"zero": overhead.Zero(), "paper": overhead.PaperModel()}
	g := taskgen.New(taskgen.Config{N: 12, TotalUtilization: 2.6, Seed: 1234})
	sets := g.Batch(10)
	for mi, model := range models {
		for _, alg := range algs {
			admitted := 0
			for si, s := range sets {
				a, err := alg.Partition(s.Clone(), 4, model)
				if err == ErrUnschedulable {
					continue
				}
				if err != nil {
					t.Fatalf("%s/%s set %d: %v", alg.Name(), mi, si, err)
				}
				admitted++
				if err := a.Validate(); err != nil {
					t.Fatalf("%s/%s set %d: invalid: %v", alg.Name(), mi, si, err)
				}
				if !analysis.AssignmentSchedulable(a, model) {
					t.Fatalf("%s/%s set %d: unschedulable assignment returned", alg.Name(), mi, si)
				}
				if _, isH := alg.(*Heuristic); isH && a.NumSplit() > 0 {
					t.Fatalf("%s split a task", alg.Name())
				}
				for _, sp := range a.Splits {
					if len(sp.Parts) < 2 {
						t.Fatalf("%s produced a 1-part split", alg.Name())
					}
				}
				// All tasks present exactly once.
				if got := len(a.AllTasks()); got != s.Len() {
					t.Fatalf("%s/%s set %d: %d tasks assigned, want %d", alg.Name(), mi, si, got, s.Len())
				}
			}
			if admitted == 0 {
				t.Errorf("%s/%s admitted nothing at U=2.6 on 4 cores", alg.Name(), mi)
			}
		}
	}
}

// FP-TS must dominate FFD/WFD in acceptance on utilization-heavy
// sets — the paper's headline. FP-TS accepts every FFD-schedulable
// set by construction, so domination must be exact, and at ΣU=3.6 on
// 4 cores it must also win strictly.
func TestFPTSDominatesPartitioned(t *testing.T) {
	g := taskgen.New(taskgen.Config{N: 8, TotalUtilization: 3.6, Seed: 77})
	sets := g.Batch(40)
	count := func(alg Algorithm) int {
		n := 0
		for _, s := range sets {
			if _, err := alg.Partition(s.Clone(), 4, nil); err == nil {
				n++
			}
		}
		return n
	}
	ts := count(TS)
	ffd := count(FFD)
	wfd := count(WFD)
	if ts <= ffd || ts <= wfd {
		t.Fatalf("FP-TS=%d should strictly dominate FFD=%d and WFD=%d here", ts, ffd, wfd)
	}
}

// Per-set domination: every FFD-schedulable set is FP-TS-schedulable.
func TestFPTSAcceptsEveryFFDSet(t *testing.T) {
	g := taskgen.New(taskgen.Config{N: 10, TotalUtilization: 3.4, Seed: 31})
	m := overhead.PaperModel()
	for si, s := range g.Batch(30) {
		if _, err := FFD.Partition(s.Clone(), 4, m); err != nil {
			continue
		}
		if _, err := TS.Partition(s.Clone(), 4, m); err != nil {
			t.Fatalf("set %d: FFD admits but FP-TS rejects", si)
		}
	}
}

func TestFPTSSplitsOnlyWhenNeeded(t *testing.T) {
	// Low utilization: identical to FFD, no splits.
	s := newSet(t, [2]int64{2, 20}, [2]int64{2, 20}, [2]int64{2, 20})
	a, err := TS.Partition(s, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSplit() != 0 {
		t.Fatal("needless split")
	}
	// The pathology: must split.
	s2 := newSet(t, [2]int64{12, 20}, [2]int64{12, 20}, [2]int64{12, 20})
	a2, err := TS.Partition(s2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a2.NumSplit() != 1 {
		t.Fatalf("want exactly 1 split, got %d", a2.NumSplit())
	}
	if !analysis.AssignmentSchedulable(a2, overhead.Zero()) {
		t.Fatal("not schedulable")
	}
}

func TestFPTSName(t *testing.T) {
	if TS.Name() != "FP-TS" {
		t.Errorf("name %q", TS.Name())
	}
}

// The boost ablation: both priority designs for split parts must be
// sound and dominate plain FFD (each is FFD plus a splitting
// fallback); which one accepts more is workload-dependent — boosted
// parts migrate predictably but steal from every local task, plain-RM
// parts interfere less but push jitter downstream — so the ordering
// is reported by the ablation bench, not asserted here.
func TestBoostAblation(t *testing.T) {
	g := taskgen.New(taskgen.Config{N: 8, TotalUtilization: 3.7, Seed: 99})
	sets := g.Batch(40)
	boosted, plain, ffd := 0, 0, 0
	for _, s := range sets {
		if _, err := FFD.Partition(s.Clone(), 4, nil); err == nil {
			ffd++
		}
		if _, err := TS.Partition(s.Clone(), 4, nil); err == nil {
			boosted++
		}
		if a, err := TSNoBoost.Partition(s.Clone(), 4, nil); err == nil {
			plain++
			if !analysis.AssignmentSchedulable(a, overhead.Zero()) {
				t.Fatal("no-boost assignment unschedulable")
			}
			for _, sp := range a.Splits {
				if !sp.NoBoost {
					t.Fatal("split missing NoBoost flag")
				}
			}
		}
	}
	if boosted < ffd || plain < ffd {
		t.Fatalf("splitting variants (boost=%d plain=%d) must dominate FFD (%d)", boosted, plain, ffd)
	}
	if TSNoBoost.Name() != "FP-TS-noboost" {
		t.Errorf("name %q", TSNoBoost.Name())
	}
}
