package partition

import (
	"sort"

	"repro/internal/analysis"
	"repro/internal/overhead"
	"repro/internal/task"
	"repro/internal/timeq"
)

// minPartBudget is the smallest split-part budget worth creating. A
// part smaller than this is treated as "does not fit": each part
// costs at least one migration (two scheduler invocations plus a
// remote queue insert, ≈ 15µs under the paper's model), so slivers
// below 1µs of budget are never useful and would explode the part
// count in the zero-overhead setting.
const minPartBudget = timeq.Microsecond

// SPA implements the semi-partitioned task-splitting algorithms of
// Guan et al. (RTAS 2010) — the paper's FP-TS. Cores are filled one
// at a time with tasks in increasing priority order; a task that does
// not fit entirely on the current core is split: the largest
// admissible budget stays, the remainder continues on the next core.
// Split parts execute at the highest local priorities (DESIGN.md §6).
//
// Variant 2 (SPA2) additionally pre-assigns heavy tasks — utilization
// above the Liu & Layland threshold — to dedicated cores so they are
// never split; this is what lets SPA2 keep the L&L utilization bound
// for arbitrary task sets.
type SPA struct {
	// Variant is 1 or 2.
	Variant int
	// FillByBound fills each core to the Liu & Layland utilization
	// threshold (the original bound-preserving construction) instead
	// of the default exact-RTA maximal budget. RTA fill admits more
	// sets; bound fill reproduces the theoretical construction.
	FillByBound bool
}

// The two variants with RTA fill (used in the Section 4 comparison,
// where admission is overhead-aware RTA for every algorithm).
var (
	// SPA1 is the light-task splitting algorithm.
	SPA1 = &SPA{Variant: 1}
	// SPA2 is the general algorithm; this is the paper's FP-TS.
	SPA2 = &SPA{Variant: 2}
)

// Policy declares fixed-priority dispatching.
func (alg *SPA) Policy() task.Policy { return task.FixedPriority }

// Name returns "SPA1", "SPA2", or the bound-fill variants
// "SPA1-bound"/"SPA2-bound". The paper refers to SPA2 as FP-TS.
func (alg *SPA) Name() string {
	n := "SPA1"
	if alg.Variant == 2 {
		n = "SPA2"
	}
	if alg.FillByBound {
		n += "-bound"
	}
	return n
}

// Partition runs the splitting assignment. The returned assignment
// passes full overhead-aware chain analysis or an error is returned.
// One admission context is threaded through the entire sequential
// fill, so each probe costs only the work of the core it touches.
func (alg *SPA) Partition(s *task.Set, m int, model *overhead.Model) (*task.Assignment, error) {
	return alg.PartitionOpts(s, m, model, Options{})
}

// PartitionOpts is Partition with cancellation and a stats sink.
func (alg *SPA) PartitionOpts(s *task.Set, m int, model *overhead.Model, o Options) (*task.Assignment, error) {
	model = overhead.Normalize(model)
	if err := validateInput(s, m, alg.Policy()); err != nil {
		return nil, err
	}
	a := o.newAssignment(alg.Policy(), m)
	ctx := newContext(alg, a, model, o)
	defer ctx.Flush()

	// Task order: increasing priority (longest period first), the
	// SPA fill order.
	order := s.SortedByPriority()
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}

	// SPA2 reserves the tail of the core sequence for heavy tasks,
	// one each; the sequential fill (which starts at core 0) reaches
	// those cores last and tops them up with light tasks if room
	// remains.
	if alg.Variant == 2 {
		heavy := heavyTasks(s)
		if len(heavy) > m {
			return nil, ErrUnschedulable
		}
		// Pre-assign heavy tasks to the last cores, largest first on
		// the last core (they are filled last by the sequence).
		for i, t := range heavy {
			if !ctx.TryPlace(t, m-1-i) {
				ctx.Rollback()
				return nil, ErrUnschedulable
			}
			ctx.Commit()
		}
		// Remove heavy tasks from the fill order.
		isHeavy := make(map[task.ID]bool, len(heavy))
		for _, t := range heavy {
			isHeavy[t.ID] = true
		}
		var light []*task.Task
		for _, t := range order {
			if !isHeavy[t.ID] {
				light = append(light, t)
			}
		}
		order = light
	}

	cur := 0 // current core of the sequential fill
	for _, t := range order {
		if err := o.err(); err != nil {
			return nil, err
		}
		remaining := t.WCET
		var parts []task.Part
		for remaining > 0 {
			if cur >= m {
				return nil, ErrUnschedulable
			}
			c := cur
			b := alg.maxBudget(ctx, a, parts, t, remaining, c, m)
			switch {
			case b >= remaining:
				// The remainder fits entirely: place and stay on
				// this core.
				if len(parts) == 0 {
					ctx.Place(t, c)
				} else {
					parts = append(parts, task.Part{Core: c, Budget: remaining})
					ctx.AddSplit(&task.Split{Task: t, Parts: parts})
				}
				remaining = 0
			case b < minPartBudget:
				// Nothing useful fits: the core is full; advance.
				cur++
			default:
				parts = append(parts, task.Part{Core: c, Budget: b})
				remaining -= b
				cur++
			}
		}
	}
	return finalize(ctx, a)
}

// heavyTasks returns the tasks whose utilization exceeds the Liu &
// Layland threshold for the set size, ordered by decreasing
// utilization. These are the tasks SPA2 refuses to split.
func heavyTasks(s *task.Set) []*task.Task {
	theta := analysis.LiuLaylandBound(s.Len())
	var heavy []*task.Task
	for _, t := range s.Tasks {
		if t.Utilization() > theta {
			heavy = append(heavy, t)
		}
	}
	sort.SliceStable(heavy, func(i, j int) bool {
		ui, uj := heavy[i].Utilization(), heavy[j].Utilization()
		if ui != uj {
			return ui > uj
		}
		return heavy[i].ID < heavy[j].ID
	})
	return heavy
}

// maxBudget returns the largest budget b ≤ remaining such that core c
// stays schedulable with a tentative split part (priorParts…, (c,b))
// added. Feasibility is monotone in b (a larger part only adds
// interference), so the RTA fill uses binary search.
func (alg *SPA) maxBudget(ctx analysis.Context, a *task.Assignment, priorParts []task.Part, t *task.Task, remaining timeq.Time, c, m int) timeq.Time {
	if alg.FillByBound {
		return alg.boundBudget(a, t, remaining, c)
	}
	fits := func(b timeq.Time) bool {
		return alg.partFits(ctx, priorParts, t, remaining, b, c, m)
	}
	if fits(remaining) {
		return remaining
	}
	// Binary search on a 1µs grid for the exact largest admissible
	// budget. A grid (rather than raw nanoseconds) makes the search
	// land on the critical value exactly when task parameters are
	// round, so knife-edge sets are not lost to search slack.
	loUS, hiUS := int64(1), int64(remaining/timeq.Microsecond)
	if hiUS < 1 || !fits(timeq.Time(loUS)*timeq.Microsecond) {
		return 0
	}
	for loUS < hiUS {
		mid := (loUS + hiUS + 1) / 2
		if fits(timeq.Time(mid) * timeq.Microsecond) {
			loUS = mid
		} else {
			hiUS = mid - 1
		}
	}
	return timeq.Time(loUS) * timeq.Microsecond
}

// boundBudget fills the core to the Liu & Layland utilization
// threshold Θ(n+1): b = (Θ − U_core)·T, the original SPA
// construction.
func (alg *SPA) boundBudget(a *task.Assignment, t *task.Task, remaining timeq.Time, c int) timeq.Time {
	n := a.TaskCountOnCore(c) + 1
	theta := analysis.LiuLaylandBound(n)
	slack := theta - a.CoreUtilization(c)
	if slack <= 0 {
		return 0
	}
	b := timeq.Time(slack * float64(t.Period))
	if b > remaining {
		b = remaining
	}
	return b
}

// partFits tests schedulability of core c with the tentative part
// added. A non-final part is modeled with its remainder placed on the
// next core so migration flags (and hence overhead charges) are
// correct; the remainder's own schedulability is decided later, when
// the fill reaches that core.
func (alg *SPA) partFits(ctx analysis.Context, priorParts []task.Part, t *task.Task, remaining, b timeq.Time, c, m int) bool {
	if b <= 0 {
		return true
	}
	final := b >= remaining
	if final && len(priorParts) == 0 {
		// Whole-task placement.
		ok := ctx.TryPlace(t, c)
		ctx.Rollback()
		return ok
	}
	parts := make([]task.Part, len(priorParts), len(priorParts)+2)
	copy(parts, priorParts)
	parts = append(parts, task.Part{Core: c, Budget: b})
	if !final {
		// Remainder lives on the next core for flag purposes; if
		// there is no next core the split cannot complete.
		next := c + 1
		if next >= m {
			return false
		}
		parts = append(parts, task.Part{Core: next, Budget: remaining - b})
	}
	ok := ctx.TrySplit(&task.Split{Task: t, Parts: parts}, c)
	ctx.Rollback()
	return ok
}
