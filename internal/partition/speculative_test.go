package partition

import (
	"testing"

	"repro/internal/overhead"
	"repro/internal/task"
	"repro/internal/taskgen"
)

// TestSpeculativeScanIdentical pins Options.Speculative: for every
// bin-packing heuristic (FP and EDF), packing with the forked-
// snapshot candidate scan must produce exactly the assignment of the
// serial probe/rollback scan — same placements, same rejections —
// across a utilization range that exercises both outcomes.
func TestSpeculativeScanIdentical(t *testing.T) {
	algs := []Algorithm{FFD, WFD, BFD, FF, EDFFFD, EDFWFD}
	models := []*overhead.Model{overhead.Zero(), overhead.PaperModel()}
	const cores = 4
	for _, alg := range algs {
		for mi, model := range models {
			for _, util := range []float64{1.8, 2.6, 3.4, 3.9} {
				for seed := int64(1); seed <= 5; seed++ {
					set := taskgen.New(taskgen.Config{N: 14, TotalUtilization: util, Seed: seed}).Next()
					serial, serr := alg.PartitionOpts(set.Clone(), cores, model, Options{})
					spec, perr := alg.PartitionOpts(set.Clone(), cores, model, Options{Speculative: true})
					if (serr == nil) != (perr == nil) {
						t.Fatalf("%s/model%d/u%.1f/seed%d: serial err %v, speculative err %v",
							alg.Name(), mi, util, seed, serr, perr)
					}
					if serr != nil {
						continue
					}
					if got, want := spec.String(), serial.String(); got != want {
						t.Fatalf("%s/model%d/u%.1f/seed%d: assignments diverge\nspeculative: %s\nserial:      %s",
							alg.Name(), mi, util, seed, got, want)
					}
				}
			}
		}
	}
}

// TestSpeculativeForkMidPack forks a packing context mid-run and
// checks the snapshot keeps answering the committed prefix while the
// packer mutates on — the partitioner-side view of the concurrent
// read path.
func TestSpeculativeForkMidPack(t *testing.T) {
	set := taskgen.New(taskgen.Config{N: 10, TotalUtilization: 2.0, Seed: 3}).Next()
	model := overhead.Normalize(overhead.PaperModel())
	a := task.NewAssignment(4)
	ctx := newContext(FFD, a, model, Options{})
	defer ctx.Flush()
	tasks := set.SortedByUtilizationDesc()
	half := tasks[:5]
	for _, tk := range half {
		if !placeByFit(ctx, a, tk, FirstFit, 4, false) {
			t.Fatalf("seed half unschedulable")
		}
	}
	snap := ctx.Fork()
	wantTasks := snap.NumTasks()
	// Keep packing on the live context; the fork must not move.
	for _, tk := range tasks[5:] {
		placeByFit(ctx, a, tk, FirstFit, 4, true)
	}
	if snap.NumTasks() != wantTasks || snap.NumTasks() != 5 {
		t.Fatalf("fork drifted: %d tasks, want 5", snap.NumTasks())
	}
	if !snap.Schedulable() {
		t.Fatal("committed prefix must be schedulable")
	}
}
