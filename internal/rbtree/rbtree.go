// Package rbtree implements a red-black tree, the data structure the
// paper uses for each core's sleep queue (Section 2: "the sleep queue
// is implemented by a red-black tree").
//
// The sleep queue holds inactive tasks ordered by next release time,
// so the tree is keyed by an int64 time value with FIFO tie-breaking,
// and the release timer repeatedly inspects and removes the minimum.
// Nodes are handles: the scheduler keeps the *Node returned by Insert
// so it can remove a specific task in O(log n) when it is woken early
// (e.g. a split task's tail returning to its home core).
package rbtree

import "fmt"

type color bool

const (
	red   color = false
	black color = true
)

// Node is a handle to one entry in the tree. Nodes are created by
// Tree.Insert and invalidated by Delete/DeleteMin.
type Node[V any] struct {
	// Key is the ordering key (absolute release time, in the
	// scheduler's use). It must not be modified while the node is in
	// the tree.
	Key int64
	// Value is the payload, owned by the caller.
	Value V

	seq                 uint64
	left, right, parent *Node[V]
	color               color
	inTree              bool
}

// Tree is a red-black tree ordered by (Key, insertion order). The
// zero value is an empty tree ready to use.
type Tree[V any] struct {
	root *Node[V]
	nil_ *Node[V] // shared sentinel leaf
	n    int
	seq  uint64
}

func (t *Tree[V]) sentinel() *Node[V] {
	if t.nil_ == nil {
		t.nil_ = &Node[V]{color: black}
	}
	return t.nil_
}

// Len returns the number of entries.
func (t *Tree[V]) Len() int { return t.n }

func nodeLess[V any](a, b *Node[V]) bool {
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.seq < b.seq
}

// Insert adds value under key and returns its handle. O(log n).
func (t *Tree[V]) Insert(key int64, value V) *Node[V] {
	nilN := t.sentinel()
	z := &Node[V]{Key: key, Value: value, seq: t.seq, left: nilN, right: nilN, parent: nilN, inTree: true}
	t.seq++
	y := nilN
	x := t.root
	if x == nil {
		x = nilN
	}
	for x != nilN {
		y = x
		if nodeLess(z, x) {
			x = x.left
		} else {
			x = x.right
		}
	}
	z.parent = y
	if y == nilN {
		t.root = z
	} else if nodeLess(z, y) {
		y.left = z
	} else {
		y.right = z
	}
	z.color = red
	t.insertFixup(z)
	t.n++
	return z
}

func (t *Tree[V]) insertFixup(z *Node[V]) {
	for z.parent.color == red {
		if z.parent == z.parent.parent.left {
			y := z.parent.parent.right
			if y.color == red {
				z.parent.color = black
				y.color = black
				z.parent.parent.color = red
				z = z.parent.parent
			} else {
				if z == z.parent.right {
					z = z.parent
					t.rotateLeft(z)
				}
				z.parent.color = black
				z.parent.parent.color = red
				t.rotateRight(z.parent.parent)
			}
		} else {
			y := z.parent.parent.left
			if y.color == red {
				z.parent.color = black
				y.color = black
				z.parent.parent.color = red
				z = z.parent.parent
			} else {
				if z == z.parent.left {
					z = z.parent
					t.rotateRight(z)
				}
				z.parent.color = black
				z.parent.parent.color = red
				t.rotateLeft(z.parent.parent)
			}
		}
	}
	t.root.color = black
}

func (t *Tree[V]) rotateLeft(x *Node[V]) {
	nilN := t.nil_
	y := x.right
	x.right = y.left
	if y.left != nilN {
		y.left.parent = x
	}
	y.parent = x.parent
	if x.parent == nilN {
		t.root = y
	} else if x == x.parent.left {
		x.parent.left = y
	} else {
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *Tree[V]) rotateRight(x *Node[V]) {
	nilN := t.nil_
	y := x.left
	x.left = y.right
	if y.right != nilN {
		y.right.parent = x
	}
	y.parent = x.parent
	if x.parent == nilN {
		t.root = y
	} else if x == x.parent.right {
		x.parent.right = y
	} else {
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

// Min returns the entry with the smallest key without removing it, or
// nil if the tree is empty. O(log n).
func (t *Tree[V]) Min() *Node[V] {
	if t.n == 0 {
		return nil
	}
	return t.minimum(t.root)
}

func (t *Tree[V]) minimum(x *Node[V]) *Node[V] {
	for x.left != t.nil_ {
		x = x.left
	}
	return x
}

// DeleteMin removes and returns the entry with the smallest key, or
// nil if the tree is empty. O(log n).
func (t *Tree[V]) DeleteMin() *Node[V] {
	m := t.Min()
	if m == nil {
		return nil
	}
	t.Delete(m)
	return m
}

// Delete removes z from the tree. It panics if z is not in the tree.
// O(log n).
func (t *Tree[V]) Delete(z *Node[V]) {
	if !z.inTree {
		panic("rbtree: Delete on removed node")
	}
	nilN := t.nil_
	y := z
	yOriginalColor := y.color
	var x *Node[V]
	switch {
	case z.left == nilN:
		x = z.right
		t.transplant(z, z.right)
	case z.right == nilN:
		x = z.left
		t.transplant(z, z.left)
	default:
		y = t.minimum(z.right)
		yOriginalColor = y.color
		x = y.right
		if y.parent == z {
			x.parent = y
		} else {
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.color = z.color
	}
	if yOriginalColor == black {
		t.deleteFixup(x)
	}
	// The sentinel's parent may have been scribbled on during fixup;
	// that is fine, it is never read before being written.
	z.left, z.right, z.parent = nil, nil, nil
	z.inTree = false
	t.n--
	if t.n == 0 {
		t.root = nilN
	}
}

func (t *Tree[V]) transplant(u, v *Node[V]) {
	if u.parent == t.nil_ {
		t.root = v
	} else if u == u.parent.left {
		u.parent.left = v
	} else {
		u.parent.right = v
	}
	v.parent = u.parent
}

func (t *Tree[V]) deleteFixup(x *Node[V]) {
	for x != t.root && x.color == black {
		if x == x.parent.left {
			w := x.parent.right
			if w.color == red {
				w.color = black
				x.parent.color = red
				t.rotateLeft(x.parent)
				w = x.parent.right
			}
			if w.left.color == black && w.right.color == black {
				w.color = red
				x = x.parent
			} else {
				if w.right.color == black {
					w.left.color = black
					w.color = red
					t.rotateRight(w)
					w = x.parent.right
				}
				w.color = x.parent.color
				x.parent.color = black
				w.right.color = black
				t.rotateLeft(x.parent)
				x = t.root
			}
		} else {
			w := x.parent.left
			if w.color == red {
				w.color = black
				x.parent.color = red
				t.rotateRight(x.parent)
				w = x.parent.left
			}
			if w.right.color == black && w.left.color == black {
				w.color = red
				x = x.parent
			} else {
				if w.left.color == black {
					w.right.color = black
					w.color = red
					t.rotateLeft(w)
					w = x.parent.left
				}
				w.color = x.parent.color
				x.parent.color = black
				w.left.color = black
				t.rotateRight(x.parent)
				x = t.root
			}
		}
	}
	x.color = black
}

// Ascend calls fn on every entry in ascending (Key, insertion) order
// until fn returns false. O(n).
func (t *Tree[V]) Ascend(fn func(*Node[V]) bool) {
	if t.n == 0 {
		return
	}
	var walk func(x *Node[V]) bool
	walk = func(x *Node[V]) bool {
		if x == t.nil_ {
			return true
		}
		if !walk(x.left) {
			return false
		}
		if !fn(x) {
			return false
		}
		return walk(x.right)
	}
	walk(t.root)
}

// checkInvariants validates the red-black and BST invariants.
func (t *Tree[V]) checkInvariants() error {
	if t.n == 0 {
		return nil
	}
	if t.root.color != black {
		return fmt.Errorf("rbtree: root is red")
	}
	count := 0
	var prev *Node[V]
	_, err := t.check(t.root, &count, &prev)
	if err != nil {
		return err
	}
	if count != t.n {
		return fmt.Errorf("rbtree: counted %d nodes, recorded %d", count, t.n)
	}
	return nil
}

// check returns the black height of the subtree rooted at x and
// validates order, colors, and parent pointers along the way.
func (t *Tree[V]) check(x *Node[V], count *int, prev **Node[V]) (int, error) {
	if x == t.nil_ {
		if x.color != black {
			return 0, fmt.Errorf("rbtree: sentinel is red")
		}
		return 1, nil
	}
	if x.color == red && (x.left.color == red || x.right.color == red) {
		return 0, fmt.Errorf("rbtree: red node with red child")
	}
	if x.left != t.nil_ && x.left.parent != x {
		return 0, fmt.Errorf("rbtree: bad left parent pointer")
	}
	if x.right != t.nil_ && x.right.parent != x {
		return 0, fmt.Errorf("rbtree: bad right parent pointer")
	}
	lh, err := t.check(x.left, count, prev)
	if err != nil {
		return 0, err
	}
	if *prev != nil && !nodeLess(*prev, x) {
		return 0, fmt.Errorf("rbtree: order violated at key %d", x.Key)
	}
	*prev = x
	*count++
	rh, err := t.check(x.right, count, prev)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, fmt.Errorf("rbtree: black height mismatch %d vs %d", lh, rh)
	}
	bh := lh
	if x.color == black {
		bh++
	}
	return bh, nil
}
