package rbtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func requireInvariants(t *testing.T, tr *Tree[int]) {
	t.Helper()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEmpty(t *testing.T) {
	var tr Tree[int]
	if tr.Len() != 0 || tr.Min() != nil || tr.DeleteMin() != nil {
		t.Fatal("empty tree misbehaves")
	}
	requireInvariants(t, &tr)
}

func TestInsertAscendSorted(t *testing.T) {
	var tr Tree[int]
	keys := []int64{41, 38, 31, 12, 19, 8, 45, 3, 99, 60}
	for _, k := range keys {
		tr.Insert(k, int(k))
		requireInvariants(t, &tr)
	}
	var got []int64
	tr.Ascend(func(n *Node[int]) bool {
		got = append(got, n.Key)
		return true
	})
	want := append([]int64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("Ascend visited %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestAscendEarlyStop(t *testing.T) {
	var tr Tree[int]
	for i := 0; i < 20; i++ {
		tr.Insert(int64(i), i)
	}
	visited := 0
	tr.Ascend(func(n *Node[int]) bool {
		visited++
		return visited < 5
	})
	if visited != 5 {
		t.Fatalf("visited %d, want 5", visited)
	}
}

func TestDeleteMinDrains(t *testing.T) {
	var tr Tree[int]
	for i := 63; i >= 0; i-- {
		tr.Insert(int64(i), i)
	}
	for i := 0; i < 64; i++ {
		n := tr.DeleteMin()
		if n == nil || n.Key != int64(i) {
			t.Fatalf("DeleteMin #%d = %v", i, n)
		}
		requireInvariants(t, &tr)
	}
	if tr.Len() != 0 {
		t.Fatal("tree not empty")
	}
	// Reuse after draining.
	tr.Insert(5, 5)
	if tr.Min().Key != 5 {
		t.Fatal("tree unusable after drain")
	}
	requireInvariants(t, &tr)
}

func TestFIFOTieBreak(t *testing.T) {
	var tr Tree[int]
	for i := 0; i < 8; i++ {
		tr.Insert(100, i)
	}
	for i := 0; i < 8; i++ {
		n := tr.DeleteMin()
		if n.Value != i {
			t.Fatalf("equal-key order: got %d, want %d", n.Value, i)
		}
	}
}

func TestDeleteArbitrary(t *testing.T) {
	var tr Tree[int]
	nodes := make([]*Node[int], 0, 100)
	for i := 0; i < 100; i++ {
		nodes = append(nodes, tr.Insert(int64(i*3%101), i))
	}
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(100)
	for cnt, i := range perm {
		tr.Delete(nodes[i])
		if tr.Len() != 100-cnt-1 {
			t.Fatalf("Len = %d", tr.Len())
		}
		requireInvariants(t, &tr)
	}
}

func TestDeletePanicsTwice(t *testing.T) {
	var tr Tree[int]
	n := tr.Insert(1, 1)
	tr.Delete(n)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Delete(n)
}

func TestRandomizedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var tr Tree[int]
	type entry struct {
		key  int64
		seq  int
		node *Node[int]
	}
	var ref []entry
	seq := 0
	sortRef := func() {
		sort.SliceStable(ref, func(i, j int) bool {
			if ref[i].key != ref[j].key {
				return ref[i].key < ref[j].key
			}
			return ref[i].seq < ref[j].seq
		})
	}
	for op := 0; op < 6000; op++ {
		switch r := rng.Intn(10); {
		case r < 5:
			k := int64(rng.Intn(40))
			nd := tr.Insert(k, int(k))
			ref = append(ref, entry{k, seq, nd})
			seq++
		case r < 8:
			sortRef()
			got := tr.DeleteMin()
			if len(ref) == 0 {
				if got != nil {
					t.Fatal("DeleteMin from empty returned node")
				}
				continue
			}
			want := ref[0]
			ref = ref[1:]
			if got != want.node {
				t.Fatalf("op %d: wrong min: key %d, want %d", op, got.Key, want.key)
			}
		default:
			if len(ref) == 0 {
				continue
			}
			i := rng.Intn(len(ref))
			tr.Delete(ref[i].node)
			ref = append(ref[:i], ref[i+1:]...)
		}
		if tr.Len() != len(ref) {
			t.Fatalf("op %d: Len %d, ref %d", op, tr.Len(), len(ref))
		}
		if op%101 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
}

// Property: for any key sequence, repeated DeleteMin yields sorted order.
func TestQuickTreeSort(t *testing.T) {
	f := func(keys []int16) bool {
		var tr Tree[struct{}]
		for _, k := range keys {
			tr.Insert(int64(k), struct{}{})
		}
		prev := int64(-1 << 62)
		for tr.Len() > 0 {
			n := tr.DeleteMin()
			if n.Key < prev {
				return false
			}
			prev = n.Key
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: after any interleaving of inserts and arbitrary deletes,
// the red-black invariants hold.
func TestQuickInvariantsUnderChurn(t *testing.T) {
	f := func(keys []int8, delIdx []uint8) bool {
		var tr Tree[struct{}]
		var nodes []*Node[struct{}]
		for _, k := range keys {
			nodes = append(nodes, tr.Insert(int64(k), struct{}{}))
		}
		for _, d := range delIdx {
			if len(nodes) == 0 {
				break
			}
			i := int(d) % len(nodes)
			tr.Delete(nodes[i])
			nodes = append(nodes[:i], nodes[i+1:]...)
		}
		return tr.CheckInvariants() == nil && tr.Len() == len(nodes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsertDeleteMin(b *testing.B) {
	var tr Tree[int]
	for i := 0; i < 64; i++ {
		tr.Insert(int64(i), i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(int64(i%128), i)
		tr.DeleteMin()
	}
}
