package report

// JSON export of sweep and admission results. The wire types
// themselves live in the public api package — the single versioned
// schema shared by the spexp CLI (-json), the admitd server (batch
// and sweep endpoints), and the client SDK — this file holds the
// converters from the internal result structs, plus aliases keeping
// the historical report.*JSON names valid.

import (
	"repro/api"
	"repro/internal/analysis"
	"repro/internal/experiment"
)

// Aliases: the report package's historical names for the wire types.
type (
	// AdmissionStatsJSON is the wire form of analysis.AdmissionStats.
	AdmissionStatsJSON = api.AdmissionStats
	// SweepPointJSON is one (algorithm × utilization) cell.
	SweepPointJSON = api.SweepPoint
	// SweepSeriesJSON is one algorithm's acceptance curve.
	SweepSeriesJSON = api.SweepSeries
	// SweepJSON is the wire form of a whole acceptance-ratio sweep.
	SweepJSON = api.SweepResult
	// SweepProgressJSON is one streaming partial-result line (NDJSON).
	SweepProgressJSON = api.SweepProgress
)

// AdmissionJSON converts admission counters to their wire form, with
// the derived rates precomputed so consumers need no formulas.
func AdmissionJSON(s analysis.AdmissionStats) api.AdmissionStats {
	return api.AdmissionStats{
		Probes:           s.Probes,
		FullTests:        s.FullTests,
		CoreTests:        s.CoreTests,
		VerdictHits:      s.VerdictHits,
		FPSolves:         s.FPSolves,
		FPIterations:     s.FPIterations,
		WarmStarts:       s.WarmStarts,
		CacheHitRate:     s.CacheHitRate(),
		MeanFPIterations: s.MeanFPIterations(),
		WarmStartRate:    s.WarmStartRate(),
	}
}

// SweepResultJSON converts sweep results to their wire form.
func SweepResultJSON(r *experiment.Results) *api.SweepResult {
	out := &api.SweepResult{
		Cores:        r.Config.Cores,
		Tasks:        r.Config.Tasks,
		SetsPerPoint: r.Config.SetsPerPoint,
		Seed:         r.Config.Seed,
		Canceled:     r.Canceled,
		Admission:    AdmissionJSON(r.Admission),
	}
	m := float64(r.Config.Cores)
	for _, s := range r.Series {
		series := api.SweepSeries{Algorithm: s.Algorithm}
		for _, p := range s.Points {
			series.Points = append(series.Points, api.SweepPoint{
				TotalUtilization:   p.TotalUtilization,
				PerCoreUtilization: p.TotalUtilization / m,
				Accepted:           p.Accepted,
				Total:              p.Total,
				Ratio:              p.Ratio,
				WilsonLo:           p.WilsonLo,
				WilsonHi:           p.WilsonHi,
				MeanSplits:         p.Splits,
				SimViolations:      p.SimViolations,
			})
		}
		out.Series = append(out.Series, series)
	}
	return out
}

// ProgressJSON converts one streaming update to its wire form.
func ProgressJSON(u experiment.CellUpdate) api.SweepProgress {
	return api.SweepProgress{
		Algorithm:        u.Algorithm,
		TotalUtilization: u.TotalUtilization,
		Accepted:         u.Accepted,
		Total:            u.Total,
		Ratio:            u.Ratio,
		WilsonLo:         u.WilsonLo,
		WilsonHi:         u.WilsonHi,
		DoneShards:       u.DoneShards,
		TotalShards:      u.TotalShards,
		Admission:        AdmissionJSON(u.Admission),
	}
}
