package report

// JSON export of sweep and admission results — the one serialization
// shared by the spexp CLI (-json) and the admitd server (batch and
// sweep endpoints), so downstream tooling parses a single schema no
// matter which surface produced the numbers.

import (
	"encoding/json"
	"io"

	"repro/internal/analysis"
	"repro/internal/experiment"
)

// AdmissionStatsJSON is the wire form of analysis.AdmissionStats,
// with the derived rates precomputed so consumers need no formulas.
type AdmissionStatsJSON struct {
	Probes           int64   `json:"probes"`
	FullTests        int64   `json:"full_tests"`
	CoreTests        int64   `json:"core_tests"`
	VerdictHits      int64   `json:"verdict_hits"`
	FPSolves         int64   `json:"fp_solves"`
	FPIterations     int64   `json:"fp_iterations"`
	WarmStarts       int64   `json:"warm_starts"`
	CacheHitRate     float64 `json:"cache_hit_rate"`
	MeanFPIterations float64 `json:"mean_fp_iterations"`
	WarmStartRate    float64 `json:"warm_start_rate"`
}

// AdmissionJSON converts admission counters to their wire form.
func AdmissionJSON(s analysis.AdmissionStats) AdmissionStatsJSON {
	return AdmissionStatsJSON{
		Probes:           s.Probes,
		FullTests:        s.FullTests,
		CoreTests:        s.CoreTests,
		VerdictHits:      s.VerdictHits,
		FPSolves:         s.FPSolves,
		FPIterations:     s.FPIterations,
		WarmStarts:       s.WarmStarts,
		CacheHitRate:     s.CacheHitRate(),
		MeanFPIterations: s.MeanFPIterations(),
		WarmStartRate:    s.WarmStartRate(),
	}
}

// SweepPointJSON is one (algorithm × utilization) cell.
type SweepPointJSON struct {
	TotalUtilization   float64 `json:"total_utilization"`
	PerCoreUtilization float64 `json:"per_core_utilization"`
	Accepted           int     `json:"accepted"`
	Total              int     `json:"total"`
	Ratio              float64 `json:"ratio"`
	WilsonLo           float64 `json:"wilson_lo"`
	WilsonHi           float64 `json:"wilson_hi"`
	MeanSplits         float64 `json:"mean_splits"`
	SimViolations      int     `json:"sim_violations"`
}

// SweepSeriesJSON is one algorithm's acceptance curve.
type SweepSeriesJSON struct {
	Algorithm string           `json:"algorithm"`
	Points    []SweepPointJSON `json:"points"`
}

// SweepJSON is the wire form of a whole acceptance-ratio sweep.
type SweepJSON struct {
	Cores        int                `json:"cores"`
	Tasks        int                `json:"tasks"`
	SetsPerPoint int                `json:"sets_per_point"`
	Seed         int64              `json:"seed"`
	Canceled     bool               `json:"canceled,omitempty"`
	Series       []SweepSeriesJSON  `json:"series"`
	Admission    AdmissionStatsJSON `json:"admission"`
}

// SweepResultJSON converts sweep results to their wire form.
func SweepResultJSON(r *experiment.Results) *SweepJSON {
	out := &SweepJSON{
		Cores:        r.Config.Cores,
		Tasks:        r.Config.Tasks,
		SetsPerPoint: r.Config.SetsPerPoint,
		Seed:         r.Config.Seed,
		Canceled:     r.Canceled,
		Admission:    AdmissionJSON(r.Admission),
	}
	m := float64(r.Config.Cores)
	for _, s := range r.Series {
		series := SweepSeriesJSON{Algorithm: s.Algorithm}
		for _, p := range s.Points {
			series.Points = append(series.Points, SweepPointJSON{
				TotalUtilization:   p.TotalUtilization,
				PerCoreUtilization: p.TotalUtilization / m,
				Accepted:           p.Accepted,
				Total:              p.Total,
				Ratio:              p.Ratio,
				WilsonLo:           p.WilsonLo,
				WilsonHi:           p.WilsonHi,
				MeanSplits:         p.Splits,
				SimViolations:      p.SimViolations,
			})
		}
		out.Series = append(out.Series, series)
	}
	return out
}

// Encode writes the sweep as indented JSON.
func (s *SweepJSON) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// SweepProgressJSON is one streaming partial-result line (NDJSON):
// the wire form of experiment.CellUpdate, emitted by spexp -progress
// -json and by the admitd sweep endpoint while the sweep runs.
type SweepProgressJSON struct {
	Algorithm        string             `json:"algorithm"`
	TotalUtilization float64            `json:"total_utilization"`
	Accepted         int                `json:"accepted"`
	Total            int                `json:"total"`
	Ratio            float64            `json:"ratio"`
	WilsonLo         float64            `json:"wilson_lo"`
	WilsonHi         float64            `json:"wilson_hi"`
	DoneShards       int                `json:"done_shards"`
	TotalShards      int                `json:"total_shards"`
	Admission        AdmissionStatsJSON `json:"admission"`
}

// ProgressJSON converts one streaming update to its wire form.
func ProgressJSON(u experiment.CellUpdate) SweepProgressJSON {
	return SweepProgressJSON{
		Algorithm:        u.Algorithm,
		TotalUtilization: u.TotalUtilization,
		Accepted:         u.Accepted,
		Total:            u.Total,
		Ratio:            u.Ratio,
		WilsonLo:         u.WilsonLo,
		WilsonHi:         u.WilsonHi,
		DoneShards:       u.DoneShards,
		TotalShards:      u.TotalShards,
		Admission:        AdmissionJSON(u.Admission),
	}
}
